// Grocery: the paper's motivating scenario at example scale. A recipe
// library drives goal-based recommendations for shopping carts, and the
// results are contrasted with the standard recommenders (collaborative
// filtering, content-based, popularity) fit on historical carts — showing
// why the goal-based lists cannot be reproduced by the classical methods.
//
//	go run ./examples/grocery
package main

import (
	"fmt"
	"log"
	"sort"

	"goalrec"
)

// recipes is a small cookbook: goal implementations over grocery products.
var recipes = map[string][]string{
	"olivier salad":     {"potatoes", "carrots", "pickles", "peas", "mayonnaise"},
	"mashed potatoes":   {"potatoes", "butter", "milk", "nutmeg"},
	"pan-fried carrots": {"carrots", "butter", "nutmeg", "parsley"},
	"minestrone":        {"carrots", "celery", "onions", "tomatoes", "beans", "pasta"},
	"carbonara":         {"pasta", "eggs", "bacon", "parmesan"},
	"omelette":          {"eggs", "butter", "milk", "cheese"},
	"carrot cake":       {"carrots", "flour", "eggs", "sugar", "walnuts"},
	"banana bread":      {"bananas", "flour", "eggs", "sugar", "butter"},
	"guacamole":         {"avocados", "onions", "lime", "cilantro"},
	"salsa":             {"tomatoes", "onions", "lime", "cilantro"},
	"hummus":            {"chickpeas", "tahini", "lime", "garlic"},
	"tomato soup":       {"tomatoes", "onions", "garlic", "cream"},
	"pesto pasta":       {"pasta", "basil", "garlic", "parmesan", "pine nuts"},
}

// categories are the domain features the content-based method uses.
var categories = map[string][]string{
	"potatoes": {"vegetables"}, "carrots": {"vegetables"}, "pickles": {"preserves"},
	"peas": {"vegetables"}, "mayonnaise": {"condiments"}, "butter": {"dairy"},
	"milk": {"dairy"}, "nutmeg": {"spices"}, "parsley": {"herbs"},
	"celery": {"vegetables"}, "onions": {"vegetables"}, "tomatoes": {"vegetables"},
	"beans": {"legumes"}, "pasta": {"grains"}, "eggs": {"dairy"},
	"bacon": {"meat"}, "parmesan": {"dairy"}, "cheese": {"dairy"},
	"flour": {"baking"}, "sugar": {"baking"}, "walnuts": {"nuts"},
	"bananas": {"fruit"}, "avocados": {"fruit"}, "lime": {"fruit"},
	"cilantro": {"herbs"}, "chickpeas": {"legumes"}, "tahini": {"condiments"},
	"garlic": {"vegetables"}, "cream": {"dairy"}, "basil": {"herbs"},
	"pine nuts": {"nuts"},
}

// historicalCarts are past purchases of other customers (implicit feedback
// for the collaborative baselines). Note how they mix recipe fragments with
// bestsellers like milk and bananas.
var historicalCarts = [][]string{
	{"milk", "eggs", "bananas", "butter"},
	{"milk", "bananas", "pasta", "tomatoes"},
	{"potatoes", "milk", "butter", "bananas"},
	{"pasta", "parmesan", "eggs", "milk"},
	{"tomatoes", "onions", "milk", "bananas"},
	{"carrots", "potatoes", "milk"},
	{"avocados", "lime", "bananas", "milk"},
	{"flour", "sugar", "eggs", "milk", "bananas"},
	{"pasta", "tomatoes", "onions", "garlic"},
	{"milk", "butter", "cheese", "eggs"},
}

func main() {
	b := goalrec.NewBuilder()
	// Insert in sorted order so interned ids (and tie-breaks) are stable
	// across runs.
	goalNames := make([]string, 0, len(recipes))
	for goal := range recipes {
		goalNames = append(goalNames, goal)
	}
	sort.Strings(goalNames)
	for _, goal := range goalNames {
		if err := b.AddImplementation(goal, recipes[goal]...); err != nil {
			log.Fatal(err)
		}
	}
	lib := b.Build()

	cart := []string{"potatoes", "carrots"}
	fmt.Printf("cart: %v\n\n", cart)

	// Goal-based: recommends pickles/nutmeg-style completions — products
	// justified by the recipes the cart can still become.
	breadth := lib.MustRecommender(goalrec.Breadth)
	fmt.Println("goal-based (breadth):")
	printList(breadth.Recommend(cart, 5))

	focus := lib.MustRecommender(goalrec.FocusCompleteness)
	fmt.Println("goal-based (focus on the nearest recipe):")
	printList(focus.Recommend(cart, 5))

	// The standard methods look at the past instead.
	corpus := lib.NewCorpus(historicalCarts)
	knn := corpus.KNNRecommender(5)
	fmt.Println("collaborative filtering (user kNN):")
	printList(knn.Recommend(cart, 5))

	mf, err := corpus.MFRecommender(goalrec.MFConfig{Factors: 8, Iterations: 8, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("collaborative filtering (ALS-WR matrix factorization):")
	printList(mf.Recommend(cart, 5))

	content := lib.ContentRecommender(categories)
	fmt.Println("content-based (category features):")
	printList(content.Recommend(cart, 5))

	pop := corpus.PopularityRecommender()
	fmt.Println("popularity:")
	printList(pop.Recommend(cart, 5))

	// The divergence the paper measures in Table 2: how many of the
	// goal-based picks any standard method reproduces.
	goalPicks := map[string]bool{}
	for _, r := range breadth.Recommend(cart, 5) {
		goalPicks[r.Action] = true
	}
	for _, rec := range []goalrec.Recommender{knn, mf, content, pop} {
		shared := 0
		for _, r := range rec.Recommend(cart, 5) {
			if goalPicks[r.Action] {
				shared++
			}
		}
		fmt.Printf("overlap of %s with goal-based top-5: %d/5\n", rec.Name(), shared)
	}
}

func printList(list []goalrec.Recommendation) {
	for i, r := range list {
		fmt.Printf("  %d. %-12s %.3f\n", i+1, r.Action, r.Score)
	}
	fmt.Println()
}
