// Dynamic: ingest goal implementations incrementally and recommend from
// consistent snapshots — the pattern for a service whose library grows (new
// recipes, new outfits) while queries keep flowing. This example uses the
// id-level core API directly; see examples/quickstart for the name-level
// façade.
//
//	go run ./examples/dynamic
package main

import (
	"fmt"
	"log"

	"goalrec/internal/core"
	"goalrec/internal/strategy"
)

func main() {
	dyn := core.NewDynamicLibrary()

	// Initial batch: two recipes over actions 0..4.
	mustAdd(dyn, 0, 0, 1, 2) // goal 0 = {a0, a1, a2}
	mustAdd(dyn, 1, 0, 3)    // goal 1 = {a0, a3}

	snap := dyn.Snapshot()
	fmt.Println("after batch 1:", snap.Stats())
	rec := strategy.NewBreadth(snap)
	fmt.Println("recommendations for {a0}:", strategy.Actions(rec.Recommend([]core.ActionID{0}, 5)))

	// A sync later, more implementations arrive. Existing snapshots (and any
	// recommender built on them) keep serving unchanged.
	mustAdd(dyn, 2, 1, 4)
	mustAdd(dyn, 0, 0, 2, 4) // a second implementation of goal 0

	fresh := dyn.Snapshot()
	fmt.Println("after batch 2:", fresh.Stats())
	fmt.Println("old snapshot still:", snap.Stats())

	rec2 := strategy.NewBreadth(fresh)
	fmt.Println("recommendations for {a0} now:", strategy.Actions(rec2.Recommend([]core.ActionID{0}, 5)))
}

func mustAdd(d *core.DynamicLibrary, goal core.GoalID, actions ...core.ActionID) {
	if _, err := d.Add(goal, actions); err != nil {
		log.Fatal(err)
	}
}
