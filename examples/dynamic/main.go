// Dynamic: ingest goal implementations incrementally and recommend from
// consistent epoch-numbered snapshots — the pattern for a service whose
// library grows (new recipes, new outfits) while queries keep flowing. The
// goalrec.Engine publishes an immutable snapshot per epoch; readers that
// hold an older snapshot (or a recommender built on it) keep serving that
// epoch unchanged.
//
//	go run ./examples/dynamic
package main

import (
	"fmt"
	"log"

	"goalrec"
)

func main() {
	engine := goalrec.NewEngine()

	// Initial batch: two recipes.
	mustAdd(engine, "pancakes", "milk", "eggs", "flour")
	mustAdd(engine, "omelette", "milk", "butter")

	snap := engine.Snapshot()
	fmt.Printf("epoch %d: %s\n", snap.Epoch(), snap.Stats())
	rec, err := engine.Recommender(goalrec.Breadth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recommendations for {milk}:", actions(rec.Recommend([]string{"milk"}, 5)))

	// A sync later, more implementations arrive. Existing snapshots (and any
	// recommender built on them) keep serving unchanged.
	mustAdd(engine, "crepes", "eggs", "sugar")
	mustAdd(engine, "pancakes", "milk", "flour", "sugar") // a second implementation

	fresh := engine.Snapshot()
	fmt.Printf("epoch %d: %s\n", fresh.Epoch(), fresh.Stats())
	fmt.Printf("old epoch %d still: %s\n", snap.Epoch(), snap.Stats())

	rec2, err := engine.Recommender(goalrec.Breadth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recommendations for {milk} now:", actions(rec2.Recommend([]string{"milk"}, 5)))
}

func mustAdd(e *goalrec.Engine, goal string, acts ...string) {
	if err := e.AddImplementation(goal, acts...); err != nil {
		log.Fatal(err)
	}
}

func actions(recs []goalrec.Recommendation) []string {
	out := make([]string, len(recs))
	for i, r := range recs {
		out[i] = r.Action
	}
	return out
}
