// Sequences: contrast the set-based goal model with the order-sensitive
// next-action family from the paper's related work (Section 2). A Markov
// next-action model is fit on ordered activity sequences; the goal-based
// recommender sees only the unordered set — yet recovers the intent the
// sequence never spells out.
//
//	go run ./examples/sequences
package main

import (
	"fmt"
	"log"

	"goalrec/internal/baseline"
	"goalrec/internal/core"
	"goalrec/internal/dataset"
	"goalrec/internal/strategy"
)

func main() {
	// A small 43Things-like world: goal families with per-goal action sets.
	ds, err := dataset.GenerateFortyThreeThings(dataset.FortyThreeThingsConfig{
		Scale: 0.02, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("library:", ds.Library.Stats())

	// Fit the Markov model on everyone's ordered sequences.
	markov := baseline.NewMarkov(ds.Sequences(), ds.Library.NumActions(), 3)

	// For every user with a long enough sequence: reveal the first half in
	// order, hide the rest, and count how many of each method's top-10
	// suggestions the user actually went on to perform.
	methods := []strategy.Recommender{
		markov,
		strategy.NewBreadth(ds.Library),
		strategy.NewFocus(ds.Library, strategy.Completeness),
	}
	hits := make([]int, len(methods))
	preds := make([]int, len(methods))
	subjects := 0
	for _, u := range ds.Users {
		if len(u.Sequence) < 6 {
			continue
		}
		subjects++
		half := len(u.Sequence) / 2
		visible := u.Sequence[:half]
		hiddenSet := map[core.ActionID]bool{}
		for _, a := range u.Sequence[half:] {
			hiddenSet[a] = true
		}
		for i, m := range methods {
			for _, s := range m.Recommend(visible, 10) {
				preds[i]++
				if hiddenSet[s.Action] {
					hits[i]++
				}
			}
		}
	}
	fmt.Printf("\nover %d users (first half of each sequence visible):\n", subjects)
	for i, m := range methods {
		rate := 0.0
		if preds[i] > 0 {
			rate = float64(hits[i]) / float64(preds[i])
		}
		fmt.Printf("  %-10s %4d/%4d suggested actions were actually performed (%.0f%%)\n",
			m.Name(), hits[i], preds[i], 100*rate)
	}
}
