// Curriculum: the online-learning scenario of the paper's introduction —
// specializations implemented through course sets. A student mid-degree gets
// course recommendations that finish the specialization they are closest to,
// or keep several specializations reachable, exactly the Focus/Breadth
// policy split.
//
//	go run ./examples/curriculum
package main

import (
	"fmt"
	"log"

	"goalrec/internal/dataset"
	"goalrec/internal/strategy"
)

func main() {
	ds, err := dataset.GenerateCurriculum(dataset.CurriculumConfig{Seed: 11, Students: 200})
	if err != nil {
		log.Fatal(err)
	}
	lib := ds.Library
	fmt.Println("catalog:", lib.Stats())

	// Pick a student pursuing two specializations, neither finished yet.
	var student dataset.User
	for _, u := range ds.Users {
		if len(u.Goals) != 2 || len(u.Activity) < 4 {
			continue
		}
		unfinished := true
		for _, g := range u.Goals {
			if lib.GoalCompleteness(g, u.Activity, nil) >= 1 {
				unfinished = false
				break
			}
		}
		if unfinished {
			student = u
			break
		}
	}
	if student.Activity == nil {
		log.Fatal("no two-specialization student found")
	}
	fmt.Printf("\nstudent has completed %d courses towards specializations %v\n",
		len(student.Activity), student.Goals)
	for _, g := range student.Goals {
		fmt.Printf("  specialization %d: best variant %.0f%% complete\n",
			g, 100*lib.GoalCompleteness(g, student.Activity, nil))
	}

	focus := strategy.NewFocus(lib, strategy.Closeness)
	fmt.Println("\ngraduate one specialization first (focus-cl):")
	for _, r := range focus.Recommend(student.Activity, 4) {
		fmt.Printf("  take course %-4d (score %.2f)\n", r.Action, r.Score)
	}

	breadth := strategy.NewBreadth(lib)
	fmt.Println("\nadvance both specializations (breadth):")
	for _, r := range breadth.Recommend(student.Activity, 4) {
		fmt.Printf("  take course %-4d (score %.2f)\n", r.Action, r.Score)
	}

	// How much do the recommendations move each declared specialization?
	rec := strategy.Actions(breadth.Recommend(student.Activity, 4))
	fmt.Println("\nafter following the breadth list:")
	for _, g := range student.Goals {
		fmt.Printf("  specialization %d: %.0f%% complete\n",
			g, 100*lib.GoalCompleteness(g, student.Activity, rec))
	}
}
