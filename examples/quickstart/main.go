// Quickstart: build a small goal-implementation library, inspect a user's
// goal space, and compare the four goal-based recommendation strategies.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"goalrec"
)

func main() {
	// A library is a set of goal implementations: a goal plus the actions
	// that fulfill it. Here: recipes and their ingredients, the running
	// example of the paper's introduction.
	b := goalrec.NewBuilder()
	recipes := []struct {
		goal        string
		ingredients []string
	}{
		{"olivier salad", []string{"potatoes", "carrots", "pickles", "mayonnaise"}},
		{"mashed potatoes", []string{"potatoes", "butter", "nutmeg", "milk"}},
		{"pan-fried carrots", []string{"carrots", "butter", "nutmeg"}},
		{"carrot cake", []string{"carrots", "flour", "eggs", "sugar"}},
		{"pancakes", []string{"flour", "eggs", "milk", "butter"}},
		{"pickled vegetables", []string{"pickles", "vinegar", "sugar"}},
	}
	for _, r := range recipes {
		if err := b.AddImplementation(r.goal, r.ingredients...); err != nil {
			log.Fatal(err)
		}
	}
	lib := b.Build()
	fmt.Println("library:", lib.Stats())

	// The customer's cart so far.
	cart := []string{"potatoes", "carrots"}

	// Which goals could this cart be heading towards, and how far along is
	// each one?
	fmt.Printf("\ncart %v opens these goals:\n", cart)
	progress := lib.GoalProgress(cart)
	for _, g := range lib.GoalSpace(cart) {
		fmt.Printf("  %-20s %4.0f%% complete\n", g, 100*progress[g])
	}

	// Each strategy implements a different policy for what to do next.
	fmt.Println("\ntop-3 recommendations per strategy:")
	for _, s := range goalrec.Strategies() {
		rec, err := lib.Recommender(s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-11s", rec.Name())
		for _, r := range rec.Recommend(cart, 3) {
			fmt.Printf("  %s (%.2f)", r.Action, r.Score)
		}
		fmt.Println()
	}
}
