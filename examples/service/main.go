// Service: embed the recommendation HTTP service in a program, then act as
// its own client — the integration pattern for serving a goal library in
// production. (cmd/goalrecd is the standalone equivalent.)
//
//	go run ./examples/service
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"sort"

	"goalrec"
	"goalrec/internal/server"
)

func main() {
	// Build the library that the service will answer from.
	b := goalrec.NewBuilder()
	recipes := map[string][]string{
		"olivier salad":     {"potatoes", "carrots", "pickles", "mayonnaise"},
		"mashed potatoes":   {"potatoes", "butter", "nutmeg", "milk"},
		"pan-fried carrots": {"carrots", "butter", "nutmeg"},
	}
	// Insert in sorted order so interned ids (and tie-breaks) are stable
	// across runs.
	goalNames := make([]string, 0, len(recipes))
	for goal := range recipes {
		goalNames = append(goalNames, goal)
	}
	sort.Strings(goalNames)
	for _, goal := range goalNames {
		if err := b.AddImplementation(goal, recipes[goal]...); err != nil {
			log.Fatal(err)
		}
	}
	lib := b.Build()

	// Mount the service. In production this handler goes into
	// http.Server{Addr: ":8080", Handler: handler}; the test server keeps
	// this example self-contained.
	handler := server.New(lib, nil)
	ts := httptest.NewServer(handler)
	defer ts.Close()
	fmt.Println("service listening at", ts.URL)

	// Query it like any client would.
	reqBody, _ := json.Marshal(map[string]interface{}{
		"activity": []string{"potatoes", "carrots"},
		"strategy": "breadth",
		"k":        5,
	})
	resp, err := http.Post(ts.URL+"/v1/recommend", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()

	var out struct {
		Strategy        string `json:"strategy"`
		Recommendations []struct {
			Action string  `json:"action"`
			Score  float64 `json:"score"`
		} `json:"recommendations"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("strategy %s recommends:\n", out.Strategy)
	for i, r := range out.Recommendations {
		fmt.Printf("  %d. %-12s %.3f\n", i+1, r.Action, r.Score)
	}
}
