// Lifegoals: reproduce the paper's 43Things scenario end to end — extract
// goal implementations from free-text success stories, then recommend the
// next actions for a user who has started working on their goals.
//
//	go run ./examples/lifegoals
package main

import (
	"fmt"

	"goalrec"
)

// stories are user-generated descriptions of how goals were achieved, the
// raw material the paper's 43Things dataset was extracted from.
var stories = []goalrec.Story{
	{Goal: "lose weight", Text: "I started jogging every morning. I cut sugar completely. Then I tracked calories in a journal."},
	{Goal: "lose weight", Text: "1. joined a gym\n2. cut sugar\n3. cooked at home instead of eating out"},
	{Goal: "lose weight", Text: "I drank more water and walked to work every day."},
	{Goal: "get fit", Text: "joined a gym; started jogging every morning; stretched daily"},
	{Goal: "get fit", Text: "I lifted weights three times a week. I tracked calories."},
	{Goal: "learn english", Text: "I enrolled in an evening class. I read books in english. I watched movies with subtitles."},
	{Goal: "learn english", Text: "practiced speaking with a friend. read books in english."},
	{Goal: "save money", Text: "I canceled unused subscriptions. I cooked at home instead of eating out. I tracked spending in a budget."},
	{Goal: "save money", Text: "set a monthly budget. stopped buying coffee outside."},
	{Goal: "run a marathon", Text: "I started jogging every morning. Then I joined a running club and trained on weekends."},
	{Goal: "sleep better", Text: "I stopped drinking coffee after noon. I walked to work every day."},
}

func main() {
	lib, kept := goalrec.BuildFromStories(stories, goalrec.ExtractOptions{})
	fmt.Printf("extracted %d implementations from %d stories\n", kept, len(stories))
	fmt.Println("library:", lib.Stats())

	// Peek at what extraction produced for one story.
	fmt.Printf("\nstory %q became actions %v\n",
		stories[0].Goal, goalrec.ExtractActions(stories[0], goalrec.ExtractOptions{}))

	// A user has performed two actions so far. Which goals does that point
	// at, and what should they do next under each policy?
	activity := []string{"start jog morn", "cut sugar"}
	fmt.Printf("\nuser activity: %v\n", activity)
	progress := lib.GoalProgress(activity)
	fmt.Println("goal space:")
	for _, g := range lib.GoalSpace(activity) {
		fmt.Printf("  %-15s %4.0f%% complete\n", g, 100*progress[g])
	}

	fmt.Println("\nnext actions:")
	for _, s := range goalrec.Strategies() {
		rec := lib.MustRecommender(s)
		fmt.Printf("  %-11s", rec.Name())
		for _, r := range rec.Recommend(activity, 3) {
			fmt.Printf("  %q", r.Action)
		}
		fmt.Println()
	}
}
