// Outfits: the clothing-store scenario of the paper's Figure 1. Outfits are
// goal implementations labelled with their purpose ("meeting friends",
// "going to the office", "be warm"); purchased items are the user activity;
// the recommender proposes items that complete outfits the wardrobe can
// already support.
//
//	go run ./examples/outfits
package main

import (
	"fmt"
	"log"

	"goalrec"
)

func main() {
	b := goalrec.NewBuilder()
	// Several outfits can implement the same purpose — exactly the
	// many-implementations-per-goal structure of the model.
	outfits := []struct {
		purpose string
		items   []string
	}{
		{"meeting friends", []string{"jeans", "white shirt", "sneakers"}},
		{"meeting friends", []string{"chinos", "polo shirt", "loafers"}},
		{"going to the office", []string{"suit trousers", "white shirt", "oxford shoes", "blazer"}},
		{"going to the office", []string{"chinos", "blazer", "loafers"}},
		{"be warm", []string{"wool coat", "scarf", "beanie", "jeans"}},
		{"be warm", []string{"puffer jacket", "beanie", "boots"}},
		{"hiking trip", []string{"hiking boots", "rain jacket", "cargo pants"}},
	}
	for _, o := range outfits {
		if err := b.AddImplementation(o.purpose, o.items...); err != nil {
			log.Fatal(err)
		}
	}
	lib := b.Build()

	wardrobe := []string{"jeans", "white shirt"}
	fmt.Printf("wardrobe so far: %v\n\n", wardrobe)

	fmt.Println("outfit purposes the wardrobe can serve:")
	progress := lib.GoalProgress(wardrobe)
	for _, g := range lib.GoalSpace(wardrobe) {
		fmt.Printf("  %-20s %4.0f%% complete\n", g, 100*progress[g])
	}

	// Focus: finish the nearest outfit ("meeting friends" needs only
	// sneakers).
	focus := lib.MustRecommender(goalrec.FocusCloseness)
	fmt.Println("\nfinish one outfit first (focus-cl):")
	for _, r := range focus.Recommend(wardrobe, 4) {
		fmt.Printf("  buy %-14s (score %.2f)\n", r.Action, r.Score)
	}

	// Breadth: items useful across several purposes at once.
	breadth := lib.MustRecommender(goalrec.Breadth)
	fmt.Println("\nkeep several outfits in play (breadth):")
	for _, r := range breadth.Recommend(wardrobe, 4) {
		fmt.Printf("  buy %-14s (score %.2f)\n", r.Action, r.Score)
	}

	// Best Match: follow the purposes the wardrobe already leans towards.
	best := lib.MustRecommender(goalrec.BestMatch)
	fmt.Println("\nmatch the wardrobe's profile (best-match):")
	for _, r := range best.Recommend(wardrobe, 4) {
		fmt.Printf("  buy %-14s (distance %.2f)\n", r.Action, -r.Score)
	}
}
