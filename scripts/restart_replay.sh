#!/usr/bin/env bash
# Restart-replay smoke: the durability contract end to end, on a
# race-instrumented goalrecd.
#
#   1. start goalrecd with -snapshot-dir on an empty directory
#   2. ingest several batches over POST /v1/implementations, record the
#      acknowledged epoch and a recommendation response
#   3. SIGTERM the daemon (clean shutdown; the WAL stays non-empty — the
#      store compacts on size, not on exit, so restart genuinely replays)
#   4. restart on the same directory and assert the epoch and the exact
#      recommendation JSON survived
#   5. ingest once more to prove the recovered lineage keeps advancing
#
# Tunables (env): RR_ADDR (default 127.0.0.1:18091).
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${RR_ADDR:-127.0.0.1:18091}"

TMP="$(mktemp -d)"
DAEMON_PID=""
cleanup() {
    [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

echo "restart-replay: building race-instrumented goalrecd"
go build -race -o "$TMP/goalrecd" ./cmd/goalrecd

start_daemon() {
    "$TMP/goalrecd" -addr "$ADDR" -quiet -snapshot-dir "$TMP/store" \
        2>>"$TMP/goalrecd.log" &
    DAEMON_PID=$!
    for _ in $(seq 1 100); do
        if curl -fsS "http://$ADDR/readyz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "restart-replay: daemon never became ready" >&2
    cat "$TMP/goalrecd.log" >&2
    exit 1
}

stop_daemon() {
    kill -TERM "$DAEMON_PID"
    if ! wait "$DAEMON_PID"; then
        echo "restart-replay: daemon exited uncleanly (race or shutdown failure)" >&2
        cat "$TMP/goalrecd.log" >&2
        exit 1
    fi
    DAEMON_PID=""
}

ingest() { # ingest <batch-json>  -> prints acknowledged epoch
    curl -fsS -X POST "http://$ADDR/v1/implementations" \
        -H 'Content-Type: application/json' -d "$1" |
        sed -n 's/.*"epoch":\([0-9]*\).*/\1/p'
}

recommend() {
    curl -fsS -X POST "http://$ADDR/v1/recommend" \
        -H 'Content-Type: application/json' \
        -d '{"activity":["flour","eggs"],"strategy":"breadth","k":5}'
}

start_daemon

echo "restart-replay: ingesting three batches"
ingest '{"implementations":[
  {"goal":"pancakes","actions":["flour","eggs","milk"]},
  {"goal":"omelette","actions":["eggs","butter"]}]}' >/dev/null
ingest '{"implementations":[
  {"goal":"crepes","actions":["flour","eggs","milk","butter"]},
  {"goal":"scrambled eggs","actions":["eggs","milk"]}]}' >/dev/null
EPOCH_BEFORE="$(ingest '{"implementations":[
  {"goal":"pasta","actions":["flour","eggs","water"]}]}')"
REC_BEFORE="$(recommend)"
echo "restart-replay: epoch $EPOCH_BEFORE before restart"

if [ ! -s "$TMP/store/ingest.wal" ]; then
    echo "restart-replay: WAL missing or empty before restart" >&2
    exit 1
fi

stop_daemon
echo "restart-replay: restarting on the same store"
start_daemon

EPOCH_AFTER="$(curl -fsS "http://$ADDR/v1/stats" | sed -n 's/.*"epoch":\([0-9]*\).*/\1/p')"
REC_AFTER="$(recommend)"

if [ "$EPOCH_AFTER" != "$EPOCH_BEFORE" ]; then
    echo "restart-replay: epoch rolled back: $EPOCH_BEFORE -> $EPOCH_AFTER" >&2
    cat "$TMP/goalrecd.log" >&2
    exit 1
fi
# The epoch field inside the recommendation response is part of both
# captures, so byte-equality also re-checks the epoch.
if [ "$REC_AFTER" != "$REC_BEFORE" ]; then
    echo "restart-replay: rankings changed across restart" >&2
    echo "before: $REC_BEFORE" >&2
    echo "after:  $REC_AFTER" >&2
    exit 1
fi

EPOCH_NEXT="$(ingest '{"implementations":[
  {"goal":"waffles","actions":["flour","eggs","milk","sugar"]}]}')"
if [ "$EPOCH_NEXT" -le "$EPOCH_AFTER" ]; then
    echo "restart-replay: post-restart ingest did not advance the epoch" >&2
    exit 1
fi

stop_daemon
echo "restart-replay: epoch $EPOCH_BEFORE survived restart, rankings identical, PASS"
