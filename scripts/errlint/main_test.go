package main

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

const src = `package p

func good(f interface{ Close() error }) error {
	defer f.Close()        // allowed: best-effort cleanup idiom
	_ = f.Close()          // allowed: explicit discard
	if err := f.Close(); err != nil {
		return err
	}
	return f.Close()
}

func bad(f interface {
	Close() error
	Sync() error
}) {
	f.Close() // flagged
	f.Sync()  // flagged
	g := func() error { return nil }
	g() // not a checked name
}
`

func TestLintFile(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := lintFile(fset, f)
	if len(got) != 2 {
		t.Fatalf("want 2 findings, got %d: %v", len(got), got)
	}
	if !strings.Contains(got[0], "x.go:16") || !strings.Contains(got[0], "Close") {
		t.Errorf("first finding = %q", got[0])
	}
	if !strings.Contains(got[1], "x.go:17") || !strings.Contains(got[1], "Sync") {
		t.Errorf("second finding = %q", got[1])
	}
}
