// Command errlint vets the persistence packages for silently dropped I/O
// errors: a Close, Sync, Remove or Rename whose error result is discarded by
// an expression statement. In a storage stack those calls are where
// durability bugs hide — a Close that fails after buffered writes, a Sync
// that never reached the platter, a Remove that left a stale snapshot — so
// dropping their errors implicitly is a CI failure.
//
//	go run ./scripts/errlint ./... # or: make errlint
//
// Deliberate discards stay expressible, and visible: `_ = f.Close()` passes,
// as does `defer f.Close()` (a best-effort cleanup idiom the codebase uses
// on error paths that already have a primary error to report). Test files
// are skipped. The lint is AST-only — no type information — so it checks
// any selector call named Close/Sync/Remove/Rename, which in these packages
// is exactly the I/O surface.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// checked is the method/function name set whose dropped errors we flag.
var checked = map[string]bool{
	"Close":  true,
	"Sync":   true,
	"Remove": true,
	"Rename": true,
}

// defaultDirs are the persistence packages: everywhere a dropped I/O error
// can cost durability. Arguments override them.
var defaultDirs = []string{".", "internal/wal", "internal/core", "internal/faultfs"}

func main() {
	root := flag.String("root", ".", "repository root to lint relative to")
	flag.Parse()

	dirs := flag.Args()
	if len(dirs) == 0 {
		dirs = defaultDirs
	}
	var files []string
	for _, d := range dirs {
		ents, err := os.ReadDir(filepath.Join(*root, d))
		if err != nil {
			fmt.Fprintf(os.Stderr, "errlint: %v\n", err)
			os.Exit(2)
		}
		for _, ent := range ents {
			name := ent.Name()
			if ent.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
				continue
			}
			files = append(files, filepath.Join(*root, d, name))
		}
	}
	sort.Strings(files)

	bad := 0
	fset := token.NewFileSet()
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			fmt.Fprintf(os.Stderr, "errlint: %v\n", err)
			os.Exit(2)
		}
		for _, finding := range lintFile(fset, f) {
			fmt.Println(finding)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "errlint: %d dropped I/O error(s)\n", bad)
		os.Exit(1)
	}
}

// lintFile reports every expression statement in f that calls a checked
// method and drops its result on the floor.
func lintFile(fset *token.FileSet, f *ast.File) []string {
	var out []string
	ast.Inspect(f, func(n ast.Node) bool {
		stmt, ok := n.(*ast.ExprStmt)
		if !ok {
			return true
		}
		call, ok := stmt.X.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := calleeName(call); ok && checked[name] {
			pos := fset.Position(call.Pos())
			out = append(out, fmt.Sprintf("%s:%d: result of %s() dropped; handle the error or discard it explicitly with `_ =`", pos.Filename, pos.Line, name))
		}
		return true
	})
	return out
}

// calleeName unwraps the called expression to its final identifier:
// f.Close → Close, os.Remove → Remove, x.y.z.Sync → Sync.
func calleeName(call *ast.CallExpr) (string, bool) {
	switch fn := call.Fun.(type) {
	case *ast.SelectorExpr:
		return fn.Sel.Name, true
	case *ast.Ident:
		return fn.Name, true
	}
	return "", false
}
