#!/usr/bin/env bash
# Crash-point torture harness: enumerate every filesystem operation the
# store's persistence stack performs across an ingest/compact/restart
# workload, then re-run the workload once per site failing that operation
# with EIO, and once per site crashing the filesystem there (written data
# survives, the process-crash model). After every run the store must reopen
# on a clean filesystem and recover bit-identically to a reference replay of
# the acknowledged writes — the only tolerated delta being the single
# in-flight operation whose WAL frame may have landed before the error.
#
# Runs race-instrumented: the sweeps exercise degrade/probe/compact
# interleavings that only the detector can vouch for.
#
# Tunables (env): TORTURE_COUNT (default 1) repeats each sweep.
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${TORTURE_COUNT:-1}"

echo "== torture: fail + crash sweeps, race-instrumented (count=$COUNT) =="
go test -race -count="$COUNT" -v -run 'TestTorture' ./internal/faultfs/torture/

echo "== torture: targeted store/server fault suites, race-instrumented =="
go test -race -count="$COUNT" -run 'Fault|Degraded|Quarantine|Scrub|ReadOnly|Torn|Recover|Injector|Passthrough' \
    ./ ./internal/wal/ ./internal/core/ ./internal/faultfs/ ./internal/server/

echo "torture: all sweeps passed"
