package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const legacyJSON = `[
  {"method": "focus-cmp", "implementations": 1000, "mean_latency_ms": 1.0},
  {"method": "breadth", "implementations": 1000, "mean_latency_ms": 4.0}
]`

const stampedJSON = `{
  "git_commit": "deadbeefdeadbeefdeadbeefdeadbeefdeadbeef",
  "date": "2026-01-01T00:00:00Z",
  "points": [
    {"method": "focus-cmp", "implementations": 1000, "mean_latency_ms": 0.4},
    {"method": "breadth", "implementations": 1000, "mean_latency_ms": 4.2},
    {"method": "best-match", "implementations": 1000, "mean_latency_ms": 2.0}
  ]
}`

func TestReadBenchBothShapes(t *testing.T) {
	legacy, label, err := readBench(writeFile(t, "legacy.json", legacyJSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(legacy) != 2 || label == "" {
		t.Fatalf("legacy shape misread: %d points, label %q", len(legacy), label)
	}
	stamped, label, err := readBench(writeFile(t, "stamped.json", stampedJSON))
	if err != nil {
		t.Fatal(err)
	}
	if len(stamped) != 3 {
		t.Fatalf("stamped shape misread: %d points", len(stamped))
	}
	if want := "deadbeefdead"; label == "" || !contains(label, want) {
		t.Fatalf("stamped label %q missing commit prefix %q", label, want)
	}
	if _, _, err := readBench(writeFile(t, "bad.json", `{"points": "nope"`)); err == nil {
		t.Fatal("malformed file accepted")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestDiffJoinsAndFlags(t *testing.T) {
	oldPts := []point{
		{Method: "focus-cmp", Implementations: 1000, MeanLatencyMS: 1.0},
		{Method: "breadth", Implementations: 1000, MeanLatencyMS: 4.0},
		{Method: "gone", Implementations: 1000, MeanLatencyMS: 1.0},
	}
	newPts := []point{
		{Method: "focus-cmp", Implementations: 1000, MeanLatencyMS: 0.4},
		{Method: "breadth", Implementations: 1000, MeanLatencyMS: 4.2},
		{Method: "best-match", Implementations: 1000, MeanLatencyMS: 2.0},
	}
	rows, onlyOld, onlyNew := diff(oldPts, newPts)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	// Sorted by name: breadth first, then focus-cmp.
	if rows[0].name != "breadth@1000" || rows[0].deltaPct < 4.9 || rows[0].deltaPct > 5.1 {
		t.Fatalf("breadth row = %+v", rows[0])
	}
	if rows[1].name != "focus-cmp@1000" || rows[1].deltaPct < -61 || rows[1].deltaPct > -59 {
		t.Fatalf("focus row = %+v", rows[1])
	}
	if len(onlyOld) != 1 || onlyOld[0] != "gone@1000" {
		t.Fatalf("onlyOld = %v", onlyOld)
	}
	if len(onlyNew) != 1 || onlyNew[0] != "best-match@1000" {
		t.Fatalf("onlyNew = %v", onlyNew)
	}
}

func TestReportThreshold(t *testing.T) {
	oldPts := []point{{Method: "m", Implementations: 1, MeanLatencyMS: 1.0}}
	slower := []point{{Method: "m", Implementations: 1, MeanLatencyMS: 1.3}}
	devnull, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer devnull.Close()
	if err := report(devnull, oldPts, slower, "a", "b", 15, 0.05); err == nil {
		t.Fatal("30% regression passed a 15% threshold")
	}
	if err := report(devnull, oldPts, slower, "a", "b", 50, 0.05); err != nil {
		t.Fatalf("30%% regression failed a 50%% threshold: %v", err)
	}
	if err := report(devnull, oldPts, nil, "a", "b", 15, 0.05); err == nil {
		t.Fatal("empty comparison passed")
	}
	// A 30% regression below the absolute noise floor must not trip the gate:
	// microsecond-scale cells jitter far beyond the relative threshold.
	tinyOld := []point{{Method: "m", Implementations: 1, MeanLatencyMS: 0.010}}
	tinyNew := []point{{Method: "m", Implementations: 1, MeanLatencyMS: 0.013}}
	if err := report(devnull, tinyOld, tinyNew, "a", "b", 15, 0.05); err != nil {
		t.Fatalf("3µs absolute regression tripped the 0.05ms noise floor: %v", err)
	}
}
