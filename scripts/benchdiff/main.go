// Command benchdiff compares two bench JSON files produced by `make bench`
// (cmd/experiments -bench-json) and prints the per-benchmark latency deltas:
//
//	go run ./scripts/benchdiff BENCH_PR4.json BENCH_PR5.json
//
// A cell whose latency regressed by more than -threshold percent (default
// 15) AND by more than -min-delta-ms absolute (default 0.05ms) is flagged
// and makes the command exit non-zero, so `make benchdiff` works as a CI
// gate. The absolute floor exists because the sweep's fastest cells sit in
// the tens of microseconds, where run-to-run scheduler jitter alone swings
// ±50% — a relative-only gate on those cells measures the machine, not the
// change. Both the legacy bare-array shape (BENCH_PR1/PR4) and the stamped
// {git_commit, date, points} envelope are accepted.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

type cacheStats struct {
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
}

type point struct {
	Method          string      `json:"method"`
	Implementations int         `json:"implementations"`
	MeanLatencyMS   float64     `json:"mean_latency_ms"`
	Cache           *cacheStats `json:"cache,omitempty"`
}

type stampedFile struct {
	GitCommit string  `json:"git_commit"`
	Date      string  `json:"date"`
	Points    []point `json:"points"`
}

// readBench loads either bench JSON shape and returns the points plus a
// provenance label for the report header.
func readBench(path string) ([]point, string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	var stamped stampedFile
	if err := json.Unmarshal(data, &stamped); err == nil && len(stamped.Points) > 0 {
		label := path
		if stamped.GitCommit != "" {
			label = fmt.Sprintf("%s (%.12s, %s)", path, stamped.GitCommit, stamped.Date)
		}
		return stamped.Points, label, nil
	}
	var bare []point
	if err := json.Unmarshal(data, &bare); err != nil {
		return nil, "", fmt.Errorf("%s: not a bench JSON file: %w", path, err)
	}
	return bare, path, nil
}

type row struct {
	name     string
	oldMS    float64
	newMS    float64
	deltaPct float64
}

// diff joins the two point sets on (method, implementations) and computes
// the latency delta for every cell present in both.
func diff(oldPts, newPts []point) (rows []row, onlyOld, onlyNew []string) {
	key := func(p point) string { return fmt.Sprintf("%s@%d", p.Method, p.Implementations) }
	oldBy := make(map[string]point, len(oldPts))
	for _, p := range oldPts {
		oldBy[key(p)] = p
	}
	seen := make(map[string]bool, len(newPts))
	for _, np := range newPts {
		k := key(np)
		seen[k] = true
		op, ok := oldBy[k]
		if !ok {
			onlyNew = append(onlyNew, k)
			continue
		}
		r := row{name: k, oldMS: op.MeanLatencyMS, newMS: np.MeanLatencyMS}
		if op.MeanLatencyMS > 0 {
			r.deltaPct = (np.MeanLatencyMS - op.MeanLatencyMS) / op.MeanLatencyMS * 100
		}
		rows = append(rows, r)
	}
	for _, p := range oldPts {
		if !seen[key(p)] {
			onlyOld = append(onlyOld, key(p))
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	sort.Strings(onlyOld)
	sort.Strings(onlyNew)
	return rows, onlyOld, onlyNew
}

func main() {
	threshold := flag.Float64("threshold", 15, "flag latency regressions above this percentage and exit non-zero")
	minDelta := flag.Float64("min-delta-ms", 0.05, "ignore regressions smaller than this many milliseconds absolute (noise floor for microsecond-scale cells)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold pct] [-min-delta-ms ms] OLD.json NEW.json")
		os.Exit(2)
	}
	oldPts, oldLabel, err := readBench(flag.Arg(0))
	if err == nil {
		var newPts []point
		var newLabel string
		newPts, newLabel, err = readBench(flag.Arg(1))
		if err == nil {
			err = report(os.Stdout, oldPts, newPts, oldLabel, newLabel, *threshold, *minDelta)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

// report prints the comparison and returns an error when any cell regressed
// beyond the relative threshold and the absolute noise floor.
func report(w *os.File, oldPts, newPts []point, oldLabel, newLabel string, threshold, minDelta float64) error {
	rows, onlyOld, onlyNew := diff(oldPts, newPts)
	fmt.Fprintf(w, "benchdiff: %s -> %s\n", oldLabel, newLabel)
	var regressed []string
	for _, r := range rows {
		mark := ""
		if r.deltaPct > threshold && r.newMS-r.oldMS > minDelta {
			mark = "  REGRESSION"
			regressed = append(regressed, r.name)
		}
		fmt.Fprintf(w, "  %-28s %10.4fms -> %10.4fms  %+7.1f%%%s\n", r.name, r.oldMS, r.newMS, r.deltaPct, mark)
	}
	for _, k := range onlyOld {
		fmt.Fprintf(w, "  %-28s only in old file\n", k)
	}
	for _, k := range onlyNew {
		fmt.Fprintf(w, "  %-28s only in new file\n", k)
	}
	for _, l := range userSpeedups(newPts) {
		fmt.Fprintf(w, "  %s\n", l)
	}
	for _, l := range cacheSummaries(newPts) {
		fmt.Fprintf(w, "  %s\n", l)
	}
	if len(rows) == 0 {
		return fmt.Errorf("no comparable cells between the two files")
	}
	if len(regressed) > 0 {
		return fmt.Errorf("%d cell(s) regressed beyond %.0f%%: %v", len(regressed), threshold, regressed)
	}
	return nil
}

// userSpeedups summarizes the user-store cells of one bench file: for every
// (strategy, size) with both a user-scan/ and a user-append/ cell, the
// materialization speedup. Informational — the regression gate above already
// covers the cells individually once both files carry them.
// cacheSummaries reports the new file's block-cache cells: hit rate per
// cached cell and the cold-to-warm speedup per size. Informational — the
// per-cell regression gate covers the latencies once both files carry them.
func cacheSummaries(pts []point) []string {
	cold := make(map[int]float64)
	for _, p := range pts {
		if p.Method == "block-cache/cold" {
			cold[p.Implementations] = p.MeanLatencyMS
		}
	}
	var out []string
	for _, p := range pts {
		if !strings.HasPrefix(p.Method, "block-cache/") || p.Cache == nil {
			continue
		}
		total := p.Cache.Hits + p.Cache.Misses
		if total == 0 {
			continue
		}
		line := fmt.Sprintf("cache %-25s %5.1f%% hit rate", fmt.Sprintf("%s@%d", strings.TrimPrefix(p.Method, "block-cache/"), p.Implementations),
			100*float64(p.Cache.Hits)/float64(total))
		if c, ok := cold[p.Implementations]; ok && p.MeanLatencyMS > 0 {
			line += fmt.Sprintf("  %6.1fx vs cold", c/p.MeanLatencyMS)
		}
		out = append(out, line)
	}
	sort.Strings(out)
	return out
}

func userSpeedups(pts []point) []string {
	scan := make(map[string]float64)
	for _, p := range pts {
		if strings.HasPrefix(p.Method, "user-scan/") {
			scan[fmt.Sprintf("%s@%d", strings.TrimPrefix(p.Method, "user-scan/"), p.Implementations)] = p.MeanLatencyMS
		}
	}
	var out []string
	for _, p := range pts {
		if !strings.HasPrefix(p.Method, "user-append/") {
			continue
		}
		k := fmt.Sprintf("%s@%d", strings.TrimPrefix(p.Method, "user-append/"), p.Implementations)
		if s, ok := scan[k]; ok && p.MeanLatencyMS > 0 {
			out = append(out, fmt.Sprintf("user view %-24s %10.4fms -> %10.4fms  %6.1fx (scan -> materialized)",
				k, s, p.MeanLatencyMS, s/p.MeanLatencyMS))
		}
	}
	sort.Strings(out)
	return out
}
