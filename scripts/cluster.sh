#!/usr/bin/env bash
# Cluster test: a race-instrumented 3-worker scatter-gather cluster next to a
# single-node reference serving the same artifact, checked end to end:
#
#   - every probe body (all four strategies, metric variants, batch, and the
#     error cases) must come back BYTE-identical from the coordinator and the
#     reference — the distributed ranking contract;
#   - a distributed loadgen run (driver fanning out over two -serve loadgen
#     workers) hammers the coordinator with zero non-200s;
#   - SIGKILL of a shard worker mid-traffic must degrade, not fail: responses
#     carry "degraded":true, partial_failures moves, and after the worker
#     restarts the coordinator reattaches and rankings are bit-identical
#     again;
#   - a cluster-wide two-phase snapshot swap driven under load (POST
#     /v1/reload on the coordinator while loadgen runs) must commit on every
#     node, land everyone on the same epoch, and stay bit-identical to the
#     reloaded reference.
#
# Tunables (env): CLUSTER_DURATION (default 5s, the under-load swap phase),
# CLUSTER_BASE_PORT (default 18090).
set -euo pipefail
cd "$(dirname "$0")/.."

DURATION="${CLUSTER_DURATION:-5s}"
BASE="${CLUSTER_BASE_PORT:-18090}"
REF_ADDR="127.0.0.1:$BASE"
CO_ADDR="127.0.0.1:$((BASE + 1))"
W_HTTP=("127.0.0.1:$((BASE + 2))" "127.0.0.1:$((BASE + 3))" "127.0.0.1:$((BASE + 4))")
W_SHARD=("127.0.0.1:$((BASE + 5))" "127.0.0.1:$((BASE + 6))" "127.0.0.1:$((BASE + 7))")
LG_SERVE=("127.0.0.1:$((BASE + 8))" "127.0.0.1:$((BASE + 9))")
RANGES=("0:7000" "7000:14000" "14000:-1")

TMP="$(mktemp -d)"
PIDS=()
cleanup() {
    for pid in ${PIDS[@]+"${PIDS[@]}"}; do kill "$pid" 2>/dev/null || true; done
    rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
    echo "cluster: $*" >&2
    for log in "$TMP"/*.log; do
        echo "--- $log" >&2
        tail -20 "$log" >&2
    done
    exit 1
}

gen_library() { # gen_library <implementations> <file>
    awk -v n="$1" 'BEGIN{
        srand(11)
        for (i = 0; i < n; i++) {
            m = 2 + int(rand() * 5)
            printf "{\"goal\":\"g%d\",\"actions\":[", i % 8000
            for (j = 0; j < m; j++)
                printf "%s\"a%d\"", (j ? "," : ""), int(rand() * 400)
            print "]}"
        }
    }' >"$2"
}

LIB="$TMP/cluster.jsonl"
gen_library 20000 "$LIB"
# The post-swap artifact: the same library grown by 3000 implementations.
# Only the last shard range is open-ended, so growth lands there.
cp "$LIB" "$TMP/cluster2.jsonl"
gen_library 3000 "$TMP/extra.jsonl"
cat "$TMP/extra.jsonl" >>"$TMP/cluster2.jsonl"

echo "cluster: building race-instrumented goalrecd and loadgen"
go build -race -o "$TMP/goalrecd" ./cmd/goalrecd
go build -o "$TMP/loadgen" ./cmd/loadgen

wait_ready() { # wait_ready <url>
    for _ in $(seq 1 150); do
        if curl -fsS "$1" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    fail "$1 never became ready"
}

start_worker() { # start_worker <index>
    local i="$1"
    "$TMP/goalrecd" -library "$LIB" -quiet \
        -role worker -addr "${W_HTTP[$i]}" \
        -cluster-addr "${W_SHARD[$i]}" -shard-range "${RANGES[$i]}" \
        2>>"$TMP/worker$i.log" &
    WORKER_PIDS[$i]=$!
    PIDS+=($!)
}

echo "cluster: starting single-node reference, 3 shard workers, coordinator"
"$TMP/goalrecd" -library "$LIB" -addr "$REF_ADDR" -quiet 2>>"$TMP/ref.log" &
PIDS+=($!)
declare -a WORKER_PIDS
for i in 0 1 2; do start_worker "$i"; done
for i in 0 1 2; do wait_ready "http://${W_HTTP[$i]}/readyz"; done
"$TMP/goalrecd" -library "$LIB" -quiet \
    -role coordinator -addr "$CO_ADDR" \
    -peers "${W_SHARD[0]},${W_SHARD[1]},${W_SHARD[2]}" \
    -heartbeat 500ms 2>>"$TMP/coordinator.log" &
PIDS+=($!)
wait_ready "http://$REF_ADDR/readyz"
wait_ready "http://$CO_ADDR/readyz"

PROBES=(
    '{"activity":["a1","a2","a3"],"strategy":"focus-cmp","k":5}'
    '{"activity":["a1","a2","a3"],"strategy":"focus-cl","k":7}'
    '{"activity":["a5","a9"],"strategy":"breadth","k":10}'
    '{"activity":["a5","a9","a17"],"strategy":"best-match","k":10}'
    '{"activity":["a5","a9","a17"],"strategy":"best-match","metric":"jaccard","k":10}'
    '{"activity":["a1","zz-unknown"],"strategy":"breadth","k":5}'
    '{"activity":["a1"],"strategy":"no-such-strategy","k":5}'
    '{"activity":["a1"],"strategy":"breadth","metric":"hamming","k":5}'
)
BATCH='{"activities":[["a1","a2"],["a5"],["a1","zz-unknown"]],"strategy":"focus-cmp","k":6}'

assert_identical() { # assert_identical <phase>
    local body ref co
    for body in "${PROBES[@]}"; do
        ref="$(curl -sS -X POST -H 'Content-Type: application/json' -d "$body" "http://$REF_ADDR/v1/recommend")"
        co="$(curl -sS -X POST -H 'Content-Type: application/json' -d "$body" "http://$CO_ADDR/v1/recommend")"
        if [ "$ref" != "$co" ]; then
            echo "probe: $body" >&2
            echo "reference:   $ref" >&2
            echo "coordinator: $co" >&2
            fail "$1: coordinator response diverged from single node"
        fi
    done
    ref="$(curl -sS -X POST -H 'Content-Type: application/json' -d "$BATCH" "http://$REF_ADDR/v1/recommend/batch")"
    co="$(curl -sS -X POST -H 'Content-Type: application/json' -d "$BATCH" "http://$CO_ADDR/v1/recommend/batch")"
    if [ "$ref" != "$co" ]; then
        fail "$1: batch response diverged from single node"
    fi
}

echo "cluster: checking bit-identical rankings (healthy, 3/3 workers)"
assert_identical "healthy"

echo "cluster: distributed loadgen (driver + 2 -serve workers) against the coordinator"
for i in 0 1; do
    "$TMP/loadgen" -serve "${LG_SERVE[$i]}" -library "$LIB" 2>>"$TMP/loadgen$i.log" &
    PIDS+=($!)
done
sleep 0.3
"$TMP/loadgen" -url "http://$CO_ADDR" -library "$LIB" \
    -workers "${LG_SERVE[0]},${LG_SERVE[1]}" \
    -concurrency 8 -requests 400 -strategy best-match

echo "cluster: SIGKILL worker 1 (shard ${RANGES[1]}) and checking degraded serving"
kill -9 "${WORKER_PIDS[1]}"
DEGRADED="$(curl -sS -X POST -H 'Content-Type: application/json' \
    -d '{"activity":["a1","a2","a3"],"strategy":"focus-cmp","k":5}' "http://$CO_ADDR/v1/recommend")"
case "$DEGRADED" in
*'"degraded":true'*) ;;
*) fail "response after worker kill is not degraded: $DEGRADED" ;;
esac
METRICS="$(curl -fsS "http://$CO_ADDR/v1/metrics")"
case "$METRICS" in
*'"partial_failures":0,'*) fail "partial_failures did not move after worker kill: $METRICS" ;;
esac

echo "cluster: restarting worker 1 and waiting for bit-identical resume"
start_worker 1
wait_ready "http://${W_HTTP[1]}/readyz"
resumed=""
for _ in $(seq 1 100); do
    co="$(curl -sS -X POST -H 'Content-Type: application/json' \
        -d '{"activity":["a1","a2","a3"],"strategy":"focus-cmp","k":5}' "http://$CO_ADDR/v1/recommend")"
    case "$co" in
    *'"degraded":true'*) sleep 0.2 ;;
    *)
        resumed=1
        break
        ;;
    esac
done
[ -n "$resumed" ] || fail "coordinator never reattached to the restarted worker"
assert_identical "rejoined"

echo "cluster: two-phase snapshot swap under load ($DURATION of traffic)"
cp "$TMP/cluster2.jsonl" "$LIB"
"$TMP/loadgen" -url "http://$CO_ADDR" -library "$LIB" \
    -concurrency 8 -duration "$DURATION" -strategy breadth >"$TMP/loadgen-swap.out" 2>&1 &
LG_PID=$!
PIDS+=($LG_PID)
sleep 1
curl -fsS -X POST "http://$CO_ADDR/v1/reload" || fail "cluster reload failed"
echo
curl -fsS -X POST "http://$REF_ADDR/v1/reload" >/dev/null || fail "reference reload failed"
if ! wait "$LG_PID"; then
    cat "$TMP/loadgen-swap.out" >&2
    fail "loadgen failed across the swap"
fi
cat "$TMP/loadgen-swap.out"

echo "cluster: checking bit-identical rankings on the swapped artifact (epoch 2)"
assert_identical "post-swap"
EPOCH="$(curl -sS -X POST -H 'Content-Type: application/json' \
    -d '{"activity":["a1"],"strategy":"breadth","k":3}' "http://$CO_ADDR/v1/recommend")"
case "$EPOCH" in
*'"epoch":2,'*) ;;
*) fail "post-swap response not at epoch 2: $EPOCH" ;;
esac

echo "cluster: final metrics"
METRICS="$(curl -fsS "http://$CO_ADDR/v1/metrics")"
echo "$METRICS"
case "$METRICS" in
*'"cluster": {"workers":3,"connected":3,'*) ;;
*) fail "cluster metrics block missing or not fully connected" ;;
esac
case "$METRICS" in
*'"scatters":0,'*) fail "scatters counter never moved" ;;
esac
case "$METRICS" in
*'"committed":1,'*) ;;
*) fail "two-phase swap not recorded as committed" ;;
esac
case "$METRICS" in
*'"floor_broadcasts":0,'*) fail "cross-node score floor never broadcast" ;;
esac

echo "cluster: PASS"
