#!/usr/bin/env bash
# Soak test: run a race-instrumented goalrecd under sustained overload and
# check the request-lifecycle contract end to end:
#
#   - loadgen -overload hammers the daemon past its -max-inflight gate;
#     every response must be 200, 503 (shed) or 504 (deadline) — anything
#     else fails the run (loadgen exits nonzero).
#   - the daemon must survive the whole run with the race detector silent
#     and shut down cleanly on SIGTERM (exit code 0).
#   - a second loadgen phase (-users) drives the per-user store: interleaved
#     appends and stored-history recommends across SOAK_USERS users, racing
#     view materialization, eviction and the -watch reload loop.
#
# Tunables (env): SOAK_DURATION (default 30s), SOAK_USER_DURATION (default
# 15s), SOAK_USERS (default 200), SOAK_LIBRARY, SOAK_ADDR.
set -euo pipefail
cd "$(dirname "$0")/.."

DURATION="${SOAK_DURATION:-30s}"
USER_DURATION="${SOAK_USER_DURATION:-15s}"
USERS="${SOAK_USERS:-200}"
ADDR="${SOAK_ADDR:-127.0.0.1:18080}"

TMP="$(mktemp -d)"
DAEMON_PID=""
cleanup() {
    [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

# A library big enough that scoring (not HTTP plumbing) is the bottleneck —
# otherwise the admission gate never fills and shedding goes unexercised.
LIB="${SOAK_LIBRARY:-$TMP/soak.jsonl}"
if [ ! -f "$LIB" ]; then
    echo "soak: generating synthetic library"
    awk 'BEGIN{
        srand(7)
        for (i = 0; i < 50000; i++) {
            n = 3 + int(rand() * 6)
            printf "{\"goal\":\"g%d\",\"actions\":[", i % 20000
            for (j = 0; j < n; j++)
                printf "%s\"a%d\"", (j ? "," : ""), int(rand() * 500)
            print "]}"
        }
    }' >"$LIB"
fi

echo "soak: building race-instrumented goalrecd and loadgen"
go build -race -o "$TMP/goalrecd" ./cmd/goalrecd
go build -o "$TMP/loadgen" ./cmd/loadgen

"$TMP/goalrecd" -library "$LIB" -addr "$ADDR" -quiet \
    -max-inflight 2 -admission-wait 200us -request-timeout 250ms \
    -watch 100ms 2>"$TMP/goalrecd.log" &
DAEMON_PID=$!

ready=""
for _ in $(seq 1 100); do
    if curl -fsS "http://$ADDR/readyz" >/dev/null 2>&1; then
        ready=1
        break
    fi
    sleep 0.1
done
if [ -z "$ready" ]; then
    echo "soak: daemon never became ready" >&2
    cat "$TMP/goalrecd.log" >&2
    exit 1
fi

echo "soak: overloading for $DURATION"
"$TMP/loadgen" -url "http://$ADDR" -library "$LIB" -overload \
    -concurrency 16 -duration "$DURATION" -strategy best-match

echo "soak: user-store phase for $USER_DURATION (append/recommend over $USERS users)"
"$TMP/loadgen" -url "http://$ADDR" -library "$LIB" -overload \
    -concurrency 16 -duration "$USER_DURATION" -strategy breadth -users "$USERS"

echo "soak: final metrics"
curl -fsS "http://$ADDR/v1/metrics"

echo "soak: sending SIGTERM"
kill -TERM "$DAEMON_PID"
if ! wait "$DAEMON_PID"; then
    status=$?
    echo "soak: daemon exited with status $status (race detected or unclean shutdown)" >&2
    cat "$TMP/goalrecd.log" >&2
    exit 1
fi
DAEMON_PID=""
echo "soak: clean shutdown, PASS"
