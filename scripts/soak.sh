#!/usr/bin/env bash
# Soak test: run a race-instrumented goalrecd under sustained overload and
# check the request-lifecycle contract end to end:
#
#   - loadgen -overload hammers the daemon past its -max-inflight gate;
#     every response must be 200, 503 (shed) or 504 (deadline) — anything
#     else fails the run (loadgen exits nonzero).
#   - the daemon must survive the whole run with the race detector silent
#     and shut down cleanly on SIGTERM (exit code 0).
#   - a second loadgen phase (-users) drives the per-user store: interleaved
#     appends and stored-history recommends across SOAK_USERS users, racing
#     view materialization, eviction and the -watch reload loop.
#
# Tunables (env): SOAK_DURATION (default 30s), SOAK_USER_DURATION (default
# 15s), SOAK_RESTART_DURATION (default 10s), SOAK_USERS (default 200),
# SOAK_LIBRARY, SOAK_ADDR.
#
# Memory-capped mode: SOAK_SNAPSHOT=1 runs the daemon over a durable store
# with block-compressed snapshots and a small compaction threshold, then —
# after the overload phases — restarts it on the compacted store so serving
# recovers from the memory-mapped compressed snapshot and recommends decode
# posting blocks through the shared cache. SOAK_BLOCK_CACHE_BYTES sizes that
# cache (use a small value plus GOMEMLIMIT to soak the larger-than-RAM
# serving path); the restarted phase asserts the block_cache counters moved
# in /v1/metrics.
set -euo pipefail
cd "$(dirname "$0")/.."

DURATION="${SOAK_DURATION:-30s}"
USER_DURATION="${SOAK_USER_DURATION:-15s}"
USERS="${SOAK_USERS:-200}"
ADDR="${SOAK_ADDR:-127.0.0.1:18080}"

TMP="$(mktemp -d)"
DAEMON_PID=""
cleanup() {
    [ -n "$DAEMON_PID" ] && kill "$DAEMON_PID" 2>/dev/null || true
    rm -rf "$TMP"
}
trap cleanup EXIT

# A library big enough that scoring (not HTTP plumbing) is the bottleneck —
# otherwise the admission gate never fills and shedding goes unexercised.
LIB="${SOAK_LIBRARY:-$TMP/soak.jsonl}"
if [ ! -f "$LIB" ]; then
    echo "soak: generating synthetic library"
    awk 'BEGIN{
        srand(7)
        for (i = 0; i < 50000; i++) {
            n = 3 + int(rand() * 6)
            printf "{\"goal\":\"g%d\",\"actions\":[", i % 20000
            for (j = 0; j < n; j++)
                printf "%s\"a%d\"", (j ? "," : ""), int(rand() * 500)
            print "]}"
        }
    }' >"$LIB"
fi

STORE_FLAGS=()
if [ -n "${SOAK_SNAPSHOT:-}" ]; then
    # The seed swap journals the whole library, so a small threshold makes
    # the store compact into a compressed snapshot almost immediately.
    STORE_FLAGS+=(-snapshot-dir "$TMP/store" -snapshot-compress -compact-wal-bytes 1048576)
fi
if [ -n "${SOAK_BLOCK_CACHE_BYTES:-}" ]; then
    STORE_FLAGS+=(-block-cache-bytes "$SOAK_BLOCK_CACHE_BYTES")
fi

echo "soak: building race-instrumented goalrecd and loadgen"
go build -race -o "$TMP/goalrecd" ./cmd/goalrecd
go build -o "$TMP/loadgen" ./cmd/loadgen

start_daemon() {
    "$TMP/goalrecd" -library "$LIB" -addr "$ADDR" -quiet \
        -max-inflight 2 -admission-wait 200us -request-timeout 250ms \
        -watch 100ms ${STORE_FLAGS[@]+"${STORE_FLAGS[@]}"} 2>>"$TMP/goalrecd.log" &
    DAEMON_PID=$!
    for _ in $(seq 1 100); do
        if curl -fsS "http://$ADDR/readyz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "soak: daemon never became ready" >&2
    cat "$TMP/goalrecd.log" >&2
    exit 1
}

stop_daemon() {
    kill -TERM "$DAEMON_PID"
    if ! wait "$DAEMON_PID"; then
        echo "soak: daemon exited uncleanly (race detected or unclean shutdown)" >&2
        cat "$TMP/goalrecd.log" >&2
        exit 1
    fi
    DAEMON_PID=""
}

start_daemon

echo "soak: overloading for $DURATION"
"$TMP/loadgen" -url "http://$ADDR" -library "$LIB" -overload \
    -concurrency 16 -duration "$DURATION" -strategy best-match

echo "soak: user-store phase for $USER_DURATION (append/recommend over $USERS users)"
"$TMP/loadgen" -url "http://$ADDR" -library "$LIB" -overload \
    -concurrency 16 -duration "$USER_DURATION" -strategy breadth -users "$USERS"

echo "soak: final metrics"
METRICS="$(curl -fsS "http://$ADDR/v1/metrics")"
echo "$METRICS"

if [ -n "${SOAK_SNAPSHOT:-}" ]; then
    # Wait for the background compaction so the restart recovers from the
    # compressed snapshot rather than replaying the whole WAL.
    compacted=""
    for _ in $(seq 1 100); do
        if ls "$TMP/store"/snap-*.gsnp >/dev/null 2>&1; then
            compacted=1
            break
        fi
        sleep 0.1
    done
    if [ -z "$compacted" ]; then
        echo "soak: store never compacted into a snapshot" >&2
        cat "$TMP/goalrecd.log" >&2
        exit 1
    fi
    stop_daemon
    echo "soak: restarting on the compacted store (mmap snapshot + block cache)"
    start_daemon
    "$TMP/loadgen" -url "http://$ADDR" -library "$LIB" -overload \
        -concurrency 16 -duration "${SOAK_RESTART_DURATION:-10s}" -strategy breadth
    METRICS="$(curl -fsS "http://$ADDR/v1/metrics")"
    echo "$METRICS"
    if [ -n "${SOAK_BLOCK_CACHE_BYTES:-}" ]; then
        if ! echo "$METRICS" | grep -q '"block_cache": {"enabled": true'; then
            echo "soak: block cache enabled but not reported in metrics" >&2
            exit 1
        fi
        # Serving now decodes posting blocks from the mapped compressed
        # snapshot: the cache counters must have moved.
        if echo "$METRICS" | grep -q '"block_cache": {"enabled": true, "counters": {"hits":0,"misses":0,'; then
            echo "soak: block cache enabled but never touched by serving" >&2
            exit 1
        fi
    fi
fi

echo "soak: sending SIGTERM"
stop_daemon
echo "soak: clean shutdown, PASS"
