package goalrec

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"sync"

	"goalrec/internal/core"
	"goalrec/internal/intset"
	"goalrec/internal/strategy"
	"goalrec/internal/vectorspace"
)

// ErrCanceled marks a recommendation query aborted by its context before it
// completed. Errors returned by RecommendContext wrap both ErrCanceled and
// the context's own error, so errors.Is matches any of ErrCanceled,
// context.Canceled and context.DeadlineExceeded.
var ErrCanceled = strategy.ErrCanceled

// Stats summarizes a library's shape; see the embedded field docs in
// internal/core. Connectivity (mean implementations per action) is the
// number the paper's complexity analysis pivots on.
type Stats = core.Stats

// Builder accumulates goal implementations by name and freezes them into a
// Library. The zero value is ready to use.
type Builder struct {
	b     core.Builder
	vocab *core.Vocabulary
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{vocab: core.NewVocabulary()}
}

func (b *Builder) init() {
	if b.vocab == nil {
		b.vocab = core.NewVocabulary()
	}
}

// AddImplementation records one goal implementation: the goal and the
// actions that jointly fulfill it. Duplicate actions are merged; an
// implementation needs at least one action.
func (b *Builder) AddImplementation(goal string, actions ...string) error {
	b.init()
	if goal == "" {
		return errors.New("goalrec: empty goal name")
	}
	ids := make([]core.ActionID, len(actions))
	for i, a := range actions {
		if a == "" {
			return fmt.Errorf("goalrec: implementation of %q has an empty action name", goal)
		}
		ids[i] = core.ActionID(b.vocab.Actions.Intern(a))
	}
	g := core.GoalID(b.vocab.Goals.Intern(goal))
	if _, err := b.b.Add(g, ids); err != nil {
		return fmt.Errorf("goalrec: adding implementation of %q: %w", goal, err)
	}
	return nil
}

// Len returns the number of implementations added.
func (b *Builder) Len() int { return b.b.Len() }

// BuildOption customizes how Build freezes the library.
type BuildOption func(*buildOptions)

type buildOptions struct {
	impactOrdering bool
}

// WithImpactOrdering relabels the frozen library's internal ids for scan
// locality and bound sharpness: action ids become frequency-descending and
// implementation ids are clustered by size and hottest action. The name
// dictionary is permuted along with the ids, so every name-level result —
// recommendations, spaces, explanations — carries the same actions with the
// same scores; only the order among exact score ties (which follows internal
// ids) may differ from the plain layout. What changes materially is how
// effective the threshold-aware pruned scans (WithPruning) are.
func WithImpactOrdering() BuildOption {
	return func(o *buildOptions) { o.impactOrdering = true }
}

// Build freezes the implementations into an immutable Library. The Builder
// remains usable; later Adds do not affect the built Library.
func (b *Builder) Build(opts ...BuildOption) *Library {
	b.init()
	var o buildOptions
	for _, opt := range opts {
		opt(&o)
	}
	out := &Library{lib: b.b.Build(), vocab: b.vocab}
	if o.impactOrdering {
		out = out.ImpactOrdered()
	}
	return out
}

// ImpactOrdered returns an impact-ordered copy of the library (see
// WithImpactOrdering); use it for libraries that arrive via the loaders
// rather than a Builder. The copy has its own permuted name dictionary, so
// both libraries answer name-level queries with the same actions and scores
// (tie order may differ; see WithImpactOrdering).
func (l *Library) ImpactOrdered() *Library {
	lib, perm := core.ImpactOrder(l.lib)
	return &Library{lib: lib, vocab: permuteVocab(l.vocab, perm)}
}

// permuteVocab rebuilds the vocabulary so that new action id n carries the
// name old id perm.ActionOld[n] had. Names interned beyond the permuted
// range (by newer epochs of a shared Engine vocabulary) keep their ids, and
// goal names are untouched.
func permuteVocab(v *core.Vocabulary, perm core.ImpactPermutation) *core.Vocabulary {
	nv := core.NewVocabulary()
	for _, old := range perm.ActionOld {
		nv.Actions.Intern(v.Actions.Name(int32(old)))
	}
	for id := int32(len(perm.ActionOld)); id < int32(v.Actions.Len()); id++ {
		nv.Actions.Intern(v.Actions.Name(id))
	}
	for id := int32(0); id < int32(v.Goals.Len()); id++ {
		nv.Goals.Intern(v.Goals.Name(id))
	}
	return nv
}

// Library is an immutable goal-implementation set with its name dictionary.
// It is safe for concurrent use.
type Library struct {
	lib   *core.Library
	vocab *core.Vocabulary
}

// NumImplementations returns the number of goal implementations.
func (l *Library) NumImplementations() int { return l.lib.NumImplementations() }

// NumActions returns the size of the library's action id space. It is a
// property of the snapshot, not of the (possibly still growing) vocabulary,
// so it stays stable for Engine snapshots while newer epochs intern more
// names.
func (l *Library) NumActions() int { return l.lib.NumActions() }

// NumGoals returns the size of the library's goal id space; like NumActions
// it is epoch-stable.
func (l *Library) NumGoals() int { return l.lib.NumGoals() }

// Epoch returns the snapshot's epoch within its Engine lineage. Libraries
// built directly (Builder, loaders) are epoch 0.
func (l *Library) Epoch() uint64 { return l.lib.Epoch() }

// Stats scans the library and returns its summary statistics.
func (l *Library) Stats() Stats { return l.lib.Stats() }

// Actions returns the snapshot's action names, sorted. Names interned by
// newer epochs of a shared Engine vocabulary are excluded.
func (l *Library) Actions() []string {
	out := make([]string, 0, l.lib.NumActions())
	for id := 0; id < l.lib.NumActions(); id++ {
		out = append(out, l.vocab.ActionName(core.ActionID(id)))
	}
	sort.Strings(out)
	return out
}

// Goals returns the snapshot's goal names, sorted.
func (l *Library) Goals() []string {
	out := make([]string, 0, l.lib.NumGoals())
	for id := 0; id < l.lib.NumGoals(); id++ {
		out = append(out, l.vocab.GoalName(core.GoalID(id)))
	}
	sort.Strings(out)
	return out
}

// resolve maps action names to ids, dropping names unknown to this
// snapshot; use resolveSplit or UnknownActions to surface them.
func (l *Library) resolve(actions []string) []core.ActionID {
	ids, _ := l.resolveSplit(actions)
	return ids
}

// resolveSplit maps action names to ids and collects the names this
// snapshot cannot serve: names missing from the vocabulary, plus names whose
// id lies beyond the snapshot's action space (interned by a newer epoch). An
// unknown action cannot contribute to any goal, and surfacing it lets
// clients distinguish vocabulary misses from actions that merely rank low.
func (l *Library) resolveSplit(actions []string) ([]core.ActionID, []string) {
	ids := make([]core.ActionID, 0, len(actions))
	var unknown []string
	for _, a := range actions {
		if id, ok := l.vocab.Actions.Lookup(a); ok && int(id) < l.lib.NumActions() {
			ids = append(ids, core.ActionID(id))
		} else {
			unknown = append(unknown, a)
		}
	}
	return ids, unknown
}

// UnknownActions returns the activity's actions this snapshot cannot
// resolve, deduplicated and sorted. An empty activity — or one fully covered
// by the vocabulary — yields nil.
func (l *Library) UnknownActions(activity []string) []string {
	_, unknown := l.resolveSplit(activity)
	return normalizeUnknown(unknown)
}

// normalizeUnknown sorts and deduplicates an unknown-name list in place,
// mapping empty to nil — the canonical UnknownActions shape.
func normalizeUnknown(unknown []string) []string {
	if len(unknown) == 0 {
		return nil
	}
	sort.Strings(unknown)
	out := unknown[:1]
	for _, a := range unknown[1:] {
		if a != out[len(out)-1] {
			out = append(out, a)
		}
	}
	return out
}

// resolveBatchSplit is resolveSplit over a whole batch in one vocabulary
// pass: each distinct name is looked up (and bounds-checked against the
// snapshot's action space) exactly once, memoized, and reused across
// activities — batches repeat names heavily, and per-item re-resolution was
// the dominant non-scoring cost of large batches. Per item it returns the
// resolved ids and the normalized unknown-name list (same shape as
// UnknownActions).
func (l *Library) resolveBatchSplit(activities [][]string) ([][]core.ActionID, [][]string) {
	const unknownID = core.ActionID(-1)
	memo := make(map[string]core.ActionID, 64)
	ids := make([][]core.ActionID, len(activities))
	unknown := make([][]string, len(activities))
	for i, activity := range activities {
		out := make([]core.ActionID, 0, len(activity))
		var unk []string
		for _, a := range activity {
			id, seen := memo[a]
			if !seen {
				id = unknownID
				if v, ok := l.vocab.Actions.Lookup(a); ok && int(v) < l.lib.NumActions() {
					id = core.ActionID(v)
				}
				memo[a] = id
			}
			if id == unknownID {
				unk = append(unk, a)
			} else {
				out = append(out, id)
			}
		}
		ids[i] = out
		unknown[i] = normalizeUnknown(unk)
	}
	return ids, unknown
}

// GoalSpace returns the names of the goals associated with the activity
// through at least one implementation — the paper's GS(H).
func (l *Library) GoalSpace(activity []string) []string {
	gs := l.lib.GoalSpace(l.resolve(activity))
	out := make([]string, len(gs))
	for i, g := range gs {
		out[i] = l.vocab.GoalName(g)
	}
	sort.Strings(out)
	return out
}

// ActionSpace returns the names of the actions co-participating with the
// activity in some implementation — the paper's AS(H).
func (l *Library) ActionSpace(activity []string) []string {
	as := l.lib.ActionSpace(l.resolve(activity))
	out := make([]string, len(as))
	for i, a := range as {
		out[i] = l.vocab.ActionName(a)
	}
	sort.Strings(out)
	return out
}

// Implementation is one goal implementation by name.
type Implementation struct {
	Goal    string
	Actions []string
}

// ImplementationsOf returns every implementation of the named goal, in
// insertion order. Unknown goals yield nil.
func (l *Library) ImplementationsOf(goal string) []Implementation {
	gid, ok := l.vocab.Goals.Lookup(goal)
	if !ok {
		return nil
	}
	var out []Implementation
	for _, p := range l.lib.ImplsOfGoal(core.GoalID(gid)) {
		out = append(out, l.implementation(p))
	}
	return out
}

// ImplementationsWith returns every implementation containing the named
// action, in insertion order — the paper's implementation space IS(a).
// Unknown actions yield nil.
func (l *Library) ImplementationsWith(action string) []Implementation {
	aid, ok := l.vocab.Actions.Lookup(action)
	if !ok {
		return nil
	}
	var out []Implementation
	for _, p := range l.lib.ImplsOfAction(core.ActionID(aid)) {
		out = append(out, l.implementation(p))
	}
	return out
}

func (l *Library) implementation(p core.ImplID) Implementation {
	impl := Implementation{Goal: l.vocab.GoalName(l.lib.Goal(p))}
	for _, a := range l.lib.Actions(p) {
		impl.Actions = append(impl.Actions, l.vocab.ActionName(a))
	}
	return impl
}

// GoalProgress reports, for every goal in the activity's goal space, the
// completeness of its best implementation: 1.0 means some implementation of
// the goal is fully covered by the activity.
func (l *Library) GoalProgress(activity []string) map[string]float64 {
	h := intset.FromUnsorted(l.resolve(activity))
	out := make(map[string]float64)
	for _, g := range l.lib.GoalSpace(h) {
		out[l.vocab.GoalName(g)] = l.lib.GoalCompleteness(g, h, nil)
	}
	return out
}

// GoalMatch is one inferred goal: how far its best implementation has
// progressed under the activity, and how many of the activity's actions
// contribute to it.
type GoalMatch struct {
	// Goal is the goal's name.
	Goal string
	// Progress is the completeness of the goal's best implementation
	// (1.0 = some implementation fully covered).
	Progress float64
	// Support is the number of distinct activity actions contributing to
	// the goal through at least one implementation.
	Support int
}

// TopGoals infers the k goals the activity most plausibly aims at, ranked by
// progress (descending), then support, then name. k < 0 returns the whole
// goal space. This is the "recognize the intended user goals" step of the
// paper's Section 1 made directly available.
func (l *Library) TopGoals(activity []string, k int) []GoalMatch {
	if k == 0 {
		return nil
	}
	h := intset.FromUnsorted(l.resolve(activity))
	out := make([]GoalMatch, 0, 16)
	for _, g := range l.lib.GoalSpace(h) {
		support := 0
		for _, a := range h {
			if l.lib.ActionGoalCount(a, g) > 0 {
				support++
			}
		}
		out = append(out, GoalMatch{
			Goal:     l.vocab.GoalName(g),
			Progress: l.lib.GoalCompleteness(g, h, nil),
			Support:  support,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Progress != out[j].Progress {
			return out[i].Progress > out[j].Progress
		}
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return out[i].Goal < out[j].Goal
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// Explanation justifies recommending one action for an activity: the goals
// the action contributes to (restricted to the activity's goal space) and
// the progress each goal would make if the action were performed.
type Explanation struct {
	// Goal is the goal's name.
	Goal string
	// Implementations is the number of the goal's implementations the
	// action contributes through.
	Implementations int
	// ProgressBefore is the goal's best-implementation completeness under
	// the activity alone.
	ProgressBefore float64
	// ProgressAfter is the completeness once the action is added.
	ProgressAfter float64
}

// Explain reports why action is (or would be) a goal-based recommendation
// for the activity: every goal of the activity's goal space the action
// contributes to, with before/after progress, ordered by after-progress. An
// empty result means the action serves no goal the activity points at.
func (l *Library) Explain(activity []string, action string) []Explanation {
	aid, ok := l.vocab.Actions.Lookup(action)
	if !ok {
		return nil
	}
	h := intset.FromUnsorted(l.resolve(activity))
	goalSpace := l.lib.GoalSpace(h)
	extra := []core.ActionID{core.ActionID(aid)}
	var out []Explanation
	for _, g := range goalSpace {
		n := l.lib.ActionGoalCount(core.ActionID(aid), g)
		if n == 0 {
			continue
		}
		out = append(out, Explanation{
			Goal:            l.vocab.GoalName(g),
			Implementations: n,
			ProgressBefore:  l.lib.GoalCompleteness(g, h, nil),
			ProgressAfter:   l.lib.GoalCompleteness(g, h, extra),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ProgressAfter != out[j].ProgressAfter {
			return out[i].ProgressAfter > out[j].ProgressAfter
		}
		return out[i].Goal < out[j].Goal
	})
	return out
}

// Strategy selects one of the paper's ranking policies.
type Strategy string

// The four goal-based strategies of Sections 5.1–5.3.
const (
	// FocusCompleteness ranks implementations by the fraction of their
	// actions already performed and recommends the missing pieces of the
	// most complete ones.
	FocusCompleteness Strategy = "focus-cmp"
	// FocusCloseness ranks implementations by how few actions they still
	// need.
	FocusCloseness Strategy = "focus-cl"
	// Breadth scores each candidate action across every implementation it
	// shares with the user's activity, favoring actions that advance many
	// goals at once.
	Breadth Strategy = "breadth"
	// BestMatch builds a per-goal effort profile of the user and recommends
	// the actions whose goal-contribution vectors lie closest to it.
	BestMatch Strategy = "best-match"
)

// Strategies lists all goal-based strategies in presentation order.
func Strategies() []Strategy {
	return []Strategy{FocusCompleteness, FocusCloseness, Breadth, BestMatch}
}

// RecommenderOption customizes strategy construction.
type RecommenderOption func(*recOptions)

type recOptions struct {
	metric     vectorspace.Metric
	weighting  strategy.BreadthWeighting
	cacheSize  int
	pruning    bool
	pruneStats *strategy.PruneStats
	err        error // first invalid option, surfaced by Library.Recommender
}

// resolveRecOptions applies opts over the defaults.
func resolveRecOptions(opts []RecommenderOption) recOptions {
	o := recOptions{metric: vectorspace.Cosine, weighting: strategy.Overlap}
	for _, opt := range opts {
		opt(&o)
	}
	return o
}

// sharingKey canonicalizes the resolved options for per-epoch recommender
// sharing: two option lists that resolve identically yield the same key and
// share one instance (sound — recommenders are deterministic and safe for
// concurrent use).
func (o recOptions) sharingKey(s Strategy) string {
	// The stats sink pointer is part of the key: two configurations that
	// count into different sinks must not share one instance.
	return fmt.Sprintf("%s/%s/%s/%d/%t/%p", s, o.metric, o.weighting, o.cacheSize, o.pruning, o.pruneStats)
}

// WithDistanceMetric selects the Best Match distance: "cosine" (default),
// "euclidean", "manhattan" or "jaccard". It is ignored by other strategies.
// An unknown name is reported as an error by Library.Recommender (and panics
// MustRecommender) instead of silently falling back to the default.
func WithDistanceMetric(name string) RecommenderOption {
	return func(o *recOptions) {
		m, err := vectorspace.ParseMetric(name)
		if err != nil {
			if o.err == nil {
				o.err = fmt.Errorf("goalrec: %w", err)
			}
			return
		}
		o.metric = m
	}
}

// WithBreadthWeighting selects the Breadth per-implementation weight:
// "overlap" (default), "count" or "union". It is ignored by other
// strategies. An unknown name is reported as an error by Library.Recommender
// (and panics MustRecommender) instead of silently falling back to the
// default.
func WithBreadthWeighting(name string) RecommenderOption {
	return func(o *recOptions) {
		w, err := strategy.ParseBreadthWeighting(name)
		if err != nil {
			if o.err == nil {
				o.err = fmt.Errorf("goalrec: %w", err)
			}
			return
		}
		o.weighting = w
	}
}

// WithCache wraps the recommender in an LRU cache of the given entry
// capacity (≤ 0 selects 1024). Strategies are deterministic over an
// immutable library, so caching only trades memory for latency on repeated
// activities.
func WithCache(entries int) RecommenderOption {
	return func(o *recOptions) {
		if entries <= 0 {
			entries = 1024
		}
		o.cacheSize = entries
	}
}

// PruneStats is a concurrency-safe sink for the pruned kernels' counters
// (blocks skipped, candidates skipped, ...). One sink may be shared by any
// number of recommenders; read it with Snapshot.
type PruneStats = strategy.PruneStats

// PruneStatsSnapshot is a point-in-time copy of a PruneStats sink.
type PruneStatsSnapshot = strategy.PruneStatsSnapshot

// WithPruning enables the bound-driven top-k kernels: block-skipping Focus
// scans and threshold-aware candidate walks for Breadth and Best Match.
// Rankings are bit-identical to the default kernels — pruning only skips
// work that provably cannot alter the top k. Most effective on libraries
// built (or re-laid-out) with WithImpactOrdering.
func WithPruning() RecommenderOption {
	return func(o *recOptions) { o.pruning = true }
}

// WithPruningStats is WithPruning with a counter sink: the pruned kernels
// add their per-query tallies to stats, which the caller (e.g. the server's
// /v1/metrics endpoint) reads via Snapshot.
func WithPruningStats(stats *PruneStats) RecommenderOption {
	return func(o *recOptions) {
		o.pruning = true
		o.pruneStats = stats
	}
}

// Recommendation is one ranked suggestion.
type Recommendation struct {
	// Action is the recommended action's name.
	Action string
	// Score is the strategy's ranking score; higher is better. For
	// BestMatch the score is the negated profile distance.
	Score float64
}

// Recommender ranks candidate actions for an activity. Implementations are
// safe for concurrent use.
type Recommender interface {
	// Name identifies the method ("breadth", "cf-knn", ...).
	Name() string
	// Recommend returns up to k actions the user has not performed, ranked
	// best-first. Unknown action names in the activity are ignored.
	Recommend(activity []string, k int) []Recommendation
	// RecommendContext is Recommend with a request lifecycle: scoring polls
	// ctx at coarse checkpoints and aborts with an error wrapping
	// ErrCanceled (and ctx.Err()) once the context is done. The four
	// goal-based strategies cancel mid-loop; baseline recommenders observe
	// the context at entry only. On a nil error the result is bit-identical
	// to Recommend; on cancellation it is nil except where a strategy
	// documents a meaningful partial prefix (Focus).
	RecommendContext(ctx context.Context, activity []string, k int) ([]Recommendation, error)
	// RecommendBatch scores many activities under one context, fanned out
	// over a GOMAXPROCS-bounded worker pool, and returns one result per
	// activity in input order. All activities are answered from the same
	// snapshot (one epoch per batch). A done ctx aborts the remaining
	// items, whose results carry the ErrCanceled-wrapping error.
	RecommendBatch(ctx context.Context, activities [][]string, k int) []BatchResult
}

// BatchResult is one activity's outcome within a batch recommendation:
// either its ranked list or the error that aborted it. UnknownActions lists
// the activity's actions the snapshot could not resolve (deduplicated and
// sorted, like Library.UnknownActions) — the batch resolves names once, so
// callers should read it from here instead of re-resolving per item.
type BatchResult struct {
	Recommendations []Recommendation
	UnknownActions  []string
	Err             error
}

// namedRecommender adapts an id-level recommender to the string API.
type namedRecommender struct {
	rec strategy.Recommender
	lib *Library
}

func (n *namedRecommender) Name() string { return n.rec.Name() }

func (n *namedRecommender) Recommend(activity []string, k int) []Recommendation {
	out, _ := n.RecommendContext(context.Background(), activity, k)
	return out
}

func (n *namedRecommender) RecommendContext(ctx context.Context, activity []string, k int) ([]Recommendation, error) {
	ids := n.lib.resolve(activity)
	scored, err := strategy.RecommendContext(ctx, n.rec, ids, k)
	out := make([]Recommendation, len(scored))
	for i, s := range scored {
		out[i] = Recommendation{Action: n.lib.vocab.ActionName(s.Action), Score: s.Score}
	}
	if err != nil {
		// Surface whatever valid partial prefix the strategy produced
		// alongside the cancellation.
		return out, fmt.Errorf("goalrec: %w", err)
	}
	return out, nil
}

// Recommender constructs a goal-based recommender over the library.
func (l *Library) Recommender(s Strategy, opts ...RecommenderOption) (Recommender, error) {
	o := resolveRecOptions(opts)
	if o.err != nil {
		return nil, o.err
	}
	var rec strategy.Recommender
	switch s {
	case FocusCompleteness:
		rec = strategy.NewFocus(l.lib, strategy.Completeness)
	case FocusCloseness:
		rec = strategy.NewFocus(l.lib, strategy.Closeness)
	case Breadth:
		rec = strategy.NewBreadthWeighted(l.lib, o.weighting)
	case BestMatch:
		rec = strategy.NewBestMatchMetric(l.lib, o.metric)
	default:
		return nil, fmt.Errorf("goalrec: unknown strategy %q", s)
	}
	if o.pruning {
		switch r := rec.(type) {
		case *strategy.Focus:
			r.EnablePruning(o.pruneStats)
		case *strategy.Breadth:
			r.EnablePruning(o.pruneStats)
		case *strategy.BestMatch:
			r.EnablePruning(o.pruneStats)
		}
	}
	if o.cacheSize > 0 {
		rec = strategy.NewCached(rec, o.cacheSize)
	}
	return &namedRecommender{rec: rec, lib: l}, nil
}

// RecommendBatch implements Recommender. Name resolution is hoisted out of
// the per-item path: one vocabulary pass resolves the whole batch (each
// distinct name looked up once), then the id-level scoring fans out over the
// shared pool. All items score against this recommender's one library
// snapshot, and each result carries its unknown names so callers need no
// second resolution pass.
func (n *namedRecommender) RecommendBatch(ctx context.Context, activities [][]string, k int) []BatchResult {
	ids, unknown := n.lib.resolveBatchSplit(activities)
	out := make([]BatchResult, len(activities))
	fanOut(len(activities), func(i int) {
		scored, err := strategy.RecommendContext(ctx, n.rec, ids[i], k)
		recs := make([]Recommendation, len(scored))
		for j, s := range scored {
			recs[j] = Recommendation{Action: n.lib.vocab.ActionName(s.Action), Score: s.Score}
		}
		out[i] = BatchResult{Recommendations: recs, UnknownActions: unknown[i]}
		if err != nil {
			out[i].Err = fmt.Errorf("goalrec: %w", err)
		}
	})
	return out
}

// fanOut runs work(0..n-1) over up to GOMAXPROCS workers and returns when
// every index has run. The per-item work observes its context at entry, so
// once a batch's context is done the remaining items drain immediately with
// the cancellation error instead of running to completion.
func fanOut(n int, work func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			work(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				work(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}

// RecommendBatch runs the recommender over many activities in parallel
// (bounded by GOMAXPROCS) and returns the lists in input order. Recommenders
// from this package are safe for concurrent use, so this is the throughput
// path for offline scoring jobs. For per-item errors and cancellation use
// the Recommender.RecommendBatch method directly.
func RecommendBatch(rec Recommender, activities [][]string, k int) [][]Recommendation {
	results := rec.RecommendBatch(context.Background(), activities, k)
	out := make([][]Recommendation, len(results))
	for i, r := range results {
		out[i] = r.Recommendations
	}
	return out
}

// MustRecommender is Recommender for the package's own strategy constants;
// it panics on an unknown strategy.
func (l *Library) MustRecommender(s Strategy, opts ...RecommenderOption) Recommender {
	rec, err := l.Recommender(s, opts...)
	if err != nil {
		panic(err)
	}
	return rec
}

// SaveJSON writes the library as JSON lines (one implementation per line),
// the format LoadLibraryJSON reads.
func (l *Library) SaveJSON(w io.Writer) error {
	return core.WriteJSONLines(w, l.lib, l.vocab)
}

// LoadLibraryJSON reads a JSON-lines library: one object per line with the
// shape {"goal": "...", "actions": ["...", ...]}.
func LoadLibraryJSON(r io.Reader) (*Library, error) {
	lib, vocab, err := core.ReadJSONLines(r)
	if err != nil {
		return nil, err
	}
	return &Library{lib: lib, vocab: vocab}, nil
}

// SaveBinary writes the library and its vocabulary in the compact binary
// snapshot format, which loads much faster than JSON lines for large
// libraries.
func (l *Library) SaveBinary(w io.Writer) error {
	return core.WriteNamedBinary(w, l.lib, l.vocab)
}

// LoadLibraryBinary reads a snapshot written by SaveBinary.
func LoadLibraryBinary(r io.Reader) (*Library, error) {
	lib, vocab, err := core.ReadNamedBinary(r)
	if err != nil {
		return nil, err
	}
	return &Library{lib: lib, vocab: vocab}, nil
}

// SaveSnapshotFile writes the library in the memory-mappable snapshot
// format: aligned fixed-width little-endian sections that OpenSnapshotFile
// loads zero-copy, with no decode or index rebuild. compressPostings
// selects delta-encoded block-compressed posting lists — a smaller file,
// paid for with a lazy per-block decode on scans.
func (l *Library) SaveSnapshotFile(path string, compressPostings bool) error {
	return core.WriteSnapshotFile(path, l.lib, l.vocab, core.SnapshotOptions{CompressPostings: compressPostings})
}

// Snapshot is a library backed by a memory-mapped snapshot file. Close it
// only once nothing references the library any more — its slices alias the
// mapping directly.
type Snapshot struct {
	lib  *Library
	snap *core.Snapshot
}

// Library returns the mapped library. It is served exactly like a built
// one; every accessor reads the mapping zero-copy.
func (s *Snapshot) Library() *Library { return s.lib }

// Close releases the mapping.
func (s *Snapshot) Close() error { return s.snap.Close() }

// OpenSnapshotFile memory-maps a snapshot written by SaveSnapshotFile. The
// open is O(header + section table): the library's data pages fault in on
// first touch instead of being decoded up front.
func OpenSnapshotFile(path string) (*Snapshot, error) {
	snap, err := core.OpenSnapshot(path)
	if err != nil {
		return nil, err
	}
	vocab := snap.Vocabulary()
	if vocab == nil {
		_ = snap.Close()
		return nil, fmt.Errorf("goalrec: snapshot %s carries no vocabulary", path)
	}
	return &Snapshot{lib: &Library{lib: snap.Library(), vocab: vocab}, snap: snap}, nil
}

// RelatedGoal is one goal associated with a reference goal through shared
// actions — the latent goal-goal associations the model captures.
type RelatedGoal struct {
	// Goal is the related goal's name.
	Goal string
	// SharedActions is the number of distinct actions the two goals'
	// implementations share.
	SharedActions int
	// Similarity is the Jaccard coefficient of the two goals' action sets
	// (union over their implementations).
	Similarity float64
}

// RelatedGoals returns the k goals whose implementations share the most
// actions with the named goal, ranked by Jaccard similarity of their action
// sets (ties by shared-action count, then name). k < 0 returns all related
// goals. Unknown goals yield nil.
func (l *Library) RelatedGoals(goal string, k int) []RelatedGoal {
	gid, ok := l.vocab.Goals.Lookup(goal)
	if !ok || k == 0 {
		return nil
	}
	ref := l.goalActions(core.GoalID(gid))
	if len(ref) == 0 {
		return nil
	}
	// Candidate goals: those reachable through the reference actions.
	seen := map[core.GoalID]bool{core.GoalID(gid): true}
	var out []RelatedGoal
	for _, g := range l.lib.GoalSpace(ref) {
		if seen[g] {
			continue
		}
		seen[g] = true
		other := l.goalActions(g)
		shared := intset.IntersectionLen(ref, other)
		if shared == 0 {
			continue
		}
		out = append(out, RelatedGoal{
			Goal:          l.vocab.GoalName(g),
			SharedActions: shared,
			Similarity:    float64(shared) / float64(len(ref)+len(other)-shared),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Similarity != out[j].Similarity {
			return out[i].Similarity > out[j].Similarity
		}
		if out[i].SharedActions != out[j].SharedActions {
			return out[i].SharedActions > out[j].SharedActions
		}
		return out[i].Goal < out[j].Goal
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// goalActions returns the union of the goal's implementations' actions,
// sorted. The destination is sized from the goal's slot total up front, so
// high-degree hub goals no longer pay repeated append growth.
func (l *Library) goalActions(g core.GoalID) []core.ActionID {
	total := l.lib.GoalWalkCost(g)
	if total == 0 {
		return nil
	}
	all := make([]core.ActionID, 0, total)
	for _, p := range l.lib.ImplsOfGoal(g) {
		all = append(all, l.lib.Actions(p)...)
	}
	return intset.FromUnsorted(all)
}

// MergeLibraries combines several libraries into one: implementations are
// concatenated in argument order and identical names unify onto shared ids,
// so goal/action spaces span all sources. Use Deduplicate afterwards when
// the sources overlap. Merging no libraries yields an empty library.
func MergeLibraries(libs ...*Library) *Library {
	out := NewBuilder()
	for _, l := range libs {
		for p := 0; p < l.lib.NumImplementations(); p++ {
			id := core.ImplID(p)
			goal := l.vocab.GoalName(l.lib.Goal(id))
			actions := make([]string, 0, l.lib.ImplLen(id))
			for _, a := range l.lib.Actions(id) {
				actions = append(actions, l.vocab.ActionName(a))
			}
			// The source library guarantees valid implementations.
			_ = out.AddImplementation(goal, actions...)
		}
	}
	return out.Build()
}

// DedupeStats reports what Deduplicate removed.
type DedupeStats = core.DedupeStats

// Deduplicate returns a copy of the library with duplicate implementations
// of the same goal removed: an implementation is dropped when an earlier
// implementation of the same goal overlaps it with Jaccard ≥ threshold
// (1 removes only exact duplicates). Useful after BuildFromStories, where
// many authors describe the same action set for one goal.
func (l *Library) Deduplicate(threshold float64) (*Library, DedupeStats) {
	lib, stats := core.Deduplicate(l.lib, threshold)
	return &Library{lib: lib, vocab: l.vocab}, stats
}

// ExportDOT renders the association-based goal model (the paper's Figure 2)
// as a Graphviz graph: implementations as goal-labelled boxes connected to
// the actions they contain. maxImpls caps the rendered implementations
// (≤ 0 renders everything).
func (l *Library) ExportDOT(w io.Writer, maxImpls int) error {
	return core.WriteDOT(w, l.lib, l.vocab, maxImpls)
}

// LoadLibraryFile opens path and loads it with the format sniffed from the
// leading bytes: '{' selects JSON lines, the "GSNP" magic a memory-mapped
// snapshot, anything else the binary snapshot. A mapped snapshot's pages
// stay mapped for the life of the process — callers that need to release
// the mapping should use OpenSnapshotFile directly and Close it.
func LoadLibraryFile(path string) (*Library, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	head, err := br.Peek(1)
	if err != nil {
		return nil, fmt.Errorf("goalrec: reading %s: %w", path, err)
	}
	if head[0] == '{' {
		return LoadLibraryJSON(br)
	}
	if magic, err := br.Peek(4); err == nil && string(magic) == "GSNP" {
		snap, err := OpenSnapshotFile(path)
		if err != nil {
			return nil, err
		}
		return snap.Library(), nil
	}
	return LoadLibraryBinary(br)
}
