package goalrec

import (
	"hash/fnv"

	"goalrec/internal/core"
)

// Partition returns the shard view of this snapshot: the implementations
// [lo, hi) re-numbered to local ids 0..hi-lo-1, sharing the parent's name
// dictionary and keeping the parent's action/goal id spaces (see
// core.PartitionRange). Cluster workers serve queries from a partition and
// report lo+local as the global implementation id, which — together with the
// preserved id spaces — is what keeps distributed rankings bit-identical to
// a single-node scan of the full library.
func (l *Library) Partition(lo, hi int) (*Library, error) {
	sub, err := core.PartitionRange(l.lib, lo, hi)
	if err != nil {
		return nil, err
	}
	return &Library{lib: sub, vocab: l.vocab}, nil
}

// Core exposes the underlying id-level library. It exists for the cluster
// serving layer, which computes per-shard score partials directly against
// the strategy kernels; everything else should use the name-level API.
func (l *Library) Core() *core.Library { return l.lib }

// ResolveActivity maps action names to snapshot-local ids and returns the
// names this snapshot cannot serve, in UnknownActions' canonical shape
// (sorted, deduplicated, nil when empty). The cluster coordinator resolves
// once and scatters ids, so every worker scores exactly the activity a
// single node would.
func (l *Library) ResolveActivity(actions []string) ([]core.ActionID, []string) {
	ids, unknown := l.resolveSplit(actions)
	return ids, normalizeUnknown(unknown)
}

// ActionNameByID returns the name of an action id, with the numeric
// fallback used everywhere else in the name-level API. The coordinator uses
// it to render gathered id-level rankings.
func (l *Library) ActionNameByID(a core.ActionID) string {
	return l.vocab.ActionName(a)
}

// VocabChecksum fingerprints the snapshot-visible dictionary: the action
// and goal id spaces and every name in id order, hashed with FNV-1a.
// Cluster registration compares checksums so a worker serving a different
// artifact (which would resolve names to different ids and silently corrupt
// the merged ranking) is rejected up front rather than detected by wrong
// results.
func (l *Library) VocabChecksum() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeInt := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	writeStr := func(s string) {
		writeInt(uint64(len(s)))
		h.Write([]byte(s))
	}
	writeInt(uint64(l.lib.NumActions()))
	for id := 0; id < l.lib.NumActions(); id++ {
		writeStr(l.vocab.ActionName(core.ActionID(id)))
	}
	writeInt(uint64(l.lib.NumGoals()))
	for id := 0; id < l.lib.NumGoals(); id++ {
		writeStr(l.vocab.GoalName(core.GoalID(id)))
	}
	return h.Sum64()
}
