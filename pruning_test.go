package goalrec

import (
	"fmt"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// randomNamedBuilder fills a Builder with n random implementations over a
// skewed action vocabulary, the name-level analogue of testlib.RandomLibrary.
func randomNamedBuilder(t *testing.T, r *rand.Rand, n, actionSpace, goalSpace int) *Builder {
	t.Helper()
	b := NewBuilder()
	for i := 0; i < n; i++ {
		size := 1 + r.Intn(6)
		seen := map[string]bool{}
		var acts []string
		for len(acts) < size {
			a := fmt.Sprintf("act-%d", r.Intn(1+r.Intn(actionSpace)))
			if !seen[a] {
				seen[a] = true
				acts = append(acts, a)
			}
		}
		if err := b.AddImplementation(fmt.Sprintf("goal-%d", r.Intn(goalSpace)), acts...); err != nil {
			t.Fatal(err)
		}
	}
	return b
}

// canonicalRanking re-sorts a recommendation list into the layout-free
// total order (score desc, name asc). Impact ordering permutes internal ids,
// and id is the strategies' tie-breaker, so the raw order among exact score
// ties is layout-dependent; the (action, score) multiset is not. Queries in
// the layout tests ask for the full ranking (k = all actions) so a tie group
// is never cut mid-way.
func canonicalRanking(recs []Recommendation) []Recommendation {
	out := append([]Recommendation(nil), recs...)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Action < out[j].Action
	})
	return out
}

// TestWithImpactOrderingPreservesNames verifies that the impact-ordered
// layout is invisible at the name level: dimensions, dictionaries, spaces
// and every strategy's full ranking (up to score-tie order) are identical to
// the plain build.
func TestWithImpactOrderingPreservesNames(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	b := randomNamedBuilder(t, r, 400, 40, 25)
	plain := b.Build()
	ordered := b.Build(WithImpactOrdering())

	if plain.NumImplementations() != ordered.NumImplementations() ||
		plain.NumActions() != ordered.NumActions() ||
		plain.NumGoals() != ordered.NumGoals() {
		t.Fatalf("dimensions changed: plain (%d,%d,%d) ordered (%d,%d,%d)",
			plain.NumImplementations(), plain.NumActions(), plain.NumGoals(),
			ordered.NumImplementations(), ordered.NumActions(), ordered.NumGoals())
	}
	pa, oa := plain.Actions(), ordered.Actions()
	sort.Strings(pa)
	sort.Strings(oa)
	if !reflect.DeepEqual(pa, oa) {
		t.Fatal("action dictionaries diverged")
	}
	for q := 0; q < 20; q++ {
		var h []string
		for i := 0; i < 1+r.Intn(4); i++ {
			h = append(h, fmt.Sprintf("act-%d", r.Intn(40)))
		}
		gs, os := plain.GoalSpace(h), ordered.GoalSpace(h)
		sort.Strings(gs)
		sort.Strings(os)
		if !reflect.DeepEqual(gs, os) {
			t.Fatalf("goal space diverged for %v", h)
		}
		as, oas := plain.ActionSpace(h), ordered.ActionSpace(h)
		sort.Strings(as)
		sort.Strings(oas)
		if !reflect.DeepEqual(as, oas) {
			t.Fatalf("action space diverged for %v", h)
		}
		for _, s := range Strategies() {
			k := plain.NumActions()
			got := canonicalRanking(ordered.MustRecommender(s).Recommend(h, k))
			want := canonicalRanking(plain.MustRecommender(s).Recommend(h, k))
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s diverged on impact-ordered library for %v:\ngot  %v\nwant %v", s, h, got, want)
			}
		}
	}
}

// TestImpactOrderedMethod covers the loader-side entry point: re-laying-out
// an already built Library keeps its name-level answers.
func TestImpactOrderedMethod(t *testing.T) {
	lib := groceryLibrary(t)
	ordered := lib.ImpactOrdered()
	h := []string{"potatoes"}
	k := lib.NumActions()
	for _, s := range Strategies() {
		got := canonicalRanking(ordered.MustRecommender(s).Recommend(h, k))
		want := canonicalRanking(lib.MustRecommender(s).Recommend(h, k))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s diverged after ImpactOrdered: got %v want %v", s, got, want)
		}
	}
}

// TestWithPruningMatchesUnpruned drives the pruned kernels through the
// string API on plain and impact-ordered layouts.
func TestWithPruningMatchesUnpruned(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	b := randomNamedBuilder(t, r, 600, 30, 20)
	for _, lib := range []*Library{b.Build(), b.Build(WithImpactOrdering())} {
		for q := 0; q < 15; q++ {
			var h []string
			for i := 0; i < 1+r.Intn(4); i++ {
				h = append(h, fmt.Sprintf("act-%d", r.Intn(30)))
			}
			k := 1 + r.Intn(10)
			for _, s := range Strategies() {
				got := lib.MustRecommender(s, WithPruning()).Recommend(h, k)
				want := lib.MustRecommender(s).Recommend(h, k)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s pruned diverged (h=%v k=%d):\ngot  %v\nwant %v", s, h, k, got, want)
				}
			}
		}
	}
}

// TestWithPruningStats checks that a shared sink accumulates counters from
// queries across strategies.
func TestWithPruningStats(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	b := randomNamedBuilder(t, r, 800, 25, 15)
	lib := b.Build(WithImpactOrdering())
	var stats PruneStats
	for _, s := range Strategies() {
		rec := lib.MustRecommender(s, WithPruningStats(&stats))
		rec.Recommend([]string{"act-0", "act-1"}, 3)
	}
	snap := stats.Snapshot()
	if snap.ImplsAssociated == 0 {
		t.Fatalf("shared sink recorded nothing: %+v", snap)
	}
}

// TestPruningSharingKey pins that pruning configuration separates engine
// sharing keys: pruned vs unpruned, and distinct sinks, must not collide.
func TestPruningSharingKey(t *testing.T) {
	base := resolveRecOptions(nil)
	pruned := resolveRecOptions([]RecommenderOption{WithPruning()})
	var a, b PruneStats
	sinkA := resolveRecOptions([]RecommenderOption{WithPruningStats(&a)})
	sinkB := resolveRecOptions([]RecommenderOption{WithPruningStats(&b)})
	keys := map[string]bool{}
	for _, o := range []recOptions{base, pruned, sinkA, sinkB} {
		keys[o.sharingKey(FocusCloseness)] = true
	}
	if len(keys) != 4 {
		t.Fatalf("sharing keys collided: %d distinct of 4", len(keys))
	}
}
