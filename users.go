package goalrec

import (
	"context"
	"errors"
	"fmt"

	"goalrec/internal/core"
	"goalrec/internal/strategy"
	"goalrec/internal/userstore"
)

// ErrUnknownUser reports a query or delete for a user id the store has never
// seen (or has deleted).
var ErrUnknownUser = errors.New("goalrec: unknown user")

// ErrTooManyUsers re-exports the user-store capacity error for callers that
// should not import internal packages. Match with errors.Is.
var ErrTooManyUsers = userstore.ErrTooManyUsers

// UserStoreOptions configures a per-user activity store. Zero values select
// the defaults (see internal/userstore).
type UserStoreOptions struct {
	// MaxUsers caps tracked users; appends for new users beyond it fail
	// with ErrTooManyUsers.
	MaxUsers int
	// MaxViews caps concurrently materialized counter views (LRU-bounded).
	MaxViews int
	// Shards is the map shard count.
	Shards int
}

// userJournal persists user-store mutations write-ahead: a Store installs
// itself here so restart replay reproduces user histories bit-identically.
type userJournal interface {
	logUserAppend(id string, names []string) error
	logUserDelete(id string) error
}

// UserStore serves per-user recommendation state on top of an Engine: the
// server owns each user's evolving activity history (deduplicated action
// names — names, not ids, survive snapshot swaps) and a materialized
// strategy.CounterView per recently active user. An append delta-updates the
// view along one posting row; a query scores the materialized counters
// directly, bit-identical to a from-scratch Recommend over the same history.
//
// Views are epoch- and lineage-stamped. Same-lineage snapshot extensions
// (live ingest) are absorbed by replaying only the appended posting-row
// tails; a Swap changes the lineage generation and forces a rebuild, so a
// query can never score stale counters against new postings.
type UserStore struct {
	e       *Engine
	users   *userstore.Store
	journal userJournal
}

// NewUserStore returns a user store over e with no persistence. Stores
// opened from disk get a WAL-backed one from Store.Users instead.
func NewUserStore(e *Engine, o UserStoreOptions) *UserStore {
	return &UserStore{
		e: e,
		users: userstore.New(userstore.Options{
			MaxUsers: o.MaxUsers,
			MaxViews: o.MaxViews,
			Shards:   o.Shards,
		}),
	}
}

// setJournal attaches the write-ahead journal (a Store).
func (us *UserStore) setJournal(j userJournal) { us.journal = j }

// Len returns the tracked user count.
func (us *UserStore) Len() int { return us.users.Len() }

// Stats returns the store's counters (materialized hits vs cold builds,
// advances, rebuilds, evictions, ...).
func (us *UserStore) Stats() userstore.Stats { return us.users.Stats() }

// History returns the user's deduplicated activity history in append order,
// or ErrUnknownUser.
func (us *UserStore) History(id string) ([]string, error) {
	u := us.users.Get(id)
	if u == nil {
		return nil, ErrUnknownUser
	}
	u.Mu.Lock()
	defer u.Mu.Unlock()
	if u.Gone {
		return nil, ErrUnknownUser
	}
	return append([]string(nil), u.Names...), nil
}

// Append adds actions to the user's history, creating the user on first
// sight, and returns how many were new (duplicates are dropped — a history
// is a set, exactly like a request-shipped activity). The post-dedup suffix
// is journaled write-ahead when a Store is attached; a journal failure
// rejects the whole append. A materialized view absorbs the new actions
// along their posting rows instead of rescanning the history.
func (us *UserStore) Append(id string, actions []string) (int, error) {
	if id == "" {
		return 0, errors.New("goalrec: empty user id")
	}
	for _, a := range actions {
		if a == "" {
			return 0, fmt.Errorf("goalrec: user %q append has an empty action name", id)
		}
	}
	for {
		u, err := us.users.GetOrCreate(id)
		if err != nil {
			return 0, err
		}
		u.Mu.Lock()
		if u.Gone {
			// Concurrently deleted between lookup and lock: re-fetch so the
			// append lands on (and journals for) a live entry.
			u.Mu.Unlock()
			continue
		}
		n, err := us.appendLocked(u, actions)
		u.Mu.Unlock()
		if n > 0 {
			us.users.NoteAppends(n)
			us.users.Rebalance()
		}
		return n, err
	}
}

// appendLocked journals and applies one append under u.Mu.
func (us *UserStore) appendLocked(u *userstore.User, actions []string) (int, error) {
	// Pre-compute the post-dedup suffix so it can be journaled before any
	// state changes (append-before-apply, like engine ingests).
	added := make([]string, 0, len(actions))
	for _, a := range actions {
		if u.HasName(a) || containsString(added, a) {
			continue
		}
		added = append(added, a)
	}
	if len(added) == 0 {
		return 0, nil
	}
	if us.journal != nil {
		if err := us.journal.logUserAppend(u.ID, added); err != nil {
			return 0, fmt.Errorf("%w: %w", ErrJournal, err)
		}
	}
	u.AppendNames(added)
	us.applyToView(u, added)
	return len(added), nil
}

// applyToView folds freshly appended names into a live materialized view —
// one posting-row walk per name against the view's own snapshot. Names the
// view's snapshot cannot resolve are parked in Unresolved and re-applied
// when the view advances to an epoch that knows them. Stale-lineage views
// are left alone; the next query rebuilds them.
func (us *UserStore) applyToView(u *userstore.User, added []string) {
	if u.View == nil {
		return
	}
	st := us.e.state.Load()
	if u.ViewGen != st.gen {
		return
	}
	vlib := u.View.Lib()
	vocab := st.lib.vocab
	for _, name := range added {
		if aid, ok := vocab.Actions.Lookup(name); ok && int(aid) < vlib.NumActions() {
			u.View.Apply(core.ActionID(aid))
		} else {
			u.Unresolved = append(u.Unresolved, name)
		}
	}
	us.users.MarkMaterialized(u)
}

func containsString(s []string, v string) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// Delete removes the user and its view, journaling the delete. It returns
// ErrUnknownUser when the id is not tracked.
func (us *UserStore) Delete(id string) error {
	if us.users.Get(id) == nil {
		return ErrUnknownUser
	}
	if us.journal != nil {
		if err := us.journal.logUserDelete(id); err != nil {
			return fmt.Errorf("%w: %w", ErrJournal, err)
		}
	}
	if !us.users.Delete(id) {
		return ErrUnknownUser
	}
	return nil
}

// UserRecommendResult is one user query's outcome: the epoch it was answered
// from, the ranking, and the history names that epoch cannot resolve
// (mirroring Library.UnknownActions for request-shipped activities).
type UserRecommendResult struct {
	Epoch           uint64
	Recommendations []Recommendation
	UnknownActions  []string
}

// Recommend scores the user's materialized view with the given strategy and
// returns up to k recommendations. The engine state is loaded exactly once
// per query: the view is validated — hit, same-lineage delta advance, or
// rebuild after a swap — against that one snapshot, then scored against
// recommenders built over the same snapshot, so a racing Swap can never pair
// stale counters with new postings. The ranking is bit-identical to a
// from-scratch Recommend over the user's history at the same epoch.
func (us *UserStore) Recommend(ctx context.Context, id string, s Strategy, k int, opts ...RecommenderOption) (UserRecommendResult, error) {
	u := us.users.Get(id)
	if u == nil {
		return UserRecommendResult{}, ErrUnknownUser
	}
	st := us.e.state.Load()
	res := UserRecommendResult{Epoch: st.lib.Epoch()}
	rec, err := us.e.recommenderFor(st, s, opts)
	if err != nil {
		return res, err
	}
	named, ok := rec.(*namedRecommender)
	if !ok {
		return res, fmt.Errorf("goalrec: strategy %q cannot score materialized views", s)
	}

	u.Mu.Lock()
	if u.Gone {
		u.Mu.Unlock()
		return res, ErrUnknownUser
	}
	us.ensureViewLocked(u, st)
	scored, err := strategy.RecommendView(ctx, named.rec, u.View, k)
	if len(u.Unresolved) > 0 {
		res.UnknownActions = append([]string(nil), u.Unresolved...)
	}
	u.Mu.Unlock()
	us.users.Rebalance()

	res.Recommendations = make([]Recommendation, len(scored))
	for i, sa := range scored {
		res.Recommendations[i] = Recommendation{Action: st.lib.vocab.ActionName(sa.Action), Score: sa.Score}
	}
	if err != nil {
		return res, fmt.Errorf("goalrec: %w", err)
	}
	return res, nil
}

// ensureViewLocked makes u.View valid for st: a cold build when absent, a
// rebuild when the lineage generation changed (Swap reassigns ids), a delta
// advance when the same lineage grew (posting rows only ever extend), or a
// plain LRU touch on a hit. Callers hold u.Mu.
func (us *UserStore) ensureViewLocked(u *userstore.User, st *engineState) {
	epoch := st.lib.Epoch()
	switch {
	case u.View == nil:
		ids, unresolved := st.lib.resolveSplit(u.Names)
		u.View = strategy.NewCounterView(st.lib.lib, ids)
		u.Unresolved = unresolved
		us.users.NoteCold()
	case u.ViewGen != st.gen || u.ViewEpoch > epoch:
		// New lineage (or an epoch regression, which only a lineage change
		// can produce): resolved ids are meaningless now, rebuild.
		ids, unresolved := st.lib.resolveSplit(u.Names)
		u.View.Rebuild(st.lib.lib, ids)
		u.Unresolved = unresolved
		us.users.NoteRebuild()
	case u.ViewEpoch < epoch:
		// Same lineage, newer snapshot: replay only the appended posting-row
		// tails, then retry the names that were unresolvable before (vocab
		// ids are stable within a lineage, so newly covered names resolve to
		// fresh ids past the view's old action horizon).
		u.View.AdvanceTo(st.lib.lib)
		if len(u.Unresolved) > 0 {
			still := u.Unresolved[:0]
			for _, name := range u.Unresolved {
				if aid, ok := st.lib.vocab.Actions.Lookup(name); ok && int(aid) < st.lib.lib.NumActions() {
					u.View.Apply(core.ActionID(aid))
				} else {
					still = append(still, name)
				}
			}
			u.Unresolved = still
		}
		us.users.NoteAdvance()
	default:
		us.users.NoteHit()
		us.users.Touch(u)
		return
	}
	u.ViewGen, u.ViewEpoch = st.gen, epoch
	us.users.MarkMaterialized(u)
}

// applyReplayAppend reapplies one journaled append during WAL recovery —
// no journaling, no view work (views rematerialize lazily on first query).
func (us *UserStore) applyReplayAppend(id string, names []string) error {
	u, err := us.users.GetOrCreate(id)
	if err != nil {
		return err
	}
	u.Mu.Lock()
	u.AppendNames(names)
	u.Mu.Unlock()
	return nil
}

// applyReplayDelete reapplies one journaled delete during WAL recovery.
func (us *UserStore) applyReplayDelete(id string) {
	us.users.Delete(id)
}
