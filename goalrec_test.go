package goalrec

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// groceryLibrary builds the running example of the paper's introduction:
// recipes over grocery products.
func groceryLibrary(t *testing.T) *Library {
	t.Helper()
	b := NewBuilder()
	must := func(goal string, actions ...string) {
		t.Helper()
		if err := b.AddImplementation(goal, actions...); err != nil {
			t.Fatal(err)
		}
	}
	must("olivier salad", "potatoes", "carrots", "pickles")
	must("mashed potatoes", "potatoes", "nutmeg", "butter")
	must("pan-fried carrots", "carrots", "nutmeg")
	must("beer snacks", "beer", "peanuts")
	return b.Build()
}

func TestBuilderValidation(t *testing.T) {
	b := NewBuilder()
	if err := b.AddImplementation("", "x"); err == nil {
		t.Error("empty goal accepted")
	}
	if err := b.AddImplementation("g"); err == nil {
		t.Error("empty implementation accepted")
	}
	if err := b.AddImplementation("g", ""); err == nil {
		t.Error("empty action name accepted")
	}
	if b.Len() != 0 {
		t.Errorf("failed adds counted: %d", b.Len())
	}
	var zero Builder
	if err := zero.AddImplementation("g", "a"); err != nil {
		t.Errorf("zero-value Builder unusable: %v", err)
	}
}

func TestLibraryDimensions(t *testing.T) {
	lib := groceryLibrary(t)
	if lib.NumImplementations() != 4 {
		t.Errorf("implementations = %d", lib.NumImplementations())
	}
	if lib.NumActions() != 7 {
		t.Errorf("actions = %d", lib.NumActions())
	}
	if lib.NumGoals() != 4 {
		t.Errorf("goals = %d", lib.NumGoals())
	}
	if got := lib.Stats().Implementations; got != 4 {
		t.Errorf("stats implementations = %d", got)
	}
	if got := lib.Actions(); len(got) != 7 || got[0] != "beer" {
		t.Errorf("Actions() = %v", got)
	}
	if got := lib.Goals(); len(got) != 4 || got[0] != "beer snacks" {
		t.Errorf("Goals() = %v", got)
	}
}

func TestSpacesByName(t *testing.T) {
	lib := groceryLibrary(t)
	gs := lib.GoalSpace([]string{"potatoes", "carrots"})
	want := []string{"mashed potatoes", "olivier salad", "pan-fried carrots"}
	if !reflect.DeepEqual(gs, want) {
		t.Errorf("GoalSpace = %v, want %v", gs, want)
	}
	as := lib.ActionSpace([]string{"potatoes"})
	wantAS := []string{"butter", "carrots", "nutmeg", "pickles"}
	if !reflect.DeepEqual(as, wantAS) {
		t.Errorf("ActionSpace = %v, want %v", as, wantAS)
	}
	// Unknown actions are ignored, not errors.
	if got := lib.GoalSpace([]string{"spaceship"}); got != nil && len(got) != 0 {
		t.Errorf("GoalSpace(unknown) = %v", got)
	}
}

func TestGoalProgress(t *testing.T) {
	lib := groceryLibrary(t)
	prog := lib.GoalProgress([]string{"potatoes", "carrots"})
	if got := prog["olivier salad"]; got != 2.0/3.0 {
		t.Errorf("olivier progress = %v, want 2/3", got)
	}
	if got := prog["pan-fried carrots"]; got != 0.5 {
		t.Errorf("pan-fried progress = %v, want 1/2", got)
	}
	if _, ok := prog["beer snacks"]; ok {
		t.Error("unrelated goal in progress map")
	}
}

func TestTopGoals(t *testing.T) {
	lib := groceryLibrary(t)
	got := lib.TopGoals([]string{"potatoes", "carrots"}, -1)
	if len(got) != 3 {
		t.Fatalf("TopGoals = %v", got)
	}
	// Olivier salad: 2/3 complete with support 2; the others 1-action
	// matches.
	if got[0].Goal != "olivier salad" || got[0].Progress != 2.0/3.0 || got[0].Support != 2 {
		t.Errorf("top goal = %+v", got[0])
	}
	for _, gm := range got[1:] {
		if gm.Progress > got[0].Progress {
			t.Errorf("ordering broken: %+v", got)
		}
	}
	if topped := lib.TopGoals([]string{"potatoes", "carrots"}, 1); len(topped) != 1 {
		t.Errorf("k=1 returned %d", len(topped))
	}
	if none := lib.TopGoals([]string{"spaceship"}, 5); len(none) != 0 {
		t.Errorf("unknown activity = %v", none)
	}
	if zero := lib.TopGoals([]string{"potatoes"}, 0); zero != nil {
		t.Errorf("k=0 = %v", zero)
	}
}

func TestImplementationsAccess(t *testing.T) {
	lib := groceryLibrary(t)
	impls := lib.ImplementationsOf("olivier salad")
	if len(impls) != 1 {
		t.Fatalf("ImplementationsOf = %v", impls)
	}
	if impls[0].Goal != "olivier salad" || len(impls[0].Actions) != 3 {
		t.Errorf("implementation = %+v", impls[0])
	}
	if got := lib.ImplementationsOf("unknown dish"); got != nil {
		t.Errorf("unknown goal = %v", got)
	}
	with := lib.ImplementationsWith("nutmeg")
	if len(with) != 2 {
		t.Fatalf("ImplementationsWith(nutmeg) = %v", with)
	}
	if got := lib.ImplementationsWith("spaceship"); got != nil {
		t.Errorf("unknown action = %v", got)
	}
}

func TestExplain(t *testing.T) {
	lib := groceryLibrary(t)
	got := lib.Explain([]string{"potatoes", "carrots"}, "pickles")
	if len(got) != 1 {
		t.Fatalf("Explain = %v", got)
	}
	e := got[0]
	if e.Goal != "olivier salad" || e.Implementations != 1 {
		t.Errorf("explanation = %+v", e)
	}
	if e.ProgressBefore != 2.0/3.0 || e.ProgressAfter != 1 {
		t.Errorf("progress = %v -> %v, want 2/3 -> 1", e.ProgressBefore, e.ProgressAfter)
	}
	// nutmeg serves two goals in the activity's space.
	nut := lib.Explain([]string{"potatoes", "carrots"}, "nutmeg")
	if len(nut) != 2 {
		t.Fatalf("Explain(nutmeg) = %v", nut)
	}
	// Unknown or irrelevant actions explain to nothing.
	if got := lib.Explain([]string{"potatoes"}, "spaceship"); got != nil {
		t.Errorf("unknown action = %v", got)
	}
	if got := lib.Explain([]string{"potatoes"}, "peanuts"); got != nil {
		t.Errorf("irrelevant action = %v", got)
	}
}

func TestExplainConsistencyWithStrategies(t *testing.T) {
	// Every goal-based recommendation must be explainable, and performing a
	// recommended action never reduces any explained goal's progress.
	lib := groceryLibrary(t)
	for _, s := range Strategies() {
		rec := lib.MustRecommender(s)
		for _, activity := range [][]string{
			{"potatoes"}, {"carrots", "nutmeg"}, {"potatoes", "carrots", "beer"},
		} {
			for _, r := range rec.Recommend(activity, 10) {
				exps := lib.Explain(activity, r.Action)
				if len(exps) == 0 {
					t.Errorf("%s: recommendation %q for %v has no explanation", s, r.Action, activity)
					continue
				}
				for _, e := range exps {
					if e.ProgressAfter < e.ProgressBefore {
						t.Errorf("%s: %q regressed goal %q: %v -> %v",
							s, r.Action, e.Goal, e.ProgressBefore, e.ProgressAfter)
					}
				}
			}
		}
	}
}

func TestRecommenderStrategies(t *testing.T) {
	lib := groceryLibrary(t)
	activity := []string{"potatoes", "carrots"}
	for _, s := range Strategies() {
		rec, err := lib.Recommender(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if rec.Name() != string(s) {
			t.Errorf("Name = %q, want %q", rec.Name(), s)
		}
		got := rec.Recommend(activity, 10)
		if len(got) == 0 {
			t.Fatalf("%s produced nothing", s)
		}
		for _, r := range got {
			if r.Action == "potatoes" || r.Action == "carrots" {
				t.Errorf("%s recommended a performed action: %v", s, r)
			}
			if r.Action == "beer" || r.Action == "peanuts" {
				t.Errorf("%s recommended an unrelated action: %v", s, r)
			}
		}
	}
	if _, err := lib.Recommender(Strategy("bogus")); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestIntroductionScenario(t *testing.T) {
	// The paper's introduction: potatoes + carrots in the cart → pickles
	// (completing the olivier salad) and nutmeg (serving both mashed
	// potatoes and pan-fried carrots) are goal-based recommendations.
	lib := groceryLibrary(t)
	rec := lib.MustRecommender(Breadth)
	got := rec.Recommend([]string{"potatoes", "carrots"}, 2)
	names := []string{got[0].Action, got[1].Action}
	if !(contains(names, "pickles") && contains(names, "nutmeg")) {
		t.Errorf("top-2 = %v, want pickles and nutmeg", names)
	}
}

func TestMustRecommenderPanics(t *testing.T) {
	lib := groceryLibrary(t)
	defer func() {
		if recover() == nil {
			t.Error("MustRecommender with bogus strategy did not panic")
		}
	}()
	lib.MustRecommender(Strategy("bogus"))
}

func TestRecommenderOptions(t *testing.T) {
	lib := groceryLibrary(t)
	activity := []string{"potatoes", "carrots"}
	cos := lib.MustRecommender(BestMatch).Recommend(activity, 5)
	euc := lib.MustRecommender(BestMatch, WithDistanceMetric("euclidean")).Recommend(activity, 5)
	if len(cos) == 0 || len(euc) == 0 {
		t.Fatal("metric variants produced nothing")
	}
	cnt := lib.MustRecommender(Breadth, WithBreadthWeighting("count")).Recommend(activity, 5)
	if len(cnt) == 0 {
		t.Fatal("count weighting produced nothing")
	}
}

func TestRecommendBatch(t *testing.T) {
	lib := groceryLibrary(t)
	rec := lib.MustRecommender(Breadth)
	activities := [][]string{
		{"potatoes", "carrots"},
		{"beer"},
		nil,
		{"nutmeg"},
	}
	got := RecommendBatch(rec, activities, 3)
	if len(got) != len(activities) {
		t.Fatalf("batch size = %d", len(got))
	}
	for i, h := range activities {
		want := rec.Recommend(h, 3)
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("batch[%d] diverged from sequential", i)
		}
	}
	if out := RecommendBatch(rec, nil, 3); len(out) != 0 {
		t.Errorf("empty batch = %v", out)
	}
}

// TestRecommendBatchUnknownActions pins that batch results carry each item's
// unknown names — shared batch-level resolution must report exactly what
// per-item UnknownActions would.
func TestRecommendBatchUnknownActions(t *testing.T) {
	lib := groceryLibrary(t)
	rec := lib.MustRecommender(Breadth)
	activities := [][]string{
		{"potatoes", "warp-core", "carrots", "warp-core", "antimatter"},
		{"potatoes"},
		{"dilithium"},
	}
	results := rec.RecommendBatch(context.Background(), activities, 3)
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("batch[%d]: %v", i, res.Err)
		}
		if want := lib.UnknownActions(activities[i]); !reflect.DeepEqual(res.UnknownActions, want) {
			t.Errorf("batch[%d] unknown = %v, want %v", i, res.UnknownActions, want)
		}
		if want := rec.Recommend(activities[i], 3); !reflect.DeepEqual(res.Recommendations, want) {
			t.Errorf("batch[%d] diverged from sequential", i)
		}
	}
}

// TestDuplicateActionsDoNotDoubleCount pins that repeating an action name in
// an activity changes nothing: a history is a set, and neither the single
// nor the batch path may double-count a duplicated name's postings.
func TestDuplicateActionsDoNotDoubleCount(t *testing.T) {
	lib := groceryLibrary(t)
	clean := []string{"potatoes", "carrots"}
	dups := []string{"potatoes", "carrots", "potatoes", "carrots", "potatoes"}
	for _, s := range Strategies() {
		rec := lib.MustRecommender(s)
		want := rec.Recommend(clean, 5)
		if got := rec.Recommend(dups, 5); !reflect.DeepEqual(got, want) {
			t.Errorf("%s: duplicated activity diverged:\ngot  %v\nwant %v", s, got, want)
		}
		batch := rec.RecommendBatch(context.Background(), [][]string{dups, clean}, 5)
		if !reflect.DeepEqual(batch[0].Recommendations, want) || !reflect.DeepEqual(batch[1].Recommendations, want) {
			t.Errorf("%s: batch with duplicated activity diverged", s)
		}
	}
}

func TestWithCache(t *testing.T) {
	lib := groceryLibrary(t)
	plain := lib.MustRecommender(Breadth)
	cached := lib.MustRecommender(Breadth, WithCache(8))
	activity := []string{"potatoes", "carrots"}
	want := plain.Recommend(activity, 3)
	for i := 0; i < 3; i++ {
		if got := cached.Recommend(activity, 3); !reflect.DeepEqual(got, want) {
			t.Fatalf("cached output diverged: %v vs %v", got, want)
		}
	}
	if cached.Name() != "breadth" {
		t.Errorf("Name = %q", cached.Name())
	}
	// Non-positive capacity falls back to the default rather than disabling.
	if got := lib.MustRecommender(Breadth, WithCache(-1)).Recommend(activity, 3); !reflect.DeepEqual(got, want) {
		t.Errorf("default-capacity cache diverged: %v", got)
	}
}

func TestSaveLoadJSON(t *testing.T) {
	lib := groceryLibrary(t)
	var buf bytes.Buffer
	if err := lib.SaveJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadLibraryJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumImplementations() != lib.NumImplementations() {
		t.Errorf("round trip lost implementations")
	}
	r1 := lib.MustRecommender(Breadth).Recommend([]string{"potatoes"}, 5)
	r2 := got.MustRecommender(Breadth).Recommend([]string{"potatoes"}, 5)
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("round trip changed recommendations: %v vs %v", r1, r2)
	}
	if _, err := LoadLibraryJSON(strings.NewReader("garbage")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestRelatedGoals(t *testing.T) {
	lib := groceryLibrary(t)
	// olivier salad = {potatoes, carrots, pickles};
	// mashed potatoes = {potatoes, nutmeg, butter} shares 1 of 5;
	// pan-fried carrots = {carrots, nutmeg} shares 1 of 4.
	got := lib.RelatedGoals("olivier salad", -1)
	if len(got) != 2 {
		t.Fatalf("RelatedGoals = %v", got)
	}
	if got[0].Goal != "pan-fried carrots" {
		t.Errorf("top related = %v, want pan-fried carrots (1/4 > 1/5)", got[0])
	}
	if got[0].SharedActions != 1 || got[0].Similarity != 0.25 {
		t.Errorf("top related = %+v", got[0])
	}
	// beer snacks shares nothing and never appears.
	for _, r := range got {
		if r.Goal == "beer snacks" {
			t.Error("unrelated goal listed")
		}
	}
	if lib.RelatedGoals("unknown", 5) != nil {
		t.Error("unknown goal accepted")
	}
	if lib.RelatedGoals("olivier salad", 0) != nil {
		t.Error("k=0 returned results")
	}
	if top1 := lib.RelatedGoals("olivier salad", 1); len(top1) != 1 {
		t.Errorf("k=1 = %v", top1)
	}
}

func TestMergeLibraries(t *testing.T) {
	a := NewBuilder()
	if err := a.AddImplementation("olivier salad", "potatoes", "carrots", "pickles"); err != nil {
		t.Fatal(err)
	}
	b := NewBuilder()
	if err := b.AddImplementation("mashed potatoes", "potatoes", "nutmeg"); err != nil {
		t.Fatal(err)
	}
	merged := MergeLibraries(a.Build(), b.Build())
	if merged.NumImplementations() != 2 {
		t.Fatalf("implementations = %d", merged.NumImplementations())
	}
	// "potatoes" unified across sources: its goal space spans both.
	gs := merged.GoalSpace([]string{"potatoes"})
	if len(gs) != 2 {
		t.Errorf("goal space of potatoes = %v", gs)
	}
	if got := MergeLibraries(); got.NumImplementations() != 0 {
		t.Errorf("empty merge = %d implementations", got.NumImplementations())
	}
}

func TestDeduplicate(t *testing.T) {
	b := NewBuilder()
	for _, goal := range []string{"get fit", "get fit", "save money"} {
		if err := b.AddImplementation(goal, "join gym", "jog daily"); err != nil {
			t.Fatal(err)
		}
	}
	lib := b.Build()
	out, stats := lib.Deduplicate(1)
	if stats.ExactDuplicates != 1 || stats.Kept != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if out.NumImplementations() != 2 {
		t.Errorf("size = %d", out.NumImplementations())
	}
	// Names survive (the vocabulary is shared).
	if got := out.GoalSpace([]string{"join gym"}); len(got) != 2 {
		t.Errorf("goal space = %v", got)
	}
}

func TestExportDOT(t *testing.T) {
	lib := groceryLibrary(t)
	var buf bytes.Buffer
	if err := lib.ExportDOT(&buf, 2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "graph goalmodel") || !strings.Contains(out, "olivier salad") {
		t.Errorf("DOT output wrong:\n%s", out)
	}
	if strings.Contains(out, "impl2 ") {
		t.Error("maxImpls cap ignored")
	}
}

func TestLoadLibraryFile(t *testing.T) {
	lib := groceryLibrary(t)
	dir := t.TempDir()

	jsonPath := filepath.Join(dir, "lib.jsonl")
	jf, err := os.Create(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := lib.SaveJSON(jf); err != nil {
		t.Fatal(err)
	}
	jf.Close()

	binPath := filepath.Join(dir, "lib.bin")
	bf, err := os.Create(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := lib.SaveBinary(bf); err != nil {
		t.Fatal(err)
	}
	bf.Close()

	for _, path := range []string{jsonPath, binPath} {
		got, err := LoadLibraryFile(path)
		if err != nil {
			t.Fatalf("LoadLibraryFile(%s): %v", path, err)
		}
		if got.NumImplementations() != lib.NumImplementations() {
			t.Errorf("%s: implementation count changed", path)
		}
	}
	if _, err := LoadLibraryFile(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file accepted")
	}
	empty := filepath.Join(dir, "empty")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadLibraryFile(empty); err == nil {
		t.Error("empty file accepted")
	}
}

func TestBreadthWeightingVariantsByName(t *testing.T) {
	lib := groceryLibrary(t)
	activity := []string{"potatoes", "carrots"}
	for _, name := range []string{"overlap", "count", "union"} {
		rec := lib.MustRecommender(Breadth, WithBreadthWeighting(name))
		if got := rec.Recommend(activity, 3); len(got) == 0 {
			t.Errorf("weighting %q produced nothing", name)
		}
	}
	if got := lib.MustRecommender(Breadth, WithBreadthWeighting("count")).Name(); got != "breadth-count" {
		t.Errorf("Name = %q", got)
	}
}

func TestRecommenderOptionErrorsSurface(t *testing.T) {
	lib := groceryLibrary(t)
	if _, err := lib.Recommender(Breadth, WithBreadthWeighting("no-such-weighting")); err == nil {
		t.Error("unknown breadth weighting silently accepted")
	}
	if _, err := lib.Recommender(BestMatch, WithDistanceMetric("no-such-metric")); err == nil {
		t.Error("unknown distance metric silently accepted")
	}
	// The error surfaces even when the option does not apply to the chosen
	// strategy: a typo should never be swallowed.
	if _, err := lib.Recommender(Breadth, WithDistanceMetric("no-such-metric")); err == nil {
		t.Error("unknown metric ignored by non-best-match strategy")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustRecommender did not panic on an invalid option")
			}
		}()
		lib.MustRecommender(Breadth, WithBreadthWeighting("no-such-weighting"))
	}()
}

func TestSaveLoadBinary(t *testing.T) {
	lib := groceryLibrary(t)
	var buf bytes.Buffer
	if err := lib.SaveBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadLibraryBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	r1 := lib.MustRecommender(Breadth).Recommend([]string{"potatoes"}, 5)
	r2 := got.MustRecommender(Breadth).Recommend([]string{"potatoes"}, 5)
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("binary round trip changed recommendations: %v vs %v", r1, r2)
	}
	if _, err := LoadLibraryBinary(strings.NewReader("junk")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestCorpusBaselines(t *testing.T) {
	lib := groceryLibrary(t)
	corpus := lib.NewCorpus([][]string{
		{"potatoes", "carrots", "pickles"},
		{"potatoes", "carrots", "beer"},
		{"beer", "peanuts"},
		{"potatoes", "nutmeg"},
	})
	if corpus.NumUsers() != 4 {
		t.Fatalf("NumUsers = %d", corpus.NumUsers())
	}
	if corpus.Popularity("potatoes") != 3 {
		t.Errorf("Popularity(potatoes) = %d, want 3", corpus.Popularity("potatoes"))
	}
	if corpus.Popularity("spaceship") != 0 {
		t.Errorf("unknown action popularity != 0")
	}

	knn := corpus.KNNRecommender(0)
	if got := knn.Recommend([]string{"potatoes", "carrots"}, 3); len(got) == 0 {
		t.Error("kNN produced nothing")
	}
	pop := corpus.PopularityRecommender()
	if got := pop.Recommend([]string{"beer"}, 1); len(got) != 1 || got[0].Action != "potatoes" {
		t.Errorf("popularity top-1 = %v, want potatoes", got)
	}
	ar := corpus.AssocRulesRecommender(2)
	if got := ar.Recommend([]string{"potatoes"}, 3); len(got) == 0 {
		t.Error("assoc rules produced nothing")
	}
	mf, err := corpus.MFRecommender(MFConfig{Factors: 4, Iterations: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := mf.Recommend([]string{"potatoes", "carrots"}, 3); len(got) == 0 {
		t.Error("MF produced nothing")
	}
	bpr := corpus.BPRRecommender(BPRConfig{Factors: 4, Epochs: 5, Seed: 1})
	if bpr.Name() != "cf-bpr" {
		t.Errorf("BPR name = %q", bpr.Name())
	}
	if got := bpr.Recommend([]string{"potatoes", "carrots"}, 3); len(got) == 0 {
		t.Error("BPR produced nothing")
	}
}

func TestItemKNNRecommender(t *testing.T) {
	lib := groceryLibrary(t)
	corpus := lib.NewCorpus([][]string{
		{"potatoes", "carrots", "pickles"},
		{"potatoes", "carrots"},
		{"beer", "peanuts"},
	})
	rec := corpus.ItemKNNRecommender(0)
	if rec.Name() != "cf-item-knn" {
		t.Errorf("Name = %q", rec.Name())
	}
	got := rec.Recommend([]string{"potatoes"}, 3)
	if len(got) == 0 {
		t.Fatal("no recommendations")
	}
	// carrots co-occur with potatoes in both carts; they must rank first.
	if got[0].Action != "carrots" {
		t.Errorf("top = %v, want carrots", got[0])
	}
}

func TestHybridRecommender(t *testing.T) {
	lib := groceryLibrary(t)
	features := map[string][]string{
		"potatoes": {"vegetables"}, "carrots": {"vegetables"},
		"pickles": {"preserves"}, "nutmeg": {"spices"}, "butter": {"dairy"},
	}
	hyb, err := lib.HybridRecommender(Breadth, features, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if hyb.Name() != "hybrid-breadth-a0.50" {
		t.Errorf("Name = %q", hyb.Name())
	}
	got := hyb.Recommend([]string{"potatoes", "carrots"}, 5)
	if len(got) == 0 {
		t.Fatal("no recommendations")
	}
	for _, r := range got {
		if r.Action == "potatoes" || r.Action == "carrots" {
			t.Errorf("performed action recommended: %v", r)
		}
		if r.Score < 0 || r.Score > 1 {
			t.Errorf("blended score out of [0,1]: %v", r)
		}
	}
	if _, err := lib.HybridRecommender(Strategy("bogus"), features, 0.5); err == nil {
		t.Error("unknown strategy accepted")
	}
}

func TestContentRecommender(t *testing.T) {
	lib := groceryLibrary(t)
	rec := lib.ContentRecommender(map[string][]string{
		"potatoes": {"vegetables"},
		"carrots":  {"vegetables"},
		"pickles":  {"vegetables", "preserves"},
		"nutmeg":   {"spices"},
		"beer":     {"drinks"},
		"unknown":  {"ignored"},
	})
	got := rec.Recommend([]string{"potatoes"}, 5)
	if len(got) == 0 {
		t.Fatal("content produced nothing")
	}
	// Content recommends feature-similar items: vegetables first, never the
	// featureless peanuts.
	if got[0].Action != "carrots" && got[0].Action != "pickles" {
		t.Errorf("top content rec = %v, want a vegetable", got[0])
	}
	for _, r := range got {
		if r.Action == "peanuts" {
			t.Error("featureless action recommended")
		}
	}
}

func TestBuildFromStories(t *testing.T) {
	stories := []Story{
		{Goal: "get fit", Text: "I joined a gym. I started jogging daily."},
		{Goal: "get fit", Text: "started jogging daily and then cut sugar"},
		{Goal: "save money", Text: "I canceled subscriptions. I cooked at home."},
		{Goal: "noise", Text: "nothing happened that year"},
	}
	lib, kept := BuildFromStories(stories, ExtractOptions{})
	if kept != 3 {
		t.Fatalf("kept = %d, want 3", kept)
	}
	if lib.NumGoals() != 2 {
		t.Errorf("goals = %d, want 2", lib.NumGoals())
	}
	rec := lib.MustRecommender(FocusCompleteness)
	got := rec.Recommend([]string{"start jog daily"}, 5)
	if len(got) == 0 {
		t.Fatal("no recommendations from extracted library")
	}
	// ExtractActions previews the pipeline.
	acts := ExtractActions(stories[0], ExtractOptions{})
	if len(acts) != 2 {
		t.Errorf("ExtractActions = %v", acts)
	}
	if phrases := ExtractActions(Story{Goal: "g", Text: "vague mood"}, ExtractOptions{KeepVerblessSteps: true}); len(phrases) == 0 {
		t.Error("verbless extraction kept nothing")
	}
	// Synonyms flow through the public options.
	syn := ExtractOptions{Synonyms: map[string]string{"jogging": "run"}}
	if got := ExtractActions(Story{Goal: "g", Text: "I started jogging."}, syn); len(got) != 1 || got[0] != "start run" {
		t.Errorf("synonym extraction = %v", got)
	}
}

func contains(xs []string, want string) bool {
	for _, x := range xs {
		if x == want {
			return true
		}
	}
	return false
}
