package linalg

import (
	"errors"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func almostEqualVec(a, b []float64, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Abs(a[i]-b[i]) > tol {
			return false
		}
	}
	return true
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 1, 3)
	m.Add(0, 1, 2)
	if m.At(0, 1) != 5 {
		t.Errorf("At(0,1) = %v, want 5", m.At(0, 1))
	}
	m.AddDiagonal(1)
	if m.At(0, 0) != 1 || m.At(1, 1) != 1 {
		t.Error("AddDiagonal failed")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Error("Clone shares storage")
	}
}

func TestMulVec(t *testing.T) {
	m := NewMatrix(2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 3)
	m.Set(1, 1, 4)
	got := m.MulVec([]float64{5, 6})
	if !reflect.DeepEqual(got, []float64{17, 39}) {
		t.Errorf("MulVec = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("dimension mismatch should panic")
		}
	}()
	m.MulVec([]float64{1})
}

func TestSolveSPDKnown(t *testing.T) {
	// A = [[4,2],[2,3]], b = [10, 9] → x = [1.5, 2].
	a := NewMatrix(2)
	a.Set(0, 0, 4)
	a.Set(0, 1, 2)
	a.Set(1, 0, 2)
	a.Set(1, 1, 3)
	x, err := SolveSPD(a, []float64{10, 9})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqualVec(x, []float64{1.5, 2}, 1e-10) {
		t.Errorf("x = %v, want [1.5 2]", x)
	}
}

func TestSolveSPDSingular(t *testing.T) {
	a := NewMatrix(2) // zero matrix
	if _, err := SolveSPD(a, []float64{1, 1}); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
	// Rank-deficient: [[1,1],[1,1]].
	a.Set(0, 0, 1)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 1)
	if _, err := SolveSPD(a, []float64{1, 1}); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestSolveDimensionMismatch(t *testing.T) {
	a := NewMatrix(2)
	a.AddDiagonal(1)
	if _, err := SolveSPD(a, []float64{1}); err == nil {
		t.Error("SolveSPD accepted wrong rhs length")
	}
	if _, err := SolveGaussian(a, []float64{1}); err == nil {
		t.Error("SolveGaussian accepted wrong rhs length")
	}
}

func TestSolveGaussianNonSymmetric(t *testing.T) {
	// A = [[0,2],[3,1]] needs pivoting; b = [4, 5] → x = [1, 2].
	a := NewMatrix(2)
	a.Set(0, 1, 2)
	a.Set(1, 0, 3)
	a.Set(1, 1, 1)
	x, err := SolveGaussian(a, []float64{4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqualVec(x, []float64{1, 2}, 1e-10) {
		t.Errorf("x = %v, want [1 2]", x)
	}
}

func TestSolveGaussianSingular(t *testing.T) {
	a := NewMatrix(3)
	if _, err := SolveGaussian(a, []float64{1, 2, 3}); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestAddOuter(t *testing.T) {
	m := NewMatrix(2)
	m.AddOuter([]float64{1, 2}, 3)
	want := []float64{3, 6, 6, 12}
	if !almostEqualVec(m.Data, want, 1e-12) {
		t.Errorf("AddOuter = %v, want %v", m.Data, want)
	}
}

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	if got := Dot(nil, nil); got != 0 {
		t.Errorf("Dot(nil,nil) = %v", got)
	}
}

// randomSPD builds a random SPD matrix G = BᵀB + εI.
func randomSPD(r *rand.Rand, n int) *Matrix {
	g := NewMatrix(n)
	for rows := 0; rows < n+2; rows++ {
		x := make([]float64, n)
		for i := range x {
			x[i] = r.NormFloat64()
		}
		g.AddOuter(x, 1)
	}
	g.AddDiagonal(0.1)
	return g
}

func TestSolversAgreeProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 100,
		Values: func(v []reflect.Value, r *rand.Rand) {
			n := 1 + r.Intn(8)
			a := randomSPD(r, n)
			b := make([]float64, n)
			for i := range b {
				b[i] = r.NormFloat64()
			}
			v[0] = reflect.ValueOf(a)
			v[1] = reflect.ValueOf(b)
		},
	}
	f := func(a *Matrix, b []float64) bool {
		x1, err1 := SolveSPD(a, b)
		x2, err2 := SolveGaussian(a, b)
		if err1 != nil || err2 != nil {
			return false
		}
		// Both solvers agree and actually solve the system.
		return almostEqualVec(x1, x2, 1e-6) && almostEqualVec(a.MulVec(x1), b, 1e-6)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func BenchmarkSolveSPD(b *testing.B) {
	r := rand.New(rand.NewSource(7))
	a := randomSPD(r, 20)
	rhs := make([]float64, 20)
	for i := range rhs {
		rhs[i] = r.NormFloat64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveSPD(a, rhs); err != nil {
			b.Fatal(err)
		}
	}
}
