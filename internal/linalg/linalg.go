// Package linalg provides the small dense linear-algebra kernel the ALS-WR
// baseline needs: column-major square matrices, symmetric positive-definite
// solves via Cholesky factorization, and a partial-pivoting Gaussian
// fallback for matrices that are only positive semi-definite.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a solve encounters a (numerically) singular
// matrix.
var ErrSingular = errors.New("linalg: singular matrix")

// Matrix is a dense row-major n×n square matrix.
type Matrix struct {
	N    int
	Data []float64 // len N*N, Data[i*N+j] = element (i, j)
}

// NewMatrix returns a zero n×n matrix.
func NewMatrix(n int) *Matrix {
	return &Matrix{N: n, Data: make([]float64, n*n)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.N+j] }

// Set stores v at element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.N+j] = v }

// Add accumulates v into element (i, j).
func (m *Matrix) Add(i, j int, v float64) { m.Data[i*m.N+j] += v }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.N)
	copy(out.Data, m.Data)
	return out
}

// AddDiagonal adds v to every diagonal element.
func (m *Matrix) AddDiagonal(v float64) {
	for i := 0; i < m.N; i++ {
		m.Data[i*m.N+i] += v
	}
}

// MulVec returns m·x as a new slice. It panics if len(x) != N.
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.N {
		panic(fmt.Sprintf("linalg: MulVec dimension mismatch %d != %d", len(x), m.N))
	}
	out := make([]float64, m.N)
	for i := 0; i < m.N; i++ {
		row := m.Data[i*m.N : (i+1)*m.N]
		s := 0.0
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// SolveSPD solves A·x = b for a symmetric positive-definite A using an
// in-place Cholesky factorization of a copy of A. It returns ErrSingular if
// a pivot collapses. The typical ALS call sites guarantee positive
// definiteness by adding λ·I to the Gram matrix.
func SolveSPD(a *Matrix, b []float64) ([]float64, error) {
	n := a.N
	if len(b) != n {
		return nil, fmt.Errorf("linalg: rhs length %d != %d", len(b), n)
	}
	l := a.Clone()
	// Cholesky: L lower-triangular with A = L·Lᵀ, computed in place.
	for j := 0; j < n; j++ {
		d := l.At(j, j)
		for k := 0; k < j; k++ {
			d -= l.At(j, k) * l.At(j, k)
		}
		if d <= 1e-14 {
			return nil, fmt.Errorf("%w: pivot %d = %g", ErrSingular, j, d)
		}
		d = math.Sqrt(d)
		l.Set(j, j, d)
		for i := j + 1; i < n; i++ {
			s := l.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/d)
		}
	}
	// Forward substitution: L·y = b.
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		s := b[i]
		for k := 0; k < i; k++ {
			s -= l.At(i, k) * y[k]
		}
		y[i] = s / l.At(i, i)
	}
	// Back substitution: Lᵀ·x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= l.At(k, i) * x[k]
		}
		x[i] = s / l.At(i, i)
	}
	return x, nil
}

// SolveGaussian solves A·x = b by Gaussian elimination with partial
// pivoting; it works on copies of its arguments. Use it when A is not
// guaranteed SPD.
func SolveGaussian(a *Matrix, b []float64) ([]float64, error) {
	n := a.N
	if len(b) != n {
		return nil, fmt.Errorf("linalg: rhs length %d != %d", len(b), n)
	}
	m := a.Clone()
	x := append([]float64(nil), b...)
	for col := 0; col < n; col++ {
		// Partial pivot.
		pivot, best := col, math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > best {
				pivot, best = r, v
			}
		}
		if best < 1e-14 {
			return nil, fmt.Errorf("%w: column %d", ErrSingular, col)
		}
		if pivot != col {
			for j := 0; j < n; j++ {
				m.Data[col*n+j], m.Data[pivot*n+j] = m.Data[pivot*n+j], m.Data[col*n+j]
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		inv := 1 / m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) * inv
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				m.Add(r, j, -f*m.At(col, j))
			}
			x[r] -= f * x[col]
		}
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		x[i] = s / m.At(i, i)
	}
	return x, nil
}

// Dot returns the inner product of two equal-length dense vectors.
func Dot(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// AddOuter accumulates w·(x xᵀ) into m: the rank-1 update used to build ALS
// Gram matrices.
func (m *Matrix) AddOuter(x []float64, w float64) {
	n := m.N
	for i := 0; i < n; i++ {
		xi := w * x[i]
		if xi == 0 {
			continue
		}
		row := m.Data[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			row[j] += xi * x[j]
		}
	}
}
