// Package vectorspace provides sparse non-negative feature vectors and the
// distance/similarity metrics used by the Best Match strategy (Section 5.3
// of the paper) and the content-based baseline.
//
// Vectors live in an implicit feature space indexed by dense int32 feature
// ids (goal ids for Best Match, category ids for the content baseline); only
// non-zero coordinates are stored.
package vectorspace

import (
	"fmt"
	"math"
	"sort"
)

// Vector is a sparse vector: strictly increasing feature ids with their
// values. The zero value is the zero vector.
type Vector struct {
	ids  []int32
	vals []float64
}

// FromMap builds a Vector from a feature→value map, dropping zeros.
func FromMap(m map[int32]float64) Vector {
	ids := make([]int32, 0, len(m))
	for id, v := range m {
		if v != 0 {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	vals := make([]float64, len(ids))
	for i, id := range ids {
		vals[i] = m[id]
	}
	return Vector{ids: ids, vals: vals}
}

// FromCounts builds a Vector from an integer count map, a common case for
// goal-implementation counting.
func FromCounts(m map[int32]int) Vector {
	fm := make(map[int32]float64, len(m))
	for id, c := range m {
		fm[id] = float64(c)
	}
	return FromMap(fm)
}

// Len returns the number of non-zero coordinates.
func (v Vector) Len() int { return len(v.ids) }

// IsZero reports whether v has no non-zero coordinates.
func (v Vector) IsZero() bool { return len(v.ids) == 0 }

// At returns the value at feature id (0 when absent).
func (v Vector) At(id int32) float64 {
	i := sort.Search(len(v.ids), func(i int) bool { return v.ids[i] >= id })
	if i < len(v.ids) && v.ids[i] == id {
		return v.vals[i]
	}
	return 0
}

// Norm returns the Euclidean (L2) norm.
func (v Vector) Norm() float64 {
	s := 0.0
	for _, x := range v.vals {
		s += x * x
	}
	return math.Sqrt(s)
}

// L1Norm returns the Manhattan (L1) norm.
func (v Vector) L1Norm() float64 {
	s := 0.0
	for _, x := range v.vals {
		s += math.Abs(x)
	}
	return s
}

// Add returns v + w.
func (v Vector) Add(w Vector) Vector {
	m := make(map[int32]float64, len(v.ids)+len(w.ids))
	for i, id := range v.ids {
		m[id] += v.vals[i]
	}
	for i, id := range w.ids {
		m[id] += w.vals[i]
	}
	return FromMap(m)
}

// Scale returns c·v.
func (v Vector) Scale(c float64) Vector {
	if c == 0 {
		return Vector{}
	}
	out := Vector{ids: append([]int32(nil), v.ids...), vals: make([]float64, len(v.vals))}
	for i, x := range v.vals {
		out.vals[i] = c * x
	}
	return out
}

// Dot returns the inner product v·w via a linear merge.
func (v Vector) Dot(w Vector) float64 {
	s := 0.0
	i, j := 0, 0
	for i < len(v.ids) && j < len(w.ids) {
		switch {
		case v.ids[i] < w.ids[j]:
			i++
		case v.ids[i] > w.ids[j]:
			j++
		default:
			s += v.vals[i] * w.vals[j]
			i++
			j++
		}
	}
	return s
}

// Items iterates over the non-zero coordinates in increasing feature order.
func (v Vector) Items(f func(id int32, val float64)) {
	for i, id := range v.ids {
		f(id, v.vals[i])
	}
}

// Metric identifies a distance function between sparse vectors. Smaller is
// closer for every metric, matching the paper's dist(H⃗, a⃗) ranking.
type Metric int

const (
	// Cosine is 1 − cosine similarity; the default Best Match metric.
	Cosine Metric = iota
	// Euclidean is the L2 distance.
	Euclidean
	// Manhattan is the L1 distance.
	Manhattan
	// JaccardDist is 1 − weighted Jaccard similarity
	// (Σ min(v_i, w_i) / Σ max(v_i, w_i)).
	JaccardDist
)

// ParseMetric maps a metric name ("cosine", "euclidean", "manhattan",
// "jaccard") to its Metric.
func ParseMetric(name string) (Metric, error) {
	switch name {
	case "cosine":
		return Cosine, nil
	case "euclidean":
		return Euclidean, nil
	case "manhattan":
		return Manhattan, nil
	case "jaccard":
		return JaccardDist, nil
	}
	return 0, fmt.Errorf("vectorspace: unknown metric %q", name)
}

// String returns the metric's canonical name.
func (m Metric) String() string {
	switch m {
	case Cosine:
		return "cosine"
	case Euclidean:
		return "euclidean"
	case Manhattan:
		return "manhattan"
	case JaccardDist:
		return "jaccard"
	}
	return fmt.Sprintf("metric(%d)", int(m))
}

// Distance returns the distance between v and w under m. Distances involving
// the zero vector are defined as the maximum possible for bounded metrics
// (cosine, jaccard: 1) and the norm of the other vector otherwise.
func (m Metric) Distance(v, w Vector) float64 {
	switch m {
	case Cosine:
		return 1 - CosineSimilarity(v, w)
	case Euclidean:
		s := 0.0
		mergeAbsDiff(v, w, func(d float64) { s += d * d })
		return math.Sqrt(s)
	case Manhattan:
		s := 0.0
		mergeAbsDiff(v, w, func(d float64) { s += d })
		return s
	case JaccardDist:
		return 1 - WeightedJaccard(v, w)
	}
	panic("vectorspace: unknown metric")
}

// CosineSimilarity returns v·w / (|v||w|), or 0 when either vector is zero.
func CosineSimilarity(v, w Vector) float64 {
	nv, nw := v.Norm(), w.Norm()
	if nv == 0 || nw == 0 {
		return 0
	}
	return v.Dot(w) / (nv * nw)
}

// WeightedJaccard returns Σ min(v_i, w_i) / Σ max(v_i, w_i) for non-negative
// vectors, or 0 when both are zero.
func WeightedJaccard(v, w Vector) float64 {
	minSum, maxSum := 0.0, 0.0
	i, j := 0, 0
	for i < len(v.ids) || j < len(w.ids) {
		switch {
		case j >= len(w.ids) || (i < len(v.ids) && v.ids[i] < w.ids[j]):
			maxSum += v.vals[i]
			i++
		case i >= len(v.ids) || v.ids[i] > w.ids[j]:
			maxSum += w.vals[j]
			j++
		default:
			minSum += math.Min(v.vals[i], w.vals[j])
			maxSum += math.Max(v.vals[i], w.vals[j])
			i++
			j++
		}
	}
	if maxSum == 0 {
		return 0
	}
	return minSum / maxSum
}

// mergeAbsDiff feeds |v_i − w_i| for every coordinate where either vector is
// non-zero.
func mergeAbsDiff(v, w Vector, f func(float64)) {
	i, j := 0, 0
	for i < len(v.ids) || j < len(w.ids) {
		switch {
		case j >= len(w.ids) || (i < len(v.ids) && v.ids[i] < w.ids[j]):
			f(math.Abs(v.vals[i]))
			i++
		case i >= len(v.ids) || v.ids[i] > w.ids[j]:
			f(math.Abs(w.vals[j]))
			j++
		default:
			f(math.Abs(v.vals[i] - w.vals[j]))
			i++
			j++
		}
	}
}
