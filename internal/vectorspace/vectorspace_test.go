package vectorspace

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func vec(m map[int32]float64) Vector { return FromMap(m) }

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestFromMapDropsZeros(t *testing.T) {
	v := vec(map[int32]float64{1: 0, 2: 3, 5: 0, 7: -1})
	if v.Len() != 2 {
		t.Fatalf("Len = %d, want 2", v.Len())
	}
	if v.At(1) != 0 || v.At(2) != 3 || v.At(7) != -1 {
		t.Errorf("unexpected coordinates: At(1)=%v At(2)=%v At(7)=%v", v.At(1), v.At(2), v.At(7))
	}
}

func TestFromCounts(t *testing.T) {
	v := FromCounts(map[int32]int{0: 2, 3: 1})
	if v.At(0) != 2 || v.At(3) != 1 {
		t.Errorf("FromCounts coordinates wrong: %v %v", v.At(0), v.At(3))
	}
}

func TestZeroVector(t *testing.T) {
	var z Vector
	if !z.IsZero() || z.Len() != 0 || z.Norm() != 0 || z.L1Norm() != 0 {
		t.Error("zero value is not the zero vector")
	}
	if z.At(5) != 0 {
		t.Error("At on zero vector should be 0")
	}
}

func TestAddScaleDot(t *testing.T) {
	v := vec(map[int32]float64{0: 1, 2: 2})
	w := vec(map[int32]float64{1: 3, 2: 4})
	sum := v.Add(w)
	if sum.At(0) != 1 || sum.At(1) != 3 || sum.At(2) != 6 {
		t.Errorf("Add wrong: %v %v %v", sum.At(0), sum.At(1), sum.At(2))
	}
	// Cancellation removes coordinates.
	neg := w.Scale(-1)
	diff := w.Add(neg)
	if !diff.IsZero() {
		t.Errorf("w + (−w) has %d non-zeros", diff.Len())
	}
	if got := v.Dot(w); got != 8 {
		t.Errorf("Dot = %v, want 8 (only shared coordinate 2)", got)
	}
	if got := v.Scale(2).At(2); got != 4 {
		t.Errorf("Scale(2).At(2) = %v, want 4", got)
	}
	if !v.Scale(0).IsZero() {
		t.Error("Scale(0) should be zero vector")
	}
}

func TestNorms(t *testing.T) {
	v := vec(map[int32]float64{0: 3, 1: 4})
	if v.Norm() != 5 {
		t.Errorf("Norm = %v, want 5", v.Norm())
	}
	if v.L1Norm() != 7 {
		t.Errorf("L1Norm = %v, want 7", v.L1Norm())
	}
}

func TestItemsOrder(t *testing.T) {
	v := vec(map[int32]float64{9: 1, 2: 2, 5: 3})
	var ids []int32
	v.Items(func(id int32, _ float64) { ids = append(ids, id) })
	want := []int32{2, 5, 9}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("Items order = %v, want %v", ids, want)
		}
	}
}

func TestCosine(t *testing.T) {
	v := vec(map[int32]float64{0: 1})
	w := vec(map[int32]float64{0: 5})
	if got := CosineSimilarity(v, w); !almostEqual(got, 1) {
		t.Errorf("cosine of parallel vectors = %v, want 1", got)
	}
	orth := vec(map[int32]float64{1: 2})
	if got := CosineSimilarity(v, orth); got != 0 {
		t.Errorf("cosine of orthogonal vectors = %v, want 0", got)
	}
	if got := CosineSimilarity(v, Vector{}); got != 0 {
		t.Errorf("cosine with zero vector = %v, want 0", got)
	}
	if got := Cosine.Distance(v, w); !almostEqual(got, 0) {
		t.Errorf("cosine distance of parallel = %v, want 0", got)
	}
}

func TestEuclideanManhattan(t *testing.T) {
	v := vec(map[int32]float64{0: 1, 1: 2})
	w := vec(map[int32]float64{1: 4, 2: 2})
	// diffs: (1, −2, −2)
	if got := Euclidean.Distance(v, w); !almostEqual(got, 3) {
		t.Errorf("euclidean = %v, want 3", got)
	}
	if got := Manhattan.Distance(v, w); !almostEqual(got, 5) {
		t.Errorf("manhattan = %v, want 5", got)
	}
}

func TestWeightedJaccard(t *testing.T) {
	v := vec(map[int32]float64{0: 2, 1: 1})
	w := vec(map[int32]float64{0: 1, 2: 1})
	// min sum = 1, max sum = 2+1+1 = 4.
	if got := WeightedJaccard(v, w); !almostEqual(got, 0.25) {
		t.Errorf("weighted jaccard = %v, want 0.25", got)
	}
	if got := WeightedJaccard(Vector{}, Vector{}); got != 0 {
		t.Errorf("jaccard of zeros = %v, want 0", got)
	}
	if got := WeightedJaccard(v, v); !almostEqual(got, 1) {
		t.Errorf("jaccard self = %v, want 1", got)
	}
}

func TestParseMetric(t *testing.T) {
	for _, name := range []string{"cosine", "euclidean", "manhattan", "jaccard"} {
		m, err := ParseMetric(name)
		if err != nil {
			t.Errorf("ParseMetric(%q): %v", name, err)
		}
		if m.String() != name {
			t.Errorf("round trip %q -> %q", name, m.String())
		}
	}
	if _, err := ParseMetric("hamming"); err == nil {
		t.Error("unknown metric accepted")
	}
}

func randomVector(r *rand.Rand) Vector {
	m := make(map[int32]float64)
	for n := r.Intn(8); n > 0; n-- {
		m[int32(r.Intn(12))] = float64(1 + r.Intn(5))
	}
	return FromMap(m)
}

func TestMetricProperties(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(v []reflect.Value, r *rand.Rand) {
			v[0] = reflect.ValueOf(randomVector(r))
			v[1] = reflect.ValueOf(randomVector(r))
		},
	}
	for _, m := range []Metric{Cosine, Euclidean, Manhattan, JaccardDist} {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			f := func(v, w Vector) bool {
				d := m.Distance(v, w)
				// Symmetry and non-negativity.
				if d < -1e-12 || math.Abs(d-m.Distance(w, v)) > 1e-12 {
					return false
				}
				// Identity (non-zero vectors at distance 0 from themselves;
				// cosine/jaccard of zero vector conventionally maximal).
				if !v.IsZero() && m.Distance(v, v) > 1e-12 {
					return false
				}
				return true
			}
			if err := quick.Check(f, cfg); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestTriangleInequalityEuclideanManhattan(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(v []reflect.Value, r *rand.Rand) {
			for i := range v {
				v[i] = reflect.ValueOf(randomVector(r))
			}
		},
	}
	for _, m := range []Metric{Euclidean, Manhattan} {
		m := m
		f := func(a, b, c Vector) bool {
			return m.Distance(a, c) <= m.Distance(a, b)+m.Distance(b, c)+1e-9
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Errorf("%v: %v", m, err)
		}
	}
}

func BenchmarkDot(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	m1 := make(map[int32]float64)
	m2 := make(map[int32]float64)
	for i := 0; i < 200; i++ {
		m1[int32(r.Intn(1000))] = r.Float64()
		m2[int32(r.Intn(1000))] = r.Float64()
	}
	v, w := FromMap(m1), FromMap(m2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Dot(w)
	}
}
