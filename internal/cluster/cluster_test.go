package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"goalrec"
	"goalrec/internal/server"
)

// clusterTestLibrary builds a deterministic random library with heavy score
// ties (small goal/action spaces, many implementations) so shard boundaries
// routinely cut through equal-score runs — the case the merge tie-break
// order must get right.
func clusterTestLibrary(seed int64, impls int) *goalrec.Library {
	r := rand.New(rand.NewSource(seed))
	b := goalrec.NewBuilder()
	const nActions, nGoals = 40, 12
	for i := 0; i < impls; i++ {
		goal := fmt.Sprintf("g%d", r.Intn(nGoals))
		n := 1 + r.Intn(5)
		seen := make(map[int]bool, n)
		actions := make([]string, 0, n)
		for len(actions) < n {
			a := r.Intn(nActions)
			if seen[a] {
				continue
			}
			seen[a] = true
			actions = append(actions, fmt.Sprintf("a%d", a))
		}
		if err := b.AddImplementation(goal, actions...); err != nil {
			panic(err)
		}
	}
	return b.Build()
}

// testWorker is one running shard worker plus the handles the tests use to
// kill and resurrect it.
type testWorker struct {
	worker *Worker
	ln     net.Listener
	addr   string
	engine *goalrec.Engine
	cfg    WorkerConfig
}

func (tw *testWorker) kill() {
	tw.worker.Close()
	tw.ln.Close()
}

// revive restarts a killed worker on its original address with its original
// engine — the "worker restarted from its own snapshot+WAL" case.
func (tw *testWorker) revive(t *testing.T) {
	t.Helper()
	ln, err := net.Listen("tcp", tw.addr)
	if err != nil {
		t.Fatalf("re-listening on %s: %v", tw.addr, err)
	}
	tw.ln = ln
	tw.worker = NewWorker(tw.engine, tw.cfg)
	go tw.worker.Serve(ln)
	t.Cleanup(tw.worker.Close)
}

// startWorkers launches parts workers over lib, splitting the library into
// contiguous ranges with the last shard open-ended (Hi == -1).
func startWorkers(t *testing.T, lib *goalrec.Library, parts int, pruning bool,
	reload func() (*goalrec.Library, error)) []*testWorker {
	t.Helper()
	n := lib.NumImplementations()
	per := (n + parts - 1) / parts
	workers := make([]*testWorker, parts)
	for i := 0; i < parts; i++ {
		lo := i * per
		hi := lo + per
		if i == parts-1 {
			hi = -1
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		tw := &testWorker{
			ln:     ln,
			addr:   ln.Addr().String(),
			engine: goalrec.NewEngineFromLibrary(lib),
			cfg:    WorkerConfig{Lo: lo, Hi: hi, Pruning: pruning, Reload: reload},
		}
		tw.worker = NewWorker(tw.engine, tw.cfg)
		go tw.worker.Serve(ln)
		t.Cleanup(func() { tw.worker.Close(); tw.ln.Close() })
		workers[i] = tw
	}
	return workers
}

func workerAddrs(workers []*testWorker) []string {
	addrs := make([]string, len(workers))
	for i, tw := range workers {
		addrs[i] = tw.addr
	}
	return addrs
}

func startCoordinator(t *testing.T, lib *goalrec.Library, workers []*testWorker, cfg CoordinatorConfig) *Coordinator {
	t.Helper()
	cfg.Peers = workerAddrs(workers)
	co := NewCoordinator(goalrec.NewEngineFromLibrary(lib), cfg)
	t.Cleanup(co.Close)
	return co
}

func postBody(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestClusterHTTPBitIdenticalToSingleNode is the topology oracle: the same
// request posted to a single-node server and to a 3-shard cluster must come
// back byte-for-byte identical (both engines start their lineage at epoch 1,
// so even the epoch field agrees), for every strategy, with worker pruning
// both off and on.
func TestClusterHTTPBitIdenticalToSingleNode(t *testing.T) {
	lib := clusterTestLibrary(1, 60)
	single := httptest.NewServer(server.New(lib, nil))
	defer single.Close()

	bodies := []string{
		`{"activity": ["a1", "a5", "a9"], "strategy": "focus-cmp", "k": 5}`,
		`{"activity": ["a1", "a5", "a9"], "strategy": "focus-cmp", "k": 1}`,
		`{"activity": ["a1", "a5", "a9"], "strategy": "focus-cmp", "k": 200}`,
		`{"activity": ["a3"], "strategy": "focus-cl", "k": 7}`,
		`{"activity": ["a1", "a5", "a9"], "strategy": "focus-cl", "k": 40}`,
		`{"activity": ["a1", "a5", "a9"], "strategy": "breadth", "k": 10}`,
		`{"activity": ["a1", "a5", "a9"], "strategy": "breadth-count", "k": 15}`,
		`{"activity": ["a1", "a5", "a9"], "strategy": "breadth-union", "k": 15}`,
		`{"activity": ["a2", "a7"], "strategy": "best-match", "k": 8}`,
		`{"activity": ["a2", "a7"], "strategy": "best-match", "metric": "jaccard", "k": 8}`,
		`{"activity": ["a2", "a7"], "strategy": "best-match", "metric": "euclidean", "k": 8}`,
		`{"activity": ["a2", "a7"], "strategy": "best-match", "metric": "manhattan", "k": 8}`,
		`{"activity": ["a4", "a11", "a19", "a23"]}`, // default strategy + k
		// Unknown actions: reported, deduplicated, sorted — identically.
		`{"activity": ["a1", "zzz", "a5", "zzz", "aaa"], "strategy": "focus-cmp", "k": 5}`,
		`{"activity": ["nope", "really-not"], "strategy": "breadth", "k": 5}`,
		// Validation errors must match too.
		`{"activity": [], "strategy": "breadth"}`,
		`{"activity": ["a1"], "k": 2000}`,
		`{"activity": ["a1"], "strategy": "no-such-strategy"}`,
		`{"activity": ["a1"], "strategy": "best-match", "metric": "hamming"}`,
	}
	batchBodies := []string{
		`{"activities": [["a1", "a5"], ["a2"], ["a9", "zzz"]], "strategy": "focus-cmp", "k": 4}`,
		`{"activities": [["a1", "a5"], [], ["a9"]], "strategy": "breadth", "k": 6}`,
		`{"activities": [["a2", "a7"], ["a3"]], "strategy": "best-match", "metric": "jaccard", "k": 5}`,
		`{"activities": [], "strategy": "breadth"}`,
	}

	for _, pruning := range []bool{false, true} {
		t.Run(fmt.Sprintf("pruning=%v", pruning), func(t *testing.T) {
			workers := startWorkers(t, lib, 3, pruning, nil)
			co := startCoordinator(t, lib, workers, CoordinatorConfig{})
			cluster := httptest.NewServer(NewHTTPHandler(co))
			defer cluster.Close()

			for _, body := range bodies {
				sCode, sBody := postBody(t, single.URL+"/v1/recommend", body)
				cCode, cBody := postBody(t, cluster.URL+"/v1/recommend", body)
				if sCode != cCode {
					t.Errorf("status mismatch for %s: single %d, cluster %d (%s)", body, sCode, cCode, cBody)
					continue
				}
				if !bytes.Equal(sBody, cBody) {
					t.Errorf("body mismatch for %s:\n single: %s\ncluster: %s", body, sBody, cBody)
				}
			}
			for _, body := range batchBodies {
				sCode, sBody := postBody(t, single.URL+"/v1/recommend/batch", body)
				cCode, cBody := postBody(t, cluster.URL+"/v1/recommend/batch", body)
				if sCode != cCode {
					t.Errorf("batch status mismatch for %s: single %d, cluster %d (%s)", body, sCode, cCode, cBody)
					continue
				}
				if !bytes.Equal(sBody, cBody) {
					t.Errorf("batch body mismatch for %s:\n single: %s\ncluster: %s", body, sBody, cBody)
				}
			}
		})
	}
}

// TestClusterTwoPhaseSwap drives /v1/reload through both outcomes: a clean
// prepare-commit that lands every node on epoch 2 serving the new artifact,
// and an aborted swap (one worker's reload fails) that leaves every node on
// the old epoch serving the old artifact.
func TestClusterTwoPhaseSwap(t *testing.T) {
	lib1 := clusterTestLibrary(1, 40)
	lib2 := clusterTestLibrary(2, 55)

	var failPrepare atomic.Bool
	var failWorker atomic.Int32 // which worker index fails prepare
	reloadFor := func(idx int32) func() (*goalrec.Library, error) {
		return func() (*goalrec.Library, error) {
			if failPrepare.Load() && failWorker.Load() == idx {
				return nil, fmt.Errorf("synthetic reload failure")
			}
			return lib2, nil
		}
	}
	// Build the 3 workers directly so each gets its own indexed reload func.
	var workers []*testWorker
	n := lib1.NumImplementations()
	per := (n + 2) / 3
	for i := 0; i < 3; i++ {
		lo, hi := i*per, (i+1)*per
		if i == 2 {
			hi = -1
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		tw := &testWorker{
			ln:     ln,
			addr:   ln.Addr().String(),
			engine: goalrec.NewEngineFromLibrary(lib1),
			cfg:    WorkerConfig{Lo: lo, Hi: hi, Pruning: true, Reload: reloadFor(int32(i))},
		}
		tw.worker = NewWorker(tw.engine, tw.cfg)
		go tw.worker.Serve(ln)
		t.Cleanup(func() { tw.worker.Close(); tw.ln.Close() })
		workers = append(workers, tw)
	}
	co := startCoordinator(t, lib1, workers, CoordinatorConfig{
		Reload: func() (*goalrec.Library, error) { return lib2, nil },
	})
	cluster := httptest.NewServer(NewHTTPHandler(co))
	defer cluster.Close()

	// Abort path first: worker 1's reload fails, the swap must roll back.
	failPrepare.Store(true)
	failWorker.Store(1)
	code, body := postBody(t, cluster.URL+"/v1/reload", `{}`)
	if code != http.StatusInternalServerError {
		t.Fatalf("reload with failing worker: got %d (%s), want 500", code, body)
	}
	if co.Epoch() != 1 {
		t.Fatalf("coordinator epoch after aborted swap: got %d, want 1", co.Epoch())
	}
	for i, tw := range workers {
		if e := tw.engine.Epoch(); e != 1 {
			t.Fatalf("worker %d epoch after aborted swap: got %d, want 1", i, e)
		}
	}
	if got := co.Metrics().Snapshot(0).Swaps.Aborted; got < 1 {
		t.Fatalf("swaps.aborted after aborted swap: got %d, want >= 1", got)
	}

	// The cluster still serves lib1, identically to a single node on lib1.
	single1 := httptest.NewServer(server.New(lib1, nil))
	defer single1.Close()
	query := `{"activity": ["a1", "a5", "a9"], "strategy": "focus-cmp", "k": 5}`
	_, sBody := postBody(t, single1.URL+"/v1/recommend", query)
	_, cBody := postBody(t, cluster.URL+"/v1/recommend", query)
	if !bytes.Equal(sBody, cBody) {
		t.Fatalf("post-abort mismatch:\n single: %s\ncluster: %s", sBody, cBody)
	}

	// Clean path: everyone reloads lib2 and commits to epoch 2 in lockstep.
	failPrepare.Store(false)
	code, body = postBody(t, cluster.URL+"/v1/reload", `{}`)
	if code != http.StatusOK {
		t.Fatalf("reload: got %d (%s), want 200", code, body)
	}
	var rr struct {
		Epoch           uint64 `json:"epoch"`
		Implementations int    `json:"implementations"`
	}
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Epoch != 2 || rr.Implementations != lib2.NumImplementations() {
		t.Fatalf("reload reply: got epoch %d / %d impls, want 2 / %d", rr.Epoch, rr.Implementations, lib2.NumImplementations())
	}
	for i, tw := range workers {
		if e := tw.engine.Epoch(); e != 2 {
			t.Fatalf("worker %d epoch after swap: got %d, want 2", i, e)
		}
	}
	if got := co.Metrics().Snapshot(0).Swaps.Committed; got != 1 {
		t.Fatalf("swaps.committed: got %d, want 1", got)
	}

	// A single node that swapped lib1 -> lib2 is also at epoch 2 with lib2,
	// so responses must again be byte-identical.
	single2 := server.New(lib1, nil)
	single2.Swap(lib2)
	ts2 := httptest.NewServer(single2)
	defer ts2.Close()
	for _, q := range []string{
		`{"activity": ["a1", "a5", "a9"], "strategy": "focus-cmp", "k": 5}`,
		`{"activity": ["a1", "a5", "a9"], "strategy": "breadth", "k": 10}`,
		`{"activity": ["a2", "a7"], "strategy": "best-match", "k": 8}`,
	} {
		_, sBody := postBody(t, ts2.URL+"/v1/recommend", q)
		_, cBody := postBody(t, cluster.URL+"/v1/recommend", q)
		if !bytes.Equal(sBody, cBody) {
			t.Fatalf("post-swap mismatch for %s:\n single: %s\ncluster: %s", q, sBody, cBody)
		}
	}
}

// TestClusterPartialFailurePolicies kills a worker mid-cluster and checks
// both policies: Degraded serves a flagged merge of the surviving shards
// and FailClosed fails the query; after the worker rejoins on its original
// address, responses are bit-identical to the pre-failure ones again.
func TestClusterPartialFailurePolicies(t *testing.T) {
	lib := clusterTestLibrary(3, 45)
	workers := startWorkers(t, lib, 3, true, nil)
	co := startCoordinator(t, lib, workers, CoordinatorConfig{PartialFailure: Degraded})
	coFail := startCoordinator(t, lib, workers, CoordinatorConfig{PartialFailure: FailClosed})
	cluster := httptest.NewServer(NewHTTPHandler(co))
	defer cluster.Close()

	ctx := context.Background()
	activity := []string{"a1", "a5", "a9"}
	query := `{"activity": ["a1", "a5", "a9"], "strategy": "breadth", "k": 10}`

	// Healthy baseline, both coordinators.
	_, healthy := postBody(t, cluster.URL+"/v1/recommend", query)
	if strings.Contains(string(healthy), "degraded") {
		t.Fatalf("healthy response flagged degraded: %s", healthy)
	}
	if _, err := coFail.Recommend(ctx, "breadth", "", activity, 10); err != nil {
		t.Fatalf("fail-closed coordinator on healthy cluster: %v", err)
	}

	// Kill the middle shard.
	workers[1].kill()

	res, err := co.Recommend(ctx, "breadth", "", activity, 10)
	if err != nil {
		t.Fatalf("degraded policy should serve through a dead shard: %v", err)
	}
	if !res.Degraded {
		t.Fatal("response with a dead shard not flagged degraded")
	}
	snap := co.Metrics().Snapshot(co.Connected())
	if snap.PartialFailures < 1 || snap.DegradedResponses < 1 {
		t.Fatalf("metrics after degraded query: partial_failures=%d degraded_responses=%d, want >= 1 each",
			snap.PartialFailures, snap.DegradedResponses)
	}
	// The HTTP response carries the degraded flag.
	code, dBody := postBody(t, cluster.URL+"/v1/recommend", query)
	if code != http.StatusOK || !strings.Contains(string(dBody), `"degraded":true`) {
		t.Fatalf("degraded HTTP response: code %d body %s", code, dBody)
	}

	// Fail-closed refuses.
	if _, err := coFail.Recommend(ctx, "breadth", "", activity, 10); err == nil {
		t.Fatal("fail-closed policy served through a dead shard")
	} else if !strings.Contains(err.Error(), "shards failed") {
		t.Fatalf("fail-closed error: %v", err)
	}

	// Every strategy degrades, not just breadth (Focus and the two-round
	// Best Match path have their own gather code).
	for _, strat := range []string{"focus-cmp", "focus-cl", "best-match"} {
		res, err := co.Recommend(ctx, strat, "", activity, 5)
		if err != nil {
			t.Fatalf("degraded %s: %v", strat, err)
		}
		if !res.Degraded {
			t.Fatalf("degraded %s: response not flagged", strat)
		}
	}

	// Rejoin: same address, same engine — and the ranking snaps back to the
	// exact healthy bytes.
	workers[1].revive(t)
	deadline := time.Now().Add(5 * time.Second)
	var rejoined []byte
	for {
		code, rejoined = postBody(t, cluster.URL+"/v1/recommend", query)
		if code == http.StatusOK && bytes.Equal(rejoined, healthy) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("post-rejoin response never matched healthy baseline:\nhealthy: %s\n  after: %s", healthy, rejoined)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if _, err := coFail.Recommend(ctx, "breadth", "", activity, 10); err != nil {
		t.Fatalf("fail-closed coordinator after rejoin: %v", err)
	}
}

// TestClusterEpochSkewRefused pins the consistency guard: if one worker
// serves a different epoch than the others (here: a unilateral swap behind
// the coordinator's back), the merge is refused rather than silently mixing
// library states.
func TestClusterEpochSkewRefused(t *testing.T) {
	lib := clusterTestLibrary(5, 30)
	workers := startWorkers(t, lib, 3, false, nil)
	co := startCoordinator(t, lib, workers, CoordinatorConfig{})

	// Same artifact (vocab checksum unchanged), different epoch.
	workers[0].engine.Swap(lib)

	_, err := co.Recommend(context.Background(), "breadth", "", []string{"a1", "a5"}, 5)
	if err == nil || !strings.Contains(err.Error(), "epoch skew") {
		t.Fatalf("skewed cluster: got err %v, want epoch skew refusal", err)
	}
	if got := co.Metrics().Snapshot(0).FailedQueries; got < 1 {
		t.Fatalf("failed_queries after skew: got %d, want >= 1", got)
	}
}

// TestClusterVocabMismatchRejected pins the registration guard: a worker
// serving a different artifact never gets queries.
func TestClusterVocabMismatchRejected(t *testing.T) {
	lib := clusterTestLibrary(6, 20)
	other := clusterTestLibrary(7, 20) // different names -> different checksum
	workers := startWorkers(t, other, 1, false, nil)
	co := startCoordinator(t, lib, workers, CoordinatorConfig{PartialFailure: FailClosed})

	_, err := co.Recommend(context.Background(), "breadth", "", []string{"a1"}, 5)
	if err == nil || !strings.Contains(err.Error(), "different artifact") {
		t.Fatalf("vocab mismatch: got err %v, want artifact rejection", err)
	}
}

// TestClusterCoverageValidation pins the range-tiling guard: shards that
// leave a gap in the implementation space are refused at query time.
func TestClusterCoverageValidation(t *testing.T) {
	lib := clusterTestLibrary(8, 30)
	// Two workers covering [0, 10) and [20, end) — a gap at [10, 20).
	var workers []*testWorker
	for _, r := range [][2]int{{0, 10}, {20, -1}} {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		tw := &testWorker{
			ln:     ln,
			addr:   ln.Addr().String(),
			engine: goalrec.NewEngineFromLibrary(lib),
			cfg:    WorkerConfig{Lo: r[0], Hi: r[1]},
		}
		tw.worker = NewWorker(tw.engine, tw.cfg)
		go tw.worker.Serve(ln)
		t.Cleanup(func() { tw.worker.Close(); tw.ln.Close() })
		workers = append(workers, tw)
	}
	co := startCoordinator(t, lib, workers, CoordinatorConfig{})
	_, err := co.Recommend(context.Background(), "breadth", "", []string{"a1"}, 5)
	if err == nil || !strings.Contains(err.Error(), "tile") {
		t.Fatalf("gapped ranges: got err %v, want tiling refusal", err)
	}
}

// TestClusterMetricsEndpoint sanity-checks the "cluster" block in
// /v1/metrics: present, well-formed, with the histogram populated after a
// few queries.
func TestClusterMetricsEndpoint(t *testing.T) {
	lib := clusterTestLibrary(9, 30)
	workers := startWorkers(t, lib, 2, true, nil)
	co := startCoordinator(t, lib, workers, CoordinatorConfig{})
	cluster := httptest.NewServer(NewHTTPHandler(co))
	defer cluster.Close()

	for i := 0; i < 3; i++ {
		postBody(t, cluster.URL+"/v1/recommend", `{"activity": ["a1", "a5"], "strategy": "focus-cmp", "k": 5}`)
	}
	resp, err := http.Get(cluster.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var m struct {
		Epoch   uint64 `json:"epoch"`
		Cluster struct {
			Workers         int   `json:"workers"`
			Connected       int   `json:"connected"`
			Scatters        int64 `json:"scatters"`
			FanoutLatencyMs []struct {
				Le    string `json:"le"`
				Count int64  `json:"count"`
			} `json:"fanout_latency_ms"`
		} `json:"cluster"`
	}
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatalf("metrics not valid JSON: %v\n%s", err, raw)
	}
	if m.Cluster.Workers != 2 || m.Cluster.Connected != 2 {
		t.Fatalf("cluster block workers/connected: %+v", m.Cluster)
	}
	if m.Cluster.Scatters < 3 {
		t.Fatalf("scatters: got %d, want >= 3", m.Cluster.Scatters)
	}
	var histTotal int64
	for _, b := range m.Cluster.FanoutLatencyMs {
		histTotal += b.Count
	}
	if histTotal < 6 { // 3 queries x 2 workers
		t.Fatalf("fan-out histogram total: got %d, want >= 6", histTotal)
	}
	if last := m.Cluster.FanoutLatencyMs[len(m.Cluster.FanoutLatencyMs)-1].Le; last != "inf" {
		t.Fatalf("last histogram bound: got %q, want inf", last)
	}
}
