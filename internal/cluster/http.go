package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"
)

// maxBodyBytes / maxActivityActions / maxBatchActivities mirror the
// single-node server's request bounds so a client cannot tell the
// topologies apart by their validation behavior.
const (
	maxBodyBytes       = 1 << 20
	maxActivityActions = 10_000
	maxBatchActivities = 256

	// statusClientClosedRequest mirrors internal/server: the nginx
	// convention for a request aborted because the client went away.
	statusClientClosedRequest = 499
)

// HTTPHandler is the coordinator's HTTP front end. It exposes the same
// request and response shapes as the single-node server's recommendation
// endpoints — plus a "degraded" response flag and a "cluster" metrics block
// — so clients and load balancers need no topology awareness.
//
//	GET  /healthz
//	GET  /readyz
//	GET  /v1/stats
//	GET  /v1/metrics              requests/errors + the "cluster" block
//	POST /v1/recommend
//	POST /v1/recommend/batch
//	POST /v1/reload               cluster-wide two-phase snapshot swap
type HTTPHandler struct {
	co  *Coordinator
	mux *http.ServeMux

	draining atomic.Bool
	requests *expvar.Map
	errors   *expvar.Map
}

// NewHTTPHandler wraps co in its HTTP front end.
func NewHTTPHandler(co *Coordinator) *HTTPHandler {
	h := &HTTPHandler{
		co:       co,
		mux:      http.NewServeMux(),
		requests: new(expvar.Map).Init(),
		errors:   new(expvar.Map).Init(),
	}
	h.mux.HandleFunc("GET /healthz", h.counted("healthz", h.handleHealth))
	h.mux.HandleFunc("GET /readyz", h.counted("readyz", h.handleReady))
	h.mux.HandleFunc("GET /v1/stats", h.counted("stats", h.handleStats))
	h.mux.HandleFunc("GET /v1/metrics", h.counted("metrics", h.handleMetrics))
	h.mux.HandleFunc("POST /v1/recommend", h.counted("recommend", h.handleRecommend))
	h.mux.HandleFunc("POST /v1/recommend/batch", h.counted("recommend_batch", h.handleRecommendBatch))
	h.mux.HandleFunc("POST /v1/reload", h.counted("reload", h.handleReload))
	return h
}

// ServeHTTP implements http.Handler.
func (h *HTTPHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// SetDraining flips the /readyz answer for graceful shutdown.
func (h *HTTPHandler) SetDraining(v bool) { h.draining.Store(v) }

func (h *HTTPHandler) counted(name string, fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		h.requests.Add(name, 1)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		fn(sw, r)
		if sw.status >= 400 {
			h.errors.Add(name, 1)
		}
	}
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (h *HTTPHandler) writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func (h *HTTPHandler) writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	h.writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (h *HTTPHandler) decode(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		h.writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return false
	}
	return true
}

func (h *HTTPHandler) handleHealth(w http.ResponseWriter, _ *http.Request) {
	h.writeJSON(w, http.StatusOK, map[string]interface{}{
		"status": "ok",
		"epoch":  h.co.Epoch(),
	})
}

func (h *HTTPHandler) handleReady(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	code := http.StatusOK
	connected := h.co.Connected()
	if connected < len(h.co.peers) {
		status = "degraded"
	}
	if h.draining.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	h.writeJSON(w, code, map[string]interface{}{
		"status":    status,
		"epoch":     h.co.Epoch(),
		"workers":   len(h.co.peers),
		"connected": connected,
	})
}

func (h *HTTPHandler) handleStats(w http.ResponseWriter, _ *http.Request) {
	lib := h.co.Snapshot()
	st := lib.Stats()
	h.writeJSON(w, http.StatusOK, map[string]interface{}{
		"epoch":                  lib.Epoch(),
		"implementations":        st.Implementations,
		"actions":                st.Actions,
		"goals":                  st.Goals,
		"avg_implementation_len": st.AvgImplLen,
		"connectivity":           st.Connectivity,
	})
}

func (h *HTTPHandler) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	cluster, err := json.Marshal(h.co.Metrics().Snapshot(h.co.Connected()))
	if err != nil {
		cluster = []byte("{}")
	}
	fmt.Fprintf(w, "{\"epoch\": %d, \"requests\": %s, \"errors\": %s, \"cluster\": %s}\n",
		h.co.Epoch(), h.requests.String(), h.errors.String(), cluster)
}

// clusterRecommendRequest mirrors the single-node /v1/recommend body.
type clusterRecommendRequest struct {
	Activity []string `json:"activity"`
	Strategy string   `json:"strategy"`
	Metric   string   `json:"metric"`
	K        int      `json:"k"`
}

// clusterRecommendResponse mirrors the single-node reply, plus Degraded.
type clusterRecommendResponse struct {
	Epoch           uint64                  `json:"epoch"`
	Strategy        string                  `json:"strategy"`
	Recommendations []recommendationPayload `json:"recommendations"`
	UnknownActions  []string                `json:"unknown_actions,omitempty"`
	Degraded        bool                    `json:"degraded,omitempty"`
}

type recommendationPayload struct {
	Action string  `json:"action"`
	Score  float64 `json:"score"`
}

// writeQueryError maps a gather error onto the wire: 504/499 for deadline
// and disconnect (mirroring the single-node lifecycle), 400 for a bad
// strategy or k, 502 for shard failures under the fail-closed policy.
func (h *HTTPHandler) writeQueryError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		h.writeError(w, http.StatusGatewayTimeout, "deadline exceeded")
	case errors.Is(err, context.Canceled):
		h.writeError(w, statusClientClosedRequest, "client closed request")
	case isBadRequestErr(err):
		h.writeError(w, http.StatusBadRequest, "%v", err)
	default:
		h.writeError(w, http.StatusBadGateway, "%v", err)
	}
}

// isBadRequestErr classifies errors the client caused (bad strategy name,
// bad metric, unusable k) as 400s rather than 502s.
func isBadRequestErr(err error) bool {
	msg := err.Error()
	for _, sub := range []string{"unknown strategy", "unknown metric", "needs k"} {
		if strings.Contains(msg, sub) {
			return true
		}
	}
	return false
}

func (h *HTTPHandler) handleRecommend(w http.ResponseWriter, r *http.Request) {
	var req clusterRecommendRequest
	if !h.decode(w, r, &req) {
		return
	}
	if len(req.Activity) == 0 {
		h.writeError(w, http.StatusBadRequest, "activity must not be empty")
		return
	}
	if len(req.Activity) > maxActivityActions {
		h.writeError(w, http.StatusBadRequest,
			"activity too long: %d actions (limit %d)", len(req.Activity), maxActivityActions)
		return
	}
	if req.K == 0 {
		req.K = 10
	}
	if req.K < 0 || req.K > 1000 {
		h.writeError(w, http.StatusBadRequest, "k must be in [1, 1000]")
		return
	}
	res, err := h.co.Recommend(r.Context(), req.Strategy, req.Metric, req.Activity, req.K)
	if err != nil {
		h.writeQueryError(w, err)
		return
	}
	resp := clusterRecommendResponse{
		Epoch:           res.Epoch,
		Strategy:        res.Strategy,
		Recommendations: make([]recommendationPayload, len(res.Recommendations)),
		UnknownActions:  res.UnknownActions,
		Degraded:        res.Degraded,
	}
	for i, rcm := range res.Recommendations {
		resp.Recommendations[i] = recommendationPayload{Action: rcm.Action, Score: rcm.Score}
	}
	h.writeJSON(w, http.StatusOK, resp)
}

// clusterBatchRequest mirrors the single-node /v1/recommend/batch body.
type clusterBatchRequest struct {
	Activities [][]string `json:"activities"`
	Strategy   string     `json:"strategy"`
	Metric     string     `json:"metric"`
	K          int        `json:"k"`
}

type clusterBatchItem struct {
	Recommendations []recommendationPayload `json:"recommendations"`
	UnknownActions  []string                `json:"unknown_actions,omitempty"`
	Error           string                  `json:"error,omitempty"`
}

type clusterBatchResponse struct {
	Epoch    uint64             `json:"epoch"`
	Strategy string             `json:"strategy"`
	Results  []clusterBatchItem `json:"results"`
	Degraded bool               `json:"degraded,omitempty"`
}

func (h *HTTPHandler) handleRecommendBatch(w http.ResponseWriter, r *http.Request) {
	var req clusterBatchRequest
	if !h.decode(w, r, &req) {
		return
	}
	if len(req.Activities) == 0 {
		h.writeError(w, http.StatusBadRequest, "activities must not be empty")
		return
	}
	if len(req.Activities) > maxBatchActivities {
		h.writeError(w, http.StatusBadRequest,
			"too many activities: %d (limit %d)", len(req.Activities), maxBatchActivities)
		return
	}
	if req.K == 0 {
		req.K = 10
	}
	if req.K < 0 || req.K > 1000 {
		h.writeError(w, http.StatusBadRequest, "k must be in [1, 1000]")
		return
	}
	// Validate the strategy before scoring anything, like the single-node
	// batch handler does.
	spec, err := parseStrategy(req.Strategy, req.Metric)
	if err != nil {
		h.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	resp := clusterBatchResponse{
		Epoch:    h.co.Epoch(),
		Strategy: spec.name,
		Results:  make([]clusterBatchItem, len(req.Activities)),
	}
	for i, activity := range req.Activities {
		switch {
		case len(activity) == 0:
			resp.Results[i].Error = "activity must not be empty"
			continue
		case len(activity) > maxActivityActions:
			resp.Results[i].Error = fmt.Sprintf("activity too long: %d actions (limit %d)",
				len(activity), maxActivityActions)
			continue
		}
		res, err := h.co.Recommend(r.Context(), req.Strategy, req.Metric, activity, req.K)
		if err != nil {
			// Any gather failure — context expiry, shard failure under the
			// fail-closed policy, epoch skew — aborts the whole batch: the
			// remaining items could not be answered consistently anyway.
			h.writeQueryError(w, err)
			return
		}
		resp.Degraded = resp.Degraded || res.Degraded
		resp.Results[i].Recommendations = make([]recommendationPayload, len(res.Recommendations))
		for n, rcm := range res.Recommendations {
			resp.Results[i].Recommendations[n] = recommendationPayload{Action: rcm.Action, Score: rcm.Score}
		}
		resp.Results[i].UnknownActions = res.UnknownActions
	}
	h.writeJSON(w, http.StatusOK, resp)
}

func (h *HTTPHandler) handleReload(w http.ResponseWriter, r *http.Request) {
	epoch, impls, err := h.co.Reload(r.Context())
	if err != nil {
		if errors.Is(err, ErrNoReloader) {
			h.writeError(w, http.StatusNotImplemented, "no reloader configured")
			return
		}
		h.writeError(w, http.StatusInternalServerError, "reload failed: %v", err)
		return
	}
	h.writeJSON(w, http.StatusOK, map[string]interface{}{
		"epoch":           epoch,
		"implementations": impls,
	})
}
