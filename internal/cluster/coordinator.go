package cluster

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sort"
	"sync"
	"time"

	"goalrec"
	"goalrec/internal/comms"
	"goalrec/internal/core"
	"goalrec/internal/strategy"
	"goalrec/internal/vectorspace"
)

// PartialFailurePolicy selects what a scatter does when a shard cannot
// answer.
type PartialFailurePolicy string

const (
	// Degraded serves the merge of the shards that did answer, flags the
	// response as degraded and counts the failure. The ranking is exact
	// over the reachable shards but may miss the failed shard's actions.
	Degraded PartialFailurePolicy = "degraded"
	// FailClosed fails the whole query: callers never see a ranking that
	// silently omits a shard.
	FailClosed PartialFailurePolicy = "fail"
)

// ParsePartialFailurePolicy parses the -partial-failure flag value.
func ParsePartialFailurePolicy(s string) (PartialFailurePolicy, error) {
	switch PartialFailurePolicy(s) {
	case Degraded:
		return Degraded, nil
	case FailClosed:
		return FailClosed, nil
	}
	return "", fmt.Errorf("cluster: unknown partial-failure policy %q (want %q or %q)", s, Degraded, FailClosed)
}

// CoordinatorConfig configures the scatter-gather front end.
type CoordinatorConfig struct {
	// Peers are the workers' comms addresses. Together their ranges must
	// tile [0, NumImplementations) exactly.
	Peers []string
	// PartialFailure is the policy for unreachable or failing shards
	// (default Degraded).
	PartialFailure PartialFailurePolicy
	// ScatterTimeout bounds each scatter round-trip (0 disables). The HTTP
	// layer's request deadline also applies; whichever is tighter wins.
	ScatterTimeout time.Duration
	// DialTimeout bounds connecting + registering with a worker (default
	// 5s).
	DialTimeout time.Duration
	// Reload re-reads the coordinator's own copy of the library for
	// two-phase swaps (the coordinator resolves names, so it must swap in
	// lockstep with the workers). Nil disables Reload.
	Reload func() (*goalrec.Library, error)
	// Logger may be nil.
	Logger *log.Logger
}

// Coordinator scatters queries across shard workers and merges the partials
// into rankings bit-identical to a single node serving the full library. It
// owns a full copy of the artifact (for name resolution and id rendering)
// but never scans it — scoring happens on the workers.
type Coordinator struct {
	engine  *goalrec.Engine
	cfg     CoordinatorConfig
	metrics *Metrics
	peers   []*peer
}

// peer is one worker endpoint with its lazily established, re-dialed-on-
// failure connection and the registration state the coordinator validated.
type peer struct {
	addr string

	mu    sync.Mutex
	conn  *comms.Conn
	lo    int
	hi    int
	impls int
	epoch uint64
}

// NewCoordinator builds a coordinator over engine (the coordinator's own
// full-library copy) and the configured workers.
func NewCoordinator(engine *goalrec.Engine, cfg CoordinatorConfig) *Coordinator {
	if cfg.PartialFailure == "" {
		cfg.PartialFailure = Degraded
	}
	if cfg.DialTimeout <= 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	co := &Coordinator{
		engine:  engine,
		cfg:     cfg,
		metrics: newMetrics(len(cfg.Peers)),
	}
	for _, addr := range cfg.Peers {
		co.peers = append(co.peers, &peer{addr: addr})
	}
	return co
}

// Metrics exposes the scatter counters for the HTTP layer.
func (co *Coordinator) Metrics() *Metrics { return co.metrics }

// Epoch is the coordinator's own serving epoch (reported in responses).
func (co *Coordinator) Epoch() uint64 { return co.engine.Epoch() }

// Snapshot is the coordinator's current library copy.
func (co *Coordinator) Snapshot() *goalrec.Library { return co.engine.Snapshot() }

func (co *Coordinator) logf(format string, args ...interface{}) {
	if co.cfg.Logger != nil {
		co.cfg.Logger.Printf(format, args...)
	}
}

// Connected counts peers with a healthy registered connection.
func (co *Coordinator) Connected() int {
	n := 0
	for _, p := range co.peers {
		p.mu.Lock()
		if p.conn != nil && p.conn.Err() == nil {
			n++
		}
		p.mu.Unlock()
	}
	return n
}

// Close drops every peer connection.
func (co *Coordinator) Close() {
	for _, p := range co.peers {
		p.mu.Lock()
		if p.conn != nil {
			p.conn.Close()
			p.conn = nil
		}
		p.mu.Unlock()
	}
}

// connect returns p's healthy connection, dialing and registering if
// needed. Registration validates the worker's vocabulary checksum against
// the coordinator's copy — a worker serving a different artifact would
// resolve scattered ids to different actions, so it is rejected here rather
// than detected as wrong results.
func (co *Coordinator) connect(p *peer) (*comms.Conn, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn != nil && p.conn.Err() == nil {
		return p.conn, nil
	}
	if p.conn != nil {
		p.conn.Close()
		p.conn = nil
	}
	c, err := comms.Dial(p.addr)
	if err != nil {
		return nil, fmt.Errorf("cluster: dialing %s: %w", p.addr, err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), co.cfg.DialTimeout)
	defer cancel()
	f, err := c.Do(ctx, FrameRegister, nil)
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("cluster: registering with %s: %w", p.addr, err)
	}
	var reg registerResponse
	if err := decodeResponse(f, &reg); err != nil {
		c.Close()
		return nil, fmt.Errorf("cluster: registering with %s: %w", p.addr, err)
	}
	if want := co.engine.Snapshot().VocabChecksum(); reg.Vocab != want {
		c.Close()
		return nil, fmt.Errorf("cluster: worker %s serves a different artifact (vocab %016x, coordinator %016x)",
			p.addr, reg.Vocab, want)
	}
	p.lo, p.hi, p.impls, p.epoch = reg.Lo, reg.Hi, reg.Impls, reg.Epoch
	p.conn = c
	co.logf("cluster: registered worker %s: range [%d, %d) of %d, epoch %d",
		p.addr, reg.Lo, reg.Hi, reg.Impls, reg.Epoch)
	return c, nil
}

// StartHeartbeat probes every peer at the given interval, refreshing epochs
// and re-establishing dropped connections so a rejoined worker is picked up
// without waiting for a query. The returned stop function is idempotent.
func (co *Coordinator) StartHeartbeat(interval time.Duration) (stop func()) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
			}
			for _, p := range co.peers {
				conn, err := co.connect(p)
				if err != nil {
					continue
				}
				hctx, hcancel := context.WithTimeout(ctx, co.cfg.DialTimeout)
				f, err := conn.Do(hctx, FrameHeartbeat, nil)
				hcancel()
				if err != nil {
					continue
				}
				var reg registerResponse
				if decodeResponse(f, &reg) == nil {
					p.mu.Lock()
					p.lo, p.hi, p.impls, p.epoch = reg.Lo, reg.Hi, reg.Impls, reg.Epoch
					p.mu.Unlock()
				}
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			cancel()
			<-done
		})
	}
}

// Result is one gathered, merged recommendation ranking.
type Result struct {
	Epoch           uint64
	Strategy        string
	Recommendations []goalrec.Recommendation
	UnknownActions  []string
	// Degraded marks a ranking merged without every shard (policy
	// Degraded): exact over the shards that answered, possibly missing the
	// failed shard's actions.
	Degraded bool
}

// gathered is one worker's scatter outcome.
type gathered struct {
	peer    *peer
	conn    *comms.Conn
	reqID   uint64
	frame   comms.Frame
	err     error
	latency time.Duration
}

// scatter fans req out to every peer (reserving request ids up front so
// onResponse can Notify the still-pending ones) and gathers the responses.
// onResponse, if non-nil, runs on each successful response as it arrives,
// with the list of all scatter entries — the floor-broadcast hook.
func (co *Coordinator) scatter(ctx context.Context, typ uint8, payload []byte,
	onResponse func(done *gathered, all []*gathered)) []*gathered {
	if co.cfg.ScatterTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, co.cfg.ScatterTimeout)
		defer cancel()
	}
	co.metrics.scatters.Add(1)
	all := make([]*gathered, len(co.peers))
	for i, p := range co.peers {
		g := &gathered{peer: p}
		all[i] = g
		conn, err := co.connect(p)
		if err != nil {
			g.err = err
			continue
		}
		g.conn = conn
		g.reqID = conn.NewRequestID()
	}
	var wg sync.WaitGroup
	var mu sync.Mutex // serializes onResponse and completion marking
	for _, g := range all {
		if g.err != nil {
			continue
		}
		wg.Add(1)
		go func(g *gathered) {
			defer wg.Done()
			t0 := time.Now()
			f, err := g.conn.DoRequest(ctx, g.reqID, typ, payload)
			g.latency = time.Since(t0)
			co.metrics.observeFanout(g.latency)
			if err == nil && f.Type == FrameErr {
				err = decodeResponse(f, nil)
			}
			if err != nil {
				g.err = err
				return
			}
			g.frame = f
			if onResponse != nil {
				mu.Lock()
				onResponse(g, all)
				mu.Unlock()
			}
		}(g)
	}
	wg.Wait()
	return all
}

// partition splits scatter outcomes into successes and failures, applying
// the partial-failure policy. With FailClosed any failure fails the query;
// with Degraded the failures are counted and the successes served, flagged.
func (co *Coordinator) partition(all []*gathered) (ok []*gathered, degraded bool, err error) {
	var failed []*gathered
	for _, g := range all {
		if g.err != nil {
			failed = append(failed, g)
		} else {
			ok = append(ok, g)
		}
	}
	if len(failed) == 0 {
		return ok, false, nil
	}
	for _, g := range failed {
		co.logf("cluster: shard %s failed: %v", g.peer.addr, g.err)
	}
	co.metrics.partialFailures.Add(int64(len(failed)))
	if co.cfg.PartialFailure == FailClosed || len(ok) == 0 {
		co.metrics.failedQueries.Add(1)
		return nil, false, fmt.Errorf("cluster: %d of %d shards failed (first: %w)",
			len(failed), len(all), failed[0].err)
	}
	co.metrics.degradedResponses.Add(1)
	return ok, true, nil
}

// checkEpochs verifies every answering shard served the same epoch. The
// merge is only sound over partitions of one library state; skew (e.g. a
// worker that restarted onto a different artifact between registration and
// now) fails the query regardless of the partial-failure policy.
func checkEpochs(epochs []uint64) error {
	if len(epochs) == 0 {
		return nil
	}
	for _, e := range epochs[1:] {
		if e != epochs[0] {
			return fmt.Errorf("cluster: epoch skew across shards (%d vs %d); refusing to merge", epochs[0], e)
		}
	}
	return nil
}

// coverageError validates that the registered shard ranges tile the
// coordinator's library exactly. Run against the full peer set so a gap is
// reported even when the policy would otherwise degrade around it.
func (co *Coordinator) coverageError() error {
	n := co.engine.Snapshot().NumImplementations()
	type rng struct{ lo, hi int }
	ranges := make([]rng, 0, len(co.peers))
	for _, p := range co.peers {
		p.mu.Lock()
		if p.conn == nil {
			p.mu.Unlock()
			// Unregistered peer: its range is unknown; coverage is checked
			// against what registration reported, so skip — the scatter
			// itself reports the peer as failed.
			continue
		}
		ranges = append(ranges, rng{p.lo, p.hi})
		p.mu.Unlock()
	}
	if len(ranges) < len(co.peers) {
		return nil // partial registration: the scatter outcome governs
	}
	sort.Slice(ranges, func(i, j int) bool { return ranges[i].lo < ranges[j].lo })
	at := 0
	for _, r := range ranges {
		if r.lo != at {
			return fmt.Errorf("cluster: shard ranges do not tile the library: gap or overlap at %d (next range starts at %d)", at, r.lo)
		}
		at = r.hi
	}
	if at != n {
		return fmt.Errorf("cluster: shard ranges cover [0, %d) but the library has %d implementations", at, n)
	}
	return nil
}

// strategySpec is the parsed strategy selection of one query.
type strategySpec struct {
	strategy  goalrec.Strategy
	name      string // canonical response name, matching Recommender.Name()
	measure   string // focus: "cmp" | "cl"
	weighting string // breadth weighting name
	metric    vectorspace.Metric
}

// parseStrategy maps the wire strategy/metric names onto a spec, accepting
// exactly the names the single-node server accepts — the topology oracle
// test compares error bytes, so even the rejections must match. Like the
// single-node option resolution, the metric is validated for every strategy
// (a bad metric 400s a breadth query too).
func parseStrategy(strategyName, metric string) (strategySpec, error) {
	if strategyName == "" {
		strategyName = string(goalrec.Breadth)
	}
	if metric == "" {
		metric = "cosine"
	}
	spec := strategySpec{weighting: "overlap"}
	m, err := vectorspace.ParseMetric(metric)
	if err != nil {
		return spec, fmt.Errorf("goalrec: %w", err)
	}
	spec.metric = m
	switch goalrec.Strategy(strategyName) {
	case goalrec.FocusCompleteness:
		spec.strategy, spec.measure, spec.name = goalrec.FocusCompleteness, "cmp", "focus-cmp"
	case goalrec.FocusCloseness:
		spec.strategy, spec.measure, spec.name = goalrec.FocusCloseness, "cl", "focus-cl"
	case goalrec.Breadth:
		spec.strategy, spec.name = goalrec.Breadth, "breadth"
	case goalrec.BestMatch:
		spec.strategy, spec.name = goalrec.BestMatch, "best-match"
		if m != vectorspace.Cosine {
			spec.name = "best-match-" + m.String()
		}
	default:
		return spec, fmt.Errorf("goalrec: unknown strategy %q", strategyName)
	}
	return spec, nil
}

// Recommend resolves the activity against the coordinator's copy, scatters
// it to every shard, and merges the partials into the single-node ranking.
func (co *Coordinator) Recommend(ctx context.Context, strategyName, metric string, activity []string, k int) (*Result, error) {
	spec, err := parseStrategy(strategyName, metric)
	if err != nil {
		return nil, err
	}
	if err := co.preconnectAll(); err != nil {
		// Connection failures surface through the scatter under the
		// partial-failure policy; preconnect only primes registrations so
		// coverage can be validated.
		co.logf("cluster: preconnect: %v", err)
	}
	if err := co.coverageError(); err != nil {
		return nil, err
	}
	snap := co.engine.Snapshot()
	ids, unknown := snap.ResolveActivity(activity)

	res := &Result{Epoch: snap.Epoch(), Strategy: spec.name, UnknownActions: unknown}
	var scored []strategy.ScoredAction
	var degraded bool
	switch spec.strategy {
	case goalrec.FocusCompleteness, goalrec.FocusCloseness:
		// The annotated-emission protocol streams exactly k emissions per
		// shard; a full ranking (k <= 0) has no cutoff to merge under.
		if k <= 0 {
			return nil, fmt.Errorf("cluster: focus strategies need k >= 1")
		}
		scored, degraded, err = co.gatherFocus(ctx, spec.measure, ids, k)
	case goalrec.Breadth:
		scored, degraded, err = co.gatherBreadth(ctx, spec.weighting, ids, k)
	case goalrec.BestMatch:
		scored, degraded, err = co.gatherBestMatch(ctx, spec.metric, ids, k)
	}
	if err != nil {
		return nil, err
	}
	res.Degraded = degraded
	res.Recommendations = make([]goalrec.Recommendation, len(scored))
	for i, s := range scored {
		res.Recommendations[i] = goalrec.Recommendation{Action: snap.ActionNameByID(s.Action), Score: s.Score}
	}
	return res, nil
}

// preconnectAll establishes (or re-establishes) every peer connection so
// registration state is fresh before coverage validation. The first error
// is returned for logging; scatter-level policy decides what a dead peer
// means for the query.
func (co *Coordinator) preconnectAll() error {
	var first error
	for _, p := range co.peers {
		if _, err := co.connect(p); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// gatherFocus scatters a Focus query. The first shard to return a full k
// emissions broadcasts its k-th emission key as a score floor to the shards
// still scanning: the global k-th best key can only be at least as good, so
// every worker may prune candidates strictly below the floor without
// touching the merged ranking (the soundness argument lives in DESIGN.md).
func (co *Coordinator) gatherFocus(ctx context.Context, measure string, ids []core.ActionID, k int) ([]strategy.ScoredAction, bool, error) {
	payload := mustJSON(focusRequest{Measure: measure, Activity: ids, K: k})
	broadcast := false
	all := co.scatter(ctx, FrameFocus, payload, func(done *gathered, all []*gathered) {
		if broadcast {
			return
		}
		var resp focusResponse
		if decodeResponse(done.frame, &resp) != nil || len(resp.Emissions) < k || k <= 0 {
			return
		}
		broadcast = true
		last := resp.Emissions[k-1]
		n := floorNotify{Measure: measure}
		if measure == "cmp" {
			n.C, n.N = int64(last.ImplLen-last.Missing), int64(last.ImplLen)
		} else {
			n.Missing = int64(last.Missing)
		}
		fp := mustJSON(n)
		sent := int64(0)
		for _, g := range all {
			if g == done || g.conn == nil {
				continue
			}
			// Best-effort: a notify landing after the scan finished (or on
			// a failed conn) is dropped by the worker; floors only ever
			// tighten, so misses cost speed, never correctness.
			if g.conn.Notify(FrameFloor, g.reqID, fp) == nil {
				sent++
			}
		}
		co.metrics.floorBroadcasts.Add(sent)
	})
	ok, degraded, err := co.partition(all)
	if err != nil {
		return nil, false, err
	}
	lists := make([][]strategy.FocusEmission, 0, len(ok))
	epochs := make([]uint64, 0, len(ok))
	for _, g := range ok {
		var resp focusResponse
		if err := decodeResponse(g.frame, &resp); err != nil {
			return nil, false, err
		}
		lists = append(lists, resp.Emissions)
		epochs = append(epochs, resp.Epoch)
		co.metrics.floorTightenings.Add(resp.Tightenings)
	}
	if err := checkEpochs(epochs); err != nil {
		co.metrics.failedQueries.Add(1)
		return nil, false, err
	}
	return strategy.MergeFocusEmissions(lists, k), degraded, nil
}

// gatherBreadth scatters a Breadth query and folds the shards' integer
// partials. Sums of int64 comm terms are exact in any order, so the fold
// reproduces the single-node scores bit-identically. (There is no sound
// cross-node floor here: scores are additive across shards, so no shard's
// local ranking bounds the global one.)
func (co *Coordinator) gatherBreadth(ctx context.Context, weighting string, ids []core.ActionID, k int) ([]strategy.ScoredAction, bool, error) {
	payload := mustJSON(breadthRequest{Weighting: weighting, Activity: ids})
	all := co.scatter(ctx, FrameBreadth, payload, nil)
	ok, degraded, err := co.partition(all)
	if err != nil {
		return nil, false, err
	}
	parts := make([]*strategy.BreadthPartial, 0, len(ok))
	epochs := make([]uint64, 0, len(ok))
	for _, g := range ok {
		var resp breadthResponse
		if err := decodeResponse(g.frame, &resp); err != nil {
			return nil, false, err
		}
		parts = append(parts, resp.Partial)
		epochs = append(epochs, resp.Epoch)
	}
	if err := checkEpochs(epochs); err != nil {
		co.metrics.failedQueries.Add(1)
		return nil, false, err
	}
	return strategy.MergeBreadthPartials(parts, k), degraded, nil
}

// gatherBestMatch runs the two-round Best Match protocol: round one merges
// the shards' surveys into the global candidate set, goal space and integer
// profile; round two gathers each shard's candidate vectors restricted to
// that global goal space and reconstructs the exact distances from int64
// sums. Restricting vectors to the global space (not each shard's local
// one) is what keeps the norms and dot products equal to single-node.
func (co *Coordinator) gatherBestMatch(ctx context.Context, metric vectorspace.Metric, ids []core.ActionID, k int) ([]strategy.ScoredAction, bool, error) {
	surveyPayload := mustJSON(bmSurveyRequest{Activity: ids})
	all := co.scatter(ctx, FrameBMSurvey, surveyPayload, nil)
	ok, degraded, err := co.partition(all)
	if err != nil {
		return nil, false, err
	}
	surveys := make([]*strategy.BestMatchSurvey, 0, len(ok))
	epochs := make([]uint64, 0, len(ok))
	okPeers := make(map[*peer]bool, len(ok))
	for _, g := range ok {
		var resp bmSurveyResponse
		if err := decodeResponse(g.frame, &resp); err != nil {
			return nil, false, err
		}
		surveys = append(surveys, resp.Survey)
		epochs = append(epochs, resp.Epoch)
		okPeers[g.peer] = true
	}
	if err := checkEpochs(epochs); err != nil {
		co.metrics.failedQueries.Add(1)
		return nil, false, err
	}
	candidates, goalSpace, profile := strategy.MergeBestMatchSurveys(surveys)

	// Round two targets only the shards whose surveys are folded into the
	// global spaces; a shard that failed round one contributes to neither.
	vecPayload := mustJSON(bmVectorsRequest{Candidates: candidates, GoalSpace: goalSpace})
	all2 := co.scatterTo(ctx, FrameBMVectors, vecPayload, okPeers)
	ok2, degraded2, err := co.partition(all2)
	if err != nil {
		return nil, false, err
	}
	vectors := make([]*strategy.BestMatchVectors, 0, len(ok2))
	epochs2 := make([]uint64, 0, len(ok2))
	for _, g := range ok2 {
		var resp bmVectorsResponse
		if err := decodeResponse(g.frame, &resp); err != nil {
			return nil, false, err
		}
		vectors = append(vectors, resp.Vectors)
		epochs2 = append(epochs2, resp.Epoch)
	}
	if err := checkEpochs(append(epochs2, epochs[0])); err != nil {
		co.metrics.failedQueries.Add(1)
		return nil, false, err
	}
	return strategy.MergeBestMatchVectors(metric, candidates, goalSpace, profile, vectors, k),
		degraded || degraded2, nil
}

// scatterTo is scatter restricted to a peer subset (Best Match round two).
func (co *Coordinator) scatterTo(ctx context.Context, typ uint8, payload []byte, include map[*peer]bool) []*gathered {
	if co.cfg.ScatterTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, co.cfg.ScatterTimeout)
		defer cancel()
	}
	co.metrics.scatters.Add(1)
	var all []*gathered
	var wg sync.WaitGroup
	for _, p := range co.peers {
		if !include[p] {
			continue
		}
		g := &gathered{peer: p}
		all = append(all, g)
		conn, err := co.connect(p)
		if err != nil {
			g.err = err
			continue
		}
		g.conn = conn
		g.reqID = conn.NewRequestID()
		wg.Add(1)
		go func(g *gathered) {
			defer wg.Done()
			t0 := time.Now()
			f, err := g.conn.DoRequest(ctx, g.reqID, typ, payload)
			g.latency = time.Since(t0)
			co.metrics.observeFanout(g.latency)
			if err == nil && f.Type == FrameErr {
				err = decodeResponse(f, nil)
			}
			if err != nil {
				g.err = err
				return
			}
			g.frame = f
		}(g)
	}
	wg.Wait()
	return all
}

// ErrNoReloader marks a Reload on a coordinator without a local reloader.
var ErrNoReloader = errors.New("cluster: no reloader configured")

// Reload drives a cluster-wide two-phase snapshot swap: every worker stages
// its next epoch (prepare), and only when all of them hold a staged library
// that agrees on size and vocabulary does the coordinator commit the flip —
// otherwise every stage is aborted and the cluster keeps serving epoch E-1
// on all nodes. The coordinator swaps its own copy last, after the workers
// committed, so name resolution never runs ahead of the shards.
func (co *Coordinator) Reload(ctx context.Context) (epoch uint64, implementations int, err error) {
	if co.cfg.Reload == nil {
		return 0, 0, ErrNoReloader
	}
	// Load the coordinator's own copy first: a broken artifact aborts the
	// swap before any worker is disturbed.
	lib, err := co.cfg.Reload()
	if err != nil {
		co.metrics.swapsAborted.Add(1)
		return 0, 0, fmt.Errorf("cluster: reloading coordinator copy: %w", err)
	}

	// Phase one: prepare every worker.
	all := co.scatter(ctx, FramePrepare, nil, nil)
	var prepared []*gathered
	var firstErr error
	wantVocab := lib.VocabChecksum()
	wantImpls := lib.NumImplementations()
	for _, g := range all {
		if g.err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: prepare on %s: %w", g.peer.addr, g.err)
			}
			continue
		}
		var resp prepareResponse
		if err := decodeResponse(g.frame, &resp); err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: prepare on %s: %w", g.peer.addr, err)
			}
			continue
		}
		if resp.Vocab != wantVocab || resp.Impls != wantImpls {
			if firstErr == nil {
				firstErr = fmt.Errorf("cluster: worker %s staged a different artifact (%d impls, vocab %016x; coordinator %d, %016x)",
					g.peer.addr, resp.Impls, resp.Vocab, wantImpls, wantVocab)
			}
			continue
		}
		prepared = append(prepared, g)
	}
	co.metrics.swapsPrepared.Add(1)
	if firstErr != nil || len(prepared) != len(all) {
		// Abort every successfully staged worker; the cluster keeps serving
		// the previous epoch everywhere.
		for _, g := range prepared {
			actx, acancel := context.WithTimeout(ctx, co.cfg.DialTimeout)
			if _, aerr := g.conn.DoRequest(actx, g.conn.NewRequestID(), FrameAbort, nil); aerr != nil {
				co.logf("cluster: abort on %s: %v", g.peer.addr, aerr)
			}
			acancel()
		}
		co.metrics.swapsAborted.Add(1)
		if firstErr == nil {
			firstErr = errors.New("cluster: prepare failed on an unreachable worker")
		}
		return 0, 0, firstErr
	}

	// Phase two: commit. A failure here is logged loudly but not rolled
	// back — committed workers already serve the new epoch, and the epoch
	// guard on every query refuses to merge across the skew until the
	// stragglers are retried (see the failure matrix in DESIGN.md).
	var commitErr error
	var epochs []uint64
	for _, g := range prepared {
		cctx, ccancel := context.WithTimeout(ctx, co.cfg.DialTimeout)
		f, err := g.conn.DoRequest(cctx, g.conn.NewRequestID(), FrameCommit, nil)
		ccancel()
		if err == nil {
			var resp commitResponse
			if derr := decodeResponse(f, &resp); derr != nil {
				err = derr
			} else {
				epochs = append(epochs, resp.Epoch)
				// Refresh the registration state: an open-ended shard's
				// resolved range moves when the library grows or shrinks.
				g.peer.mu.Lock()
				g.peer.lo, g.peer.hi, g.peer.impls, g.peer.epoch = resp.Lo, resp.Hi, resp.Impls, resp.Epoch
				g.peer.mu.Unlock()
			}
		}
		if err != nil && commitErr == nil {
			commitErr = fmt.Errorf("cluster: commit on %s: %w", g.peer.addr, err)
		}
	}
	if commitErr != nil {
		co.logf("cluster: PARTIAL COMMIT — epoch skew until retried: %v", commitErr)
		return 0, 0, commitErr
	}
	swapped := co.engine.Swap(lib)
	co.metrics.swapsCommitted.Add(1)
	co.logf("cluster: committed two-phase swap: coordinator epoch %d, worker epochs %v", swapped.Epoch(), epochs)
	return swapped.Epoch(), wantImpls, nil
}
