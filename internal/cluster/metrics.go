package cluster

import (
	"strconv"
	"sync/atomic"
	"time"
)

// fanoutBoundsMs are the upper bounds (milliseconds, inclusive) of the
// per-worker fan-out latency histogram — the time from scatter to one
// worker's response. A final unbounded bucket catches the tail.
var fanoutBoundsMs = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000}

// Metrics aggregates the coordinator's scatter-gather counters, surfaced
// under "cluster" in /v1/metrics. All fields are monotonic and safe for
// concurrent use.
type Metrics struct {
	workers int

	scatters          atomic.Int64
	partialFailures   atomic.Int64
	degradedResponses atomic.Int64
	failedQueries     atomic.Int64
	floorBroadcasts   atomic.Int64
	floorTightenings  atomic.Int64

	swapsPrepared  atomic.Int64
	swapsCommitted atomic.Int64
	swapsAborted   atomic.Int64

	// fanout[i] counts responses with latency <= fanoutBoundsMs[i];
	// fanout[len(fanoutBoundsMs)] is the overflow bucket. Buckets are
	// non-cumulative (each observation lands in exactly one).
	fanout []atomic.Int64
}

func newMetrics(workers int) *Metrics {
	return &Metrics{workers: workers, fanout: make([]atomic.Int64, len(fanoutBoundsMs)+1)}
}

// observeFanout records one worker response latency.
func (m *Metrics) observeFanout(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	for i, b := range fanoutBoundsMs {
		if ms <= b {
			m.fanout[i].Add(1)
			return
		}
	}
	m.fanout[len(fanoutBoundsMs)].Add(1)
}

// FanoutBucket is one histogram cell of the fan-out latency distribution.
type FanoutBucket struct {
	// Le is the bucket's inclusive upper bound in milliseconds; the last
	// bucket's bound is "inf".
	Le    string `json:"le"`
	Count int64  `json:"count"`
}

// SwapCounters reports the two-phase swap outcomes the coordinator drove.
type SwapCounters struct {
	Prepared  int64 `json:"prepared"`
	Committed int64 `json:"committed"`
	Aborted   int64 `json:"aborted"`
}

// MetricsSnapshot is the JSON shape of the "cluster" metrics block.
type MetricsSnapshot struct {
	Workers           int            `json:"workers"`
	Connected         int            `json:"connected"`
	Scatters          int64          `json:"scatters"`
	PartialFailures   int64          `json:"partial_failures"`
	DegradedResponses int64          `json:"degraded_responses"`
	FailedQueries     int64          `json:"failed_queries"`
	FloorBroadcasts   int64          `json:"floor_broadcasts"`
	FloorTightenings  int64          `json:"floor_tightenings"`
	FanoutLatencyMs   []FanoutBucket `json:"fanout_latency_ms"`
	Swaps             SwapCounters   `json:"swaps"`
}

// Snapshot copies the counters. connected is sampled by the caller (the
// coordinator knows its live peer count).
func (m *Metrics) Snapshot(connected int) MetricsSnapshot {
	s := MetricsSnapshot{
		Workers:           m.workers,
		Connected:         connected,
		Scatters:          m.scatters.Load(),
		PartialFailures:   m.partialFailures.Load(),
		DegradedResponses: m.degradedResponses.Load(),
		FailedQueries:     m.failedQueries.Load(),
		FloorBroadcasts:   m.floorBroadcasts.Load(),
		FloorTightenings:  m.floorTightenings.Load(),
		Swaps: SwapCounters{
			Prepared:  m.swapsPrepared.Load(),
			Committed: m.swapsCommitted.Load(),
			Aborted:   m.swapsAborted.Load(),
		},
	}
	s.FanoutLatencyMs = make([]FanoutBucket, 0, len(m.fanout))
	for i, b := range fanoutBoundsMs {
		s.FanoutLatencyMs = append(s.FanoutLatencyMs, FanoutBucket{
			Le: strconv.FormatFloat(b, 'f', -1, 64), Count: m.fanout[i].Load(),
		})
	}
	s.FanoutLatencyMs = append(s.FanoutLatencyMs, FanoutBucket{
		Le: "inf", Count: m.fanout[len(fanoutBoundsMs)].Load(),
	})
	return s
}
