// Package cluster implements multi-node sharded serving: the library is
// split by implementation-id range across worker processes, a coordinator
// scatters each query to every shard and merges the per-shard partials under
// the strategies' total tie-break order, so distributed rankings are
// bit-identical to a single-node scan of the full library (see DESIGN.md,
// "Cluster serving & scatter-gather").
//
// The wire protocol runs over internal/comms frames; payloads are JSON.
// Float64 survives a JSON round trip exactly (encoding/json emits the
// shortest representation that parses back to the same bits), and every
// cross-shard score that must merge exactly travels as int64 partials
// anyway, so the encoding never perturbs a ranking.
package cluster

import (
	"encoding/json"
	"fmt"

	"goalrec/internal/comms"
	"goalrec/internal/core"
	"goalrec/internal/strategy"
)

// Frame types of the cluster protocol. Responses reuse the request's type
// (the request id does the correlation); FrameErr marks a failed request.
const (
	// FrameRegister introduces a coordinator to a worker: the response
	// carries the worker's epoch, vocabulary checksum and resolved shard
	// range so incompatible artifacts are rejected before any query.
	FrameRegister = comms.TypeApp + iota
	// FrameFocus asks for the shard's annotated Focus emission list.
	FrameFocus
	// FrameBreadth asks for the shard's integer Breadth partial.
	FrameBreadth
	// FrameBMSurvey asks for the shard's Best Match survey (round one).
	FrameBMSurvey
	// FrameBMVectors asks for the shard's candidate vectors restricted to
	// the global goal space (round two).
	FrameBMVectors
	// FrameFloor is the one-way cross-node score floor broadcast: it
	// targets the request id of an in-flight FrameFocus on the same
	// connection and tightens that scan's pruning floor mid-query.
	FrameFloor
	// FrameHeartbeat probes liveness and refreshes the worker's epoch.
	FrameHeartbeat
	// FramePrepare stages the next epoch on a worker (two-phase swap,
	// phase one): the worker reloads its library source and holds the
	// result without serving it.
	FramePrepare
	// FrameCommit atomically flips a worker to its staged epoch.
	FrameCommit
	// FrameAbort discards a staged epoch, keeping the current one.
	FrameAbort
	// FrameErr is the error response type; its payload is errPayload.
	FrameErr
)

// registerResponse answers FrameRegister and FrameHeartbeat.
type registerResponse struct {
	Epoch uint64 `json:"epoch"`
	// Vocab is the worker's vocabulary checksum (Library.VocabChecksum).
	// The coordinator resolves activity names against its own copy of the
	// artifact and scatters ids; a worker with a different vocabulary would
	// resolve those ids to different actions and silently corrupt the
	// merge, so a mismatch fails registration.
	Vocab uint64 `json:"vocab"`
	// Lo, Hi is the worker's resolved implementation range [Lo, Hi).
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// Impls is the worker's full library size, which every worker and the
	// coordinator must agree on for the ranges to tile it.
	Impls int `json:"impls"`
}

// focusRequest asks for the top-k annotated emissions of the shard.
type focusRequest struct {
	// Measure is "cmp" (completeness) or "cl" (closeness).
	Measure  string          `json:"measure"`
	Activity []core.ActionID `json:"activity"`
	K        int             `json:"k"`
}

type focusResponse struct {
	Epoch     uint64                   `json:"epoch"`
	Emissions []strategy.FocusEmission `json:"emissions"`
	// Tightenings counts how many floor broadcasts actually tightened this
	// scan's pruning floor (a broadcast that arrives looser than the local
	// floor is a no-op), surfaced in the coordinator's metrics.
	Tightenings int64 `json:"tightenings"`
}

// floorNotify is the FrameFloor payload: the k-th emission key of the first
// shard to complete, injected into the other shards' in-flight scans. For
// completeness the floor is the (C, N) pair of the packed fraction order;
// for closeness it is the missing count.
type floorNotify struct {
	Measure string `json:"measure"`
	C       int64  `json:"c,omitempty"`
	N       int64  `json:"n,omitempty"`
	Missing int64  `json:"missing,omitempty"`
}

type breadthRequest struct {
	// Weighting is "overlap", "count" or "union".
	Weighting string          `json:"weighting"`
	Activity  []core.ActionID `json:"activity"`
}

type breadthResponse struct {
	Epoch   uint64                   `json:"epoch"`
	Partial *strategy.BreadthPartial `json:"partial"`
}

type bmSurveyRequest struct {
	Activity []core.ActionID `json:"activity"`
}

type bmSurveyResponse struct {
	Epoch  uint64                    `json:"epoch"`
	Survey *strategy.BestMatchSurvey `json:"survey"`
}

type bmVectorsRequest struct {
	// Candidates and GoalSpace are the merged global spaces of round one:
	// every shard reports its candidate vectors in the same feature space,
	// which is what makes the folded sums equal the single-node ones.
	Candidates []core.ActionID `json:"candidates"`
	GoalSpace  []core.GoalID   `json:"goal_space"`
}

type bmVectorsResponse struct {
	Epoch   uint64                     `json:"epoch"`
	Vectors *strategy.BestMatchVectors `json:"vectors"`
}

type prepareResponse struct {
	// Impls is the staged library's size; the coordinator checks the
	// staged artifacts agree across workers before committing.
	Impls int `json:"impls"`
	// Vocab is the staged library's vocabulary checksum, same rationale.
	Vocab uint64 `json:"vocab"`
}

type commitResponse struct {
	Epoch uint64 `json:"epoch"`
	// Lo, Hi, Impls is the worker's range resolved against the committed
	// epoch: an open-ended shard (Hi == -1) grows with the library, so the
	// coordinator refreshes its registration state from the commit instead
	// of waiting for the next heartbeat.
	Lo    int `json:"lo"`
	Hi    int `json:"hi"`
	Impls int `json:"impls"`
}

type errPayload struct {
	Error string `json:"error"`
}

// mustJSON marshals v, panicking on failure — every payload type here is a
// plain struct of marshalable fields, so a failure is a programming error.
func mustJSON(v interface{}) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("cluster: marshaling %T: %v", v, err))
	}
	return b
}

// errFrame builds the error response for a failed request.
func errFrame(err error) (uint8, []byte) {
	return FrameErr, mustJSON(errPayload{Error: err.Error()})
}

// decodeResponse unmarshals a response frame into v, mapping FrameErr
// payloads onto Go errors.
func decodeResponse(f comms.Frame, v interface{}) error {
	if f.Type == FrameErr {
		var ep errPayload
		if err := json.Unmarshal(f.Payload, &ep); err != nil || ep.Error == "" {
			return fmt.Errorf("cluster: peer error with malformed payload")
		}
		return fmt.Errorf("cluster: peer: %s", ep.Error)
	}
	if v == nil {
		return nil
	}
	if err := json.Unmarshal(f.Payload, v); err != nil {
		return fmt.Errorf("cluster: decoding %T response: %w", v, err)
	}
	return nil
}
