package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"

	"goalrec"
	"goalrec/internal/comms"
	"goalrec/internal/strategy"
	"goalrec/internal/vectorspace"
)

// WorkerConfig configures one shard-serving worker.
type WorkerConfig struct {
	// Lo, Hi is the implementation range [Lo, Hi) this worker serves.
	// Hi == -1 means "to the end of the library", the recommended setting
	// for the last shard so the assignment survives library growth.
	Lo, Hi int
	// Pruning enables the bound-driven Focus kernels on this worker's
	// shard scans. Rankings are bit-identical either way; pruning is what
	// the cross-node floor broadcast accelerates.
	Pruning bool
	// Reload re-reads this worker's library source for a two-phase swap.
	// Nil disables FramePrepare (answered with an error).
	Reload func() (*goalrec.Library, error)
	// Logger may be nil.
	Logger *log.Logger
}

// Worker serves one implementation-range shard of the library over the
// comms protocol. It owns a full engine — typically recovered from the
// worker's own snapshot+WAL store, so workers restart independently — and
// lazily partitions the current epoch's snapshot down to its range; queries
// run against the partition and report global implementation ids, which is
// what lets the coordinator merge shard partials into the single-node order.
type Worker struct {
	engine *goalrec.Engine
	cfg    WorkerConfig
	srv    *comms.Server

	// shardMu guards the epoch-keyed partition cache: the partition and its
	// strategy instances are rebuilt when the engine publishes a new epoch
	// (a committed swap), never mid-query — in-flight queries keep the
	// shardState they loaded.
	shardMu sync.Mutex
	shard   *shardState

	// stagedMu guards the two-phase swap state.
	stagedMu sync.Mutex
	staged   *goalrec.Library

	// floorMu guards the in-flight floor registry: FrameFocus handlers
	// register their FocusFloorShare under (conn, request id) so FrameFloor
	// notifies can tighten exactly the scan they target.
	floorMu sync.Mutex
	floors  map[floorKey]*strategy.FocusFloorShare
}

type floorKey struct {
	sc *comms.ServerConn
	id uint64
}

// shardState is one epoch's partition plus its lazily built strategy
// instances. Strategies are safe for concurrent use, so one instance per
// configuration serves every in-flight query of the epoch.
type shardState struct {
	epoch uint64
	lo    int // resolved range, for registration replies
	hi    int
	impls int // full library size at this epoch
	part  *goalrec.Library

	mu      sync.Mutex
	focus   map[strategy.FocusMeasure]*strategy.Focus
	breadth map[strategy.BreadthWeighting]*strategy.Breadth
	best    map[vectorspace.Metric]*strategy.BestMatch
}

// NewWorker builds a worker serving engine's [Lo, Hi) range.
func NewWorker(engine *goalrec.Engine, cfg WorkerConfig) *Worker {
	w := &Worker{
		engine: engine,
		cfg:    cfg,
		floors: make(map[floorKey]*strategy.FocusFloorShare),
	}
	w.srv = comms.NewServer(w.handle, w.handleNotify, FrameFloor)
	return w
}

// Serve accepts coordinator connections on ln until Close.
func (w *Worker) Serve(ln net.Listener) error { return w.srv.Serve(ln) }

// Close shuts the comms server down, canceling in-flight queries.
func (w *Worker) Close() { w.srv.Close() }

func (w *Worker) logf(format string, args ...interface{}) {
	if w.cfg.Logger != nil {
		w.cfg.Logger.Printf(format, args...)
	}
}

// currentShard returns the partition of the engine's current epoch,
// rebuilding the cache after a swap.
func (w *Worker) currentShard() (*shardState, error) {
	snap := w.engine.Snapshot()
	epoch := snap.Epoch()
	w.shardMu.Lock()
	defer w.shardMu.Unlock()
	if w.shard != nil && w.shard.epoch == epoch {
		return w.shard, nil
	}
	lo, hi := w.cfg.Lo, w.cfg.Hi
	if hi < 0 {
		hi = snap.NumImplementations()
	}
	part, err := snap.Partition(lo, hi)
	if err != nil {
		return nil, fmt.Errorf("cluster: partitioning [%d, %d) of %d implementations: %w",
			lo, hi, snap.NumImplementations(), err)
	}
	w.shard = &shardState{
		epoch:   epoch,
		lo:      lo,
		hi:      hi,
		impls:   snap.NumImplementations(),
		part:    part,
		focus:   make(map[strategy.FocusMeasure]*strategy.Focus),
		breadth: make(map[strategy.BreadthWeighting]*strategy.Breadth),
		best:    make(map[vectorspace.Metric]*strategy.BestMatch),
	}
	w.logf("cluster worker: serving [%d, %d) of %d implementations at epoch %d",
		lo, hi, w.shard.impls, epoch)
	return w.shard, nil
}

func (s *shardState) focusFor(m strategy.FocusMeasure, pruning bool) *strategy.Focus {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f, ok := s.focus[m]; ok {
		return f
	}
	f := strategy.NewFocus(s.part.Core(), m)
	if pruning {
		f.EnablePruning(nil)
	}
	s.focus[m] = f
	return f
}

func (s *shardState) breadthFor(w strategy.BreadthWeighting) *strategy.Breadth {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.breadth[w]; ok {
		return b
	}
	b := strategy.NewBreadthWeighted(s.part.Core(), w)
	s.breadth[w] = b
	return b
}

func (s *shardState) bestFor(m vectorspace.Metric) *strategy.BestMatch {
	s.mu.Lock()
	defer s.mu.Unlock()
	if bm, ok := s.best[m]; ok {
		return bm
	}
	bm := strategy.NewBestMatchMetric(s.part.Core(), m)
	s.best[m] = bm
	return bm
}

// handleNotify routes FrameFloor broadcasts into the targeted in-flight
// Focus scan. A notify for an unknown request id (the scan already
// finished, or this worker was the broadcast's source) is dropped — floors
// only ever tighten, so a missed one costs speed, never correctness.
func (w *Worker) handleNotify(sc *comms.ServerConn, f comms.Frame) {
	var n floorNotify
	if err := json.Unmarshal(f.Payload, &n); err != nil {
		return
	}
	w.floorMu.Lock()
	share := w.floors[floorKey{sc, f.RequestID}]
	w.floorMu.Unlock()
	if share == nil {
		return
	}
	switch n.Measure {
	case "cmp":
		share.InjectCompleteness(n.C, n.N)
	case "cl":
		share.InjectCloseness(n.Missing)
	}
}

// handle serves one request frame. It runs on its own goroutine; ctx is
// canceled by a TypeCancel from the coordinator (deadline propagation), a
// dropped connection, or worker shutdown.
func (w *Worker) handle(ctx context.Context, sc *comms.ServerConn, f comms.Frame) (uint8, []byte) {
	switch f.Type {
	case FrameRegister, FrameHeartbeat:
		return w.handleRegister(f)
	case FrameFocus:
		return w.handleFocus(ctx, sc, f)
	case FrameBreadth:
		return w.handleBreadth(ctx, f)
	case FrameBMSurvey:
		return w.handleBMSurvey(ctx, f)
	case FrameBMVectors:
		return w.handleBMVectors(ctx, f)
	case FramePrepare:
		return w.handlePrepare(f)
	case FrameCommit:
		return w.handleCommit(f)
	case FrameAbort:
		return w.handleAbort(f)
	}
	return errFrame(fmt.Errorf("unknown frame type %d", f.Type))
}

func (w *Worker) handleRegister(f comms.Frame) (uint8, []byte) {
	sh, err := w.currentShard()
	if err != nil {
		return errFrame(err)
	}
	return f.Type, mustJSON(registerResponse{
		Epoch: sh.epoch,
		Vocab: w.engine.Snapshot().VocabChecksum(),
		Lo:    sh.lo,
		Hi:    sh.hi,
		Impls: sh.impls,
	})
}

func (w *Worker) handleFocus(ctx context.Context, sc *comms.ServerConn, f comms.Frame) (uint8, []byte) {
	var req focusRequest
	if err := json.Unmarshal(f.Payload, &req); err != nil {
		return errFrame(err)
	}
	var measure strategy.FocusMeasure
	switch req.Measure {
	case "cmp":
		measure = strategy.Completeness
	case "cl":
		measure = strategy.Closeness
	default:
		return errFrame(fmt.Errorf("unknown focus measure %q", req.Measure))
	}
	sh, err := w.currentShard()
	if err != nil {
		return errFrame(err)
	}

	// Register the floor share before scanning so a broadcast racing the
	// scan's start still lands.
	share := strategy.NewFocusFloorShare()
	key := floorKey{sc, f.RequestID}
	w.floorMu.Lock()
	w.floors[key] = share
	w.floorMu.Unlock()
	defer func() {
		w.floorMu.Lock()
		delete(w.floors, key)
		w.floorMu.Unlock()
	}()

	fs := sh.focusFor(measure, w.cfg.Pruning)
	emissions, err := fs.TopEmissions(ctx, req.Activity, req.K, int64(sh.lo), share)
	if err != nil {
		return errFrame(err)
	}
	return f.Type, mustJSON(focusResponse{
		Epoch:       sh.epoch,
		Emissions:   emissions,
		Tightenings: share.Tightenings(),
	})
}

func (w *Worker) handleBreadth(ctx context.Context, f comms.Frame) (uint8, []byte) {
	var req breadthRequest
	if err := json.Unmarshal(f.Payload, &req); err != nil {
		return errFrame(err)
	}
	weighting, err := strategy.ParseBreadthWeighting(req.Weighting)
	if err != nil {
		return errFrame(err)
	}
	sh, err := w.currentShard()
	if err != nil {
		return errFrame(err)
	}
	partial, err := sh.breadthFor(weighting).ShardPartial(ctx, req.Activity)
	if err != nil {
		return errFrame(err)
	}
	return f.Type, mustJSON(breadthResponse{Epoch: sh.epoch, Partial: partial})
}

func (w *Worker) handleBMSurvey(ctx context.Context, f comms.Frame) (uint8, []byte) {
	var req bmSurveyRequest
	if err := json.Unmarshal(f.Payload, &req); err != nil {
		return errFrame(err)
	}
	sh, err := w.currentShard()
	if err != nil {
		return errFrame(err)
	}
	// The survey is metric-independent; use the cosine instance.
	survey, err := sh.bestFor(vectorspace.Cosine).ShardSurvey(ctx, req.Activity)
	if err != nil {
		return errFrame(err)
	}
	return f.Type, mustJSON(bmSurveyResponse{Epoch: sh.epoch, Survey: survey})
}

func (w *Worker) handleBMVectors(ctx context.Context, f comms.Frame) (uint8, []byte) {
	var req bmVectorsRequest
	if err := json.Unmarshal(f.Payload, &req); err != nil {
		return errFrame(err)
	}
	sh, err := w.currentShard()
	if err != nil {
		return errFrame(err)
	}
	vectors, err := sh.bestFor(vectorspace.Cosine).ShardVectors(ctx, req.Candidates, req.GoalSpace)
	if err != nil {
		return errFrame(err)
	}
	return f.Type, mustJSON(bmVectorsResponse{Epoch: sh.epoch, Vectors: vectors})
}

// errNoReloader marks a prepare against a worker without a library source.
var errNoReloader = errors.New("no reloader configured")

func (w *Worker) handlePrepare(f comms.Frame) (uint8, []byte) {
	if w.cfg.Reload == nil {
		return errFrame(errNoReloader)
	}
	lib, err := w.cfg.Reload()
	if err != nil {
		return errFrame(fmt.Errorf("prepare: %w", err))
	}
	w.stagedMu.Lock()
	w.staged = lib
	w.stagedMu.Unlock()
	w.logf("cluster worker: staged %d implementations for swap", lib.NumImplementations())
	return f.Type, mustJSON(prepareResponse{
		Impls: lib.NumImplementations(),
		Vocab: lib.VocabChecksum(),
	})
}

func (w *Worker) handleCommit(f comms.Frame) (uint8, []byte) {
	w.stagedMu.Lock()
	lib := w.staged
	w.staged = nil
	w.stagedMu.Unlock()
	if lib == nil {
		return errFrame(errors.New("commit without a staged epoch"))
	}
	swapped := w.engine.Swap(lib)
	w.logf("cluster worker: committed swap at epoch %d", swapped.Epoch())
	sh, err := w.currentShard()
	if err != nil {
		// The swap is already committed; report it even if the new partition
		// cannot be built (queries will surface the partition error).
		return f.Type, mustJSON(commitResponse{Epoch: swapped.Epoch(), Lo: w.cfg.Lo, Hi: w.cfg.Hi, Impls: swapped.NumImplementations()})
	}
	return f.Type, mustJSON(commitResponse{Epoch: swapped.Epoch(), Lo: sh.lo, Hi: sh.hi, Impls: sh.impls})
}

func (w *Worker) handleAbort(f comms.Frame) (uint8, []byte) {
	w.stagedMu.Lock()
	had := w.staged != nil
	w.staged = nil
	w.stagedMu.Unlock()
	if had {
		w.logf("cluster worker: aborted staged swap")
	}
	return f.Type, mustJSON(struct{}{})
}
