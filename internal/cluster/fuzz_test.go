package cluster

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"

	"goalrec"
)

// fuzzCluster is a process-wide 3-shard cluster (pruning on, so the fuzz
// exercises both the coordinator merge and the workers' bound-driven
// kernels) shared by every fuzz iteration.
var (
	fuzzOnce sync.Once
	fuzzLib  *goalrec.Library
	fuzzCo   *Coordinator
	fuzzRecs map[string]goalrec.Recommender
)

func fuzzSetup() {
	fuzzLib = clusterTestLibrary(7, 64)
	n := fuzzLib.NumImplementations()
	per := (n + 2) / 3
	var addrs []string
	for i := 0; i < 3; i++ {
		lo, hi := i*per, (i+1)*per
		if i == 2 {
			hi = -1
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		w := NewWorker(goalrec.NewEngineFromLibrary(fuzzLib), WorkerConfig{Lo: lo, Hi: hi, Pruning: true})
		go w.Serve(ln)
		addrs = append(addrs, ln.Addr().String())
	}
	fuzzCo = NewCoordinator(goalrec.NewEngineFromLibrary(fuzzLib), CoordinatorConfig{Peers: addrs})

	fuzzRecs = make(map[string]goalrec.Recommender)
	mk := func(name string, s goalrec.Strategy, opts ...goalrec.RecommenderOption) {
		fuzzRecs[name] = fuzzLib.MustRecommender(s, opts...)
	}
	mk("focus-cmp", goalrec.FocusCompleteness)
	mk("focus-cl", goalrec.FocusCloseness)
	mk("breadth", goalrec.Breadth)
	mk("best-match", goalrec.BestMatch)
	mk("best-match-jaccard", goalrec.BestMatch, goalrec.WithDistanceMetric("jaccard"))
	mk("best-match-euclidean", goalrec.BestMatch, goalrec.WithDistanceMetric("euclidean"))
	mk("best-match-manhattan", goalrec.BestMatch, goalrec.WithDistanceMetric("manhattan"))
}

// fuzzSpecs maps a fuzz byte onto a (strategy, metric) request pair plus
// the single-node oracle's key in fuzzRecs.
var fuzzSpecs = []struct{ key, strategy, metric string }{
	{"focus-cmp", "focus-cmp", ""},
	{"focus-cl", "focus-cl", ""},
	{"breadth", "breadth", ""},
	{"best-match", "best-match", ""},
	{"best-match-jaccard", "best-match", "jaccard"},
	{"best-match-euclidean", "best-match", "euclidean"},
	{"best-match-manhattan", "best-match", "manhattan"},
}

// FuzzClusterRankings drives random activities through the cluster and a
// single-node recommender and requires exactly equal rankings — names,
// order and float64 score bits.
func FuzzClusterRankings(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(0))
	f.Add(int64(2), uint8(1), uint8(1))
	f.Add(int64(3), uint8(10), uint8(2))
	f.Add(int64(4), uint8(64), uint8(5))
	f.Add(int64(5), uint8(7), uint8(6))
	f.Fuzz(func(t *testing.T, seed int64, kb, sb uint8) {
		fuzzOnce.Do(fuzzSetup)
		spec := fuzzSpecs[int(sb)%len(fuzzSpecs)]
		k := 1 + int(kb)%20
		r := rand.New(rand.NewSource(seed))
		activity := make([]string, 0, 6)
		for i := 1 + r.Intn(6); i > 0; i-- {
			if r.Intn(8) == 0 {
				activity = append(activity, fmt.Sprintf("zz%d", r.Intn(4))) // unknown
			} else {
				activity = append(activity, fmt.Sprintf("a%d", r.Intn(40)))
			}
		}

		res, err := fuzzCo.Recommend(context.Background(), spec.strategy, spec.metric, activity, k)
		if err != nil {
			t.Fatalf("cluster %s k=%d %v: %v", spec.key, k, activity, err)
		}
		if res.Degraded {
			t.Fatalf("healthy fuzz cluster answered degraded")
		}
		want, err := fuzzRecs[spec.key].RecommendContext(context.Background(), activity, k)
		if err != nil {
			t.Fatalf("single-node %s: %v", spec.key, err)
		}
		if len(res.Recommendations) != len(want) {
			t.Fatalf("%s k=%d %v: cluster returned %d recommendations, single-node %d\ncluster: %v\n single: %v",
				spec.key, k, activity, len(res.Recommendations), len(want), res.Recommendations, want)
		}
		for i := range want {
			got := res.Recommendations[i]
			if got.Action != want[i].Action || got.Score != want[i].Score {
				t.Fatalf("%s k=%d %v: rank %d differs: cluster %q/%v, single %q/%v",
					spec.key, k, activity, i, got.Action, got.Score, want[i].Action, want[i].Score)
			}
		}
	})
}
