package faultinject

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"goalrec"
)

func testLib(t *testing.T) *goalrec.Library {
	t.Helper()
	b := goalrec.NewBuilder()
	for _, impl := range [][]string{
		{"salad", "potatoes", "carrots"},
		{"salad", "potatoes", "pickles"},
		{"soup", "carrots", "onions"},
	} {
		if err := b.AddImplementation(impl[0], impl[1:]...); err != nil {
			t.Fatal(err)
		}
	}
	return b.Build()
}

func TestReloaderSchedule(t *testing.T) {
	lib := testLib(t)
	r := &Reloader{FailFirst: 2, Lib: lib}
	for i := 0; i < 2; i++ {
		if _, err := r.Load(); !errors.Is(err, ErrInjected) {
			t.Fatalf("call %d: err = %v, want ErrInjected", i+1, err)
		}
	}
	got, err := r.Load()
	if err != nil || got != lib {
		t.Fatalf("third call = (%v, %v), want the configured library", got, err)
	}
	if r.Calls() != 3 || r.Failures() != 2 {
		t.Errorf("calls/failures = %d/%d, want 3/2", r.Calls(), r.Failures())
	}

	always := &Reloader{FailAlways: true, Err: errors.New("boom")}
	if _, err := always.Load(); err == nil || err.Error() != "boom" {
		t.Errorf("FailAlways err = %v", err)
	}
}

func TestReloaderBuildScript(t *testing.T) {
	lib := testLib(t)
	r := &Reloader{Build: func(call int) (*goalrec.Library, error) {
		return PartialLibrary(lib, call), nil
	}}
	first, err := r.Load()
	if err != nil {
		t.Fatal(err)
	}
	if first.NumImplementations() != 1 {
		t.Errorf("partial library impls = %d, want 1", first.NumImplementations())
	}
	second, err := r.Load()
	if err != nil {
		t.Fatal(err)
	}
	if second.NumImplementations() != 2 {
		t.Errorf("partial library impls = %d, want 2", second.NumImplementations())
	}
}

func TestPartialLibraryWhole(t *testing.T) {
	lib := testLib(t)
	whole := PartialLibrary(lib, 100)
	if whole.NumImplementations() != lib.NumImplementations() {
		t.Errorf("impls = %d, want %d", whole.NumImplementations(), lib.NumImplementations())
	}
}

func TestSlowHandlerHonorsContext(t *testing.T) {
	reached := false
	h := SlowHandler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reached = true
	}), time.Hour)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodGet, "/", nil).WithContext(ctx)
	done := make(chan struct{})
	go func() {
		defer close(done)
		h.ServeHTTP(httptest.NewRecorder(), req)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("SlowHandler ignored the canceled context")
	}
	if reached {
		t.Error("inner handler ran despite canceled context")
	}
}

func TestCancelAfterCancelsInnerContext(t *testing.T) {
	sawCancel := make(chan error, 1)
	h := CancelAfter(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
			sawCancel <- r.Context().Err()
		case <-time.After(5 * time.Second):
			sawCancel <- nil
		}
	}), time.Millisecond)
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
	if err := <-sawCancel; !errors.Is(err, context.Canceled) {
		t.Fatalf("inner context err = %v, want context.Canceled", err)
	}
}

func TestCancelAfterPolls(t *testing.T) {
	ctx := CancelAfterPolls(2)
	if ctx.Done() == nil {
		t.Fatal("Done() must be non-nil so checkpoint polling engages")
	}
	if err := ctx.Err(); err != nil {
		t.Fatalf("poll 1 err = %v", err)
	}
	if err := ctx.Err(); err != nil {
		t.Fatalf("poll 2 err = %v", err)
	}
	if err := ctx.Err(); !errors.Is(err, context.Canceled) {
		t.Fatalf("poll 3 err = %v, want context.Canceled", err)
	}
	if ctx.Polls() != 3 {
		t.Errorf("polls = %d, want 3", ctx.Polls())
	}
}
