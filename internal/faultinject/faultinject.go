// Package faultinject provides deterministic fault injection for the
// request-lifecycle tests: scriptable reloaders that fail, stall or return
// partial libraries; HTTP handler wrappers that add latency or cancel the
// request context mid-flight; and a context that cancels after a fixed
// number of polls, pinning the strategies' cancellation checkpoints without
// timing dependence.
//
// Everything here is test infrastructure: it lives in an internal package
// (not _test files) so the server, strategy and cmd test suites can share
// one set of faults.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"goalrec"
)

// ErrInjected is the default error injected by a Reloader.
var ErrInjected = errors.New("faultinject: injected failure")

// Reloader is a scriptable stand-in for a library load function — the thing
// server.WithReloader and goalrecd's -watch loop call. Configure the
// failure schedule, then pass Load as the reload function.
//
// The zero value succeeds on every call with an empty library; set Lib (or
// Build) for a real success path.
type Reloader struct {
	// FailFirst makes the first n calls fail with Err.
	FailFirst int
	// FailAlways makes every call fail with Err.
	FailAlways bool
	// Err is the injected error; nil selects ErrInjected.
	Err error
	// Delay stalls every call (success or failure) before returning,
	// simulating a slow library source.
	Delay time.Duration
	// Lib is the library returned by successful calls. Nil (and nil Build)
	// returns an empty library.
	Lib *goalrec.Library
	// Build, when set, overrides Lib: it is called with the 1-based call
	// number and produces that call's result, enabling partial-library and
	// alternating-outcome scripts.
	Build func(call int) (*goalrec.Library, error)

	mu       sync.Mutex
	calls    int
	failures int
}

// Load implements the reload function contract.
func (r *Reloader) Load() (*goalrec.Library, error) {
	r.mu.Lock()
	r.calls++
	call := r.calls
	r.mu.Unlock()
	if r.Delay > 0 {
		time.Sleep(r.Delay)
	}
	fail := r.FailAlways || call <= r.FailFirst
	if fail {
		r.mu.Lock()
		r.failures++
		r.mu.Unlock()
		if r.Err != nil {
			return nil, r.Err
		}
		return nil, fmt.Errorf("%w (call %d)", ErrInjected, call)
	}
	if r.Build != nil {
		return r.Build(call)
	}
	if r.Lib != nil {
		return r.Lib, nil
	}
	return goalrec.NewBuilder().Build(), nil
}

// Calls returns how many times Load has been invoked.
func (r *Reloader) Calls() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.calls
}

// Failures returns how many calls were failed by the schedule.
func (r *Reloader) Failures() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.failures
}

// PartialLibrary returns a copy of lib truncated to at most n
// implementations (goal order, insertion order within a goal) — a "partial
// reload" fault: the source was readable but incomplete.
func PartialLibrary(lib *goalrec.Library, n int) *goalrec.Library {
	b := goalrec.NewBuilder()
	kept := 0
	for _, goal := range lib.Goals() {
		for _, impl := range lib.ImplementationsOf(goal) {
			if kept >= n {
				return b.Build()
			}
			// Source implementations are valid by construction.
			_ = b.AddImplementation(impl.Goal, impl.Actions...)
			kept++
		}
	}
	return b.Build()
}

// SlowHandler delays every request by d before invoking h, honoring the
// request context: a request whose context expires while stalled is
// abandoned without reaching h.
func SlowHandler(h http.Handler, d time.Duration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
		case <-r.Context().Done():
			return
		}
		h.ServeHTTP(w, r)
	})
}

// CancelAfter serves h with a request context that is canceled d after the
// request arrives — the server-side shape of a client hanging up mid-query.
func CancelAfter(h http.Handler, d time.Duration) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithCancel(r.Context())
		defer cancel()
		timer := time.AfterFunc(d, cancel)
		defer timer.Stop()
		h.ServeHTTP(w, r.WithContext(ctx))
	})
}

// CancelAfterPolls returns a context that reports cancellation after its
// Err has been consulted n times. Its Done channel is non-nil (so
// checkpoint-polling code engages) but never closes. It makes "cancel
// exactly at the first in-loop checkpoint" a deterministic test: pass n=1
// so the entry check passes and the first loop checkpoint aborts.
func CancelAfterPolls(n int64) *PollCountingContext {
	return &PollCountingContext{n: n, done: make(chan struct{})}
}

// PollCountingContext is the context returned by CancelAfterPolls. Polls
// reports how many times Err has been consulted, which doubles as proof
// that a query reached its checkpoints.
type PollCountingContext struct {
	n     int64
	polls atomic.Int64
	done  chan struct{}
}

// Deadline implements context.Context.
func (c *PollCountingContext) Deadline() (time.Time, bool) { return time.Time{}, false }

// Done implements context.Context; the channel never closes.
func (c *PollCountingContext) Done() <-chan struct{} { return c.done }

// Value implements context.Context.
func (c *PollCountingContext) Value(interface{}) interface{} { return nil }

// Err implements context.Context: nil for the first n polls,
// context.Canceled afterwards.
func (c *PollCountingContext) Err() error {
	if c.polls.Add(1) > c.n {
		return context.Canceled
	}
	return nil
}

// Polls returns how many times Err has been consulted so far.
func (c *PollCountingContext) Polls() int64 { return c.polls.Load() }
