package comms

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
)

// Conn is the client side of a multiplexed comms connection. Any number of
// goroutines may issue requests concurrently; each request is assigned a
// fresh id and its response (the first frame echoing that id) is routed back
// to the caller. A caller whose context expires sends a TypeCancel control
// frame so the server aborts the in-flight work, then returns the context
// error without waiting for the server.
type Conn struct {
	nc net.Conn

	wmu    sync.Mutex
	wbuf   []byte
	nextID atomic.Uint64

	mu      sync.Mutex
	pending map[uint64]chan Frame
	err     error
	closed  chan struct{}

	// onAsync, if set, receives frames that match no pending request —
	// server-initiated pushes. Called from the read loop; must not block.
	onAsync func(Frame)
}

// Dial connects to addr and starts the read loop.
func Dial(addr string) (*Conn, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewConn(nc), nil
}

// NewConn wraps an established connection and starts the read loop.
func NewConn(nc net.Conn) *Conn {
	c := &Conn{
		nc:      nc,
		pending: make(map[uint64]chan Frame),
		closed:  make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// RemoteAddr reports the peer address, for logs and metrics labels.
func (c *Conn) RemoteAddr() string { return c.nc.RemoteAddr().String() }

func (c *Conn) readLoop() {
	var buf []byte
	for {
		f, nb, err := ReadFrame(c.nc, buf)
		buf = nb
		if err != nil {
			c.fail(fmt.Errorf("comms: connection to %s: %w", c.RemoteAddr(), err))
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[f.RequestID]
		if ok {
			delete(c.pending, f.RequestID)
		}
		async := c.onAsync
		c.mu.Unlock()
		if ok {
			// The payload aliases the shared read buffer; copy before
			// handing it to a goroutine that outlives this iteration.
			f.Payload = append([]byte(nil), f.Payload...)
			ch <- f
		} else if async != nil && f.Type != TypeCancel {
			f.Payload = append([]byte(nil), f.Payload...)
			async(f)
		}
	}
}

func (c *Conn) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
		close(c.closed)
	}
	for id, ch := range c.pending {
		delete(c.pending, id)
		close(ch)
	}
	c.mu.Unlock()
	c.nc.Close()
}

// Close tears the connection down; in-flight requests fail.
func (c *Conn) Close() error {
	c.fail(fmt.Errorf("comms: connection closed"))
	return nil
}

// Err returns the terminal connection error, or nil while healthy.
func (c *Conn) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.err
}

func (c *Conn) send(f Frame) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	buf, err := WriteFrame(c.nc, f, c.wbuf)
	c.wbuf = buf
	return err
}

// NewRequestID reserves a fresh request id for DoRequest. Reserving ahead
// of the call lets the caller target the in-flight request with Notify
// frames (the floor broadcast) while DoRequest is still blocked.
func (c *Conn) NewRequestID() uint64 { return c.nextID.Add(1) }

// Do sends one request frame under a fresh id and waits for its response.
func (c *Conn) Do(ctx context.Context, typ uint8, payload []byte) (Frame, error) {
	return c.DoRequest(ctx, c.NewRequestID(), typ, payload)
}

// DoRequest sends one request frame under a caller-reserved id and waits
// for the response frame carrying the same id. The response type is
// application-defined (e.g. an error response type). On ctx expiry a
// best-effort TypeCancel is sent and ctx.Err() returned.
func (c *Conn) DoRequest(ctx context.Context, id uint64, typ uint8, payload []byte) (Frame, error) {
	ch := make(chan Frame, 1)

	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return Frame{}, err
	}
	c.pending[id] = ch
	c.mu.Unlock()

	if err := c.send(Frame{Type: typ, RequestID: id, Payload: payload}); err != nil {
		c.fail(err)
		return Frame{}, err
	}

	select {
	case f, ok := <-ch:
		if !ok {
			return Frame{}, c.Err()
		}
		return f, nil
	case <-ctx.Done():
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		_ = c.send(Frame{Type: TypeCancel, RequestID: id})
		return Frame{}, ctx.Err()
	case <-c.closed:
		return Frame{}, c.Err()
	}
}

// Notify sends a one-way frame targeting an existing request id — the floor
// broadcast path: the coordinator tightens a worker's threshold mid-request
// without expecting a reply.
func (c *Conn) Notify(typ uint8, requestID uint64, payload []byte) error {
	return c.send(Frame{Type: typ, RequestID: requestID, Payload: payload})
}

// OnAsync installs the handler for server-initiated frames that match no
// pending request. Install before issuing requests that expect pushes.
func (c *Conn) OnAsync(fn func(Frame)) {
	c.mu.Lock()
	c.onAsync = fn
	c.mu.Unlock()
}
