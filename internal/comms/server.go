package comms

import (
	"context"
	"net"
	"sync"
)

// Handler serves one request frame and returns the response type and
// payload. ctx is canceled when the peer sends TypeCancel for this request,
// when the connection drops, or when the server shuts down. Handlers run on
// their own goroutines, so one slow request never blocks the connection.
type Handler func(ctx context.Context, sc *ServerConn, f Frame) (respType uint8, payload []byte)

// NotifyHandler observes one-way frames (no response expected). It runs
// inline on the connection's read loop — ordering with respect to request
// frames on the same connection is preserved — so it must not block.
type NotifyHandler func(sc *ServerConn, f Frame)

// Server accepts comms connections and dispatches frames.
type Server struct {
	handler Handler
	notify  NotifyHandler
	// notifyTypes marks the frame types routed to the notify handler
	// instead of spawning a request handler.
	notifyTypes map[uint8]bool

	ctx    context.Context
	cancel context.CancelFunc

	mu    sync.Mutex
	conns map[*ServerConn]struct{}
	ln    net.Listener
}

// NewServer builds a server. notifyTypes lists the one-way frame types
// delivered to notify; every other non-control type goes to handler.
func NewServer(handler Handler, notify NotifyHandler, notifyTypes ...uint8) *Server {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		handler:     handler,
		notify:      notify,
		notifyTypes: make(map[uint8]bool, len(notifyTypes)),
		ctx:         ctx,
		cancel:      cancel,
		conns:       make(map[*ServerConn]struct{}),
	}
	for _, t := range notifyTypes {
		s.notifyTypes[t] = true
	}
	return s
}

// Serve accepts connections on l until Close. It returns the accept error
// (net.ErrClosed after Close).
func (s *Server) Serve(l net.Listener) error {
	s.mu.Lock()
	s.ln = l
	s.mu.Unlock()
	for {
		nc, err := l.Accept()
		if err != nil {
			select {
			case <-s.ctx.Done():
				return net.ErrClosed
			default:
				return err
			}
		}
		sc := &ServerConn{srv: s, nc: nc, inflight: make(map[uint64]context.CancelFunc)}
		s.mu.Lock()
		s.conns[sc] = struct{}{}
		s.mu.Unlock()
		go sc.readLoop()
	}
}

// Close stops accepting, cancels every in-flight request and closes every
// connection.
func (s *Server) Close() {
	s.cancel()
	s.mu.Lock()
	ln := s.ln
	conns := make([]*ServerConn, 0, len(s.conns))
	for sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	if ln != nil {
		_ = ln.Close()
	}
	for _, sc := range conns {
		sc.close()
	}
}

// ServerConn is one accepted connection. Handlers use it to identify the
// peer and (via Push) to send server-initiated frames.
type ServerConn struct {
	srv *Server
	nc  net.Conn

	wmu  sync.Mutex
	wbuf []byte

	mu       sync.Mutex
	inflight map[uint64]context.CancelFunc
	closedMu sync.Once
}

// RemoteAddr reports the peer address.
func (sc *ServerConn) RemoteAddr() string { return sc.nc.RemoteAddr().String() }

func (sc *ServerConn) readLoop() {
	defer sc.close()
	var buf []byte
	for {
		f, nb, err := ReadFrame(sc.nc, buf)
		buf = nb
		if err != nil {
			return
		}
		switch {
		case f.Type == TypeCancel:
			sc.mu.Lock()
			cancel := sc.inflight[f.RequestID]
			sc.mu.Unlock()
			if cancel != nil {
				cancel()
			}
		case sc.srv.notifyTypes[f.Type]:
			if sc.srv.notify != nil {
				sc.srv.notify(sc, f)
			}
		default:
			ctx, cancel := context.WithCancel(sc.srv.ctx)
			sc.mu.Lock()
			sc.inflight[f.RequestID] = cancel
			sc.mu.Unlock()
			req := f
			req.Payload = append([]byte(nil), f.Payload...)
			go func() {
				defer func() {
					sc.mu.Lock()
					delete(sc.inflight, req.RequestID)
					sc.mu.Unlock()
					cancel()
				}()
				typ, payload := sc.srv.handler(ctx, sc, req)
				_ = sc.Push(Frame{Type: typ, RequestID: req.RequestID, Payload: payload})
			}()
		}
	}
}

// Push writes one frame to the peer. Safe for concurrent use.
func (sc *ServerConn) Push(f Frame) error {
	sc.wmu.Lock()
	defer sc.wmu.Unlock()
	buf, err := WriteFrame(sc.nc, f, sc.wbuf)
	sc.wbuf = buf
	return err
}

func (sc *ServerConn) close() {
	sc.closedMu.Do(func() {
		_ = sc.nc.Close()
		sc.mu.Lock()
		for id, cancel := range sc.inflight {
			delete(sc.inflight, id)
			cancel()
		}
		sc.mu.Unlock()
		sc.srv.mu.Lock()
		delete(sc.srv.conns, sc)
		sc.srv.mu.Unlock()
	})
}
