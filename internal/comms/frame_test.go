package comms

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte{0xab}, 4096)}
	for _, p := range payloads {
		f := Frame{Type: TypeApp + 3, RequestID: 0xdeadbeefcafe, Payload: p}
		enc, err := AppendFrame(nil, f)
		if err != nil {
			t.Fatalf("AppendFrame: %v", err)
		}
		got, n, err := DecodeFrame(enc)
		if err != nil {
			t.Fatalf("DecodeFrame: %v", err)
		}
		if n != len(enc) {
			t.Fatalf("consumed %d of %d", n, len(enc))
		}
		if got.Type != f.Type || got.RequestID != f.RequestID || !bytes.Equal(got.Payload, f.Payload) {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, f)
		}
	}
}

func TestFrameTypedErrors(t *testing.T) {
	enc, err := AppendFrame(nil, Frame{Type: TypeApp, RequestID: 7, Payload: []byte("hello")})
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	for cut := 0; cut < len(enc); cut++ {
		if _, _, err := DecodeFrame(enc[:cut]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("truncation at %d: got %v, want ErrTruncated", cut, err)
		}
	}
	bad := append([]byte(nil), enc...)
	bad[0] ^= 0xff
	if _, _, err := DecodeFrame(bad); !errors.Is(err, ErrBadMagic) {
		t.Fatalf("bad magic: got %v", err)
	}
	bad = append([]byte(nil), enc...)
	bad[4] = Version + 1
	if _, _, err := DecodeFrame(bad); !errors.Is(err, ErrVersion) {
		t.Fatalf("bad version: got %v", err)
	}
	bad = append([]byte(nil), enc...)
	bad[len(bad)-1] ^= 0x01
	if _, _, err := DecodeFrame(bad); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupt crc: got %v", err)
	}
	bad = append([]byte(nil), enc...)
	bad[20] ^= 0x40 // payload byte
	if _, _, err := DecodeFrame(bad); !errors.Is(err, ErrChecksum) {
		t.Fatalf("corrupt payload: got %v", err)
	}
	if _, err := AppendFrame(nil, Frame{Payload: make([]byte, MaxPayload+1)}); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized append: got %v", err)
	}
}

func TestReadFrameStream(t *testing.T) {
	var wire []byte
	want := []Frame{
		{Type: TypeApp, RequestID: 1, Payload: []byte("a")},
		{Type: TypeApp + 1, RequestID: 2, Payload: nil},
		{Type: TypeApp + 2, RequestID: 3, Payload: bytes.Repeat([]byte{9}, 1000)},
	}
	for _, f := range want {
		var err error
		wire, err = AppendFrame(wire, f)
		if err != nil {
			t.Fatalf("AppendFrame: %v", err)
		}
	}
	r := bytes.NewReader(wire)
	var buf []byte
	for i, w := range want {
		f, nb, err := ReadFrame(r, buf)
		buf = nb
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if f.Type != w.Type || f.RequestID != w.RequestID || !bytes.Equal(f.Payload, w.Payload) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
	if _, _, err := ReadFrame(r, buf); err != io.EOF {
		t.Fatalf("stream end: got %v, want io.EOF", err)
	}
	// EOF inside a frame is truncation, not a clean end.
	r2 := bytes.NewReader(wire[:len(wire)-3])
	f, buf2, err := ReadFrame(r2, nil)
	_ = f
	for err == nil {
		f, buf2, err = ReadFrame(r2, buf2)
	}
	if !errors.Is(err, ErrTruncated) {
		t.Fatalf("mid-frame EOF: got %v, want ErrTruncated", err)
	}
}

// FuzzFrameRoundTrip drives the codec both ways: decoding arbitrary bytes
// must never panic and must fail only with the package's typed errors, and
// any frame the fuzzer describes must encode and decode back to itself.
func FuzzFrameRoundTrip(f *testing.F) {
	seed, _ := AppendFrame(nil, Frame{Type: TypeApp, RequestID: 42, Payload: []byte("seed")})
	f.Add(seed, uint8(TypeApp), uint64(1), []byte("payload"))
	f.Add([]byte{}, uint8(0), uint64(0), []byte{})
	f.Add(seed[:10], uint8(255), uint64(1<<63), bytes.Repeat([]byte{7}, 100))
	f.Fuzz(func(t *testing.T, raw []byte, typ uint8, id uint64, payload []byte) {
		// Arbitrary bytes: no panic, typed error or clean decode.
		if fr, n, err := DecodeFrame(raw); err == nil {
			if n <= 0 || n > len(raw) {
				t.Fatalf("decode consumed %d of %d", n, len(raw))
			}
			reenc, err := AppendFrame(nil, fr)
			if err != nil {
				t.Fatalf("re-encode of decoded frame: %v", err)
			}
			if !bytes.Equal(reenc, raw[:n]) {
				t.Fatalf("decode/encode not an identity")
			}
		} else if !errors.Is(err, ErrBadMagic) && !errors.Is(err, ErrVersion) &&
			!errors.Is(err, ErrChecksum) && !errors.Is(err, ErrTruncated) &&
			!errors.Is(err, ErrTooLarge) {
			t.Fatalf("untyped decode error: %v", err)
		}

		// Described frame: encode → decode is the identity.
		want := Frame{Type: typ, RequestID: id, Payload: payload}
		enc, err := AppendFrame(nil, want)
		if err != nil {
			t.Fatalf("AppendFrame: %v", err)
		}
		got, n, err := DecodeFrame(enc)
		if err != nil {
			t.Fatalf("DecodeFrame of valid frame: %v", err)
		}
		if n != len(enc) || got.Type != want.Type || got.RequestID != want.RequestID ||
			!bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("round trip mismatch")
		}
		// Every strict prefix of a valid frame is a truncation.
		for _, cut := range []int{0, 1, len(enc) / 2, len(enc) - 1} {
			if cut >= len(enc) {
				continue
			}
			if _, _, err := DecodeFrame(enc[:cut]); !errors.Is(err, ErrTruncated) {
				t.Fatalf("prefix %d: got %v, want ErrTruncated", cut, err)
			}
		}
	})
}
