package comms

import (
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

const (
	testTypeEcho   = TypeApp
	testTypeSlow   = TypeApp + 1
	testTypeNotify = TypeApp + 2
	testTypeResp   = TypeApp + 3
)

func startTestServer(t *testing.T, h Handler, n NotifyHandler, notifyTypes ...uint8) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	s := NewServer(h, n, notifyTypes...)
	go func() { _ = s.Serve(ln) }()
	t.Cleanup(s.Close)
	return s, ln.Addr().String()
}

func TestConnMultiplexing(t *testing.T) {
	_, addr := startTestServer(t, func(ctx context.Context, sc *ServerConn, f Frame) (uint8, []byte) {
		return testTypeResp, append([]byte("echo:"), f.Payload...)
	}, nil)
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			payload := []byte(fmt.Sprintf("req-%d", i))
			f, err := c.Do(context.Background(), testTypeEcho, payload)
			if err != nil {
				t.Errorf("Do(%d): %v", i, err)
				return
			}
			if string(f.Payload) != "echo:"+string(payload) {
				t.Errorf("Do(%d): cross-wired response %q", i, f.Payload)
			}
		}(i)
	}
	wg.Wait()
}

func TestConnCancellationPropagates(t *testing.T) {
	canceled := make(chan struct{})
	_, addr := startTestServer(t, func(ctx context.Context, sc *ServerConn, f Frame) (uint8, []byte) {
		if f.Type == testTypeSlow {
			select {
			case <-ctx.Done():
				close(canceled)
			case <-time.After(10 * time.Second):
			}
			return testTypeResp, []byte("late")
		}
		return testTypeResp, nil
	}, nil)
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Do(ctx, testTypeSlow, nil)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("Do under cancel: %v", err)
	}
	select {
	case <-canceled:
	case <-time.After(5 * time.Second):
		t.Fatal("server handler never observed the cancellation")
	}
	// The connection stays usable for later requests.
	if _, err := c.Do(context.Background(), testTypeEcho, nil); err != nil {
		t.Fatalf("Do after cancel: %v", err)
	}
}

func TestConnNotifyReachesInflightRequest(t *testing.T) {
	var got atomic.Uint64
	release := make(chan struct{})
	_, addr := startTestServer(t, func(ctx context.Context, sc *ServerConn, f Frame) (uint8, []byte) {
		<-release
		return testTypeResp, []byte{byte(got.Load())}
	}, func(sc *ServerConn, f Frame) {
		if f.Type == testTypeNotify && len(f.Payload) == 1 {
			got.Store(uint64(f.RequestID)*100 + uint64(f.Payload[0]))
		}
	}, testTypeNotify)
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()

	id := c.NewRequestID()
	done := make(chan Frame, 1)
	go func() {
		f, _ := c.DoRequest(context.Background(), id, testTypeSlow, nil)
		done <- f
	}()
	time.Sleep(10 * time.Millisecond)
	if err := c.Notify(testTypeNotify, id, []byte{7}); err != nil {
		t.Fatalf("Notify: %v", err)
	}
	for i := 0; got.Load() == 0 && i < 500; i++ {
		time.Sleep(time.Millisecond)
	}
	close(release)
	f := <-done
	if want := id*100 + 7; got.Load() != want {
		t.Fatalf("notify payload: got %d, want %d", got.Load(), want)
	}
	if len(f.Payload) != 1 || uint64(f.Payload[0]) != (id*100+7)%256 {
		t.Fatalf("response after notify: %v", f.Payload)
	}
}

func TestConnFailsPendingOnDisconnect(t *testing.T) {
	srv, addr := startTestServer(t, func(ctx context.Context, sc *ServerConn, f Frame) (uint8, []byte) {
		time.Sleep(10 * time.Second) // ignore ctx: only the socket teardown can end this
		return testTypeResp, nil
	}, nil)
	c, err := Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		_, err := c.Do(context.Background(), testTypeSlow, nil)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	srv.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Do succeeded across a dead connection")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do hung after server close")
	}
	if c.Err() == nil {
		t.Fatal("connection reports healthy after peer close")
	}
}
