// Package comms is the cluster wire layer: length-prefixed binary frames
// with a fixed header (magic, version, type, request id, payload length) and
// a whole-frame CRC32 trailer, multiplexed over persistent TCP connections.
// Multiple requests share one connection concurrently; responses correlate
// by request id, cancellation travels as a control frame, and mid-request
// notifications (the cross-node score-floor broadcast) target an in-flight
// request id. The layer is payload-agnostic — internal/cluster defines the
// application frame types and JSON payload schemas.
package comms

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
)

// Wire format, little-endian:
//
//	[0:4)   magic 0x6d637267 ("grcm")
//	[4]     version (currently 1)
//	[5]     frame type
//	[6:14)  request id
//	[14:18) payload length
//	[18:18+n) payload
//	[18+n:22+n) CRC32 (IEEE) over bytes [0, 18+n)
const (
	Magic       uint32 = 0x6d637267
	Version     uint8  = 1
	headerSize         = 18
	trailerSize        = 4

	// MaxPayload bounds a single frame. Scatter requests and gathered
	// top-k partials are small; the bound exists so a corrupt or hostile
	// length field cannot make a reader allocate unboundedly.
	MaxPayload = 16 << 20
)

// Control frame types live below TypeApp; application layers must number
// their frame types from TypeApp upward.
const (
	// TypeCancel aborts the in-flight request carrying the same request
	// id. It has no payload and receives no response.
	TypeCancel uint8 = 1

	// TypeApp is the first frame type available to application layers.
	TypeApp uint8 = 16
)

// Typed decode errors. Stream readers wrap short reads into ErrTruncated so
// callers can distinguish a cut connection from a corrupt one.
var (
	ErrBadMagic  = errors.New("comms: bad frame magic")
	ErrVersion   = errors.New("comms: unsupported frame version")
	ErrChecksum  = errors.New("comms: frame checksum mismatch")
	ErrTruncated = errors.New("comms: truncated frame")
	ErrTooLarge  = errors.New("comms: frame payload too large")
)

// Frame is one decoded wire frame.
type Frame struct {
	Type      uint8
	RequestID uint64
	Payload   []byte
}

// AppendFrame appends the encoded frame to dst and returns the extended
// slice. It fails only when the payload exceeds MaxPayload.
func AppendFrame(dst []byte, f Frame) ([]byte, error) {
	if len(f.Payload) > MaxPayload {
		return dst, ErrTooLarge
	}
	start := len(dst)
	dst = binary.LittleEndian.AppendUint32(dst, Magic)
	dst = append(dst, Version, f.Type)
	dst = binary.LittleEndian.AppendUint64(dst, f.RequestID)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(f.Payload)))
	dst = append(dst, f.Payload...)
	crc := crc32.ChecksumIEEE(dst[start:])
	return binary.LittleEndian.AppendUint32(dst, crc), nil
}

// DecodeFrame decodes one frame from the start of b, returning the frame
// and the number of bytes consumed. The returned payload aliases b. Errors
// are the package's typed errors; a partial frame yields ErrTruncated.
func DecodeFrame(b []byte) (Frame, int, error) {
	if len(b) < headerSize {
		return Frame{}, 0, ErrTruncated
	}
	if binary.LittleEndian.Uint32(b[0:4]) != Magic {
		return Frame{}, 0, ErrBadMagic
	}
	if b[4] != Version {
		return Frame{}, 0, ErrVersion
	}
	n := int(binary.LittleEndian.Uint32(b[14:18]))
	if n > MaxPayload {
		return Frame{}, 0, ErrTooLarge
	}
	total := headerSize + n + trailerSize
	if len(b) < total {
		return Frame{}, 0, ErrTruncated
	}
	if crc32.ChecksumIEEE(b[:headerSize+n]) != binary.LittleEndian.Uint32(b[headerSize+n:total]) {
		return Frame{}, 0, ErrChecksum
	}
	return Frame{
		Type:      b[5],
		RequestID: binary.LittleEndian.Uint64(b[6:14]),
		Payload:   b[headerSize : headerSize+n],
	}, total, nil
}

// WriteFrame encodes and writes one frame. The scratch slice, if non-nil,
// is reused as the encode buffer; callers serialize writes themselves (the
// Conn and server types hold a write mutex).
func WriteFrame(w io.Writer, f Frame, scratch []byte) ([]byte, error) {
	buf, err := AppendFrame(scratch[:0], f)
	if err != nil {
		return scratch, err
	}
	_, err = w.Write(buf)
	return buf, err
}

// ReadFrame reads one whole frame from r, reusing scratch for the frame
// bytes; the returned payload aliases the returned buffer. io.EOF at a
// frame boundary is returned as io.EOF; EOF inside a frame, as
// ErrTruncated.
func ReadFrame(r io.Reader, scratch []byte) (Frame, []byte, error) {
	buf := scratch
	if cap(buf) < headerSize+trailerSize {
		buf = make([]byte, 0, 512)
	}
	buf = buf[:headerSize]
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			return Frame{}, buf, io.EOF
		}
		return Frame{}, buf, errTrunc(err)
	}
	if binary.LittleEndian.Uint32(buf[0:4]) != Magic {
		return Frame{}, buf, ErrBadMagic
	}
	if buf[4] != Version {
		return Frame{}, buf, ErrVersion
	}
	n := int(binary.LittleEndian.Uint32(buf[14:18]))
	if n > MaxPayload {
		return Frame{}, buf, ErrTooLarge
	}
	total := headerSize + n + trailerSize
	if cap(buf) < total {
		nb := make([]byte, total)
		copy(nb, buf)
		buf = nb
	}
	buf = buf[:total]
	if _, err := io.ReadFull(r, buf[headerSize:]); err != nil {
		return Frame{}, buf, errTrunc(err)
	}
	f, _, err := DecodeFrame(buf)
	return f, buf, err
}

func errTrunc(err error) error {
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return ErrTruncated
	}
	return err
}
