package baseline

import (
	"reflect"
	"testing"

	"goalrec/internal/core"
	"goalrec/internal/strategy"
)

func TestItemKNNNeighbours(t *testing.T) {
	in := smallInteractions()
	k := NewItemKNN(in, 10)
	if k.Name() != "cf-item-knn" {
		t.Errorf("Name = %q", k.Name())
	}
	// a0's users: {u0,u1,u2}. a1's users: {u0,u1,u4}. co = 2, union = 4.
	nbs := k.simLists[0]
	if len(nbs) == 0 {
		t.Fatal("a0 has no neighbours")
	}
	var simTo1 float64
	for _, nb := range nbs {
		if nb.action == 1 {
			simTo1 = nb.sim
		}
		if nb.action == 0 {
			t.Error("self neighbour present")
		}
	}
	if simTo1 != 0.5 {
		t.Errorf("sim(a0, a1) = %v, want 0.5", simTo1)
	}
}

func TestItemKNNNeighbourLimit(t *testing.T) {
	in := smallInteractions()
	k := NewItemKNN(in, 1)
	for a, nbs := range k.simLists {
		if len(nbs) > 1 {
			t.Errorf("action %d has %d neighbours, want ≤ 1", a, len(nbs))
		}
	}
}

func TestItemKNNRecommend(t *testing.T) {
	in := smallInteractions()
	k := NewItemKNN(in, 10)
	got := k.Recommend(acts(0, 1), 5)
	if len(got) == 0 {
		t.Fatal("no recommendations")
	}
	for _, s := range got {
		if s.Action == 0 || s.Action == 1 {
			t.Errorf("query action recommended: %v", s)
		}
	}
	// a2 and a3 co-occur with both query actions; they must outrank the
	// isolated a5.
	top := strategy.Actions(got)
	for i, a := range top {
		if a == 5 && i < 2 {
			t.Errorf("isolated action ranked #%d: %v", i+1, top)
		}
	}
	// Determinism.
	if again := k.Recommend(acts(1, 0), 5); !reflect.DeepEqual(got, again) {
		t.Error("unsorted query changed output")
	}
}

func TestItemKNNEmptyCases(t *testing.T) {
	in := smallInteractions()
	k := NewItemKNN(in, 0)
	if got := k.Recommend(nil, 5); got != nil {
		t.Errorf("empty query produced %v", got)
	}
	if got := k.Recommend(acts(0), 0); got != nil {
		t.Errorf("k=0 produced %v", got)
	}
	if got := k.Recommend([]core.ActionID{99}, 5); got != nil {
		t.Errorf("out-of-range query produced %v", got)
	}
}
