package baseline

import (
	"sort"

	"goalrec/internal/core"
	"goalrec/internal/intset"
	"goalrec/internal/strategy"
)

// Markov is a first-order next-action predictor, the goal-and-next-action
// inference family of the paper's related work (Section 2: Markov and state
// transition models). It is fit on *ordered* action sequences — information
// the set-based goal model deliberately ignores — and scores candidates by
// the smoothed transition probability from the recent actions of a query.
//
// It is not part of the paper's evaluation protocol (which is set-based) but
// completes the comparator families the paper discusses; see the lifegoals
// example and its own tests.
type Markov struct {
	numActions int
	// trans[a] maps successor b to count(a → b), pruned at fit time.
	trans []map[core.ActionID]int
	// rowTotal[a] = Σ_b count(a → b).
	rowTotal []int
	// window is how many trailing query actions vote (default 3).
	window int
}

// NewMarkov fits transition counts on the given ordered sequences.
// window ≤ 0 selects the default of 3.
func NewMarkov(sequences [][]core.ActionID, numActions, window int) *Markov {
	if window <= 0 {
		window = 3
	}
	m := &Markov{
		numActions: numActions,
		trans:      make([]map[core.ActionID]int, numActions),
		rowTotal:   make([]int, numActions),
		window:     window,
	}
	for _, seq := range sequences {
		for i := 0; i+1 < len(seq); i++ {
			a, b := seq[i], seq[i+1]
			if a < 0 || int(a) >= numActions || b < 0 || int(b) >= numActions || a == b {
				continue
			}
			if m.trans[a] == nil {
				m.trans[a] = make(map[core.ActionID]int)
			}
			m.trans[a][b]++
			m.rowTotal[a]++
		}
	}
	return m
}

// Name implements strategy.Recommender.
func (m *Markov) Name() string { return "markov" }

// TransitionProb returns the Laplace-smoothed P(b | a).
func (m *Markov) TransitionProb(a, b core.ActionID) float64 {
	if a < 0 || int(a) >= m.numActions {
		return 0
	}
	count := 0
	if m.trans[a] != nil {
		count = m.trans[a][b]
	}
	return float64(count+1) / float64(m.rowTotal[a]+m.numActions)
}

// Recommend implements strategy.Recommender. The activity is interpreted as
// an ordered sequence: the trailing `window` actions vote for successors
// with geometrically decaying weight (most recent counts most).
func (m *Markov) Recommend(activity []core.ActionID, n int) []strategy.ScoredAction {
	if n == 0 || len(activity) == 0 {
		return nil
	}
	seen := intset.FromUnsorted(intset.Clone(activity))
	start := len(activity) - m.window
	if start < 0 {
		start = 0
	}
	scores := make(map[core.ActionID]float64)
	weight := 1.0
	for i := len(activity) - 1; i >= start; i-- {
		a := activity[i]
		if a < 0 || int(a) >= m.numActions || m.trans[a] == nil {
			weight /= 2
			continue
		}
		for b, c := range m.trans[a] {
			if intset.Contains(seen, b) {
				continue
			}
			scores[b] += weight * float64(c) / float64(m.rowTotal[a])
		}
		weight /= 2
	}
	scored := make([]strategy.ScoredAction, 0, len(scores))
	for a, s := range scores {
		scored = append(scored, strategy.ScoredAction{Action: a, Score: s})
	}
	return strategy.TopK(scored, n)
}

// TopSuccessors returns action a's most likely successors with their raw
// counts, for inspection and tests.
func (m *Markov) TopSuccessors(a core.ActionID, k int) []strategy.ScoredAction {
	if a < 0 || int(a) >= m.numActions || m.trans[a] == nil {
		return nil
	}
	out := make([]strategy.ScoredAction, 0, len(m.trans[a]))
	for b, c := range m.trans[a] {
		out = append(out, strategy.ScoredAction{Action: b, Score: float64(c)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Action < out[j].Action
	})
	if k >= 0 && len(out) > k {
		out = out[:k]
	}
	return out
}
