package baseline

import (
	"sort"

	"goalrec/internal/core"
	"goalrec/internal/intset"
	"goalrec/internal/strategy"
)

// ItemKNN is item-based collaborative filtering: two actions are similar
// when the sets of users who performed them overlap (Tanimoto over user
// sets), and a candidate scores the sum of its similarities to the query
// activity's actions. It complements the paper's user-based CF KNN with the
// other classical neighbourhood formulation; like every collaborative
// method it follows co-consumption, not goals.
type ItemKNN struct {
	in        *Interactions
	neighbors int // per-anchor neighbourhood size

	// simLists[a] holds action a's top neighbours, precomputed at fit time.
	simLists [][]itemNeighbor
}

type itemNeighbor struct {
	action core.ActionID
	sim    float64
}

// NewItemKNN fits the item-item neighbourhoods (top `neighbors` per action;
// non-positive defaults to 20).
func NewItemKNN(in *Interactions, neighbors int) *ItemKNN {
	if neighbors <= 0 {
		neighbors = 20
	}
	k := &ItemKNN{in: in, neighbors: neighbors, simLists: make([][]itemNeighbor, in.NumActions())}
	for a := 0; a < in.NumActions(); a++ {
		k.simLists[a] = k.neighboursOf(core.ActionID(a))
	}
	return k
}

// neighboursOf computes the top-N most similar actions to a.
func (k *ItemKNN) neighboursOf(a core.ActionID) []itemNeighbor {
	ua := k.in.UsersOfAction(a)
	if len(ua) == 0 {
		return nil
	}
	// Candidate co-actions: everything performed by a's users.
	counts := make(map[core.ActionID]int)
	for _, u := range ua {
		for _, b := range k.in.User(int(u)) {
			if b != a {
				counts[b]++
			}
		}
	}
	out := make([]itemNeighbor, 0, len(counts))
	for b, co := range counts {
		union := len(ua) + k.in.ActionCount(b) - co
		if union == 0 {
			continue
		}
		out = append(out, itemNeighbor{action: b, sim: float64(co) / float64(union)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].sim != out[j].sim {
			return out[i].sim > out[j].sim
		}
		return out[i].action < out[j].action
	})
	if len(out) > k.neighbors {
		out = out[:k.neighbors]
	}
	return out
}

// Name implements strategy.Recommender.
func (k *ItemKNN) Name() string { return "cf-item-knn" }

// Recommend implements strategy.Recommender.
func (k *ItemKNN) Recommend(activity []core.ActionID, n int) []strategy.ScoredAction {
	if n == 0 {
		return nil
	}
	h := normalizeActivity(activity)
	if len(h) == 0 {
		return nil
	}
	scores := make(map[core.ActionID]float64)
	for _, a := range h {
		if int(a) >= len(k.simLists) {
			continue
		}
		for _, nb := range k.simLists[a] {
			if intset.Contains(h, nb.action) {
				continue
			}
			scores[nb.action] += nb.sim
		}
	}
	scored := make([]strategy.ScoredAction, 0, len(scores))
	for a, s := range scores {
		scored = append(scored, strategy.ScoredAction{Action: a, Score: s})
	}
	return strategy.TopK(scored, n)
}
