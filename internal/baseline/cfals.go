package baseline

import (
	"fmt"
	"math"

	"goalrec/internal/core"
	"goalrec/internal/intset"
	"goalrec/internal/linalg"
	"goalrec/internal/strategy"
	"goalrec/internal/xrand"
)

// ALSConfig parameterizes the matrix-factorization baseline.
type ALSConfig struct {
	// Factors is the latent dimensionality (default 16).
	Factors int
	// Iterations is the number of alternating sweeps (default 10).
	Iterations int
	// Lambda is the regularization weight; it is scaled per row by the
	// row's interaction count — the "weighted-λ-regularization" of ALS-WR
	// (default 0.05).
	Lambda float64
	// Alpha converts implicit feedback into confidence c = 1 + Alpha
	// (default 40, following Hu/Koren/Volinsky, the implicit formulation
	// Mahout's ALS uses for selection/non-selection data).
	Alpha float64
	// Seed drives factor initialization.
	Seed uint64
}

func (c *ALSConfig) fill() {
	if c.Factors <= 0 {
		c.Factors = 16
	}
	if c.Iterations <= 0 {
		c.Iterations = 10
	}
	if c.Lambda <= 0 {
		c.Lambda = 0.05
	}
	if c.Alpha <= 0 {
		c.Alpha = 40
	}
}

// ALS is the paper's "CF MF" comparator: alternating least squares with
// weighted-λ-regularization over the implicit user-action matrix. Query
// activities (which are generally not training users) are folded in by
// solving the user-factor normal equations for the query's action set, then
// every action is scored by the inner product of the folded user factor and
// its item factor.
type ALS struct {
	in   *Interactions
	cfg  ALSConfig
	item [][]float64 // item factors, numActions × Factors
	user [][]float64 // user factors, kept for loss reporting / tests
	gram *linalg.Matrix
}

// FitALS trains item and user factors on the interaction matrix. It returns
// an error only if the normal equations become singular, which the λ ridge
// prevents for any λ > 0.
func FitALS(in *Interactions, cfg ALSConfig) (*ALS, error) {
	cfg.fill()
	rng := xrand.New(cfg.Seed)
	f := cfg.Factors

	initFactors := func(n int) [][]float64 {
		m := make([][]float64, n)
		for i := range m {
			row := make([]float64, f)
			for j := range row {
				row[j] = 0.1 * rng.NormFloat64()
			}
			m[i] = row
		}
		return m
	}
	a := &ALS{
		in:   in,
		cfg:  cfg,
		item: initFactors(in.NumActions()),
		user: initFactors(in.NumUsers()),
	}

	for iter := 0; iter < cfg.Iterations; iter++ {
		if err := a.sweepUsers(); err != nil {
			return nil, fmt.Errorf("baseline: ALS user sweep %d: %w", iter, err)
		}
		if err := a.sweepItems(); err != nil {
			return nil, fmt.Errorf("baseline: ALS item sweep %d: %w", iter, err)
		}
	}
	a.gram = gramMatrix(a.item, f)
	return a, nil
}

// gramMatrix returns Σ v·vᵀ over the factor rows.
func gramMatrix(rows [][]float64, f int) *linalg.Matrix {
	g := linalg.NewMatrix(f)
	for _, v := range rows {
		g.AddOuter(v, 1)
	}
	return g
}

// solveImplicit computes the implicit-ALS closed form for one row:
//
//	x = (YᵀY + α Σ_{i∈obs} y_i y_iᵀ + λ·n·I)⁻¹ · (1+α) Σ_{i∈obs} y_i
//
// where Y are the opposite side's factors, obs the observed interactions and
// n = |obs| the ALS-WR weighting of λ.
func (a *ALS) solveImplicit(gram *linalg.Matrix, other [][]float64, obs []int32) ([]float64, error) {
	f := a.cfg.Factors
	m := gram.Clone()
	rhs := make([]float64, f)
	for _, i := range obs {
		y := other[i]
		m.AddOuter(y, a.cfg.Alpha)
		for j, v := range y {
			rhs[j] += (1 + a.cfg.Alpha) * v
		}
	}
	m.AddDiagonal(a.cfg.Lambda * float64(len(obs)+1))
	return linalg.SolveSPD(m, rhs)
}

func (a *ALS) sweepUsers() error {
	gram := gramMatrix(a.item, a.cfg.Factors)
	for u := 0; u < a.in.NumUsers(); u++ {
		obs := actionsToInts(a.in.User(u))
		x, err := a.solveImplicit(gram, a.item, obs)
		if err != nil {
			return err
		}
		a.user[u] = x
	}
	return nil
}

func (a *ALS) sweepItems() error {
	gram := gramMatrix(a.user, a.cfg.Factors)
	for i := 0; i < a.in.NumActions(); i++ {
		obs := a.in.UsersOfAction(core.ActionID(i))
		x, err := a.solveImplicit(gram, a.user, obs)
		if err != nil {
			return err
		}
		a.item[i] = x
	}
	return nil
}

func actionsToInts(h []core.ActionID) []int32 {
	out := make([]int32, len(h))
	for i, a := range h {
		out[i] = int32(a)
	}
	return out
}

// Name implements strategy.Recommender.
func (a *ALS) Name() string { return "cf-mf" }

// FoldIn solves the user factor for an arbitrary activity without touching
// the trained item factors.
func (a *ALS) FoldIn(activity []core.ActionID) ([]float64, error) {
	h := normalizeActivity(activity)
	obs := make([]int32, 0, len(h))
	for _, act := range h {
		if int(act) < a.in.NumActions() {
			obs = append(obs, int32(act))
		}
	}
	return a.solveImplicit(a.gram, a.item, obs)
}

// Recommend implements strategy.Recommender.
func (a *ALS) Recommend(activity []core.ActionID, n int) []strategy.ScoredAction {
	if n == 0 {
		return nil
	}
	h := normalizeActivity(activity)
	if len(h) == 0 {
		return nil
	}
	uf, err := a.FoldIn(h)
	if err != nil {
		return nil
	}
	scored := make([]strategy.ScoredAction, 0, a.in.NumActions())
	for i := 0; i < a.in.NumActions(); i++ {
		act := core.ActionID(i)
		if intset.Contains(h, act) {
			continue
		}
		if a.in.ActionCount(act) == 0 {
			continue // never observed; its factor is pure regularization noise
		}
		scored = append(scored, strategy.ScoredAction{Action: act, Score: linalg.Dot(uf, a.item[i])})
	}
	return strategy.TopK(scored, n)
}

// Loss returns the implicit-feedback objective over the training matrix:
// Σ_u Σ_i c_ui (p_ui − x_u·y_i)² + λ Σ n|x|². Tests use it to assert that
// alternating sweeps do not diverge.
func (a *ALS) Loss() float64 {
	loss := 0.0
	for u := 0; u < a.in.NumUsers(); u++ {
		h := a.in.User(u)
		for i := 0; i < a.in.NumActions(); i++ {
			pred := linalg.Dot(a.user[u], a.item[i])
			if intset.Contains(h, core.ActionID(i)) {
				loss += (1 + a.cfg.Alpha) * (1 - pred) * (1 - pred)
			} else {
				loss += pred * pred
			}
		}
		loss += a.cfg.Lambda * float64(len(h)+1) * linalg.Dot(a.user[u], a.user[u])
	}
	for i := 0; i < a.in.NumActions(); i++ {
		n := a.in.ActionCount(core.ActionID(i))
		loss += a.cfg.Lambda * float64(n+1) * linalg.Dot(a.item[i], a.item[i])
	}
	if math.IsNaN(loss) {
		return math.Inf(1)
	}
	return loss
}
