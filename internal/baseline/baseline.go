// Package baseline implements the comparison recommenders of the paper's
// evaluation (Section 6): a user-based nearest-neighbour collaborative
// filter with Tanimoto neighbourhoods (CF KNN), an ALS matrix-factorization
// collaborative filter with weighted-λ-regularization (CF MF, the Mahout
// ALS-WR configuration), a content-based recommender over domain features,
// and two additional comparators discussed in the paper's related work:
// plain popularity and association rules.
//
// Every baseline is fit on a set of historical user activities (implicit
// feedback) and then ranks candidate actions for a query activity through
// the same strategy.Recommender interface the goal-based methods implement.
package baseline

import (
	"goalrec/internal/core"
	"goalrec/internal/intset"
)

// Interactions is the implicit-feedback user-action matrix: one sorted
// action set per historical user. It also carries the inverted action→users
// index the neighbourhood methods need. Interactions is immutable after
// construction and safe for concurrent readers.
type Interactions struct {
	users      [][]core.ActionID // sorted per user
	numActions int

	actOff   []int32 // CSR offsets into actUsers, len numActions+1
	actUsers []int32 // user ids per action, ascending
}

// NewInteractions builds the matrix from raw user activities. Activities are
// normalized (sorted, deduplicated); empty activities are kept so user ids
// stay aligned with the caller's numbering. numActions fixes the action id
// space; actions outside [0, numActions) are dropped.
func NewInteractions(activities [][]core.ActionID, numActions int) *Interactions {
	in := &Interactions{
		users:      make([][]core.ActionID, len(activities)),
		numActions: numActions,
	}
	counts := make([]int32, numActions+1)
	for u, raw := range activities {
		h := intset.FromUnsorted(intset.Clone(raw))
		// Drop out-of-range ids.
		filtered := h[:0]
		for _, a := range h {
			if a >= 0 && int(a) < numActions {
				filtered = append(filtered, a)
			}
		}
		in.users[u] = filtered
		for _, a := range filtered {
			counts[a+1]++
		}
	}
	for i := 1; i <= numActions; i++ {
		counts[i] += counts[i-1]
	}
	in.actOff = counts
	total := counts[numActions]
	in.actUsers = make([]int32, total)
	cursor := append([]int32(nil), counts[:numActions]...)
	for u, h := range in.users {
		for _, a := range h {
			in.actUsers[cursor[a]] = int32(u)
			cursor[a]++
		}
	}
	return in
}

// NumUsers returns the number of historical users.
func (in *Interactions) NumUsers() int { return len(in.users) }

// NumActions returns the size of the action id space.
func (in *Interactions) NumActions() int { return in.numActions }

// User returns user u's sorted action set. The slice is a view and must not
// be modified.
func (in *Interactions) User(u int) []core.ActionID { return in.users[u] }

// UsersOfAction returns the ascending user ids who performed action a. The
// slice is a view and must not be modified.
func (in *Interactions) UsersOfAction(a core.ActionID) []int32 {
	if a < 0 || int(a) >= in.numActions {
		return nil
	}
	return in.actUsers[in.actOff[a]:in.actOff[a+1]]
}

// ActionCount returns the number of users who performed a: the popularity
// statistic of the paper's Table 3 analysis.
func (in *Interactions) ActionCount(a core.ActionID) int {
	return len(in.UsersOfAction(a))
}

// normalizeActivity sorts and deduplicates a query activity.
func normalizeActivity(activity []core.ActionID) []core.ActionID {
	return intset.FromUnsorted(intset.Clone(activity))
}
