package baseline

import (
	"math"
	"reflect"
	"testing"

	"goalrec/internal/core"
	"goalrec/internal/strategy"
)

func seqs(v ...[]core.ActionID) [][]core.ActionID { return v }

func TestMarkovTransitions(t *testing.T) {
	m := NewMarkov(seqs(
		acts(0, 1, 2),
		acts(0, 1, 3),
		acts(0, 2),
	), 5, 3)
	if m.Name() != "markov" {
		t.Errorf("Name = %q", m.Name())
	}
	// count(0→1) = 2, count(0→2) = 1, rowTotal(0) = 3.
	top := m.TopSuccessors(0, 10)
	want := []strategy.ScoredAction{{Action: 1, Score: 2}, {Action: 2, Score: 1}}
	if !reflect.DeepEqual(top, want) {
		t.Errorf("TopSuccessors(0) = %v, want %v", top, want)
	}
	// Laplace smoothing: P(1|0) = (2+1)/(3+5).
	if got := m.TransitionProb(0, 1); math.Abs(got-3.0/8.0) > 1e-12 {
		t.Errorf("P(1|0) = %v, want 3/8", got)
	}
	// Unseen transition still gets smoothed mass.
	if got := m.TransitionProb(0, 4); math.Abs(got-1.0/8.0) > 1e-12 {
		t.Errorf("P(4|0) = %v, want 1/8", got)
	}
	if got := m.TransitionProb(99, 0); got != 0 {
		t.Errorf("P from out-of-range = %v", got)
	}
}

func TestMarkovIgnoresInvalidPairs(t *testing.T) {
	m := NewMarkov(seqs(acts(0, 0, 1), acts(7, 0)), 3, 3)
	// Self-transition 0→0 and out-of-range 7→0 are dropped; only 0→1 counts.
	if m.rowTotal[0] != 1 {
		t.Errorf("rowTotal(0) = %d, want 1", m.rowTotal[0])
	}
}

func TestMarkovRecommend(t *testing.T) {
	m := NewMarkov(seqs(
		acts(0, 1),
		acts(0, 1),
		acts(0, 2),
		acts(1, 3),
	), 5, 2)
	got := m.Recommend(acts(0), 3)
	if len(got) == 0 {
		t.Fatal("no recommendations")
	}
	if got[0].Action != 1 {
		t.Errorf("top successor of 0 = %v, want 1", got[0])
	}
	// The query's own actions are never recommended.
	got = m.Recommend(acts(0, 1), 5)
	for _, s := range got {
		if s.Action == 0 || s.Action == 1 {
			t.Errorf("query action recommended: %v", s)
		}
	}
	// Recency: after (2, 0) the successors of 0 outweigh those of 2.
	recent := m.Recommend(acts(2, 0), 5)
	if len(recent) == 0 || recent[0].Action != 1 {
		t.Errorf("recency weighting broken: %v", recent)
	}
}

func TestMarkovEmptyCases(t *testing.T) {
	m := NewMarkov(nil, 4, 0)
	if got := m.Recommend(acts(0), 5); got != nil {
		t.Errorf("untrained model produced %v", got)
	}
	if got := m.Recommend(nil, 5); got != nil {
		t.Errorf("empty query produced %v", got)
	}
	if got := m.Recommend(acts(0), 0); got != nil {
		t.Errorf("k=0 produced %v", got)
	}
	if got := m.TopSuccessors(9, 3); got != nil {
		t.Errorf("out-of-range successors = %v", got)
	}
}
