package baseline

import (
	"math"

	"goalrec/internal/core"
	"goalrec/internal/intset"
	"goalrec/internal/strategy"
	"goalrec/internal/xrand"
)

// BPRConfig sizes the Bayesian Personalized Ranking baseline.
type BPRConfig struct {
	// Factors is the latent dimensionality (default 16).
	Factors int
	// Epochs is the number of SGD passes, each sampling one (user,
	// positive, negative) triple per observed interaction (default 20).
	Epochs int
	// LearningRate is the SGD step size (default 0.05).
	LearningRate float64
	// Lambda is the L2 regularization weight (default 0.01).
	Lambda float64
	// Seed drives initialization and triple sampling.
	Seed uint64
}

func (c *BPRConfig) fill() {
	if c.Factors <= 0 {
		c.Factors = 16
	}
	if c.Epochs <= 0 {
		c.Epochs = 20
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.05
	}
	if c.Lambda <= 0 {
		c.Lambda = 0.01
	}
}

// BPR is Bayesian Personalized Ranking (Rendle et al.): matrix factorization
// trained with SGD on a pairwise ranking objective — observed actions should
// outscore unobserved ones. It rounds out the collaborative family next to
// the ALS-WR pointwise model. Query activities fold in as the mean of their
// actions' item factors, so candidates score by latent co-consumption
// similarity.
type BPR struct {
	cfg  BPRConfig
	in   *Interactions
	user [][]float64
	item [][]float64
}

// FitBPR trains the model on the interaction matrix.
func FitBPR(in *Interactions, cfg BPRConfig) *BPR {
	cfg.fill()
	rng := xrand.New(cfg.Seed)
	f := cfg.Factors

	initRows := func(n int) [][]float64 {
		rows := make([][]float64, n)
		for i := range rows {
			row := make([]float64, f)
			for j := range row {
				row[j] = 0.1 * rng.NormFloat64()
			}
			rows[i] = row
		}
		return rows
	}
	b := &BPR{
		cfg:  cfg,
		in:   in,
		user: initRows(in.NumUsers()),
		item: initRows(in.NumActions()),
	}

	// Users with at least one interaction, for sampling.
	var active []int
	total := 0
	for u := 0; u < in.NumUsers(); u++ {
		if n := len(in.User(u)); n > 0 {
			active = append(active, u)
			total += n
		}
	}
	if len(active) == 0 || in.NumActions() < 2 {
		return b
	}

	lr, reg := cfg.LearningRate, cfg.Lambda
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for s := 0; s < total; s++ {
			u := active[rng.Intn(len(active))]
			pos := in.User(u)
			i := pos[rng.Intn(len(pos))]
			// Rejection-sample a negative action.
			var j core.ActionID
			for tries := 0; ; tries++ {
				j = core.ActionID(rng.Intn(in.NumActions()))
				if !intset.Contains(pos, j) {
					break
				}
				if tries > 64 {
					j = -1
					break
				}
			}
			if j < 0 {
				continue
			}
			xu, xi, xj := b.user[u], b.item[i], b.item[j]
			diff := dot(xu, xi) - dot(xu, xj)
			// σ(−diff): the gradient weight of the BPR log-likelihood.
			g := 1 / (1 + math.Exp(diff))
			for k := 0; k < f; k++ {
				du := g*(xi[k]-xj[k]) - reg*xu[k]
				di := g*xu[k] - reg*xi[k]
				dj := -g*xu[k] - reg*xj[k]
				xu[k] += lr * du
				xi[k] += lr * di
				xj[k] += lr * dj
			}
		}
	}
	return b
}

func dot(a, b []float64) float64 {
	s := 0.0
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Name implements strategy.Recommender.
func (b *BPR) Name() string { return "cf-bpr" }

// Recommend implements strategy.Recommender: the query folds in as the mean
// of its actions' item factors.
func (b *BPR) Recommend(activity []core.ActionID, n int) []strategy.ScoredAction {
	if n == 0 {
		return nil
	}
	h := normalizeActivity(activity)
	if len(h) == 0 {
		return nil
	}
	f := b.cfg.Factors
	profile := make([]float64, f)
	used := 0
	for _, a := range h {
		if int(a) >= len(b.item) {
			continue
		}
		for k, v := range b.item[a] {
			profile[k] += v
		}
		used++
	}
	if used == 0 {
		return nil
	}
	for k := range profile {
		profile[k] /= float64(used)
	}
	scored := make([]strategy.ScoredAction, 0, b.in.NumActions())
	for i := 0; i < b.in.NumActions(); i++ {
		a := core.ActionID(i)
		if intset.Contains(h, a) || b.in.ActionCount(a) == 0 {
			continue
		}
		scored = append(scored, strategy.ScoredAction{Action: a, Score: dot(profile, b.item[i])})
	}
	return strategy.TopK(scored, n)
}

// AUC estimates the pairwise ranking accuracy on the training data: the
// probability that a random observed action outscores a random unobserved
// one for the same user. Tests use it to assert learning happened.
func (b *BPR) AUC(samples int, seed uint64) float64 {
	rng := xrand.New(seed)
	var active []int
	for u := 0; u < b.in.NumUsers(); u++ {
		if len(b.in.User(u)) > 0 && len(b.in.User(u)) < b.in.NumActions() {
			active = append(active, u)
		}
	}
	if len(active) == 0 || samples <= 0 {
		return 0.5
	}
	wins, n := 0, 0
	for s := 0; s < samples; s++ {
		u := active[rng.Intn(len(active))]
		pos := b.in.User(u)
		i := pos[rng.Intn(len(pos))]
		var j core.ActionID
		for tries := 0; ; tries++ {
			j = core.ActionID(rng.Intn(b.in.NumActions()))
			if !intset.Contains(pos, j) {
				break
			}
			if tries > 64 {
				j = -1
				break
			}
		}
		if j < 0 {
			continue
		}
		if dot(b.user[u], b.item[i]) > dot(b.user[u], b.item[j]) {
			wins++
		}
		n++
	}
	if n == 0 {
		return 0.5
	}
	return float64(wins) / float64(n)
}
