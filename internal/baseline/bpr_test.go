package baseline

import (
	"reflect"
	"testing"

	"goalrec/internal/core"
	"goalrec/internal/xrand"
)

// structuredInteractions builds a matrix with two disjoint taste groups:
// users 0..9 consume actions 0..4, users 10..19 consume actions 5..9.
func structuredInteractions() *Interactions {
	rng := xrand.New(42)
	users := make([][]core.ActionID, 20)
	for u := 0; u < 10; u++ {
		for _, idx := range rng.SampleInt32(5, 3) {
			users[u] = append(users[u], core.ActionID(idx))
		}
	}
	for u := 10; u < 20; u++ {
		for _, idx := range rng.SampleInt32(5, 3) {
			users[u] = append(users[u], core.ActionID(5+idx))
		}
	}
	return NewInteractions(users, 10)
}

func TestBPRLearnsStructure(t *testing.T) {
	in := structuredInteractions()
	b := FitBPR(in, BPRConfig{Factors: 8, Epochs: 30, Seed: 1})
	if b.Name() != "cf-bpr" {
		t.Errorf("Name = %q", b.Name())
	}
	// The trained model must rank observed far above unobserved.
	if auc := b.AUC(2000, 2); auc < 0.8 {
		t.Errorf("AUC = %v, want > 0.8 after training", auc)
	}
	// A group-A query must prefer group-A actions.
	got := b.Recommend([]core.ActionID{0, 1}, 3)
	if len(got) == 0 {
		t.Fatal("no recommendations")
	}
	for _, s := range got {
		if s.Action >= 5 {
			t.Errorf("cross-group recommendation %v in top-3", s)
		}
	}
}

func TestBPRUntrainedAUC(t *testing.T) {
	in := structuredInteractions()
	b := FitBPR(in, BPRConfig{Factors: 8, Epochs: 1, LearningRate: 1e-9, Seed: 3})
	auc := b.AUC(2000, 4)
	if auc < 0.3 || auc > 0.7 {
		t.Errorf("near-untrained AUC = %v, want ≈0.5", auc)
	}
}

func TestBPRDeterministic(t *testing.T) {
	in := structuredInteractions()
	cfg := BPRConfig{Factors: 4, Epochs: 5, Seed: 9}
	r1 := FitBPR(in, cfg).Recommend([]core.ActionID{0}, 5)
	r2 := FitBPR(in, cfg).Recommend([]core.ActionID{0}, 5)
	if !reflect.DeepEqual(r1, r2) {
		t.Error("same seed produced different models")
	}
}

func TestBPREmptyCases(t *testing.T) {
	empty := NewInteractions(nil, 5)
	b := FitBPR(empty, BPRConfig{Factors: 4, Epochs: 2, Seed: 1})
	if got := b.Recommend([]core.ActionID{0}, 5); got != nil {
		t.Errorf("empty-matrix model produced %v", got)
	}
	if auc := b.AUC(100, 1); auc != 0.5 {
		t.Errorf("empty-matrix AUC = %v, want 0.5", auc)
	}

	in := structuredInteractions()
	trained := FitBPR(in, BPRConfig{Factors: 4, Epochs: 2, Seed: 1})
	if got := trained.Recommend(nil, 5); got != nil {
		t.Errorf("empty query produced %v", got)
	}
	if got := trained.Recommend([]core.ActionID{0}, 0); got != nil {
		t.Errorf("k=0 produced %v", got)
	}
	if got := trained.Recommend([]core.ActionID{99}, 5); got != nil {
		t.Errorf("out-of-range query produced %v", got)
	}
	// Query actions never recommended.
	for _, s := range trained.Recommend([]core.ActionID{0, 1, 2}, 10) {
		if s.Action <= 2 {
			t.Errorf("query action recommended: %v", s)
		}
	}
}
