package baseline

import (
	"goalrec/internal/core"
	"goalrec/internal/intset"
	"goalrec/internal/strategy"
)

// Popularity recommends the globally most frequent actions the user has not
// performed. It is the degenerate collaborative method the paper's
// popularity-correlation analysis (Table 3) contrasts everything against,
// and a useful sanity floor in the experiment harness.
type Popularity struct {
	in *Interactions
}

// NewPopularity returns a popularity recommender over the interactions.
func NewPopularity(in *Interactions) *Popularity {
	return &Popularity{in: in}
}

// Name implements strategy.Recommender.
func (p *Popularity) Name() string { return "popularity" }

// Recommend implements strategy.Recommender.
func (p *Popularity) Recommend(activity []core.ActionID, n int) []strategy.ScoredAction {
	if n == 0 {
		return nil
	}
	h := normalizeActivity(activity)
	scored := make([]strategy.ScoredAction, 0, p.in.NumActions())
	for i := 0; i < p.in.NumActions(); i++ {
		a := core.ActionID(i)
		if intset.Contains(h, a) {
			continue
		}
		if c := p.in.ActionCount(a); c > 0 {
			scored = append(scored, strategy.ScoredAction{Action: a, Score: float64(c)})
		}
	}
	return strategy.TopK(scored, n)
}
