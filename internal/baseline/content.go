package baseline

import (
	"goalrec/internal/core"
	"goalrec/internal/intset"
	"goalrec/internal/strategy"
	"goalrec/internal/vectorspace"
)

// FeatureID identifies one domain-specific feature (a food-product
// (sub)category in the paper's foodmarket setup).
type FeatureID = int32

// Features maps actions to their domain-specific feature vectors. For the
// paper's foodmarket scenario each product carries exactly one of the 128
// (sub)category features, but the structure supports arbitrary weighted
// feature sets.
type Features struct {
	vecs []vectorspace.Vector // indexed by action id

	featOff  []int32 // CSR offsets into featActs
	featActs []core.ActionID
	numFeats int
}

// NewFeatures builds the feature table from per-action feature id lists.
// featureOf[a] lists action a's features; numFeatures fixes the feature
// space.
func NewFeatures(featureOf [][]FeatureID, numFeatures int) *Features {
	f := &Features{
		vecs:     make([]vectorspace.Vector, len(featureOf)),
		numFeats: numFeatures,
	}
	counts := make([]int32, numFeatures+1)
	for a, feats := range featureOf {
		m := make(map[int32]float64, len(feats))
		for _, ft := range feats {
			if ft >= 0 && int(ft) < numFeatures {
				m[ft] = 1
			}
		}
		f.vecs[a] = vectorspace.FromMap(m)
		f.vecs[a].Items(func(id int32, _ float64) { counts[id+1]++ })
	}
	for i := 1; i <= numFeatures; i++ {
		counts[i] += counts[i-1]
	}
	f.featOff = counts
	f.featActs = make([]core.ActionID, counts[numFeatures])
	cursor := append([]int32(nil), counts[:numFeatures]...)
	for a := range featureOf {
		f.vecs[a].Items(func(id int32, _ float64) {
			f.featActs[cursor[id]] = core.ActionID(a)
			cursor[id]++
		})
	}
	return f
}

// NumActions returns the number of actions with feature rows.
func (f *Features) NumActions() int { return len(f.vecs) }

// NumFeatures returns the size of the feature space.
func (f *Features) NumFeatures() int { return f.numFeats }

// Vector returns action a's feature vector (the zero vector for unknown
// ids).
func (f *Features) Vector(a core.ActionID) vectorspace.Vector {
	if a < 0 || int(a) >= len(f.vecs) {
		return vectorspace.Vector{}
	}
	return f.vecs[a]
}

// ActionsWithFeature returns the actions carrying feature ft, ascending.
func (f *Features) ActionsWithFeature(ft FeatureID) []core.ActionID {
	if ft < 0 || int(ft) >= f.numFeats {
		return nil
	}
	return f.featActs[f.featOff[ft]:f.featOff[ft+1]]
}

// Similarity returns the cosine similarity of two actions' feature vectors —
// the pairwise measure behind the paper's Table 5.
func (f *Features) Similarity(a, b core.ActionID) float64 {
	return vectorspace.CosineSimilarity(f.Vector(a), f.Vector(b))
}

// Content is the paper's content-based comparator: the user profile is the
// sum of the feature vectors of the activity's actions, and candidates are
// ranked by cosine similarity between their feature vector and the profile.
type Content struct {
	feats *Features
}

// NewContent returns a content-based recommender over the feature table.
func NewContent(feats *Features) *Content {
	return &Content{feats: feats}
}

// Name implements strategy.Recommender.
func (c *Content) Name() string { return "content" }

// Recommend implements strategy.Recommender.
func (c *Content) Recommend(activity []core.ActionID, n int) []strategy.ScoredAction {
	if n == 0 {
		return nil
	}
	h := normalizeActivity(activity)
	if len(h) == 0 {
		return nil
	}
	profile := vectorspace.Vector{}
	for _, a := range h {
		profile = profile.Add(c.feats.Vector(a))
	}
	if profile.IsZero() {
		return nil
	}
	// Only actions sharing at least one profile feature can score non-zero.
	seen := make(map[core.ActionID]struct{})
	var scored []strategy.ScoredAction
	profile.Items(func(ft int32, _ float64) {
		for _, a := range c.feats.ActionsWithFeature(ft) {
			if intset.Contains(h, a) {
				continue
			}
			if _, dup := seen[a]; dup {
				continue
			}
			seen[a] = struct{}{}
			sim := vectorspace.CosineSimilarity(profile, c.feats.Vector(a))
			scored = append(scored, strategy.ScoredAction{Action: a, Score: sim})
		}
	})
	return strategy.TopK(scored, n)
}
