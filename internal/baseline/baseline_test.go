package baseline

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"goalrec/internal/core"
	"goalrec/internal/intset"
	"goalrec/internal/strategy"
)

func acts(v ...core.ActionID) []core.ActionID { return v }

// smallInteractions is a 5-user, 6-action matrix used across baseline
// tests:
//
//	u0: {0, 1, 2}
//	u1: {0, 1, 3}
//	u2: {0, 4}
//	u3: {5}
//	u4: {1, 2, 3}
func smallInteractions() *Interactions {
	return NewInteractions([][]core.ActionID{
		acts(0, 1, 2),
		acts(0, 1, 3),
		acts(0, 4),
		acts(5),
		acts(1, 2, 3),
	}, 6)
}

func TestInteractionsIndexes(t *testing.T) {
	in := smallInteractions()
	if in.NumUsers() != 5 || in.NumActions() != 6 {
		t.Fatalf("dimensions: %d users, %d actions", in.NumUsers(), in.NumActions())
	}
	if got := in.UsersOfAction(0); !reflect.DeepEqual(got, []int32{0, 1, 2}) {
		t.Errorf("UsersOfAction(0) = %v", got)
	}
	if got := in.UsersOfAction(5); !reflect.DeepEqual(got, []int32{3}) {
		t.Errorf("UsersOfAction(5) = %v", got)
	}
	if in.ActionCount(1) != 3 {
		t.Errorf("ActionCount(1) = %d, want 3", in.ActionCount(1))
	}
	if got := in.UsersOfAction(99); got != nil {
		t.Errorf("out-of-range action returned %v", got)
	}
	if got := in.UsersOfAction(-1); got != nil {
		t.Errorf("negative action returned %v", got)
	}
}

func TestInteractionsNormalizesAndFilters(t *testing.T) {
	in := NewInteractions([][]core.ActionID{
		acts(3, 1, 3, 99, -1), // dup, out of range
		nil,                   // empty user preserved
	}, 5)
	if got := in.User(0); !reflect.DeepEqual(got, acts(1, 3)) {
		t.Errorf("User(0) = %v, want [1 3]", got)
	}
	if got := in.User(1); len(got) != 0 {
		t.Errorf("User(1) = %v, want empty", got)
	}
	if in.NumUsers() != 2 {
		t.Errorf("NumUsers = %d, want 2", in.NumUsers())
	}
}

func TestKNNBasic(t *testing.T) {
	in := smallInteractions()
	knn := NewKNN(in, 3)
	if knn.Name() != "cf-knn" {
		t.Errorf("Name = %q", knn.Name())
	}

	// Query {0,1}: most similar users are u0 and u1 (Jaccard 2/3), then u4
	// (1/4), u2 (1/3). Top-3 = u0, u1, u2 by sim (2/3, 2/3, 1/3).
	// Votes: u0 → a2 (2/3); u1 → a3 (2/3); u2 → a4 (1/3).
	got := knn.Recommend(acts(0, 1), 10)
	want := []core.ActionID{2, 3, 4}
	if !reflect.DeepEqual(strategy.Actions(got), want) {
		t.Errorf("Recommend = %v, want %v", strategy.Actions(got), want)
	}
	// No recommendation may be part of the query.
	for _, s := range got {
		if s.Action == 0 || s.Action == 1 {
			t.Errorf("query action recommended: %v", s)
		}
	}
}

func TestKNNNeighborLimit(t *testing.T) {
	in := smallInteractions()
	// With a single neighbour, only u0's actions can be recommended
	// (u0 ties with u1 at 2/3 and wins the deterministic tie-break).
	knn := NewKNN(in, 1)
	got := strategy.Actions(knn.Recommend(acts(0, 1), 10))
	if !reflect.DeepEqual(got, acts(2)) {
		t.Errorf("Recommend = %v, want [2]", got)
	}
}

func TestKNNEmptyCases(t *testing.T) {
	in := smallInteractions()
	knn := NewKNN(in, 0) // default neighbours
	if got := knn.Recommend(nil, 5); got != nil {
		t.Errorf("empty query produced %v", got)
	}
	if got := knn.Recommend(acts(0), 0); got != nil {
		t.Errorf("k=0 produced %v", got)
	}
	// An action nobody performed yields no neighbours.
	in2 := NewInteractions([][]core.ActionID{acts(1)}, 10)
	if got := NewKNN(in2, 5).Recommend(acts(7), 5); got != nil {
		t.Errorf("isolated query produced %v", got)
	}
}

func TestPopularity(t *testing.T) {
	in := smallInteractions()
	p := NewPopularity(in)
	if p.Name() != "popularity" {
		t.Errorf("Name = %q", p.Name())
	}
	// Counts: a0=3, a1=3, a2=2, a3=2, a4=1, a5=1.
	got := p.Recommend(acts(0), 3)
	want := []core.ActionID{1, 2, 3}
	if !reflect.DeepEqual(strategy.Actions(got), want) {
		t.Errorf("Recommend = %v, want %v", strategy.Actions(got), want)
	}
	if got[0].Score != 3 {
		t.Errorf("top score = %v, want 3", got[0].Score)
	}
}

func TestAssocRules(t *testing.T) {
	in := smallInteractions()
	ar := NewAssocRules(in, 2)
	if ar.Name() != "assoc-rules" {
		t.Errorf("Name = %q", ar.Name())
	}
	// count(0,1) = 2 (u0, u1) meets support; count(0,4) = 1 pruned.
	if got := ar.Confidence(0, 1); got != 2.0/3.0 {
		t.Errorf("conf(0→1) = %v, want 2/3", got)
	}
	if got := ar.Confidence(0, 4); got != 0 {
		t.Errorf("conf(0→4) = %v, want 0 (below support)", got)
	}
	if got := ar.Confidence(99, 1); got != 0 {
		t.Errorf("conf out of range = %v", got)
	}

	// Query {0}: rules 0→1 (2/3), 0→2 (pruned? count(0,2)=1 only u0 → pruned),
	// 0→3 (count 1, pruned). So only a1 recommended.
	got := strategy.Actions(ar.Recommend(acts(0), 5))
	if !reflect.DeepEqual(got, acts(1)) {
		t.Errorf("Recommend = %v, want [1]", got)
	}
	if r := ar.Recommend(nil, 5); r != nil {
		t.Errorf("empty query produced %v", r)
	}
}

func TestContentFeaturesAndSimilarity(t *testing.T) {
	// 4 actions, 3 features. a0, a1 share feature 0; a2 has feature 1;
	// a3 has features 1 and 2.
	feats := NewFeatures([][]FeatureID{
		{0}, {0}, {1}, {1, 2},
	}, 3)
	if feats.NumActions() != 4 || feats.NumFeatures() != 3 {
		t.Fatalf("dimensions wrong: %d, %d", feats.NumActions(), feats.NumFeatures())
	}
	if got := feats.ActionsWithFeature(0); !reflect.DeepEqual(got, acts(0, 1)) {
		t.Errorf("ActionsWithFeature(0) = %v", got)
	}
	if got := feats.Similarity(0, 1); got != 1 {
		t.Errorf("sim(a0,a1) = %v, want 1", got)
	}
	if got := feats.Similarity(0, 2); got != 0 {
		t.Errorf("sim(a0,a2) = %v, want 0", got)
	}
	if feats.Vector(99).Len() != 0 {
		t.Error("unknown action should have zero vector")
	}

	if got := feats.ActionsWithFeature(-1); got != nil {
		t.Errorf("negative feature = %v", got)
	}
	if got := feats.ActionsWithFeature(99); got != nil {
		t.Errorf("out-of-range feature = %v", got)
	}

	c := NewContent(feats)
	if c.Name() != "content" {
		t.Errorf("Name = %q", c.Name())
	}
	// Profile of {a2} = feature 1 → candidates a3 (sim 1/√2).
	got := c.Recommend(acts(2), 5)
	if len(got) != 1 || got[0].Action != 3 {
		t.Fatalf("Recommend = %v, want only a3", got)
	}
	// Actions with disjoint features never appear.
	for _, s := range c.Recommend(acts(0), 5) {
		if s.Action == 2 || s.Action == 3 {
			t.Errorf("feature-disjoint action recommended: %v", s)
		}
	}
	if got := c.Recommend(nil, 5); got != nil {
		t.Errorf("empty query produced %v", got)
	}
	if got := c.Recommend(acts(99), 5); got != nil {
		t.Errorf("featureless query produced %v", got)
	}
}

func TestALSTrainsAndRecommends(t *testing.T) {
	in := smallInteractions()
	als, err := FitALS(in, ALSConfig{Factors: 8, Iterations: 6, Lambda: 0.1, Alpha: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if als.Name() != "cf-mf" {
		t.Errorf("Name = %q", als.Name())
	}
	got := als.Recommend(acts(0, 1), 3)
	if len(got) == 0 {
		t.Fatal("no recommendations")
	}
	for _, s := range got {
		if s.Action == 0 || s.Action == 1 {
			t.Errorf("query action recommended: %v", s)
		}
	}
	// The co-consumption structure puts a2/a3 (bought with 0 and 1) above the
	// isolated a5.
	top := got[0].Action
	if top != 2 && top != 3 {
		t.Errorf("top recommendation = %v, want a2 or a3", top)
	}
	if r := als.Recommend(nil, 3); r != nil {
		t.Errorf("empty query produced %v", r)
	}
	if r := als.Recommend(acts(0), 0); r != nil {
		t.Errorf("k=0 produced %v", r)
	}
}

func TestALSDefaults(t *testing.T) {
	in := NewInteractions([][]core.ActionID{acts(0, 1), acts(1, 2)}, 3)
	als, err := FitALS(in, ALSConfig{}) // all defaults
	if err != nil {
		t.Fatal(err)
	}
	if got := als.Recommend(acts(0), 2); len(got) == 0 {
		t.Error("default-config ALS produced nothing")
	}
}

func TestALSLossDecreases(t *testing.T) {
	in := smallInteractions()
	short, err := FitALS(in, ALSConfig{Factors: 4, Iterations: 1, Lambda: 0.1, Alpha: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	long, err := FitALS(in, ALSConfig{Factors: 4, Iterations: 12, Lambda: 0.1, Alpha: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if long.Loss() > short.Loss()*1.0001 {
		t.Errorf("loss grew with iterations: %v -> %v", short.Loss(), long.Loss())
	}
}

func TestALSDeterministic(t *testing.T) {
	in := smallInteractions()
	cfg := ALSConfig{Factors: 4, Iterations: 3, Lambda: 0.1, Alpha: 10, Seed: 7}
	a1, err := FitALS(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := FitALS(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1 := a1.Recommend(acts(0, 1), 4)
	r2 := a2.Recommend(acts(0, 1), 4)
	if !reflect.DeepEqual(r1, r2) {
		t.Errorf("same seed produced different lists:\n%v\n%v", r1, r2)
	}
}

// TestBaselineInvariants checks the shared recommender contract on random
// interaction matrices for all baselines.
func TestBaselineInvariants(t *testing.T) {
	mk := map[string]func(*Interactions) strategy.Recommender{
		"knn":   func(in *Interactions) strategy.Recommender { return NewKNN(in, 5) },
		"pop":   func(in *Interactions) strategy.Recommender { return NewPopularity(in) },
		"assoc": func(in *Interactions) strategy.Recommender { return NewAssocRules(in, 1) },
	}
	for name, f := range mk {
		f := f
		t.Run(name, func(t *testing.T) {
			cfg := &quick.Config{
				MaxCount: 40,
				Values: func(v []reflect.Value, r *rand.Rand) {
					users := make([][]core.ActionID, 2+r.Intn(20))
					for u := range users {
						h := make([]core.ActionID, 1+r.Intn(6))
						for i := range h {
							h[i] = core.ActionID(r.Intn(15))
						}
						users[u] = h
					}
					v[0] = reflect.ValueOf(NewInteractions(users, 15))
					v[1] = reflect.ValueOf(users[r.Intn(len(users))])
					v[2] = reflect.ValueOf(1 + r.Intn(8))
				},
			}
			prop := func(in *Interactions, q []core.ActionID, k int) bool {
				rec := f(in)
				got := rec.Recommend(q, k)
				if len(got) > k {
					return false
				}
				h := intset.FromUnsorted(intset.Clone(q))
				seen := map[core.ActionID]bool{}
				for _, s := range got {
					if intset.Contains(h, s.Action) || seen[s.Action] {
						return false
					}
					seen[s.Action] = true
				}
				return reflect.DeepEqual(got, rec.Recommend(q, k))
			}
			if err := quick.Check(prop, cfg); err != nil {
				t.Error(err)
			}
		})
	}
}
