package baseline

import (
	"sort"

	"goalrec/internal/core"
	"goalrec/internal/intset"
	"goalrec/internal/strategy"
)

// KNN is the paper's "CF KNN" comparator: user-based nearest-neighbour
// collaborative filtering over implicit feedback, with neighbourhoods formed
// by the Jaccard (Tanimoto) coefficient as Section 6 prescribes. A query
// activity is matched against every historical user sharing at least one
// action; the top-N neighbours vote for the actions they performed, weighted
// by their similarity.
type KNN struct {
	in        *Interactions
	neighbors int
}

// NewKNN returns a KNN recommender using the top `neighbors` most similar
// users (a non-positive value defaults to 20, a common kNN setting).
func NewKNN(in *Interactions, neighbors int) *KNN {
	if neighbors <= 0 {
		neighbors = 20
	}
	return &KNN{in: in, neighbors: neighbors}
}

// Name implements strategy.Recommender.
func (k *KNN) Name() string { return "cf-knn" }

type neighbor struct {
	user int32
	sim  float64
}

// Recommend implements strategy.Recommender.
func (k *KNN) Recommend(activity []core.ActionID, n int) []strategy.ScoredAction {
	if n == 0 {
		return nil
	}
	h := normalizeActivity(activity)
	if len(h) == 0 {
		return nil
	}

	// Candidate neighbours: every user sharing an action with the query.
	seen := make(map[int32]struct{})
	var cands []int32
	for _, a := range h {
		for _, u := range k.in.UsersOfAction(a) {
			if _, dup := seen[u]; !dup {
				seen[u] = struct{}{}
				cands = append(cands, u)
			}
		}
	}
	if len(cands) == 0 {
		return nil
	}
	neigh := make([]neighbor, 0, len(cands))
	for _, u := range cands {
		if sim := intset.Jaccard(h, k.in.User(int(u))); sim > 0 {
			neigh = append(neigh, neighbor{user: u, sim: sim})
		}
	}
	sort.Slice(neigh, func(i, j int) bool {
		if neigh[i].sim != neigh[j].sim {
			return neigh[i].sim > neigh[j].sim
		}
		return neigh[i].user < neigh[j].user
	})
	if len(neigh) > k.neighbors {
		neigh = neigh[:k.neighbors]
	}

	scores := make(map[core.ActionID]float64)
	for _, nb := range neigh {
		for _, a := range k.in.User(int(nb.user)) {
			if intset.Contains(h, a) {
				continue
			}
			scores[a] += nb.sim
		}
	}
	scored := make([]strategy.ScoredAction, 0, len(scores))
	for a, s := range scores {
		scored = append(scored, strategy.ScoredAction{Action: a, Score: s})
	}
	return strategy.TopK(scored, n)
}
