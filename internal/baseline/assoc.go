package baseline

import (
	"goalrec/internal/core"
	"goalrec/internal/intset"
	"goalrec/internal/strategy"
)

// AssocRules is the association-rule comparator discussed in the paper's
// related work (Section 2): it mines pairwise co-occurrence rules b → a from
// the historical activities and scores a candidate a for activity H by the
// summed confidence of the rules fired by H's actions. The paper argues this
// popularity-driven signal cannot reproduce goal-based recommendations; the
// experiment harness uses this implementation to demonstrate it.
type AssocRules struct {
	in         *Interactions
	minSupport int

	// pair[b] maps co-occurring action a to count(a, b) for pairs meeting
	// the support threshold.
	pair []map[core.ActionID]int
}

// NewAssocRules mines pairwise rules with the given absolute minimum support
// (non-positive defaults to 2 users).
func NewAssocRules(in *Interactions, minSupport int) *AssocRules {
	if minSupport <= 0 {
		minSupport = 2
	}
	ar := &AssocRules{
		in:         in,
		minSupport: minSupport,
		pair:       make([]map[core.ActionID]int, in.NumActions()),
	}
	for u := 0; u < in.NumUsers(); u++ {
		h := in.User(u)
		for i, b := range h {
			for j, a := range h {
				if i == j {
					continue
				}
				if ar.pair[b] == nil {
					ar.pair[b] = make(map[core.ActionID]int)
				}
				ar.pair[b][a]++
			}
		}
	}
	// Prune below-support pairs so scoring sees only real rules.
	for b := range ar.pair {
		for a, c := range ar.pair[b] {
			if c < minSupport {
				delete(ar.pair[b], a)
			}
		}
	}
	return ar
}

// Name implements strategy.Recommender.
func (ar *AssocRules) Name() string { return "assoc-rules" }

// Confidence returns conf(b → a) = count(a, b) / count(b), or 0 when the
// pair is below support.
func (ar *AssocRules) Confidence(b, a core.ActionID) float64 {
	if b < 0 || int(b) >= len(ar.pair) || ar.pair[b] == nil {
		return 0
	}
	n := ar.in.ActionCount(b)
	if n == 0 {
		return 0
	}
	return float64(ar.pair[b][a]) / float64(n)
}

// Recommend implements strategy.Recommender.
func (ar *AssocRules) Recommend(activity []core.ActionID, n int) []strategy.ScoredAction {
	if n == 0 {
		return nil
	}
	h := normalizeActivity(activity)
	if len(h) == 0 {
		return nil
	}
	scores := make(map[core.ActionID]float64)
	for _, b := range h {
		if int(b) >= len(ar.pair) || ar.pair[b] == nil {
			continue
		}
		cnt := ar.in.ActionCount(b)
		if cnt == 0 {
			continue
		}
		for a, c := range ar.pair[b] {
			if intset.Contains(h, a) {
				continue
			}
			scores[a] += float64(c) / float64(cnt)
		}
	}
	scored := make([]strategy.ScoredAction, 0, len(scores))
	for a, s := range scores {
		scored = append(scored, strategy.ScoredAction{Action: a, Score: s})
	}
	return strategy.TopK(scored, n)
}
