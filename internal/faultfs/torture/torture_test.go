package torture

import "testing"

// Four sweeps: {fail, crash} × {async, sync} WAL. The crash sweeps re-run
// the whole workload once per enumerated site, so they respect -short;
// scripts/torture.sh (and the CI torture job) run everything, race-enabled.

func TestTortureFailEverySite(t *testing.T) {
	Run(t, false, false)
}

func TestTortureFailEverySiteSyncWAL(t *testing.T) {
	Run(t, true, false)
}

func TestTortureCrashEverySite(t *testing.T) {
	if testing.Short() {
		t.Skip("crash sweep skipped in -short mode")
	}
	Run(t, false, true)
}

func TestTortureCrashEverySiteSyncWAL(t *testing.T) {
	if testing.Short() {
		t.Skip("crash sweep skipped in -short mode")
	}
	Run(t, true, true)
}
