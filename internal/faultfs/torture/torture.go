// Package torture is the crash-point torture harness for the store's
// persistence stack. A clean run of a realistic workload — ingest batches,
// user appends and deletes, explicit compactions, restarts — is traced
// through the fault-injecting filesystem to enumerate every I/O site it
// touches. The workload is then re-run once per site with that single
// operation failing (EIO), and once per site with the filesystem crashing at
// it (every later operation dead, written data surviving — the process-crash
// model). After each run the torture store is reopened on a clean filesystem
// and must recover to exactly the state of a reference store built by
// replaying the acknowledged operations: same epoch, same library, same
// rankings bit-for-bit, same user histories.
//
// The only tolerated divergence is the one operation that was in flight when
// the fault hit: its WAL frame may have landed in full before the error
// surfaced, in which case replay legitimately applies it. Recovery must
// therefore match ref(acked) or ref(acked + in-flight) — nothing else. An
// acknowledged write missing from recovery, or a write appearing that was
// neither acked nor in flight, fails the sweep.
package torture

import (
	"fmt"
	"os"
	"reflect"
	"testing"
	"time"

	"goalrec"
	"goalrec/internal/faultfs"
)

// Mutation kinds.
const (
	mutIngest = iota
	mutUserAppend
	mutUserDelete
)

// Structural step kinds.
const (
	actMut = iota
	actCompact
	actRestart
)

// A step is one workload action. Mutations carry their payload so the
// reference replay can re-apply exactly the acknowledged subset.
type step struct {
	name string
	kind int // actMut, actCompact, actRestart
	mut  int // mutation kind, for actMut
	impl []goalrec.Implementation
	user string
	acts []string
}

// batch builds n deterministic implementations over a small shared
// vocabulary, mirroring the store tests' corpus so posting lists overlap and
// rankings are non-trivial.
func batch(start, n int) []goalrec.Implementation {
	impls := make([]goalrec.Implementation, n)
	for i := range impls {
		id := start + i
		impls[i] = goalrec.Implementation{
			Goal: fmt.Sprintf("goal-%d", id%17),
			Actions: []string{
				fmt.Sprintf("act-%d", id%29),
				fmt.Sprintf("act-%d", (id*7)%29),
				fmt.Sprintf("act-%d", (id*13)%41),
			},
		}
	}
	return impls
}

// script is the torture workload: enough ingest to matter, user records
// interleaved with deletes, two compactions (so two snapshot generations
// exist and WAL rotation runs twice), and two restarts (so recovery itself
// is inside the fault envelope).
func script() []step {
	return []step{
		{name: "ingest-a", kind: actMut, mut: mutIngest, impl: batch(0, 8)},
		{name: "ingest-b", kind: actMut, mut: mutIngest, impl: batch(8, 6)},
		{name: "u1-append", kind: actMut, mut: mutUserAppend, user: "u1", acts: []string{"act-1", "act-2"}},
		{name: "compact-1", kind: actCompact},
		{name: "ingest-c", kind: actMut, mut: mutIngest, impl: batch(14, 7)},
		{name: "u2-append", kind: actMut, mut: mutUserAppend, user: "u2", acts: []string{"act-3", "act-7"}},
		{name: "u1-delete", kind: actMut, mut: mutUserDelete, user: "u1"},
		{name: "restart-1", kind: actRestart},
		{name: "ingest-d", kind: actMut, mut: mutIngest, impl: batch(21, 5)},
		{name: "compact-2", kind: actCompact},
		{name: "ingest-e", kind: actMut, mut: mutIngest, impl: batch(26, 4)},
		{name: "u1-append-2", kind: actMut, mut: mutUserAppend, user: "u1", acts: []string{"act-5"}},
		{name: "restart-2", kind: actRestart},
		{name: "ingest-f", kind: actMut, mut: mutIngest, impl: batch(30, 3)},
	}
}

// storeOpts pins every background knob so the clean run's operation sequence
// is deterministic: no auto-compaction, no periodic scrub, and a probe
// cadence that never fires inside a run.
func storeOpts(fsys faultfs.FS, syncWAL bool) goalrec.StoreOptions {
	return goalrec.StoreOptions{
		FS:                fsys,
		SyncWAL:           syncWAL,
		CompactAtWALBytes: 1 << 40,
		ProbeInterval:     time.Hour,
		RecoverAfter:      1 << 20,
	}
}

// applyMut applies one mutation to a live store, returning the store's
// verdict — nil means the write was acknowledged.
func applyMut(st *goalrec.Store, sp step) error {
	switch sp.mut {
	case mutIngest:
		_, err := st.Engine().AddImplementations(sp.impl)
		return err
	case mutUserAppend:
		_, err := st.Users().Append(sp.user, sp.acts)
		return err
	default:
		return st.Users().Delete(sp.user)
	}
}

// fingerprint is the bit-level identity of a recovered store: epoch, library
// size, full rankings under every strategy, and each user's history. Two
// stores with equal fingerprints are indistinguishable to every read path
// the engine serves.
type fingerprint struct {
	Epoch uint64
	Len   int
	Rank  map[goalrec.Strategy][]goalrec.Recommendation
	Users map[string][]string
}

func takeFingerprint(st *goalrec.Store) (*fingerprint, error) {
	e := st.Engine()
	fp := &fingerprint{
		Epoch: e.Epoch(),
		Len:   e.Len(),
		Rank:  map[goalrec.Strategy][]goalrec.Recommendation{},
		Users: map[string][]string{},
	}
	if fp.Len > 0 {
		activity := []string{"act-1", "act-7", "act-13"}
		for _, s := range []goalrec.Strategy{goalrec.FocusCompleteness, goalrec.FocusCloseness, goalrec.Breadth, goalrec.BestMatch} {
			rec, err := e.Recommender(s)
			if err != nil {
				return nil, fmt.Errorf("recommender %s: %w", s, err)
			}
			fp.Rank[s] = rec.Recommend(activity, 10)
		}
	}
	for _, id := range []string{"u1", "u2"} {
		if h, err := st.Users().History(id); err == nil {
			fp.Users[id] = h
		}
	}
	return fp, nil
}

// runResult is what one faulted workload run produced: which script indices
// were acknowledged, and which single mutation (if any) was in flight when
// the fault surfaced — the step that may legitimately appear in recovery
// despite never being acked.
type runResult struct {
	acked    []int
	inFlight int // script index, -1 when no mutation was in flight
}

// runWorkload executes the script over fsys in dir, absorbing every error
// the way a real caller would: a rejected write is simply not acked, a
// failed compaction is retried never (the next one covers it), a failed
// restart-open aborts the rest (the process is gone). The error verdicts
// are recorded, never fatal — the invariants are checked after recovery.
func runWorkload(dir string, fsys faultfs.FS, syncWAL bool) runResult {
	res := runResult{inFlight: -1}
	st, err := goalrec.OpenStore(dir, storeOpts(fsys, syncWAL))
	if err != nil {
		return res
	}
	defer func() {
		if st != nil {
			_ = st.Close()
		}
	}()
	for i, sp := range script() {
		switch sp.kind {
		case actCompact:
			_ = st.Compact()
		case actRestart:
			_ = st.Close()
			st, err = goalrec.OpenStore(dir, storeOpts(fsys, syncWAL))
			if err != nil {
				st = nil
				return res
			}
		default:
			healthyBefore := st.Status().Mode == goalrec.StorageHealthy
			if err := applyMut(st, sp); err != nil {
				// Only a mutation that found the store healthy can have
				// reached the log; one rejected at the read-only gate never
				// touched disk and cannot appear in recovery.
				if healthyBefore && res.inFlight < 0 {
					res.inFlight = i
				}
				continue
			}
			res.acked = append(res.acked, i)
		}
	}
	return res
}

// harness caches reference fingerprints by acked-set, since many sites fail
// after the workload's last mutation and share one reference.
type harness struct {
	t     *testing.T
	sync  bool
	steps []step
	refs  map[string]*fingerprint
}

// ref replays exactly the script indices in acked (in order) against a clean
// store and fingerprints the result.
func (h *harness) ref(acked []int) *fingerprint {
	key := fmt.Sprint(acked)
	if fp, ok := h.refs[key]; ok {
		return fp
	}
	dir, err := os.MkdirTemp("", "torture-ref-*")
	if err != nil {
		h.t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := goalrec.OpenStore(dir, storeOpts(nil, h.sync))
	if err != nil {
		h.t.Fatalf("ref open: %v", err)
	}
	for _, i := range acked {
		if err := applyMut(st, h.steps[i]); err != nil {
			h.t.Fatalf("ref replay of %s: %v", h.steps[i].name, err)
		}
	}
	fp, err := takeFingerprint(st)
	if err != nil {
		h.t.Fatalf("ref fingerprint: %v", err)
	}
	if err := st.Close(); err != nil {
		h.t.Fatalf("ref close: %v", err)
	}
	h.refs[key] = fp
	return fp
}

// withInFlight returns acked with the in-flight index spliced in at its
// script position.
func withInFlight(acked []int, inFlight int) []int {
	out := make([]int, 0, len(acked)+1)
	done := false
	for _, i := range acked {
		if !done && inFlight < i {
			out = append(out, inFlight)
			done = true
		}
		out = append(out, i)
	}
	if !done {
		out = append(out, inFlight)
	}
	return out
}

// checkRecovery reopens the torture directory on a clean filesystem and
// asserts the recovery invariants against the reference states.
func (h *harness) checkRecovery(dir string, res runResult, label string) {
	st, err := goalrec.OpenStore(dir, storeOpts(nil, h.sync))
	if err != nil {
		h.t.Fatalf("%s: store did not reopen after the fault: %v", label, err)
	}
	got, err := takeFingerprint(st)
	cerr := st.Close()
	if err != nil {
		h.t.Fatalf("%s: fingerprinting recovered store: %v", label, err)
	}
	if cerr != nil {
		h.t.Fatalf("%s: closing recovered store: %v", label, cerr)
	}

	want := h.ref(res.acked)
	if got.Epoch < want.Epoch {
		h.t.Fatalf("%s: epoch went backwards: recovered %d < acked %d", label, got.Epoch, want.Epoch)
	}
	if reflect.DeepEqual(got, want) {
		return
	}
	if res.inFlight >= 0 {
		alt := h.ref(withInFlight(res.acked, res.inFlight))
		if reflect.DeepEqual(got, alt) {
			return
		}
		h.t.Fatalf("%s: recovered state matches neither ref(acked) nor ref(acked+%s)\nacked=%v inFlight=%d\n got epoch=%d len=%d users=%v\nwant epoch=%d len=%d users=%v\n alt epoch=%d len=%d users=%v",
			label, h.steps[res.inFlight].name, res.acked, res.inFlight,
			got.Epoch, got.Len, got.Users, want.Epoch, want.Len, want.Users, alt.Epoch, alt.Len, alt.Users)
	}
	h.t.Fatalf("%s: recovered state diverges from the acked reference\nacked=%v\n got epoch=%d len=%d users=%v\nwant epoch=%d len=%d users=%v",
		label, res.acked, got.Epoch, got.Len, got.Users, want.Epoch, want.Len, want.Users)
}

// Run executes one torture sweep: a traced clean run to enumerate sites,
// then one workload per site with that operation either failing with EIO
// (crash=false) or freezing the filesystem from there on (crash=true).
func Run(t *testing.T, syncWAL, crash bool) {
	h := &harness{t: t, sync: syncWAL, steps: script(), refs: map[string]*fingerprint{}}

	// Clean traced run: enumerate every I/O site and pin the expectation
	// that a fault-free workload acks everything.
	inj := faultfs.NewInjector(nil)
	inj.StartTrace()
	cleanDir := t.TempDir()
	cleanRes := runWorkload(cleanDir, inj, syncWAL)
	sites := inj.Trace()
	if len(sites) == 0 {
		t.Fatal("traced no I/O sites; the workload never touched the filesystem")
	}
	if cleanRes.inFlight >= 0 {
		t.Fatalf("clean run reported an in-flight failure: %v", cleanRes)
	}
	muts := 0
	for _, sp := range h.steps {
		if sp.kind == actMut {
			muts++
		}
	}
	if len(cleanRes.acked) != muts {
		t.Fatalf("clean run acked %d of %d mutations", len(cleanRes.acked), muts)
	}
	h.checkRecovery(cleanDir, cleanRes, "clean")
	t.Logf("torture: %d I/O sites enumerated (syncWAL=%v crash=%v)", len(sites), syncWAL, crash)

	for _, site := range sites {
		inj := faultfs.NewInjector(nil)
		var label string
		if crash {
			label = fmt.Sprintf("crash@%s", site)
			inj.CrashAt(site.Index)
		} else {
			label = fmt.Sprintf("fail@%s", site)
			inj.FailAt(site.Index, faultfs.EIO)
		}
		dir := t.TempDir()
		res := runWorkload(dir, inj, syncWAL)
		inj.Uncrash()
		h.checkRecovery(dir, res, label)
	}
}
