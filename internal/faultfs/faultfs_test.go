package faultfs

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f.txt")
	f, err := OS.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("hello"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := OS.SyncDir(dir); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
	if err := OS.Rename(path, filepath.Join(dir, "g.txt")); err != nil {
		t.Fatal(err)
	}
	ents, err := OS.ReadDir(dir)
	if err != nil || len(ents) != 1 || ents[0].Name() != "g.txt" {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	if err := OS.Remove(filepath.Join(dir, "g.txt")); err != nil {
		t.Fatal(err)
	}
}

func TestInjectorRuleMatching(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS)
	inj.Fail(Rule{Op: OpSync, Path: "wal", Err: EIO})

	f, err := inj.OpenFile(filepath.Join(dir, "ingest.wal"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) || !errors.Is(err, syscall.EIO) {
		t.Fatalf("Sync = %v, want injected EIO", err)
	}
	// error-always: fires again.
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("second Sync = %v, want injected", err)
	}
	// A different path is untouched.
	g, err := inj.OpenFile(filepath.Join(dir, "snap.gsnp"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Sync(); err != nil {
		t.Fatalf("unmatched Sync = %v", err)
	}
	_ = f.Close()
	_ = g.Close()
}

func TestInjectorErrorOnce(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS)
	inj.Fail(Rule{Op: OpWriteAt, Once: true})
	f, err := inj.OpenFile(filepath.Join(dir, "f"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("first WriteAt = %v, want injected", err)
	}
	if _, err := f.WriteAt([]byte("x"), 0); err != nil {
		t.Fatalf("second WriteAt = %v, want nil after Once", err)
	}
}

func TestInjectorShortWrite(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS)
	inj.Fail(Rule{Op: OpWriteAt, Short: 3, Once: true, Err: ENOSPC})
	f, err := inj.OpenFile(filepath.Join(dir, "f"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	n, err := f.WriteAt([]byte("abcdef"), 0)
	if n != 3 || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("WriteAt = %d, %v; want 3, ENOSPC", n, err)
	}
	got, rerr := os.ReadFile(filepath.Join(dir, "f"))
	if rerr != nil || string(got) != "abc" {
		t.Fatalf("on disk %q, %v; want the torn prefix \"abc\"", got, rerr)
	}
}

func TestInjectorWriteBudget(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS)
	inj.SetWriteBudget(10)
	f, err := inj.OpenFile(filepath.Join(dir, "f"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if n, err := f.WriteAt([]byte("12345678"), 0); n != 8 || err != nil {
		t.Fatalf("within budget: %d, %v", n, err)
	}
	n, err := f.WriteAt([]byte("abcdef"), 8)
	if n != 2 || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("over budget: %d, %v; want 2, ENOSPC", n, err)
	}
	if _, err := f.WriteAt([]byte("x"), 10); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("exhausted budget write = %v, want ENOSPC", err)
	}
	inj.SetWriteBudget(-1)
	if _, err := f.WriteAt([]byte("x"), 10); err != nil {
		t.Fatalf("after disarm: %v", err)
	}
}

func TestInjectorTraceAndFailAt(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS)
	inj.StartTrace()
	f, err := inj.OpenFile(filepath.Join(dir, "f"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	trace := inj.Trace()
	if len(trace) != 3 {
		t.Fatalf("trace has %d sites, want 3: %v", len(trace), trace)
	}
	wantOps := []Op{OpOpenFile, OpWriteAt, OpClose}
	for k, s := range trace {
		if s.Op != wantOps[k] || s.Index != int64(k) {
			t.Fatalf("site %d = %v, want op %v", k, s, wantOps[k])
		}
	}

	// Replaying the same operations with FailAt(1) fails exactly the write.
	inj2 := NewInjector(OS)
	inj2.FailAt(1, EIO)
	g, err := inj2.OpenFile(filepath.Join(dir, "g"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.WriteAt([]byte("x"), 0); !errors.Is(err, syscall.EIO) {
		t.Fatalf("op 1 = %v, want EIO", err)
	}
	if err := g.Close(); err != nil {
		t.Fatalf("op 2 = %v, want nil", err)
	}
}

func TestInjectorCrash(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS)
	f, err := inj.OpenFile(filepath.Join(dir, "f"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("durable"), 0); err != nil {
		t.Fatal(err)
	}
	inj.Crash()
	if _, err := f.WriteAt([]byte("lost"), 7); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write = %v, want ErrCrashed", err)
	}
	if _, err := inj.Open(filepath.Join(dir, "f")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash open = %v, want ErrCrashed", err)
	}
	inj.Uncrash()
	got, err := os.ReadFile(filepath.Join(dir, "f"))
	if err != nil || string(got) != "durable" {
		t.Fatalf("after restart: %q, %v; want the pre-crash bytes", got, err)
	}
}

func TestInjectorCrashAt(t *testing.T) {
	dir := t.TempDir()
	inj := NewInjector(OS)
	inj.CrashAt(1)
	f, err := inj.OpenFile(filepath.Join(dir, "f"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("op 1 = %v, want ErrCrashed", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("op 2 = %v, want ErrCrashed (latched)", err)
	}
}
