package faultfs

import (
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
	"syscall"
)

// ErrInjected is the default error an unconfigured fault rule returns; every
// injected error wraps it (or is it), so tests can match injected failures
// with errors.Is regardless of the scripted errno.
var ErrInjected = errors.New("faultfs: injected fault")

// ErrCrashed is what every operation returns after Crash: the process-death
// model where the filesystem stops responding but everything already written
// stays on disk.
var ErrCrashed = fmt.Errorf("%w: crashed", ErrInjected)

// ENOSPC is the injected disk-full error, matching both ErrInjected and
// syscall.ENOSPC under errors.Is.
var ENOSPC = &injectedError{errno: syscall.ENOSPC}

// EIO is the injected generic I/O error, matching both ErrInjected and
// syscall.EIO under errors.Is.
var EIO = &injectedError{errno: syscall.EIO}

// EINTR is the injected interrupted-syscall error — the transient class a
// caller is expected to absorb by retrying.
var EINTR = &injectedError{errno: syscall.EINTR}

type injectedError struct{ errno syscall.Errno }

func (e *injectedError) Error() string { return "faultfs: injected " + e.errno.Error() }

func (e *injectedError) Is(target error) bool {
	return target == ErrInjected || target == e.errno
}

// Site identifies one filesystem operation of a traced workload: the Nth
// operation overall, what it was, and the path it touched. The torture
// harness enumerates sites on a clean run and then re-runs the workload
// failing each one.
type Site struct {
	Index int64
	Op    Op
	Path  string
}

func (s Site) String() string { return fmt.Sprintf("#%d %s %s", s.Index, s.Op, s.Path) }

// Rule scripts one fault. The zero Op, empty Path and zero AtOp match
// everything. A matched write-class operation with Short > 0 writes that
// many bytes before failing (a torn write); other matches fail outright with
// Err (ErrInjected when nil).
type Rule struct {
	Op   Op     // operation class to match; OpAny matches all
	Path string // substring of the path; "" matches all
	AtOp int64  // 1-based operation sequence number (Site.Index+1); 0 matches any
	Err  error  // error to inject; nil selects ErrInjected

	// Short, for OpWrite/OpWriteAt, is how many payload bytes land before
	// the error — a torn write. 0 fails the write before any byte lands.
	Short int
	// Once disarms the rule after its first hit ("error-once"); otherwise
	// the rule keeps firing ("error-always").
	Once bool

	hits int64
}

// Injector wraps an FS with scriptable faults and an operation trace. It is
// safe for concurrent use; the operation counter orders concurrent
// operations arbitrarily but consistently.
type Injector struct {
	inner FS

	mu      sync.Mutex
	nextOp  int64
	rules   []*Rule
	tracing bool
	trace   []Site
	crashed bool

	// writeBudget < 0 means unlimited; otherwise every write-class byte
	// drains it and writes beyond it fail with ENOSPC (partial writes land,
	// as a full disk really behaves).
	writeBudget int64
}

// NewInjector returns an Injector over inner (OS when nil) with no rules, no
// budget and tracing off: a pure passthrough until scripted.
func NewInjector(inner FS) *Injector {
	return &Injector{inner: Or(inner), writeBudget: -1}
}

// Fail registers a rule. It returns the Injector for chaining.
func (i *Injector) Fail(r Rule) *Injector {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.rules = append(i.rules, &r)
	return i
}

// FailAt scripts the single operation with trace index idx (Site.Index) to
// fail with err (ErrInjected when nil) — the torture harness's per-site
// trigger.
func (i *Injector) FailAt(idx int64, err error) *Injector {
	return i.Fail(Rule{AtOp: idx + 1, Err: err, Once: true})
}

// ClearRules removes every scripted rule, keeping the trace, counter, budget
// and crash state.
func (i *Injector) ClearRules() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.rules = nil
}

// SetWriteBudget arms the disk-full model: after n more written bytes, every
// write-class operation fails with ENOSPC. n < 0 disarms it.
func (i *Injector) SetWriteBudget(n int64) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.writeBudget = n
}

// Crash freezes the filesystem: every subsequent operation fails with
// ErrCrashed. Data already written stays readable once Uncrash is called —
// the process-crash model, where the page cache survives but the process
// does not.
func (i *Injector) Crash() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.crashed = true
}

// Uncrash lifts a Crash, modeling the restart.
func (i *Injector) Uncrash() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.crashed = false
}

// CrashAt scripts the filesystem to freeze at the operation with trace index
// idx (Site.Index): that operation and everything after it fail with
// ErrCrashed.
func (i *Injector) CrashAt(idx int64) *Injector {
	return i.Fail(Rule{AtOp: idx + 1, Err: errCrashNow})
}

// errCrashNow is the sentinel a CrashAt rule injects; check() sees it and
// latches the crashed state.
var errCrashNow = errors.New("faultfs: crash trigger")

// StartTrace begins recording every operation as a Site.
func (i *Injector) StartTrace() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.tracing = true
	i.trace = nil
}

// Trace returns the recorded sites since StartTrace.
func (i *Injector) Trace() []Site {
	i.mu.Lock()
	defer i.mu.Unlock()
	return append([]Site(nil), i.trace...)
}

// Ops returns the number of operations observed so far.
func (i *Injector) Ops() int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.nextOp
}

// check assigns the operation its global index, traces it, and resolves the
// first matching rule. It returns the number of payload bytes allowed to
// land (meaningful for write-class ops; n is the attempted size) and the
// error to inject, nil for a clean passthrough.
func (i *Injector) check(op Op, path string, n int) (int, error) {
	i.mu.Lock()
	defer i.mu.Unlock()
	idx := i.nextOp
	i.nextOp++
	if i.tracing {
		i.trace = append(i.trace, Site{Index: idx, Op: op, Path: path})
	}
	if i.crashed {
		return 0, ErrCrashed
	}
	for _, r := range i.rules {
		if r.Op != OpAny && r.Op != op {
			continue
		}
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		if r.AtOp != 0 && r.AtOp != idx+1 {
			continue
		}
		if r.Once && r.hits > 0 {
			continue
		}
		r.hits++
		err := r.Err
		if err == nil {
			err = ErrInjected
		}
		if errors.Is(err, errCrashNow) {
			i.crashed = true
			return 0, ErrCrashed
		}
		allowed := r.Short
		if allowed > n {
			allowed = n
		}
		return allowed, err
	}
	if i.writeBudget >= 0 && (op == OpWrite || op == OpWriteAt) {
		if i.writeBudget >= int64(n) {
			i.writeBudget -= int64(n)
			return n, nil
		}
		allowed := int(i.writeBudget)
		i.writeBudget = 0
		return allowed, ENOSPC
	}
	return n, nil
}

// Injector implements FS.

func (i *Injector) Open(name string) (File, error) {
	if _, err := i.check(OpOpen, name, 0); err != nil {
		return nil, err
	}
	f, err := i.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &injectFile{i: i, f: f, name: name}, nil
}

func (i *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if _, err := i.check(OpOpenFile, name, 0); err != nil {
		return nil, err
	}
	f, err := i.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injectFile{i: i, f: f, name: name}, nil
}

func (i *Injector) CreateTemp(dir, pattern string) (File, error) {
	if _, err := i.check(OpCreateTemp, dir+"/"+pattern, 0); err != nil {
		return nil, err
	}
	f, err := i.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injectFile{i: i, f: f, name: f.Name()}, nil
}

func (i *Injector) Rename(oldpath, newpath string) error {
	if _, err := i.check(OpRename, newpath, 0); err != nil {
		return err
	}
	return i.inner.Rename(oldpath, newpath)
}

func (i *Injector) Remove(name string) error {
	if _, err := i.check(OpRemove, name, 0); err != nil {
		return err
	}
	return i.inner.Remove(name)
}

func (i *Injector) ReadDir(name string) ([]os.DirEntry, error) {
	if _, err := i.check(OpReadDir, name, 0); err != nil {
		return nil, err
	}
	return i.inner.ReadDir(name)
}

func (i *Injector) MkdirAll(path string, perm os.FileMode) error {
	if _, err := i.check(OpMkdirAll, path, 0); err != nil {
		return err
	}
	return i.inner.MkdirAll(path, perm)
}

func (i *Injector) Stat(name string) (os.FileInfo, error) {
	if _, err := i.check(OpStat, name, 0); err != nil {
		return nil, err
	}
	return i.inner.Stat(name)
}

func (i *Injector) SyncDir(dir string) error {
	if _, err := i.check(OpSyncDir, dir, 0); err != nil {
		return err
	}
	return i.inner.SyncDir(dir)
}

// injectFile threads every handle operation back through the injector.
type injectFile struct {
	i    *Injector
	f    File
	name string
}

func (f *injectFile) Read(p []byte) (int, error) {
	if _, err := f.i.check(OpRead, f.name, 0); err != nil {
		return 0, err
	}
	return f.f.Read(p)
}

func (f *injectFile) ReadAt(p []byte, off int64) (int, error) {
	if _, err := f.i.check(OpReadAt, f.name, 0); err != nil {
		return 0, err
	}
	return f.f.ReadAt(p, off)
}

// write runs one write-class operation: a scripted short write lands its
// prefix (tearing the record exactly as a real partial write would) before
// the error surfaces.
func (f *injectFile) write(op Op, p []byte, at func(p []byte) (int, error)) (int, error) {
	allowed, ierr := f.i.check(op, f.name, len(p))
	if ierr == nil {
		return at(p)
	}
	n := 0
	if allowed > 0 {
		var werr error
		n, werr = at(p[:allowed])
		if werr != nil {
			return n, werr
		}
	}
	return n, ierr
}

func (f *injectFile) Write(p []byte) (int, error) {
	return f.write(OpWrite, p, f.f.Write)
}

func (f *injectFile) WriteAt(p []byte, off int64) (int, error) {
	return f.write(OpWriteAt, p, func(q []byte) (int, error) { return f.f.WriteAt(q, off) })
}

func (f *injectFile) Seek(offset int64, whence int) (int64, error) {
	if _, err := f.i.check(OpSeek, f.name, 0); err != nil {
		return 0, err
	}
	return f.f.Seek(offset, whence)
}

func (f *injectFile) Close() error {
	if _, err := f.i.check(OpClose, f.name, 0); err != nil {
		// The underlying handle still closes: an injected close error models
		// a flush failure surfacing at close, not a leaked descriptor.
		_ = f.f.Close()
		return err
	}
	return f.f.Close()
}

func (f *injectFile) Name() string { return f.f.Name() }

func (f *injectFile) Stat() (os.FileInfo, error) {
	if _, err := f.i.check(OpStat, f.name, 0); err != nil {
		return nil, err
	}
	return f.f.Stat()
}

func (f *injectFile) Sync() error {
	if _, err := f.i.check(OpSync, f.name, 0); err != nil {
		return err
	}
	return f.f.Sync()
}

func (f *injectFile) Truncate(size int64) error {
	if _, err := f.i.check(OpTruncate, f.name, 0); err != nil {
		return err
	}
	return f.f.Truncate(size)
}

func (f *injectFile) Fd() uintptr { return f.f.Fd() }
