// Package faultfs is the injectable filesystem behind goalrec's persistence
// stack. Every durable component — the WAL writer, the snapshot writer and
// reader, the store's compaction and pruning — performs its I/O through the
// FS interface instead of calling the os package directly, so tests and the
// torture harness (see the nested torture package) can script disk faults at
// any individual operation: short writes, fsync errors, ENOSPC after a byte
// budget, a torn temp+rename, an error that fires once versus one that
// sticks.
//
// Production code pays one interface dispatch per filesystem call (syscalls
// dwarf it); the default OS implementation is a stateless passthrough.
package faultfs

import (
	"io"
	"os"
)

// Op names one class of filesystem operation; fault rules match on it.
type Op uint8

const (
	// OpAny matches every operation in a fault rule.
	OpAny Op = iota
	OpOpen
	OpOpenFile
	OpCreateTemp
	OpRead
	OpReadAt
	OpWrite
	OpWriteAt
	OpSeek
	OpSync
	OpTruncate
	OpClose
	OpRename
	OpRemove
	OpReadDir
	OpMkdirAll
	OpStat
	OpSyncDir
)

var opNames = [...]string{
	OpAny: "any", OpOpen: "open", OpOpenFile: "openfile", OpCreateTemp: "createtemp",
	OpRead: "read", OpReadAt: "readat", OpWrite: "write", OpWriteAt: "writeat",
	OpSeek: "seek", OpSync: "sync", OpTruncate: "truncate", OpClose: "close",
	OpRename: "rename", OpRemove: "remove", OpReadDir: "readdir",
	OpMkdirAll: "mkdirall", OpStat: "stat", OpSyncDir: "syncdir",
}

// String returns the operation's lowercase name.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "op?"
}

// File is the per-handle surface the persistence stack needs: sequential and
// positioned reads and writes, metadata, truncation, and durability. *os.File
// satisfies it directly.
type File interface {
	io.Reader
	io.ReaderAt
	io.Writer
	io.WriterAt
	io.Seeker
	io.Closer
	Name() string
	Stat() (os.FileInfo, error)
	Sync() error
	Truncate(size int64) error
	// Fd exposes the underlying descriptor for memory mapping. Mapped reads
	// bypass fault injection by construction; faults on mmap-backed data are
	// modeled by corrupting the file instead.
	Fd() uintptr
}

// FS is the filesystem surface the persistence stack runs on. OS is the
// passthrough default; Injector wraps any FS with scriptable faults.
type FS interface {
	Open(name string) (File, error)
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	CreateTemp(dir, pattern string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	ReadDir(name string) ([]os.DirEntry, error)
	MkdirAll(path string, perm os.FileMode) error
	Stat(name string) (os.FileInfo, error)
	// SyncDir fsyncs the directory itself, making a just-created or
	// just-renamed name durable across power loss.
	SyncDir(dir string) error
}

// OS is the passthrough FS over the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Open(name string) (File, error) { return os.Open(name) }

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) CreateTemp(dir, pattern string) (File, error) { return os.CreateTemp(dir, pattern) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) Stat(name string) (os.FileInfo, error) { return os.Stat(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	// Some filesystems reject fsync on directories; the name is then as
	// durable as the platform allows, which matches what the os package
	// offers. The close error still surfaces.
	if err := d.Sync(); err != nil {
		_ = d.Close()
		return nil
	}
	return d.Close()
}

// Or returns fsys, or OS when fsys is nil — the idiom every FS-threaded
// option field resolves through.
func Or(fsys FS) FS {
	if fsys == nil {
		return OS
	}
	return fsys
}
