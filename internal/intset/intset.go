// Package intset provides set algebra over sorted slices of integer ids.
//
// The goal model keeps every action set (user activities, implementation
// activities, candidate pools) as a strictly increasing slice. All operations
// below rely on that invariant and preserve it, which makes intersection,
// difference and union linear merges with no hashing and no allocation beyond
// the destination slice.
//
// The functions are generic over any 32-bit integer-kind id type so that the
// core model's distinct ActionID / GoalID / ImplID types can use them without
// conversions.
package intset

import "sort"

// ID constrains the element types the package operates on.
type ID interface{ ~int32 }

// Set is the conventional element type used by tests and docs; any sorted
// slice of an ID type works.
type Set = []int32

// FromUnsorted sorts ids, removes duplicates and returns the result.
// The input slice is sorted in place.
func FromUnsorted[T ID](ids []T) []T {
	if len(ids) < 2 {
		return ids
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := ids[:1]
	for _, v := range ids[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// IsSorted reports whether ids is strictly increasing, i.e. a valid set.
func IsSorted[T ID](ids []T) bool {
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			return false
		}
	}
	return true
}

// Contains reports whether s contains v using binary search.
func Contains[T ID](s []T, v T) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= v })
	return i < len(s) && s[i] == v
}

// IntersectionLen returns |a ∩ b| without materializing the intersection.
func IntersectionLen[T ID](a, b []T) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			n++
			i++
			j++
		}
	}
	return n
}

// Intersection appends a ∩ b to dst and returns the extended slice.
// dst may be nil; it must not alias a or b.
func Intersection[T ID](dst, a, b []T) []T {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// DifferenceLen returns |a − b| without materializing the difference.
func DifferenceLen[T ID](a, b []T) int {
	return len(a) - IntersectionLen(a, b)
}

// Difference appends a − b (asymmetric set difference) to dst and returns the
// extended slice. dst may be nil; it must not alias a or b.
func Difference[T ID](dst, a, b []T) []T {
	i, j := 0, 0
	for i < len(a) {
		switch {
		case j >= len(b) || a[i] < b[j]:
			dst = append(dst, a[i])
			i++
		case a[i] > b[j]:
			j++
		default:
			i++
			j++
		}
	}
	return dst
}

// Union appends a ∪ b to dst and returns the extended slice.
// dst may be nil; it must not alias a or b.
func Union[T ID](dst, a, b []T) []T {
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			dst = append(dst, a[i])
			i++
		case i >= len(a) || a[i] > b[j]:
			dst = append(dst, b[j])
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// UnionLen returns |a ∪ b| without materializing the union.
func UnionLen[T ID](a, b []T) int {
	return len(a) + len(b) - IntersectionLen(a, b)
}

// Jaccard returns |a ∩ b| / |a ∪ b|, the Jaccard (Tanimoto) coefficient.
// The Jaccard of two empty sets is defined as 0.
func Jaccard[T ID](a, b []T) float64 {
	u := UnionLen(a, b)
	if u == 0 {
		return 0
	}
	return float64(IntersectionLen(a, b)) / float64(u)
}

// Equal reports whether a and b contain the same elements.
func Equal[T ID](a, b []T) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Subset reports whether every element of a is also in b.
func Subset[T ID](a, b []T) bool {
	return IntersectionLen(a, b) == len(a)
}

// Clone returns a copy of s. Clone(nil) returns nil.
func Clone[T ID](s []T) []T {
	if s == nil {
		return nil
	}
	out := make([]T, len(s))
	copy(out, s)
	return out
}
