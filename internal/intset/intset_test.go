package intset

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func s(v ...int32) Set { return v }

func TestFromUnsorted(t *testing.T) {
	tests := []struct {
		name string
		in   []int32
		want Set
	}{
		{"nil", nil, nil},
		{"single", s(4), s(4)},
		{"sorted", s(1, 2, 3), s(1, 2, 3)},
		{"reversed", s(3, 2, 1), s(1, 2, 3)},
		{"duplicates", s(5, 1, 5, 1, 5), s(1, 5)},
		{"all equal", s(7, 7, 7), s(7)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := FromUnsorted(append([]int32(nil), tt.in...))
			if !Equal(got, tt.want) {
				t.Errorf("FromUnsorted(%v) = %v, want %v", tt.in, got, tt.want)
			}
			if !IsSorted(got) {
				t.Errorf("FromUnsorted(%v) = %v is not sorted", tt.in, got)
			}
		})
	}
}

func TestIsSorted(t *testing.T) {
	if !IsSorted[int32](nil) {
		t.Error("nil should be sorted")
	}
	if !IsSorted(s(1)) {
		t.Error("singleton should be sorted")
	}
	if IsSorted(s(1, 1)) {
		t.Error("duplicates are not strictly increasing")
	}
	if IsSorted(s(2, 1)) {
		t.Error("descending is not sorted")
	}
}

func TestContains(t *testing.T) {
	set := s(1, 3, 5, 9)
	for _, v := range set {
		if !Contains(set, v) {
			t.Errorf("Contains(%v, %d) = false, want true", set, v)
		}
	}
	for _, v := range []int32{0, 2, 4, 6, 10} {
		if Contains(set, v) {
			t.Errorf("Contains(%v, %d) = true, want false", set, v)
		}
	}
	if Contains(Set(nil), 1) {
		t.Error("Contains(nil, 1) = true")
	}
}

func TestIntersection(t *testing.T) {
	tests := []struct {
		a, b, want Set
	}{
		{nil, nil, nil},
		{s(1, 2, 3), nil, nil},
		{s(1, 2, 3), s(4, 5), nil},
		{s(1, 2, 3), s(2, 3, 4), s(2, 3)},
		{s(1, 2, 3), s(1, 2, 3), s(1, 2, 3)},
		{s(1, 5, 9), s(5), s(5)},
	}
	for _, tt := range tests {
		got := Intersection(nil, tt.a, tt.b)
		if !Equal(got, tt.want) {
			t.Errorf("Intersection(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
		if n := IntersectionLen(tt.a, tt.b); n != len(tt.want) {
			t.Errorf("IntersectionLen(%v, %v) = %d, want %d", tt.a, tt.b, n, len(tt.want))
		}
	}
}

func TestDifference(t *testing.T) {
	tests := []struct {
		a, b, want Set
	}{
		{nil, nil, nil},
		{s(1, 2, 3), nil, s(1, 2, 3)},
		{nil, s(1, 2), nil},
		{s(1, 2, 3), s(2), s(1, 3)},
		{s(1, 2, 3), s(1, 2, 3), nil},
		{s(1, 2, 3), s(0, 4), s(1, 2, 3)},
	}
	for _, tt := range tests {
		got := Difference(nil, tt.a, tt.b)
		if !Equal(got, tt.want) {
			t.Errorf("Difference(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
		if n := DifferenceLen(tt.a, tt.b); n != len(tt.want) {
			t.Errorf("DifferenceLen(%v, %v) = %d, want %d", tt.a, tt.b, n, len(tt.want))
		}
	}
}

func TestUnion(t *testing.T) {
	tests := []struct {
		a, b, want Set
	}{
		{nil, nil, nil},
		{s(1, 2), nil, s(1, 2)},
		{nil, s(3), s(3)},
		{s(1, 3), s(2, 4), s(1, 2, 3, 4)},
		{s(1, 2), s(1, 2), s(1, 2)},
		{s(1, 2, 9), s(2, 3), s(1, 2, 3, 9)},
	}
	for _, tt := range tests {
		got := Union(nil, tt.a, tt.b)
		if !Equal(got, tt.want) {
			t.Errorf("Union(%v, %v) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
		if n := UnionLen(tt.a, tt.b); n != len(tt.want) {
			t.Errorf("UnionLen(%v, %v) = %d, want %d", tt.a, tt.b, n, len(tt.want))
		}
	}
}

func TestJaccard(t *testing.T) {
	if got := Jaccard[int32](nil, nil); got != 0 {
		t.Errorf("Jaccard(∅, ∅) = %v, want 0", got)
	}
	if got := Jaccard(s(1, 2), s(1, 2)); got != 1 {
		t.Errorf("Jaccard(identical) = %v, want 1", got)
	}
	if got := Jaccard(s(1, 2), s(3, 4)); got != 0 {
		t.Errorf("Jaccard(disjoint) = %v, want 0", got)
	}
	if got := Jaccard(s(1, 2, 3), s(2, 3, 4)); got != 0.5 {
		t.Errorf("Jaccard = %v, want 0.5", got)
	}
}

func TestSubset(t *testing.T) {
	if !Subset(nil, s(1)) {
		t.Error("∅ should be a subset of anything")
	}
	if !Subset(s(1, 3), s(1, 2, 3)) {
		t.Error("{1,3} ⊆ {1,2,3}")
	}
	if Subset(s(1, 4), s(1, 2, 3)) {
		t.Error("{1,4} ⊄ {1,2,3}")
	}
}

func TestClone(t *testing.T) {
	if Clone[int32](nil) != nil {
		t.Error("Clone(nil) should be nil")
	}
	orig := s(1, 2, 3)
	c := Clone(orig)
	if !Equal(c, orig) {
		t.Errorf("Clone = %v, want %v", c, orig)
	}
	c[0] = 99
	if orig[0] != 1 {
		t.Error("Clone shares memory with original")
	}
}

// randomSet generates a Set from a raw value for property tests.
func randomSet(r *rand.Rand, n int) Set {
	raw := make([]int32, r.Intn(n))
	for i := range raw {
		raw[i] = int32(r.Intn(n))
	}
	return FromUnsorted(raw)
}

func TestSetAlgebraProperties(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(v []reflect.Value, r *rand.Rand) {
			v[0] = reflect.ValueOf(randomSet(r, 40))
			v[1] = reflect.ValueOf(randomSet(r, 40))
		},
	}

	t.Run("inclusion-exclusion", func(t *testing.T) {
		f := func(a, b Set) bool {
			return UnionLen(a, b)+IntersectionLen(a, b) == len(a)+len(b)
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})

	t.Run("difference partitions", func(t *testing.T) {
		// a = (a − b) ⊎ (a ∩ b)
		f := func(a, b Set) bool {
			d := Difference(nil, a, b)
			i := Intersection(nil, a, b)
			return Equal(Union(nil, d, i), a)
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})

	t.Run("commutativity", func(t *testing.T) {
		f := func(a, b Set) bool {
			return Equal(Union(nil, a, b), Union(nil, b, a)) &&
				Equal(Intersection(nil, a, b), Intersection(nil, b, a))
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})

	t.Run("results sorted", func(t *testing.T) {
		f := func(a, b Set) bool {
			return IsSorted(Union(nil, a, b)) &&
				IsSorted(Intersection(nil, a, b)) &&
				IsSorted(Difference(nil, a, b))
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})

	t.Run("intersection subset", func(t *testing.T) {
		f := func(a, b Set) bool {
			i := Intersection(nil, a, b)
			return Subset(i, a) && Subset(i, b)
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})

	t.Run("jaccard symmetric and bounded", func(t *testing.T) {
		f := func(a, b Set) bool {
			j := Jaccard(a, b)
			return j == Jaccard(b, a) && j >= 0 && j <= 1
		}
		if err := quick.Check(f, cfg); err != nil {
			t.Error(err)
		}
	})
}

func BenchmarkIntersectionLen(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	x := randomSet(r, 10000)
	y := randomSet(r, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IntersectionLen(x, y)
	}
}

func BenchmarkUnion(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	x := randomSet(r, 10000)
	y := randomSet(r, 10000)
	dst := make(Set, 0, len(x)+len(y))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = Union(dst[:0], x, y)
	}
}
