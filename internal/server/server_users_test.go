package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"

	"goalrec"
	"goalrec/internal/faultinject"
)

// newUserTestServer builds a server with an attached user store over the
// standard test library, returning both.
func newUserTestServer(t *testing.T) (*httptest.Server, *goalrec.UserStore) {
	t.Helper()
	engine := goalrec.NewEngineFromLibrary(testLibrary(t))
	us := goalrec.NewUserStore(engine, goalrec.UserStoreOptions{})
	ts := httptest.NewServer(NewFromEngine(engine, nil, WithUserStore(us)))
	t.Cleanup(ts.Close)
	return ts, us
}

func doReq(t *testing.T, method, url, body string) (*http.Response, []byte) {
	t.Helper()
	var rd *strings.Reader
	if body != "" {
		rd = strings.NewReader(body)
	} else {
		rd = strings.NewReader("")
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf [1 << 16]byte
	n, _ := resp.Body.Read(buf[:])
	return resp, buf[:n]
}

// TestUserLifecycle appends a history in two batches, checks dedup counts,
// and asserts the stored-history recommendation equals POSTing the same
// history to /v1/recommend.
func TestUserLifecycle(t *testing.T) {
	ts, _ := newUserTestServer(t)

	resp, body := doReq(t, "POST", ts.URL+"/v1/users/alice/actions",
		`{"actions": ["potatoes", "carrots", "potatoes"]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append status = %d (%s)", resp.StatusCode, body)
	}
	var app userAppendResponse
	if err := json.Unmarshal(body, &app); err != nil {
		t.Fatal(err)
	}
	if app.Added != 2 || app.Total != 2 {
		t.Fatalf("first append = %+v", app)
	}
	// Second batch: one duplicate, one new, one unknown-to-the-library name.
	resp, body = doReq(t, "POST", ts.URL+"/v1/users/alice/actions",
		`{"actions": ["carrots", "nutmeg", "no-such-action"]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append status = %d (%s)", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &app); err != nil {
		t.Fatal(err)
	}
	if app.Added != 2 || app.Total != 4 {
		t.Fatalf("second append = %+v", app)
	}

	for _, strat := range []string{"focus-cmp", "focus-cl", "breadth", "best-match"} {
		resp, body = doReq(t, "GET", ts.URL+"/v1/users/alice/recommend?strategy="+strat+"&k=5", "")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: recommend status = %d (%s)", strat, resp.StatusCode, body)
		}
		var got userRecommendResponse
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.UnknownActions, []string{"no-such-action"}) {
			t.Fatalf("%s: unknown = %v", strat, got.UnknownActions)
		}
		// Oracle: the same history POSTed as a request activity.
		_, wantBody := postJSON(t, ts.URL+"/v1/recommend",
			`{"activity": ["potatoes", "carrots", "nutmeg", "no-such-action"], "strategy": "`+strat+`", "k": 5}`)
		var want recommendResponse
		if err := json.Unmarshal(wantBody, &want); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Recommendations, want.Recommendations) {
			t.Fatalf("%s: stored-history ranking diverged:\ngot  %v\nwant %v",
				strat, got.Recommendations, want.Recommendations)
		}
	}

	// Delete, then both query and re-delete answer 404.
	if resp, body = doReq(t, "DELETE", ts.URL+"/v1/users/alice", ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status = %d (%s)", resp.StatusCode, body)
	}
	if resp, _ = doReq(t, "GET", ts.URL+"/v1/users/alice/recommend", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("recommend after delete = %d", resp.StatusCode)
	}
	if resp, _ = doReq(t, "DELETE", ts.URL+"/v1/users/alice", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("second delete = %d", resp.StatusCode)
	}
}

// TestUserEndpointsValidation covers the error paths: unknown user, bad k,
// empty actions, capacity exhaustion, and the 501 without a store.
func TestUserEndpointsValidation(t *testing.T) {
	ts, _ := newUserTestServer(t)

	if resp, _ := doReq(t, "GET", ts.URL+"/v1/users/ghost/recommend", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown user = %d", resp.StatusCode)
	}
	if resp, _ := doReq(t, "POST", ts.URL+"/v1/users/u/actions", `{"actions": []}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty actions = %d", resp.StatusCode)
	}
	doReq(t, "POST", ts.URL+"/v1/users/u/actions", `{"actions": ["potatoes"]}`)
	if resp, _ := doReq(t, "GET", ts.URL+"/v1/users/u/recommend?k=0", ""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("k=0 = %d", resp.StatusCode)
	}
	if resp, _ := doReq(t, "GET", ts.URL+"/v1/users/u/recommend?strategy=nope", ""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad strategy = %d", resp.StatusCode)
	}

	// Capacity: a store with room for one user rejects the second.
	engine := goalrec.NewEngineFromLibrary(testLibrary(t))
	small := goalrec.NewUserStore(engine, goalrec.UserStoreOptions{MaxUsers: 1})
	ts2 := httptest.NewServer(NewFromEngine(engine, nil, WithUserStore(small)))
	defer ts2.Close()
	doReq(t, "POST", ts2.URL+"/v1/users/a/actions", `{"actions": ["potatoes"]}`)
	if resp, _ := doReq(t, "POST", ts2.URL+"/v1/users/b/actions", `{"actions": ["potatoes"]}`); resp.StatusCode != http.StatusInsufficientStorage {
		t.Fatalf("over-capacity append = %d", resp.StatusCode)
	}

	// Without WithUserStore the endpoints answer 501.
	bare := newTestServer(t)
	if resp, _ := doReq(t, "POST", bare.URL+"/v1/users/u/actions", `{"actions": ["x"]}`); resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("append without store = %d", resp.StatusCode)
	}
	if resp, _ := doReq(t, "GET", bare.URL+"/v1/users/u/recommend", ""); resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("recommend without store = %d", resp.StatusCode)
	}
}

// TestUserMetrics asserts the /v1/metrics users block reflects store
// activity: one cold build, then a hit.
func TestUserMetrics(t *testing.T) {
	ts, us := newUserTestServer(t)
	doReq(t, "POST", ts.URL+"/v1/users/u/actions", `{"actions": ["potatoes", "carrots"]}`)
	doReq(t, "GET", ts.URL+"/v1/users/u/recommend", "")
	doReq(t, "GET", ts.URL+"/v1/users/u/recommend", "")
	st := us.Stats()
	if st.Cold != 1 || st.Hits != 1 || st.Users != 1 || st.Appends != 2 {
		t.Fatalf("stats = %+v", st)
	}
	resp, body := doReq(t, "GET", ts.URL+"/v1/metrics", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", resp.StatusCode)
	}
	var m struct {
		Users struct {
			Enabled  bool `json:"enabled"`
			Counters struct {
				Users int64  `json:"users"`
				Cold  uint64 `json:"cold"`
				Hits  uint64 `json:"hits"`
			} `json:"counters"`
		} `json:"users"`
	}
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("metrics decode: %v (%s)", err, body)
	}
	if !m.Users.Enabled || m.Users.Counters.Users != 1 || m.Users.Counters.Cold != 1 || m.Users.Counters.Hits != 1 {
		t.Fatalf("metrics users block = %+v", m.Users)
	}
}

// TestUserViewAcrossIngest appends, ingests more implementations (same
// lineage, epoch grows), and checks the advanced view still matches the
// from-scratch oracle — including a previously unresolvable name that the
// new epoch can now resolve.
func TestUserViewAcrossIngest(t *testing.T) {
	ts, us := newUserTestServer(t)
	doReq(t, "POST", ts.URL+"/v1/users/u/actions", `{"actions": ["potatoes", "beets"]}`)
	resp, body := doReq(t, "GET", ts.URL+"/v1/users/u/recommend?strategy=breadth&k=5", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recommend = %d (%s)", resp.StatusCode, body)
	}
	var before userRecommendResponse
	if err := json.Unmarshal(body, &before); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before.UnknownActions, []string{"beets"}) {
		t.Fatalf("unknown before ingest = %v", before.UnknownActions)
	}

	// Ingest a goal that teaches the library "beets"; the same-lineage epoch
	// extension must advance the view and resolve the parked name.
	resp, body = postJSON(t, ts.URL+"/v1/implementations",
		`{"implementations": [{"goal": "borscht", "actions": ["beets", "potatoes", "dill"]}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest = %d (%s)", resp.StatusCode, body)
	}

	resp, body = doReq(t, "GET", ts.URL+"/v1/users/u/recommend?strategy=breadth&k=5", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("recommend after ingest = %d (%s)", resp.StatusCode, body)
	}
	var after userRecommendResponse
	if err := json.Unmarshal(body, &after); err != nil {
		t.Fatal(err)
	}
	if len(after.UnknownActions) != 0 {
		t.Fatalf("unknown after ingest = %v", after.UnknownActions)
	}
	_, wantBody := postJSON(t, ts.URL+"/v1/recommend",
		`{"activity": ["potatoes", "beets"], "strategy": "breadth", "k": 5}`)
	var want recommendResponse
	if err := json.Unmarshal(wantBody, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(after.Recommendations, want.Recommendations) {
		t.Fatalf("post-ingest ranking diverged:\ngot  %v\nwant %v", after.Recommendations, want.Recommendations)
	}
	if st := us.Stats(); st.Advances != 1 {
		t.Fatalf("advances = %d, want 1 (stats %+v)", st.Advances, st)
	}
}

// TestUserRecommendDuringReload races stored-history recommendations against
// /v1/reload swapping between two libraries via a faultinject script that
// also fails intermittently. Every 200 must carry a ranking bit-identical to
// one of the two libraries' from-scratch oracles — a blend of stale view
// counters and new postings matches neither. Run under -race.
func TestUserRecommendDuringReload(t *testing.T) {
	libA := testLibrary(t)
	bb := goalrec.NewBuilder()
	for _, impl := range [][]string{
		{"borscht", "beets", "potatoes", "onions"},
		{"borscht", "beets", "carrots", "dill"},
		{"stew", "potatoes", "carrots", "onions"},
		{"pickles", "cucumbers", "dill", "salt"},
	} {
		if err := bb.AddImplementation(impl[0], impl[1:]...); err != nil {
			t.Fatal(err)
		}
	}
	libB := bb.Build()

	history := []string{"potatoes", "carrots"}
	// Per-library, per-strategy oracles computed on isolated engines.
	strategies := []goalrec.Strategy{goalrec.FocusCompleteness, goalrec.FocusCloseness, goalrec.Breadth, goalrec.BestMatch}
	oracleFor := func(lib *goalrec.Library) map[goalrec.Strategy][]goalrec.Recommendation {
		out := make(map[goalrec.Strategy][]goalrec.Recommendation)
		e := goalrec.NewEngineFromLibrary(lib)
		for _, s := range strategies {
			rec, err := e.Recommender(s)
			if err != nil {
				t.Fatal(err)
			}
			out[s] = rec.Recommend(history, 10)
		}
		return out
	}
	oa, ob := oracleFor(libA), oracleFor(libB)

	// Reload script: every third call fails; successes alternate B, A, B, ...
	rl := &faultinject.Reloader{Build: func(call int) (*goalrec.Library, error) {
		if call%3 == 0 {
			return nil, faultinject.ErrInjected
		}
		if call%2 == 1 {
			return libB, nil
		}
		return libA, nil
	}}
	engine := goalrec.NewEngineFromLibrary(libA)
	us := goalrec.NewUserStore(engine, goalrec.UserStoreOptions{})
	srv := NewFromEngine(engine, nil, WithUserStore(us), WithReloader(rl.Load))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if _, err := us.Append("u", history); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var reloadWG, wg sync.WaitGroup
	reloadWG.Add(1)
	go func() {
		defer reloadWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			resp, body := doReq(t, "POST", ts.URL+"/v1/reload", "")
			if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusInternalServerError {
				t.Errorf("reload status = %d: %s", resp.StatusCode, body)
				return
			}
		}
	}()
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 150; i++ {
				s := strategies[(w+i)%len(strategies)]
				resp, body := doReq(t, "GET", ts.URL+"/v1/users/u/recommend?strategy="+string(s)+"&k=10", "")
				if resp.StatusCode != http.StatusOK {
					t.Errorf("%s: recommend status = %d: %s", s, resp.StatusCode, body)
					return
				}
				var got userRecommendResponse
				if err := json.Unmarshal(body, &got); err != nil {
					t.Errorf("%s: decode: %v", s, err)
					return
				}
				if !sameRecs(got.Recommendations, oa[s]) && !sameRecs(got.Recommendations, ob[s]) {
					t.Errorf("%s: ranking matches neither library's oracle: %v", s, got.Recommendations)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	reloadWG.Wait()
}

// sameRecs compares a decoded wire ranking against an in-process oracle,
// treating nil and empty as equal (JSON decoding yields nil for an empty
// list).
func sameRecs(a []recommendationPayload, b []goalrec.Recommendation) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Action != b[i].Action || a[i].Score != b[i].Score {
			return false
		}
	}
	return true
}
