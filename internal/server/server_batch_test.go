package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestRecommendBatchEndpoint(t *testing.T) {
	ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/recommend/batch",
		`{"activities": [["potatoes", "carrots"], [], ["potatoes", "dragonfruit"]],
		  "strategy": "breadth", "k": 3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var got batchRecommendResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Strategy != "breadth" {
		t.Errorf("strategy = %q", got.Strategy)
	}
	if len(got.Results) != 3 {
		t.Fatalf("results = %d, want 3 (one per activity, in order)", len(got.Results))
	}

	// Item 0 must match the single-activity endpoint bit for bit.
	r2, b2 := postJSON(t, ts.URL+"/v1/recommend",
		`{"activity": ["potatoes", "carrots"], "strategy": "breadth", "k": 3}`)
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("single recommend = %d: %s", r2.StatusCode, b2)
	}
	var single recommendResponse
	if err := json.Unmarshal(b2, &single); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got.Results[0].Recommendations) != fmt.Sprint(single.Recommendations) {
		t.Errorf("batch item diverges from single endpoint:\n got %v\nwant %v",
			got.Results[0].Recommendations, single.Recommendations)
	}
	if got.Epoch != single.Epoch {
		t.Errorf("batch epoch = %d, single = %d", got.Epoch, single.Epoch)
	}

	// Item 1 is invalid: a per-item error, not a failed request.
	if got.Results[1].Error != "activity must not be empty" {
		t.Errorf("empty-activity error = %q", got.Results[1].Error)
	}
	if len(got.Results[1].Recommendations) != 0 {
		t.Errorf("invalid item scored anyway: %v", got.Results[1].Recommendations)
	}

	// Item 2 scores on its known actions and reports the unknown one.
	if len(got.Results[2].Recommendations) == 0 {
		t.Error("item with unknown action produced nothing")
	}
	if len(got.Results[2].UnknownActions) != 1 || got.Results[2].UnknownActions[0] != "dragonfruit" {
		t.Errorf("unknown_actions = %v, want [dragonfruit]", got.Results[2].UnknownActions)
	}
}

func TestRecommendBatchValidation(t *testing.T) {
	ts := newTestServer(t)
	overLimit := `{"activities": [` + strings.Repeat(`["potatoes"],`, maxBatchActivities) + `["potatoes"]]}`
	cases := []struct {
		name string
		body string
	}{
		{"no activities", `{"activities": []}`},
		{"too many activities", overLimit},
		{"bad strategy", `{"activities": [["potatoes"]], "strategy": "magic"}`},
		{"bad k", `{"activities": [["potatoes"]], "k": -2}`},
		{"unknown field", `{"activities": [["potatoes"]], "bogus": 1}`},
		{"malformed", `{`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/recommend/batch", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status = %d, body %s", resp.StatusCode, body)
			}
			var e errorResponse
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Errorf("error envelope missing: %s", body)
			}
		})
	}
}

// TestRecommendBatchDeadline pins that an expired request deadline fails
// the whole batch as 504: partial batches are never returned as 200s.
func TestRecommendBatchDeadline(t *testing.T) {
	ts := httptest.NewServer(New(testLibrary(t), nil, WithRequestTimeout(time.Nanosecond)))
	defer ts.Close()
	resp, body := postJSON(t, ts.URL+"/v1/recommend/batch",
		`{"activities": [["potatoes"], ["carrots"]]}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504: %s", resp.StatusCode, body)
	}
	m := getMetrics(t, ts)
	if m.Lifecycle["deadline_exceeded"] != 1 {
		t.Errorf("deadline_exceeded = %d, want 1", m.Lifecycle["deadline_exceeded"])
	}
	if m.Errors["recommend_batch"] != 1 {
		t.Errorf("recommend_batch errors = %d, want 1", m.Errors["recommend_batch"])
	}
}

// TestRecommendBatchClientDisconnect pins the 499 path for batches.
func TestRecommendBatchClientDisconnect(t *testing.T) {
	s := New(testLibrary(t), nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/v1/recommend/batch",
		strings.NewReader(`{"activities": [["potatoes"]]}`)).WithContext(ctx)
	rr := httptest.NewRecorder()
	s.ServeHTTP(rr, req)
	if rr.Code != statusClientClosedRequest {
		t.Fatalf("status = %d, want %d: %s", rr.Code, statusClientClosedRequest, rr.Body)
	}
}

// TestRecommendBatchGated pins that a batch occupies one admission slot:
// with the gate held, the whole request is shed as a 503.
func TestRecommendBatchGated(t *testing.T) {
	lib := testLibrary(t)
	rl := &blockingReloader{lib: lib, entered: make(chan struct{}), release: make(chan struct{})}
	srv := New(lib, nil,
		WithReloader(rl.Load),
		WithMaxInflight(1),
		WithAdmissionWait(time.Millisecond))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, _ := postJSON(t, ts.URL+"/v1/reload", "")
		if resp.StatusCode != http.StatusOK {
			t.Errorf("blocked reload finished with %d", resp.StatusCode)
		}
	}()
	<-rl.entered

	resp, body := postJSON(t, ts.URL+"/v1/recommend/batch", `{"activities": [["potatoes"]]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed batch missing Retry-After")
	}

	close(rl.release)
	<-done
	resp, body = postJSON(t, ts.URL+"/v1/recommend/batch", `{"activities": [["potatoes"]]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release batch = %d: %s", resp.StatusCode, body)
	}
}
