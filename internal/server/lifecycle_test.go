// Request-lifecycle tests: deadlines, client cancellation, admission
// control, readiness, reload failure streaks, panic recovery, and the
// lifecycle counters in /v1/metrics.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"goalrec"
	"goalrec/internal/faultinject"
)

// metricsSnapshot decodes /v1/metrics.
type metricsSnapshot struct {
	Epoch               uint64           `json:"epoch"`
	Requests            map[string]int64 `json:"requests"`
	Errors              map[string]int64 `json:"errors"`
	Lifecycle           map[string]int64 `json:"lifecycle"`
	ReloadFailureStreak int64            `json:"reload_failure_streak"`
}

func getMetrics(t *testing.T, ts *httptest.Server) metricsSnapshot {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m metricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestLifecycleMetricsKeys(t *testing.T) {
	ts := newTestServer(t)
	m := getMetrics(t, ts)
	for _, key := range []string{"sheds", "canceled", "deadline_exceeded", "reload_failures"} {
		if v, ok := m.Lifecycle[key]; !ok || v != 0 {
			t.Errorf("lifecycle[%q] = %d (present=%v), want 0 and present", key, v, ok)
		}
	}
	if m.ReloadFailureStreak != 0 {
		t.Errorf("reload_failure_streak = %d, want 0", m.ReloadFailureStreak)
	}
}

func TestRequestTimeoutExpiresAs504(t *testing.T) {
	// A nanosecond deadline has always expired by the time scoring starts,
	// so the 504 path is deterministic.
	ts := httptest.NewServer(New(testLibrary(t), nil, WithRequestTimeout(time.Nanosecond)))
	defer ts.Close()
	resp, body := postJSON(t, ts.URL+"/v1/recommend", `{"activity": ["potatoes"]}`)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Error != "deadline exceeded" {
		t.Errorf("body = %s, want {\"error\":\"deadline exceeded\"}", body)
	}
	m := getMetrics(t, ts)
	if m.Lifecycle["deadline_exceeded"] != 1 {
		t.Errorf("deadline_exceeded = %d, want 1", m.Lifecycle["deadline_exceeded"])
	}
	if m.Errors["recommend"] != 1 {
		t.Errorf("recommend errors = %d, want 1", m.Errors["recommend"])
	}
}

func TestRequestTimeoutGenerousPasses(t *testing.T) {
	ts := httptest.NewServer(New(testLibrary(t), nil, WithRequestTimeout(10*time.Second)))
	defer ts.Close()
	resp, body := postJSON(t, ts.URL+"/v1/recommend", `{"activity": ["potatoes"]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, body)
	}
}

// TestClientDisconnectAborts pins the 499 path: a request whose context is
// already canceled (the server-side shape of a client hangup) is aborted
// by the scoring entry check and counted as canceled, not as a server
// error.
func TestClientDisconnectAborts(t *testing.T) {
	s := New(testLibrary(t), nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, tc := range []struct{ name, path, body string }{
		{"recommend", "/v1/recommend", `{"activity": ["potatoes"]}`},
		{"spaces", "/v1/spaces", `{"activity": ["potatoes"]}`},
		{"explain", "/v1/explain", `{"activity": ["potatoes"], "action": "pickles"}`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			req := httptest.NewRequest(http.MethodPost, tc.path, strings.NewReader(tc.body)).WithContext(ctx)
			rr := httptest.NewRecorder()
			s.ServeHTTP(rr, req)
			if rr.Code != statusClientClosedRequest {
				t.Fatalf("status = %d, want %d: %s", rr.Code, statusClientClosedRequest, rr.Body)
			}
		})
	}
	var canceled int64
	fmt.Sscanf(s.lifecycle.Get("canceled").String(), "%d", &canceled)
	if canceled != 3 {
		t.Errorf("canceled counter = %d, want 3", canceled)
	}
}

// TestCancelMidScoring drives a request through faultinject.CancelAfter so
// the context dies while the request is in flight rather than at entry.
func TestCancelMidScoring(t *testing.T) {
	s := New(testLibrary(t), nil)
	h := faultinject.CancelAfter(faultinject.SlowHandler(s, 50*time.Millisecond), time.Millisecond)
	req := httptest.NewRequest(http.MethodPost, "/v1/recommend",
		strings.NewReader(`{"activity": ["potatoes"]}`))
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, req)
	// SlowHandler honors the canceled context and abandons the request
	// before it reaches the server, mirroring net/http dropping the
	// connection; nothing must have been written and no panic raised.
	if rr.Body.Len() != 0 {
		t.Errorf("abandoned request wrote a body: %s", rr.Body)
	}
}

func TestActivityTooLong(t *testing.T) {
	ts := newTestServer(t)
	long := `["a"` + strings.Repeat(`,"a"`, maxActivityActions) + `]`
	for _, tc := range []struct{ name, path, body string }{
		{"recommend", "/v1/recommend", `{"activity": ` + long + `}`},
		{"spaces", "/v1/spaces", `{"activity": ` + long + `}`},
		{"explain", "/v1/explain", `{"activity": ` + long + `, "action": "pickles"}`},
	} {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+tc.path, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status = %d, body %.120s", resp.StatusCode, body)
			}
			var e errorResponse
			if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e.Error, "activity too long") {
				t.Errorf("error envelope = %.120s", body)
			}
		})
	}
}

func TestReadyzDraining(t *testing.T) {
	srv := New(testLibrary(t), nil)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	get := func() (int, map[string]interface{}) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var m map[string]interface{}
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, m
	}

	if code, m := get(); code != http.StatusOK || m["status"] != "ok" {
		t.Fatalf("ready server: code=%d body=%v", code, m)
	}
	srv.SetDraining(true)
	if code, m := get(); code != http.StatusServiceUnavailable || m["status"] != "draining" {
		t.Fatalf("draining server: code=%d body=%v", code, m)
	}
	// Draining must not stop the instance from serving in-flight traffic.
	if resp, body := postJSON(t, ts.URL+"/v1/recommend", `{"activity": ["potatoes"]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("recommend while draining = %d: %s", resp.StatusCode, body)
	}
	srv.SetDraining(false)
	if code, _ := get(); code != http.StatusOK {
		t.Fatalf("undrained server not ready: %d", code)
	}
}

// TestReloadFailureStreak covers the /v1/reload error path end to end: a
// failing reloader answers 500 while the old epoch keeps serving, the
// failure streak grows and is visible in /readyz and /v1/metrics, and one
// success resets it.
func TestReloadFailureStreak(t *testing.T) {
	lib := testLibrary(t)
	next := goalrec.NewBuilder()
	if err := next.AddImplementation("borscht", "beets", "onions"); err != nil {
		t.Fatal(err)
	}
	rl := &faultinject.Reloader{FailFirst: 2, Lib: next.Build()}
	srv := New(lib, nil, WithReloader(rl.Load))
	ts := httptest.NewServer(srv)
	defer ts.Close()
	epoch0 := srv.Epoch()

	for i := 1; i <= 2; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/reload", "")
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("reload %d status = %d: %s", i, resp.StatusCode, body)
		}
		var e errorResponse
		if err := json.Unmarshal(body, &e); err != nil || !strings.Contains(e.Error, "reload failed") {
			t.Errorf("reload %d envelope = %s", i, body)
		}
		if srv.Epoch() != epoch0 {
			t.Fatalf("failed reload moved the epoch: %d -> %d", epoch0, srv.Epoch())
		}
		if got := srv.ReloadFailureStreak(); got != int64(i) {
			t.Errorf("streak after failure %d = %d", i, got)
		}
	}
	// The library must still answer queries from the original epoch.
	if resp, body := postJSON(t, ts.URL+"/v1/recommend", `{"activity": ["potatoes"]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("recommend after failed reloads = %d: %s", resp.StatusCode, body)
	}
	m := getMetrics(t, ts)
	if m.Lifecycle["reload_failures"] != 2 || m.ReloadFailureStreak != 2 {
		t.Errorf("metrics reload_failures=%d streak=%d, want 2/2", m.Lifecycle["reload_failures"], m.ReloadFailureStreak)
	}

	// Third call succeeds: epoch advances and the streak resets (but the
	// cumulative failure counter does not).
	resp, body := postJSON(t, ts.URL+"/v1/reload", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload 3 status = %d: %s", resp.StatusCode, body)
	}
	if srv.Epoch() <= epoch0 {
		t.Errorf("successful reload did not advance the epoch")
	}
	if got := srv.ReloadFailureStreak(); got != 0 {
		t.Errorf("streak after success = %d, want 0", got)
	}
	m = getMetrics(t, ts)
	if m.Lifecycle["reload_failures"] != 2 {
		t.Errorf("cumulative reload_failures = %d, want 2", m.Lifecycle["reload_failures"])
	}
}

// TestCountedPanicRecovery exercises the counted() wrapper's recovery
// path directly: a panicking handler becomes a JSON 500 and an error
// count, not a dead connection.
func TestCountedPanicRecovery(t *testing.T) {
	s := New(testLibrary(t), nil)
	h := s.counted("boom", func(http.ResponseWriter, *http.Request) {
		panic("injected")
	})
	rr := httptest.NewRecorder()
	h(rr, httptest.NewRequest(http.MethodGet, "/boom", nil))
	if rr.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rr.Code)
	}
	var e errorResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &e); err != nil || e.Error != "internal error" {
		t.Errorf("body = %s", rr.Body)
	}
	if got := s.errors.Get("boom"); got == nil || got.String() != "1" {
		t.Errorf("boom error count = %v, want 1", got)
	}

	// A panic after the handler already wrote must not try to write again
	// (WriteHeader on a written response panics in net/http).
	late := s.counted("late", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		panic("after write")
	})
	rr = httptest.NewRecorder()
	late(rr, httptest.NewRequest(http.MethodGet, "/late", nil))
	if rr.Code != http.StatusOK {
		t.Errorf("late panic rewrote status: %d", rr.Code)
	}
}

// blockingReloader blocks inside Load until released, letting tests hold
// the admission gate open deterministically.
type blockingReloader struct {
	lib     *goalrec.Library
	entered chan struct{}
	release chan struct{}
}

func (b *blockingReloader) Load() (*goalrec.Library, error) {
	close(b.entered)
	<-b.release
	return b.lib, nil
}

// TestAdmissionControlSheds fills the one-slot gate with a reload that
// blocks until released, proves the next expensive request is shed as
// 503 + Retry-After (and counted), and that the gate frees up afterwards.
func TestAdmissionControlSheds(t *testing.T) {
	lib := testLibrary(t)
	rl := &blockingReloader{lib: lib, entered: make(chan struct{}), release: make(chan struct{})}
	srv := New(lib, nil,
		WithReloader(rl.Load),
		WithMaxInflight(1),
		WithAdmissionWait(time.Millisecond))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, _ := postJSON(t, ts.URL+"/v1/reload", "")
		if resp.StatusCode != http.StatusOK {
			t.Errorf("blocked reload finished with %d", resp.StatusCode)
		}
	}()
	<-rl.entered // the reload now owns the only slot

	resp, body := postJSON(t, ts.URL+"/v1/recommend", `{"activity": ["potatoes"]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	var e errorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Errorf("shed envelope = %s", body)
	}
	// Cheap endpoints are not gated: health, readiness and metrics must
	// answer even while the gate is full.
	for _, path := range []string{"/healthz", "/readyz", "/v1/metrics"} {
		r2, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if r2.StatusCode != http.StatusOK {
			t.Errorf("%s while gate full = %d", path, r2.StatusCode)
		}
	}

	close(rl.release)
	<-done
	m := getMetrics(t, ts)
	if m.Lifecycle["sheds"] < 1 {
		t.Errorf("sheds = %d, want >= 1", m.Lifecycle["sheds"])
	}
	// With the slot free again, requests are admitted.
	resp, body = postJSON(t, ts.URL+"/v1/recommend", `{"activity": ["potatoes"]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-release recommend = %d: %s", resp.StatusCode, body)
	}
}

// TestAdmittedRequestsDeterministicUnderLoad is the acceptance pin for
// admission control: under concurrency pressure with a tight gate, shed
// requests get 503s but every admitted request returns a byte-identical
// body to the unloaded run.
func TestAdmittedRequestsDeterministicUnderLoad(t *testing.T) {
	lib := testLibrary(t)
	srv := New(lib, nil, WithMaxInflight(2), WithAdmissionWait(time.Millisecond))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const reqBody = `{"activity": ["potatoes", "carrots"], "strategy": "best-match", "k": 5}`
	_, baseline := postJSON(t, ts.URL+"/v1/recommend", reqBody)

	const n = 64
	var wg sync.WaitGroup
	type result struct {
		status int
		body   string
	}
	results := make([]result, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postJSON(t, ts.URL+"/v1/recommend", reqBody)
			results[i] = result{resp.StatusCode, string(body)}
		}(i)
	}
	wg.Wait()

	admitted := 0
	for i, r := range results {
		switch r.status {
		case http.StatusOK:
			admitted++
			if r.body != string(baseline) {
				t.Fatalf("request %d diverged under load:\n got %s\nwant %s", i, r.body, baseline)
			}
		case http.StatusServiceUnavailable:
			// shed — fine
		default:
			t.Fatalf("request %d: unexpected status %d: %s", i, r.status, r.body)
		}
	}
	if admitted == 0 {
		t.Fatal("gate admitted nothing")
	}
	t.Logf("admitted %d/%d, shed %d", admitted, n, n-admitted)
}
