// Package server exposes a goal-implementation library as a JSON HTTP
// service: the shape a production deployment of the recommender takes.
//
// Endpoints:
//
//	GET  /healthz                     liveness probe
//	GET  /readyz                      readiness probe (503 while draining)
//	GET  /v1/stats                    library statistics
//	POST /v1/recommend                {"activity": [...], "strategy": "...", "k": N}
//	POST /v1/recommend/batch          {"activities": [[...], ...], "strategy": "...", "k": N}
//	POST /v1/spaces                   {"activity": [...]} → goal space with progress, action space
//	POST /v1/explain                  {"activity": [...], "action": "..."} → per-goal justification
//	POST /v1/implementations          {"implementations": [{"goal": ..., "actions": [...]}, ...]} live ingest
//	POST /v1/reload                   re-read the library source and swap it in
//	POST /v1/users/{id}/actions       {"actions": [...]} append to the user's stored history
//	GET  /v1/users/{id}/recommend     ?strategy=&metric=&k= score the stored history
//	DELETE /v1/users/{id}             forget the user (history + materialized view)
//
// The user endpoints (enabled with WithUserStore, 501 otherwise) serve
// per-user state the server owns: each user's deduplicated activity history
// plus a materialized counter view, so an append is one posting-row walk and
// a recommend scores pre-accumulated counters instead of rescanning the
// history — bit-identical to POSTing the same history to /v1/recommend.
//
// The server is epoch-based: it holds an atomic pointer to the current
// epoch's {library snapshot, recommender set} bundle. Queries load the
// bundle once and answer entirely from it, so they always see one
// consistent epoch; ingests and reloads publish the next epoch without
// blocking in-flight queries. Every response carries the epoch it was
// answered from.
//
// The request lifecycle is hardened for production traffic (see DESIGN.md,
// "Request lifecycle & failure modes"): WithRequestTimeout bounds every
// request with a deadline (504 on expiry), the request context is
// propagated into the scoring loops so client disconnects abort queries
// mid-flight (499), and WithMaxInflight puts a bounded-concurrency
// admission gate in front of the expensive endpoints, shedding excess load
// as 503 + Retry-After after a short bounded wait.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"goalrec"
)

// maxBodyBytes bounds request bodies; activities and ingest batches are
// small relative to this.
const maxBodyBytes = 1 << 20

// maxActivityActions bounds the activity length accepted by the scoring
// endpoints: longer activities are rejected with a 400 before any CPU is
// spent on them.
const maxActivityActions = 10_000

// statusClientClosedRequest is the nginx-convention status for a request
// aborted because the client went away; it is never seen by that client,
// but keeps the error accounting honest.
const statusClientClosedRequest = 499

// defaultAdmissionWait is how long an over-limit request may wait for an
// admission slot before being shed. Short by design: queueing beyond a few
// request-times only converts overload into latency.
const defaultAdmissionWait = 10 * time.Millisecond

// bundle pairs one epoch's library snapshot with the recommenders built
// over it. Queries that grabbed a bundle keep using it even while a newer
// epoch is being installed; dropping the whole bundle on swap is what
// invalidates the recommender caches.
type bundle struct {
	lib *goalrec.Library

	// pruneStats, when non-nil, enables the bound-driven pruned kernels for
	// every recommender in this bundle and receives their counters. The sink
	// is the Server's, shared across epochs, so the cumulative counters
	// survive swaps.
	pruneStats *goalrec.PruneStats

	mu   sync.Mutex
	recs map[string]goalrec.Recommender // lazily built per strategy/metric
}

func (s *Server) newBundle(lib *goalrec.Library) *bundle {
	return &bundle{lib: lib, pruneStats: s.pruneStats, recs: make(map[string]goalrec.Recommender)}
}

// recommender returns (building on first use) the bundle's recommender for
// the strategy/metric pair.
func (b *bundle) recommender(strategyName, metric string) (goalrec.Recommender, error) {
	if strategyName == "" {
		strategyName = string(goalrec.Breadth)
	}
	if metric == "" {
		metric = "cosine"
	}
	key := strategyName + "/" + metric
	b.mu.Lock()
	defer b.mu.Unlock()
	if rec, ok := b.recs[key]; ok {
		return rec, nil
	}
	// Serving workloads repeat activities heavily; strategies are
	// deterministic over the immutable snapshot, so an LRU per recommender
	// is sound — and it dies with the bundle, never serving a stale epoch.
	opts := []goalrec.RecommenderOption{
		goalrec.WithDistanceMetric(metric), goalrec.WithCache(4096),
	}
	if b.pruneStats != nil {
		opts = append(opts, goalrec.WithPruningStats(b.pruneStats))
	}
	rec, err := b.lib.Recommender(goalrec.Strategy(strategyName), opts...)
	if err != nil {
		return nil, err
	}
	b.recs[key] = rec
	return rec, nil
}

// Option customizes a Server.
type Option func(*Server)

// WithReloader installs the loader /v1/reload invokes to re-read the
// library from its source of truth. Without one, /v1/reload answers 501.
func WithReloader(load func() (*goalrec.Library, error)) Option {
	return func(s *Server) { s.reload = load }
}

// WithRequestTimeout bounds every request with a deadline. A request whose
// scoring outlives d is aborted mid-query and answered with a 504 whose
// body is {"error": "deadline exceeded"}. Zero (the default) disables the
// per-request deadline.
func WithRequestTimeout(d time.Duration) Option {
	return func(s *Server) { s.timeout = d }
}

// WithMaxInflight puts a bounded-concurrency admission gate in front of
// the expensive endpoints (recommend, spaces, explain, reload): at most n
// such requests run concurrently. An over-limit request waits briefly for
// a slot (see WithAdmissionWait) and is then shed as a 503 with a
// Retry-After header. n <= 0 (the default) disables the gate.
func WithMaxInflight(n int) Option {
	return func(s *Server) {
		if n > 0 {
			s.gate = make(chan struct{}, n)
		} else {
			s.gate = nil
		}
	}
}

// WithAdmissionWait sets how long an over-limit request may wait for an
// admission slot before being shed (default 10ms). Only meaningful with
// WithMaxInflight.
func WithAdmissionWait(d time.Duration) Option {
	return func(s *Server) { s.gateWait = d }
}

// WithPruning switches every served recommender to the bound-driven pruned
// kernels. Rankings are bit-identical to the default kernels; the pruning
// counters (blocks and candidates skipped, work ratios) are surfaced under
// "pruning" in /v1/metrics, cumulative across epochs.
func WithPruning() Option {
	return func(s *Server) { s.pruneStats = new(goalrec.PruneStats) }
}

// WithUserStore enables the /v1/users endpoints over us — typically
// Store.Users() so appends and deletes are journaled. Without it the user
// endpoints answer 501. The store's counters (materialized hits, cold
// builds, advances, evictions) appear under "users" in /v1/metrics.
func WithUserStore(us *goalrec.UserStore) Option {
	return func(s *Server) { s.users = us }
}

// WithStore surfaces the durable store's persistence health: /readyz and
// /v1/metrics gain a "storage" block (mode, last error, quarantined
// snapshots, scrub and prune counters), and /readyz reports "degraded" while
// the store is read-only — still 200, since reads keep serving.
func WithStore(st *goalrec.Store) Option {
	return func(s *Server) { s.store = st }
}

// Server routes recommendation requests against the current epoch of an
// evolving library.
type Server struct {
	engine *goalrec.Engine
	cur    atomic.Pointer[bundle]
	swapMu sync.Mutex // serializes bundle installs (monotonic epoch guard)
	reload func() (*goalrec.Library, error)

	mux *http.ServeMux
	log *log.Logger

	// Request-lifecycle knobs (see WithRequestTimeout / WithMaxInflight).
	timeout  time.Duration
	gate     chan struct{}
	gateWait time.Duration

	// pruneStats is non-nil iff WithPruning: the shared sink every bundle's
	// recommenders count into.
	pruneStats *goalrec.PruneStats

	// users is non-nil iff WithUserStore: the per-user history store behind
	// the /v1/users endpoints.
	users *goalrec.UserStore

	// store is non-nil iff WithStore: the durable store whose persistence
	// health /readyz and /v1/metrics surface.
	store *goalrec.Store

	// draining flips when the process has been told to shut down; /readyz
	// reports 503 so load balancers stop routing here while in-flight
	// requests finish.
	draining atomic.Bool

	// reloadStreak counts consecutive reload failures; any successful
	// reload resets it. Surfaced in /readyz and /v1/metrics.
	reloadStreak atomic.Int64

	// Operational counters, per instance (kept off the global expvar
	// registry so multiple servers can coexist in one process).
	requests  *expvar.Map
	errors    *expvar.Map
	lifecycle *expvar.Map // sheds, canceled, deadline_exceeded, reload_failures
}

// New returns a Server seeded with lib as its first epoch. logger may be
// nil to disable request logging.
func New(lib *goalrec.Library, logger *log.Logger, opts ...Option) *Server {
	return NewFromEngine(goalrec.NewEngineFromLibrary(lib), logger, opts...)
}

// NewFromEngine returns a Server that serves an existing engine — typically
// one recovered by goalrec.OpenStore, whose ingests are already journaled.
// The server starts at whatever epoch the engine currently publishes.
func NewFromEngine(engine *goalrec.Engine, logger *log.Logger, opts ...Option) *Server {
	s := &Server{
		engine:    engine,
		mux:       http.NewServeMux(),
		log:       logger,
		gateWait:  defaultAdmissionWait,
		requests:  new(expvar.Map).Init(),
		errors:    new(expvar.Map).Init(),
		lifecycle: new(expvar.Map).Init(),
	}
	// Pre-seed the lifecycle counters so /v1/metrics always reports them,
	// even at zero — dashboards should not have to handle absent keys.
	for _, key := range []string{"sheds", "canceled", "deadline_exceeded", "reload_failures"} {
		s.lifecycle.Add(key, 0)
	}
	// Options first: the seed bundle must already see pruning configuration.
	for _, opt := range opts {
		opt(s)
	}
	s.cur.Store(s.newBundle(s.engine.Snapshot()))
	s.mux.HandleFunc("GET /healthz", s.counted("healthz", s.handleHealth))
	s.mux.HandleFunc("GET /readyz", s.counted("readyz", s.handleReady))
	s.mux.HandleFunc("GET /v1/stats", s.counted("stats", s.handleStats))
	s.mux.HandleFunc("POST /v1/recommend", s.counted("recommend", s.gated("recommend", s.handleRecommend)))
	s.mux.HandleFunc("POST /v1/recommend/batch", s.counted("recommend_batch", s.gated("recommend_batch", s.handleRecommendBatch)))
	s.mux.HandleFunc("POST /v1/spaces", s.counted("spaces", s.gated("spaces", s.handleSpaces)))
	s.mux.HandleFunc("POST /v1/explain", s.counted("explain", s.gated("explain", s.handleExplain)))
	s.mux.HandleFunc("POST /v1/implementations", s.counted("implementations", s.handleIngest))
	s.mux.HandleFunc("POST /v1/reload", s.counted("reload", s.gated("reload", s.handleReload)))
	s.mux.HandleFunc("GET /v1/metrics", s.counted("metrics", s.handleMetrics))
	s.mux.HandleFunc("POST /v1/users/{id}/actions", s.counted("user_append", s.gated("user_append", s.handleUserAppend)))
	s.mux.HandleFunc("GET /v1/users/{id}/recommend", s.counted("user_recommend", s.gated("user_recommend", s.handleUserRecommend)))
	s.mux.HandleFunc("DELETE /v1/users/{id}", s.counted("user_delete", s.handleUserDelete))
	return s
}

// bundle returns the current epoch's bundle. Handlers load it exactly once
// per request so library, recommenders and reported epoch stay consistent.
func (s *Server) bundle() *bundle { return s.cur.Load() }

// Epoch returns the epoch the server currently answers from.
func (s *Server) Epoch() uint64 { return s.bundle().lib.Epoch() }

// Swap replaces the served library with lib as the next epoch and returns
// that epoch. In-flight requests finish against the bundle they loaded.
func (s *Server) Swap(lib *goalrec.Library) uint64 {
	return s.install(s.engine.Swap(lib))
}

// install publishes lib's bundle unless a newer (or the same) epoch is
// already being served — concurrent ingests and swaps race to install, and
// the guard keeps the served epoch monotonic.
func (s *Server) install(lib *goalrec.Library) uint64 {
	s.swapMu.Lock()
	defer s.swapMu.Unlock()
	if cur := s.cur.Load(); cur != nil && lib.Epoch() <= cur.lib.Epoch() {
		return cur.lib.Epoch()
	}
	s.cur.Store(s.newBundle(lib))
	return lib.Epoch()
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// SetDraining marks the server as (not) draining. While draining, /readyz
// answers 503 so load balancers route new traffic elsewhere; everything
// else keeps serving so in-flight and straggler requests complete.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Draining reports whether the server is draining.
func (s *Server) Draining() bool { return s.draining.Load() }

// NoteReloadFailure records a failed library reload (from /v1/reload or an
// external watch loop) and returns the current consecutive-failure streak.
func (s *Server) NoteReloadFailure() int64 {
	s.lifecycle.Add("reload_failures", 1)
	return s.reloadStreak.Add(1)
}

// NoteReloadSuccess resets the consecutive reload-failure streak.
func (s *Server) NoteReloadSuccess() { s.reloadStreak.Store(0) }

// ReloadFailureStreak returns the current consecutive reload-failure
// streak.
func (s *Server) ReloadFailureStreak() int64 { return s.reloadStreak.Load() }

// counted wraps a handler with per-endpoint request accounting, the
// optional per-request deadline, and panic recovery: a panicking handler
// is logged with its stack and answered with a JSON 500 (when nothing has
// been written yet) instead of killing the daemon's connection serving.
func (s *Server) counted(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(name, 1)
		if s.timeout > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
			defer cancel()
			r = r.WithContext(ctx)
		}
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		defer func() {
			if rec := recover(); rec != nil {
				s.errors.Add(name, 1)
				s.logf("server: panic in %s: %v\n%s", name, rec, debug.Stack())
				if !sw.wrote {
					s.writeError(sw, http.StatusInternalServerError, "internal error")
				}
				return
			}
			if sw.status >= 400 {
				s.errors.Add(name, 1)
			}
		}()
		h(sw, r)
	}
}

// gated wraps an expensive handler with the admission gate. Without
// WithMaxInflight the wrapper is free. Over the limit, the request waits
// up to gateWait for a slot and is then shed: 503 plus a Retry-After so
// well-behaved clients back off instead of hammering.
func (s *Server) gated(name string, h http.HandlerFunc) http.HandlerFunc {
	if s.gate == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		select {
		case s.gate <- struct{}{}:
		default:
			// Full: wait briefly for a slot, but give up on shed timeout or
			// the client hanging up.
			t := time.NewTimer(s.gateWait)
			defer t.Stop()
			select {
			case s.gate <- struct{}{}:
			case <-t.C:
				s.lifecycle.Add("sheds", 1)
				s.logf("server: shedding %s (inflight limit %d)", name, cap(s.gate))
				w.Header().Set("Retry-After", "1")
				s.writeError(w, http.StatusServiceUnavailable, "overloaded, retry later")
				return
			case <-r.Context().Done():
				s.lifecycle.Add("sheds", 1)
				w.Header().Set("Retry-After", "1")
				s.writeError(w, http.StatusServiceUnavailable, "overloaded, retry later")
				return
			}
		}
		defer func() { <-s.gate }()
		h(w, r)
	}
}

// statusWriter records the response status and whether anything was
// written, for error accounting and panic recovery.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(p)
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.log != nil {
		s.log.Printf(format, args...)
	}
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.logf("server: encoding response: %v", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	s.writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]interface{}{
		"status": "ok",
		"epoch":  s.bundle().lib.Epoch(),
	})
}

// handleReady is the readiness probe: 503 while draining (so load
// balancers stop routing here during shutdown), 200 otherwise. It also
// surfaces the reload-failure streak — a persistently failing reload means
// the instance is serving an increasingly stale epoch, which operators
// want visible even while the instance stays ready.
// It also reports "degraded" (still 200 — reads keep serving) with a
// "storage" block while a WithStore store is read-only.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	code := http.StatusOK
	resp := map[string]interface{}{
		"epoch":                 s.bundle().lib.Epoch(),
		"reload_failure_streak": s.reloadStreak.Load(),
	}
	if p := s.storagePayload(); p != nil {
		resp["storage"] = p
		if p.Mode != goalrec.StorageHealthy {
			status = "degraded"
		}
	}
	if s.draining.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	resp["status"] = status
	s.writeJSON(w, code, resp)
}

// storageStatusPayload mirrors goalrec.StorageStatus with wire-friendly
// names.
type storageStatusPayload struct {
	Mode          string   `json:"mode"`
	LastError     string   `json:"last_error,omitempty"`
	Quarantined   []string `json:"quarantined"`
	PruneFailures uint64   `json:"prune_failures"`
	Degradations  uint64   `json:"degradations"`
	Recoveries    uint64   `json:"recoveries"`
	ScrubPasses   uint64   `json:"scrub_passes"`
	ScrubFailures uint64   `json:"scrub_failures"`
	WALTears      uint64   `json:"wal_tears"`
}

// storagePayload snapshots the store's health, nil without WithStore.
func (s *Server) storagePayload() *storageStatusPayload {
	if s.store == nil {
		return nil
	}
	st := s.store.Status()
	q := st.Quarantined
	if q == nil {
		q = []string{}
	}
	return &storageStatusPayload{
		Mode:          st.Mode,
		LastError:     st.LastError,
		Quarantined:   q,
		PruneFailures: st.PruneFailures,
		Degradations:  st.Degradations,
		Recoveries:    st.Recoveries,
		ScrubPasses:   st.ScrubPasses,
		ScrubFailures: st.ScrubFailures,
		WALTears:      st.WALTears,
	}
}

// statsResponse mirrors goalrec.Stats with wire-friendly names.
type statsResponse struct {
	Epoch           uint64  `json:"epoch"`
	Implementations int     `json:"implementations"`
	Actions         int     `json:"actions"`
	Goals           int     `json:"goals"`
	AvgImplLen      float64 `json:"avg_implementation_len"`
	Connectivity    float64 `json:"connectivity"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	b := s.bundle()
	st := b.lib.Stats()
	s.writeJSON(w, http.StatusOK, statsResponse{
		Epoch:           b.lib.Epoch(),
		Implementations: st.Implementations,
		Actions:         st.Actions,
		Goals:           st.Goals,
		AvgImplLen:      st.AvgImplLen,
		Connectivity:    st.Connectivity,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	// Snapshot() on a nil sink yields zeros, so the pruning block is always
	// present; "enabled" says whether the counters can ever move.
	prune, err := json.Marshal(s.pruneStats.Snapshot())
	if err != nil {
		prune = []byte("{}")
	}
	users := []byte("{}")
	if s.users != nil {
		if u, err := json.Marshal(s.users.Stats()); err == nil {
			users = u
		}
	}
	storage := []byte(`{"enabled": false}`)
	if p := s.storagePayload(); p != nil {
		if b, err := json.Marshal(p); err == nil {
			storage = append([]byte(`{"enabled": true, "status": `), b...)
			storage = append(storage, '}')
		}
	}
	cacheStats := goalrec.BlockCacheMetrics()
	cache := []byte("{}")
	if b, err := json.Marshal(cacheStats); err == nil {
		cache = b
	}
	fmt.Fprintf(w, "{\"epoch\": %d, \"requests\": %s, \"errors\": %s, \"lifecycle\": %s, \"pruning\": {\"enabled\": %t, \"counters\": %s}, \"users\": {\"enabled\": %t, \"counters\": %s}, \"storage\": %s, \"block_cache\": {\"enabled\": %t, \"counters\": %s}, \"reload_failure_streak\": %d}\n",
		s.bundle().lib.Epoch(), s.requests.String(), s.errors.String(),
		s.lifecycle.String(), s.pruneStats != nil, prune, s.users != nil, users, storage,
		cacheStats.BudgetBytes > 0, cache, s.reloadStreak.Load())
}

// recommendRequest is the /v1/recommend body.
type recommendRequest struct {
	Activity []string `json:"activity"`
	Strategy string   `json:"strategy"` // default "breadth"
	Metric   string   `json:"metric"`   // best-match distance, default "cosine"
	K        int      `json:"k"`        // default 10
}

// recommendResponse is the /v1/recommend reply. UnknownActions lists the
// activity's actions the served epoch cannot resolve (and therefore
// ignored) — without it, a typo in an action name is indistinguishable
// from an action that merely scores low.
type recommendResponse struct {
	Epoch           uint64                  `json:"epoch"`
	Strategy        string                  `json:"strategy"`
	Recommendations []recommendationPayload `json:"recommendations"`
	UnknownActions  []string                `json:"unknown_actions,omitempty"`
}

type recommendationPayload struct {
	Action string  `json:"action"`
	Score  float64 `json:"score"`
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return false
	}
	return true
}

// validActivity enforces the shared activity bounds: non-empty and at most
// maxActivityActions actions. It writes the 400 itself on violation.
func (s *Server) validActivity(w http.ResponseWriter, activity []string) bool {
	if len(activity) == 0 {
		s.writeError(w, http.StatusBadRequest, "activity must not be empty")
		return false
	}
	if len(activity) > maxActivityActions {
		s.writeError(w, http.StatusBadRequest,
			"activity too long: %d actions (limit %d)", len(activity), maxActivityActions)
		return false
	}
	return true
}

// writeContextError maps a canceled or deadline-expired scoring error onto
// the wire: 504 {"error": "deadline exceeded"} when the request deadline
// ran out, 499 (client closed request) when the client hung up. It also
// bumps the matching lifecycle counter.
func (s *Server) writeContextError(w http.ResponseWriter, endpoint string, err error) {
	if errors.Is(err, context.DeadlineExceeded) {
		s.lifecycle.Add("deadline_exceeded", 1)
		s.logf("server: %s hit the request deadline", endpoint)
		s.writeError(w, http.StatusGatewayTimeout, "deadline exceeded")
		return
	}
	s.lifecycle.Add("canceled", 1)
	s.logf("server: %s canceled by the client", endpoint)
	s.writeError(w, statusClientClosedRequest, "client closed request")
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	var req recommendRequest
	if !s.decode(w, r, &req) {
		return
	}
	if !s.validActivity(w, req.Activity) {
		return
	}
	if req.K == 0 {
		req.K = 10
	}
	if req.K < 0 || req.K > 1000 {
		s.writeError(w, http.StatusBadRequest, "k must be in [1, 1000]")
		return
	}
	b := s.bundle()
	rec, err := b.recommender(req.Strategy, req.Metric)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	list, err := rec.RecommendContext(r.Context(), req.Activity, req.K)
	if err != nil {
		s.writeContextError(w, "recommend", err)
		return
	}
	resp := recommendResponse{
		Epoch:           b.lib.Epoch(),
		Strategy:        rec.Name(),
		Recommendations: make([]recommendationPayload, len(list)),
		UnknownActions:  b.lib.UnknownActions(req.Activity),
	}
	for i, rcm := range list {
		resp.Recommendations[i] = recommendationPayload{Action: rcm.Action, Score: rcm.Score}
	}
	s.logf("recommend strategy=%s k=%d activity=%d results=%d epoch=%d",
		rec.Name(), req.K, len(req.Activity), len(list), resp.Epoch)
	s.writeJSON(w, http.StatusOK, resp)
}

// maxBatchActivities bounds how many activities one batch request may
// carry; a batch occupies one admission slot, so an unbounded batch would
// let a single request monopolize the gate.
const maxBatchActivities = 256

// batchRecommendRequest is the /v1/recommend/batch body: one strategy and k
// applied to many activities.
type batchRecommendRequest struct {
	Activities [][]string `json:"activities"`
	Strategy   string     `json:"strategy"` // default "breadth"
	Metric     string     `json:"metric"`   // best-match distance, default "cosine"
	K          int        `json:"k"`        // default 10
}

// batchItemPayload is one activity's outcome, in input order. An invalid
// activity gets a per-item error while the rest of the batch still scores.
type batchItemPayload struct {
	Recommendations []recommendationPayload `json:"recommendations"`
	UnknownActions  []string                `json:"unknown_actions,omitempty"`
	Error           string                  `json:"error,omitempty"`
}

// batchRecommendResponse is the /v1/recommend/batch reply. Every item was
// answered from the same snapshot: Epoch is the epoch of the whole batch.
type batchRecommendResponse struct {
	Epoch    uint64             `json:"epoch"`
	Strategy string             `json:"strategy"`
	Results  []batchItemPayload `json:"results"`
}

// handleRecommendBatch scores many activities in one request: the body is
// decoded once, one bundle (snapshot + recommender) is resolved for the
// whole batch, and the activities fan out over the library's worker pool —
// all under this request's single admission slot and deadline. Per-item
// validation failures are reported per item; a deadline or disconnect
// mid-batch fails the whole request (504/499), since the remaining items
// can no longer be answered.
func (s *Server) handleRecommendBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRecommendRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Activities) == 0 {
		s.writeError(w, http.StatusBadRequest, "activities must not be empty")
		return
	}
	if len(req.Activities) > maxBatchActivities {
		s.writeError(w, http.StatusBadRequest,
			"too many activities: %d (limit %d)", len(req.Activities), maxBatchActivities)
		return
	}
	if req.K == 0 {
		req.K = 10
	}
	if req.K < 0 || req.K > 1000 {
		s.writeError(w, http.StatusBadRequest, "k must be in [1, 1000]")
		return
	}
	b := s.bundle()
	rec, err := b.recommender(req.Strategy, req.Metric)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	results := make([]batchItemPayload, len(req.Activities))
	scorable := make([]int, 0, len(req.Activities))
	for i, activity := range req.Activities {
		switch {
		case len(activity) == 0:
			results[i].Error = "activity must not be empty"
		case len(activity) > maxActivityActions:
			results[i].Error = fmt.Sprintf("activity too long: %d actions (limit %d)",
				len(activity), maxActivityActions)
		default:
			scorable = append(scorable, i)
		}
	}
	batch := make([][]string, len(scorable))
	for j, i := range scorable {
		batch[j] = req.Activities[i]
	}
	for j, res := range rec.RecommendBatch(r.Context(), batch, req.K) {
		if res.Err != nil {
			s.writeContextError(w, "recommend/batch", res.Err)
			return
		}
		i := scorable[j]
		results[i].Recommendations = make([]recommendationPayload, len(res.Recommendations))
		for n, rcm := range res.Recommendations {
			results[i].Recommendations[n] = recommendationPayload{Action: rcm.Action, Score: rcm.Score}
		}
		// The batch resolved every name once; its per-item unknown list is
		// authoritative, so no second vocabulary pass here.
		results[i].UnknownActions = res.UnknownActions
	}
	resp := batchRecommendResponse{
		Epoch:    b.lib.Epoch(),
		Strategy: rec.Name(),
		Results:  results,
	}
	s.logf("recommend/batch strategy=%s k=%d activities=%d epoch=%d",
		rec.Name(), req.K, len(req.Activities), resp.Epoch)
	s.writeJSON(w, http.StatusOK, resp)
}

// spacesRequest is the /v1/spaces body.
type spacesRequest struct {
	Activity []string `json:"activity"`
}

// spacesResponse reports the goal space (with progress) and action space of
// an activity, plus the activity actions unknown to the served epoch.
type spacesResponse struct {
	Epoch          uint64                `json:"epoch"`
	Goals          []goalProgressPayload `json:"goals"`
	Actions        []string              `json:"actions"`
	UnknownActions []string              `json:"unknown_actions,omitempty"`
}

type goalProgressPayload struct {
	Goal     string  `json:"goal"`
	Progress float64 `json:"progress"`
}

func (s *Server) handleSpaces(w http.ResponseWriter, r *http.Request) {
	var req spacesRequest
	if !s.decode(w, r, &req) {
		return
	}
	if !s.validActivity(w, req.Activity) {
		return
	}
	if err := r.Context().Err(); err != nil {
		s.writeContextError(w, "spaces", err)
		return
	}
	b := s.bundle()
	progress := b.lib.GoalProgress(req.Activity)
	goals := b.lib.GoalSpace(req.Activity)
	resp := spacesResponse{
		Epoch:          b.lib.Epoch(),
		Goals:          make([]goalProgressPayload, len(goals)),
		Actions:        b.lib.ActionSpace(req.Activity),
		UnknownActions: b.lib.UnknownActions(req.Activity),
	}
	for i, g := range goals {
		resp.Goals[i] = goalProgressPayload{Goal: g, Progress: progress[g]}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// explainRequest is the /v1/explain body.
type explainRequest struct {
	Activity []string `json:"activity"`
	Action   string   `json:"action"`
}

// explainResponse lists the goals justifying the action.
type explainResponse struct {
	Epoch        uint64               `json:"epoch"`
	Explanations []explanationPayload `json:"explanations"`
}

type explanationPayload struct {
	Goal            string  `json:"goal"`
	Implementations int     `json:"implementations"`
	ProgressBefore  float64 `json:"progress_before"`
	ProgressAfter   float64 `json:"progress_after"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req explainRequest
	if !s.decode(w, r, &req) {
		return
	}
	if req.Action == "" {
		s.writeError(w, http.StatusBadRequest, "activity and action are required")
		return
	}
	if !s.validActivity(w, req.Activity) {
		return
	}
	if err := r.Context().Err(); err != nil {
		s.writeContextError(w, "explain", err)
		return
	}
	b := s.bundle()
	exps := b.lib.Explain(req.Activity, req.Action)
	resp := explainResponse{
		Epoch:        b.lib.Epoch(),
		Explanations: make([]explanationPayload, len(exps)),
	}
	for i, e := range exps {
		resp.Explanations[i] = explanationPayload{
			Goal:            e.Goal,
			Implementations: e.Implementations,
			ProgressBefore:  e.ProgressBefore,
			ProgressAfter:   e.ProgressAfter,
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// ingestRequest is the /v1/implementations body.
type ingestRequest struct {
	Implementations []implementationPayload `json:"implementations"`
}

type implementationPayload struct {
	Goal    string   `json:"goal"`
	Actions []string `json:"actions"`
}

// ingestResponse reports what the batch did. On a partial failure the
// response is a 400 carrying the same fields plus the error: the valid
// prefix has been published and Added says how far ingestion got.
type ingestResponse struct {
	Epoch uint64 `json:"epoch"`
	Added int    `json:"added"`
	Error string `json:"error,omitempty"`
	// ReadOnly marks the distinct degraded-storage rejection: the store is
	// serving reads only, and the client should retry after the storage
	// heals rather than treat the batch as malformed.
	ReadOnly bool `json:"read_only,omitempty"`
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	var req ingestRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Implementations) == 0 {
		s.writeError(w, http.StatusBadRequest, "implementations must not be empty")
		return
	}
	impls := make([]goalrec.Implementation, len(req.Implementations))
	for i, p := range req.Implementations {
		impls[i] = goalrec.Implementation{Goal: p.Goal, Actions: p.Actions}
	}
	added, err := s.engine.AddImplementations(impls)
	epoch := s.install(s.engine.Snapshot())
	s.logf("ingest added=%d of %d epoch=%d", added, len(impls), epoch)
	if err != nil {
		// A journal failure means durability is gone, not that the request
		// was malformed: nothing was applied, and the operator must act. A
		// degraded (read-only) store is more specific still: the rejection
		// is temporary, so it gets 503 + Retry-After instead of a 500.
		status := http.StatusBadRequest
		resp := ingestResponse{Epoch: epoch, Added: added, Error: err.Error()}
		switch {
		case errors.Is(err, goalrec.ErrReadOnly):
			status = http.StatusServiceUnavailable
			resp.ReadOnly = true
			w.Header().Set("Retry-After", "1")
			s.errors.Add("ingest_read_only", 1)
		case errors.Is(err, goalrec.ErrJournal):
			status = http.StatusInternalServerError
			s.errors.Add("ingest_journal", 1)
		}
		s.writeJSON(w, status, resp)
		return
	}
	s.writeJSON(w, http.StatusOK, ingestResponse{Epoch: epoch, Added: added})
}

// reloadResponse is the /v1/reload reply.
type reloadResponse struct {
	Epoch           uint64 `json:"epoch"`
	Implementations int    `json:"implementations"`
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if s.reload == nil {
		s.writeError(w, http.StatusNotImplemented, "no reloader configured")
		return
	}
	lib, err := s.reload()
	if err != nil {
		// The old epoch keeps serving; reload failure must never take the
		// working library down with it.
		streak := s.NoteReloadFailure()
		s.logf("reload failed: %v (keeping epoch %d, failure streak %d)", err, s.Epoch(), streak)
		s.writeError(w, http.StatusInternalServerError, "reload failed: %v", err)
		return
	}
	s.NoteReloadSuccess()
	epoch := s.Swap(lib)
	s.logf("reload swapped in %d implementations at epoch %d", lib.NumImplementations(), epoch)
	s.writeJSON(w, http.StatusOK, reloadResponse{
		Epoch:           epoch,
		Implementations: lib.NumImplementations(),
	})
}

// userStoreReady answers the shared preconditions of the /v1/users handlers:
// a configured store (501 otherwise) and a non-empty path id.
func (s *Server) userStoreReady(w http.ResponseWriter, r *http.Request) (string, bool) {
	if s.users == nil {
		s.writeError(w, http.StatusNotImplemented, "no user store configured")
		return "", false
	}
	id := r.PathValue("id")
	if id == "" {
		s.writeError(w, http.StatusBadRequest, "user id must not be empty")
		return "", false
	}
	return id, true
}

// userAppendRequest is the POST /v1/users/{id}/actions body.
type userAppendRequest struct {
	Actions []string `json:"actions"`
}

// userAppendResponse reports the append: Added counts the actions that were
// new (duplicates of the stored history are dropped), Total is the history
// length afterwards.
type userAppendResponse struct {
	Epoch uint64 `json:"epoch"`
	Added int    `json:"added"`
	Total int    `json:"total"`
}

func (s *Server) handleUserAppend(w http.ResponseWriter, r *http.Request) {
	id, ok := s.userStoreReady(w, r)
	if !ok {
		return
	}
	var req userAppendRequest
	if !s.decode(w, r, &req) {
		return
	}
	if !s.validActivity(w, req.Actions) {
		return
	}
	added, err := s.users.Append(id, req.Actions)
	if err != nil {
		switch {
		case errors.Is(err, goalrec.ErrTooManyUsers):
			s.writeError(w, http.StatusInsufficientStorage, "%v", err)
		case errors.Is(err, goalrec.ErrReadOnly):
			s.errors.Add("user_read_only", 1)
			w.Header().Set("Retry-After", "1")
			s.writeError(w, http.StatusServiceUnavailable, "%v", err)
		case errors.Is(err, goalrec.ErrJournal):
			s.errors.Add("user_journal", 1)
			s.writeError(w, http.StatusInternalServerError, "%v", err)
		default:
			s.writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	history, herr := s.users.History(id)
	if herr != nil {
		// The user raced a delete after the append landed; report the append.
		history = nil
	}
	s.logf("user_append id=%s added=%d total=%d", id, added, len(history))
	s.writeJSON(w, http.StatusOK, userAppendResponse{
		Epoch: s.engine.Epoch(), Added: added, Total: len(history),
	})
}

// userRecommendResponse is the GET /v1/users/{id}/recommend reply — the same
// shape as /v1/recommend, answered from the user's stored history.
type userRecommendResponse struct {
	Epoch           uint64                  `json:"epoch"`
	Strategy        string                  `json:"strategy"`
	Recommendations []recommendationPayload `json:"recommendations"`
	UnknownActions  []string                `json:"unknown_actions,omitempty"`
}

func (s *Server) handleUserRecommend(w http.ResponseWriter, r *http.Request) {
	id, ok := s.userStoreReady(w, r)
	if !ok {
		return
	}
	q := r.URL.Query()
	strategyName := q.Get("strategy")
	if strategyName == "" {
		strategyName = string(goalrec.Breadth)
	}
	metric := q.Get("metric")
	if metric == "" {
		metric = "cosine"
	}
	k := 10
	if kq := q.Get("k"); kq != "" {
		n, err := strconv.Atoi(kq)
		if err != nil || n < 1 || n > 1000 {
			s.writeError(w, http.StatusBadRequest, "k must be in [1, 1000]")
			return
		}
		k = n
	}
	res, err := s.users.Recommend(r.Context(), id, goalrec.Strategy(strategyName), k,
		goalrec.WithDistanceMetric(metric))
	if err != nil {
		switch {
		case errors.Is(err, goalrec.ErrUnknownUser):
			s.writeError(w, http.StatusNotFound, "unknown user %q", id)
		case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
			s.writeContextError(w, "user_recommend", err)
		default:
			s.writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	resp := userRecommendResponse{
		Epoch:           res.Epoch,
		Strategy:        strategyName,
		Recommendations: make([]recommendationPayload, len(res.Recommendations)),
		UnknownActions:  res.UnknownActions,
	}
	for i, rcm := range res.Recommendations {
		resp.Recommendations[i] = recommendationPayload{Action: rcm.Action, Score: rcm.Score}
	}
	s.logf("user_recommend id=%s strategy=%s k=%d results=%d epoch=%d",
		id, strategyName, k, len(resp.Recommendations), resp.Epoch)
	s.writeJSON(w, http.StatusOK, resp)
}

// userDeleteResponse is the DELETE /v1/users/{id} reply.
type userDeleteResponse struct {
	Deleted bool `json:"deleted"`
}

func (s *Server) handleUserDelete(w http.ResponseWriter, r *http.Request) {
	id, ok := s.userStoreReady(w, r)
	if !ok {
		return
	}
	if err := s.users.Delete(id); err != nil {
		switch {
		case errors.Is(err, goalrec.ErrUnknownUser):
			s.writeError(w, http.StatusNotFound, "unknown user %q", id)
		case errors.Is(err, goalrec.ErrReadOnly):
			s.errors.Add("user_read_only", 1)
			w.Header().Set("Retry-After", "1")
			s.writeError(w, http.StatusServiceUnavailable, "%v", err)
		case errors.Is(err, goalrec.ErrJournal):
			s.errors.Add("user_journal", 1)
			s.writeError(w, http.StatusInternalServerError, "%v", err)
		default:
			s.writeError(w, http.StatusBadRequest, "%v", err)
		}
		return
	}
	s.logf("user_delete id=%s", id)
	s.writeJSON(w, http.StatusOK, userDeleteResponse{Deleted: true})
}
