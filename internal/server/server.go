// Package server exposes a goal-implementation library as a JSON HTTP
// service: the shape a production deployment of the recommender takes.
//
// Endpoints:
//
//	GET  /healthz                     liveness probe
//	GET  /v1/stats                    library statistics
//	POST /v1/recommend                {"activity": [...], "strategy": "...", "k": N}
//	POST /v1/spaces                   {"activity": [...]} → goal space with progress, action space
//
// All handlers are read-only against an immutable library and safe for
// arbitrary concurrency.
package server

import (
	"encoding/json"
	"expvar"
	"fmt"
	"log"
	"net/http"
	"sync"

	"goalrec"
)

// maxBodyBytes bounds request bodies; activities are small.
const maxBodyBytes = 1 << 20

// Server routes recommendation requests against one library.
type Server struct {
	lib *goalrec.Library
	mux *http.ServeMux
	log *log.Logger

	mu   sync.Mutex
	recs map[string]goalrec.Recommender // lazily built per strategy

	// Operational counters, also exported at /debug/vars.
	requests *expvar.Map
	errors   *expvar.Map
}

// New returns a Server for lib. logger may be nil to disable request
// logging.
func New(lib *goalrec.Library, logger *log.Logger) *Server {
	s := &Server{
		lib:      lib,
		mux:      http.NewServeMux(),
		log:      logger,
		recs:     make(map[string]goalrec.Recommender),
		requests: new(expvar.Map).Init(),
		errors:   new(expvar.Map).Init(),
	}
	s.mux.HandleFunc("GET /healthz", s.counted("healthz", s.handleHealth))
	s.mux.HandleFunc("GET /v1/stats", s.counted("stats", s.handleStats))
	s.mux.HandleFunc("POST /v1/recommend", s.counted("recommend", s.handleRecommend))
	s.mux.HandleFunc("POST /v1/spaces", s.counted("spaces", s.handleSpaces))
	s.mux.HandleFunc("POST /v1/explain", s.counted("explain", s.handleExplain))
	// Per-instance operational counters (kept off the global expvar
	// registry so multiple servers can coexist in one process).
	s.mux.HandleFunc("GET /v1/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"requests\": %s, \"errors\": %s}\n", s.requests.String(), s.errors.String())
	})
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// counted wraps a handler with per-endpoint request accounting.
func (s *Server) counted(name string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.requests.Add(name, 1)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h(sw, r)
		if sw.status >= 400 {
			s.errors.Add(name, 1)
		}
	}
}

// statusWriter records the response status for error accounting.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (s *Server) logf(format string, args ...interface{}) {
	if s.log != nil {
		s.log.Printf(format, args...)
	}
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.logf("server: encoding response: %v", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	s.writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// statsResponse mirrors goalrec.Stats with wire-friendly names.
type statsResponse struct {
	Implementations int     `json:"implementations"`
	Actions         int     `json:"actions"`
	Goals           int     `json:"goals"`
	AvgImplLen      float64 `json:"avg_implementation_len"`
	Connectivity    float64 `json:"connectivity"`
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	st := s.lib.Stats()
	s.writeJSON(w, http.StatusOK, statsResponse{
		Implementations: st.Implementations,
		Actions:         st.Actions,
		Goals:           st.Goals,
		AvgImplLen:      st.AvgImplLen,
		Connectivity:    st.Connectivity,
	})
}

// recommendRequest is the /v1/recommend body.
type recommendRequest struct {
	Activity []string `json:"activity"`
	Strategy string   `json:"strategy"` // default "breadth"
	Metric   string   `json:"metric"`   // best-match distance, default "cosine"
	K        int      `json:"k"`        // default 10
}

// recommendResponse is the /v1/recommend reply.
type recommendResponse struct {
	Strategy        string                  `json:"strategy"`
	Recommendations []recommendationPayload `json:"recommendations"`
}

type recommendationPayload struct {
	Action string  `json:"action"`
	Score  float64 `json:"score"`
}

// recommender returns (building on first use) the recommender for the
// strategy/metric pair.
func (s *Server) recommender(strategyName, metric string) (goalrec.Recommender, error) {
	if strategyName == "" {
		strategyName = string(goalrec.Breadth)
	}
	if metric == "" {
		metric = "cosine"
	}
	key := strategyName + "/" + metric
	s.mu.Lock()
	defer s.mu.Unlock()
	if rec, ok := s.recs[key]; ok {
		return rec, nil
	}
	// Serving workloads repeat activities heavily; strategies are
	// deterministic over the immutable library, so an LRU per recommender
	// is sound.
	rec, err := s.lib.Recommender(goalrec.Strategy(strategyName),
		goalrec.WithDistanceMetric(metric), goalrec.WithCache(4096))
	if err != nil {
		return nil, err
	}
	s.recs[key] = rec
	return rec, nil
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid request body: %v", err)
		return false
	}
	return true
}

func (s *Server) handleRecommend(w http.ResponseWriter, r *http.Request) {
	var req recommendRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Activity) == 0 {
		s.writeError(w, http.StatusBadRequest, "activity must not be empty")
		return
	}
	if req.K == 0 {
		req.K = 10
	}
	if req.K < 0 || req.K > 1000 {
		s.writeError(w, http.StatusBadRequest, "k must be in [1, 1000]")
		return
	}
	rec, err := s.recommender(req.Strategy, req.Metric)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	list := rec.Recommend(req.Activity, req.K)
	resp := recommendResponse{
		Strategy:        rec.Name(),
		Recommendations: make([]recommendationPayload, len(list)),
	}
	for i, rcm := range list {
		resp.Recommendations[i] = recommendationPayload{Action: rcm.Action, Score: rcm.Score}
	}
	s.logf("recommend strategy=%s k=%d activity=%d results=%d", rec.Name(), req.K, len(req.Activity), len(list))
	s.writeJSON(w, http.StatusOK, resp)
}

// spacesRequest is the /v1/spaces body.
type spacesRequest struct {
	Activity []string `json:"activity"`
}

// spacesResponse reports the goal space (with progress) and action space of
// an activity.
type spacesResponse struct {
	Goals   []goalProgressPayload `json:"goals"`
	Actions []string              `json:"actions"`
}

type goalProgressPayload struct {
	Goal     string  `json:"goal"`
	Progress float64 `json:"progress"`
}

// explainRequest is the /v1/explain body.
type explainRequest struct {
	Activity []string `json:"activity"`
	Action   string   `json:"action"`
}

// explainResponse lists the goals justifying the action.
type explainResponse struct {
	Explanations []explanationPayload `json:"explanations"`
}

type explanationPayload struct {
	Goal            string  `json:"goal"`
	Implementations int     `json:"implementations"`
	ProgressBefore  float64 `json:"progress_before"`
	ProgressAfter   float64 `json:"progress_after"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req explainRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Activity) == 0 || req.Action == "" {
		s.writeError(w, http.StatusBadRequest, "activity and action are required")
		return
	}
	exps := s.lib.Explain(req.Activity, req.Action)
	resp := explainResponse{Explanations: make([]explanationPayload, len(exps))}
	for i, e := range exps {
		resp.Explanations[i] = explanationPayload{
			Goal:            e.Goal,
			Implementations: e.Implementations,
			ProgressBefore:  e.ProgressBefore,
			ProgressAfter:   e.ProgressAfter,
		}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSpaces(w http.ResponseWriter, r *http.Request) {
	var req spacesRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Activity) == 0 {
		s.writeError(w, http.StatusBadRequest, "activity must not be empty")
		return
	}
	progress := s.lib.GoalProgress(req.Activity)
	goals := s.lib.GoalSpace(req.Activity)
	resp := spacesResponse{
		Goals:   make([]goalProgressPayload, len(goals)),
		Actions: s.lib.ActionSpace(req.Activity),
	}
	for i, g := range goals {
		resp.Goals[i] = goalProgressPayload{Goal: g, Progress: progress[g]}
	}
	s.writeJSON(w, http.StatusOK, resp)
}
