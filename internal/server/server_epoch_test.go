package server

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"goalrec"
)

func TestEpochOnResponses(t *testing.T) {
	ts := newTestServer(t)

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var health struct {
		Status string `json:"status"`
		Epoch  uint64 `json:"epoch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Epoch != 1 {
		t.Errorf("healthz = %+v, want status ok at epoch 1", health)
	}

	_, body := postJSON(t, ts.URL+"/v1/recommend", `{"activity": ["potatoes"]}`)
	var rec recommendResponse
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Epoch != 1 {
		t.Errorf("recommend epoch = %d, want 1", rec.Epoch)
	}
}

func TestUnknownActionsSurfaced(t *testing.T) {
	ts := newTestServer(t)

	_, body := postJSON(t, ts.URL+"/v1/recommend",
		`{"activity": ["potatoes", "durian", "carrots", "durian"]}`)
	var rec recommendResponse
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rec.UnknownActions, []string{"durian"}) {
		t.Errorf("recommend unknown_actions = %v, want [durian]", rec.UnknownActions)
	}

	_, body = postJSON(t, ts.URL+"/v1/spaces", `{"activity": ["zucchini", "potatoes"]}`)
	var sp spacesResponse
	if err := json.Unmarshal(body, &sp); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sp.UnknownActions, []string{"zucchini"}) {
		t.Errorf("spaces unknown_actions = %v, want [zucchini]", sp.UnknownActions)
	}

	// Fully known activities omit the field.
	_, body = postJSON(t, ts.URL+"/v1/recommend", `{"activity": ["potatoes"]}`)
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	if _, ok := raw["unknown_actions"]; ok {
		t.Errorf("unknown_actions present for fully known activity: %s", body)
	}
}

func TestIngestServedNextRequest(t *testing.T) {
	ts := newTestServer(t)

	resp, body := postJSON(t, ts.URL+"/v1/implementations",
		`{"implementations": [
			{"goal": "borscht", "actions": ["beets", "carrots", "potatoes"]},
			{"goal": "roasted beets", "actions": ["beets", "butter"]}
		]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status = %d: %s", resp.StatusCode, body)
	}
	var ing ingestResponse
	if err := json.Unmarshal(body, &ing); err != nil {
		t.Fatal(err)
	}
	if ing.Added != 2 || ing.Epoch != 2 {
		t.Errorf("ingest = %+v, want added 2 at epoch 2", ing)
	}

	// The very next request serves the new implementations at the new epoch.
	resp, body = postJSON(t, ts.URL+"/v1/spaces", `{"activity": ["beets"]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("spaces status = %d: %s", resp.StatusCode, body)
	}
	var sp spacesResponse
	if err := json.Unmarshal(body, &sp); err != nil {
		t.Fatal(err)
	}
	if sp.Epoch != 2 {
		t.Errorf("spaces epoch = %d, want 2", sp.Epoch)
	}
	goals := make([]string, len(sp.Goals))
	for i, g := range sp.Goals {
		goals[i] = g.Goal
	}
	if !reflect.DeepEqual(goals, []string{"borscht", "roasted beets"}) {
		t.Errorf("goals after ingest = %v", goals)
	}
	if sp.UnknownActions != nil {
		t.Errorf("beets still unknown after ingest: %v", sp.UnknownActions)
	}

	// Stats reflect the grown library.
	sresp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Implementations != 5 || st.Epoch != 2 {
		t.Errorf("stats after ingest = %+v", st)
	}
}

func TestIngestPartialFailure(t *testing.T) {
	ts := newTestServer(t)

	resp, body := postJSON(t, ts.URL+"/v1/implementations",
		`{"implementations": [
			{"goal": "borscht", "actions": ["beets"]},
			{"goal": "", "actions": ["salt"]},
			{"goal": "soup", "actions": ["water"]}
		]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("partial ingest status = %d: %s", resp.StatusCode, body)
	}
	var ing ingestResponse
	if err := json.Unmarshal(body, &ing); err != nil {
		t.Fatal(err)
	}
	if ing.Added != 1 || ing.Error == "" {
		t.Errorf("partial ingest = %+v, want added 1 with error", ing)
	}
	// The valid prefix is live.
	_, body = postJSON(t, ts.URL+"/v1/spaces", `{"activity": ["beets"]}`)
	var sp spacesResponse
	if err := json.Unmarshal(body, &sp); err != nil {
		t.Fatal(err)
	}
	if len(sp.Goals) != 1 || sp.Goals[0].Goal != "borscht" {
		t.Errorf("goals after partial ingest = %v", sp.Goals)
	}
	// "water" from after the failure point was never ingested.
	_, body = postJSON(t, ts.URL+"/v1/spaces", `{"activity": ["water"]}`)
	if err := json.Unmarshal(body, &sp); err != nil {
		t.Fatal(err)
	}
	if len(sp.Goals) != 0 {
		t.Errorf("post-failure implementation leaked in: %v", sp.Goals)
	}

	resp, body = postJSON(t, ts.URL+"/v1/implementations", `{"implementations": []}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty ingest status = %d: %s", resp.StatusCode, body)
	}
}

func TestReloadWithoutReloader(t *testing.T) {
	ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/reload", "")
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("reload status = %d: %s", resp.StatusCode, body)
	}
}

func TestReloadSwapAndFallback(t *testing.T) {
	var nextLib *goalrec.Library
	var loadErr error
	srv := New(testLibrary(t), nil, WithReloader(func() (*goalrec.Library, error) {
		return nextLib, loadErr
	}))
	ts := httptest.NewServer(srv)
	defer ts.Close()

	b := goalrec.NewBuilder()
	if err := b.AddImplementation("new world", "one action"); err != nil {
		t.Fatal(err)
	}
	nextLib = b.Build()

	resp, body := postJSON(t, ts.URL+"/v1/reload", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status = %d: %s", resp.StatusCode, body)
	}
	var rel reloadResponse
	if err := json.Unmarshal(body, &rel); err != nil {
		t.Fatal(err)
	}
	if rel.Implementations != 1 || rel.Epoch != 2 {
		t.Errorf("reload = %+v, want 1 implementation at epoch 2", rel)
	}
	_, body = postJSON(t, ts.URL+"/v1/spaces", `{"activity": ["one action"]}`)
	var sp spacesResponse
	if err := json.Unmarshal(body, &sp); err != nil {
		t.Fatal(err)
	}
	if len(sp.Goals) != 1 || sp.Goals[0].Goal != "new world" {
		t.Errorf("goals after reload = %v", sp.Goals)
	}

	// A failing reload answers 500 and keeps the current epoch serving.
	loadErr = errors.New("library file corrupted")
	resp, body = postJSON(t, ts.URL+"/v1/reload", "")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("failed reload status = %d: %s", resp.StatusCode, body)
	}
	if got := srv.Epoch(); got != 2 {
		t.Errorf("epoch after failed reload = %d, want 2", got)
	}
	resp, body = postJSON(t, ts.URL+"/v1/spaces", `{"activity": ["one action"]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("spaces after failed reload status = %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &sp); err != nil {
		t.Fatal(err)
	}
	if len(sp.Goals) != 1 {
		t.Errorf("old epoch no longer serving after failed reload: %v", sp.Goals)
	}
}

func TestPanicRecovery(t *testing.T) {
	srv := New(testLibrary(t), nil)
	h := srv.counted("boom", func(http.ResponseWriter, *http.Request) {
		panic("handler exploded")
	})
	rr := httptest.NewRecorder()
	h(rr, httptest.NewRequest(http.MethodGet, "/boom", nil))
	if rr.Code != http.StatusInternalServerError {
		t.Errorf("status = %d, want 500", rr.Code)
	}
	var e errorResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &e); err != nil || e.Error == "" {
		t.Errorf("panic response not a JSON error envelope: %q", rr.Body.String())
	}
	if got := srv.errors.Get("boom"); got == nil || got.String() != "1" {
		t.Errorf("panic not counted as error: %v", got)
	}

	// A panic after the response started cannot rewrite the status; it must
	// still be swallowed and counted.
	h = srv.counted("late", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		panic("too late")
	})
	rr = httptest.NewRecorder()
	h(rr, httptest.NewRequest(http.MethodGet, "/late", nil))
	if rr.Code != http.StatusOK {
		t.Errorf("late panic rewrote status to %d", rr.Code)
	}
	if got := srv.errors.Get("late"); got == nil || got.String() != "1" {
		t.Errorf("late panic not counted: %v", got)
	}
}
