package server

import (
	"bytes"
	"encoding/json"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"goalrec"
)

func testLibrary(t *testing.T) *goalrec.Library {
	t.Helper()
	b := goalrec.NewBuilder()
	add := func(goal string, actions ...string) {
		t.Helper()
		if err := b.AddImplementation(goal, actions...); err != nil {
			t.Fatal(err)
		}
	}
	add("olivier salad", "potatoes", "carrots", "pickles")
	add("mashed potatoes", "potatoes", "nutmeg", "butter")
	add("pan-fried carrots", "carrots", "nutmeg")
	return b.Build()
}

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(New(testLibrary(t), nil))
	t.Cleanup(ts.Close)
	return ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf [1 << 16]byte
	n, _ := resp.Body.Read(buf[:])
	return resp, buf[:n]
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d", resp.StatusCode)
	}
}

func TestStats(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Implementations != 3 || got.Actions != 5 || got.Goals != 3 {
		t.Errorf("stats = %+v", got)
	}
}

func TestRecommend(t *testing.T) {
	ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/recommend",
		`{"activity": ["potatoes", "carrots"], "strategy": "breadth", "k": 3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var got recommendResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Strategy != "breadth" {
		t.Errorf("strategy = %q", got.Strategy)
	}
	if len(got.Recommendations) == 0 {
		t.Fatal("no recommendations")
	}
	for _, r := range got.Recommendations {
		if r.Action == "potatoes" || r.Action == "carrots" {
			t.Errorf("performed action recommended: %v", r)
		}
	}
}

func TestRecommendDefaults(t *testing.T) {
	ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/recommend", `{"activity": ["potatoes"]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var got recommendResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if got.Strategy != "breadth" {
		t.Errorf("default strategy = %q, want breadth", got.Strategy)
	}
}

func TestRecommendValidation(t *testing.T) {
	ts := newTestServer(t)
	cases := []struct {
		name string
		body string
	}{
		{"empty activity", `{"activity": []}`},
		{"bad strategy", `{"activity": ["potatoes"], "strategy": "magic"}`},
		{"bad k", `{"activity": ["potatoes"], "k": -2}`},
		{"unknown field", `{"activity": ["potatoes"], "bogus": 1}`},
		{"malformed", `{`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, body := postJSON(t, ts.URL+"/v1/recommend", tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status = %d, body %s", resp.StatusCode, body)
			}
			var e errorResponse
			if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
				t.Errorf("error envelope missing: %s", body)
			}
		})
	}
}

func TestRecommendMethodNotAllowed(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/recommend")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/recommend status = %d, want 405", resp.StatusCode)
	}
}

func TestSpaces(t *testing.T) {
	ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/spaces", `{"activity": ["potatoes", "carrots"]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var got spacesResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Goals) != 3 {
		t.Fatalf("goals = %v", got.Goals)
	}
	byName := map[string]float64{}
	for _, g := range got.Goals {
		byName[g.Goal] = g.Progress
	}
	if byName["olivier salad"] != 2.0/3.0 {
		t.Errorf("olivier progress = %v", byName["olivier salad"])
	}
	if len(got.Actions) == 0 {
		t.Error("empty action space")
	}
}

func TestExplain(t *testing.T) {
	ts := newTestServer(t)
	resp, body := postJSON(t, ts.URL+"/v1/explain",
		`{"activity": ["potatoes", "carrots"], "action": "pickles"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, body)
	}
	var got explainResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	if len(got.Explanations) != 1 {
		t.Fatalf("explanations = %v", got.Explanations)
	}
	e := got.Explanations[0]
	if e.Goal != "olivier salad" || e.ProgressAfter != 1 {
		t.Errorf("explanation = %+v", e)
	}
	// Missing fields are rejected.
	resp, _ = postJSON(t, ts.URL+"/v1/explain", `{"activity": ["potatoes"]}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing action status = %d", resp.StatusCode)
	}
}

func TestRequestLogging(t *testing.T) {
	var buf bytes.Buffer
	logger := log.New(&buf, "", 0)
	ts := httptest.NewServer(New(testLibrary(t), logger))
	defer ts.Close()
	postJSON(t, ts.URL+"/v1/recommend", `{"activity": ["potatoes"]}`)
	if !strings.Contains(buf.String(), "recommend strategy=breadth") {
		t.Errorf("request not logged: %q", buf.String())
	}
}

func TestMetrics(t *testing.T) {
	ts := newTestServer(t)
	// One success, one error.
	if _, err := http.Get(ts.URL + "/v1/stats"); err != nil {
		t.Fatal(err)
	}
	postJSON(t, ts.URL+"/v1/recommend", `{"activity": []}`)

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		Requests map[string]int `json:"requests"`
		Errors   map[string]int `json:"errors"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Requests["stats"] != 1 {
		t.Errorf("stats requests = %d, want 1", got.Requests["stats"])
	}
	if got.Requests["recommend"] != 1 || got.Errors["recommend"] != 1 {
		t.Errorf("recommend counters = %+v", got)
	}
	if got.Errors["stats"] != 0 {
		t.Errorf("stats errors = %d", got.Errors["stats"])
	}
}

func TestConcurrentRequests(t *testing.T) {
	ts := newTestServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			strategyName := []string{"breadth", "focus-cmp", "focus-cl", "best-match"}[i%4]
			resp, err := http.Post(ts.URL+"/v1/recommend", "application/json",
				strings.NewReader(`{"activity": ["potatoes"], "strategy": "`+strategyName+`"}`))
			if err != nil {
				errs <- err
				return
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPruningServer drives every strategy through a pruning-enabled server,
// checks the responses match an unpruned twin bit-for-bit, and verifies the
// metrics endpoint reports the pruning block with live counters.
func TestPruningServer(t *testing.T) {
	pruned := httptest.NewServer(New(testLibrary(t), nil, WithPruning()))
	t.Cleanup(pruned.Close)
	plain := newTestServer(t)

	for _, strategy := range []string{"focus-cmp", "focus-cl", "breadth", "best-match"} {
		body := `{"activity": ["potatoes", "carrots"], "strategy": "` + strategy + `", "k": 3}`
		resp, got := postJSON(t, pruned.URL+"/v1/recommend", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status = %d: %s", strategy, resp.StatusCode, got)
		}
		_, want := postJSON(t, plain.URL+"/v1/recommend", body)
		if !bytes.Equal(got, want) {
			t.Errorf("%s: pruned response diverged:\ngot  %s\nwant %s", strategy, got, want)
		}
	}

	resp, err := http.Get(pruned.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var metrics struct {
		Pruning struct {
			Enabled  bool                       `json:"enabled"`
			Counters goalrec.PruneStatsSnapshot `json:"counters"`
		} `json:"pruning"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	if !metrics.Pruning.Enabled {
		t.Error("metrics report pruning disabled on a WithPruning server")
	}
	if metrics.Pruning.Counters.ImplsAssociated == 0 {
		t.Errorf("pruning counters never moved: %+v", metrics.Pruning.Counters)
	}
}

// TestPruningDisabledMetrics pins the metrics shape without WithPruning: the
// pruning block is present, disabled, all zeros.
func TestPruningDisabledMetrics(t *testing.T) {
	ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var metrics struct {
		Pruning struct {
			Enabled  bool                       `json:"enabled"`
			Counters goalrec.PruneStatsSnapshot `json:"counters"`
		} `json:"pruning"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	if metrics.Pruning.Enabled || metrics.Pruning.Counters != (goalrec.PruneStatsSnapshot{}) {
		t.Errorf("unexpected pruning block: %+v", metrics.Pruning)
	}
}
