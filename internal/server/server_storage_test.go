package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"goalrec"
	"goalrec/internal/faultfs"
)

// newDegradableServer builds a server over a real store on an injectable
// filesystem, so tests can flip the disk out from under it.
func newDegradableServer(t *testing.T) (*httptest.Server, *goalrec.Store, *faultfs.Injector) {
	t.Helper()
	inj := faultfs.NewInjector(nil)
	st, err := goalrec.OpenStore(t.TempDir(), goalrec.StoreOptions{
		FS:            inj,
		ProbeInterval: 5 * time.Millisecond,
		RecoverAfter:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv := NewFromEngine(st.Engine(), nil, WithUserStore(st.Users()), WithStore(st))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	if _, err := st.Engine().AddImplementations([]goalrec.Implementation{
		{Goal: "olivier salad", Actions: []string{"potatoes", "carrots", "pickles"}},
		{Goal: "mashed potatoes", Actions: []string{"potatoes", "nutmeg", "butter"}},
	}); err != nil {
		t.Fatal(err)
	}
	return ts, st, inj
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]interface{}) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]interface{}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return resp, body
}

func storageBlock(t *testing.T, body map[string]interface{}, key string) map[string]interface{} {
	t.Helper()
	blk, ok := body[key].(map[string]interface{})
	if !ok {
		t.Fatalf("no %q block in %v", key, body)
	}
	return blk
}

// TestServerDegradedStorageLifecycle walks the whole degraded arc through
// the HTTP surface: healthy readyz/metrics, 503 + distinct body on ingest
// while degraded, reads still 200, degraded readyz, then automatic recovery.
func TestServerDegradedStorageLifecycle(t *testing.T) {
	ts, st, inj := newDegradableServer(t)

	// Healthy: readyz ok, storage block mode healthy.
	resp, body := getJSON(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("healthy readyz = %d %v", resp.StatusCode, body)
	}
	if blk := storageBlock(t, body, "storage"); blk["mode"] != "healthy" {
		t.Fatalf("healthy storage block = %v", blk)
	}

	// Disk full: ingest answers 503 with the distinct read_only body.
	inj.SetWriteBudget(0)
	resp, raw := postJSON(t, ts.URL+"/v1/implementations",
		`{"implementations": [{"goal": "soup", "actions": ["potatoes", "water"]}]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded ingest status = %d, body %s", resp.StatusCode, raw)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded ingest missing Retry-After")
	}
	var ing struct {
		Error    string `json:"error"`
		ReadOnly bool   `json:"read_only"`
	}
	if err := json.Unmarshal(raw, &ing); err != nil || !ing.ReadOnly || ing.Error == "" {
		t.Fatalf("degraded ingest body = %s (%v)", raw, err)
	}

	// User writes are 503 too; reads keep serving 200.
	resp, _ = postJSON(t, ts.URL+"/v1/users/u1/actions", `{"actions": ["potatoes"]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded user append = %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/recommend", `{"activity": ["potatoes"], "k": 3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read while degraded = %d", resp.StatusCode)
	}

	// readyz: degraded but still 200; metrics carry the storage block.
	resp, body = getJSON(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK || body["status"] != "degraded" {
		t.Fatalf("degraded readyz = %d %v", resp.StatusCode, body)
	}
	blk := storageBlock(t, body, "storage")
	if blk["mode"] != "read_only" || blk["last_error"] == "" {
		t.Fatalf("degraded storage block = %v", blk)
	}
	_, body = getJSON(t, ts.URL+"/v1/metrics")
	mblk := storageBlock(t, body, "storage")
	if mblk["enabled"] != true {
		t.Fatalf("metrics storage block = %v", mblk)
	}
	if sblk := storageBlock(t, mblk, "status"); sblk["mode"] != "read_only" {
		t.Fatalf("metrics storage status = %v", sblk)
	}

	// Space returns; the probe recovers the store and ingest succeeds again.
	inj.SetWriteBudget(-1)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) && st.Status().Mode != goalrec.StorageHealthy {
		time.Sleep(2 * time.Millisecond)
	}
	resp, raw = postJSON(t, ts.URL+"/v1/implementations",
		`{"implementations": [{"goal": "soup", "actions": ["potatoes", "water"]}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest after recovery = %d, body %s", resp.StatusCode, raw)
	}
	resp, body = getJSON(t, ts.URL+"/readyz")
	if resp.StatusCode != http.StatusOK || body["status"] != "ok" {
		t.Fatalf("recovered readyz = %d %v", resp.StatusCode, body)
	}
	if blk := storageBlock(t, body, "storage"); blk["recoveries"] != float64(1) {
		t.Fatalf("recovered storage block = %v", blk)
	}
}

// TestServerMetricsWithoutStore: no WithStore, the storage block stays
// {"enabled": false} rather than vanishing.
func TestServerMetricsWithoutStore(t *testing.T) {
	ts := newTestServer(t)
	_, body := getJSON(t, ts.URL+"/v1/metrics")
	blk := storageBlock(t, body, "storage")
	if blk["enabled"] != false {
		t.Fatalf("storage block without a store = %v", blk)
	}
}
