package extract

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzExtractStory checks that arbitrary text never panics the pipeline and
// that its outputs respect the canonical-phrase contract.
func FuzzExtractStory(f *testing.F) {
	f.Add("get fit", "I started jogging. Then I joined a gym!")
	f.Add("", "")
	f.Add("g", "1. buy shoes\n- run 5km\nstep 3: stretch")
	f.Add("g", "…unicode — æøå 日本語 then run")
	f.Add("g", strings.Repeat("run and then ", 50))
	f.Fuzz(func(t *testing.T, goal, text string) {
		e := NewExtractor(Options{})
		phrases := e.ExtractStory(Story{Goal: goal, Text: text})
		seen := map[string]bool{}
		for _, p := range phrases {
			if p == "" {
				t.Fatal("empty phrase emitted")
			}
			if seen[p] {
				t.Fatalf("duplicate phrase %q", p)
			}
			seen[p] = true
			if p != strings.ToLower(p) {
				t.Fatalf("phrase %q not lowercased", p)
			}
			if !utf8.ValidString(p) {
				t.Fatalf("phrase %q not valid UTF-8", p)
			}
		}
		// The library builder must accept whatever extraction produces.
		lib, _, kept := e.BuildLibrary([]Story{{Goal: goal, Text: text}})
		if kept > 0 && lib.NumImplementations() != kept {
			t.Fatalf("kept %d but built %d", kept, lib.NumImplementations())
		}
	})
}

// FuzzStem checks stemmer totality and idempotence-after-two-passes.
func FuzzStem(f *testing.F) {
	f.Add("running")
	f.Add("")
	f.Add("ß")
	f.Add("classes")
	f.Fuzz(func(t *testing.T, w string) {
		s1 := Stem(w)
		s2 := Stem(s1)
		s3 := Stem(s2)
		if s3 != s2 {
			t.Fatalf("stem does not converge: %q -> %q -> %q -> %q", w, s1, s2, s3)
		}
	})
}
