package extract

import (
	"strings"

	"goalrec/internal/core"
)

// Story is one raw success story: the goal it describes and the free text
// explaining how the author achieved it.
type Story struct {
	Goal string
	Text string
}

// Options tunes the extraction pipeline.
type Options struct {
	// MaxPhraseWords caps the canonical action phrase length (default 4
	// content words including the verb).
	MaxPhraseWords int
}

func (o *Options) fill() {
	if o.MaxPhraseWords <= 0 {
		o.MaxPhraseWords = 4
	}
}

// Extractor converts stories into goal implementations. By default a step
// must contain a lexicon verb to yield an action; WithVerblessSteps relaxes
// that for terse bullet lists.
type Extractor struct {
	opts        Options
	requireVerb bool
	synonyms    map[string]string // stem → canonical stem
}

// NewExtractor returns an Extractor; a zero Options value selects the
// defaults.
func NewExtractor(opts Options) *Extractor {
	opts.fill()
	return &Extractor{opts: opts, requireVerb: true}
}

// WithVerblessSteps returns a copy of the extractor that also keeps steps
// without a recognized verb, raising recall at some precision cost.
func (e *Extractor) WithVerblessSteps() *Extractor {
	clone := *e
	clone.requireVerb = false
	return &clone
}

// WithSynonyms returns a copy of the extractor that maps word stems onto
// canonical stems before phrase assembly, so domain synonyms ("jog" and
// "run", "gym" and "fitness club") collapse onto one action id. Keys and
// values are stemmed internally; chains are not followed.
func (e *Extractor) WithSynonyms(syn map[string]string) *Extractor {
	clone := *e
	clone.synonyms = make(map[string]string, len(syn))
	for from, to := range syn {
		clone.synonyms[Stem(strings.ToLower(from))] = Stem(strings.ToLower(to))
	}
	return &clone
}

// canonical maps one stemmed token through the synonym table.
func (e *Extractor) canonical(stem string) string {
	if e.synonyms != nil {
		if to, ok := e.synonyms[stem]; ok {
			return to
		}
	}
	return stem
}

// sequenceConnectives split one sentence into multiple steps.
var sequenceConnectives = []string{
	" then ", " and then ", " after that ", " afterwards ", " next ",
	" finally ", " later ", "; ",
}

// SplitSteps breaks a story into candidate action steps: newline-separated
// list items (with bullet and number prefixes removed), sentences, and
// clauses around sequence connectives.
func SplitSteps(text string) []string {
	var steps []string
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		line = trimListMarker(line)
		if line == "" {
			continue
		}
		for _, sentence := range splitSentences(line) {
			lower := " " + strings.ToLower(sentence) + " "
			parts := []string{lower}
			for _, conn := range sequenceConnectives {
				var next []string
				for _, p := range parts {
					next = append(next, strings.Split(p, conn)...)
				}
				parts = next
			}
			for _, p := range parts {
				if p = strings.TrimSpace(p); p != "" {
					steps = append(steps, p)
				}
			}
		}
	}
	return steps
}

// trimListMarker removes leading bullets ("-", "*", "•") and step numbers
// ("1.", "2)", "step 3:").
func trimListMarker(line string) string {
	l := strings.TrimLeft(line, "-*•> \t")
	lower := strings.ToLower(l)
	if strings.HasPrefix(lower, "step ") {
		l = l[5:]
		lower = lower[5:]
	}
	i := 0
	for i < len(l) && l[i] >= '0' && l[i] <= '9' {
		i++
	}
	if i > 0 && i < len(l) && (l[i] == '.' || l[i] == ')' || l[i] == ':') {
		l = l[i+1:]
	}
	_ = lower
	return strings.TrimSpace(l)
}

func splitSentences(line string) []string {
	var out []string
	start := 0
	for i, r := range line {
		if r == '.' || r == '!' || r == '?' {
			if s := strings.TrimSpace(line[start:i]); s != "" {
				out = append(out, s)
			}
			start = i + 1
		}
	}
	if s := strings.TrimSpace(line[start:]); s != "" {
		out = append(out, s)
	}
	return out
}

// negators flip the polarity of the verb they precede: "quit smoking" and
// "don't smoke" describe the same action, which is NOT the action "smoke".
var negators = map[string]bool{
	"not": true, "never": true, "don't": true, "dont": true,
	"didn't": true, "didnt": true, "won't": true, "wont": true,
	"without": true,
}

// ActionPhrase canonicalizes one step into an action phrase: the first
// lexicon verb and the following content words, stemmed and stopword-free.
// A negator before the verb fuses into it ("never eat sugar" →
// "not-eat sugar"), so an action and its negation get distinct ids.
// It returns "" when the step yields no action under the extractor's
// options.
func (e *Extractor) ActionPhrase(step string) string {
	tokens := Tokenize(step)
	if len(tokens) == 0 {
		return ""
	}
	verbAt := -1
	for i, t := range tokens {
		if IsVerb(t) {
			verbAt = i
			break
		}
	}
	if verbAt == -1 {
		if e.requireVerb {
			return ""
		}
		verbAt = 0
	}
	negated := false
	for _, t := range tokens[:verbAt] {
		if negators[t] {
			negated = true
			break
		}
	}
	words := make([]string, 0, e.opts.MaxPhraseWords)
	for _, t := range tokens[verbAt:] {
		if IsStopword(t) {
			continue
		}
		w := e.canonical(Stem(t))
		if negated && len(words) == 0 {
			w = "not-" + w
		}
		words = append(words, w)
		if len(words) == e.opts.MaxPhraseWords {
			break
		}
	}
	if len(words) == 0 {
		return ""
	}
	return strings.Join(words, " ")
}

// ExtractStory returns the deduplicated canonical action phrases of one
// story, in first-mention order.
func (e *Extractor) ExtractStory(s Story) []string {
	var out []string
	seen := make(map[string]bool)
	for _, step := range SplitSteps(s.Text) {
		phrase := e.ActionPhrase(step)
		if phrase == "" || seen[phrase] {
			continue
		}
		seen[phrase] = true
		out = append(out, phrase)
	}
	return out
}

// BuildLibrary extracts every story and assembles the resulting goal
// implementations into a Library plus the Vocabulary mapping ids back to
// goal names and action phrases. Stories that yield no actions are skipped;
// the returned count reports how many stories contributed.
func (e *Extractor) BuildLibrary(stories []Story) (*core.Library, *core.Vocabulary, int) {
	vocab := core.NewVocabulary()
	builder := core.NewBuilder(len(stories), 4)
	kept := 0
	for _, s := range stories {
		phrases := e.ExtractStory(s)
		if len(phrases) == 0 {
			continue
		}
		goal := core.GoalID(vocab.Goals.Intern(strings.ToLower(strings.TrimSpace(s.Goal))))
		actions := make([]core.ActionID, len(phrases))
		for i, p := range phrases {
			actions[i] = core.ActionID(vocab.Actions.Intern(p))
		}
		if _, err := builder.Add(goal, actions); err != nil {
			// Unreachable: phrases is non-empty and ids are non-negative.
			continue
		}
		kept++
	}
	return builder.Build(), vocab, kept
}
