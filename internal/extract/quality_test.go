package extract

import (
	"math"
	"testing"
)

func TestEvaluateAgainstGoldPerfect(t *testing.T) {
	e := NewExtractor(Options{})
	stories := []Story{
		{Goal: "fit", Text: "I joined a gym. I started jogging."},
	}
	gold := [][]string{{"joined a gym", "started jogging"}}
	r := e.EvaluateAgainstGold(stories, gold)
	if r.Precision != 1 || r.Recall != 1 || r.F1 != 1 {
		t.Errorf("perfect extraction = %+v", r)
	}
	if r.Stories != 1 {
		t.Errorf("stories = %d", r.Stories)
	}
}

func TestEvaluateAgainstGoldPartial(t *testing.T) {
	e := NewExtractor(Options{})
	stories := []Story{
		// Extracts "join gym" and "start jog"; gold expects "join gym" and
		// a phrase the pipeline cannot see.
		{Goal: "fit", Text: "I joined a gym. I started jogging."},
	}
	gold := [][]string{{"joined a gym", "meditate nightly"}}
	r := e.EvaluateAgainstGold(stories, gold)
	if math.Abs(r.Precision-0.5) > 1e-12 {
		t.Errorf("precision = %v, want 0.5", r.Precision)
	}
	if math.Abs(r.Recall-0.5) > 1e-12 {
		t.Errorf("recall = %v, want 0.5", r.Recall)
	}
	if math.Abs(r.F1-0.5) > 1e-12 {
		t.Errorf("F1 = %v, want 0.5", r.F1)
	}
}

func TestEvaluateAgainstGoldDegenerate(t *testing.T) {
	e := NewExtractor(Options{})
	if r := e.EvaluateAgainstGold(nil, nil); r != (QualityReport{}) {
		t.Errorf("empty corpus = %+v", r)
	}
	// Story that extracts nothing against non-empty gold: recall 0.
	r := e.EvaluateAgainstGold(
		[]Story{{Goal: "g", Text: "the weather was nice"}},
		[][]string{{"joined a gym"}},
	)
	if r.Precision != 0 || r.Recall != 0 || r.F1 != 0 {
		t.Errorf("no-extraction case = %+v", r)
	}
	// Mismatched lengths evaluate the overlap only.
	r = e.EvaluateAgainstGold(
		[]Story{{Goal: "g", Text: "I joined a gym."}, {Goal: "h", Text: "I read books."}},
		[][]string{{"joined a gym"}},
	)
	if r.Stories != 1 || r.Precision != 1 {
		t.Errorf("length mismatch = %+v", r)
	}
}

func TestEvaluateAgainstGoldMatchesInflections(t *testing.T) {
	e := NewExtractor(Options{})
	// Gold written with different inflections still matches after
	// canonicalization.
	r := e.EvaluateAgainstGold(
		[]Story{{Goal: "fit", Text: "I started jogging."}},
		[][]string{{"start jog"}},
	)
	if r.F1 != 1 {
		t.Errorf("inflection-insensitive match failed: %+v", r)
	}
}
