package extract

import (
	"reflect"
	"strings"
	"testing"

	"goalrec/internal/core"
)

func TestTokenize(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"Hello, World!", []string{"hello", "world"}},
		{"don't stop", []string{"don't", "stop"}},
		{"sugar-free  gum", []string{"sugar-free", "gum"}},
		{"", nil},
		{"...", nil},
		{"step 1: run 5km", []string{"step", "1", "run", "5km"}},
		{"end-", []string{"end"}},
	}
	for _, tt := range tests {
		if got := Tokenize(tt.in); !reflect.DeepEqual(got, tt.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestStem(t *testing.T) {
	tests := []struct{ in, want string }{
		{"running", "run"},
		{"stopped", "stop"},
		{"baking", "bake"},
		{"studies", "study"},
		{"walks", "walk"},
		{"classes", "class"},
		{"quickly", "quick"},
		{"go", "go"},
		{"glass", "glass"},
		{"bus", "bus"},
		{"eat", "eat"},
		{"saved", "save"},
	}
	for _, tt := range tests {
		if got := Stem(tt.in); got != tt.want {
			t.Errorf("Stem(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestStemIdempotentOnActionVocabulary(t *testing.T) {
	// Stemming an already-stemmed verb must be stable, otherwise repeated
	// canonicalization would drift.
	for v := range verbLexicon {
		if got := Stem(v); Stem(got) != got {
			t.Errorf("Stem not idempotent on %q: %q -> %q", v, got, Stem(got))
		}
	}
}

func TestIsVerb(t *testing.T) {
	for _, v := range []string{"running", "ran?", "buy", "bought"} {
		_ = v // only forms whose stem is in the lexicon match
	}
	if !IsVerb("running") {
		t.Error("running should be a verb")
	}
	if !IsVerb("buys") {
		t.Error("buys should be a verb")
	}
	if IsVerb("potato") {
		t.Error("potato is not a verb")
	}
}

func TestSplitSteps(t *testing.T) {
	text := "1. Join a gym.\n- drink more water\nI started jogging and then I cut sugar. Finally I slept more!"
	steps := SplitSteps(text)
	if len(steps) != 5 {
		t.Fatalf("got %d steps: %q", len(steps), steps)
	}
	wantSub := []string{"join a gym", "drink more water", "jogging", "cut sugar", "slept more"}
	for i, sub := range wantSub {
		if !strings.Contains(steps[i], sub) {
			t.Errorf("step %d = %q, want it to contain %q", i, steps[i], sub)
		}
	}
}

func TestTrimListMarker(t *testing.T) {
	tests := []struct{ in, want string }{
		{"- buy shoes", "buy shoes"},
		{"* run", "run"},
		{"3) stretch", "stretch"},
		{"12. sleep early", "sleep early"},
		{"step 2: call mom", "call mom"},
		{"plain text", "plain text"},
		{"2020 was hard", "2020 was hard"}, // number without list punctuation
	}
	for _, tt := range tests {
		if got := trimListMarker(tt.in); got != tt.want {
			t.Errorf("trimListMarker(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestActionPhrase(t *testing.T) {
	e := NewExtractor(Options{})
	tests := []struct{ in, want string }{
		{"I started jogging every morning", "start jog morn"},
		{"joined a local gym", "join local gym"},
		{"the weather was nice", ""}, // no lexicon verb
		{"", ""},
		{"drink more water", "drink water"},
	}
	for _, tt := range tests {
		if got := e.ActionPhrase(tt.in); got != tt.want {
			t.Errorf("ActionPhrase(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestActionPhraseNegation(t *testing.T) {
	e := NewExtractor(Options{})
	tests := []struct{ in, want string }{
		{"I don't eat sugar anymore", "not-eat sugar anymore"},
		{"never drink soda", "not-drink soda"},
		{"I did not buy snacks", "not-buy snack"},
		{"I eat vegetables", "eat vegetable"}, // no negation
	}
	for _, tt := range tests {
		if got := e.ActionPhrase(tt.in); got != tt.want {
			t.Errorf("ActionPhrase(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
	// An action and its negation map to distinct ids.
	lib, vocab, _ := e.BuildLibrary([]Story{
		{Goal: "healthy", Text: "I eat vegetables. I don't eat sugar."},
	})
	if vocab.Actions.Len() != 2 {
		t.Errorf("actions = %v", vocab.Actions.Names())
	}
	if lib.NumImplementations() != 1 {
		t.Errorf("implementations = %d", lib.NumImplementations())
	}
}

func TestActionPhraseVerbless(t *testing.T) {
	e := NewExtractor(Options{}).WithVerblessSteps()
	if got := e.ActionPhrase("more vegetables daily"); got == "" {
		t.Error("verbless extractor dropped the step")
	}
	// The base extractor is unchanged (WithVerblessSteps copies).
	base := NewExtractor(Options{})
	if got := base.ActionPhrase("more vegetables daily"); got != "" {
		t.Errorf("base extractor kept verbless step: %q", got)
	}
}

func TestWithSynonyms(t *testing.T) {
	e := NewExtractor(Options{}).WithSynonyms(map[string]string{
		"jogging": "run", // stems: jog → run
		"gym":     "fitness",
	})
	if got := e.ActionPhrase("I started jogging"); got != "start run" {
		t.Errorf("synonym phrase = %q, want %q", got, "start run")
	}
	if got := e.ActionPhrase("joined a gym"); got != "join fitness" {
		t.Errorf("synonym phrase = %q, want %q", got, "join fitness")
	}
	// The base extractor is unaffected.
	base := NewExtractor(Options{})
	if got := base.ActionPhrase("I started jogging"); got != "start jog" {
		t.Errorf("base phrase changed: %q", got)
	}
	// Two stories describing the same action with synonyms now share an id.
	lib, vocab, _ := e.BuildLibrary([]Story{
		{Goal: "fit", Text: "I started jogging."},
		{Goal: "fit", Text: "started running."},
	})
	if vocab.Actions.Len() != 1 {
		t.Errorf("synonyms did not merge: %v", vocab.Actions.Names())
	}
	if lib.NumImplementations() != 2 {
		t.Errorf("implementations = %d", lib.NumImplementations())
	}
}

func TestActionPhraseMaxWords(t *testing.T) {
	e := NewExtractor(Options{MaxPhraseWords: 2})
	got := e.ActionPhrase("started jogging every single morning before work")
	if n := len(strings.Fields(got)); n != 2 {
		t.Errorf("phrase %q has %d words, want 2", got, n)
	}
}

func TestExtractStoryDeduplicates(t *testing.T) {
	e := NewExtractor(Options{})
	s := Story{
		Goal: "get fit",
		Text: "I started jogging. Then I started jogging again. I joined a gym.",
	}
	got := e.ExtractStory(s)
	if len(got) != 2 {
		t.Fatalf("got %d phrases %q, want 2", len(got), got)
	}
	if got[0] != "start jog" && !strings.HasPrefix(got[0], "start jog") {
		t.Errorf("first phrase = %q", got[0])
	}
}

func TestBuildLibrary(t *testing.T) {
	e := NewExtractor(Options{})
	stories := []Story{
		{Goal: "Get Fit", Text: "I joined a gym. I started jogging daily."},
		{Goal: "get fit", Text: "started jogging daily. cut sugar."},
		{Goal: "learn english", Text: "enrolled in a class. read books in english."},
		{Goal: "empty story", Text: "the weather and the mood."},
	}
	lib, vocab, kept := e.BuildLibrary(stories)
	if kept != 3 {
		t.Fatalf("kept = %d, want 3 (one story yields nothing)", kept)
	}
	if lib.NumImplementations() != 3 {
		t.Fatalf("implementations = %d, want 3", lib.NumImplementations())
	}
	// "Get Fit" and "get fit" are the same goal after normalization.
	if vocab.Goals.Len() != 2 {
		t.Errorf("goals = %d, want 2", vocab.Goals.Len())
	}
	// The shared action "started jogging daily" must map to one id, giving
	// it a connectivity of 2.
	id, ok := vocab.Actions.Lookup("start jog daily")
	if !ok {
		t.Fatalf("canonical action missing; have %v", vocab.Actions.Names())
	}
	if deg := lib.ActionDegree(core.ActionID(id)); deg != 2 {
		t.Errorf("connectivity of shared action = %d, want 2", deg)
	}
}
