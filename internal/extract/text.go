// Package extract reproduces the paper's orthogonal text-processing module
// (Section 3, "Goal Implementation Data sources"): it turns user-generated
// success stories — free-text descriptions of how a goal was achieved — into
// structured goal implementations (goal, action-set) ready for the
// association-based goal model.
//
// The pipeline is deliberately classical and dependency-free:
//
//  1. split the story into candidate steps (sentences, bullet/numbered list
//     items, and clauses joined by sequence connectives like "then");
//  2. locate the verb phrase that anchors each step, using a verb lexicon
//     plus an imperative-position heuristic;
//  3. canonicalize the phrase (lowercase, stopword removal, light suffix
//     stemming) so the same action described twice maps to one action id.
package extract

import (
	"strings"
	"unicode"
)

// Tokenize lowercases text and splits it into word tokens, dropping
// punctuation. Intra-word apostrophes and hyphens are kept ("don't",
// "sugar-free").
func Tokenize(text string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	for _, r := range strings.ToLower(text) {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(r)
		case (r == '\'' || r == '-') && b.Len() > 0:
			b.WriteRune(r)
		default:
			flush()
		}
	}
	flush()
	// Trim trailing apostrophes/hyphens left by the permissive rule above.
	for i, t := range tokens {
		tokens[i] = strings.TrimRight(t, "'-")
	}
	return tokens
}

// Stem applies a light suffix-stripping stemmer (a compact Porter-style
// subset) adequate for matching repeated action mentions: plurals, -ing and
// -ed forms collapse to a common stem.
func Stem(word string) string {
	w := word
	if len(w) <= 3 {
		return w
	}
	switch {
	case strings.HasSuffix(w, "ies") && len(w) > 4:
		return w[:len(w)-3] + "y"
	case strings.HasSuffix(w, "sses"):
		return w[:len(w)-2]
	case strings.HasSuffix(w, "es") && len(w) > 4 && hasSibilantBefore(w):
		// "boxes" → "box", "dishes" → "dish"; but "vegetables" only drops
		// the final "s".
		return w[:len(w)-2]
	case strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "ss") && !strings.HasSuffix(w, "us"):
		return w[:len(w)-1]
	}
	switch {
	case strings.HasSuffix(w, "ing") && len(w) > 5:
		stem := w[:len(w)-3]
		return undouble(stem)
	case strings.HasSuffix(w, "ed") && len(w) > 4:
		stem := w[:len(w)-2]
		return undouble(stem)
	case strings.HasSuffix(w, "ly") && len(w) > 6:
		// Only strip -ly from long adverbs ("quickly" → "quick"); short
		// words like "daily" keep their surface form.
		return w[:len(w)-2]
	}
	return w
}

// hasSibilantBefore reports whether the stem before a final "es" ends in a
// sibilant sound (s, x, z, ch, sh) — the plurals that actually take "es".
func hasSibilantBefore(w string) bool {
	stem := w[:len(w)-2]
	switch {
	case strings.HasSuffix(stem, "ch"), strings.HasSuffix(stem, "sh"):
		return true
	}
	switch stem[len(stem)-1] {
	case 's', 'x', 'z':
		return true
	}
	return false
}

// undouble collapses a doubled final consonant ("stopp" → "stop") and
// restores a dropped final 'e' heuristically ("mak" → "make").
func undouble(stem string) string {
	n := len(stem)
	if n >= 2 && stem[n-1] == stem[n-2] && !isVowelByte(stem[n-1]) {
		return stem[:n-1]
	}
	// Consonant-vowel-consonant endings usually dropped an 'e' ("make",
	// "bake", "write"); restore it except after w/x/y.
	if n >= 3 && !isVowelByte(stem[n-1]) && isVowelByte(stem[n-2]) && !isVowelByte(stem[n-3]) {
		switch stem[n-1] {
		case 'w', 'x', 'y':
		default:
			return stem + "e"
		}
	}
	return stem
}

func isVowelByte(b byte) bool {
	switch b {
	case 'a', 'e', 'i', 'o', 'u':
		return true
	}
	return false
}

// stopwords are dropped from canonical action phrases.
var stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "my": true, "your": true, "his": true,
	"her": true, "its": true, "our": true, "their": true, "this": true,
	"that": true, "these": true, "those": true, "i": true, "you": true,
	"he": true, "she": true, "it": true, "we": true, "they": true, "me": true,
	"to": true, "of": true, "in": true, "on": true, "at": true, "for": true,
	"with": true, "from": true, "by": true, "about": true, "into": true,
	"and": true, "or": true, "but": true, "so": true, "if": true,
	"is": true, "am": true, "are": true, "was": true, "were": true,
	"be": true, "been": true, "being": true, "will": true, "would": true,
	"can": true, "could": true, "should": true, "must": true, "may": true,
	"have": true, "has": true, "had": true, "do": true, "does": true,
	"did": true, "just": true, "really": true, "very": true, "also": true,
	"some": true, "all": true, "every": true, "each": true, "more": true,
	"then": true, "than": true, "when": true, "while": true, "as": true,
	"up": true, "out": true, "not": true, "no": true, "don't": true,
	"again": true, "still": true, "much": true, "lot": true,
	"finally": true, "first": true, "next": true, "after": true,
	"before": true, "now": true, "day": true, "week": true, "month": true,
}

// IsStopword reports whether the token is in the built-in stopword list.
func IsStopword(tok string) bool { return stopwords[tok] }

// verbLexicon lists stems of verbs that commonly anchor actions in goal
// stories. Steps are matched after stemming, so inflected forms are covered.
var verbLexicon = map[string]bool{
	"start": true, "stop": true, "quit": true, "begin": true, "keep": true,
	"buy": true, "sell": true, "get": true, "take": true, "make": true,
	"cook": true, "bake": true, "eat": true, "drink": true, "run": true,
	"walk": true, "swim": true, "ride": true, "train": true, "practice": true,
	"learn": true, "study": true, "read": true, "write": true, "watch": true,
	"join": true, "enroll": true, "sign": true, "register": true,
	"save": true, "spend": true, "pay": true, "invest": true, "budget": true,
	"call": true, "talk": true, "meet": true, "visit": true, "travel": true,
	"plan": true, "set": true, "track": true, "measure": true, "count": true,
	"avoid": true, "reduce": true, "increase": true, "cut": true,
	"add": true, "use": true, "try": true, "find": true, "search": true,
	"apply": true, "ask": true, "go": true, "attend": true, "finish": true,
	"complete": true, "build": true, "create": true, "organize": true,
	"clean": true, "sleep": true, "wake": true, "exercise": true,
	"stretch": true, "lift": true, "jog": true, "drive": true, "move": true,
	"volunteer": true, "donate": true, "teach": true, "help": true,
	"listen": true, "speak": true, "record": true, "cancel": true,
	"replace": true, "switch": true, "drop": true, "pick": true,
}

// IsVerb reports whether the (unstemmed) token's stem is in the verb
// lexicon.
func IsVerb(tok string) bool { return verbLexicon[Stem(tok)] }
