package extract

// Extraction quality measurement: precision/recall/F1 of extracted action
// phrases against gold labels, the harness used to tune the pipeline (the
// paper calls the extraction task orthogonal, but a reproduction should be
// able to measure it).

// QualityReport aggregates extraction quality over a labelled corpus.
type QualityReport struct {
	// Precision is the share of extracted phrases that match a gold phrase.
	Precision float64
	// Recall is the share of gold phrases that were extracted.
	Recall float64
	// F1 is the harmonic mean of the two.
	F1 float64
	// Stories is the number of labelled stories evaluated.
	Stories int
}

// EvaluateAgainstGold extracts every story and compares the canonical
// phrases with the gold action lists. Gold phrases are canonicalized through
// the same tokenizer/stemmer, so labels may be written naturally ("started
// jogging" matches the extraction "start jog").
func (e *Extractor) EvaluateAgainstGold(stories []Story, gold [][]string) QualityReport {
	n := len(stories)
	if len(gold) < n {
		n = len(gold)
	}
	var tp, extracted, golden int
	for i := 0; i < n; i++ {
		pred := e.ExtractStory(stories[i])
		want := make(map[string]bool, len(gold[i]))
		for _, g := range gold[i] {
			if c := e.canonicalPhrase(g); c != "" {
				want[c] = true
			}
		}
		extracted += len(pred)
		golden += len(want)
		for _, p := range pred {
			if want[p] {
				tp++
			}
		}
	}
	r := QualityReport{Stories: n}
	if extracted > 0 {
		r.Precision = float64(tp) / float64(extracted)
	}
	if golden > 0 {
		r.Recall = float64(tp) / float64(golden)
	}
	if r.Precision+r.Recall > 0 {
		r.F1 = 2 * r.Precision * r.Recall / (r.Precision + r.Recall)
	}
	return r
}

// canonicalPhrase pushes a gold label through the same canonicalization the
// pipeline applies to steps, without the verb requirement (labels are
// already actions).
func (e *Extractor) canonicalPhrase(label string) string {
	verbless := *e
	verbless.requireVerb = false
	return verbless.ActionPhrase(label)
}
