package dataset

import (
	"bytes"
	"strings"
	"testing"

	"goalrec/internal/core"
	"goalrec/internal/intset"
)

func TestGenerateFoodMartSmall(t *testing.T) {
	ds, err := GenerateFoodMart(FoodMartConfig{Scale: 0.02, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name != "foodmart" {
		t.Errorf("Name = %q", ds.Name)
	}
	stats := ds.Library.Stats()
	if stats.Implementations == 0 || stats.Actions == 0 {
		t.Fatalf("degenerate library: %v", stats)
	}
	if len(ds.Users) == 0 {
		t.Fatal("no users generated")
	}
	if ds.Features == nil {
		t.Fatal("foodmart must carry content features")
	}
	if ds.Features.NumActions() != ds.Library.NumActions() {
		t.Errorf("feature rows %d != actions %d", ds.Features.NumActions(), ds.Library.NumActions())
	}
	// Every user activity is sorted, non-empty, in range.
	for i, u := range ds.Users {
		if len(u.Activity) == 0 {
			t.Fatalf("user %d has empty activity", i)
		}
		if !intset.IsSorted(u.Activity) {
			t.Fatalf("user %d activity unsorted", i)
		}
		for _, a := range u.Activity {
			if a < 0 || int(a) >= ds.Library.NumActions() {
				t.Fatalf("user %d action %d out of range", i, a)
			}
		}
		if u.Goals != nil {
			t.Errorf("foodmart user %d has explicit goals", i)
		}
	}
	// Carts correlate with recipes: the average cart must hit at least one
	// implementation.
	hits := 0
	for _, u := range ds.Users {
		if len(ds.Library.ImplementationSpace(u.Activity)) > 0 {
			hits++
		}
	}
	if hits < len(ds.Users)*9/10 {
		t.Errorf("only %d/%d carts touch the library", hits, len(ds.Users))
	}
}

func TestFoodMartHighConnectivity(t *testing.T) {
	hi, err := GenerateFoodMart(FoodMartConfig{Scale: 0.05, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	lo, err := GenerateFortyThreeThings(FortyThreeThingsConfig{Scale: 0.05, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ch := hi.Library.Stats().Connectivity
	cl := lo.Library.Stats().Connectivity
	// The defining contrast of the two scenarios (Section 6): grocery
	// connectivity is orders of magnitude above the life-goal one.
	if ch < 5*cl {
		t.Errorf("connectivity contrast lost: foodmart %.1f vs 43things %.1f", ch, cl)
	}
}

func TestGenerateFoodMartDeterministic(t *testing.T) {
	a, err := GenerateFoodMart(FoodMartConfig{Scale: 0.01, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateFoodMart(FoodMartConfig{Scale: 0.01, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Library.Stats() != b.Library.Stats() {
		t.Errorf("stats differ: %v vs %v", a.Library.Stats(), b.Library.Stats())
	}
	if len(a.Users) != len(b.Users) {
		t.Fatalf("user counts differ")
	}
	for i := range a.Users {
		if !intset.Equal(a.Users[i].Activity, b.Users[i].Activity) {
			t.Fatalf("user %d differs", i)
		}
	}
	c, err := GenerateFoodMart(FoodMartConfig{Scale: 0.01, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if c.Library.Stats() == a.Library.Stats() {
		t.Error("different seeds produced identical libraries")
	}
}

func TestGenerateFoodMartRejectsImpossibleConfig(t *testing.T) {
	_, err := GenerateFoodMart(FoodMartConfig{Products: 5, MeanIngredients: 50, Recipes: 10, Carts: 5})
	if err == nil {
		t.Error("impossible config accepted")
	}
}

func TestGenerateFortyThreeThingsSmall(t *testing.T) {
	ds, err := GenerateFortyThreeThings(FortyThreeThingsConfig{Scale: 0.05, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name != "43things" {
		t.Errorf("Name = %q", ds.Name)
	}
	if ds.Features != nil {
		t.Error("43things should have no accepted domain features")
	}
	stats := ds.Library.Stats()
	if stats.Implementations == 0 {
		t.Fatal("no implementations")
	}
	// Every goal has at least one implementation.
	if stats.Goals != ds.Library.NumGoals() {
		t.Errorf("goals with implementations %d != goal space %d", stats.Goals, ds.Library.NumGoals())
	}
	for i, u := range ds.Users {
		if len(u.Goals) == 0 {
			t.Fatalf("user %d has no goals", i)
		}
		if len(u.Activity) == 0 {
			t.Fatalf("user %d has empty activity", i)
		}
		// The user's activity must fully cover one implementation of each of
		// their goals (that is how it was constructed).
		for _, g := range u.Goals {
			covered := false
			for _, p := range ds.Library.ImplsOfGoal(g) {
				if intset.Subset(ds.Library.Actions(p), u.Activity) {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("user %d: goal %d not covered by activity", i, g)
			}
		}
	}
}

func TestGenerateFortyThreeThingsDeterministic(t *testing.T) {
	// Regression: implementation choice per user goal must not depend on
	// map iteration order.
	a, err := GenerateFortyThreeThings(FortyThreeThingsConfig{Scale: 0.03, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateFortyThreeThings(FortyThreeThingsConfig{Scale: 0.03, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Users) != len(b.Users) {
		t.Fatal("user counts differ")
	}
	for i := range a.Users {
		if !intset.Equal(a.Users[i].Activity, b.Users[i].Activity) {
			t.Fatalf("user %d activity differs between identical runs", i)
		}
		if len(a.Users[i].Sequence) != len(b.Users[i].Sequence) {
			t.Fatalf("user %d sequence differs", i)
		}
	}
}

func TestUserSequences(t *testing.T) {
	for _, gen := range []func() (*Dataset, error){
		func() (*Dataset, error) {
			return GenerateFoodMart(FoodMartConfig{Scale: 0.02, Seed: 3})
		},
		func() (*Dataset, error) {
			return GenerateFortyThreeThings(FortyThreeThingsConfig{Scale: 0.03, Seed: 3})
		},
	} {
		ds, err := gen()
		if err != nil {
			t.Fatal(err)
		}
		for i, u := range ds.Users {
			// The sequence is a duplicate-free ordering of the activity.
			sorted := normalize(append([]core.ActionID(nil), u.Sequence...))
			if !intset.Equal(sorted, u.Activity) {
				t.Fatalf("%s user %d: sequence %v is not a permutation of activity %v",
					ds.Name, i, u.Sequence, u.Activity)
			}
		}
		if got := ds.Sequences(); len(got) != len(ds.Users) {
			t.Errorf("Sequences length = %d", len(got))
		}
	}
}

func TestFortyThreeThingsGoalDistribution(t *testing.T) {
	ds, err := GenerateFortyThreeThings(FortyThreeThingsConfig{Scale: 0.2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, u := range ds.Users {
		n := len(u.Goals)
		if n > 4 {
			n = 4
		}
		counts[n]++
	}
	// The paper's skew: most users pursue a single goal.
	if counts[1] <= counts[2] || counts[2] <= counts[3] {
		t.Errorf("goal-count distribution not decreasing: %v", counts)
	}
}

func TestFortyThreeThingsCustomGoalsPerUser(t *testing.T) {
	ds, err := GenerateFortyThreeThings(FortyThreeThingsConfig{
		Scale: 0.05, Seed: 5, GoalsPerUser: []int{3, 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Users) != 5 {
		t.Fatalf("user count = %d, want 5", len(ds.Users))
	}
	ones, twos := 0, 0
	for _, u := range ds.Users {
		switch len(u.Goals) {
		case 1:
			ones++
		case 2:
			twos++
		}
	}
	if ones != 3 || twos != 2 {
		t.Errorf("distribution = %d/%d, want 3/2", ones, twos)
	}
}

func TestGenerateCurriculum(t *testing.T) {
	ds, err := GenerateCurriculum(CurriculumConfig{Seed: 4, Students: 80})
	if err != nil {
		t.Fatal(err)
	}
	if ds.Name != "curriculum" {
		t.Errorf("Name = %q", ds.Name)
	}
	stats := ds.Library.Stats()
	if stats.Implementations != 12*6*2 {
		t.Errorf("implementations = %d, want 144", stats.Implementations)
	}
	if stats.Goals != 12*6 {
		t.Errorf("goals with implementations = %d, want 72", stats.Goals)
	}
	if len(ds.Users) != 80 {
		t.Fatalf("users = %d", len(ds.Users))
	}
	for i, u := range ds.Users {
		if len(u.Goals) == 0 || len(u.Goals) > 2 {
			t.Fatalf("user %d goals = %v", i, u.Goals)
		}
		if len(u.Activity) == 0 {
			t.Fatalf("user %d empty activity", i)
		}
		// Every declared goal is in the activity's goal space: the prefix
		// always intersects the chosen implementation.
		gs := ds.Library.GoalSpace(u.Activity)
		for _, g := range u.Goals {
			if !intset.Contains(gs, g) {
				t.Fatalf("user %d goal %d outside goal space", i, g)
			}
		}
	}
	// Determinism.
	ds2, err := GenerateCurriculum(CurriculumConfig{Seed: 4, Students: 80})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ds.Users {
		if !intset.Equal(ds.Users[i].Activity, ds2.Users[i].Activity) {
			t.Fatalf("user %d differs between identical runs", i)
		}
	}
	// Shared foundations give introductory courses higher connectivity than
	// the track tails.
	if stats.MaxConnectivity < 5 {
		t.Errorf("max connectivity = %d, want layered structure", stats.MaxConnectivity)
	}
}

func TestDatasetInteractions(t *testing.T) {
	ds, err := GenerateFoodMart(FoodMartConfig{Scale: 0.01, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	in := ds.Interactions()
	if in.NumUsers() != len(ds.Users) {
		t.Errorf("interactions users %d != %d", in.NumUsers(), len(ds.Users))
	}
	if in.NumActions() != ds.Library.NumActions() {
		t.Errorf("interactions actions %d != %d", in.NumActions(), ds.Library.NumActions())
	}
}

func TestActivitiesCSVRoundTrip(t *testing.T) {
	vocab := core.NewVocabulary()
	src := "potatoes,carrots\npickles\n# comment\n\nnutmeg , potatoes\n"
	acts, err := ReadActivitiesCSV(strings.NewReader(src), vocab)
	if err != nil {
		t.Fatal(err)
	}
	if len(acts) != 3 {
		t.Fatalf("parsed %d activities, want 3", len(acts))
	}
	var buf bytes.Buffer
	if err := WriteActivitiesCSV(&buf, acts, vocab); err != nil {
		t.Fatal(err)
	}
	again, err := ReadActivitiesCSV(strings.NewReader(buf.String()), vocab)
	if err != nil {
		t.Fatal(err)
	}
	for i := range acts {
		if !intset.Equal(acts[i], again[i]) {
			t.Errorf("activity %d changed: %v -> %v", i, acts[i], again[i])
		}
	}
	if _, err := ReadActivitiesCSV(strings.NewReader("a,,b\n"), vocab); err == nil {
		t.Error("empty field accepted")
	}
}

func TestActivityIDsCSVRoundTrip(t *testing.T) {
	in := [][]core.ActionID{{3, 1, 2}, {7}}
	var buf bytes.Buffer
	norm := make([][]core.ActionID, len(in))
	for i, h := range in {
		norm[i] = normalize(append([]core.ActionID(nil), h...))
	}
	if err := WriteActivityIDsCSV(&buf, norm); err != nil {
		t.Fatal(err)
	}
	got, err := ReadActivityIDsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !intset.Equal(got[0], norm[0]) || !intset.Equal(got[1], norm[1]) {
		t.Errorf("round trip = %v", got)
	}
	if _, err := ReadActivityIDsCSV(strings.NewReader("1,x\n")); err == nil {
		t.Error("non-numeric id accepted")
	}
	if _, err := ReadActivityIDsCSV(strings.NewReader("-4\n")); err == nil {
		t.Error("negative id accepted")
	}
}
