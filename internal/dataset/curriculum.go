package dataset

import (
	"fmt"

	"goalrec/internal/core"
	"goalrec/internal/xrand"
)

// CurriculumConfig parameterizes the online-learning scenario the paper's
// introduction motivates: specializations and degrees (goals) implemented
// through course sets (actions). Unlike the grocery and life-goal scenarios
// it has a layered structure — introductory courses feed many
// specializations, capstones few — which produces a connectivity profile
// between the two evaluation datasets. It is not part of the paper's
// evaluation; the curriculum example and integration tests use it.
type CurriculumConfig struct {
	// Tracks is the number of subject tracks ("data science", "security",
	// ...). Default 12.
	Tracks int
	// CoursesPerTrack is the number of courses per track, split across
	// levels. Default 24.
	CoursesPerTrack int
	// SharedCourses is the pool of cross-track foundations ("calculus",
	// "writing"). Default 20.
	SharedCourses int
	// SpecsPerTrack is the number of specializations per track. Default 6.
	SpecsPerTrack int
	// VariantsPerSpec is how many alternative course sets implement one
	// specialization. Default 2.
	VariantsPerSpec int
	// SpecLen is the mean courses per specialization implementation.
	// Default 6.
	SpecLen float64
	// Students is the number of evaluation users. Default 500.
	Students int
	// Seed drives all sampling.
	Seed uint64
}

func (c *CurriculumConfig) fill() {
	def := func(v *int, d int) {
		if *v <= 0 {
			*v = d
		}
	}
	def(&c.Tracks, 12)
	def(&c.CoursesPerTrack, 24)
	def(&c.SharedCourses, 20)
	def(&c.SpecsPerTrack, 6)
	def(&c.VariantsPerSpec, 2)
	def(&c.Students, 500)
	if c.SpecLen <= 0 {
		c.SpecLen = 6
	}
}

// GenerateCurriculum synthesizes the online-learning scenario.
func GenerateCurriculum(cfg CurriculumConfig) (*Dataset, error) {
	cfg.fill()
	rng := xrand.New(cfg.Seed)

	numCourses := cfg.SharedCourses + cfg.Tracks*cfg.CoursesPerTrack
	courseOfTrack := func(track, i int) core.ActionID {
		return core.ActionID(cfg.SharedCourses + track*cfg.CoursesPerTrack + i)
	}

	numSpecs := cfg.Tracks * cfg.SpecsPerTrack
	builder := core.NewBuilder(numSpecs*cfg.VariantsPerSpec, int(cfg.SpecLen))
	implsOfGoal := make([][]core.ImplID, numSpecs)
	for track := 0; track < cfg.Tracks; track++ {
		for s := 0; s < cfg.SpecsPerTrack; s++ {
			goal := core.GoalID(track*cfg.SpecsPerTrack + s)
			for v := 0; v < cfg.VariantsPerSpec; v++ {
				length := 3 + rng.Poisson(cfg.SpecLen-3)
				if length > cfg.CoursesPerTrack+cfg.SharedCourses {
					length = cfg.CoursesPerTrack + cfg.SharedCourses
				}
				courses := make([]core.ActionID, 0, length)
				// 1-2 shared foundations, the rest from the track with a
				// bias towards its lower levels (prerequisites).
				foundations := 1 + rng.Intn(2)
				for _, f := range rng.SampleInt32(int32(cfg.SharedCourses), foundations) {
					courses = append(courses, core.ActionID(f))
				}
				for len(courses) < length {
					// Square the uniform draw to bias towards low indexes
					// (introductory courses appear in more specializations).
					u := rng.Float64()
					idx := int(u * u * float64(cfg.CoursesPerTrack))
					if idx >= cfg.CoursesPerTrack {
						idx = cfg.CoursesPerTrack - 1
					}
					courses = append(courses, courseOfTrack(track, idx))
				}
				id, err := builder.Add(goal, courses)
				if err != nil {
					return nil, fmt.Errorf("dataset: specialization %d: %w", goal, err)
				}
				implsOfGoal[goal] = append(implsOfGoal[goal], id)
			}
		}
	}
	lib := builder.Build()

	// Students pick 1-2 specializations and complete a random prefix of one
	// variant of each (they are mid-degree).
	users := make([]User, 0, cfg.Students)
	for i := 0; i < cfg.Students; i++ {
		k := 1 + rng.Intn(2)
		goalSeen := map[core.GoalID]struct{}{}
		var goals []core.GoalID
		var seq []core.ActionID
		for len(goals) < k {
			g := core.GoalID(rng.Intn(numSpecs))
			if _, dup := goalSeen[g]; dup {
				continue
			}
			goalSeen[g] = struct{}{}
			goals = append(goals, g)
			impls := implsOfGoal[g]
			p := impls[rng.Intn(len(impls))]
			acts := lib.Actions(p)
			// Complete 40-100% of the specialization's courses, in order.
			take := 2 + rng.Intn(len(acts))
			if take > len(acts) {
				take = len(acts)
			}
			seq = append(seq, acts[:take]...)
		}
		seq = dedupKeepOrder(seq)
		users = append(users, User{
			Activity: normalize(append([]core.ActionID(nil), seq...)),
			Sequence: seq,
			Goals:    normalizeGoals(goals),
			Customer: -1,
		})
	}

	if lib.NumActions() > numCourses {
		return nil, fmt.Errorf("dataset: generated course id %d beyond the %d-course catalog", lib.NumActions()-1, numCourses)
	}
	return &Dataset{
		Name:    "curriculum",
		Library: lib,
		Users:   users,
	}, nil
}
