package dataset

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"goalrec/internal/core"
)

// ReadActivitiesCSV parses user activities from r: one activity per line,
// action names separated by commas, blank lines and #-comments skipped.
// Names are resolved (and, when missing, interned) through vocab, so the
// same vocabulary can be shared with a JSON-lines library file.
func ReadActivitiesCSV(r io.Reader, vocab *core.Vocabulary) ([][]core.ActionID, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out [][]core.ActionID
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var activity []core.ActionID
		for _, field := range strings.Split(line, ",") {
			name := strings.TrimSpace(field)
			if name == "" {
				return nil, fmt.Errorf("dataset: line %d: empty action name", lineNo)
			}
			activity = append(activity, core.ActionID(vocab.Actions.Intern(name)))
		}
		out = append(out, normalize(activity))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: reading activities: %w", err)
	}
	return out, nil
}

// WriteActivitiesCSV writes activities to w in the format ReadActivitiesCSV
// parses, resolving ids through vocab.
func WriteActivitiesCSV(w io.Writer, activities [][]core.ActionID, vocab *core.Vocabulary) error {
	bw := bufio.NewWriter(w)
	for i, h := range activities {
		for j, a := range h {
			if j > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(vocab.ActionName(a)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("dataset: writing activity %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadActivityIDsCSV parses activities given as numeric action ids, the
// format the synthetic generators emit.
func ReadActivityIDsCSV(r io.Reader) ([][]core.ActionID, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var out [][]core.ActionID
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		var activity []core.ActionID
		for _, field := range strings.Split(line, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(field), 10, 32)
			if err != nil {
				return nil, fmt.Errorf("dataset: line %d: %w", lineNo, err)
			}
			if v < 0 {
				return nil, fmt.Errorf("dataset: line %d: negative action id %d", lineNo, v)
			}
			activity = append(activity, core.ActionID(v))
		}
		out = append(out, normalize(activity))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dataset: reading activities: %w", err)
	}
	return out, nil
}

// WriteActivityIDsCSV writes activities as numeric id lines.
func WriteActivityIDsCSV(w io.Writer, activities [][]core.ActionID) error {
	bw := bufio.NewWriter(w)
	for i, h := range activities {
		for j, a := range h {
			if j > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(strconv.Itoa(int(a))); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return fmt.Errorf("dataset: writing activity %d: %w", i, err)
		}
	}
	return bw.Flush()
}
