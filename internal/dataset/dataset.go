// Package dataset synthesizes the two evaluation scenarios of the paper's
// Section 6 and loads/stores user activities.
//
// The original assets — the FoodMart purchase database joined with the LIRMM
// food-ontology recipes, and the crawled 43Things goal stories — are not
// redistributable, so the generators below produce synthetic equivalents
// calibrated to the published statistics (entity counts, implementation
// sizes, action connectivity, user-goal distribution). The qualitative axis
// the paper analyses — high action connectivity (foodmarket, ~1.2K
// implementations per action at full scale) versus low connectivity
// (43Things, actions confined to small goal families) — is controlled
// explicitly. See DESIGN.md for the substitution rationale.
package dataset

import (
	"goalrec/internal/baseline"
	"goalrec/internal/core"
	"goalrec/internal/intset"
)

// User is one evaluation subject: the full ground-truth activity and, when
// the scenario records them, the goals the user pursues.
type User struct {
	// Activity is the user's complete, sorted action set.
	Activity []core.ActionID
	// Sequence is the same actions in the order they were performed
	// (first occurrence kept). The set-based goal model ignores order; the
	// sequence feeds order-sensitive comparators like the Markov
	// next-action baseline.
	Sequence []core.ActionID
	// Goals lists the goals the user explicitly pursues (43Things), or is
	// nil when goal pursuit is unobserved (foodmarket carts).
	Goals []core.GoalID
	// Customer links evaluation rows belonging to one person (the
	// foodmarket scenario has up to three carts per customer, the basis of
	// the paper's Figure 4 TPR protocol). −1 when the scenario has no such
	// linkage.
	Customer int
}

// Dataset bundles everything an experiment needs: the goal-implementation
// library, the evaluation users, and (when the domain defines them) the
// content features.
type Dataset struct {
	// Name identifies the scenario ("foodmart" or "43things").
	Name string
	// Library is the goal-implementation set L.
	Library *core.Library
	// Users are the evaluation subjects.
	Users []User
	// Features holds the domain-specific action features (nil for scenarios
	// without accepted features, like 43Things).
	Features *baseline.Features
	// NumCategories is the size of the feature space when Features != nil.
	NumCategories int
}

// Activities projects the users onto their activities, the shape the
// baseline recommenders are fit on.
func (d *Dataset) Activities() [][]core.ActionID {
	out := make([][]core.ActionID, len(d.Users))
	for i, u := range d.Users {
		out[i] = u.Activity
	}
	return out
}

// Interactions builds the implicit-feedback matrix over the dataset's users.
func (d *Dataset) Interactions() *baseline.Interactions {
	return baseline.NewInteractions(d.Activities(), d.Library.NumActions())
}

// normalize sorts and deduplicates an activity in place and returns it.
func normalize(h []core.ActionID) []core.ActionID {
	return intset.FromUnsorted(h)
}

// Sequences projects the users onto their ordered sequences.
func (d *Dataset) Sequences() [][]core.ActionID {
	out := make([][]core.ActionID, len(d.Users))
	for i, u := range d.Users {
		out[i] = u.Sequence
	}
	return out
}

// dedupKeepOrder removes duplicate actions preserving first-occurrence
// order.
func dedupKeepOrder(seq []core.ActionID) []core.ActionID {
	seen := make(map[core.ActionID]struct{}, len(seq))
	out := seq[:0]
	for _, a := range seq {
		if _, dup := seen[a]; dup {
			continue
		}
		seen[a] = struct{}{}
		out = append(out, a)
	}
	return out
}
