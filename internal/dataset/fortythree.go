package dataset

import (
	"fmt"

	"goalrec/internal/core"
	"goalrec/internal/xrand"
)

// FortyThreeThingsConfig parameterizes the life-goal scenario: goals
// organized in narrow "families" whose actions rarely serve goals outside
// the family, users pursuing a small number of goals (the paper's
// distribution: 5047 users with 1 goal, 1806 with 2, 623 with 3, 595 with
// more). Defaults reproduce the published entity counts at Scale = 1.
//
// The paper reports an action connectivity of 3.84 together with 18047
// implementations over 5456 actions; those three numbers are mutually
// inconsistent with the multi-action implementations its own Table 1 shows
// (they would force a mean implementation length of ~1.2). The generator
// keeps the entity counts and the *low-connectivity regime* — actions
// confined to goal families, two orders of magnitude below the foodmarket's
// connectivity — which is the property the paper's analysis actually uses.
type FortyThreeThingsConfig struct {
	// Scale multiplies every cardinality; 1.0 is the paper's full size.
	Scale float64
	// Implementations is the number of goal implementations (paper: 18047).
	Implementations int
	// Goals is the number of distinct life goals (paper: 3747).
	Goals int
	// Actions is the number of distinct actions (paper: 5456).
	Actions int
	// Users is the number of evaluation users (paper: 8071).
	Users int
	// MeanImplLen is the mean actions per implementation (default 4, in
	// line with the paper's Table 1 walkthrough).
	MeanImplLen float64
	// FamilySize is the number of actions a goal family draws from
	// (default 25).
	FamilySize int
	// CrossFamilyProb is the probability an implementation action is drawn
	// globally instead of from the family (default 0.05), producing the few
	// bridge actions real goal stories share ("make a plan", "save money").
	CrossFamilyProb float64
	// GoalsPerUser overrides the paper's user-goal-count distribution when
	// non-nil: GoalsPerUser[i] users pursue i+1 goals.
	GoalsPerUser []int
	// Seed drives all sampling.
	Seed uint64
}

func (c *FortyThreeThingsConfig) fill() {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	def := func(v *int, full int) {
		if *v <= 0 {
			*v = int(float64(full)*c.Scale + 0.5)
			if *v < 1 {
				*v = 1
			}
		}
	}
	def(&c.Implementations, 18047)
	def(&c.Goals, 3747)
	def(&c.Actions, 5456)
	def(&c.Users, 8071)
	if c.MeanImplLen <= 0 {
		c.MeanImplLen = 4
	}
	if c.FamilySize <= 0 {
		c.FamilySize = 25
	}
	if c.FamilySize > c.Actions {
		c.FamilySize = c.Actions
	}
	if c.CrossFamilyProb <= 0 {
		c.CrossFamilyProb = 0.05
	}
	if c.Goals > c.Implementations {
		c.Goals = c.Implementations
	}
	if len(c.GoalsPerUser) == 0 {
		// The published distribution, scaled to c.Users:
		// 5047 / 1806 / 623 / 595 of 8071 users pursue 1 / 2 / 3 / 4+ goals.
		total := 5047 + 1806 + 623 + 595
		c.GoalsPerUser = []int{
			c.Users * 5047 / total,
			c.Users * 1806 / total,
			c.Users * 623 / total,
		}
		rest := c.Users - c.GoalsPerUser[0] - c.GoalsPerUser[1] - c.GoalsPerUser[2]
		c.GoalsPerUser = append(c.GoalsPerUser, rest)
	}
}

// GenerateFortyThreeThings synthesizes the life-goal scenario.
func GenerateFortyThreeThings(cfg FortyThreeThingsConfig) (*Dataset, error) {
	cfg.fill()
	rng := xrand.New(cfg.Seed)

	// Goal families: consecutive goals share a family; each family owns a
	// contiguous block of actions plus a few sampled outsiders, keeping
	// cross-family connectivity near zero.
	goalsPerFamily := 6
	numFamilies := (cfg.Goals + goalsPerFamily - 1) / goalsPerFamily
	familyActions := make([][]core.ActionID, numFamilies)
	for f := range familyActions {
		base := (f * cfg.FamilySize * 3 / 4) % cfg.Actions // overlapping blocks
		acts := make([]core.ActionID, 0, cfg.FamilySize)
		for i := 0; i < cfg.FamilySize; i++ {
			acts = append(acts, core.ActionID((base+i)%cfg.Actions))
		}
		familyActions[f] = acts
	}

	// Goal popularity is Zipfian: a few goals ("lose weight") attract many
	// implementations and users.
	goalPop := xrand.NewZipf(rng.Split(), cfg.Goals, 0.8)

	builder := core.NewBuilder(cfg.Implementations, int(cfg.MeanImplLen))
	implsOfGoal := make([][]core.ImplID, cfg.Goals)
	for i := 0; i < cfg.Implementations; i++ {
		var goal core.GoalID
		if i < cfg.Goals {
			goal = core.GoalID(i) // every goal gets at least one implementation
		} else {
			goal = core.GoalID(goalPop.Next())
		}
		family := familyActions[int(goal)/goalsPerFamily]
		length := 1 + rng.Poisson(cfg.MeanImplLen-1)
		if length > len(family) {
			length = len(family)
		}
		acts := make([]core.ActionID, 0, length)
		for len(acts) < length {
			if rng.Float64() < cfg.CrossFamilyProb {
				acts = append(acts, core.ActionID(rng.Intn(cfg.Actions)))
				continue
			}
			acts = append(acts, family[rng.Intn(len(family))])
		}
		id, err := builder.Add(goal, acts)
		if err != nil {
			return nil, fmt.Errorf("dataset: implementation %d: %w", i, err)
		}
		implsOfGoal[goal] = append(implsOfGoal[goal], id)
	}
	lib := builder.Build()

	// Users: pick goal counts from the configured distribution, then for
	// each chosen goal perform the actions of one of its implementations.
	users := make([]User, 0, cfg.Users)
	for numGoals, count := range cfg.GoalsPerUser {
		for i := 0; i < count; i++ {
			k := numGoals + 1
			if k > cfg.Goals {
				k = cfg.Goals
			}
			goalSet := make(map[core.GoalID]struct{}, k)
			for len(goalSet) < k {
				goalSet[core.GoalID(goalPop.Next())] = struct{}{}
			}
			goals := make([]core.GoalID, 0, len(goalSet))
			for g := range goalSet {
				goals = append(goals, g)
			}
			goals = normalizeGoals(goals)
			var activity []core.ActionID
			for _, g := range goals {
				impls := implsOfGoal[g]
				p := impls[rng.Intn(len(impls))]
				activity = append(activity, lib.Actions(p)...)
			}
			seq := dedupKeepOrder(activity)
			users = append(users, User{
				Activity: normalize(append([]core.ActionID(nil), seq...)),
				Sequence: seq,
				Goals:    goals,
				Customer: -1,
			})
		}
	}

	// Users were appended grouped by goal count; shuffle so any prefix (an
	// evaluation harness capping the user count) is an unbiased sample of
	// the configured distribution.
	rng.Shuffle(len(users), func(i, j int) { users[i], users[j] = users[j], users[i] })

	return &Dataset{
		Name:    "43things",
		Library: lib,
		Users:   users,
	}, nil
}

func normalizeGoals(gs []core.GoalID) []core.GoalID {
	out := gs[:0]
	seen := make(map[core.GoalID]struct{}, len(gs))
	for _, g := range gs {
		if _, dup := seen[g]; !dup {
			seen[g] = struct{}{}
			out = append(out, g)
		}
	}
	// Keep sorted for deterministic downstream iteration.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
