package dataset

import (
	"fmt"
	"math"

	"goalrec/internal/baseline"
	"goalrec/internal/core"
	"goalrec/internal/xrand"
)

// FoodMartConfig parameterizes the grocery scenario: products organized in
// (sub)categories, recipes as goal implementations over product-ingredients,
// and shopping carts as user activities. Defaults reproduce the published
// statistics at Scale = 1; tests and quick benchmarks use smaller scales.
type FoodMartConfig struct {
	// Scale multiplies every cardinality; 1.0 is the paper's full size.
	// Values in (0, 1) shrink the scenario proportionally.
	Scale float64
	// Products is the number of food products (paper: 1560).
	Products int
	// Categories is the number of product (sub)categories (paper: 128).
	Categories int
	// Recipes is the number of goal implementations (paper: 56500).
	Recipes int
	// Goals is the number of distinct dishes; several recipes may implement
	// the same dish. Defaults to Recipes (one dish per recipe) like the
	// LIRMM ontology.
	Goals int
	// MeanIngredients is the mean recipe length. The paper's connectivity of
	// ~1.2K implementations per product implies roughly
	// Recipes·MeanIngredients ≈ Products·1200, i.e. a mean of ~33 at full
	// scale.
	MeanIngredients float64
	// Carts is the number of shopping carts used as evaluation activities
	// (paper: 20500).
	Carts int
	// MaxCartsPerUser bounds how many carts one customer contributes
	// (paper: at most 3).
	MaxCartsPerUser int
	// ZipfExponent skews ingredient popularity (staples like salt appear in
	// a large share of recipes).
	ZipfExponent float64
	// Seed drives all sampling.
	Seed uint64
}

// fill applies defaults and scale.
func (c *FoodMartConfig) fill() {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	def := func(v *int, full int) {
		if *v <= 0 {
			*v = int(float64(full)*c.Scale + 0.5)
			if *v < 1 {
				*v = 1
			}
		}
	}
	def(&c.Products, 1560)
	def(&c.Categories, 128)
	def(&c.Recipes, 56500)
	if c.Goals <= 0 {
		c.Goals = c.Recipes
	}
	def(&c.Carts, 20500)
	if c.MeanIngredients <= 0 {
		// ~33 at full scale (matching the paper's ~1.2K connectivity);
		// shrink with the square root of the scale so scaled-down libraries
		// stay dense but feasible.
		c.MeanIngredients = 33 * math.Sqrt(c.Scale)
		if c.MeanIngredients < 4 {
			c.MeanIngredients = 4
		}
		// A defaulted mean is clamped to stay feasible at tiny scales;
		// explicitly configured values are validated by GenerateFoodMart
		// instead.
		if c.MeanIngredients > float64(c.Products)/2 {
			c.MeanIngredients = float64(c.Products) / 2
		}
		if c.MeanIngredients < 1 {
			c.MeanIngredients = 1
		}
	}
	if c.MaxCartsPerUser <= 0 {
		c.MaxCartsPerUser = 3
	}
	if c.ZipfExponent <= 0 {
		c.ZipfExponent = 0.7
	}
	if c.Categories > c.Products {
		c.Categories = c.Products
	}
	if c.Goals > c.Recipes {
		c.Goals = c.Recipes
	}
}

// GenerateFoodMart synthesizes the grocery scenario. Every product belongs
// to one category; recipes draw most ingredients from a small cluster of
// related categories (a "cuisine") plus Zipf-popular staples, giving
// products the very high connectivity regime of the paper's first dataset.
// Carts are built from partial recipe materializations plus noise purchases,
// so they correlate with — but do not equal — implementations.
func GenerateFoodMart(cfg FoodMartConfig) (*Dataset, error) {
	cfg.fill()
	if cfg.MeanIngredients > float64(cfg.Products) {
		return nil, fmt.Errorf("dataset: mean recipe length %.1f exceeds product count %d", cfg.MeanIngredients, cfg.Products)
	}
	rng := xrand.New(cfg.Seed)

	// Assign every product a category (round-robin keeps categories
	// non-empty even at small scales).
	categoryOf := make([][]baseline.FeatureID, cfg.Products)
	for p := range categoryOf {
		categoryOf[p] = []baseline.FeatureID{int32(p % cfg.Categories)}
	}
	feats := baseline.NewFeatures(categoryOf, cfg.Categories)

	// Ingredient popularity: global Zipf over products (staples like salt
	// appear in a large share of recipes).
	pop := xrand.NewZipf(rng.Split(), cfg.Products, cfg.ZipfExponent)

	// Cart bestsellers follow their own, independent popularity order: what
	// sells most (milk, bread) is not what the recipe ontology uses most.
	// This keeps cart popularity and recipe membership decorrelated, the
	// property behind the paper's Table 3 (goal-based recommendations do not
	// follow cart popularity).
	bestsellerOf := rng.Perm(cfg.Products)
	cartPop := xrand.NewZipf(rng.Split(), cfg.Products, 1.1)

	// Cuisines: overlapping clusters of categories. Each recipe samples a
	// cuisine and draws ~70% of its ingredients from the cuisine's
	// categories and ~30% from the global staple distribution.
	numCuisines := cfg.Categories/8 + 1
	cuisines := make([][]int32, numCuisines) // category ids per cuisine
	for i := range cuisines {
		size := 4 + rng.Intn(8)
		if size > cfg.Categories {
			size = cfg.Categories
		}
		cuisines[i] = rng.SampleInt32(int32(cfg.Categories), size)
	}
	// Products per category for cuisine-local draws.
	prodsByCat := make([][]core.ActionID, cfg.Categories)
	for p := 0; p < cfg.Products; p++ {
		c := p % cfg.Categories
		prodsByCat[c] = append(prodsByCat[c], core.ActionID(p))
	}

	builder := core.NewBuilder(cfg.Recipes, int(cfg.MeanIngredients))
	recipeOfGoal := make([][]core.ImplID, cfg.Goals)
	for r := 0; r < cfg.Recipes; r++ {
		goal := core.GoalID(r % cfg.Goals)
		length := rng.Poisson(cfg.MeanIngredients - 2)
		length += 2 // at least a couple of ingredients
		if length > cfg.Products {
			length = cfg.Products
		}
		cuisine := cuisines[rng.Intn(numCuisines)]
		ingredients := make([]core.ActionID, 0, length)
		for len(ingredients) < length {
			if rng.Float64() < 0.7 && len(cuisine) > 0 {
				cat := cuisine[rng.Intn(len(cuisine))]
				pool := prodsByCat[cat]
				if len(pool) > 0 {
					ingredients = append(ingredients, pool[rng.Intn(len(pool))])
					continue
				}
			}
			ingredients = append(ingredients, core.ActionID(pop.Next()))
		}
		id, err := builder.Add(goal, ingredients)
		if err != nil {
			return nil, fmt.Errorf("dataset: recipe %d: %w", r, err)
		}
		recipeOfGoal[goal] = append(recipeOfGoal[goal], id)
	}
	lib := builder.Build()

	// Carts: each customer contributes 1..MaxCartsPerUser carts; a cart
	// materializes a random fraction of 1-3 recipes plus noise products.
	users := make([]User, 0, cfg.Carts)
	customer := -1
	for len(users) < cfg.Carts {
		customer++
		cartsForCustomer := 1 + rng.Intn(cfg.MaxCartsPerUser)
		for c := 0; c < cartsForCustomer && len(users) < cfg.Carts; c++ {
			numRecipes := 1 + rng.Intn(3)
			var cart []core.ActionID
			for i := 0; i < numRecipes; i++ {
				p := core.ImplID(rng.Intn(lib.NumImplementations()))
				acts := lib.Actions(p)
				// Take 30-80% of the recipe's ingredients.
				take := 1 + rng.Intn(len(acts))
				frac := 0.3 + 0.5*rng.Float64()
				if est := int(frac * float64(len(acts))); est > 0 {
					take = est
				}
				for _, idx := range rng.SampleInt32(int32(len(acts)), take) {
					cart = append(cart, acts[idx])
				}
			}
			// Noise purchases unrelated to any chosen recipe, drawn from the
			// bestseller distribution.
			for i := rng.Poisson(4); i > 0; i-- {
				cart = append(cart, core.ActionID(bestsellerOf[cartPop.Next()]))
			}
			seq := dedupKeepOrder(cart)
			users = append(users, User{
				Activity: normalize(append([]core.ActionID(nil), seq...)),
				Sequence: seq,
				Customer: customer,
			})
		}
	}

	return &Dataset{
		Name:          "foodmart",
		Library:       lib,
		Users:         users,
		Features:      feats,
		NumCategories: cfg.Categories,
	}, nil
}
