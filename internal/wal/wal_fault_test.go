package wal

import (
	"bytes"
	"errors"
	"fmt"
	"path/filepath"
	"syscall"
	"testing"

	"goalrec/internal/faultfs"
)

// TestOpenWriterFaults drives OpenWriterFS through an injected failure of
// each operation a fresh log performs, asserting the error surfaces and a
// clean retry then succeeds on the same path.
func TestOpenWriterFaults(t *testing.T) {
	for _, tc := range []struct {
		name string
		rule faultfs.Rule
	}{
		{"open", faultfs.Rule{Op: faultfs.OpOpenFile, Err: faultfs.EIO, Once: true}},
		{"truncate", faultfs.Rule{Op: faultfs.OpTruncate, Err: faultfs.EIO, Once: true}},
		{"header-write", faultfs.Rule{Op: faultfs.OpWriteAt, Err: faultfs.ENOSPC, Once: true}},
		{"header-short-write", faultfs.Rule{Op: faultfs.OpWriteAt, Short: 3, Err: faultfs.ENOSPC, Once: true}},
		{"sync", faultfs.Rule{Op: faultfs.OpSync, Err: faultfs.EIO, Once: true}},
		{"dir-sync", faultfs.Rule{Op: faultfs.OpSyncDir, Err: faultfs.EIO, Once: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "ingest.wal")
			inj := faultfs.NewInjector(nil)
			inj.Fail(tc.rule)
			if _, err := OpenWriterFS(inj, path, 0, false); !errors.Is(err, faultfs.ErrInjected) {
				t.Fatalf("OpenWriterFS with %s fault = %v, want injected error", tc.name, err)
			}
			// The fault was one-shot: reopening heals, and the possibly-torn
			// header is rewritten from scratch.
			w, err := OpenWriterFS(inj, path, 0, false)
			if err != nil {
				t.Fatalf("retry OpenWriterFS: %v", err)
			}
			if err := w.Append([]byte("rec")); err != nil {
				t.Fatalf("Append after heal: %v", err)
			}
			if err := w.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			recs, _ := replayAll(t, path)
			if len(recs) != 1 || string(recs[0]) != "rec" {
				t.Fatalf("replay after heal = %q, want [rec]", recs)
			}
		})
	}
}

// TestAppendFaultLeavesSizeAndRecovers: a failed append (short write, full
// write error, ENOSPC) must not advance the writer, and the next successful
// append must overwrite the torn frame so replay never sees it.
func TestAppendFaultLeavesSizeAndRecovers(t *testing.T) {
	for _, tc := range []struct {
		name string
		rule faultfs.Rule
	}{
		{"enospc", faultfs.Rule{Op: faultfs.OpWriteAt, Err: faultfs.ENOSPC, Once: true}},
		{"short-write", faultfs.Rule{Op: faultfs.OpWriteAt, Short: 5, Err: faultfs.ENOSPC, Once: true}},
		{"eio", faultfs.Rule{Op: faultfs.OpWriteAt, Err: faultfs.EIO, Once: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "ingest.wal")
			inj := faultfs.NewInjector(nil)
			w, err := OpenWriterFS(inj, path, 0, false)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Append([]byte("first")); err != nil {
				t.Fatal(err)
			}
			sizeBefore := w.Size()
			inj.Fail(tc.rule)
			if err := w.Append([]byte("torn-record")); !errors.Is(err, faultfs.ErrInjected) {
				t.Fatalf("faulted Append = %v, want injected error", err)
			}
			if w.Size() != sizeBefore {
				t.Fatalf("failed append advanced size %d -> %d", sizeBefore, w.Size())
			}
			if err := w.Append([]byte("second")); err != nil {
				t.Fatalf("append after fault: %v", err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			recs, size := replayAll(t, path)
			if len(recs) != 2 || string(recs[0]) != "first" || string(recs[1]) != "second" {
				t.Fatalf("replay = %q, want [first second]", recs)
			}
			if size != w.Size() {
				t.Fatalf("replay size %d != writer size %d", size, w.Size())
			}
		})
	}
}

// TestRecoverTruncatesTornTail: Recover discards a partial frame so the
// on-disk log is byte-exact with the acknowledged state again.
func TestRecoverTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	inj := faultfs.NewInjector(nil)
	w, err := OpenWriterFS(inj, path, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("acked")); err != nil {
		t.Fatal(err)
	}
	// Tear a write mid-frame; the torn prefix lands on disk.
	inj.Fail(faultfs.Rule{Op: faultfs.OpWriteAt, Short: 6, Err: faultfs.ENOSPC, Once: true})
	if err := w.Append([]byte("never-acked")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("torn Append = %v, want ENOSPC", err)
	}
	if fi, err := faultfs.OS.Stat(path); err != nil || fi.Size() == w.Size() {
		t.Fatalf("expected a torn tail on disk beyond %d bytes (got %d, %v)", w.Size(), fi.Size(), err)
	}
	if err := w.Recover(); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if fi, err := faultfs.OS.Stat(path); err != nil || fi.Size() != w.Size() {
		t.Fatalf("after Recover file is %d bytes, want %d (%v)", fi.Size(), w.Size(), err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs, _ := replayAll(t, path)
	if len(recs) != 1 || string(recs[0]) != "acked" {
		t.Fatalf("replay after Recover = %q, want [acked]", recs)
	}
}

// TestSyncEachFaultSurfaces: with syncEach, a failing fsync must surface to
// the caller even though the write itself landed — the durability contract
// is fsync-inclusive.
func TestSyncEachFaultSurfaces(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	inj := faultfs.NewInjector(nil)
	w, err := OpenWriterFS(inj, path, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	inj.Fail(faultfs.Rule{Op: faultfs.OpSync, Err: faultfs.EIO, Once: true})
	if err := w.Append([]byte("rec")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Append with failing fsync = %v, want EIO", err)
	}
	if err := w.Append([]byte("rec2")); err != nil {
		t.Fatalf("Append after fsync heals: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCloseSyncFault: Close must report a failing final sync, not swallow it.
func TestCloseSyncFault(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	inj := faultfs.NewInjector(nil)
	w, err := OpenWriterFS(inj, path, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("rec")); err != nil {
		t.Fatal(err)
	}
	inj.Fail(faultfs.Rule{Op: faultfs.OpSync, Err: faultfs.EIO, Once: true})
	if err := w.Close(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("Close with failing sync = %v, want EIO", err)
	}
}

// TestAppendReusesScratch pins the pooled-buffer satellite: sustained
// appends must not allocate per record.
func TestAppendReusesScratch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ingest.wal")
	w, err := OpenWriter(path, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	payload := bytes.Repeat([]byte("x"), 512)
	if err := w.Append(payload); err != nil { // warm the scratch
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if err := w.Append(payload); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Fatalf("Append allocates %.1f times per record, want 0", allocs)
	}
}

func BenchmarkWriterAppend(b *testing.B) {
	for _, size := range []int{64, 4096} {
		b.Run(fmt.Sprintf("payload=%d", size), func(b *testing.B) {
			path := filepath.Join(b.TempDir(), "ingest.wal")
			w, err := OpenWriter(path, 0, false)
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			payload := bytes.Repeat([]byte("y"), size)
			b.SetBytes(int64(size))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := w.Append(payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
