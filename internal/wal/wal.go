// Package wal implements the length-prefixed, checksummed write-ahead log
// behind goalrec's durable ingest path. The format is deliberately minimal:
//
//	header:  "GWAL" | u32 version (little-endian)
//	record:  u32 payloadLen | u32 crc32(payload, IEEE) | payload
//
// Records are framed independently, so a reader needs no index; torn tails —
// a crash mid-append leaving a truncated frame or a payload that fails its
// checksum — terminate replay at the last intact record instead of failing
// the log. Everything before the torn point is trusted (each record carries
// its own CRC); the writer truncates the tear away before appending again.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"goalrec/internal/faultfs"
)

var magic = [4]byte{'G', 'W', 'A', 'L'}

const version = uint32(1)

// headerSize is the byte length of the file header.
const headerSize = 8

// frameSize is the byte length of a record frame before its payload.
const frameSize = 8

// MaxPayload bounds a single record. Far above any real ingest batch, low
// enough that a corrupt length prefix cannot force a huge allocation —
// lengths beyond it are treated as a torn/corrupt tail.
const MaxPayload = 64 << 20

// ErrCorrupt marks a log whose header is malformed — as opposed to a torn
// tail, which Replay tolerates silently.
var ErrCorrupt = errors.New("wal: corrupt log header")

// Replay calls fn for every intact record of the log at path, in order, and
// returns the byte offset just past the last intact record — the size the
// file should be truncated to before appending. A missing file replays zero
// records with size 0. fn's payload slice is reused between calls; fn must
// copy anything it keeps. A non-nil error from fn aborts the replay.
func Replay(path string, fn func(payload []byte) error) (int64, error) {
	return ReplayFS(faultfs.OS, path, fn)
}

// ReplayFS is Replay over an explicit filesystem (fault injection; see
// internal/faultfs).
func ReplayFS(fsys faultfs.FS, path string, fn func(payload []byte) error) (int64, error) {
	f, err := fsys.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	defer f.Close()

	br := bufio.NewReaderSize(f, 1<<20)
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil // empty or header-torn file: nothing to replay
		}
		return 0, err
	}
	if [4]byte(hdr[:4]) != magic {
		return 0, fmt.Errorf("%w: bad magic %q", ErrCorrupt, hdr[:4])
	}
	if v := binary.LittleEndian.Uint32(hdr[4:]); v != version {
		return 0, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}

	good := int64(headerSize)
	var frame [frameSize]byte
	var payload []byte
	for {
		if _, err := io.ReadFull(br, frame[:]); err != nil {
			return good, nil // clean EOF or torn frame: stop at the last record
		}
		n := binary.LittleEndian.Uint32(frame[0:])
		sum := binary.LittleEndian.Uint32(frame[4:])
		if n > MaxPayload {
			return good, nil // implausible length: treat as a torn tail
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(br, payload); err != nil {
			return good, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return good, nil // corrupt tail
		}
		if err := fn(payload); err != nil {
			return good, err
		}
		good += frameSize + int64(n)
	}
}

// Writer appends checksummed records to a log file. Not safe for concurrent
// use; callers serialize appends.
type Writer struct {
	f        faultfs.File
	syncEach bool
	size     int64

	// buf is the reusable frame scratch: Append frames every record into it
	// instead of allocating per record, so sustained ingest does not churn
	// the allocator with one garbage buffer per acknowledged write.
	buf []byte
}

// OpenWriter opens (creating if needed) the log at path for appending.
// validSize is the offset Replay returned: anything past it — a torn tail —
// is truncated away first. A fresh or empty log gets the header written and
// synced, and the parent directory fsynced so the log's very name survives
// power loss. syncEach selects fsync-per-append (durable against power loss)
// over write-and-let-the-page-cache-flush (durable against process crash
// only).
func OpenWriter(path string, validSize int64, syncEach bool) (*Writer, error) {
	return OpenWriterFS(faultfs.OS, path, validSize, syncEach)
}

// OpenWriterFS is OpenWriter over an explicit filesystem (fault injection;
// see internal/faultfs).
func OpenWriterFS(fsys faultfs.FS, path string, validSize int64, syncEach bool) (*Writer, error) {
	f, err := fsys.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	w := &Writer{f: f, syncEach: syncEach}
	if validSize < headerSize {
		var hdr [headerSize]byte
		copy(hdr[:4], magic[:])
		binary.LittleEndian.PutUint32(hdr[4:], version)
		if err := f.Truncate(0); err != nil {
			_ = f.Close()
			return nil, err
		}
		if _, err := f.WriteAt(hdr[:], 0); err != nil {
			_ = f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			_ = f.Close()
			return nil, err
		}
		// A fresh log is a fresh directory entry; without the directory
		// fsync a power loss can forget the file while keeping its blocks.
		if err := fsys.SyncDir(filepath.Dir(path)); err != nil {
			_ = f.Close()
			return nil, err
		}
		w.size = headerSize
		return w, nil
	}
	if err := f.Truncate(validSize); err != nil {
		_ = f.Close()
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		_ = f.Close()
		return nil, err
	}
	w.size = validSize
	return w, nil
}

// Append frames payload and writes it to the log, fsyncing when the writer
// was opened with syncEach. The record is written with a single write call,
// so a crash tears at most the final record — which Replay then drops. A
// failed append leaves w.size untouched: the next Append (or Recover)
// overwrites whatever partial frame landed.
func (w *Writer) Append(payload []byte) error {
	if len(payload) > MaxPayload {
		return fmt.Errorf("wal: payload of %d bytes exceeds the %d-byte record limit", len(payload), MaxPayload)
	}
	need := frameSize + len(payload)
	if cap(w.buf) < need {
		w.buf = make([]byte, need)
	}
	rec := w.buf[:need]
	binary.LittleEndian.PutUint32(rec[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:], crc32.ChecksumIEEE(payload))
	copy(rec[frameSize:], payload)
	if _, err := w.f.WriteAt(rec, w.size); err != nil {
		return err
	}
	w.size += int64(need)
	if w.syncEach {
		return w.f.Sync()
	}
	return nil
}

// Size returns the log's current byte size (header plus intact records).
func (w *Writer) Size() int64 { return w.size }

// Sync flushes the log to stable storage.
func (w *Writer) Sync() error { return w.f.Sync() }

// Recover truncates the log back to its last acknowledged size and syncs it,
// discarding whatever a failed Append left behind — including a frame that
// landed intact but was never acknowledged to the caller. It is the
// write-probe a degraded store uses to test whether the disk heals: success
// proves the log is writable and byte-exact again.
func (w *Writer) Recover() error {
	if err := w.f.Truncate(w.size); err != nil {
		return err
	}
	return w.f.Sync()
}

// Close syncs and closes the log.
func (w *Writer) Close() error {
	if err := w.f.Sync(); err != nil {
		_ = w.f.Close()
		return err
	}
	return w.f.Close()
}
