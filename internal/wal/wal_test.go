package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func replayAll(t *testing.T, path string) ([][]byte, int64) {
	t.Helper()
	var out [][]byte
	size, err := Replay(path, func(p []byte) error {
		out = append(out, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out, size
}

func TestAppendReplayRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a.wal")
	w, err := OpenWriter(path, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 50; i++ {
		p := []byte(fmt.Sprintf("record-%d-%s", i, bytes.Repeat([]byte{byte(i)}, i*7)))
		want = append(want, p)
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, size := replayAll(t, path)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if size != fi.Size() {
		t.Fatalf("valid size %d != file size %d", size, fi.Size())
	}
}

func TestReplayMissingAndEmpty(t *testing.T) {
	dir := t.TempDir()
	recs, size := replayAll(t, filepath.Join(dir, "missing.wal"))
	if len(recs) != 0 || size != 0 {
		t.Fatalf("missing file: %d records, size %d", len(recs), size)
	}
	empty := filepath.Join(dir, "empty.wal")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, size = replayAll(t, empty)
	if len(recs) != 0 || size != 0 {
		t.Fatalf("empty file: %d records, size %d", len(recs), size)
	}
}

func TestReplayRejectsBadHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.wal")
	if err := os.WriteFile(path, []byte("NOTAWAL!"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(path, func([]byte) error { return nil }); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// A torn tail — truncation anywhere inside the last record — must replay the
// intact prefix, and reopening at the returned size must restore a log that
// appends cleanly.
func TestTornTailRecovery(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "torn.wal")
	w, err := OpenWriter(path, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Append([]byte(fmt.Sprintf("rec-%d-padding-padding", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	for cut := len(full) - 1; cut > headerSize; cut -= 7 {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		recs, size := replayAll(t, path)
		if size > int64(cut) {
			t.Fatalf("cut %d: valid size %d beyond file", cut, size)
		}
		// Reopen, append one more record, and verify the log replays the
		// prefix plus the new record.
		w, err := OpenWriter(path, size, false)
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if err := w.Append([]byte("appended-after-tear")); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		recs2, _ := replayAll(t, path)
		if len(recs2) != len(recs)+1 {
			t.Fatalf("cut %d: %d records after reappend, want %d", cut, len(recs2), len(recs)+1)
		}
		if string(recs2[len(recs2)-1]) != "appended-after-tear" {
			t.Fatalf("cut %d: tail record corrupted", cut)
		}
		// Restore the original for the next iteration's baseline.
		if err := os.WriteFile(path, full, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// A bit flip in the final record's payload must drop that record (CRC), not
// fail the log; a flip in an earlier record is pre-tail corruption and also
// simply ends replay there — everything before it survives.
func TestCorruptPayloadEndsReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "crc.wal")
	w, err := OpenWriter(path, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := w.Append([]byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	recs, _ := replayAll(t, path)
	if len(recs) != 2 {
		t.Fatalf("replayed %d records past a corrupt tail, want 2", len(recs))
	}
}

func TestImplausibleLengthIsTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "len.wal")
	w, err := OpenWriter(path, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	// A frame claiming a multi-GB payload.
	if _, err := f.Write([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	recs, _ := replayAll(t, path)
	if len(recs) != 1 {
		t.Fatalf("replayed %d records, want 1", len(recs))
	}
}

// TestEveryOffsetTruncation writes interleaved records of very different
// sizes (mimicking small user-append records between large batch records),
// truncates at EVERY byte offset, and asserts Replay returns exactly the
// maximal prefix of complete records — computed independently from the known
// framing (8-byte header, then 8-byte frame + payload per record).
func TestEveryOffsetTruncation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "mixed.wal")
	w, err := OpenWriter(path, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	var payloads [][]byte
	sizes := []int{200, 3, 17, 450, 1, 90, 8, 300}
	for i, n := range sizes {
		p := bytes.Repeat([]byte{byte('a' + i)}, n)
		payloads = append(payloads, p)
		if err := w.Append(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Record boundaries from the framing contract.
	bounds := []int64{headerSize}
	for _, p := range payloads {
		bounds = append(bounds, bounds[len(bounds)-1]+int64(frameSize)+int64(len(p)))
	}
	if bounds[len(bounds)-1] != int64(len(full)) {
		t.Fatalf("framing arithmetic off: computed end %d, file %d", bounds[len(bounds)-1], len(full))
	}

	for cut := 0; cut <= len(full); cut++ {
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		// Expected: all records whose frame ends at or before the cut.
		wantN := 0
		for wantN < len(payloads) && bounds[wantN+1] <= int64(cut) {
			wantN++
		}
		recs, size := replayAll(t, path)
		if len(recs) != wantN {
			t.Fatalf("cut %d: replayed %d records, want %d", cut, len(recs), wantN)
		}
		for i := 0; i < wantN; i++ {
			if !bytes.Equal(recs[i], payloads[i]) {
				t.Fatalf("cut %d: record %d corrupted", cut, i)
			}
		}
		wantSize := int64(0)
		if cut >= headerSize {
			wantSize = bounds[wantN]
		}
		if size != wantSize {
			t.Fatalf("cut %d: valid size %d, want %d", cut, size, wantSize)
		}
	}
}

func TestAppendRejectsOversizedPayload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "big.wal")
	w, err := OpenWriter(path, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(make([]byte, MaxPayload+1)); err == nil {
		t.Fatal("oversized payload accepted")
	}
}
