package strategy

import (
	"context"
	"math"
	"sort"
	"sync/atomic"

	"goalrec/internal/core"
	"goalrec/internal/intset"
	"goalrec/internal/vectorspace"
)

// Shard partials and gather merges for distributed (scatter-gather) serving.
// A cluster worker holds a contiguous implementation-id range of the library
// (see core.PartitionRange) and computes a strategy-specific partial; the
// coordinator merges partials into the exact ranking a single node would
// produce — bit-identical scores and order, pinned by the cluster oracle
// tests. The soundness arguments live in DESIGN.md ("Cluster serving &
// scatter-gather"); in short:
//
//   - Focus: emissions are annotated with their source implementation's
//     global id, length and missing count. The global emission order is
//     lexicographic in (score desc, missing asc, global impl id asc, action
//     id asc), an action's first-emitting implementation in its home shard
//     is also its globally first, and a shard's k-th emission key lower-
//     bounds nothing above the global k-th — so per-shard top-k emission
//     lists, deduplicated by best key, recover the global top k exactly.
//   - Breadth: scores are sums of integer-valued comm terms, additive over
//     any partition of the implementation space, so full per-shard candidate
//     sums (as int64) folded at the coordinator reproduce the exact float64
//     a single node computes.
//   - Best Match: profiles and candidate vectors are integer AG-idx
//     multiplicities, additive over shards. A survey round establishes the
//     global candidate set, goal space and profile; a vector round gathers
//     per-candidate multiplicities restricted to the *global* goal space;
//     the coordinator then evaluates the same float64 expressions
//     (sim = dot / (‖H⃗‖·√sumsq), score = −(1−sim)) on exactly the same
//     operand values.

// ---------------------------------------------------------------------------
// Focus
// ---------------------------------------------------------------------------

// FocusEmission is one annotated Focus emission: an action, the score of the
// implementation that emitted it, and enough of that implementation's
// identity (global id, length, missing count) to merge emission streams
// under the global total order and to derive the cross-node score floor.
type FocusEmission struct {
	Action  core.ActionID `json:"a"`
	Score   float64       `json:"s"`
	Missing int           `json:"m"`
	Impl    int64         `json:"p"`
	ImplLen int           `json:"n"`
}

// FocusFloorShare is the cross-node generalization of the cross-shard score
// floor: the coordinator injects floors gathered from completed workers, the
// local pruned scan adopts them at its usual chunk boundaries, and every
// injection only ever tightens — so the same strictness argument that makes
// single-node pruning exact carries over. A nil share disables injection.
type FocusFloorShare struct {
	floor       focusFloor
	tightenings atomic.Int64
}

// NewFocusFloorShare returns an empty share for one in-flight request.
func NewFocusFloorShare() *FocusFloorShare { return &FocusFloorShare{} }

// InjectCompleteness publishes a completeness floor c/n (overlap, length) —
// a completed worker's k-th emission ratio. Out-of-range values are ignored.
func (s *FocusFloorShare) InjectCompleteness(c, n int64) {
	if s == nil || c < 0 || n <= 0 || c >= 1<<32 || n >= 1<<32 {
		return
	}
	if s.floor.publishCmp(c, n) {
		s.tightenings.Add(1)
	}
}

// InjectCloseness publishes a closeness floor (missing count; smaller is
// tighter). Non-positive values are ignored.
func (s *FocusFloorShare) InjectCloseness(missing int64) {
	if s == nil || missing <= 0 {
		return
	}
	if s.floor.publishCl(missing) {
		s.tightenings.Add(1)
	}
}

// Tightenings reports how many injections actually tightened the floor —
// the scatter metric distinguishing useful broadcasts from redundant ones.
func (s *FocusFloorShare) Tightenings() int64 {
	if s == nil {
		return 0
	}
	return s.tightenings.Load()
}

// FloorFromEmission derives the broadcastable floor of a completed shard's
// k-th emission and injects it into share.
func FloorFromEmission(share *FocusFloorShare, measure FocusMeasure, e FocusEmission) {
	if measure == Closeness {
		share.InjectCloseness(int64(e.Missing))
		return
	}
	share.InjectCompleteness(int64(e.ImplLen-e.Missing), int64(e.ImplLen))
}

// TopEmissions is the shard-side Focus scatter entry point: the first k
// emissions of this library's Focus walk, annotated for the gather merge.
// implBase is the shard's global implementation-id offset. share, when
// non-nil and pruning is enabled, feeds externally injected floors into the
// scan; k must be positive.
//
// Under an external floor the list may come back shorter than k: the floor
// proves the skipped implementations rank strictly below the global k-th
// emission key, so nothing the merge needs is missing.
func (f *Focus) TopEmissions(ctx context.Context, activity []core.ActionID, k int, implBase int64, share *FocusFloorShare) ([]FocusEmission, error) {
	if err := entryErr(ctx); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, nil
	}
	h := intset.FromUnsorted(intset.Clone(activity))
	stream := f.lib.OverlapStream(h)
	if stream == 0 {
		return nil, nil
	}
	if f.pruning {
		var ext *focusFloor
		if share != nil {
			ext = &share.floor
		}
		return f.topEmissionsPruned(ctx, h, stream, k, implBase, ext)
	}

	workers := f.conc.workersFor(stream, f.lib.NumImplementations())
	s := f.pool.Get().(*focusScratch)
	defer f.pool.Put(s)
	ranked := s.shardRanked(workers)
	err := s.run(ctx, f.lib, h, workers, func(shard int, touched []core.ImplID, tick *ticker) error {
		rb := ranked[shard]
		var err error
		for _, p := range touched {
			if err = tick.tick(1); err != nil {
				break
			}
			if ri, ok := focusRank(f.measure, p, f.lib.ImplLen(p), int(s.cnt[p])); ok {
				rb = append(rb, ri)
			}
		}
		s.perShard[shard] = rb
		return err
	})
	if err != nil {
		return nil, err
	}
	all := s.merged[:0]
	for _, rb := range ranked {
		all = append(all, rb...)
	}
	s.merged = all

	tick := newTicker(ctx)
	// Progressive bounded selection, exactly as selectEmit: every widened
	// prefix of the total order is exact, so the emitted list matches a full
	// sort bit for bit.
	if len(all) <= k {
		sortRankedImpls(all)
		return f.emitAnnotated(all, h, k, implBase, &tick)
	}
	for m := k; ; m *= 4 {
		if m >= len(all) {
			sortRankedImpls(all)
			return f.emitAnnotated(all, h, k, implBase, &tick)
		}
		s.sel = append(s.sel[:0], all...)
		out, err := f.emitAnnotated(topMRankedImpls(s.sel, m), h, k, implBase, &tick)
		if err != nil || len(out) == k {
			return out, err
		}
	}
}

// topEmissionsPruned mirrors recommendPruned with two differences: emissions
// keep their implementation annotations, and the widening loop is capped at
// the shard's implementation count. At that width the shard heap can never
// evict, so any remaining pruning stems from the (injected or self-published)
// floor — and floor-skipped implementations are provably irrelevant to the
// gather merge, so a short list is a complete answer, not starvation.
func (f *Focus) topEmissionsPruned(ctx context.Context, h []core.ActionID, stream, k int, implBase int64, ext *focusFloor) ([]FocusEmission, error) {
	numImpls := f.lib.NumImplementations()
	workers := f.conc.workersFor(stream, numImpls)
	s := f.pool.Get().(*focusScratch)
	defer f.pool.Put(s)
	if len(s.cnt) < numImpls {
		s.cnt = make([]int32, numImpls)
	}
	if f.stats != nil {
		f.stats.ImplsAssociated.Add(int64(stream))
	}

	for m := k; ; m *= 4 {
		merged, prunedAny, err := f.prunedPass(ctx, h, workers, m, s, ext)
		if err != nil {
			return nil, err
		}
		tick := newTicker(ctx)
		var out []FocusEmission
		if len(merged) <= m {
			sortRankedImpls(merged)
			out, err = f.emitAnnotated(merged, h, k, implBase, &tick)
		} else {
			s.sel = append(s.sel[:0], merged...)
			out, err = f.emitAnnotated(topMRankedImpls(s.sel, m), h, k, implBase, &tick)
		}
		if err != nil {
			return nil, err
		}
		if len(out) == k {
			return out, nil
		}
		if !prunedAny {
			if len(merged) > m {
				// Nothing pruned: the merge is the complete scored set, so
				// the full sort emits everything there is.
				sortRankedImpls(merged)
				return f.emitAnnotated(merged, h, k, implBase, &tick)
			}
			return out, nil
		}
		if m >= numImpls {
			return out, nil
		}
	}
}

// emitAnnotated is emit with implementation annotations, k > 0.
func (f *Focus) emitAnnotated(ranked []rankedImpl, h []core.ActionID, k int, implBase int64, tick *ticker) ([]FocusEmission, error) {
	var (
		out  []FocusEmission
		seen = make(map[core.ActionID]struct{})
	)
	for _, ri := range ranked {
		if err := tick.tick(1); err != nil {
			return out, err
		}
		n := f.lib.ImplLen(ri.id)
		for _, a := range f.lib.Actions(ri.id) {
			if intset.Contains(h, a) {
				continue
			}
			if _, dup := seen[a]; dup {
				continue
			}
			seen[a] = struct{}{}
			out = append(out, FocusEmission{
				Action:  a,
				Score:   ri.score,
				Missing: ri.missing,
				Impl:    implBase + int64(ri.id),
				ImplLen: n,
			})
			if len(out) == k {
				return out, nil
			}
		}
	}
	return out, nil
}

// emissionBefore is the global emission order: implementation key (score
// desc, missing asc, global id asc), then action id within an
// implementation. It extends implRanksBefore across shards.
func emissionBefore(a, b FocusEmission) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	if a.Missing != b.Missing {
		return a.Missing < b.Missing
	}
	if a.Impl != b.Impl {
		return a.Impl < b.Impl
	}
	return a.Action < b.Action
}

// MergeFocusEmissions folds per-shard emission lists into the global top k.
// Each action keeps its best-keyed emission (its home shard contributes the
// true key; other shards' duplicates carry strictly worse keys), and the
// deduplicated set sorts under the global emission order.
func MergeFocusEmissions(shards [][]FocusEmission, k int) []ScoredAction {
	if k <= 0 {
		return nil
	}
	best := make(map[core.ActionID]FocusEmission)
	for _, list := range shards {
		for _, e := range list {
			if cur, ok := best[e.Action]; !ok || emissionBefore(e, cur) {
				best[e.Action] = e
			}
		}
	}
	if len(best) == 0 {
		return nil
	}
	all := make([]FocusEmission, 0, len(best))
	for _, e := range best {
		all = append(all, e)
	}
	sort.Slice(all, func(i, j int) bool { return emissionBefore(all[i], all[j]) })
	if len(all) > k {
		all = all[:k]
	}
	out := make([]ScoredAction, len(all))
	for i, e := range all {
		out[i] = ScoredAction{Action: e.Action, Score: e.Score}
	}
	return out
}

// ---------------------------------------------------------------------------
// Breadth
// ---------------------------------------------------------------------------

// BreadthPartial is one shard's complete candidate pool with exact integer
// score partials: every comm term is integer-valued, so the full per-shard
// sum fits int64 exactly and the coordinator's fold is the same integer the
// single-node float64 accumulation represents. Breadth has no sound
// cross-node floor — a candidate's score gathers additive contributions
// from every shard, so no shard can locally bound another's total — hence
// full partials rather than top-k lists.
type BreadthPartial struct {
	Actions []core.ActionID `json:"actions"`
	Sums    []int64         `json:"sums"`
}

// ShardPartial computes the shard's exact candidate sums. |H| (the Union
// weighting's term) is the resolved global activity length, identical on
// every worker because every worker resolves against the same vocabulary.
func (b *Breadth) ShardPartial(ctx context.Context, activity []core.ActionID) (*BreadthPartial, error) {
	scored, err := b.RecommendContext(ctx, activity, -1)
	if err != nil {
		return nil, err
	}
	p := &BreadthPartial{
		Actions: make([]core.ActionID, len(scored)),
		Sums:    make([]int64, len(scored)),
	}
	for i, s := range scored {
		p.Actions[i] = s.Action
		p.Sums[i] = int64(s.Score)
	}
	return p, nil
}

// MergeBreadthPartials folds shard sums per action and ranks under the
// total order — bit-identical to the single-node integer-exact fold.
func MergeBreadthPartials(parts []*BreadthPartial, k int) []ScoredAction {
	if k == 0 {
		return nil
	}
	totals := make(map[core.ActionID]int64)
	for _, p := range parts {
		if p == nil {
			continue
		}
		for i, a := range p.Actions {
			totals[a] += p.Sums[i]
		}
	}
	if len(totals) == 0 {
		return nil
	}
	scored := make([]ScoredAction, 0, len(totals))
	for a, sum := range totals {
		scored = append(scored, ScoredAction{Action: a, Score: float64(sum)})
	}
	return TopK(scored, k)
}

// ---------------------------------------------------------------------------
// Best Match
// ---------------------------------------------------------------------------

// BestMatchSurvey is round one of the two-round Best Match scatter: the
// shard's candidate pool, goal space, and integer profile partial (parallel
// to GoalSpace). All three union/sum across shards into exactly the global
// quantities, because implementation sets partition and AG multiplicities
// are per-implementation counts.
type BestMatchSurvey struct {
	Candidates []core.ActionID `json:"candidates"`
	GoalSpace  []core.GoalID   `json:"goal_space"`
	Profile    []int64         `json:"profile"`
}

// BestMatchVectors is round two: per-candidate sparse multiplicities
// restricted to the global goal space, in CSR form — Off[i]..Off[i+1]
// delimit candidate i's (Slot, Mult) pairs, Slot indexing the coordinator's
// goal-space order. Restricting worker-locally to a *local* goal space
// would undercount goals reachable only through other shards; the global
// space comes down with the request.
type BestMatchVectors struct {
	Off  []int32 `json:"off"`
	Slot []int32 `json:"slot"`
	Mult []int64 `json:"mult"`
}

// ShardSurvey computes round one on the shard library.
func (bm *BestMatch) ShardSurvey(ctx context.Context, activity []core.ActionID) (*BestMatchSurvey, error) {
	if err := entryErr(ctx); err != nil {
		return nil, err
	}
	h := intset.FromUnsorted(intset.Clone(activity))
	out := &BestMatchSurvey{
		Candidates: bm.lib.Candidates(h),
		GoalSpace:  bm.lib.GoalSpace(h),
	}
	out.Profile = make([]int64, len(out.GoalSpace))
	slot := make(map[core.GoalID]int, len(out.GoalSpace))
	for i, g := range out.GoalSpace {
		slot[g] = i
	}
	tick := newTicker(ctx)
	for _, a := range h {
		goals, mult := bm.lib.GoalsOfAction(a)
		if err := tick.tick(len(goals)); err != nil {
			return nil, err
		}
		for i, g := range goals {
			// Every goal of AG(a), a ∈ H, is in GS(H) by construction.
			out.Profile[slot[g]] += int64(mult[i])
		}
	}
	return out, nil
}

// ShardVectors computes round two: candidates and goalSpace are the
// coordinator-merged global sets.
func (bm *BestMatch) ShardVectors(ctx context.Context, candidates []core.ActionID, goalSpace []core.GoalID) (*BestMatchVectors, error) {
	if err := entryErr(ctx); err != nil {
		return nil, err
	}
	slot := make(map[core.GoalID]int32, len(goalSpace))
	for i, g := range goalSpace {
		slot[g] = int32(i)
	}
	out := &BestMatchVectors{Off: make([]int32, 1, len(candidates)+1)}
	tick := newTicker(ctx)
	for _, a := range candidates {
		goals, mult := bm.lib.GoalsOfAction(a)
		if err := tick.tick(len(goals) + 1); err != nil {
			return nil, err
		}
		for i, g := range goals {
			if s, ok := slot[g]; ok {
				out.Slot = append(out.Slot, s)
				out.Mult = append(out.Mult, int64(mult[i]))
			}
		}
		out.Off = append(out.Off, int32(len(out.Slot)))
	}
	return out, nil
}

// MergeBestMatchSurveys unions the shard candidate pools and goal spaces
// and sums the profile partials, aligned to the merged goal space.
func MergeBestMatchSurveys(surveys []*BestMatchSurvey) (candidates []core.ActionID, goalSpace []core.GoalID, profile []int64) {
	var cands []core.ActionID
	var goals []core.GoalID
	for _, s := range surveys {
		if s == nil {
			continue
		}
		cands = append(cands, s.Candidates...)
		goals = append(goals, s.GoalSpace...)
	}
	candidates = intset.FromUnsorted(cands)
	goalSpace = intset.FromUnsorted(goals)
	profile = make([]int64, len(goalSpace))
	slot := make(map[core.GoalID]int, len(goalSpace))
	for i, g := range goalSpace {
		slot[g] = i
	}
	for _, s := range surveys {
		if s == nil {
			continue
		}
		for i, g := range s.GoalSpace {
			profile[slot[g]] += s.Profile[i]
		}
	}
	return candidates, goalSpace, profile
}

// MergeBestMatchVectors folds the shard vectors and evaluates the exact
// single-node scoring expressions. For cosine, every operand — dot, sumsq,
// the profile norm's square — is an exact integer sum, and the float
// expression matches scoreOne term for term; for other metrics the merged
// integer profile and candidate vectors feed the same vectorspace.Metric a
// single node uses. Vector lists are parallel to candidates; a nil entry in
// vectors contributes nothing (that shard had no postings for the pool).
func MergeBestMatchVectors(metric vectorspace.Metric, candidates []core.ActionID, goalSpace []core.GoalID, profile []int64, vectors []*BestMatchVectors, k int) []ScoredAction {
	if k == 0 || len(candidates) == 0 {
		return nil
	}
	if metric == vectorspace.Cosine {
		profSq := int64(0)
		for _, v := range profile {
			profSq += v * v
		}
		profNorm := math.Sqrt(float64(profSq))
		mult := make([]int64, len(goalSpace))
		touched := make([]int32, 0, 16)
		scored := make([]ScoredAction, len(candidates))
		for ci, a := range candidates {
			touched = touched[:0]
			for _, v := range vectors {
				if v == nil || ci+1 >= len(v.Off) {
					continue
				}
				for j := v.Off[ci]; j < v.Off[ci+1]; j++ {
					s := v.Slot[j]
					if mult[s] == 0 {
						touched = append(touched, s)
					}
					mult[s] += v.Mult[j]
				}
			}
			dot, sumsq := int64(0), int64(0)
			for _, s := range touched {
				m := mult[s]
				dot += m * profile[s]
				sumsq += m * m
				mult[s] = 0
			}
			sim := 0.0
			if profNorm > 0 && sumsq > 0 {
				sim = float64(dot) / (profNorm * math.Sqrt(float64(sumsq)))
			}
			scored[ci] = ScoredAction{Action: a, Score: -(1 - sim)}
		}
		return TopK(scored, k)
	}

	profCounts := make(map[int32]int, len(goalSpace))
	for i, g := range goalSpace {
		profCounts[int32(g)] = int(profile[i])
	}
	profVec := vectorspace.FromCounts(profCounts)
	mult := make([]int64, len(goalSpace))
	touched := make([]int32, 0, 16)
	scored := make([]ScoredAction, len(candidates))
	for ci, a := range candidates {
		touched = touched[:0]
		for _, v := range vectors {
			if v == nil || ci+1 >= len(v.Off) {
				continue
			}
			for j := v.Off[ci]; j < v.Off[ci+1]; j++ {
				s := v.Slot[j]
				if mult[s] == 0 {
					touched = append(touched, s)
				}
				mult[s] += v.Mult[j]
			}
		}
		counts := make(map[int32]int, len(touched))
		for _, s := range touched {
			counts[int32(goalSpace[s])] = int(mult[s])
			mult[s] = 0
		}
		vec := vectorspace.FromCounts(counts)
		scored[ci] = ScoredAction{Action: a, Score: -metric.Distance(profVec, vec)}
	}
	return TopK(scored, k)
}
