package strategy

import (
	"context"
	"errors"
	"sort"

	"goalrec/internal/core"
	"goalrec/internal/intset"
)

// ErrViewLibrary reports a CounterView scored against a strategy built over
// a different library snapshot. Counters are only meaningful against the
// postings they were accumulated from; callers advance or rebuild the view
// before scoring (see AdvanceTo).
var ErrViewLibrary = errors.New("strategy: counter view was built over a different library snapshot")

// CounterView is the kernel's accumulation phase materialized as state: for
// an activity H it holds cnt[p] = |A_p ∩ H| for every implementation of
// IS(H), plus everything the scoring phases derive per query today — |A_p|,
// the action space of IS(H) (candidate source), and the goal-space profile
// counts Σ_{a∈H} AG(a). A view is built from scratch over a library, delta-
// updated by Apply along one appended action's posting row, and carried
// across same-lineage snapshot extensions by AdvanceTo, which replays only
// the appended posting-row tails. All four strategies score a view through
// their RecommendView methods with rankings bit-identical to a from-scratch
// Recommend over the same H.
//
// All slices are parallel and id-sorted. A view is single-writer state: the
// owner serializes Apply/AdvanceTo/RecommendView calls (the per-user store
// holds one view per user under the user's lock).
type CounterView struct {
	lib *core.Library

	h []core.ActionID // sorted distinct activity, including unknown-to-library ids

	impls []core.ImplID // sorted IS(h)
	cnt   []int32       // cnt[i] = |A_impls[i] ∩ h|
	lens  []int32       // lens[i] = |A_impls[i]|

	acts []core.ActionID // sorted ∪_{p ∈ IS(h)} A_p; candidates = acts − h
	goal []core.GoalID   // sorted GS(h)
	gcnt []int32         // profile counts per goal, aligned with goal

	// Reused merge scratch, never aliased by results.
	rowBuf  []core.ImplID
	newBuf  []core.ImplID
	actBuf  []core.ActionID
	actAlt  []core.ActionID
	goalBuf []core.GoalID
}

// NewCounterView builds a view of activity over lib by applying each
// distinct action's posting row. Unknown-to-library ids are kept in H (they
// count toward |H| exactly as the from-scratch kernel counts them) but
// contribute no postings.
func NewCounterView(lib *core.Library, activity []core.ActionID) *CounterView {
	v := &CounterView{}
	v.Rebuild(lib, activity)
	return v
}

// Rebuild resets the view in place (keeping its allocations) and rebuilds it
// over lib from activity — the swap-invalidation path for views whose
// library changed lineage.
func (v *CounterView) Rebuild(lib *core.Library, activity []core.ActionID) {
	v.lib = lib
	v.h = v.h[:0]
	v.impls = v.impls[:0]
	v.cnt = v.cnt[:0]
	v.lens = v.lens[:0]
	v.acts = v.acts[:0]
	v.goal = v.goal[:0]
	v.gcnt = v.gcnt[:0]
	for _, a := range activity {
		v.Apply(a)
	}
}

// Lib returns the library snapshot the counters are valid against.
func (v *CounterView) Lib() *core.Library { return v.lib }

// Activity returns the view's sorted distinct activity H. The slice is the
// view's own state and must not be modified.
func (v *CounterView) Activity() []core.ActionID { return v.h }

// Len returns |H|.
func (v *CounterView) Len() int { return len(v.h) }

// Candidates appends the candidate actions — the action space of IS(H)
// minus H, exactly core.Library.Candidates — to dst and returns it.
func (v *CounterView) Candidates(dst []core.ActionID) []core.ActionID {
	return intset.Difference(dst, v.acts, v.h)
}

// Footprint returns the view's approximate heap size in bytes, used by the
// user store's materialization accounting.
func (v *CounterView) Footprint() int {
	return 4*(len(v.h)+len(v.acts)+len(v.goal)) +
		8*len(v.impls) + 4*(len(v.cnt)+len(v.lens)+len(v.gcnt)) +
		4*cap(v.rowBuf) + 4*cap(v.newBuf) + 4*(cap(v.actBuf)+cap(v.actAlt)+cap(v.goalBuf))
}

// Apply adds action a to H and delta-updates every derived array along a's
// posting and AG rows: cnt along IS(a), first-touch implementations extend
// impls/lens and union their action sets into acts, and AG(a) folds into the
// goal profile. It returns false when a is already in H (duplicate appends
// are no-ops, matching the set semantics of the from-scratch kernel). Cost
// is O(|IS(a)| + |IS(h)| + |AG(a)|) merge steps — one posting-row walk, no
// rescan of H's other rows.
func (v *CounterView) Apply(a core.ActionID) bool {
	i := sort.Search(len(v.h), func(i int) bool { return v.h[i] >= a })
	if i < len(v.h) && v.h[i] == a {
		return false
	}
	v.h = append(v.h, 0)
	copy(v.h[i+1:], v.h[i:])
	v.h[i] = a

	if a < 0 || int(a) >= v.lib.NumActions() {
		// Unknown to the library: in H (it counts toward |H|) but rowless.
		return true
	}
	row, buf := v.lib.PostingRow(a, v.rowBuf)
	v.mergeRow(row)
	v.rowBuf = buf
	goals, mult := v.lib.GoalsOfAction(a)
	v.mergeGoals(goals, mult)
	return true
}

// mergeRow folds one sorted posting row into impls/cnt/lens and unions the
// first-touch implementations' action sets into acts.
func (v *CounterView) mergeRow(row []core.ImplID) {
	if len(row) == 0 {
		return
	}
	// First pass: bump existing counters, collect first-touch ids.
	fresh := v.newBuf[:0]
	i := 0
	for _, p := range row {
		for i < len(v.impls) && v.impls[i] < p {
			i++
		}
		if i < len(v.impls) && v.impls[i] == p {
			v.cnt[i]++
			i++
			continue
		}
		fresh = append(fresh, p)
	}
	v.newBuf = fresh
	if len(fresh) == 0 {
		return
	}
	// Backward merge the first-touch ids into the parallel arrays.
	n := len(v.impls)
	v.impls = append(v.impls, fresh...)
	v.cnt = extend32(v.cnt, len(fresh))
	v.lens = extend32(v.lens, len(fresh))
	for w, i, j := len(v.impls)-1, n-1, len(fresh)-1; j >= 0; w-- {
		if i >= 0 && v.impls[i] > fresh[j] {
			v.impls[w] = v.impls[i]
			v.cnt[w] = v.cnt[i]
			v.lens[w] = v.lens[i]
			i--
			continue
		}
		p := fresh[j]
		v.impls[w] = p
		v.cnt[w] = 1
		v.lens[w] = int32(v.lib.ImplLen(p))
		j--
	}
	v.mergeActsOf(fresh)
}

// mergeActsOf unions the action sets of the given first-touch
// implementations into acts.
func (v *CounterView) mergeActsOf(fresh []core.ImplID) {
	na := v.actBuf[:0]
	for _, p := range fresh {
		na = append(na, v.lib.Actions(p)...)
	}
	if len(na) == 0 {
		v.actBuf = na
		return
	}
	na = intset.FromUnsorted(na)
	v.actBuf = na
	v.actAlt = intset.Union(v.actAlt[:0], v.acts, na)
	v.acts, v.actAlt = v.actAlt, v.acts
}

// mergeGoals folds one sorted (goal, count) row into the profile.
func (v *CounterView) mergeGoals(goals []core.GoalID, mult []int32) {
	if len(goals) == 0 {
		return
	}
	// Count the goals not yet in the profile, then backward-merge.
	freshCnt := 0
	i := 0
	for _, g := range goals {
		for i < len(v.goal) && v.goal[i] < g {
			i++
		}
		if i < len(v.goal) && v.goal[i] == g {
			i++
			continue
		}
		freshCnt++
	}
	n := len(v.goal)
	for i := 0; i < freshCnt; i++ {
		v.goal = append(v.goal, 0)
	}
	v.gcnt = extend32(v.gcnt, freshCnt)
	// Once goals is consumed the untouched prefix is already in place.
	for w, i, j := len(v.goal)-1, n-1, len(goals)-1; j >= 0; w-- {
		if i >= 0 && v.goal[i] > goals[j] {
			v.goal[w] = v.goal[i]
			v.gcnt[w] = v.gcnt[i]
			i--
			continue
		}
		if i >= 0 && v.goal[i] == goals[j] {
			v.goal[w] = v.goal[i]
			v.gcnt[w] = v.gcnt[i] + mult[j]
			i--
			j--
			continue
		}
		v.goal[w] = goals[j]
		v.gcnt[w] = mult[j]
		j--
	}
}

// extend32 appends n zero entries without a temporary slice.
func extend32(s []int32, n int) []int32 {
	for i := 0; i < n; i++ {
		s = append(s, 0)
	}
	return s
}

// AdvanceTo carries the view from its current snapshot to newLib, which must
// be a same-lineage extension (DynamicLibrary snapshots append: every posting
// row of newLib is the old row plus strictly larger implementation ids, and
// implementation action sets are immutable). Only the appended row tails
// [oldN, newN) of H's actions are replayed — cost proportional to the delta,
// not to |IS(H)|. Crossing a Swap (new lineage, ids reassigned) requires
// Rebuild instead; the engine layer tracks lineage and chooses.
func (v *CounterView) AdvanceTo(newLib *core.Library) {
	if newLib == v.lib {
		return
	}
	oldN := core.ImplID(v.lib.NumImplementations())
	newN := core.ImplID(newLib.NumImplementations())
	v.lib = newLib
	if newN <= oldN {
		// Same implementation content (an epoch-only republish).
		return
	}
	delta := v.newBuf[:0]
	for _, a := range v.h {
		if a < 0 || int(a) >= newLib.NumActions() {
			continue
		}
		row, buf := newLib.PostingRowRange(a, oldN, newN, v.rowBuf)
		delta = append(delta, row...)
		v.rowBuf = buf
	}
	v.newBuf = delta
	if len(delta) == 0 {
		return
	}
	// Each delta posting is one (action, implementation) incidence: it
	// contributes 1 to cnt[p] and 1 to the profile count of Goal(p).
	gs := v.goalBuf[:0]
	for _, p := range delta {
		gs = append(gs, newLib.Goal(p))
	}
	v.goalBuf = gs
	sort.Slice(gs, func(i, j int) bool { return gs[i] < gs[j] })
	var (
		gd []core.GoalID
		gm []int32
	)
	for i := 0; i < len(gs); {
		j := i
		for j < len(gs) && gs[j] == gs[i] {
			j++
		}
		gd = append(gd, gs[i])
		gm = append(gm, int32(j-i))
		i = j
	}
	v.mergeGoals(gd, gm)

	sort.Slice(delta, func(i, j int) bool { return delta[i] < delta[j] })
	// Every delta id is ≥ oldN, strictly above every materialized id, so the
	// merge is a pure append in run-length order.
	firstTouch := len(v.impls)
	for i := 0; i < len(delta); {
		j := i
		for j < len(delta) && delta[j] == delta[i] {
			j++
		}
		p := delta[i]
		v.impls = append(v.impls, p)
		v.cnt = append(v.cnt, int32(j-i))
		v.lens = append(v.lens, int32(newLib.ImplLen(p)))
		i = j
	}
	v.mergeActsOf(v.impls[firstTouch:])
}

// ViewRecommender is implemented by strategies that score a materialized
// CounterView directly — the scoring phase alone, no accumulation pass.
// Views always score exact: the bound-driven pruned scans apply only to
// from-scratch builds, where the bounds are derived during accumulation.
type ViewRecommender interface {
	Recommender
	RecommendView(ctx context.Context, v *CounterView, k int) ([]ScoredAction, error)
}

// RecommendView scores a materialized view through rec. Cache wrappers are
// unwrapped (a view query bypasses the activity-keyed cache — the view IS
// the cache); recommenders without a view path fall back to a from-scratch
// RecommendContext over the view's activity, which is bit-identical by the
// view invariants.
func RecommendView(ctx context.Context, rec Recommender, v *CounterView, k int) ([]ScoredAction, error) {
	if c, ok := rec.(*Cached); ok {
		rec = c.Underlying()
	}
	if vr, ok := rec.(ViewRecommender); ok {
		return vr.RecommendView(ctx, v, k)
	}
	return RecommendContext(ctx, rec, v.Activity(), k)
}
