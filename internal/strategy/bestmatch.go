package strategy

import (
	"math"
	"sync"

	"goalrec/internal/core"
	"goalrec/internal/intset"
	"goalrec/internal/vectorspace"
)

// BestMatch is the paper's Algorithms 3 and 4 (Section 5.3): it builds a
// goal-based user profile — for every goal of the goal space GS(H), how many
// (action, implementation) pairs of the user activity contribute to it
// (Equations 8 and 9) — represents every candidate action as a vector in the
// same feature space F_GS(H), and ranks candidates by ascending distance to
// the profile (Equation 10).
//
// The default cosine metric runs on a dense, pooled scratch representation
// (one incremental pass over each candidate's implementation space, no
// per-candidate allocation); the alternative metrics use the sparse
// vectorspace path.
type BestMatch struct {
	lib    *core.Library
	metric vectorspace.Metric
	pool   sync.Pool // *bmScratch
}

// bmScratch carries the per-query dense buffers. Goal membership uses
// version stamping so the numGoals-sized arrays never need clearing.
type bmScratch struct {
	mark      []uint32  // mark[g] == version ⇔ g ∈ GS(H)
	slot      []int32   // dense index of g within the goal space
	version   uint32    //
	profile   []float64 // profile counts per goal-space slot
	candCount []float64 // candidate counts per goal-space slot
	touched   []int32   // slots touched by the current candidate
}

// NewBestMatch returns a Best Match strategy over lib using the cosine
// distance, the conventional choice for sparse count profiles.
func NewBestMatch(lib *core.Library) *BestMatch {
	return NewBestMatchMetric(lib, vectorspace.Cosine)
}

// NewBestMatchMetric returns a Best Match strategy with an explicit distance
// metric, used by the ablation benchmarks.
func NewBestMatchMetric(lib *core.Library, m vectorspace.Metric) *BestMatch {
	bm := &BestMatch{lib: lib, metric: m}
	bm.pool.New = func() interface{} {
		return &bmScratch{
			mark: make([]uint32, lib.NumGoals()),
			slot: make([]int32, lib.NumGoals()),
		}
	}
	return bm
}

// Name implements Recommender.
func (bm *BestMatch) Name() string {
	if bm.metric == vectorspace.Cosine {
		return "best-match"
	}
	return "best-match-" + bm.metric.String()
}

// Profile builds the goal-based user profile H⃗ of Algorithm 3
// (Get-Goal-Based-Profile): the aggregated goal-contribution vector of every
// action in the activity, in the feature space spanned by GS(activity).
func (bm *BestMatch) Profile(activity []core.ActionID) vectorspace.Vector {
	h := intset.FromUnsorted(intset.Clone(activity))
	counts := make(map[int32]int)
	for _, a := range h {
		for _, p := range bm.lib.ImplsOfAction(a) {
			counts[int32(bm.lib.Goal(p))]++
		}
	}
	return vectorspace.FromCounts(counts)
}

// actionVector represents candidate action a in F_GS(H) (Equation 8): for
// every goal of the user goal space, the number of implementations through
// which a contributes to it. goalSpace must be sorted.
func (bm *BestMatch) actionVector(a core.ActionID, goalSpace []core.GoalID) vectorspace.Vector {
	counts := make(map[int32]int)
	for _, p := range bm.lib.ImplsOfAction(a) {
		g := bm.lib.Goal(p)
		if intset.Contains(goalSpace, g) {
			counts[int32(g)]++
		}
	}
	return vectorspace.FromCounts(counts)
}

// Recommend implements Recommender (Algorithm 4, Best Match Ranking). The
// returned Score is the negated distance, so higher still means better.
func (bm *BestMatch) Recommend(activity []core.ActionID, k int) []ScoredAction {
	if k == 0 {
		return nil
	}
	h := intset.FromUnsorted(intset.Clone(activity))
	candidates := bm.lib.Candidates(h)
	if len(candidates) == 0 {
		return nil
	}
	goalSpace := bm.lib.GoalSpace(h)

	var scored []ScoredAction
	if bm.metric == vectorspace.Cosine {
		scored = bm.recommendCosine(h, candidates, goalSpace)
	} else {
		profile := bm.Profile(h)
		scored = make([]ScoredAction, 0, len(candidates))
		for _, a := range candidates {
			vec := bm.actionVector(a, goalSpace)
			d := bm.metric.Distance(profile, vec)
			scored = append(scored, ScoredAction{Action: a, Score: -d})
		}
	}
	return TopK(scored, k)
}

// recommendCosine is the allocation-free fast path: it scores every
// candidate by 1 − cos(H⃗, a⃗) using incremental dot/norm maintenance over a
// pooled dense scratch.
func (bm *BestMatch) recommendCosine(h, candidates []core.ActionID, goalSpace []core.GoalID) []ScoredAction {
	s := bm.pool.Get().(*bmScratch)
	defer bm.pool.Put(s)

	// Stamp the goal space; version 0 is never valid after the first wrap,
	// so bump twice on wraparound.
	s.version++
	if s.version == 0 {
		for i := range s.mark {
			s.mark[i] = 0
		}
		s.version = 1
	}
	if cap(s.profile) < len(goalSpace) {
		s.profile = make([]float64, len(goalSpace))
		s.candCount = make([]float64, len(goalSpace))
	}
	s.profile = s.profile[:len(goalSpace)]
	s.candCount = s.candCount[:len(goalSpace)]
	for i := range s.profile {
		s.profile[i] = 0
		s.candCount[i] = 0
	}
	for i, g := range goalSpace {
		s.mark[g] = s.version
		s.slot[g] = int32(i)
	}

	// Dense profile (Equation 9): every (action ∈ H, implementation) pair
	// adds one to its goal's slot. Goals of IS(H) are in GS(H) by
	// construction.
	for _, a := range h {
		for _, p := range bm.lib.ImplsOfAction(a) {
			s.profile[s.slot[bm.lib.Goal(p)]]++
		}
	}
	profNorm := 0.0
	for _, v := range s.profile {
		profNorm += v * v
	}
	profNorm = math.Sqrt(profNorm)

	scored := make([]ScoredAction, 0, len(candidates))
	for _, a := range candidates {
		dot, sumsq := 0.0, 0.0
		s.touched = s.touched[:0]
		for _, p := range bm.lib.ImplsOfAction(a) {
			g := bm.lib.Goal(p)
			if s.mark[g] != s.version {
				continue // contributes to a goal outside F_GS(H)
			}
			i := s.slot[g]
			c := s.candCount[i]
			if c == 0 {
				s.touched = append(s.touched, i)
			}
			// count c → c+1: dot gains profile[i], |a⃗|² gains 2c+1.
			dot += s.profile[i]
			sumsq += 2*c + 1
			s.candCount[i] = c + 1
		}
		sim := 0.0
		if profNorm > 0 && sumsq > 0 {
			sim = dot / (profNorm * math.Sqrt(sumsq))
		}
		scored = append(scored, ScoredAction{Action: a, Score: -(1 - sim)})
		for _, i := range s.touched {
			s.candCount[i] = 0
		}
	}
	return scored
}
