package strategy

import (
	"context"
	"math"
	"runtime"
	"sync"

	"goalrec/internal/core"
	"goalrec/internal/intset"
	"goalrec/internal/vectorspace"
)

// BestMatch is the paper's Algorithms 3 and 4 (Section 5.3): it builds a
// goal-based user profile — for every goal of the goal space GS(H), how many
// (action, implementation) pairs of the user activity contribute to it
// (Equations 8 and 9) — represents every candidate action as a vector in the
// same feature space F_GS(H), and ranks candidates by ascending distance to
// the profile (Equation 10).
//
// The default cosine metric runs on a dense, pooled scratch representation
// with two interchangeable scoring paths over the AG-idx (see DESIGN.md):
//
//   - candidate-major: each candidate walks its distinct-goal list — the
//     classical loop, shrunk from O(|IS(a)|) postings with random GI-G
//     lookups to a sequential O(|AG(a)|) scan, and sharded across a bounded
//     worker pool for large candidate pools;
//   - goal-major: one pass over the GA-idx rows of GS(H) (goal → distinct
//     actions with multiplicities) accumulates every candidate's dot product
//     and norm simultaneously, costing O(Σ_{g∈GS(H)} |AG⁻¹(g)|) regardless
//     of connectivity or the implementation-id layout.
//
// Both paths accumulate the same integer-valued sums in float64, so they are
// bit-identical; the cheaper one is chosen per query from exact index-derived
// cost estimates. The alternative metrics use the sparse vectorspace path.
type BestMatch struct {
	lib    *core.Library
	metric vectorspace.Metric
	pool   sync.Pool // *bmScratch

	// Tuning knobs, fixed after construction (tests override them to pin
	// each path; the zero values select the production defaults).
	mode       bmMode
	maxWorkers int // ≤ 0 selects GOMAXPROCS
	shardMin   int // minimum candidate pool to shard; ≤ 0 selects default
	pruning    bool
	stats      *PruneStats
}

// bmMode selects the cosine scoring path.
type bmMode int

const (
	bmAuto bmMode = iota // pick per query from cost estimates
	bmCandidateMajor
	bmGoalMajor
	bmPostings // legacy pre-AG-idx loop, kept for tests and benchmarks
)

// bmShardMinCandidates is the default candidate pool size below which
// sharding a single query is not worth the goroutine overhead.
const bmShardMinCandidates = 2048

// bmScratch carries the per-query dense buffers. Goal membership uses
// version stamping so the numGoals-sized arrays never need clearing.
type bmScratch struct {
	mark    []uint32  // mark[g] == version ⇔ g ∈ GS(H)
	slot    []int32   // dense index of g within the goal space
	version uint32    //
	profile []float64 // profile counts per goal-space slot

	// Goal-major accumulators, indexed by action id and allocated on first
	// goal-major query. dot and sumsq are zeroed between queries via
	// actTouched.
	dot        []float64
	sumsq      []float64
	actTouched []core.ActionID

	// Legacy candidate-major postings-path buffers.
	candCount   []float64 // candidate counts per goal-space slot
	slotTouched []int32   // slots touched by the current candidate

	// Pruned-path buffers: descending prefix sums of the squared profile and
	// the degree-ordered candidate list.
	prefix []float64
	ord    []bmCand
}

// NewBestMatch returns a Best Match strategy over lib using the cosine
// distance, the conventional choice for sparse count profiles.
func NewBestMatch(lib *core.Library) *BestMatch {
	return NewBestMatchMetric(lib, vectorspace.Cosine)
}

// NewBestMatchMetric returns a Best Match strategy with an explicit distance
// metric, used by the ablation benchmarks.
func NewBestMatchMetric(lib *core.Library, m vectorspace.Metric) *BestMatch {
	bm := &BestMatch{lib: lib, metric: m}
	bm.pool.New = func() interface{} {
		return &bmScratch{
			mark: make([]uint32, lib.NumGoals()),
			slot: make([]int32, lib.NumGoals()),
		}
	}
	return bm
}

// Name implements Recommender.
func (bm *BestMatch) Name() string {
	if bm.metric == vectorspace.Cosine {
		return "best-match"
	}
	return "best-match-" + bm.metric.String()
}

// Profile builds the goal-based user profile H⃗ of Algorithm 3
// (Get-Goal-Based-Profile): the aggregated goal-contribution vector of every
// action in the activity, in the feature space spanned by GS(activity).
func (bm *BestMatch) Profile(activity []core.ActionID) vectorspace.Vector {
	h := intset.FromUnsorted(intset.Clone(activity))
	counts := make(map[int32]int)
	for _, a := range h {
		goals, mult := bm.lib.GoalsOfAction(a)
		for i, g := range goals {
			counts[int32(g)] += int(mult[i])
		}
	}
	return vectorspace.FromCounts(counts)
}

// actionVector represents candidate action a in F_GS(H) (Equation 8): for
// every goal of the user goal space, the number of implementations through
// which a contributes to it. goalSpace must be sorted.
func (bm *BestMatch) actionVector(a core.ActionID, goalSpace []core.GoalID) vectorspace.Vector {
	counts := make(map[int32]int)
	goals, mult := bm.lib.GoalsOfAction(a)
	for i, g := range goals {
		if intset.Contains(goalSpace, g) {
			counts[int32(g)] = int(mult[i])
		}
	}
	return vectorspace.FromCounts(counts)
}

// Recommend implements Recommender (Algorithm 4, Best Match Ranking). The
// returned Score is the negated distance, so higher still means better.
func (bm *BestMatch) Recommend(activity []core.ActionID, k int) []ScoredAction {
	out, _ := bm.RecommendContext(context.Background(), activity, k)
	return out
}

// RecommendContext implements ContextRecommender: every scoring path —
// candidate-major (serial and sharded), goal-major, the legacy postings
// walk, and the sparse non-cosine loop — polls ctx at coarse checkpoints. A
// canceled query returns nil: Best Match ranks by distance over the full
// candidate pool, so a partial scoring is not a valid prefix.
func (bm *BestMatch) RecommendContext(ctx context.Context, activity []core.ActionID, k int) ([]ScoredAction, error) {
	if err := entryErr(ctx); err != nil {
		return nil, err
	}
	if k == 0 {
		return nil, nil
	}
	h := intset.FromUnsorted(intset.Clone(activity))
	candidates := bm.lib.Candidates(h)
	if len(candidates) == 0 {
		return nil, nil
	}
	goalSpace := bm.lib.GoalSpace(h)

	var (
		scored []ScoredAction
		err    error
	)
	if bm.metric == vectorspace.Cosine {
		scored, err = bm.recommendCosine(ctx, h, candidates, goalSpace, k)
	} else {
		tick := newTicker(ctx)
		profile := bm.Profile(h)
		scored = make([]ScoredAction, 0, len(candidates))
		for _, a := range candidates {
			if err = tick.tick(1); err != nil {
				return nil, err
			}
			vec := bm.actionVector(a, goalSpace)
			d := bm.metric.Distance(profile, vec)
			scored = append(scored, ScoredAction{Action: a, Score: -d})
		}
	}
	if err != nil {
		return nil, err
	}
	return TopK(scored, k), nil
}

// recommendCosine is the allocation-light fast path: it stamps the goal
// space, builds the dense profile from the AG-idx, then scores every
// candidate through whichever scoring path the per-query cost estimates
// favor.
func (bm *BestMatch) recommendCosine(ctx context.Context, h, candidates []core.ActionID, goalSpace []core.GoalID, k int) ([]ScoredAction, error) {
	s := bm.pool.Get().(*bmScratch)
	defer bm.pool.Put(s)
	s.stamp(goalSpace)

	// Dense profile (Equation 9): action a of H adds its per-goal
	// implementation multiplicities. Every goal of AG(a) is in GS(H) by
	// construction.
	for _, a := range h {
		goals, mult := bm.lib.GoalsOfAction(a)
		for i, g := range goals {
			s.profile[s.slot[g]] += float64(mult[i])
		}
	}
	profNorm := s.profileNorm()

	mode := bm.pickMode(candidates, goalSpace)
	// The pruned walk replaces candidate-major scoring when a bounded top-k
	// is wanted and the bound preparation (profile sort) is proportionate.
	// Its output is the exact top k under the total order, which the caller's
	// TopK pass leaves untouched.
	if bm.pruning && k > 0 && k < len(candidates) && mode == bmCandidateMajor &&
		profNorm > 0 && len(goalSpace) <= bmPruneMaxGoalSpace {
		return bm.scoreCosinePruned(ctx, s, candidates, profNorm, k)
	}
	switch mode {
	case bmGoalMajor:
		return bm.scoreGoalMajor(ctx, s, candidates, goalSpace, profNorm)
	case bmPostings:
		return bm.scorePostings(ctx, s, candidates, profNorm)
	default:
		return bm.scoreCandidateMajor(ctx, s, candidates, profNorm)
	}
}

// stamp marks goalSpace as the current goal space and zeroes the per-slot
// profile and candidate-count accumulators. Version 0 is never valid after
// the first wrap, so the version bumps twice on wraparound.
func (s *bmScratch) stamp(goalSpace []core.GoalID) {
	s.version++
	if s.version == 0 {
		for i := range s.mark {
			s.mark[i] = 0
		}
		s.version = 1
	}
	if cap(s.profile) < len(goalSpace) {
		s.profile = make([]float64, len(goalSpace))
		s.candCount = make([]float64, len(goalSpace))
	}
	s.profile = s.profile[:len(goalSpace)]
	s.candCount = s.candCount[:len(goalSpace)]
	for i := range s.profile {
		s.profile[i] = 0
		s.candCount[i] = 0
	}
	for i, g := range goalSpace {
		s.mark[g] = s.version
		s.slot[g] = int32(i)
	}
}

// profileNorm returns ‖H⃗‖ from the stamped profile. The squares sum in
// slot (goal-ascending) order on every path, so the norm is bit-identical
// between from-scratch and view scoring.
func (s *bmScratch) profileNorm() float64 {
	n := 0.0
	for _, v := range s.profile {
		n += v * v
	}
	return math.Sqrt(n)
}

// RecommendView implements ViewRecommender: candidates, goal space, and the
// dense profile all come from the view's materialized state — no posting or
// AG-row accumulation — and flow into the same scoring paths as a
// from-scratch query. Views score exact (the pruned candidate walk applies
// only to from-scratch builds); rankings are bit-identical to
// RecommendContext over the view's activity.
func (bm *BestMatch) RecommendView(ctx context.Context, v *CounterView, k int) ([]ScoredAction, error) {
	if err := entryErr(ctx); err != nil {
		return nil, err
	}
	if v.lib != bm.lib {
		return nil, ErrViewLibrary
	}
	if k == 0 {
		return nil, nil
	}
	candidates := v.Candidates(nil)
	if len(candidates) == 0 {
		return nil, nil
	}
	goalSpace := v.goal

	var (
		scored []ScoredAction
		err    error
	)
	if bm.metric == vectorspace.Cosine {
		scored, err = bm.recommendCosineView(ctx, v, candidates, goalSpace)
	} else {
		tick := newTicker(ctx)
		counts := make(map[int32]int, len(goalSpace))
		for i, g := range goalSpace {
			counts[int32(g)] = int(v.gcnt[i])
		}
		profile := vectorspace.FromCounts(counts)
		scored = make([]ScoredAction, 0, len(candidates))
		for _, a := range candidates {
			if err = tick.tick(1); err != nil {
				return nil, err
			}
			vec := bm.actionVector(a, goalSpace)
			d := bm.metric.Distance(profile, vec)
			scored = append(scored, ScoredAction{Action: a, Score: -d})
		}
	}
	if err != nil {
		return nil, err
	}
	return TopK(scored, k), nil
}

// recommendCosineView mirrors recommendCosine with the profile gathered from
// the view's goal counters instead of an AG-row pass over H.
func (bm *BestMatch) recommendCosineView(ctx context.Context, v *CounterView, candidates []core.ActionID, goalSpace []core.GoalID) ([]ScoredAction, error) {
	s := bm.pool.Get().(*bmScratch)
	defer bm.pool.Put(s)
	s.stamp(goalSpace)
	for i := range goalSpace {
		s.profile[i] = float64(v.gcnt[i])
	}
	profNorm := s.profileNorm()

	switch bm.pickMode(candidates, goalSpace) {
	case bmGoalMajor:
		return bm.scoreGoalMajor(ctx, s, candidates, goalSpace, profNorm)
	case bmPostings:
		return bm.scorePostings(ctx, s, candidates, profNorm)
	default:
		return bm.scoreCandidateMajor(ctx, s, candidates, profNorm)
	}
}

// pickMode resolves the scoring path for one query. In auto mode it compares
// the exact slot counts each path will visit: candidate-major walks every
// candidate's AG row, goal-major walks every GA row of the goal space (with
// roughly twice the per-slot work for the scatter-write bookkeeping).
func (bm *BestMatch) pickMode(candidates []core.ActionID, goalSpace []core.GoalID) bmMode {
	if bm.mode != bmAuto {
		return bm.mode
	}
	candCost := 0
	for _, a := range candidates {
		candCost += bm.lib.GoalDegree(a)
	}
	goalCost := 0
	for _, g := range goalSpace {
		goalCost += bm.lib.GoalActionCount(g)
	}
	if 2*goalCost <= candCost {
		return bmGoalMajor
	}
	return bmCandidateMajor
}

// scoreCandidateMajor scores each candidate by a sequential scan of its
// AG-idx row: dot and ‖a⃗‖² come from the (goal, multiplicity) pairs that
// fall inside the stamped goal space. For large pools the loop is sharded
// across a bounded worker pool; the scratch is read-only during scoring and
// every worker writes a disjoint range of scored, so the merge is a no-op
// and the result is deterministic. Each worker polls ctx with its own
// checkpoint counter and the first cancellation aborts the whole query.
func (bm *BestMatch) scoreCandidateMajor(ctx context.Context, s *bmScratch, candidates []core.ActionID, profNorm float64) ([]ScoredAction, error) {
	scored := make([]ScoredAction, len(candidates))
	shardMin := bm.shardMin
	if shardMin <= 0 {
		shardMin = bmShardMinCandidates
	}
	workers := bm.maxWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if len(candidates) < shardMin || workers < 2 {
		tick := newTicker(ctx)
		for i, a := range candidates {
			if err := tick.tick(1); err != nil {
				return nil, err
			}
			scored[i] = bm.scoreOne(s, a, profNorm)
		}
		return scored, nil
	}
	chunk := (len(candidates) + workers - 1) / workers
	shards := (len(candidates) + chunk - 1) / chunk
	errs := make([]error, shards)
	var wg sync.WaitGroup
	for shard, lo := 0, 0; lo < len(candidates); shard, lo = shard+1, lo+chunk {
		hi := lo + chunk
		if hi > len(candidates) {
			hi = len(candidates)
		}
		wg.Add(1)
		go func(shard, lo, hi int) {
			defer wg.Done()
			tick := newTicker(ctx)
			for i := lo; i < hi; i++ {
				if err := tick.tick(1); err != nil {
					errs[shard] = err
					return
				}
				scored[i] = bm.scoreOne(s, candidates[i], profNorm)
			}
		}(shard, lo, hi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return scored, nil
}

// scoreOne computes one candidate's negated cosine distance from the stamped
// scratch. It only reads the scratch, so concurrent calls are safe.
func (bm *BestMatch) scoreOne(s *bmScratch, a core.ActionID, profNorm float64) ScoredAction {
	goals, mult := bm.lib.GoalsOfAction(a)
	dot, sumsq := 0.0, 0.0
	for i, g := range goals {
		if s.mark[g] != s.version {
			continue // contributes to a goal outside F_GS(H)
		}
		c := float64(mult[i])
		dot += c * s.profile[s.slot[g]]
		sumsq += c * c
	}
	sim := 0.0
	if profNorm > 0 && sumsq > 0 {
		sim = dot / (profNorm * math.Sqrt(sumsq))
	}
	return ScoredAction{Action: a, Score: -(1 - sim)}
}

// scoreGoalMajor scores every candidate at once by walking the goal space's
// GA-idx rows: goal g's row pairs each distinct action a with its
// multiplicity m (implementations of g containing a), adding m·profile[g]
// to a's dot product and m² to ‖a⃗‖². Work is Σ_{g∈GS(H)} |distinct
// actions of g| over contiguous rows — independent of connectivity and of
// the implementation-id layout (no per-implementation dereferences, so
// impact ordering cannot scatter this walk). Every accumulated term is the
// same integer-valued float the candidate-major path multiplies, summed
// exactly below 2^53, so the scores are bit-identical to scoreOne.
func (bm *BestMatch) scoreGoalMajor(ctx context.Context, s *bmScratch, candidates []core.ActionID, goalSpace []core.GoalID, profNorm float64) ([]ScoredAction, error) {
	if s.dot == nil {
		n := bm.lib.NumActions()
		s.dot = make([]float64, n)
		s.sumsq = make([]float64, n)
	}
	s.actTouched = s.actTouched[:0]
	tick := newTicker(ctx)
	var tickErr error
	for i, g := range goalSpace {
		pg := s.profile[i]
		acts, mult := bm.lib.ActionsOfGoal(g)
		if tickErr = tick.tick(len(acts)); tickErr != nil {
			break
		}
		for j, a := range acts {
			m := float64(mult[j])
			if s.sumsq[a] == 0 {
				s.actTouched = append(s.actTouched, a)
			}
			s.dot[a] += m * pg
			s.sumsq[a] += m * m
		}
	}
	if tickErr != nil {
		// Return the pooled accumulators clean before aborting.
		for _, a := range s.actTouched {
			s.dot[a] = 0
			s.sumsq[a] = 0
		}
		return nil, tickErr
	}
	scored := make([]ScoredAction, len(candidates))
	for i, a := range candidates {
		sim := 0.0
		if sumsq := s.sumsq[a]; profNorm > 0 && sumsq > 0 {
			sim = s.dot[a] / (profNorm * math.Sqrt(sumsq))
		}
		scored[i] = ScoredAction{Action: a, Score: -(1 - sim)}
	}
	for _, a := range s.actTouched {
		s.dot[a] = 0
		s.sumsq[a] = 0
	}
	return scored, nil
}

// scorePostings is the pre-AG-idx candidate loop — every candidate walks its
// full A-GI posting list with a random GI-G lookup per posting. Kept as the
// reference implementation for equivalence tests and old-vs-new benchmarks.
// The context is polled at candidate boundaries, where the per-candidate
// candCount scratch is already cleared.
func (bm *BestMatch) scorePostings(ctx context.Context, s *bmScratch, candidates []core.ActionID, profNorm float64) ([]ScoredAction, error) {
	tick := newTicker(ctx)
	scored := make([]ScoredAction, 0, len(candidates))
	for _, a := range candidates {
		if err := tick.tick(1); err != nil {
			return nil, err
		}
		dot, sumsq := 0.0, 0.0
		s.slotTouched = s.slotTouched[:0]
		for _, p := range bm.lib.ImplsOfAction(a) {
			g := bm.lib.Goal(p)
			if s.mark[g] != s.version {
				continue // contributes to a goal outside F_GS(H)
			}
			i := s.slot[g]
			c := s.candCount[i]
			if c == 0 {
				s.slotTouched = append(s.slotTouched, i)
			}
			// count c → c+1: dot gains profile[i], |a⃗|² gains 2c+1.
			dot += s.profile[i]
			sumsq += 2*c + 1
			s.candCount[i] = c + 1
		}
		sim := 0.0
		if profNorm > 0 && sumsq > 0 {
			sim = dot / (profNorm * math.Sqrt(sumsq))
		}
		scored = append(scored, ScoredAction{Action: a, Score: -(1 - sim)})
		for _, i := range s.slotTouched {
			s.candCount[i] = 0
		}
	}
	return scored, nil
}
