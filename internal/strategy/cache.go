package strategy

import (
	"container/list"
	"context"
	"fmt"
	"strings"
	"sync"

	"goalrec/internal/core"
	"goalrec/internal/intset"
)

// Cached wraps a Recommender with a bounded LRU cache keyed by the
// normalized (activity, k) pair. Recommendation queries in serving workloads
// repeat heavily (the same cart, the same wardrobe), and every strategy is
// deterministic over an immutable library, so caching is sound. The wrapper
// is safe for concurrent use.
type Cached struct {
	inner Recommender
	cap   int

	mu  sync.Mutex
	lru *list.List // of *cacheEntry, front = most recent
	byK map[string]*list.Element

	hits, misses uint64
}

type cacheEntry struct {
	key  string
	list []ScoredAction
}

// NewCached wraps inner with an LRU of the given capacity (entries).
// capacity ≤ 0 selects 1024.
func NewCached(inner Recommender, capacity int) *Cached {
	if capacity <= 0 {
		capacity = 1024
	}
	return &Cached{
		inner: inner,
		cap:   capacity,
		lru:   list.New(),
		byK:   make(map[string]*list.Element, capacity),
	}
}

// Name implements Recommender.
func (c *Cached) Name() string { return c.inner.Name() }

// key canonicalizes the query. The activity is sorted/deduplicated first so
// permutations share an entry.
func key(h []core.ActionID, k int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d|", k)
	for i, a := range h {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", a)
	}
	return b.String()
}

// Recommend implements Recommender.
func (c *Cached) Recommend(activity []core.ActionID, k int) []ScoredAction {
	out, _ := c.RecommendContext(context.Background(), activity, k)
	return out
}

// RecommendContext implements ContextRecommender. A cache hit is served
// regardless of the context (it costs nothing to return); a miss delegates
// to the inner recommender with ctx, and aborted queries are never cached —
// a canceled partial result must not poison later complete queries.
func (c *Cached) RecommendContext(ctx context.Context, activity []core.ActionID, k int) ([]ScoredAction, error) {
	h := intset.FromUnsorted(intset.Clone(activity))
	ck := key(h, k)

	c.mu.Lock()
	if el, ok := c.byK[ck]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		cached := el.Value.(*cacheEntry).list
		c.mu.Unlock()
		// Return a copy: callers may re-sort or truncate.
		return append([]ScoredAction(nil), cached...), nil
	}
	c.misses++
	c.mu.Unlock()

	list, err := RecommendContext(ctx, c.inner, h, k)
	if err != nil {
		return list, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if _, raced := c.byK[ck]; !raced {
		c.byK[ck] = c.lru.PushFront(&cacheEntry{key: ck, list: list})
		for c.lru.Len() > c.cap {
			oldest := c.lru.Back()
			c.lru.Remove(oldest)
			delete(c.byK, oldest.Value.(*cacheEntry).key)
		}
	}
	return append([]ScoredAction(nil), list...), nil
}

// Stats returns cache hits and misses so far.
func (c *Cached) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len returns the current number of cached entries.
func (c *Cached) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}
