package strategy

import (
	"container/list"
	"context"
	"encoding/binary"
	"sync"
	"sync/atomic"

	"goalrec/internal/core"
	"goalrec/internal/intset"
)

// maxCacheShards bounds the number of independently locked LRU segments and
// minShardCap is the smallest per-segment capacity worth splitting into:
// keys spread by hash, so at full sharding concurrent queries contend on one
// mutex only 1/16 of the time, while tiny caches stay single-shard and keep
// exact global LRU order.
const (
	maxCacheShards = 16
	minShardCap    = 64
)

// Cached wraps a Recommender with a bounded LRU cache keyed by the
// normalized (activity, k) pair. Recommendation queries in serving workloads
// repeat heavily (the same cart, the same wardrobe), and every strategy is
// deterministic over an immutable library, so caching is sound. The wrapper
// is safe for concurrent use.
//
// The cache is sharded: the compact binary query key is FNV-1a hashed once,
// the hash picks one of up to maxCacheShards independent LRU segments, and
// only that segment's mutex is taken — concurrent hits stop serializing on a
// single lock. Hit/miss counters are atomics, so they stay exact without
// joining any lock.
type Cached struct {
	inner Recommender

	shards []cacheShard
	mask   uint64 // len(shards) - 1; shard count is a power of two

	hits, misses atomic.Uint64
}

type cacheShard struct {
	mu  sync.Mutex
	cap int
	lru *list.List // of *cacheEntry, front = most recent
	byK map[string]*list.Element
}

type cacheEntry struct {
	key  string
	list []ScoredAction
}

// NewCached wraps inner with an LRU of the given total capacity (entries),
// split evenly across power-of-two many shards — as many as keep each shard
// at minShardCap entries, up to maxCacheShards. capacity ≤ 0 selects 1024.
func NewCached(inner Recommender, capacity int) *Cached {
	if capacity <= 0 {
		capacity = 1024
	}
	n := 1
	for n < maxCacheShards && capacity/(n*2) >= minShardCap {
		n *= 2
	}
	perShard := (capacity + n - 1) / n
	c := &Cached{inner: inner, shards: make([]cacheShard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		c.shards[i] = cacheShard{
			cap: perShard,
			lru: list.New(),
			byK: make(map[string]*list.Element, perShard),
		}
	}
	return c
}

// Name implements Recommender.
func (c *Cached) Name() string { return c.inner.Name() }

// Underlying returns the wrapped recommender. View queries (RecommendView)
// unwrap the cache: a materialized CounterView already is the per-user
// cache, and its results must not be keyed by activity across epochs.
func (c *Cached) Underlying() Recommender { return c.inner }

// cacheKey canonicalizes the query into a compact binary key: k as 8
// little-endian bytes, then each action id as 4. The activity is sorted and
// deduplicated by the caller, so permutations share an entry. The key is
// appended to buf (reusing its capacity) and returned alongside its FNV-1a
// hash — no per-query string formatting.
func cacheKey(buf []byte, h []core.ActionID, k int) ([]byte, uint64) {
	buf = binary.LittleEndian.AppendUint64(buf[:0], uint64(int64(k)))
	for _, a := range h {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(a))
	}
	const (
		fnvOffset64 = 14695981039346656037
		fnvPrime64  = 1099511628211
	)
	hash := uint64(fnvOffset64)
	for _, b := range buf {
		hash = (hash ^ uint64(b)) * fnvPrime64
	}
	return buf, hash
}

// Recommend implements Recommender.
func (c *Cached) Recommend(activity []core.ActionID, k int) []ScoredAction {
	out, _ := c.RecommendContext(context.Background(), activity, k)
	return out
}

// RecommendContext implements ContextRecommender. A cache hit is served
// regardless of the context (it costs nothing to return); a miss delegates
// to the inner recommender with ctx, and aborted queries are never cached —
// a canceled partial result must not poison later complete queries.
func (c *Cached) RecommendContext(ctx context.Context, activity []core.ActionID, k int) ([]ScoredAction, error) {
	h := intset.FromUnsorted(intset.Clone(activity))
	var kb [128]byte
	key, hash := cacheKey(kb[:0], h, k)
	sh := &c.shards[hash&c.mask]

	sh.mu.Lock()
	// The map index with string(key) is a lookup-only conversion: Go elides
	// the string allocation, so a hit allocates nothing but the result copy.
	if el, ok := sh.byK[string(key)]; ok {
		sh.lru.MoveToFront(el)
		cached := el.Value.(*cacheEntry).list
		sh.mu.Unlock()
		c.hits.Add(1)
		// Return a copy: callers may re-sort or truncate.
		return append([]ScoredAction(nil), cached...), nil
	}
	sh.mu.Unlock()
	c.misses.Add(1)

	list, err := RecommendContext(ctx, c.inner, h, k)
	if err != nil {
		return list, err
	}

	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, raced := sh.byK[string(key)]; !raced {
		ck := string(key) // materialize only when actually inserting
		sh.byK[ck] = sh.lru.PushFront(&cacheEntry{key: ck, list: list})
		for sh.lru.Len() > sh.cap {
			oldest := sh.lru.Back()
			sh.lru.Remove(oldest)
			delete(sh.byK, oldest.Value.(*cacheEntry).key)
		}
	}
	return append([]ScoredAction(nil), list...), nil
}

// Stats returns cache hits and misses so far.
func (c *Cached) Stats() (hits, misses uint64) {
	return c.hits.Load(), c.misses.Load()
}

// Len returns the current number of cached entries.
func (c *Cached) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.lru.Len()
		sh.mu.Unlock()
	}
	return n
}
