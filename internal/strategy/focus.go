package strategy

import (
	"context"
	"sort"

	"goalrec/internal/core"
	"goalrec/internal/intset"
)

// FocusMeasure selects how the Focus strategy ranks the implementations of
// the user's implementation space (Section 5.1).
type FocusMeasure int

const (
	// Completeness ranks implementations by |A ∩ H| / |A| (Equation 3):
	// prefer the goal for which most of the required work is already done.
	Completeness FocusMeasure = iota
	// Closeness ranks implementations by 1 / |A − H| (Equation 4): prefer
	// the goal that needs the fewest additional actions.
	Closeness
)

// String returns the measure's canonical name.
func (m FocusMeasure) String() string {
	if m == Closeness {
		return "closeness"
	}
	return "completeness"
}

// Focus is the paper's Algorithm 1: it ranks the implementations associated
// with the user activity by completeness or closeness, then fills the
// recommendation list with the missing actions of the best implementation,
// moving to the next implementation when one is exhausted (Section 6.1.2
// C.2.2 describes this pop-and-advance behaviour).
type Focus struct {
	lib     *core.Library
	measure FocusMeasure
}

// NewFocus returns a Focus strategy over lib using the given measure.
func NewFocus(lib *core.Library, measure FocusMeasure) *Focus {
	return &Focus{lib: lib, measure: measure}
}

// Name implements Recommender.
func (f *Focus) Name() string {
	if f.measure == Closeness {
		return "focus-cl"
	}
	return "focus-cmp"
}

// rankedImpl is one implementation with its Focus score and missing-action
// count, used for deterministic ordering.
type rankedImpl struct {
	id      core.ImplID
	score   float64
	missing int
}

// Recommend implements Recommender.
func (f *Focus) Recommend(activity []core.ActionID, k int) []ScoredAction {
	out, _ := f.RecommendContext(context.Background(), activity, k)
	return out
}

// RecommendContext implements ContextRecommender: the implementation-space
// scoring loop and the emission walk poll ctx at coarse checkpoints. On
// cancellation during emission the returned prefix is a valid partial
// result (Focus emits best-implementation-first); cancellation during
// scoring returns nil.
func (f *Focus) RecommendContext(ctx context.Context, activity []core.ActionID, k int) ([]ScoredAction, error) {
	if err := entryErr(ctx); err != nil {
		return nil, err
	}
	if k == 0 {
		return nil, nil
	}
	h := intset.FromUnsorted(intset.Clone(activity))
	space := f.lib.ImplementationSpace(h)
	if len(space) == 0 {
		return nil, nil
	}

	tick := newTicker(ctx)
	ranked := make([]rankedImpl, 0, len(space))
	for _, p := range space {
		if err := tick.tick(1); err != nil {
			return nil, err
		}
		missing := intset.DifferenceLen(f.lib.Actions(p), h)
		if missing == 0 {
			// Fully covered implementations have nothing left to recommend.
			continue
		}
		var score float64
		if f.measure == Closeness {
			score = f.lib.Closeness(p, h)
		} else {
			score = f.lib.Completeness(p, h)
		}
		ranked = append(ranked, rankedImpl{id: p, score: score, missing: missing})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		if ranked[i].missing != ranked[j].missing {
			return ranked[i].missing < ranked[j].missing
		}
		return ranked[i].id < ranked[j].id
	})

	var (
		out  []ScoredAction
		seen = make(map[core.ActionID]struct{})
	)
	for _, ri := range ranked {
		if err := tick.tick(1); err != nil {
			return out, err
		}
		for _, a := range f.lib.Actions(ri.id) {
			if intset.Contains(h, a) {
				continue
			}
			if _, dup := seen[a]; dup {
				continue
			}
			seen[a] = struct{}{}
			out = append(out, ScoredAction{Action: a, Score: ri.score})
			if k > 0 && len(out) == k {
				return out, nil
			}
		}
	}
	return out, nil
}
