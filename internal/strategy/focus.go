package strategy

import (
	"context"
	"sort"
	"sync"

	"goalrec/internal/core"
	"goalrec/internal/intset"
)

// FocusMeasure selects how the Focus strategy ranks the implementations of
// the user's implementation space (Section 5.1).
type FocusMeasure int

const (
	// Completeness ranks implementations by |A ∩ H| / |A| (Equation 3):
	// prefer the goal for which most of the required work is already done.
	Completeness FocusMeasure = iota
	// Closeness ranks implementations by 1 / |A − H| (Equation 4): prefer
	// the goal that needs the fewest additional actions.
	Closeness
)

// String returns the measure's canonical name.
func (m FocusMeasure) String() string {
	if m == Closeness {
		return "closeness"
	}
	return "completeness"
}

// Focus is the paper's Algorithm 1: it ranks the implementations associated
// with the user activity by completeness or closeness, then fills the
// recommendation list with the missing actions of the best implementation,
// moving to the next implementation when one is exhausted (Section 6.1.2
// C.2.2 describes this pop-and-advance behaviour).
//
// Scoring runs on the shared counter kernel (see kernel.go): one
// accumulation pass over H's posting rows yields |A_p ∩ H| for every
// associated implementation, from which both measures and the missing count
// follow in O(1) per implementation — no per-implementation set
// intersections. Large queries shard the pass across a bounded worker pool,
// and ranked implementations are selected through a bounded heap instead of
// a full sort; every path returns bit-identical rankings.
type Focus struct {
	lib     *core.Library
	measure FocusMeasure
	conc    concurrency
	pool    sync.Pool // *focusScratch
	pruning bool
	stats   *PruneStats
}

// focusScratch is the pooled per-query state: the kernel counters plus the
// per-shard and merged ranked-implementation buffers.
type focusScratch struct {
	overlapScratch
	perShard [][]rankedImpl
	merged   []rankedImpl
	sel      []rankedImpl
}

func (s *focusScratch) shardRanked(n int) [][]rankedImpl {
	for len(s.perShard) < n {
		s.perShard = append(s.perShard, nil)
	}
	for i := 0; i < n; i++ {
		s.perShard[i] = s.perShard[i][:0]
	}
	return s.perShard[:n]
}

// NewFocus returns a Focus strategy over lib using the given measure.
func NewFocus(lib *core.Library, measure FocusMeasure) *Focus {
	f := &Focus{lib: lib, measure: measure}
	f.pool.New = func() interface{} { return &focusScratch{} }
	return f
}

// SetConcurrency tunes the sharded implementation scan: maxWorkers bounds
// the per-query worker pool (≤ 0 selects GOMAXPROCS) and shardMin is the
// posting-stream size below which a query stays sequential (≤ 0 selects the
// default). Rankings are bit-identical for every setting. It must be called
// before the strategy starts serving queries.
func (f *Focus) SetConcurrency(maxWorkers, shardMin int) {
	f.conc = concurrency{maxWorkers: maxWorkers, shardMin: shardMin}
}

// Name implements Recommender.
func (f *Focus) Name() string {
	if f.measure == Closeness {
		return "focus-cl"
	}
	return "focus-cmp"
}

// rankedImpl is one implementation with its Focus score and missing-action
// count, used for deterministic ordering.
type rankedImpl struct {
	id      core.ImplID
	score   float64
	missing int
}

// implRanksBefore is the total ranking order over associated
// implementations: score descending, fewest missing actions, then id.
func implRanksBefore(a, b rankedImpl) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	if a.missing != b.missing {
		return a.missing < b.missing
	}
	return a.id < b.id
}

// Recommend implements Recommender.
func (f *Focus) Recommend(activity []core.ActionID, k int) []ScoredAction {
	out, _ := f.RecommendContext(context.Background(), activity, k)
	return out
}

// RecommendContext implements ContextRecommender: the kernel pass and the
// emission walk poll ctx at coarse checkpoints. On cancellation during
// emission the returned prefix is a valid partial result (Focus emits
// best-implementation-first); cancellation during scoring returns nil.
func (f *Focus) RecommendContext(ctx context.Context, activity []core.ActionID, k int) ([]ScoredAction, error) {
	if err := entryErr(ctx); err != nil {
		return nil, err
	}
	if k == 0 {
		return nil, nil
	}
	h := intset.FromUnsorted(intset.Clone(activity))
	stream := f.lib.OverlapStream(h)
	if stream == 0 {
		return nil, nil
	}
	if f.pruning && k > 0 {
		return f.recommendPruned(ctx, h, stream, k)
	}

	workers := f.conc.workersFor(stream, f.lib.NumImplementations())
	s := f.pool.Get().(*focusScratch)
	defer f.pool.Put(s)
	ranked := s.shardRanked(workers)

	// Kernel pass: each shard scores its touched implementations straight
	// from the counters. Shard output order is irrelevant — the selection
	// below ranks under a total order.
	err := s.run(ctx, f.lib, h, workers, func(shard int, touched []core.ImplID, tick *ticker) error {
		rb := ranked[shard]
		var err error
		for _, p := range touched {
			if err = tick.tick(1); err != nil {
				break
			}
			if ri, ok := focusRank(f.measure, p, f.lib.ImplLen(p), int(s.cnt[p])); ok {
				rb = append(rb, ri)
			}
		}
		s.perShard[shard] = rb
		return err
	})
	if err != nil {
		return nil, err
	}

	all := s.merged[:0]
	for _, rb := range ranked {
		all = append(all, rb...)
	}
	s.merged = all

	tick := newTicker(ctx)
	return f.selectEmit(s, all, h, k, &tick)
}

// RecommendView implements ViewRecommender: the scoring phase alone, a pure
// pass over the view's materialized counters (no posting-row accumulation).
// Views always score exact — the pruned bounds apply only to from-scratch
// builds — and the ranking is bit-identical to RecommendContext over the
// view's activity.
func (f *Focus) RecommendView(ctx context.Context, v *CounterView, k int) ([]ScoredAction, error) {
	if err := entryErr(ctx); err != nil {
		return nil, err
	}
	if v.lib != f.lib {
		return nil, ErrViewLibrary
	}
	if k == 0 || len(v.impls) == 0 {
		return nil, nil
	}
	s := f.pool.Get().(*focusScratch)
	defer f.pool.Put(s)
	tick := newTicker(ctx)
	all := s.merged[:0]
	for i, p := range v.impls {
		if err := tick.tick(1); err != nil {
			s.merged = all
			return nil, err
		}
		if ri, ok := focusRank(f.measure, p, int(v.lens[i]), int(v.cnt[i])); ok {
			all = append(all, ri)
		}
	}
	s.merged = all
	return f.selectEmit(s, all, v.h, k, &tick)
}

// focusRank scores one implementation from its counter — a pure function of
// (|A_p|, |A_p ∩ H|) shared by the from-scratch kernel and the view path.
// Fully covered implementations have nothing left to recommend and rank
// nowhere (ok == false).
func focusRank(measure FocusMeasure, p core.ImplID, n, overlap int) (rankedImpl, bool) {
	missing := n - overlap
	if missing == 0 {
		return rankedImpl{}, false
	}
	var score float64
	if measure == Closeness {
		score = 1 / float64(missing)
	} else {
		score = float64(overlap) / float64(n)
	}
	return rankedImpl{id: p, score: score, missing: missing}, true
}

// selectEmit ranks the scored implementations under the total order and
// walks them best-first through emit.
func (f *Focus) selectEmit(s *focusScratch, all []rankedImpl, h []core.ActionID, k int, tick *ticker) ([]ScoredAction, error) {
	if k < 0 || len(all) <= k {
		sortRankedImpls(all)
		return f.emit(all, h, k, tick)
	}
	// Progressive bounded selection: the walk almost always fills k within
	// the first k implementations; when deduplication starves it, widen and
	// re-emit. Selection under the total order makes every widened prefix
	// an exact prefix of the fully sorted order, so results match the full
	// sort bit-for-bit.
	for m := k; ; m *= 4 {
		if m >= len(all) {
			sortRankedImpls(all)
			return f.emit(all, h, k, tick)
		}
		// Selection is in place, so it runs on a pooled copy: a widened
		// retry (or the full-sort fallback) must see the merged list intact.
		s.sel = append(s.sel[:0], all...)
		out, err := f.emit(topMRankedImpls(s.sel, m), h, k, tick)
		if err != nil || len(out) == k {
			return out, err
		}
	}
}

// emit walks the ranked implementations best-first, emitting each one's
// not-yet-performed, not-yet-emitted actions until k are collected
// (Algorithm 1's pop-and-advance). On cancellation the emitted prefix is
// returned alongside the error.
func (f *Focus) emit(ranked []rankedImpl, h []core.ActionID, k int, tick *ticker) ([]ScoredAction, error) {
	var (
		out  []ScoredAction
		seen = make(map[core.ActionID]struct{})
	)
	for _, ri := range ranked {
		if err := tick.tick(1); err != nil {
			return out, err
		}
		for _, a := range f.lib.Actions(ri.id) {
			if intset.Contains(h, a) {
				continue
			}
			if _, dup := seen[a]; dup {
				continue
			}
			seen[a] = struct{}{}
			out = append(out, ScoredAction{Action: a, Score: ri.score})
			if k > 0 && len(out) == k {
				return out, nil
			}
		}
	}
	return out, nil
}

// sortRankedImpls orders ranked best-first under the total implementation
// order.
func sortRankedImpls(ranked []rankedImpl) {
	sort.Slice(ranked, func(i, j int) bool {
		return implRanksBefore(ranked[i], ranked[j])
	})
}

// topMRankedImpls selects the m best implementations with a min-heap kept in
// ranked[:m] and leaves them sorted best-first — the rankedImpl counterpart
// of topKHeap, kept monomorphic so neither hot loop pays an indirect
// comparator call.
func topMRankedImpls(ranked []rankedImpl, m int) []rankedImpl {
	h := ranked[:m]
	for i := m/2 - 1; i >= 0; i-- {
		implSiftDown(h, i)
	}
	for _, r := range ranked[m:] {
		if implRanksBefore(h[0], r) {
			continue
		}
		h[0] = r
		implSiftDown(h, 0)
	}
	for n := m - 1; n > 0; n-- {
		h[0], h[n] = h[n], h[0]
		implSiftDown(h[:n], 0)
	}
	return h
}

// implSiftDown restores the min-heap property (worst-ranked at the root)
// for the subtree rooted at i.
func implSiftDown(h []rankedImpl, i int) {
	for {
		worst := i
		if l := 2*i + 1; l < len(h) && implRanksBefore(h[worst], h[l]) {
			worst = l
		}
		if r := 2*i + 2; r < len(h) && implRanksBefore(h[worst], h[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}
