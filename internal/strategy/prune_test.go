package strategy

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"goalrec/internal/core"
	"goalrec/internal/intset"
	"goalrec/internal/testlib"
)

// checkPrunedEquiv asserts that every pruned path — all four strategies,
// sequential and sharded — returns the exact slice the unpruned kernel
// returns for (h, k), scores included. It is shared with FuzzPrunedRankings.
func checkPrunedEquiv(t *testing.T, lib *core.Library, h []core.ActionID, k int) {
	t.Helper()
	type pair struct {
		name   string
		plain  Recommender
		pruned Recommender
	}
	var pairs []pair
	for _, m := range []FocusMeasure{Completeness, Closeness} {
		for _, workers := range []int{1, 4} {
			p := NewFocus(lib, m)
			q := NewFocus(lib, m)
			if workers > 1 {
				p.SetConcurrency(workers, 1)
				q.SetConcurrency(workers, 1)
			}
			q.EnablePruning(nil)
			pairs = append(pairs, pair{fmt.Sprintf("%s/w%d", m, workers), p, q})
		}
	}
	for _, w := range []BreadthWeighting{Overlap, Count, Union} {
		for _, workers := range []int{1, 4} {
			p := NewBreadthWeighted(lib, w)
			q := NewBreadthWeighted(lib, w)
			if workers > 1 {
				p.SetConcurrency(workers, 1)
				q.SetConcurrency(workers, 1)
			}
			q.EnablePruning(nil)
			pairs = append(pairs, pair{fmt.Sprintf("breadth-%s/w%d", w, workers), p, q})
		}
	}
	{
		p := NewBestMatch(lib)
		q := NewBestMatch(lib)
		q.mode = bmCandidateMajor // the pruned walk replaces this path
		q.EnablePruning(nil)
		pairs = append(pairs, pair{"best-match", p, q})
	}
	for _, pr := range pairs {
		got := pr.pruned.Recommend(h, k)
		want := pr.plain.Recommend(h, k)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: pruned ranking diverged (k=%d, h=%v):\ngot  %v\nwant %v", pr.name, k, h, got, want)
		}
	}
}

// TestPrunedRankingsMatchUnpruned drives the pruned kernels against the
// default kernels over random libraries, alternating plain and
// impact-ordered layouts so both loose and tight block bounds are exercised.
func TestPrunedRankingsMatchUnpruned(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 1 + r.Intn(1500)
		actionSpace := 2 + r.Intn(24)
		lib := testlib.RandomLibrary(r, n, actionSpace, 20, 9)
		if trial%2 == 1 {
			lib, _ = core.ImpactOrder(lib)
		}
		for q := 0; q < 5; q++ {
			h := intset.FromUnsorted(testlib.RandomActivity(r, actionSpace, 6))
			k := 1 + r.Intn(15)
			checkPrunedEquiv(t, lib, h, k)
		}
	}
}

// TestPrunedStatsCountSkips pins that the counters actually record pruning
// on a layout built to allow it: long posting rows, length-clustered
// (impact-ordered) implementations and a small k.
func TestPrunedStatsCountSkips(t *testing.T) {
	// The Focus floor is established chunk by chunk, so the library must
	// span several id chunks for later blocks to be skippable; the candidate
	// walks additionally need skewed action degrees, or the suffix bound
	// never drops below the floor. r.Intn(1+r.Intn(...)) skews toward hot
	// low ids the way the scalability benchmark's Zipf draw does.
	r := rand.New(rand.NewSource(9))
	var b core.Builder
	for i := 0; i < 6*prunedChunkIDs; i++ {
		acts := make([]core.ActionID, 1+r.Intn(9))
		for j := range acts {
			acts[j] = core.ActionID(r.Intn(1 + r.Intn(200)))
		}
		if _, err := b.Add(core.GoalID(r.Intn(500)), acts); err != nil {
			t.Fatal(err)
		}
	}
	lib, _ := core.ImpactOrder(b.Build())
	h := intset.FromUnsorted([]core.ActionID{1, 2, 3})

	var focusStats PruneStats
	fc := NewFocus(lib, Closeness)
	fc.EnablePruning(&focusStats)
	fc.Recommend(h, 1)
	if s := focusStats.Snapshot(); s.BlocksSkipped == 0 || s.BlocksTotal <= s.BlocksSkipped {
		t.Fatalf("focus-cl skipped no blocks on a prunable layout: %+v", s)
	} else if s.ImplsAssociated == 0 {
		t.Fatalf("focus-cl recorded no posting stream: %+v", s)
	}

	var breadthStats PruneStats
	br := NewBreadth(lib)
	br.EnablePruning(&breadthStats)
	br.Recommend(h, 1)
	if s := breadthStats.Snapshot(); s.CandidatesSkipped == 0 || s.CandidatesScored == 0 {
		t.Fatalf("breadth skipped no candidates on a prunable layout: %+v", s)
	}

	var bmStats PruneStats
	bm := NewBestMatch(lib)
	bm.mode = bmCandidateMajor
	bm.EnablePruning(&bmStats)
	bm.Recommend(h, 1)
	if s := bmStats.Snapshot(); s.CandidatesSkipped == 0 || s.CandidatesScored == 0 {
		t.Fatalf("best-match skipped no candidates on a prunable layout: %+v", s)
	}
}

// TestPrunedNilStatsSink verifies that every pruned path runs with a nil
// stats sink (the common production configuration when metrics are off).
func TestPrunedNilStatsSink(t *testing.T) {
	r := rand.New(rand.NewSource(10))
	lib := testlib.RandomLibrary(r, 500, 12, 10, 7)
	h := intset.FromUnsorted(testlib.RandomActivity(r, 12, 4))
	checkPrunedEquiv(t, lib, h, 5)
}

// TestPrunedAbortScratchInvariants hammers the pruned paths with thousands
// of mid-scan aborts at varying checkpoint depths and asserts, after every
// abort, that the pooled scratch went back clean: Focus/Breadth overlap
// counters zeroed, Breadth score accumulators and H-membership cleared. A
// completed query follows each abort and must stay bit-identical to an
// unpruned twin — the end-to-end proof that no partial state leaked.
func TestPrunedAbortScratchInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	lib := testlib.RandomLibrary(r, 2500, 24, 20, 9)

	for _, workers := range []int{1, 4} {
		workers := workers
		t.Run(fmt.Sprintf("w%d", workers), func(t *testing.T) {
			fc := NewFocus(lib, Closeness)
			fcPlain := NewFocus(lib, Closeness)
			br := NewBreadth(lib)
			brPlain := NewBreadth(lib)
			if workers > 1 {
				fc.SetConcurrency(workers, 1)
				fcPlain.SetConcurrency(workers, 1)
				br.SetConcurrency(workers, 1)
				brPlain.SetConcurrency(workers, 1)
			}
			fc.EnablePruning(nil)
			br.EnablePruning(nil)
			bm := NewBestMatch(lib)
			bm.mode = bmCandidateMajor
			bm.EnablePruning(nil)
			bmPlain := NewBestMatch(lib)

			checkFocus := func(i int) {
				s := fc.pool.Get().(*focusScratch)
				defer fc.pool.Put(s)
				for p, c := range s.cnt {
					if c != 0 {
						t.Fatalf("abort %d: focus counter %d left at %d", i, p, c)
					}
				}
				for w := range s.touched {
					if len(s.touched[w]) != 0 {
						t.Fatalf("abort %d: focus touched[%d] not truncated", i, w)
					}
				}
			}
			checkBreadth := func(i int) {
				s := br.pool.Get().(*breadthScratch)
				defer br.pool.Put(s)
				for p, c := range s.cnt {
					if c != 0 {
						t.Fatalf("abort %d: breadth counter %d left at %d", i, p, c)
					}
				}
				for a, in := range s.inH {
					if in {
						t.Fatalf("abort %d: breadth inH[%d] left set", i, a)
					}
				}
				for a, v := range s.scores {
					if v != 0 {
						t.Fatalf("abort %d: breadth score[%d] left at %v", i, a, v)
					}
				}
				for w := range s.workers {
					for a, v := range s.workers[w].scores {
						if v != 0 {
							t.Fatalf("abort %d: breadth worker %d score[%d] left at %v", i, w, a, v)
						}
					}
				}
			}

			for i := 0; i < 1500; i++ {
				h := intset.FromUnsorted(testlib.RandomActivity(r, 24, 6))
				polls := int64(1 + i%9)
				fc.RecommendContext(newCancelAfterPolls(polls), h, 6)
				checkFocus(i)
				br.RecommendContext(newCancelAfterPolls(polls), h, 6)
				checkBreadth(i)
				bm.RecommendContext(newCancelAfterPolls(polls), h, 6)

				if i%5 == 0 {
					if got, want := fc.Recommend(h, 6), fcPlain.Recommend(h, 6); !reflect.DeepEqual(got, want) {
						t.Fatalf("query %d: focus diverged after aborts:\ngot  %v\nwant %v", i, got, want)
					}
					if got, want := br.Recommend(h, 6), brPlain.Recommend(h, 6); !reflect.DeepEqual(got, want) {
						t.Fatalf("query %d: breadth diverged after aborts:\ngot  %v\nwant %v", i, got, want)
					}
					if got, want := bm.Recommend(h, 6), bmPlain.Recommend(h, 6); !reflect.DeepEqual(got, want) {
						t.Fatalf("query %d: best-match diverged after aborts:\ngot  %v\nwant %v", i, got, want)
					}
				}
			}
		})
	}
}

// TestPrunedDynamicSnapshots runs the pruned Focus scan over extended
// (overlay) snapshots, whose block metadata is rebuilt per touched row, and
// checks it against the unpruned kernel on the same snapshot.
func TestPrunedDynamicSnapshots(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	d := core.NewDynamicLibrary()
	d.SetCompactionThreshold(1 << 30) // force the overlay path
	for round := 0; round < 5; round++ {
		for i := 0; i < 400; i++ {
			size := 1 + r.Intn(7)
			acts := make([]core.ActionID, size)
			for j := range acts {
				acts[j] = core.ActionID(r.Intn(16))
			}
			if _, err := d.Add(core.GoalID(r.Intn(12)), acts); err != nil {
				t.Fatal(err)
			}
		}
		lib := d.Snapshot()
		for q := 0; q < 4; q++ {
			h := intset.FromUnsorted(testlib.RandomActivity(r, 16, 5))
			checkPrunedEquiv(t, lib, h, 1+r.Intn(10))
		}
	}
}
