package strategy

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"goalrec/internal/core"
	"goalrec/internal/intset"
	"goalrec/internal/testlib"
)

func acts(v ...core.ActionID) []core.ActionID { return v }

func actionsOf(list []ScoredAction) []core.ActionID { return Actions(list) }

func containsAction(list []ScoredAction, a core.ActionID) bool {
	for _, s := range list {
		if s.Action == a {
			return true
		}
	}
	return false
}

func TestFocusNames(t *testing.T) {
	lib := testlib.PaperLibrary()
	if got := NewFocus(lib, Completeness).Name(); got != "focus-cmp" {
		t.Errorf("Name = %q", got)
	}
	if got := NewFocus(lib, Closeness).Name(); got != "focus-cl" {
		t.Errorf("Name = %q", got)
	}
	if Completeness.String() != "completeness" || Closeness.String() != "closeness" {
		t.Error("FocusMeasure.String wrong")
	}
}

func TestFocusCompletenessPaperExample(t *testing.T) {
	lib := testlib.PaperLibrary()
	f := NewFocus(lib, Completeness)

	// H = {a1, a2}: completeness p1=2/3, p5=2/3, p2=1/2, p3=1/3, p4 not in IS.
	// p1 and p5 tie at 2/3 with one missing action each; p1 has the smaller
	// id, so a3 (missing from p1) precedes a6 (missing from p5), then a4
	// from p2, then a5 from p3.
	got := actionsOf(f.Recommend(acts(0, 1), 10))
	want := acts(2, 5, 3, 4)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Recommend = %v, want %v", got, want)
	}
}

func TestFocusClosenessPaperExample(t *testing.T) {
	lib := testlib.PaperLibrary()
	f := NewFocus(lib, Closeness)

	// H = {a1}: closeness p2=1/1=1, p1=1/2, p3=1/2, p5=1/2; p4 not in IS(H).
	// p2's missing action a4 comes first; then p1 (a2, a3), p3 (a3 dup, a5),
	// p5 (a2 dup, a6).
	got := actionsOf(f.Recommend(acts(0), 10))
	want := acts(3, 1, 2, 4, 5)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Recommend = %v, want %v", got, want)
	}
}

func TestFocusSkipsCompletedImplementations(t *testing.T) {
	var b core.Builder
	if _, err := b.Add(0, acts(0, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Add(1, acts(0, 2)); err != nil {
		t.Fatal(err)
	}
	lib := b.Build()
	f := NewFocus(lib, Completeness)
	// H covers impl 0 entirely; only impl 1's missing action remains.
	got := actionsOf(f.Recommend(acts(0, 1), 10))
	if !reflect.DeepEqual(got, acts(2)) {
		t.Errorf("Recommend = %v, want [2]", got)
	}
}

func TestFocusEmptyCases(t *testing.T) {
	lib := testlib.PaperLibrary()
	f := NewFocus(lib, Completeness)
	if got := f.Recommend(nil, 10); got != nil {
		t.Errorf("empty activity produced %v", got)
	}
	if got := f.Recommend(acts(42), 10); got != nil {
		t.Errorf("unknown action produced %v", got)
	}
	if got := f.Recommend(acts(0), 0); got != nil {
		t.Errorf("k=0 produced %v", got)
	}
}

func TestFocusTruncatesToK(t *testing.T) {
	lib := testlib.PaperLibrary()
	f := NewFocus(lib, Completeness)
	got := f.Recommend(acts(0), 2)
	if len(got) != 2 {
		t.Errorf("len = %d, want 2", len(got))
	}
}

func TestFocusDeterministic(t *testing.T) {
	lib := testlib.PaperLibrary()
	f := NewFocus(lib, Closeness)
	a := f.Recommend(acts(0, 1), 10)
	b := f.Recommend(acts(1, 0, 1), 10) // unsorted, duplicated input
	if !reflect.DeepEqual(a, b) {
		t.Errorf("unsorted input changed output: %v vs %v", a, b)
	}
}

// strategyInvariants checks the properties every goal-based strategy must
// satisfy on any library/activity pair.
func strategyInvariants(t *testing.T, mk func(*core.Library) Recommender) {
	t.Helper()
	cfg := &quick.Config{
		MaxCount: 80,
		Values: func(v []reflect.Value, r *rand.Rand) {
			v[0] = reflect.ValueOf(testlib.RandomLibrary(r, 1+r.Intn(80), 25, 12, 6))
			v[1] = reflect.ValueOf(testlib.RandomActivity(r, 25, 5))
			v[2] = reflect.ValueOf(1 + r.Intn(15))
		},
	}
	f := func(lib *core.Library, h []core.ActionID, k int) bool {
		rec := mk(lib)
		got := rec.Recommend(h, k)
		if len(got) > k {
			return false
		}
		hs := intset.FromUnsorted(intset.Clone(h))
		cands := lib.Candidates(hs)
		seen := make(map[core.ActionID]bool, len(got))
		for _, s := range got {
			// Never recommend the activity itself, never duplicate, and
			// every recommendation must come from the candidate pool.
			if intset.Contains(hs, s.Action) || seen[s.Action] || !intset.Contains(cands, s.Action) {
				return false
			}
			seen[s.Action] = true
		}
		// Determinism.
		again := rec.Recommend(h, k)
		return reflect.DeepEqual(got, again)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestFocusCmpInvariants(t *testing.T) {
	strategyInvariants(t, func(l *core.Library) Recommender { return NewFocus(l, Completeness) })
}

func TestFocusClInvariants(t *testing.T) {
	strategyInvariants(t, func(l *core.Library) Recommender { return NewFocus(l, Closeness) })
}
