package strategy

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"goalrec/internal/core"
	"goalrec/internal/intset"
	"goalrec/internal/testlib"
	"goalrec/internal/vectorspace"
)

func TestBestMatchNames(t *testing.T) {
	lib := testlib.PaperLibrary()
	if got := NewBestMatch(lib).Name(); got != "best-match" {
		t.Errorf("Name = %q", got)
	}
	if got := NewBestMatchMetric(lib, vectorspace.Euclidean).Name(); got != "best-match-euclidean" {
		t.Errorf("Name = %q", got)
	}
}

func TestBestMatchProfilePaperExample(t *testing.T) {
	lib := testlib.PaperLibrary()
	bm := NewBestMatch(lib)

	// H = {a2, a3} (ids 1, 2). Implementation space: p1 (a2,a3), p3 (a3),
	// p5 (a2). Per Equation 9 the profile counts (action, implementation)
	// contribution pairs per goal: g1 ← a2@p1 + a3@p1 = 2, g3 ← a3@p3 = 1,
	// g5 ← a2@p5 = 1.
	profile := bm.Profile(acts(1, 2))
	if got := profile.At(0); got != 2 {
		t.Errorf("profile[g1] = %v, want 2", got)
	}
	if got := profile.At(2); got != 1 {
		t.Errorf("profile[g3] = %v, want 1", got)
	}
	if got := profile.At(4); got != 1 {
		t.Errorf("profile[g5] = %v, want 1", got)
	}
	if got := profile.At(1); got != 0 {
		t.Errorf("profile[g2] = %v, want 0", got)
	}
	if profile.Len() != 3 {
		t.Errorf("profile has %d coordinates, want 3", profile.Len())
	}
}

func TestBestMatchProfileCountsDuplicateContributions(t *testing.T) {
	// A goal with two implementations containing the same action counts
	// twice (the vector representation of Equation 8, not the boolean one
	// of Equation 7).
	var b core.Builder
	if _, err := b.Add(0, acts(0, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Add(0, acts(0, 2)); err != nil {
		t.Fatal(err)
	}
	lib := b.Build()
	profile := NewBestMatch(lib).Profile(acts(0))
	if got := profile.At(0); got != 2 {
		t.Errorf("profile[g0] = %v, want 2 (two implementations)", got)
	}
}

func TestBestMatchRankingPaperExample(t *testing.T) {
	lib := testlib.PaperLibrary()
	bm := NewBestMatch(lib)

	// H = {a2, a3}: profile (g1:2, g3:1, g5:1).
	// Candidates (co-occurring with H): a1 (g1:1, g3:1, g5:1 within GS(H)),
	// a5 (g3:1), a6 (g5:1). a4 never co-occurs with H, so it is not ranked.
	// Cosine distance: a1 ≈ 0.0572, a5 = a6 ≈ 0.5918.
	got := bm.Recommend(acts(1, 2), 10)
	wantOrder := acts(0, 4, 5)
	if !reflect.DeepEqual(actionsOf(got), wantOrder) {
		t.Fatalf("Recommend order = %v, want %v", actionsOf(got), wantOrder)
	}
	// Section 5.3's closing point: the action whose goal contributions align
	// with the profile (a1) is strictly closer than one serving a goal the
	// user barely touched (a5 serves only g3).
	if got[0].Score <= got[1].Score {
		t.Errorf("a1 should be strictly closer than a5: %v vs %v", got[0].Score, got[1].Score)
	}
	// a5 and a6 are symmetric; tie must break by id.
	if got[1].Action != 4 || got[2].Action != 5 {
		t.Errorf("tie break wrong: %v", got)
	}
	if math.Abs(got[1].Score-got[2].Score) > 1e-12 {
		t.Errorf("a5 and a6 should tie: %v vs %v", got[1].Score, got[2].Score)
	}
}

func TestBestMatchMetricsDisagreeButRankZeroLast(t *testing.T) {
	lib := testlib.PaperLibrary()
	for _, m := range []vectorspace.Metric{
		vectorspace.Cosine, vectorspace.Euclidean, vectorspace.Manhattan, vectorspace.JaccardDist,
	} {
		bm := NewBestMatchMetric(lib, m)
		got := bm.Recommend(acts(1, 2), 10)
		if len(got) != 3 {
			t.Fatalf("%v: got %d candidates", m, len(got))
		}
		// a1 matches the profile best; every metric should agree here.
		if got[0].Action != 0 {
			t.Errorf("%v ranked %d first, want a1", m, got[0].Action)
		}
	}
}

func TestBestMatchEmptyCases(t *testing.T) {
	lib := testlib.PaperLibrary()
	bm := NewBestMatch(lib)
	if got := bm.Recommend(nil, 10); got != nil {
		t.Errorf("empty activity produced %v", got)
	}
	if got := bm.Recommend(acts(0), 0); got != nil {
		t.Errorf("k=0 produced %v", got)
	}
	if p := bm.Profile(nil); !p.IsZero() {
		t.Errorf("profile of empty activity = %v non-zero coords", p.Len())
	}
}

func TestBestMatchFastPathMatchesSparseReference(t *testing.T) {
	// The pooled dense cosine path must agree with the straightforward
	// sparse implementation (Profile + actionVector + metric.Distance) on
	// random libraries, bit-for-bit on the ordering and within float noise
	// on the scores.
	cfg := &quick.Config{
		MaxCount: 80,
		Values: func(v []reflect.Value, r *rand.Rand) {
			v[0] = reflect.ValueOf(testlib.RandomLibrary(r, 1+r.Intn(80), 25, 12, 6))
			v[1] = reflect.ValueOf(testlib.RandomActivity(r, 25, 5))
		},
	}
	f := func(lib *core.Library, h []core.ActionID) bool {
		bm := NewBestMatch(lib)
		fast := bm.Recommend(h, -1)

		// Sparse reference.
		hs := intset.FromUnsorted(intset.Clone(h))
		goalSpace := lib.GoalSpace(hs)
		profile := bm.Profile(hs)
		var ref []ScoredAction
		for _, a := range lib.Candidates(hs) {
			d := vectorspace.Cosine.Distance(profile, bm.actionVector(a, goalSpace))
			ref = append(ref, ScoredAction{Action: a, Score: -d})
		}
		ref = TopK(ref, -1)

		if len(fast) != len(ref) {
			return false
		}
		for i := range fast {
			if fast[i].Action != ref[i].Action {
				return false
			}
			if math.Abs(fast[i].Score-ref[i].Score) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestBestMatchInvariants(t *testing.T) {
	strategyInvariants(t, func(l *core.Library) Recommender { return NewBestMatch(l) })
}

func TestBestMatchEuclideanInvariants(t *testing.T) {
	strategyInvariants(t, func(l *core.Library) Recommender {
		return NewBestMatchMetric(l, vectorspace.Euclidean)
	})
}
