package strategy

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"goalrec/internal/core"
	"goalrec/internal/intset"
	"goalrec/internal/testlib"
	"goalrec/internal/vectorspace"
)

func TestBestMatchNames(t *testing.T) {
	lib := testlib.PaperLibrary()
	if got := NewBestMatch(lib).Name(); got != "best-match" {
		t.Errorf("Name = %q", got)
	}
	if got := NewBestMatchMetric(lib, vectorspace.Euclidean).Name(); got != "best-match-euclidean" {
		t.Errorf("Name = %q", got)
	}
}

func TestBestMatchProfilePaperExample(t *testing.T) {
	lib := testlib.PaperLibrary()
	bm := NewBestMatch(lib)

	// H = {a2, a3} (ids 1, 2). Implementation space: p1 (a2,a3), p3 (a3),
	// p5 (a2). Per Equation 9 the profile counts (action, implementation)
	// contribution pairs per goal: g1 ← a2@p1 + a3@p1 = 2, g3 ← a3@p3 = 1,
	// g5 ← a2@p5 = 1.
	profile := bm.Profile(acts(1, 2))
	if got := profile.At(0); got != 2 {
		t.Errorf("profile[g1] = %v, want 2", got)
	}
	if got := profile.At(2); got != 1 {
		t.Errorf("profile[g3] = %v, want 1", got)
	}
	if got := profile.At(4); got != 1 {
		t.Errorf("profile[g5] = %v, want 1", got)
	}
	if got := profile.At(1); got != 0 {
		t.Errorf("profile[g2] = %v, want 0", got)
	}
	if profile.Len() != 3 {
		t.Errorf("profile has %d coordinates, want 3", profile.Len())
	}
}

func TestBestMatchProfileCountsDuplicateContributions(t *testing.T) {
	// A goal with two implementations containing the same action counts
	// twice (the vector representation of Equation 8, not the boolean one
	// of Equation 7).
	var b core.Builder
	if _, err := b.Add(0, acts(0, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Add(0, acts(0, 2)); err != nil {
		t.Fatal(err)
	}
	lib := b.Build()
	profile := NewBestMatch(lib).Profile(acts(0))
	if got := profile.At(0); got != 2 {
		t.Errorf("profile[g0] = %v, want 2 (two implementations)", got)
	}
}

func TestBestMatchRankingPaperExample(t *testing.T) {
	lib := testlib.PaperLibrary()
	bm := NewBestMatch(lib)

	// H = {a2, a3}: profile (g1:2, g3:1, g5:1).
	// Candidates (co-occurring with H): a1 (g1:1, g3:1, g5:1 within GS(H)),
	// a5 (g3:1), a6 (g5:1). a4 never co-occurs with H, so it is not ranked.
	// Cosine distance: a1 ≈ 0.0572, a5 = a6 ≈ 0.5918.
	got := bm.Recommend(acts(1, 2), 10)
	wantOrder := acts(0, 4, 5)
	if !reflect.DeepEqual(actionsOf(got), wantOrder) {
		t.Fatalf("Recommend order = %v, want %v", actionsOf(got), wantOrder)
	}
	// Section 5.3's closing point: the action whose goal contributions align
	// with the profile (a1) is strictly closer than one serving a goal the
	// user barely touched (a5 serves only g3).
	if got[0].Score <= got[1].Score {
		t.Errorf("a1 should be strictly closer than a5: %v vs %v", got[0].Score, got[1].Score)
	}
	// a5 and a6 are symmetric; tie must break by id.
	if got[1].Action != 4 || got[2].Action != 5 {
		t.Errorf("tie break wrong: %v", got)
	}
	if math.Abs(got[1].Score-got[2].Score) > 1e-12 {
		t.Errorf("a5 and a6 should tie: %v vs %v", got[1].Score, got[2].Score)
	}
}

func TestBestMatchMetricsDisagreeButRankZeroLast(t *testing.T) {
	lib := testlib.PaperLibrary()
	for _, m := range []vectorspace.Metric{
		vectorspace.Cosine, vectorspace.Euclidean, vectorspace.Manhattan, vectorspace.JaccardDist,
	} {
		bm := NewBestMatchMetric(lib, m)
		got := bm.Recommend(acts(1, 2), 10)
		if len(got) != 3 {
			t.Fatalf("%v: got %d candidates", m, len(got))
		}
		// a1 matches the profile best; every metric should agree here.
		if got[0].Action != 0 {
			t.Errorf("%v ranked %d first, want a1", m, got[0].Action)
		}
	}
}

func TestBestMatchEmptyCases(t *testing.T) {
	lib := testlib.PaperLibrary()
	bm := NewBestMatch(lib)
	if got := bm.Recommend(nil, 10); got != nil {
		t.Errorf("empty activity produced %v", got)
	}
	if got := bm.Recommend(acts(0), 0); got != nil {
		t.Errorf("k=0 produced %v", got)
	}
	if p := bm.Profile(nil); !p.IsZero() {
		t.Errorf("profile of empty activity = %v non-zero coords", p.Len())
	}
}

func TestBestMatchFastPathMatchesSparseReference(t *testing.T) {
	// The pooled dense cosine path must agree with the straightforward
	// sparse implementation (Profile + actionVector + metric.Distance) on
	// random libraries, bit-for-bit on the ordering and within float noise
	// on the scores.
	cfg := &quick.Config{
		MaxCount: 80,
		Values: func(v []reflect.Value, r *rand.Rand) {
			v[0] = reflect.ValueOf(testlib.RandomLibrary(r, 1+r.Intn(80), 25, 12, 6))
			v[1] = reflect.ValueOf(testlib.RandomActivity(r, 25, 5))
		},
	}
	f := func(lib *core.Library, h []core.ActionID) bool {
		bm := NewBestMatch(lib)
		fast := bm.Recommend(h, -1)

		// Sparse reference.
		hs := intset.FromUnsorted(intset.Clone(h))
		goalSpace := lib.GoalSpace(hs)
		profile := bm.Profile(hs)
		var ref []ScoredAction
		for _, a := range lib.Candidates(hs) {
			d := vectorspace.Cosine.Distance(profile, bm.actionVector(a, goalSpace))
			ref = append(ref, ScoredAction{Action: a, Score: -d})
		}
		ref = TopK(ref, -1)

		if len(fast) != len(ref) {
			return false
		}
		for i := range fast {
			if fast[i].Action != ref[i].Action {
				return false
			}
			if math.Abs(fast[i].Score-ref[i].Score) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

// TestBestMatchScoringPathsAgree pins the three cosine scoring paths —
// candidate-major over the AG-idx, goal-major accumulation, and the legacy
// postings walk — to bit-identical rankings and scores on random libraries.
// All three accumulate integer-valued sums in float64, so even the scores
// must match exactly, not just within float noise.
func TestBestMatchScoringPathsAgree(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 150; trial++ {
		lib := testlib.RandomLibrary(r, 1+r.Intn(120), 30, 15, 7)
		h := testlib.RandomActivity(r, 30, 6)
		k := -1
		if r.Intn(2) == 0 {
			k = 1 + r.Intn(12)
		}
		var want []ScoredAction
		for i, mode := range []bmMode{bmPostings, bmCandidateMajor, bmGoalMajor, bmAuto} {
			bm := NewBestMatch(lib)
			bm.mode = mode
			got := bm.Recommend(h, k)
			if i == 0 {
				want = got
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d: mode %d diverged from postings reference:\ngot  %v\nwant %v",
					trial, mode, got, want)
			}
		}
	}
}

// TestBestMatchShardedDeterministic forces intra-query sharding (worker pool
// above 1 even on a single-core machine, shard threshold 1) and checks the
// result is identical to the serial path. Run under -race this also proves
// the scratch really is read-only during sharded scoring.
func TestBestMatchShardedDeterministic(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 60; trial++ {
		lib := testlib.RandomLibrary(r, 1+r.Intn(150), 40, 15, 7)
		h := testlib.RandomActivity(r, 40, 6)

		serial := NewBestMatch(lib)
		serial.mode = bmCandidateMajor
		serial.maxWorkers = 1

		sharded := NewBestMatch(lib)
		sharded.mode = bmCandidateMajor
		sharded.maxWorkers = 4
		sharded.shardMin = 1

		want := serial.Recommend(h, -1)
		for rep := 0; rep < 3; rep++ {
			if got := sharded.Recommend(h, -1); !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d rep %d: sharded ranking diverged:\ngot  %v\nwant %v",
					trial, rep, got, want)
			}
		}
	}
}

// TestBestMatchShardedConcurrentQueries hammers one sharded recommender from
// several goroutines at once — under -race this covers pool handoff plus
// concurrent sharded scoring.
func TestBestMatchShardedConcurrentQueries(t *testing.T) {
	r := rand.New(rand.NewSource(13))
	lib := testlib.RandomLibrary(r, 200, 40, 15, 7)
	bm := NewBestMatch(lib)
	bm.maxWorkers = 4
	bm.shardMin = 1

	activities := make([][]core.ActionID, 16)
	want := make([][]ScoredAction, len(activities))
	for i := range activities {
		activities[i] = testlib.RandomActivity(r, 40, 6)
		want[i] = bm.Recommend(activities[i], 10)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				j := (seed + i) % len(activities)
				if got := bm.Recommend(activities[j], 10); !reflect.DeepEqual(got, want[j]) {
					t.Errorf("concurrent query %d diverged", j)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestBestMatchGoalMajorScratchReuse runs many consecutive goal-major
// queries through one recommender: stale dot/sumsq/cnt residue between
// queries (or between goals within a query) would diverge from the postings
// reference.
func TestBestMatchGoalMajorScratchReuse(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	lib := testlib.RandomLibrary(r, 150, 30, 12, 7)
	gm := NewBestMatch(lib)
	gm.mode = bmGoalMajor
	ref := NewBestMatch(lib)
	ref.mode = bmPostings
	for i := 0; i < 200; i++ {
		h := testlib.RandomActivity(r, 30, 6)
		got := gm.Recommend(h, 8)
		want := ref.Recommend(h, 8)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d diverged from postings reference:\ngot  %v\nwant %v", i, got, want)
		}
	}
}

func TestBestMatchInvariants(t *testing.T) {
	strategyInvariants(t, func(l *core.Library) Recommender { return NewBestMatch(l) })
}

func TestBestMatchEuclideanInvariants(t *testing.T) {
	strategyInvariants(t, func(l *core.Library) Recommender {
		return NewBestMatchMetric(l, vectorspace.Euclidean)
	})
}
