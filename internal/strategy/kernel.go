package strategy

import (
	"context"
	"runtime"
	"sync"

	"goalrec/internal/core"
)

// The Focus and Breadth strategies both reduce to one pass over the
// implementation space IS(H). This file implements the shared machinery of
// their optimized scan (see DESIGN.md, "Scoring kernels & batching"):
//
//   - the counter kernel: accumulate every action's A-GI posting row into a
//     flat per-implementation counter array, so that cnt[p] == |A_p ∩ H| for
//     every associated implementation with no per-implementation set
//     intersections and no materialized, sorted IS(H);
//   - the shard plan: split the implementation-id space into contiguous
//     ranges, one GOMAXPROCS-bounded worker per range. Posting rows are
//     sorted, so each worker binary-searches its sub-rows and owns a
//     disjoint slice of the one shared counter array — a worker's counters
//     are final as soon as its own accumulation ends, and its visit phase
//     starts immediately with no cross-worker barrier.
//
// Every score the two strategies derive from the counters is either a
// ratio of the same integers the sequential path divides or a sum of
// integer-valued float64 terms (exact well below 2^53), and final ordering
// always goes through a total (score, tiebreak) order, so sharded results
// are bit-identical to the sequential kernel for every worker count.

// kernelShardMinStream is the default posting-stream size (total counter
// increments) below which sharding a query is not worth the goroutine
// overhead.
const kernelShardMinStream = 4096

// kernelRowChunk bounds how many posting entries are accumulated between
// context polls, so a cancellation lands mid-row on huge posting lists
// instead of waiting the row out.
const kernelRowChunk = 4096

// concurrency is the shared sharding configuration of the scan strategies.
// The zero value selects the production defaults.
type concurrency struct {
	maxWorkers int // ≤ 0 selects GOMAXPROCS
	shardMin   int // minimum posting stream to shard; ≤ 0 selects default
}

// workersFor resolves the worker count for one query: 1 (sequential) unless
// the posting stream clears the shard threshold and the host has cores to
// spare.
func (c concurrency) workersFor(stream, numImpls int) int {
	shardMin := c.shardMin
	if shardMin <= 0 {
		shardMin = kernelShardMinStream
	}
	workers := c.maxWorkers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if stream < shardMin || workers < 2 {
		return 1
	}
	if workers > numImpls {
		workers = numImpls
	}
	if workers < 2 {
		return 1
	}
	return workers
}

// overlapScratch is the pooled state of one kernel execution: the flat
// counter array and the per-shard first-touch lists that both index it and
// drive its re-zeroing.
type overlapScratch struct {
	cnt     []int32
	touched [][]core.ImplID
	// rowBufs holds one posting-decode buffer per shard, reused across
	// queries so compressed (mmap-backed) libraries decode blocks into
	// pooled memory instead of allocating per row. Raw libraries never
	// touch these: PostingRow returns a zero-copy view and leaves the
	// buffer untouched.
	rowBufs [][]core.ImplID
}

// shards returns the per-shard touched buffers, grown to n and truncated.
func (s *overlapScratch) shards(n int) [][]core.ImplID {
	for len(s.touched) < n {
		s.touched = append(s.touched, nil)
	}
	for len(s.rowBufs) < n {
		s.rowBufs = append(s.rowBufs, nil)
	}
	for i := 0; i < n; i++ {
		s.touched[i] = s.touched[i][:0]
	}
	return s.touched[:n]
}

// run executes the counter kernel over IS(h) with the given worker count and
// invokes visit once per shard, inside the shard's worker, as soon as that
// shard's counters are final. h must be sorted and deduplicated. The counter
// array is re-zeroed before run returns — on success and on abort alike —
// so the scratch always goes back to its pool clean. The first shard's
// error (by shard index) is returned, making the reported cause
// deterministic under concurrent cancellation.
func (s *overlapScratch) run(ctx context.Context, lib *core.Library, h []core.ActionID,
	workers int, visit func(shard int, touched []core.ImplID, tick *ticker) error) error {

	numImpls := lib.NumImplementations()
	if len(s.cnt) < numImpls {
		s.cnt = make([]int32, numImpls)
	}
	touched := s.shards(workers)

	var firstErr error
	if workers == 1 {
		tick := newTicker(ctx)
		firstErr = s.accumulate(lib, h, 0, core.ImplID(numImpls), 0, &tick)
		if firstErr == nil {
			firstErr = visit(0, touched[0], &tick)
		}
	} else {
		chunk := (numImpls + workers - 1) / workers
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := core.ImplID(w * chunk)
			hi := lo + core.ImplID(chunk)
			if hi > core.ImplID(numImpls) {
				hi = core.ImplID(numImpls)
			}
			wg.Add(1)
			go func(w int, lo, hi core.ImplID) {
				defer wg.Done()
				tick := newTicker(ctx)
				if err := s.accumulate(lib, h, lo, hi, w, &tick); err != nil {
					errs[w] = err
					return
				}
				errs[w] = visit(w, s.touched[w], &tick)
			}(w, lo, hi)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				firstErr = err
				break
			}
		}
	}

	// The pooled counters must go back clean even when a shard aborted
	// mid-accumulation: every increment was recorded in some touched list.
	for _, tl := range touched {
		for _, p := range tl {
			s.cnt[p] = 0
		}
	}
	return firstErr
}

// accumulate adds every posting row of h restricted to [lo, hi) into the
// counter array, recording first-touched implementations in shard w's
// touched list (including on abort, so cleanup stays exact).
func (s *overlapScratch) accumulate(lib *core.Library, h []core.ActionID,
	lo, hi core.ImplID, w int, tick *ticker) error {

	touched := s.touched[w]
	var err error
	for _, a := range h {
		var row []core.ImplID
		if lo == 0 && int(hi) == lib.NumImplementations() {
			row, s.rowBufs[w] = lib.PostingRow(a, s.rowBufs[w])
		} else {
			row, s.rowBufs[w] = lib.PostingRowRange(a, lo, hi, s.rowBufs[w])
		}
		for len(row) > 0 {
			n := len(row)
			if n > kernelRowChunk {
				n = kernelRowChunk
			}
			if err = tick.tick(n); err != nil {
				break
			}
			touched = core.AccumulateOverlapRow(row[:n], s.cnt, touched)
			row = row[n:]
		}
		if err != nil {
			break
		}
	}
	s.touched[w] = touched
	return err
}
