package strategy

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"goalrec/internal/core"
)

// benchLibrary mirrors the Figure 7 generator: `size` implementations of ~8
// uniform actions over a fixed action space, two implementations per goal.
// Shrinking the action space at fixed size raises connectivity, the axis that
// drives Best Match cost.
func benchLibrary(size, actions int, seed int64) *core.Library {
	r := rand.New(rand.NewSource(seed))
	b := core.NewBuilder(size, 8)
	for i := 0; i < size; i++ {
		n := 2 + r.Intn(12)
		acts := make([]core.ActionID, n)
		for j := range acts {
			acts[j] = core.ActionID(r.Intn(actions))
		}
		if _, err := b.Add(core.GoalID(i/2), acts); err != nil {
			panic(err)
		}
	}
	return b.Build()
}

func benchQueries(actions, n, length int, seed int64) [][]core.ActionID {
	r := rand.New(rand.NewSource(seed))
	qs := make([][]core.ActionID, n)
	for i := range qs {
		q := make([]core.ActionID, length)
		for j := range q {
			q[j] = core.ActionID(r.Intn(actions))
		}
		qs[i] = q
	}
	return qs
}

// benchCells sweeps connectivity at a fixed library size: 20k
// implementations over shrinking action spaces.
var benchCells = []struct {
	name    string
	actions int
}{
	{"conn-low", 8000},
	{"conn-mid", 2000},
	{"conn-high", 500},
}

// BenchmarkBestMatchModes compares the pre-AG postings walk against the two
// AG-idx scoring paths and the automatic cost-based choice on the same
// libraries and queries.
func BenchmarkBestMatchModes(b *testing.B) {
	for _, cell := range benchCells {
		lib := benchLibrary(20000, cell.actions, 3)
		queries := benchQueries(cell.actions, 64, 5, 4)
		conn := lib.Stats().Connectivity
		for _, m := range []struct {
			name string
			mode bmMode
		}{
			{"postings-old", bmPostings},
			{"candidate-major", bmCandidateMajor},
			{"goal-major", bmGoalMajor},
			{"auto", bmAuto},
		} {
			bm := NewBestMatch(lib)
			bm.mode = m.mode
			b.Run(fmt.Sprintf("%s/conn=%.0f/%s", cell.name, conn, m.name), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					bm.Recommend(queries[i%len(queries)], 10)
				}
			})
		}
	}
}

// BenchmarkBestMatchSharded measures the intra-query worker pool against the
// serial candidate-major path on the densest cell.
func BenchmarkBestMatchSharded(b *testing.B) {
	lib := benchLibrary(20000, 500, 3)
	queries := benchQueries(500, 64, 5, 4)
	for _, workers := range []int{1, 2, 4} {
		bm := NewBestMatch(lib)
		bm.mode = bmCandidateMajor
		bm.maxWorkers = workers
		bm.shardMin = 1
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				bm.Recommend(queries[i%len(queries)], 10)
			}
		})
	}
}

// BenchmarkScanKernelSharded measures the kernelized Focus/Breadth scan at
// worker counts {1, 2, 4} on the densest cell — the regime the sharded
// implementation scan targets. workers=1 is the sequential kernel the
// BENCH_PR4 speedups come from; higher counts show the intra-query scaling
// on multi-core hosts.
func BenchmarkScanKernelSharded(b *testing.B) {
	lib := benchLibrary(20000, 500, 3)
	queries := benchQueries(500, 64, 5, 4)
	for _, workers := range []int{1, 2, 4} {
		fc := NewFocus(lib, Completeness)
		fc.SetConcurrency(workers, 1)
		fcl := NewFocus(lib, Closeness)
		fcl.SetConcurrency(workers, 1)
		br := NewBreadth(lib)
		br.SetConcurrency(workers, 1)
		for _, rec := range []Recommender{fc, fcl, br} {
			rec := rec
			b.Run(fmt.Sprintf("%s/workers=%d", rec.Name(), workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					rec.Recommend(queries[i%len(queries)], 10)
				}
			})
		}
	}
}

// BenchmarkPrunedStrategies runs every strategy's threshold-aware scan — on
// both the natural and the impact-ordered layout — against its unpruned
// twin on the densest cell. Besides the comparison, this is the CI smoke
// that exercises every pruned code path at -benchtime=1x.
func BenchmarkPrunedStrategies(b *testing.B) {
	base := benchLibrary(20000, 500, 3)
	impact, _ := core.ImpactOrder(base)
	queries := benchQueries(500, 64, 5, 4)
	for _, layout := range []struct {
		name string
		lib  *core.Library
	}{{"plain", base}, {"impact", impact}} {
		build := []struct {
			name string
			mk   func(*core.Library) Recommender
		}{
			{"focus-cmp", func(l *core.Library) Recommender { return NewFocus(l, Completeness) }},
			{"focus-cl", func(l *core.Library) Recommender { return NewFocus(l, Closeness) }},
			{"breadth", func(l *core.Library) Recommender { return NewBreadth(l) }},
			{"best-match", func(l *core.Library) Recommender { return NewBestMatch(l) }},
		}
		for _, mk := range build {
			for _, pruned := range []bool{false, true} {
				rec := mk.mk(layout.lib)
				variant := "unpruned"
				if pruned {
					variant = "pruned"
					rec.(interface{ EnablePruning(*PruneStats) }).EnablePruning(nil)
				}
				b.Run(fmt.Sprintf("%s/%s/%s", layout.name, mk.name, variant), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						rec.Recommend(queries[i%len(queries)], 10)
					}
				})
			}
		}
	}
}

// BenchmarkTopKSelection compares the bounded-heap selection against the full
// sort it replaced, at the pool sizes a dense library produces.
func BenchmarkTopKSelection(b *testing.B) {
	r := rand.New(rand.NewSource(9))
	for _, n := range []int{1000, 100000} {
		pool := make([]ScoredAction, n)
		for i := range pool {
			pool[i] = ScoredAction{Action: core.ActionID(i), Score: -r.Float64()}
		}
		r.Shuffle(n, func(i, j int) { pool[i], pool[j] = pool[j], pool[i] })
		scratch := make([]ScoredAction, n)
		b.Run(fmt.Sprintf("n=%d/sort-old", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(scratch, pool)
				sort.Slice(scratch, func(i, j int) bool { return ranksBefore(scratch[i], scratch[j]) })
				_ = scratch[:10]
			}
		})
		b.Run(fmt.Sprintf("n=%d/heap-new", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				copy(scratch, pool)
				topKHeap(scratch, 10)
			}
		})
	}
}
