package strategy

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"goalrec/internal/core"
	"goalrec/internal/vectorspace"
)

// cancelAfterPolls is a deterministic cancellation source: its Err returns
// nil for the first n polls and context.Canceled afterwards, and its Done
// channel is non-nil (so the strategies' tickers engage) but never closes.
// It lets a test cancel a query exactly at a scoring checkpoint, with no
// timing dependence.
type cancelAfterPolls struct {
	n     int64
	polls atomic.Int64
	done  chan struct{}
}

func newCancelAfterPolls(n int64) *cancelAfterPolls {
	return &cancelAfterPolls{n: n, done: make(chan struct{})}
}

func (c *cancelAfterPolls) Deadline() (time.Time, bool)   { return time.Time{}, false }
func (c *cancelAfterPolls) Done() <-chan struct{}         { return c.done }
func (c *cancelAfterPolls) Value(interface{}) interface{} { return nil }
func (c *cancelAfterPolls) Err() error {
	if c.polls.Add(1) > c.n {
		return context.Canceled
	}
	return nil
}

// ctxTestRecommenders builds every context-aware recommender variant over
// lib: the four strategies plus each forced Best Match scoring path.
func ctxTestRecommenders(lib *core.Library) map[string]ContextRecommender {
	sharded := NewBestMatch(lib)
	sharded.mode = bmCandidateMajor
	sharded.shardMin = 1
	sharded.maxWorkers = 2
	candMajor := NewBestMatch(lib)
	candMajor.mode = bmCandidateMajor
	candMajor.shardMin = 1 << 30 // force serial
	goalMajor := NewBestMatch(lib)
	goalMajor.mode = bmGoalMajor
	postings := NewBestMatch(lib)
	postings.mode = bmPostings
	// Two-worker sharded kernels: with the ctxBigLibrary stream split in
	// half, each worker still crosses its own checkInterval checkpoint.
	shFocus := NewFocus(lib, Completeness)
	shFocus.SetConcurrency(2, 1)
	shBreadth := NewBreadth(lib)
	shBreadth.SetConcurrency(2, 1)
	return map[string]ContextRecommender{
		"focus-cmp":             NewFocus(lib, Completeness),
		"focus-cl":              NewFocus(lib, Closeness),
		"focus-sharded":         shFocus,
		"breadth":               NewBreadth(lib),
		"breadth-sharded":       shBreadth,
		"best-match-auto":       NewBestMatch(lib),
		"best-match-candidate":  candMajor,
		"best-match-sharded":    sharded,
		"best-match-goal-major": goalMajor,
		"best-match-postings":   postings,
		"best-match-manhattan":  NewBestMatchMetric(lib, vectorspace.Manhattan),
		"cached-breadth":        NewCached(NewBreadth(lib), 16),
	}
}

// ctxBigLibrary is sized so every scoring path crosses at least one
// checkInterval checkpoint: |IS(H)| and the candidate pool both exceed
// checkInterval, and the sharded path's per-worker chunks do too.
func ctxBigLibrary(t testing.TB) (*core.Library, []core.ActionID) {
	t.Helper()
	lib := benchLibrary(100000, 5000, 3)
	q := benchQueries(5000, 1, 10, 4)[0]
	if n := len(lib.ImplementationSpace(q)); n <= checkInterval {
		t.Fatalf("implementation space too small for checkpoint coverage: %d", n)
	}
	// The sharded path splits candidates across two workers, each with its
	// own checkpoint counter, so both chunks must exceed checkInterval.
	if n := len(lib.Candidates(q)); n <= 2*(checkInterval+64) {
		t.Fatalf("candidate pool too small for sharded checkpoint coverage: %d", n)
	}
	return lib, q
}

func TestRecommendContextMatchesRecommend(t *testing.T) {
	lib := benchLibrary(20000, 500, 3)
	queries := benchQueries(500, 8, 5, 4)
	for name, rec := range ctxTestRecommenders(lib) {
		t.Run(name, func(t *testing.T) {
			for _, q := range queries {
				want := rec.Recommend(q, 10)
				got, err := rec.RecommendContext(context.Background(), q, 10)
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				if len(got) != len(want) {
					t.Fatalf("len = %d, want %d", len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("result %d = %+v, want %+v", i, got[i], want[i])
					}
				}
			}
		})
	}
}

func TestRecommendContextPreCanceled(t *testing.T) {
	lib := benchLibrary(2000, 200, 3)
	q := benchQueries(200, 1, 5, 4)[0]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for name, rec := range ctxTestRecommenders(lib) {
		t.Run(name, func(t *testing.T) {
			got, err := rec.RecommendContext(ctx, q, 10)
			if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
			}
			if name == "cached-breadth" {
				return // hit-path may legitimately serve from cache
			}
			switch name {
			case "focus-cmp", "focus-cl", "focus-sharded":
				// Focus documents a partial-prefix return on cancellation.
			default:
				if got != nil {
					t.Errorf("canceled query returned results: %d", len(got))
				}
			}
		})
	}
}

func TestRecommendContextDeadlineExceeded(t *testing.T) {
	lib := benchLibrary(2000, 200, 3)
	q := benchQueries(200, 1, 5, 4)[0]
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	rec := NewBestMatch(lib)
	if _, err := rec.RecommendContext(ctx, q, 10); !errors.Is(err, context.DeadlineExceeded) || !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled wrapping context.DeadlineExceeded", err)
	}
}

// TestRecommendContextAbortsMidQuery cancels exactly at the first loop
// checkpoint (the entry check consumes the first poll) and requires every
// scoring path to abort with ErrCanceled rather than run to completion.
func TestRecommendContextAbortsMidQuery(t *testing.T) {
	lib, q := ctxBigLibrary(t)
	for name, rec := range ctxTestRecommenders(lib) {
		t.Run(name, func(t *testing.T) {
			ctx := newCancelAfterPolls(1)
			got, err := rec.RecommendContext(ctx, q, 10)
			if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
				t.Fatalf("err = %v, want ErrCanceled wrapping context.Canceled", err)
			}
			switch name {
			case "focus-cmp", "focus-cl", "focus-sharded", "cached-breadth":
				// Focus may return a valid partial prefix; Cached returns
				// whatever its inner aborted with.
			default:
				if got != nil {
					t.Errorf("aborted query returned %d results", len(got))
				}
			}
			if polls := ctx.polls.Load(); polls < 2 {
				t.Fatalf("query aborted before reaching a loop checkpoint (polls = %d)", polls)
			}
		})
	}
}

// TestRecommendContextScratchCleanAfterAbort pins that an aborted query
// leaves the pooled scratch state clean: the next (uncanceled) query on the
// same recommender instance must be bit-identical to a fresh instance.
func TestRecommendContextScratchCleanAfterAbort(t *testing.T) {
	lib, q := ctxBigLibrary(t)
	for name, rec := range ctxTestRecommenders(lib) {
		t.Run(name, func(t *testing.T) {
			if _, err := rec.RecommendContext(newCancelAfterPolls(1), q, 10); !errors.Is(err, ErrCanceled) {
				t.Fatalf("abort did not trigger: %v", err)
			}
			got, err := rec.RecommendContext(context.Background(), q, 10)
			if err != nil {
				t.Fatal(err)
			}
			fresh := ctxTestRecommenders(lib)[name].Recommend(q, 10)
			if fmt.Sprint(got) != fmt.Sprint(fresh) {
				t.Errorf("post-abort results diverge from a fresh recommender:\n got %v\nwant %v", got, fresh)
			}
		})
	}
}

// TestCachedContextCancellation pins the no-cache-on-abort rule.
func TestCachedContextCancellation(t *testing.T) {
	lib, q := ctxBigLibrary(t)
	c := NewCached(NewBreadth(lib), 16)
	if _, err := c.RecommendContext(newCancelAfterPolls(1), q, 10); !errors.Is(err, ErrCanceled) {
		t.Fatalf("abort did not trigger: %v", err)
	}
	if c.Len() != 0 {
		t.Fatalf("aborted query was cached: %d entries", c.Len())
	}
	want, err := c.RecommendContext(context.Background(), q, 10)
	if err != nil || len(want) == 0 {
		t.Fatalf("complete query failed: %v (%d results)", err, len(want))
	}
	if c.Len() != 1 {
		t.Fatalf("complete query not cached: %d entries", c.Len())
	}
	// A cache hit is served even under an already-canceled context.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	got, err := c.RecommendContext(ctx, q, 10)
	if err != nil {
		t.Fatalf("cache hit returned error: %v", err)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("cache hit diverges from cached value")
	}
}

// TestRecommendContextFallback covers recommenders without internal
// checkpoints (the baselines): the context is observed at entry only.
func TestRecommendContextFallback(t *testing.T) {
	inner := &countingRecommender{inner: NewBreadth(benchLibrary(200, 50, 3))}
	if _, err := RecommendContext(context.Background(), inner, []core.ActionID{1, 2}, 5); err != nil {
		t.Fatal(err)
	}
	if inner.calls != 1 {
		t.Fatalf("inner calls = %d, want 1", inner.calls)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RecommendContext(ctx, inner, []core.ActionID{1, 2}, 5); !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if inner.calls != 1 {
		t.Fatalf("canceled context still ran the inner recommender (calls = %d)", inner.calls)
	}
}
