package strategy

import (
	"context"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"goalrec/internal/core"
)

// Threshold-aware (bound-driven) top-k scanning for the three strategy
// families (see DESIGN.md, "Bounds & pruning"). Every pruned path keeps the
// floor of a bounded top-k/top-m heap and skips work that provably cannot
// reach it:
//
//   - Focus walks the posting rows in fixed-width implementation-id chunks
//     and skips whole block segments whose best-case completeness/closeness —
//     from the block-max |A_p| metadata and the chunk's active-row overlap
//     bound — falls strictly below the floor;
//   - Breadth re-ranks candidates in a MaxScore-style candidate-major walk
//     over ascending action ids, with a suffix-degree early exit once no
//     remaining candidate can beat the k-th score;
//   - Best Match orders candidates by goal degree and stops once the
//     degree-derived cosine upper bound drops below the k-th score.
//
// All skip tests are strict (<) and, where floats could round, computed in
// integers — so a pruned ranking is bit-identical to the unpruned kernel
// under the existing total tiebreak orders.

// PruneStats aggregates pruning-effectiveness counters across queries. All
// counters are cumulative and safe for concurrent use; a nil *PruneStats is a
// valid sink that records nothing.
type PruneStats struct {
	// BlocksSkipped / BlocksTotal count the posting-row block segments the
	// Focus scan proved irrelevant versus all segments it considered.
	BlocksSkipped atomic.Int64
	BlocksTotal   atomic.Int64
	// ImplsScored counts implementations whose materialized counters were
	// actually turned into scores; ImplsAssociated counts the posting
	// entries an unpruned kernel pass accumulates (Σ_{a∈H} |IS(a)| per
	// query), the denominator of the work-saved ratio.
	ImplsScored     atomic.Int64
	ImplsAssociated atomic.Int64
	// CandidatesScored / CandidatesSkipped count the candidate actions the
	// Breadth and Best Match upper-bound walks scored versus discarded.
	CandidatesScored  atomic.Int64
	CandidatesSkipped atomic.Int64
}

// PruneStatsSnapshot is a point-in-time copy of the counters, shaped for
// JSON metrics output.
type PruneStatsSnapshot struct {
	BlocksSkipped     int64 `json:"blocks_skipped"`
	BlocksTotal       int64 `json:"blocks_total"`
	ImplsScored       int64 `json:"impls_scored"`
	ImplsAssociated   int64 `json:"impls_associated"`
	CandidatesScored  int64 `json:"candidates_scored"`
	CandidatesSkipped int64 `json:"candidates_skipped"`
}

// Snapshot returns a consistent-enough copy of the counters (each counter is
// read atomically; the set is not a single linearization point).
func (s *PruneStats) Snapshot() PruneStatsSnapshot {
	if s == nil {
		return PruneStatsSnapshot{}
	}
	return PruneStatsSnapshot{
		BlocksSkipped:     s.BlocksSkipped.Load(),
		BlocksTotal:       s.BlocksTotal.Load(),
		ImplsScored:       s.ImplsScored.Load(),
		ImplsAssociated:   s.ImplsAssociated.Load(),
		CandidatesScored:  s.CandidatesScored.Load(),
		CandidatesSkipped: s.CandidatesSkipped.Load(),
	}
}

// pruneTally is the shard-local accumulator: hot loops bump plain ints and
// flush once, so the shared atomics never sit in a scan's inner loop.
type pruneTally struct {
	blocksSkipped, blocksTotal          int64
	implsScored, implsAssociated        int64
	candidatesScored, candidatesSkipped int64
}

// add flushes a tally into the shared counters. A nil receiver records
// nothing.
func (s *PruneStats) add(t *pruneTally) {
	if s == nil {
		return
	}
	if t.blocksSkipped != 0 {
		s.BlocksSkipped.Add(t.blocksSkipped)
	}
	if t.blocksTotal != 0 {
		s.BlocksTotal.Add(t.blocksTotal)
	}
	if t.implsScored != 0 {
		s.ImplsScored.Add(t.implsScored)
	}
	if t.implsAssociated != 0 {
		s.ImplsAssociated.Add(t.implsAssociated)
	}
	if t.candidatesScored != 0 {
		s.CandidatesScored.Add(t.candidatesScored)
	}
	if t.candidatesSkipped != 0 {
		s.CandidatesSkipped.Add(t.candidatesSkipped)
	}
}

// EnablePruning switches the strategy to its threshold-aware scan. Rankings
// stay bit-identical to the default kernel; stats (optional, may be nil)
// receives the effectiveness counters. It must be called before the strategy
// starts serving queries.
func (f *Focus) EnablePruning(stats *PruneStats) { f.pruning = true; f.stats = stats }

// EnablePruning switches the strategy to its threshold-aware scan. Rankings
// stay bit-identical to the default kernel; stats (optional, may be nil)
// receives the effectiveness counters. It must be called before the strategy
// starts serving queries.
func (b *Breadth) EnablePruning(stats *PruneStats) { b.pruning = true; b.stats = stats }

// EnablePruning switches the strategy to its threshold-aware scan. Rankings
// stay bit-identical to the default kernel; stats (optional, may be nil)
// receives the effectiveness counters. It must be called before the strategy
// starts serving queries.
func (bm *BestMatch) EnablePruning(stats *PruneStats) { bm.pruning = true; bm.stats = stats }

// ---------------------------------------------------------------------------
// Focus: block-max pruned counter scan
// ---------------------------------------------------------------------------

// prunedChunkIDs is the width, in implementation ids, of one Focus scan
// chunk. Chunks partition the id space, so every counter increment an
// implementation receives lands inside its own chunk — which is what makes
// the per-chunk active-row count a sound overlap bound.
const prunedChunkIDs = 8192

// focusFloor is the cross-shard score floor. Shards publish their local
// heap root once full and adopt the tighter of local and global at chunk
// boundaries; the floor only ever tightens, so a skip decided against any
// published value stays valid.
//
// Completeness packs the root's (overlap, |A_p|) pair as (c<<32)|n — both
// fit in 32 bits and n ≥ 1 keeps a set floor nonzero — and compares ratios
// by integer cross-multiplication. Closeness stores the root's missing
// count (≥ 1; smaller is tighter).
type focusFloor struct {
	cmp atomic.Uint64
	cl  atomic.Uint64
}

// publishCmp and publishCl report whether the call actually tightened the
// floor; the cross-node share counts tightenings for the scatter metrics.
func (g *focusFloor) publishCmp(c, n int64) bool {
	packed := uint64(c)<<32 | uint64(n)
	for {
		cur := g.cmp.Load()
		if cur != 0 {
			cc, cn := int64(cur>>32), int64(cur&0xffffffff)
			if c*cn <= cc*n {
				return false // current floor is at least as tight
			}
		}
		if g.cmp.CompareAndSwap(cur, packed) {
			return true
		}
	}
}

func (g *focusFloor) publishCl(missing int64) bool {
	for {
		cur := g.cl.Load()
		if cur != 0 && int64(cur) <= missing {
			return false
		}
		if g.cl.CompareAndSwap(cur, uint64(missing)) {
			return true
		}
	}
}

// prunedRow is one posting row of the pruned Focus scan. Positions are
// absolute within the full row so that position/PostingBlockEntries always
// indexes the row's block-max metadata. raw is the zero-copy row view and is
// what the hot loop indexes whenever the library stores postings
// uncompressed; for block-compressed (mmap-backed) rows raw is nil and the
// cursor decodes lazily instead — segment-boundary tests are answered from
// the block-max metadata, so a block the scan skips is never decompressed.
type prunedRow struct {
	raw      []core.ImplID
	cur      core.PostingRowCursor
	blk      core.PostingBlocks
	pos, end int
}

// recommendPruned is Focus's threshold-aware path. Each pass keeps only the
// m best implementations per shard; when deduplication starves the emission
// walk, m widens and the pass reruns, and a pass that pruned nothing is
// complete by construction, so the loop always terminates with the same
// output as the unpruned kernel.
func (f *Focus) recommendPruned(ctx context.Context, h []core.ActionID, stream, k int) ([]ScoredAction, error) {
	numImpls := f.lib.NumImplementations()
	workers := f.conc.workersFor(stream, numImpls)
	s := f.pool.Get().(*focusScratch)
	defer f.pool.Put(s)
	if len(s.cnt) < numImpls {
		s.cnt = make([]int32, numImpls)
	}
	if f.stats != nil {
		f.stats.ImplsAssociated.Add(int64(stream))
	}

	for m := k; ; m *= 4 {
		merged, prunedAny, err := f.prunedPass(ctx, h, workers, m, s, nil)
		if err != nil {
			return nil, err
		}
		tick := newTicker(ctx)
		if len(merged) <= m {
			// A pruned pass can only fall at or below m entries when either
			// nothing was pruned (the merge is the complete scored set) or
			// exactly one shard heap filled (the merge is exactly the true
			// top m): sorting the merge is exact in both cases.
			sortRankedImpls(merged)
			out, err := f.emit(merged, h, k, &tick)
			if err != nil || len(out) == k || !prunedAny {
				return out, err
			}
			continue // true top m emitted but starved: rescan wider
		}
		// Shard heaps may retain "junk" — implementations undercounted by a
		// skip — but every such score is strictly below the floor that
		// justified the skip, hence strictly below the true m-th best: exact
		// selection under the total order removes them all.
		s.sel = append(s.sel[:0], merged...)
		out, err := f.emit(topMRankedImpls(s.sel, m), h, k, &tick)
		if err != nil || len(out) == k {
			return out, err
		}
		if !prunedAny {
			// Nothing was pruned, so the merge is the complete scored set:
			// widen the selection in place, exactly like the unpruned path,
			// instead of rescanning.
			for sm := m * 4; ; sm *= 4 {
				if sm >= len(merged) {
					sortRankedImpls(merged)
					return f.emit(merged, h, k, &tick)
				}
				s.sel = append(s.sel[:0], merged...)
				out, err := f.emit(topMRankedImpls(s.sel, sm), h, k, &tick)
				if err != nil || len(out) == k {
					return out, err
				}
			}
		}
	}
}

// prunedPass runs one bounded-selection scan at heap size m and returns the
// concatenated shard heaps plus whether anything was pruned (a block skip or
// a heap eviction/rejection — i.e. whether any scored or skippable
// implementation was left out of the merge).
//
// ext, when non-nil, is an externally injected floor (the cross-node
// broadcast): it is adopted alongside the pass-local floor but never
// published to. It must bound the global k-th emission key independently of
// m — unlike the pass-local floor, which is only valid within its own pass
// and is created fresh here each call.
func (f *Focus) prunedPass(ctx context.Context, h []core.ActionID, workers, m int, s *focusScratch, ext *focusFloor) ([]rankedImpl, bool, error) {
	numImpls := f.lib.NumImplementations()
	s.shards(workers)
	ranked := s.shardRanked(workers)
	var gf focusFloor
	prunedBy := make([]bool, workers)

	var firstErr error
	if workers == 1 {
		tick := newTicker(ctx)
		prunedBy[0], firstErr = f.prunedShardScan(h, 0, core.ImplID(numImpls), m, s, 0, &gf, ext, &tick)
	} else {
		chunk := (numImpls + workers - 1) / workers
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := core.ImplID(w * chunk)
			hi := lo + core.ImplID(chunk)
			if lo > core.ImplID(numImpls) {
				lo = core.ImplID(numImpls)
			}
			if hi > core.ImplID(numImpls) {
				hi = core.ImplID(numImpls)
			}
			wg.Add(1)
			go func(w int, lo, hi core.ImplID) {
				defer wg.Done()
				tick := newTicker(ctx)
				prunedBy[w], errs[w] = f.prunedShardScan(h, lo, hi, m, s, w, &gf, ext, &tick)
			}(w, lo, hi)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				firstErr = err
				break
			}
		}
	}
	if firstErr != nil {
		return nil, false, firstErr
	}
	all := s.merged[:0]
	pruned := false
	for w := 0; w < workers; w++ {
		all = append(all, ranked[w]...)
		pruned = pruned || prunedBy[w]
	}
	s.merged = all
	return all, pruned, nil
}

// prunedShardScan scans [lo, hi) in id chunks, accumulating counters block
// segment by block segment and skipping segments whose best achievable score
// is strictly below the current floor. The m best implementations of the
// shard end up in s.perShard[shard]. Counters touched by the shard are
// re-zeroed before it returns — per chunk on the way, and for the partial
// chunk on abort — so the pooled scratch always comes back clean.
//
// Soundness of the skip tests: every counter increment for an implementation
// p of the current chunk comes from a row with an entry in the chunk, so
// |A_p ∩ H| ≤ active. With L = min |A_p| over the block,
//
//	completeness ≤ active/L  — skip iff active·fN < fC·L (floor fC/fN),
//	closeness    ≤ 1/(L−active) — skip iff L−active > fMiss (floor 1/fMiss),
//
// both evaluated in int64, so no float rounding can ever skip a true top-m
// implementation. The floor is a full heap's root, i.e. the m-th best of a
// subset of true-score-dominating entries, hence a lower bound on the global
// m-th best; strict inequality keeps tie layers unpruned.
func (f *Focus) prunedShardScan(h []core.ActionID, lo, hi core.ImplID, m int,
	s *focusScratch, shard int, gf, ext *focusFloor, tick *ticker) (bool, error) {

	lib := f.lib
	closeness := f.measure == Closeness
	sizeSorted := lib.ImplLenSorted()
	var tally pruneTally
	defer f.stats.add(&tally)

	compressed := lib.PostingsCompressed()
	rows := make([]prunedRow, 0, len(h))
	for _, a := range h {
		if !compressed {
			row := lib.ImplsOfAction(a)
			pos := sort.Search(len(row), func(i int) bool { return row[i] >= lo })
			end := pos + sort.Search(len(row)-pos, func(i int) bool { return row[pos+i] >= hi })
			if pos == end {
				continue
			}
			rows = append(rows, prunedRow{raw: row, blk: lib.ActionPostingBlocks(a), pos: pos, end: end})
			continue
		}
		cur := lib.PostingRowCursor(a)
		pos := cur.Search(0, cur.Len(), lo)
		end := cur.Search(pos, cur.Len(), hi)
		if pos == end {
			continue
		}
		rows = append(rows, prunedRow{cur: cur, blk: lib.ActionPostingBlocks(a), pos: pos, end: end})
	}

	heap := s.perShard[shard]
	touched := s.touched[shard]
	pruned := false
	full := false
	// Effective floor, ints only; a zero denominator/missing means unset.
	var fC, fN, fMiss int64

	adoptCl := func(g uint64) {
		if g != 0 {
			if miss := int64(g); fMiss == 0 || miss < fMiss {
				fMiss = miss
			}
		}
	}
	adoptCmp := func(packed uint64) {
		if packed != 0 {
			c, n := int64(packed>>32), int64(packed&0xffffffff)
			if fN == 0 || c*fN > fC*n {
				fC, fN = c, n
			}
		}
	}
	adoptGlobal := func() {
		if closeness {
			adoptCl(gf.cl.Load())
			if ext != nil {
				adoptCl(ext.cl.Load())
			}
			return
		}
		adoptCmp(gf.cmp.Load())
		if ext != nil {
			adoptCmp(ext.cmp.Load())
		}
	}
	publishRoot := func() {
		root := heap[0]
		if closeness {
			miss := int64(root.missing)
			if fMiss == 0 || miss < fMiss {
				fMiss = miss
			}
			gf.publishCl(miss)
			return
		}
		n := int64(lib.ImplLen(root.id))
		c := n - int64(root.missing)
		if fN == 0 || c*fN > fC*n {
			fC, fN = c, n
		}
		gf.publishCmp(c, n)
	}

	// Under a size-sorted (impact-ordered) layout the floor yields a global
	// id cutoff: an implementation's overlap is at most len(rows), so one
	// with |A_p| − len(rows) strictly too many missing actions (closeness) or
	// len(rows)/|A_p| strictly below the floor ratio (completeness) can never
	// rank — and neither can any later id, whose size is at least as large.
	// The scan then simply ends at the cutoff instead of block-testing the
	// whole tail. Both cutoff tests mirror the per-block tests: strict, and
	// in integers.
	effHi := hi
	rmax := int64(len(rows))
	// The floor only ever tightens, and both cutoff predicates are monotone
	// in id under the size-sorted layout, so an unchanged floor reproduces
	// the previous cutoff exactly — re-searching is pure overhead. clamped*
	// remember the floor of the last search.
	var clampedMiss, clampedC, clampedN int64
	clampEffHi := func(chunkLo core.ImplID) {
		if !sizeSorted {
			return
		}
		n := int(effHi - chunkLo)
		if n <= 0 {
			return
		}
		if closeness {
			if fMiss == 0 || fMiss == clampedMiss {
				return
			}
			clampedMiss = fMiss
			effHi = chunkLo + core.ImplID(sort.Search(n, func(i int) bool {
				return int64(lib.ImplLen(chunkLo+core.ImplID(i)))-rmax > fMiss
			}))
			return
		}
		if fN == 0 || (fC == clampedC && fN == clampedN) {
			return
		}
		clampedC, clampedN = fC, fN
		effHi = chunkLo + core.ImplID(sort.Search(n, func(i int) bool {
			return rmax*fN < fC*int64(lib.ImplLen(chunkLo+core.ImplID(i)))
		}))
	}

	// Chunk width: fixed without the size-sorted layout (narrow chunks keep
	// the active-row overlap bound tight, the only pruning lever available),
	// doubling with it — there the global cutoff does the pruning, per-chunk
	// work is pure overhead, and the floor the cutoff derives from converges
	// within the first few (smallest-implementation) chunks. clampEffHi at
	// every chunk start bounds how far a widened chunk can overshoot the
	// final cutoff.
	width := core.ImplID(prunedChunkIDs)
	var err error
scan:
	for chunkLo := lo; chunkLo < effHi; {
		adoptGlobal()
		clampEffHi(chunkLo)
		if chunkLo >= effHi {
			break
		}
		chunkHi := chunkLo + width
		if sizeSorted {
			width *= 2
		}
		if chunkHi > effHi {
			chunkHi = effHi
		}

		// Chunk overlap bound: rows holding at least one entry in the chunk.
		active := int64(0)
		for i := range rows {
			r := &rows[i]
			if r.pos >= r.end {
				continue
			}
			if r.raw != nil {
				if r.raw[r.pos] < chunkHi {
					active++
				}
			} else if !r.cur.AtLeast(r.pos, chunkHi) {
				active++
			}
		}
		if active == 0 {
			chunkLo = chunkHi
			continue
		}

		for i := range rows {
			r := &rows[i]
			// The raw and cursor walks are the same segment loop; the raw
			// copy indexes the row view directly so uncompressed libraries
			// pay no call overhead per segment.
			if row := r.raw; row != nil {
				for r.pos < r.end && row[r.pos] < chunkHi {
					j := r.pos / core.PostingBlockEntries
					blockEnd := (j + 1) * core.PostingBlockEntries
					if blockEnd > r.end {
						blockEnd = r.end
					}
					segEnd := blockEnd
					if row[blockEnd-1] >= chunkHi {
						p := r.pos
						segEnd = p + sort.Search(blockEnd-p, func(i int) bool { return row[p+i] >= chunkHi })
					}
					tally.blocksTotal++
					L := int64(r.blk.MinLen[j])
					var skip bool
					if closeness {
						skip = fMiss != 0 && L-active > fMiss
					} else {
						skip = fN != 0 && active*fN < fC*L
					}
					if skip {
						tally.blocksSkipped++
						pruned = true
					} else {
						touched = core.AccumulateOverlapRow(row[r.pos:segEnd], s.cnt, touched)
					}
					n := segEnd - r.pos
					r.pos = segEnd
					if err = tick.tick(n); err != nil {
						break scan
					}
				}
				continue
			}
			for r.pos < r.end && !r.cur.AtLeast(r.pos, chunkHi) {
				j := r.pos / core.PostingBlockEntries
				blockEnd := (j + 1) * core.PostingBlockEntries
				if blockEnd > r.end {
					blockEnd = r.end
				}
				segEnd := blockEnd
				if r.cur.AtLeast(blockEnd-1, chunkHi) {
					segEnd = r.cur.Search(r.pos, blockEnd, chunkHi)
				}
				tally.blocksTotal++
				L := int64(r.blk.MinLen[j])
				var skip bool
				if closeness {
					skip = fMiss != 0 && L-active > fMiss
				} else {
					skip = fN != 0 && active*fN < fC*L
				}
				if skip {
					tally.blocksSkipped++
					pruned = true
				} else {
					touched = core.AccumulateOverlapRow(r.cur.Slice(r.pos, segEnd), s.cnt, touched)
				}
				n := segEnd - r.pos
				r.pos = segEnd
				if err = tick.tick(n); err != nil {
					break scan
				}
			}
		}

		// Score and clear the chunk's implementations; later chunks see any
		// floor this chunk tightened.
		tally.implsScored += int64(len(touched))
		for _, p := range touched {
			overlap := int(s.cnt[p])
			s.cnt[p] = 0
			n := lib.ImplLen(p)
			missing := n - overlap
			if missing == 0 {
				continue // fully covered: nothing left to recommend
			}
			var score float64
			if closeness {
				score = 1 / float64(missing)
			} else {
				score = float64(overlap) / float64(n)
			}
			cand := rankedImpl{id: p, score: score, missing: missing}
			if !full {
				heap = append(heap, cand)
				if len(heap) == m {
					for i := m/2 - 1; i >= 0; i-- {
						implSiftDown(heap, i)
					}
					full = true
					publishRoot()
				}
				continue
			}
			if implRanksBefore(heap[0], cand) {
				pruned = true
				continue
			}
			heap[0] = cand
			implSiftDown(heap, 0)
			pruned = true
			publishRoot()
		}
		touched = touched[:0]
		chunkLo = chunkHi
	}
	if err == nil && effHi < hi {
		// The cutoff ended the scan early; every remaining posting entry was
		// excluded wholesale. Account for them as skipped blocks and mark the
		// pass pruned iff anything was actually left out.
		for i := range rows {
			r := &rows[i]
			if r.pos < r.end {
				segs := int64(r.end-r.pos+core.PostingBlockEntries-1) / int64(core.PostingBlockEntries)
				tally.blocksTotal += segs
				tally.blocksSkipped += segs
				pruned = true
			}
		}
	}
	if err != nil {
		for _, p := range touched {
			s.cnt[p] = 0
		}
		touched = touched[:0]
	}
	s.perShard[shard] = heap
	s.touched[shard] = touched
	return pruned, err
}

// ---------------------------------------------------------------------------
// Breadth: MaxScore-style candidate-major walk
// ---------------------------------------------------------------------------

// breadthPruneMaxK bounds the k for which Breadth's candidate-major pruned
// path engages: the walk's win comes from an early, high floor, which a very
// wide heap never provides.
const breadthPruneMaxK = 1024

// recommendPruned is Breadth's threshold-aware path: phase 1 materializes
// the overlap counters exactly like the kernel (sequential or sharded), then
// phase 2 re-derives each candidate's score candidate-by-candidate over
// ascending action ids, bounded by comm_max · min(|IS(a)|, touched). Under
// impact ordering the suffix-degree bound is exact at every position, so the
// walk stops as soon as the remaining candidates cannot reach the k-th
// score. All sums are integers in int64, converted once — identical to the
// kernel's exact float64 accumulation.
func (b *Breadth) recommendPruned(ctx context.Context, h []core.ActionID, stream, k int) ([]ScoredAction, error) {
	lib := b.lib
	numImpls := lib.NumImplementations()
	workers := b.conc.workersFor(stream, numImpls)
	s := b.pool.Get().(*breadthScratch)
	defer b.pool.Put(s)
	if len(s.cnt) < numImpls {
		s.cnt = make([]int32, numImpls)
	}
	touched := s.shards(workers)

	var tally pruneTally
	tally.implsAssociated = int64(stream)

	// Phase 1: counters only. Unlike run(), the counters must survive the
	// pass — phase 2 reads them per candidate — so cleanup is explicit here.
	var firstErr error
	if workers == 1 {
		tick := newTicker(ctx)
		firstErr = s.accumulate(lib, h, 0, core.ImplID(numImpls), 0, &tick)
	} else {
		chunk := (numImpls + workers - 1) / workers
		errs := make([]error, workers)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := core.ImplID(w * chunk)
			hi := lo + core.ImplID(chunk)
			if lo > core.ImplID(numImpls) {
				lo = core.ImplID(numImpls)
			}
			if hi > core.ImplID(numImpls) {
				hi = core.ImplID(numImpls)
			}
			wg.Add(1)
			go func(w int, lo, hi core.ImplID) {
				defer wg.Done()
				tick := newTicker(ctx)
				errs[w] = s.accumulate(lib, h, lo, hi, w, &tick)
			}(w, lo, hi)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				firstErr = err
				break
			}
		}
	}
	if firstErr != nil {
		for _, tl := range touched {
			for _, p := range tl {
				s.cnt[p] = 0
			}
		}
		return nil, firstErr
	}

	nTouched := int64(0)
	var cmax int32
	for _, tl := range touched {
		nTouched += int64(len(tl))
		for _, p := range tl {
			if c := s.cnt[p]; c > cmax {
				cmax = c
			}
		}
	}
	tally.implsScored = nTouched
	// comm_max caps any one implementation's contribution to a candidate.
	var commMax float64
	switch b.weighting {
	case Count:
		commMax = 1
	case Union:
		commMax = float64(int64(lib.MaxImplLen()) + int64(len(h)) - 1)
	default:
		commMax = float64(cmax)
	}

	for _, a := range h {
		if a >= 0 && int(a) < len(s.inH) {
			s.inH[a] = true
		}
	}
	defer func() {
		for _, a := range h {
			if a >= 0 && int(a) < len(s.inH) {
				s.inH[a] = false
			}
		}
		for _, tl := range touched {
			for _, p := range tl {
				s.cnt[p] = 0
			}
		}
		b.stats.add(&tally)
	}()

	// Cost model: the candidate-major walk rescans each candidate's posting
	// row — up to the entire A-GI-idx per query — while the action-major
	// finish only walks the touched implementations' action lists. The walk
	// can only win when the floor discards most of that rescan, which a
	// dense, high-degree index never allows; when its ceiling is far above
	// the action-major cost, finish action-major instead. Every comm is
	// integer-valued, so both finishes produce bit-identical rankings.
	actionCost := int64(0)
	for _, tl := range touched {
		for _, p := range tl {
			actionCost += int64(lib.ImplLen(p))
		}
	}
	if int64(lib.NumPostings()) > 4*actionCost {
		out, err := b.finishActionMajor(ctx, h, s, touched, k)
		if err == nil {
			tally.candidatesScored += int64(len(out))
		}
		return out, err
	}

	// Phase 2: candidate-major walk with a bounded k-heap. Both upper-bound
	// products stay far below 2^53, so the float comparisons are exact.
	heap := make([]ScoredAction, 0, k)
	full := false
	floor := 0.0
	tick := newTicker(ctx)
	nAct := lib.NumActions()
	for ai := 0; ai < nAct; ai++ {
		a := core.ActionID(ai)
		if full {
			ub := int64(lib.ActionDegreeSuffixMax(a))
			if ub > nTouched {
				ub = nTouched
			}
			if float64(ub)*commMax < floor {
				tally.candidatesSkipped += int64(nAct - ai)
				break
			}
		}
		if s.inH[a] {
			continue
		}
		deg := lib.ActionDegree(a)
		if deg == 0 {
			continue
		}
		if full {
			ub := int64(deg)
			if ub > nTouched {
				ub = nTouched
			}
			if float64(ub)*commMax < floor {
				tally.candidatesSkipped++
				continue
			}
		}
		var row []core.ImplID
		row, s.rowBuf = lib.PostingRow(a, s.rowBuf)
		if err := tick.tick(len(row)); err != nil {
			return nil, err
		}
		var sum int64
		switch b.weighting {
		case Count:
			for _, p := range row {
				if s.cnt[p] != 0 {
					sum++
				}
			}
		case Union:
			hn := int64(len(h))
			for _, p := range row {
				if c := int64(s.cnt[p]); c != 0 {
					sum += int64(lib.ImplLen(p)) + hn - c
				}
			}
		default:
			for _, p := range row {
				sum += int64(s.cnt[p])
			}
		}
		if sum == 0 {
			continue // not a candidate: no associated implementation contains it
		}
		tally.candidatesScored++
		cand := ScoredAction{Action: a, Score: float64(sum)}
		if !full {
			heap = append(heap, cand)
			if len(heap) == k {
				for i := k/2 - 1; i >= 0; i-- {
					heapSiftDown(heap, i)
				}
				full = true
				floor = heap[0].Score
			}
			continue
		}
		if ranksBefore(heap[0], cand) {
			continue
		}
		heap[0] = cand
		heapSiftDown(heap, 0)
		floor = heap[0].Score
	}
	if len(heap) == 0 {
		return nil, nil
	}
	sort.Slice(heap, func(i, j int) bool { return ranksBefore(heap[i], heap[j]) })
	return heap, nil
}

// finishActionMajor is the pruned Breadth path's fallback finish when the
// cost model rules out the candidate-major walk: the kernel's own phase-2
// scoring over the already-materialized counters, run sequentially (its
// cost, Σ_{p touched} |A_p|, is far below the accumulate pass that preceded
// it). The caller's deferred cleanup still owns the counters and inH.
func (b *Breadth) finishActionMajor(ctx context.Context, h []core.ActionID, s *breadthScratch, touched [][]core.ImplID, k int) ([]ScoredAction, error) {
	lib := b.lib
	scores := s.scores
	actions := s.actions[:0]
	tick := newTicker(ctx)
	var err error
score:
	for _, tl := range touched {
		for _, p := range tl {
			if err = tick.tick(1); err != nil {
				break score
			}
			var comm float64
			switch b.weighting {
			case Count:
				comm = 1
			case Union:
				comm = float64(lib.ImplLen(p) + len(h) - int(s.cnt[p]))
			default:
				comm = float64(s.cnt[p])
			}
			for _, a := range lib.Actions(p) {
				if s.inH[a] {
					continue
				}
				if scores[a] == 0 {
					actions = append(actions, a)
				}
				scores[a] += comm
			}
		}
	}
	if err != nil {
		for _, a := range actions {
			scores[a] = 0
		}
		s.actions = actions[:0]
		return nil, err
	}
	scored := make([]ScoredAction, 0, len(actions))
	for _, a := range actions {
		scored = append(scored, ScoredAction{Action: a, Score: scores[a]})
		scores[a] = 0
	}
	s.actions = actions[:0]
	return TopK(scored, k), nil
}

// ---------------------------------------------------------------------------
// Best Match: degree-bounded candidate ordering
// ---------------------------------------------------------------------------

// bmPruneMaxGoalSpace bounds the goal-space size for which the pruned cosine
// path engages: the prefix-sum preparation sorts the squared profile, so a
// huge goal space with few candidates would pay more than it saves.
const bmPruneMaxGoalSpace = 1 << 16

// bmUBSlack is the additive slack on the cosine upper bound. The bound is
// evaluated in floats whose summation error is bounded far below 1e-9, so
// 1e-6 makes the comparison safe in the only direction that matters: slack
// can only reduce pruning, never the result.
const bmUBSlack = 1e-6

// bmCand is one candidate with its distinct-goal degree, the sort key of the
// pruned walk.
type bmCand struct {
	a   core.ActionID
	deg int32
}

// scoreCosinePruned scores candidates best-bound-first: a candidate touching
// at most d goals of the goal space has ‖a⃗∩GS‖·cos ≤ ‖p_S‖ for some goal
// subset S, |S| ≤ d, so sim ≤ √prefix[min(d,|GS|)−1]/‖p‖ where prefix holds
// descending prefix sums of the squared profile. Candidates are walked in
// degree-descending order, making the bound non-increasing: the first
// candidate whose bound falls strictly below the k-th score ends the walk.
// Scored candidates use the exact same scoreOne floats as the unpruned
// paths, so the surviving top k is bit-identical.
func (bm *BestMatch) scoreCosinePruned(ctx context.Context, s *bmScratch, candidates []core.ActionID, profNorm float64, k int) ([]ScoredAction, error) {
	var tally pruneTally

	pf := append(s.prefix[:0], s.profile...)
	for i := range pf {
		pf[i] *= pf[i]
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(pf)))
	for i := 1; i < len(pf); i++ {
		pf[i] += pf[i-1]
	}
	s.prefix = pf

	ord := s.ord[:0]
	for _, a := range candidates {
		ord = append(ord, bmCand{a: a, deg: int32(bm.lib.GoalDegree(a))})
	}
	sort.Slice(ord, func(i, j int) bool {
		if ord[i].deg != ord[j].deg {
			return ord[i].deg > ord[j].deg
		}
		return ord[i].a < ord[j].a
	})
	s.ord = ord

	heap := make([]ScoredAction, 0, k)
	full := false
	floor := 0.0
	tick := newTicker(ctx)
	for i := range ord {
		c := ord[i]
		if full {
			t := int(c.deg)
			if t > len(pf) {
				t = len(pf)
			}
			ub := bmUBSlack - 1.0 // Score = −(1 − sim)
			if t > 0 {
				ub += math.Sqrt(pf[t-1]) / profNorm
			}
			if ub < floor {
				tally.candidatesSkipped += int64(len(ord) - i)
				break
			}
		}
		if err := tick.tick(1 + int(c.deg)); err != nil {
			bm.stats.add(&tally)
			return nil, err
		}
		tally.candidatesScored++
		cand := bm.scoreOne(s, c.a, profNorm)
		if !full {
			heap = append(heap, cand)
			if len(heap) == k {
				for j := k/2 - 1; j >= 0; j-- {
					heapSiftDown(heap, j)
				}
				full = true
				floor = heap[0].Score
			}
			continue
		}
		if ranksBefore(heap[0], cand) {
			continue
		}
		heap[0] = cand
		heapSiftDown(heap, 0)
		floor = heap[0].Score
	}
	bm.stats.add(&tally)
	sort.Slice(heap, func(i, j int) bool { return ranksBefore(heap[i], heap[j]) })
	return heap, nil
}
