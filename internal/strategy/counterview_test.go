package strategy

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"goalrec/internal/core"
	"goalrec/internal/intset"
	"goalrec/internal/testlib"
)

// viewPairs returns every (recommender, same-config recommender) pair the
// view oracle drives: the first scores from scratch, the second through
// RecommendView. Both are fresh instances so pooled scratch never crosses.
func viewPairs(lib *core.Library) map[string][2]Recommender {
	pairs := map[string][2]Recommender{
		"focus-cmp":     {NewFocus(lib, Completeness), NewFocus(lib, Completeness)},
		"focus-cl":      {NewFocus(lib, Closeness), NewFocus(lib, Closeness)},
		"breadth":       {NewBreadth(lib), NewBreadth(lib)},
		"breadth-count": {NewBreadthWeighted(lib, Count), NewBreadthWeighted(lib, Count)},
		"breadth-union": {NewBreadthWeighted(lib, Union), NewBreadthWeighted(lib, Union)},
		"best-match":    {NewBestMatch(lib), NewBestMatch(lib)},
	}
	// Forced Best Match modes: the view path must be exact through every
	// scoring backend, not just the auto-picked one.
	gm := [2]Recommender{NewBestMatch(lib), NewBestMatch(lib)}
	gm[0].(*BestMatch).mode, gm[1].(*BestMatch).mode = bmGoalMajor, bmGoalMajor
	pairs["best-match-goalmajor"] = gm
	pp := [2]Recommender{NewBestMatch(lib), NewBestMatch(lib)}
	pp[0].(*BestMatch).mode, pp[1].(*BestMatch).mode = bmPostings, bmPostings
	pairs["best-match-postings"] = pp
	// Pruned from-scratch vs exact view: the "bounds only apply to
	// from-scratch builds" split must still agree on the ranking.
	pf := [2]Recommender{NewFocus(lib, Closeness), NewFocus(lib, Closeness)}
	pf[0].(*Focus).EnablePruning(nil)
	pairs["focus-cl-pruned"] = pf
	pb := [2]Recommender{NewBreadth(lib), NewBreadth(lib)}
	pb[0].(*Breadth).EnablePruning(nil)
	pairs["breadth-pruned"] = pb
	return pairs
}

func checkViewEquiv(t *testing.T, lib *core.Library, v *CounterView, h []core.ActionID, k int) {
	t.Helper()
	for name, pr := range viewPairs(lib) {
		want := pr[0].Recommend(h, k)
		got, err := RecommendView(context.Background(), pr[1], v, k)
		if err != nil {
			t.Fatalf("%s: RecommendView: %v", name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: view ranking diverged (k=%d, h=%v):\ngot  %v\nwant %v", name, k, h, got, want)
		}
	}
}

// checkViewState pins the view's derived arrays against the library's own
// space operations: candidates and goal space must be set-identical to the
// from-scratch definitions.
func checkViewState(t *testing.T, lib *core.Library, v *CounterView, h []core.ActionID) {
	t.Helper()
	if want := lib.Candidates(h); !sameIDs(v.Candidates(nil), want) {
		t.Fatalf("view candidates = %v, want %v (h=%v)", v.Candidates(nil), want, h)
	}
	if want := lib.GoalSpace(intset.FromUnsorted(intset.Clone(h))); !sameIDs(v.goal, want) {
		t.Fatalf("view goal space = %v, want %v (h=%v)", v.goal, want, h)
	}
	for i, p := range v.impls {
		if int(v.lens[i]) != lib.ImplLen(p) {
			t.Fatalf("lens[%d] = %d, want %d", i, v.lens[i], lib.ImplLen(p))
		}
		if want := intset.IntersectionLen(lib.Actions(p), v.h); int(v.cnt[i]) != want {
			t.Fatalf("cnt[%v] = %d, want %d", p, v.cnt[i], want)
		}
	}
}

func sameIDs[T core.ActionID | core.GoalID | core.ImplID](a, b []T) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCounterViewMatchesFromScratch builds views over random libraries and
// asserts every strategy's view scoring is bit-identical to the from-scratch
// kernels — including the pruned ones, which views bypass.
func TestCounterViewMatchesFromScratch(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		n := 1 + r.Intn(900)
		actionSpace := 2 + r.Intn(28)
		lib := testlib.RandomLibrary(r, n, actionSpace, 18, 8)
		if trial%2 == 1 {
			lib, _ = core.ImpactOrder(lib)
		}
		for q := 0; q < 4; q++ {
			h := testlib.RandomActivity(r, actionSpace+4, 7) // may include unknown ids
			v := NewCounterView(lib, h)
			checkViewState(t, lib, v, h)
			for _, k := range []int{-1, 1, 3, 10} {
				checkViewEquiv(t, lib, v, h, k)
			}
		}
	}
}

// TestCounterViewApplyMatchesRebuild grows one view action by action —
// with deliberate duplicates — and pins every intermediate state against a
// fresh from-scratch build over the same prefix.
func TestCounterViewApplyMatchesRebuild(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for trial := 0; trial < 15; trial++ {
		actionSpace := 2 + r.Intn(20)
		lib := testlib.RandomLibrary(r, 1+r.Intn(600), actionSpace, 12, 7)
		v := NewCounterView(lib, nil)
		var h []core.ActionID
		for step := 0; step < 12; step++ {
			a := core.ActionID(r.Intn(actionSpace + 2))
			dup := intset.Contains(intset.FromUnsorted(intset.Clone(h)), a)
			if got := v.Apply(a); got == dup {
				t.Fatalf("Apply(%d) = %v with h=%v", a, got, h)
			}
			h = append(h, a)

			fresh := NewCounterView(lib, h)
			if !sameIDs(v.impls, fresh.impls) || !reflect.DeepEqual(v.cnt, fresh.cnt) ||
				!reflect.DeepEqual(v.lens, fresh.lens) || !sameIDs(v.acts, fresh.acts) ||
				!sameIDs(v.goal, fresh.goal) || !reflect.DeepEqual(v.gcnt, fresh.gcnt) {
				t.Fatalf("step %d: applied view diverged from rebuild (h=%v)\napplied: %+v\nrebuilt: %+v", step, h, v, fresh)
			}
			checkViewState(t, lib, v, h)
			checkViewEquiv(t, lib, v, h, 5)
		}
	}
}

// TestCounterViewAdvanceTo extends a DynamicLibrary under a live view and
// asserts the delta replay reproduces a from-scratch build over the new
// snapshot exactly — state and rankings.
func TestCounterViewAdvanceTo(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	for trial := 0; trial < 15; trial++ {
		dyn := core.NewDynamicLibrary()
		actionSpace := 2 + r.Intn(20)
		addRandom := func(n int) {
			for i := 0; i < n; i++ {
				acts := make([]core.ActionID, 1+r.Intn(6))
				for j := range acts {
					acts[j] = core.ActionID(r.Intn(actionSpace))
				}
				if _, err := dyn.Add(core.GoalID(r.Intn(10)), acts); err != nil {
					t.Fatal(err)
				}
			}
		}
		addRandom(1 + r.Intn(200))
		lib := dyn.Snapshot()
		h := testlib.RandomActivity(r, actionSpace+3, 6)
		v := NewCounterView(lib, h)

		// A few rounds of grow → advance, including a no-growth republish.
		for round := 0; round < 3; round++ {
			if round != 1 {
				addRandom(1 + r.Intn(120))
			}
			next := dyn.Snapshot()
			v.AdvanceTo(next)
			if v.Lib() != next {
				t.Fatal("AdvanceTo did not adopt the new snapshot")
			}
			fresh := NewCounterView(next, h)
			if !sameIDs(v.impls, fresh.impls) || !reflect.DeepEqual(v.cnt, fresh.cnt) ||
				!reflect.DeepEqual(v.lens, fresh.lens) || !sameIDs(v.acts, fresh.acts) ||
				!sameIDs(v.goal, fresh.goal) || !reflect.DeepEqual(v.gcnt, fresh.gcnt) {
				t.Fatalf("round %d: advanced view diverged from rebuild (h=%v)", round, h)
			}
			checkViewState(t, next, v, h)
			checkViewEquiv(t, next, v, h, 5)
			// Appends after the advance must land on the new postings.
			a := core.ActionID(r.Intn(actionSpace + 2))
			v.Apply(a)
			fresh.Apply(a)
			if !reflect.DeepEqual(v.cnt, fresh.cnt) || !sameIDs(v.impls, fresh.impls) {
				t.Fatalf("round %d: post-advance Apply diverged", round)
			}
			h = append([]core.ActionID(nil), v.h...)
		}
	}
}

// TestRecommendViewDispatch covers the package-level dispatcher: cache
// wrappers unwrap to the view path, and a view scored against a strategy
// over a different snapshot is rejected.
func TestRecommendViewDispatch(t *testing.T) {
	lib := testlib.PaperLibrary()
	h := []core.ActionID{0, 3}
	v := NewCounterView(lib, h)

	cached := NewCached(NewFocus(lib, Closeness), 8)
	got, err := RecommendView(context.Background(), cached, v, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := NewFocus(lib, Closeness).Recommend(h, 3)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("cached dispatch = %v, want %v", got, want)
	}
	if hits, misses := cached.Stats(); hits != 0 || misses != 0 {
		t.Fatalf("view query went through the cache (hits=%d misses=%d)", hits, misses)
	}

	other := testlib.RandomLibrary(rand.New(rand.NewSource(1)), 20, 8, 4, 4)
	for name, rec := range map[string]Recommender{
		"focus":      NewFocus(other, Completeness),
		"breadth":    NewBreadth(other),
		"best-match": NewBestMatch(other),
	} {
		if _, err := RecommendView(context.Background(), rec, v, 3); err != ErrViewLibrary {
			t.Fatalf("%s: stale view accepted (err=%v)", name, err)
		}
	}
}
