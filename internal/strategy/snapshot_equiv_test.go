package strategy

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"goalrec/internal/core"
	"goalrec/internal/intset"
	"goalrec/internal/testlib"
)

// openSnapshotLibrary round-trips lib through an on-disk snapshot and returns
// the mmap-backed load.
func openSnapshotLibrary(t *testing.T, lib *core.Library, compress bool) *core.Library {
	t.Helper()
	path := filepath.Join(t.TempDir(), "lib.gsnp")
	if err := core.WriteSnapshotFile(path, lib, nil, core.SnapshotOptions{CompressPostings: compress}); err != nil {
		t.Fatalf("WriteSnapshotFile: %v", err)
	}
	snap, err := core.OpenSnapshot(path)
	if err != nil {
		t.Fatalf("OpenSnapshot: %v", err)
	}
	t.Cleanup(func() { snap.Close() })
	return snap.Library()
}

// checkSnapshotEquiv asserts that a library loaded back from a snapshot —
// raw and block-compressed — ranks bit-identically to the in-memory builder
// library on every strategy, plain and pruned, sequential and sharded.
func checkSnapshotEquiv(t *testing.T, lib *core.Library, h []core.ActionID, k int) {
	t.Helper()
	for _, compress := range []bool{false, true} {
		mlib := openSnapshotLibrary(t, lib, compress)

		type variant struct {
			name string
			mk   func(l *core.Library) Recommender
		}
		var variants []variant
		for _, m := range []FocusMeasure{Completeness, Closeness} {
			m := m
			for _, pruned := range []bool{false, true} {
				pruned := pruned
				variants = append(variants, variant{
					name: fmt.Sprintf("%s/pruned=%v", m, pruned),
					mk: func(l *core.Library) Recommender {
						f := NewFocus(l, m)
						f.SetConcurrency(4, 1)
						if pruned {
							f.EnablePruning(nil)
						}
						return f
					},
				})
			}
		}
		for _, w := range []BreadthWeighting{Overlap, Count, Union} {
			w := w
			for _, pruned := range []bool{false, true} {
				pruned := pruned
				variants = append(variants, variant{
					name: fmt.Sprintf("breadth-%s/pruned=%v", w, pruned),
					mk: func(l *core.Library) Recommender {
						b := NewBreadthWeighted(l, w)
						b.SetConcurrency(4, 1)
						if pruned {
							b.EnablePruning(nil)
						}
						return b
					},
				})
			}
		}
		for _, pruned := range []bool{false, true} {
			pruned := pruned
			variants = append(variants, variant{
				name: fmt.Sprintf("best-match/pruned=%v", pruned),
				mk: func(l *core.Library) Recommender {
					bm := NewBestMatch(l)
					if pruned {
						bm.EnablePruning(nil)
					}
					return bm
				},
			})
		}

		for _, v := range variants {
			want := v.mk(lib).Recommend(h, k)
			got := v.mk(mlib).Recommend(h, k)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("compress=%v %s: snapshot ranking diverged (k=%d, h=%v):\ngot  %v\nwant %v",
					compress, v.name, k, h, got, want)
			}
		}

		// The same rankings must hold with the shared decoded-block cache
		// enabled. Two passes: the first lets the doorkeeper admit the hot
		// blocks, the second serves from cache — both must stay bit-identical
		// to the cache-off builder ranking.
		core.SetBlockCacheBytes(4 << 20)
		t.Cleanup(func() { core.SetBlockCacheBytes(0) })
		for pass := 0; pass < 2; pass++ {
			for _, v := range variants {
				want := v.mk(lib).Recommend(h, k)
				got := v.mk(mlib).Recommend(h, k)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("compress=%v cached pass %d %s: ranking diverged (k=%d, h=%v):\ngot  %v\nwant %v",
						compress, pass, v.name, k, h, got, want)
				}
			}
		}
		core.SetBlockCacheBytes(0)
	}
}

// TestSnapshotRankingsMatchBuilder drives all strategies over mmap-loaded
// snapshots of random libraries, alternating plain and impact-ordered
// layouts (the latter exercises the pruned cutoff paths on compressed rows).
func TestSnapshotRankingsMatchBuilder(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 6; trial++ {
		n := 1 + r.Intn(1500)
		actionSpace := 2 + r.Intn(24)
		lib := testlib.RandomLibrary(r, n, actionSpace, 20, 9)
		if trial%2 == 1 {
			lib, _ = core.ImpactOrder(lib)
		}
		h := intset.FromUnsorted(testlib.RandomActivity(r, actionSpace, 6))
		k := 1 + r.Intn(15)
		checkSnapshotEquiv(t, lib, h, k)
	}
}

// FuzzSnapshotRoundTrip derives a random library and activity from the
// fuzzed seeds, writes the library to a snapshot file, loads it back via
// mmap, and asserts every strategy's ranking — pruned paths included — is
// bit-identical to the in-memory builder library.
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add(int64(1), int64(2))
	f.Add(int64(42), int64(77))
	f.Add(int64(-9), int64(1<<40))
	f.Fuzz(func(t *testing.T, libSeed, querySeed int64) {
		r := rand.New(rand.NewSource(libSeed))
		n := 1 + r.Intn(600)
		actionSpace := 2 + r.Intn(30)
		lib := testlib.RandomLibrary(r, n, actionSpace, 15, 8)
		if libSeed%2 == 0 {
			lib, _ = core.ImpactOrder(lib)
		}
		qr := rand.New(rand.NewSource(querySeed))
		h := intset.FromUnsorted(testlib.RandomActivity(qr, actionSpace, 6))
		k := 1 + qr.Intn(12)
		checkSnapshotEquiv(t, lib, h, k)
		// The pruned-vs-plain invariant must also hold on the compressed
		// mmap-backed library itself.
		checkPrunedEquiv(t, openSnapshotLibrary(t, lib, true), h, k)
	})
}
