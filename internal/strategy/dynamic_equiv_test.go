package strategy_test

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"goalrec/internal/core"
	"goalrec/internal/strategy"
)

// randomImpl draws one implementation over a small id universe so goals and
// actions collide heavily — the regime where incremental index extension has
// the most merging to get right.
func randomImpl(rng *rand.Rand) (core.GoalID, []core.ActionID) {
	goal := core.GoalID(rng.Intn(15))
	acts := make([]core.ActionID, 1+rng.Intn(4))
	for i := range acts {
		acts[i] = core.ActionID(rng.Intn(30))
	}
	return goal, acts
}

// randomActivity draws a query activity, sometimes including actions the
// library has never seen.
func randomActivity(rng *rand.Rand) []core.ActionID {
	h := make([]core.ActionID, 1+rng.Intn(4))
	for i := range h {
		h[i] = core.ActionID(rng.Intn(35))
	}
	return h
}

// rankings returns the full best-first lists (k = -1) of all four goal-based
// strategies over lib for each activity, with Focus and Breadth contributing
// both their sequential and their forced-sharded (4-worker) kernels — every
// snapshot comparison below therefore pins the sharded scan too.
func rankings(lib *core.Library, activities [][]core.ActionID) [][]strategy.ScoredAction {
	shFocus := strategy.NewFocus(lib, strategy.Completeness)
	shFocus.SetConcurrency(4, 1)
	shBreadth := strategy.NewBreadth(lib)
	shBreadth.SetConcurrency(4, 1)
	recs := []strategy.Recommender{
		strategy.NewFocus(lib, strategy.Completeness),
		strategy.NewFocus(lib, strategy.Closeness),
		strategy.NewBreadth(lib),
		strategy.NewBestMatch(lib),
		shFocus,
		shBreadth,
	}
	var out [][]strategy.ScoredAction
	for _, rec := range recs {
		for _, h := range activities {
			out = append(out, rec.Recommend(h, -1))
		}
	}
	return out
}

// TestDynamicSnapshotStrategyEquivalence grows a DynamicLibrary through a
// random add sequence and checks, at every step, that its snapshot is
// indistinguishable from a fresh Builder.Build() over the same
// implementations: same stats, same goal/action spaces, and bit-identical
// full rankings from all four strategies — through both the overlay-extend
// and the compaction snapshot paths.
func TestDynamicSnapshotStrategyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	dyn := core.NewDynamicLibrary()
	dyn.SetCompactionThreshold(6) // force frequent extend/compact interleaving
	var bld core.Builder

	type frozen struct {
		snap *core.Library
		ref  *core.Library
	}
	var held []frozen

	const steps = 200
	for i := 0; i < steps; i++ {
		goal, acts := randomImpl(rng)
		if _, err := dyn.Add(goal, acts); err != nil {
			t.Fatalf("step %d: dynamic Add: %v", i, err)
		}
		if _, err := bld.Add(goal, acts); err != nil {
			t.Fatalf("step %d: builder Add: %v", i, err)
		}
		snap := dyn.Snapshot()
		ref := bld.Build()

		if got, want := snap.Stats(), ref.Stats(); got != want {
			t.Fatalf("step %d: stats diverge:\n got %v\nwant %v", i, got, want)
		}
		activities := make([][]core.ActionID, 6)
		for j := range activities {
			activities[j] = randomActivity(rng)
		}
		for _, h := range activities {
			if got, want := snap.GoalSpace(h), ref.GoalSpace(h); !reflect.DeepEqual(got, want) {
				t.Fatalf("step %d: GoalSpace(%v) = %v, want %v", i, h, got, want)
			}
			if got, want := snap.ActionSpace(h), ref.ActionSpace(h); !reflect.DeepEqual(got, want) {
				t.Fatalf("step %d: ActionSpace(%v) = %v, want %v", i, h, got, want)
			}
		}
		if got, want := rankings(snap, activities), rankings(ref, activities); !reflect.DeepEqual(got, want) {
			t.Fatalf("step %d: strategy rankings diverge", i)
		}
		if i%25 == 0 {
			held = append(held, frozen{snap: snap, ref: ref})
		}
	}

	// Every held snapshot must still answer exactly as its frozen reference,
	// untouched by the 200 appends that followed it.
	activities := make([][]core.ActionID, 8)
	for j := range activities {
		activities[j] = randomActivity(rng)
	}
	for i, f := range held {
		if got, want := f.snap.Stats(), f.ref.Stats(); got != want {
			t.Fatalf("held %d: stats mutated:\n got %v\nwant %v", i, got, want)
		}
		if got, want := rankings(f.snap, activities), rankings(f.ref, activities); !reflect.DeepEqual(got, want) {
			t.Fatalf("held %d: rankings mutated", i)
		}
	}
}

// TestShardedSequentialBitIdentical pins that the sharded implementation
// scan returns rankings bit-identical to the sequential kernel — scores
// included — at worker counts {1, 4}, for both Focus measures and all three
// Breadth weightings. Run under -race this also proves the workers share no
// mutable state.
func TestShardedSequentialBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var bld core.Builder
	for i := 0; i < 600; i++ {
		goal, acts := randomImpl(rng)
		if _, err := bld.Add(goal, acts); err != nil {
			t.Fatal(err)
		}
	}
	lib := bld.Build()

	type build func(lib *core.Library, workers int) strategy.Recommender
	builders := map[string]build{
		"focus-cmp": func(lib *core.Library, w int) strategy.Recommender {
			f := strategy.NewFocus(lib, strategy.Completeness)
			f.SetConcurrency(w, 1)
			return f
		},
		"focus-cl": func(lib *core.Library, w int) strategy.Recommender {
			f := strategy.NewFocus(lib, strategy.Closeness)
			f.SetConcurrency(w, 1)
			return f
		},
		"breadth-overlap": func(lib *core.Library, w int) strategy.Recommender {
			b := strategy.NewBreadthWeighted(lib, strategy.Overlap)
			b.SetConcurrency(w, 1)
			return b
		},
		"breadth-count": func(lib *core.Library, w int) strategy.Recommender {
			b := strategy.NewBreadthWeighted(lib, strategy.Count)
			b.SetConcurrency(w, 1)
			return b
		},
		"breadth-union": func(lib *core.Library, w int) strategy.Recommender {
			b := strategy.NewBreadthWeighted(lib, strategy.Union)
			b.SetConcurrency(w, 1)
			return b
		},
	}

	activities := make([][]core.ActionID, 60)
	for i := range activities {
		activities[i] = randomActivity(rng)
	}
	for name, mk := range builders {
		t.Run(name, func(t *testing.T) {
			seq := mk(lib, 1)
			sharded := mk(lib, 4)
			for i, h := range activities {
				for _, k := range []int{-1, 1, 5} {
					want := seq.Recommend(h, k)
					got := sharded.Recommend(h, k)
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("activity %d, k=%d: sharded diverges from sequential:\ngot  %v\nwant %v", i, k, got, want)
					}
				}
			}
		})
	}
}

// TestDynamicSnapshotConcurrentReaders keeps readers querying old snapshots
// (against frozen references) while a writer appends and snapshots; under
// -race this proves snapshot extension never touches memory a reader sees.
func TestDynamicSnapshotConcurrentReaders(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	dyn := core.NewDynamicLibrary()
	dyn.SetCompactionThreshold(8)
	var bld core.Builder
	for i := 0; i < 50; i++ {
		goal, acts := randomImpl(rng)
		if _, err := dyn.Add(goal, acts); err != nil {
			t.Fatal(err)
		}
		if _, err := bld.Add(goal, acts); err != nil {
			t.Fatal(err)
		}
	}
	snap := dyn.Snapshot()
	ref := bld.Build()
	activities := make([][]core.ActionID, 8)
	for j := range activities {
		activities[j] = randomActivity(rng)
	}
	want := rankings(ref, activities)

	// Pre-draw the writer's implementations so goroutines never share rng.
	type impl struct {
		goal core.GoalID
		acts []core.ActionID
	}
	pending := make([]impl, 300)
	for i := range pending {
		pending[i].goal, pending[i].acts = randomImpl(rng)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, p := range pending {
			if _, err := dyn.Add(p.goal, p.acts); err != nil {
				t.Errorf("concurrent Add: %v", err)
				return
			}
			dyn.Snapshot()
		}
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				if got := rankings(snap, activities); !reflect.DeepEqual(got, want) {
					t.Error("old snapshot's rankings changed during appends")
					return
				}
			}
		}()
	}
	wg.Wait()

	if got, want := dyn.Snapshot().NumImplementations(), 50+len(pending); got != want {
		t.Fatalf("final size = %d, want %d", got, want)
	}
}
