package strategy

import (
	"reflect"
	"sync"
	"testing"

	"goalrec/internal/core"
	"goalrec/internal/testlib"
)

// countingRecommender counts how often the inner strategy actually runs.
type countingRecommender struct {
	inner Recommender
	mu    sync.Mutex
	calls int
}

func (c *countingRecommender) Name() string { return c.inner.Name() }

func (c *countingRecommender) Recommend(h []core.ActionID, k int) []ScoredAction {
	c.mu.Lock()
	c.calls++
	c.mu.Unlock()
	return c.inner.Recommend(h, k)
}

func TestCachedReturnsSameResults(t *testing.T) {
	lib := testlib.PaperLibrary()
	plain := NewBreadth(lib)
	cached := NewCached(NewBreadth(lib), 16)
	if cached.Name() != "breadth" {
		t.Errorf("Name = %q", cached.Name())
	}
	for _, h := range [][]core.ActionID{acts(0), acts(0, 1), acts(1, 2), nil} {
		want := plain.Recommend(h, 4)
		got := cached.Recommend(h, 4)
		again := cached.Recommend(h, 4)
		if !reflect.DeepEqual(got, want) || !reflect.DeepEqual(again, want) {
			t.Errorf("cached output diverged for %v", h)
		}
	}
}

func TestCachedHitsPermutations(t *testing.T) {
	lib := testlib.PaperLibrary()
	counter := &countingRecommender{inner: NewBreadth(lib)}
	cached := NewCached(counter, 16)

	cached.Recommend(acts(0, 1), 4)
	cached.Recommend(acts(1, 0), 4)    // permutation → cache hit
	cached.Recommend(acts(1, 0, 1), 4) // duplicates → cache hit
	if counter.calls != 1 {
		t.Errorf("inner calls = %d, want 1", counter.calls)
	}
	hits, misses := cached.Stats()
	if hits != 2 || misses != 1 {
		t.Errorf("stats = %d hits, %d misses", hits, misses)
	}
	// Different k is a different entry.
	cached.Recommend(acts(0, 1), 5)
	if counter.calls != 2 {
		t.Errorf("k variation not separated: calls = %d", counter.calls)
	}
}

func TestCachedEviction(t *testing.T) {
	lib := testlib.PaperLibrary()
	counter := &countingRecommender{inner: NewBreadth(lib)}
	cached := NewCached(counter, 2)

	cached.Recommend(acts(0), 4)
	cached.Recommend(acts(1), 4)
	cached.Recommend(acts(2), 4) // evicts acts(0)
	if cached.Len() != 2 {
		t.Errorf("Len = %d, want 2", cached.Len())
	}
	cached.Recommend(acts(0), 4) // miss again
	if counter.calls != 4 {
		t.Errorf("calls = %d, want 4 (eviction forced recompute)", counter.calls)
	}
	// Recently used entry survived.
	cached.Recommend(acts(2), 4)
	if counter.calls != 4 {
		t.Errorf("calls = %d, recently-used entry evicted", counter.calls)
	}
}

func TestCachedResultIsolation(t *testing.T) {
	lib := testlib.PaperLibrary()
	cached := NewCached(NewBreadth(lib), 8)
	first := cached.Recommend(acts(0, 1), 4)
	if len(first) == 0 {
		t.Fatal("no results")
	}
	first[0].Action = 99 // mutate the returned copy
	second := cached.Recommend(acts(0, 1), 4)
	if second[0].Action == 99 {
		t.Error("cache shares memory with callers")
	}
}

func BenchmarkCachedHit(b *testing.B) {
	lib := testlib.PaperLibrary()
	cached := NewCached(NewBreadth(lib), 64)
	h := acts(0, 1)
	cached.Recommend(h, 5) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cached.Recommend(h, 5)
	}
}

func TestCachedConcurrent(t *testing.T) {
	lib := testlib.PaperLibrary()
	cached := NewCached(NewBreadth(lib), 4)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				h := acts(core.ActionID(j % 6))
				if got := cached.Recommend(h, 3); len(got) == 0 && len(lib.Candidates(h)) > 0 {
					t.Errorf("empty result for %v", h)
				}
			}
		}(i)
	}
	wg.Wait()
}
