package strategy

// Brute-force oracle tests: each strategy is re-implemented here directly
// from the paper's formulas, with no indexes and no shortcuts, and checked
// against the optimized implementations on random libraries. These are the
// strongest correctness guarantees in the package: any index bug, scratch
// reuse bug or tie-break drift shows up as an oracle divergence.

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"goalrec/internal/core"
	"goalrec/internal/intset"
	"goalrec/internal/testlib"
)

// oracleLibrary is the index-free view: a plain list of implementations.
type oracleLibrary struct {
	impls []core.Implementation
}

func newOracle(lib *core.Library) *oracleLibrary {
	o := &oracleLibrary{}
	for p := 0; p < lib.NumImplementations(); p++ {
		o.impls = append(o.impls, lib.Implementation(core.ImplID(p)))
	}
	return o
}

// associated returns the indexes of implementations sharing an action with
// h, by linear scan.
func (o *oracleLibrary) associated(h []core.ActionID) []int {
	var out []int
	for i, impl := range o.impls {
		if intset.IntersectionLen(impl.Actions, h) > 0 {
			out = append(out, i)
		}
	}
	return out
}

// oracleFocus ranks implementations by the measure and pops missing actions,
// exactly as Section 5.1 + C.2.2 describe.
func (o *oracleLibrary) oracleFocus(h []core.ActionID, measure FocusMeasure, k int) []core.ActionID {
	type ri struct {
		idx     int
		score   float64
		missing int
	}
	var ranked []ri
	for _, i := range o.associated(h) {
		impl := o.impls[i]
		missing := intset.DifferenceLen(impl.Actions, h)
		if missing == 0 {
			continue
		}
		var score float64
		if measure == Closeness {
			score = 1 / float64(missing)
		} else {
			score = float64(intset.IntersectionLen(impl.Actions, h)) / float64(len(impl.Actions))
		}
		ranked = append(ranked, ri{idx: i, score: score, missing: missing})
	}
	sort.Slice(ranked, func(a, b int) bool {
		if ranked[a].score != ranked[b].score {
			return ranked[a].score > ranked[b].score
		}
		if ranked[a].missing != ranked[b].missing {
			return ranked[a].missing < ranked[b].missing
		}
		return ranked[a].idx < ranked[b].idx
	})
	var out []core.ActionID
	seen := map[core.ActionID]bool{}
	for _, r := range ranked {
		for _, a := range o.impls[r.idx].Actions {
			if intset.Contains(h, a) || seen[a] {
				continue
			}
			seen[a] = true
			out = append(out, a)
			if k > 0 && len(out) == k {
				return out
			}
		}
	}
	return out
}

// oracleBreadth accumulates |A_p ∩ H| into every non-H member of every
// associated implementation (the Overlap reading of Equation 6).
func (o *oracleLibrary) oracleBreadth(h []core.ActionID, k int) []ScoredAction {
	scores := map[core.ActionID]float64{}
	for _, i := range o.associated(h) {
		impl := o.impls[i]
		comm := float64(intset.IntersectionLen(impl.Actions, h))
		for _, a := range impl.Actions {
			if !intset.Contains(h, a) {
				scores[a] += comm
			}
		}
	}
	var out []ScoredAction
	for a, s := range scores {
		out = append(out, ScoredAction{Action: a, Score: s})
	}
	return TopK(out, k)
}

func oracleConfig() *quick.Config {
	return &quick.Config{
		MaxCount: 120,
		Values: func(v []reflect.Value, r *rand.Rand) {
			v[0] = reflect.ValueOf(testlib.RandomLibrary(r, 1+r.Intn(100), 30, 15, 7))
			v[1] = reflect.ValueOf(testlib.RandomActivity(r, 30, 6))
			v[2] = reflect.ValueOf(1 + r.Intn(12))
		},
	}
}

func TestFocusAgainstOracle(t *testing.T) {
	for _, m := range []FocusMeasure{Completeness, Closeness} {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			f := func(lib *core.Library, rawH []core.ActionID, k int) bool {
				h := intset.FromUnsorted(intset.Clone(rawH))
				got := Actions(NewFocus(lib, m).Recommend(h, k))
				want := newOracle(lib).oracleFocus(h, m, k)
				return reflect.DeepEqual(got, want)
			}
			if err := quick.Check(f, oracleConfig()); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestBreadthAgainstOracle(t *testing.T) {
	f := func(lib *core.Library, rawH []core.ActionID, k int) bool {
		h := intset.FromUnsorted(intset.Clone(rawH))
		got := NewBreadth(lib).Recommend(h, k)
		want := newOracle(lib).oracleBreadth(h, k)
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, oracleConfig()); err != nil {
		t.Error(err)
	}
}

// TestShardedFocusAgainstOracle forces the multi-worker kernel on every
// query — four workers with a shard threshold of one posting — so the
// sharded accumulate/merge/select paths face the oracle even on the tiny
// random libraries quick generates.
func TestShardedFocusAgainstOracle(t *testing.T) {
	for _, m := range []FocusMeasure{Completeness, Closeness} {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			f := func(lib *core.Library, rawH []core.ActionID, k int) bool {
				h := intset.FromUnsorted(intset.Clone(rawH))
				fc := NewFocus(lib, m)
				fc.SetConcurrency(4, 1)
				got := Actions(fc.Recommend(h, k))
				want := newOracle(lib).oracleFocus(h, m, k)
				return reflect.DeepEqual(got, want)
			}
			if err := quick.Check(f, oracleConfig()); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestShardedBreadthAgainstOracle(t *testing.T) {
	f := func(lib *core.Library, rawH []core.ActionID, k int) bool {
		h := intset.FromUnsorted(intset.Clone(rawH))
		b := NewBreadth(lib)
		b.SetConcurrency(4, 1)
		got := b.Recommend(h, k)
		want := newOracle(lib).oracleBreadth(h, k)
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, oracleConfig()); err != nil {
		t.Error(err)
	}
}

// TestBreadthScratchReuse exercises the pooled scratch across many
// consecutive queries on one recommender instance — a stale-scratch bug
// would leak scores between queries.
func TestBreadthScratchReuse(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	lib := testlib.RandomLibrary(r, 120, 30, 15, 7)
	b := NewBreadth(lib)
	o := newOracle(lib)
	for i := 0; i < 200; i++ {
		h := intset.FromUnsorted(testlib.RandomActivity(r, 30, 6))
		got := b.Recommend(h, 8)
		want := o.oracleBreadth(h, 8)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d diverged from oracle:\ngot  %v\nwant %v", i, got, want)
		}
	}
}

// TestShardedScratchReuse hammers one sharded Focus and one sharded Breadth
// instance with interleaved canceled and completed queries: every aborted
// query must leave the pooled counters, touched lists and per-worker score
// accumulators clean, so the completed queries stay oracle-exact.
func TestShardedScratchReuse(t *testing.T) {
	r := rand.New(rand.NewSource(101))
	lib := testlib.RandomLibrary(r, 150, 30, 15, 7)
	o := newOracle(lib)
	fc := NewFocus(lib, Completeness)
	fc.SetConcurrency(4, 1)
	br := NewBreadth(lib)
	br.SetConcurrency(4, 1)
	for i := 0; i < 200; i++ {
		h := intset.FromUnsorted(testlib.RandomActivity(r, 30, 6))
		if i%3 == 1 {
			// Cancel at the first checkpoint past entry; the next queries
			// must be unaffected by whatever partial state this one built.
			fc.RecommendContext(newCancelAfterPolls(1), h, 8)
			br.RecommendContext(newCancelAfterPolls(1), h, 8)
		}
		if got, want := Actions(fc.Recommend(h, 8)), o.oracleFocus(h, Completeness, 8); !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: sharded focus diverged from oracle:\ngot  %v\nwant %v", i, got, want)
		}
		if got, want := br.Recommend(h, 8), o.oracleBreadth(h, 8); !reflect.DeepEqual(got, want) {
			t.Fatalf("query %d: sharded breadth diverged from oracle:\ngot  %v\nwant %v", i, got, want)
		}
	}
}

// TestBestMatchScratchReuse does the same for the dense cosine scratch,
// including the version-stamp path.
func TestBestMatchScratchReuse(t *testing.T) {
	r := rand.New(rand.NewSource(100))
	lib := testlib.RandomLibrary(r, 120, 30, 15, 7)
	bm := NewBestMatch(lib)
	for i := 0; i < 200; i++ {
		h := intset.FromUnsorted(testlib.RandomActivity(r, 30, 6))
		first := bm.Recommend(h, 8)
		second := bm.Recommend(h, 8)
		if !reflect.DeepEqual(first, second) {
			t.Fatalf("query %d not idempotent across scratch reuse", i)
		}
	}
}
