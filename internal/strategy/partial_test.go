package strategy

import (
	"context"
	"testing"

	"goalrec/internal/core"
	"goalrec/internal/vectorspace"
	"goalrec/internal/xrand"
)

// partialTestLibrary builds a deterministic random library dense enough for
// heavy tie layers (few distinct scores across many implementations).
func partialTestLibrary(t testing.TB, seed uint64, nImpl, nAct, nGoal, maxLen int) *core.Library {
	t.Helper()
	rng := xrand.New(seed)
	b := core.NewBuilder(nImpl, 4)
	for i := 0; i < nImpl; i++ {
		n := 1 + rng.Intn(maxLen)
		acts := make([]core.ActionID, n)
		for j := range acts {
			acts[j] = core.ActionID(rng.Intn(nAct))
		}
		if _, err := b.Add(core.GoalID(rng.Intn(nGoal)), acts); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	return b.Build()
}

// splitRanges cuts [0, n) into parts contiguous ranges.
func splitRanges(n, parts int) [][2]int {
	out := make([][2]int, 0, parts)
	chunk := (n + parts - 1) / parts
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

func partitionAll(t testing.TB, lib *core.Library, ranges [][2]int) []*core.Library {
	t.Helper()
	out := make([]*core.Library, len(ranges))
	for i, r := range ranges {
		sub, err := core.PartitionRange(lib, r[0], r[1])
		if err != nil {
			t.Fatalf("PartitionRange(%d, %d): %v", r[0], r[1], err)
		}
		out[i] = sub
	}
	return out
}

func assertSameRanking(t testing.TB, label string, got, want []ScoredAction) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d\n got: %v\nwant: %v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i].Action != want[i].Action || got[i].Score != want[i].Score {
			t.Fatalf("%s: rank %d: got {%d %v}, want {%d %v}", label, i,
				got[i].Action, got[i].Score, want[i].Action, want[i].Score)
		}
	}
}

// TestFocusGatherMergeMatchesSingleNode is the strategy-level oracle: for
// both measures, pruning off and on, and several shard counts, the merged
// per-shard emission lists must be bit-identical to the single-node walk.
func TestFocusGatherMergeMatchesSingleNode(t *testing.T) {
	lib := partialTestLibrary(t, 101, 600, 40, 15, 6)
	activities := [][]core.ActionID{{0, 3, 7}, {1}, {5, 9, 12, 20, 33}, {39}}
	for _, measure := range []FocusMeasure{Completeness, Closeness} {
		single := NewFocus(lib, measure)
		for _, pruned := range []bool{false, true} {
			for _, parts := range []int{1, 2, 3} {
				ranges := splitRanges(lib.NumImplementations(), parts)
				subs := partitionAll(t, lib, ranges)
				shards := make([]*Focus, len(subs))
				for i, sub := range subs {
					shards[i] = NewFocus(sub, measure)
					if pruned {
						shards[i].EnablePruning(nil)
					}
				}
				for _, activity := range activities {
					for _, k := range []int{1, 3, 10, 50} {
						want := single.Recommend(activity, k)
						lists := make([][]FocusEmission, len(shards))
						for i, f := range shards {
							var err error
							lists[i], err = f.TopEmissions(context.Background(), activity, k, int64(ranges[i][0]), nil)
							if err != nil {
								t.Fatalf("TopEmissions: %v", err)
							}
						}
						got := MergeFocusEmissions(lists, k)
						assertSameRanking(t, measure.String(), got, want)
					}
				}
			}
		}
	}
}

// TestFocusGatherMergeUnderInjectedFloor injects the floor a completed
// shard would broadcast into the remaining shards' scans and checks the
// merge stays exact — the cross-node floor soundness pin.
func TestFocusGatherMergeUnderInjectedFloor(t *testing.T) {
	lib := partialTestLibrary(t, 77, 800, 35, 12, 6)
	activity := []core.ActionID{2, 6, 11, 19}
	const k = 8
	for _, measure := range []FocusMeasure{Completeness, Closeness} {
		single := NewFocus(lib, measure)
		want := single.Recommend(activity, k)

		ranges := splitRanges(lib.NumImplementations(), 3)
		subs := partitionAll(t, lib, ranges)
		lists := make([][]FocusEmission, len(subs))

		// Shard 0 completes unconstrained; its k-th emission seeds the share
		// every later shard scans under, mimicking the coordinator broadcast.
		share := NewFocusFloorShare()
		for i, sub := range subs {
			f := NewFocus(sub, measure)
			f.EnablePruning(nil)
			f.SetConcurrency(2, 1) // force the sharded pruned path even on small shards
			var s *FocusFloorShare
			if i > 0 {
				s = share
			}
			list, err := f.TopEmissions(context.Background(), activity, k, int64(ranges[i][0]), s)
			if err != nil {
				t.Fatalf("TopEmissions: %v", err)
			}
			lists[i] = list
			if len(list) == k {
				FloorFromEmission(share, measure, list[k-1])
			}
		}
		got := MergeFocusEmissions(lists, k)
		assertSameRanking(t, "floor/"+measure.String(), got, want)
	}
}

// TestMergeFocusEmissionsTieBreakAtCutoff pins the gather-merge order
// against the documented total order — score descending, fewer missing
// first, then global implementation id, then action id — with equal-score
// ties straddling the k cutoff across shard boundaries.
func TestMergeFocusEmissionsTieBreakAtCutoff(t *testing.T) {
	// Two shards, every emission at the same score. Shard boundaries fall
	// between impl 10 (shard A) and impls 11/12 (shard B).
	shardA := []FocusEmission{
		{Action: 5, Score: 0.5, Missing: 2, Impl: 10, ImplLen: 4},
		{Action: 7, Score: 0.5, Missing: 2, Impl: 10, ImplLen: 4},
	}
	shardB := []FocusEmission{
		{Action: 3, Score: 0.5, Missing: 2, Impl: 11, ImplLen: 4},
		// Duplicate of action 5 with a worse (higher) impl id: the merge
		// must keep shard A's emission.
		{Action: 5, Score: 0.5, Missing: 2, Impl: 11, ImplLen: 4},
		// Same score but more missing: ranks after every missing=2 entry.
		{Action: 1, Score: 0.5, Missing: 3, Impl: 12, ImplLen: 5},
	}

	got := MergeFocusEmissions([][]FocusEmission{shardA, shardB}, 3)
	want := []ScoredAction{
		{Action: 5, Score: 0.5}, // impl 10, action 5
		{Action: 7, Score: 0.5}, // impl 10, action 7
		{Action: 3, Score: 0.5}, // impl 11, action 3
	}
	assertSameRanking(t, "cutoff", got, want)

	// Widen to k=4: the missing=3 emission is exactly at the new cutoff.
	got = MergeFocusEmissions([][]FocusEmission{shardA, shardB}, 4)
	want = append(want, ScoredAction{Action: 1, Score: 0.5})
	assertSameRanking(t, "cutoff+1", got, want)

	// Equal score and missing, distinct impls: lower global impl id wins
	// regardless of which shard list it arrived in.
	first := MergeFocusEmissions([][]FocusEmission{
		{{Action: 9, Score: 1, Missing: 1, Impl: 40, ImplLen: 2}},
		{{Action: 2, Score: 1, Missing: 1, Impl: 39, ImplLen: 2}},
	}, 1)
	assertSameRanking(t, "impl-order", first, []ScoredAction{{Action: 2, Score: 1}})
}

func TestBreadthGatherMergeMatchesSingleNode(t *testing.T) {
	lib := partialTestLibrary(t, 55, 500, 30, 10, 5)
	activities := [][]core.ActionID{{0, 4}, {2, 8, 14}, {29}}
	for _, w := range []BreadthWeighting{Overlap, Count, Union} {
		single := NewBreadthWeighted(lib, w)
		for _, parts := range []int{1, 2, 3} {
			ranges := splitRanges(lib.NumImplementations(), parts)
			subs := partitionAll(t, lib, ranges)
			for _, activity := range activities {
				parts := make([]*BreadthPartial, len(subs))
				for i, sub := range subs {
					var err error
					parts[i], err = NewBreadthWeighted(sub, w).ShardPartial(context.Background(), activity)
					if err != nil {
						t.Fatalf("ShardPartial: %v", err)
					}
				}
				for _, k := range []int{1, 5, 25, -1} {
					want := single.Recommend(activity, k)
					got := MergeBreadthPartials(parts, k)
					assertSameRanking(t, w.String(), got, want)
				}
			}
		}
	}
}

func TestBestMatchGatherMergeMatchesSingleNode(t *testing.T) {
	lib := partialTestLibrary(t, 91, 400, 25, 14, 5)
	activities := [][]core.ActionID{{0, 3}, {7, 12, 18}, {24}}
	for _, metric := range []vectorspace.Metric{vectorspace.Cosine, vectorspace.Euclidean, vectorspace.JaccardDist} {
		single := NewBestMatchMetric(lib, metric)
		for _, parts := range []int{1, 2, 3} {
			ranges := splitRanges(lib.NumImplementations(), parts)
			subs := partitionAll(t, lib, ranges)
			shards := make([]*BestMatch, len(subs))
			for i, sub := range subs {
				shards[i] = NewBestMatchMetric(sub, metric)
			}
			for _, activity := range activities {
				surveys := make([]*BestMatchSurvey, len(shards))
				for i, bm := range shards {
					var err error
					surveys[i], err = bm.ShardSurvey(context.Background(), activity)
					if err != nil {
						t.Fatalf("ShardSurvey: %v", err)
					}
				}
				candidates, goalSpace, profile := MergeBestMatchSurveys(surveys)
				vectors := make([]*BestMatchVectors, len(shards))
				for i, bm := range shards {
					var err error
					vectors[i], err = bm.ShardVectors(context.Background(), candidates, goalSpace)
					if err != nil {
						t.Fatalf("ShardVectors: %v", err)
					}
				}
				for _, k := range []int{1, 5, 20, -1} {
					want := single.Recommend(activity, k)
					got := MergeBestMatchVectors(metric, candidates, goalSpace, profile, vectors, k)
					assertSameRanking(t, metric.String(), got, want)
				}
			}
		}
	}
}
