// Package strategy implements the goal-based recommendation strategies of
// Sections 5.1–5.3 of the paper: Focus (completeness and closeness
// variants), Breadth, and Best Match. Each strategy ranks the candidate
// actions AS(H) − H of a user activity H against a shared immutable
// *core.Library and returns a top-k list.
//
// All strategies are deterministic: score ties are broken by ascending
// action id, so identical inputs always produce identical lists.
package strategy

import (
	"sort"

	"goalrec/internal/core"
)

// ScoredAction is one ranked recommendation: an action and the score the
// strategy assigned it. Higher scores rank earlier for score-ascending
// strategies (Focus, Breadth); Best Match converts its distance into a
// negated score so that "higher is better" holds uniformly.
type ScoredAction struct {
	Action core.ActionID
	Score  float64
}

// Recommender ranks candidate actions for a user activity. Implementations
// are safe for concurrent use.
type Recommender interface {
	// Name returns a short stable identifier ("focus-cmp", "breadth", ...).
	Name() string
	// Recommend returns up to k actions not present in activity, ranked
	// best-first. The activity may be unsorted and contain duplicates.
	// k == 0 yields nil; a negative k returns the full ranked candidate
	// pool.
	Recommend(activity []core.ActionID, k int) []ScoredAction
}

// TopK ranks scored candidates best-first (score descending, action id
// ascending on ties) and truncates to k. It works in place and returns a
// sub-slice of scored. It is exported for the baseline recommenders, which
// share the deterministic ranking contract.
//
// When k is a small fraction of the pool it selects through a bounded
// min-heap in O(n log k) instead of sorting the whole pool in O(n log n);
// the (score, action) order is total over distinct actions, so both paths
// return bit-identical rankings.
func TopK(scored []ScoredAction, k int) []ScoredAction {
	if len(scored) == 0 || k == 0 {
		return nil
	}
	if k > 0 && len(scored) >= heapSelectMinLen && len(scored) >= heapSelectFactor*k {
		return topKHeap(scored, k)
	}
	sort.Slice(scored, func(i, j int) bool {
		return ranksBefore(scored[i], scored[j])
	})
	if k >= 0 && len(scored) > k {
		scored = scored[:k]
	}
	return scored
}

// ranksBefore is the shared ranking order: score descending, then action id
// ascending. It is total over distinct actions.
func ranksBefore(a, b ScoredAction) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Action < b.Action
}

// Heap selection pays off once the pool is comfortably larger than k; below
// these bounds the plain sort's constant factor wins.
const (
	heapSelectMinLen = 128
	heapSelectFactor = 4
)

// topKHeap selects the k best elements with a min-heap kept in scored[:k]
// (the root is the worst element retained) and leaves them sorted best-first
// in scored[:k].
func topKHeap(scored []ScoredAction, k int) []ScoredAction {
	h := scored[:k]
	for i := k/2 - 1; i >= 0; i-- {
		heapSiftDown(h, i)
	}
	for _, s := range scored[k:] {
		if ranksBefore(h[0], s) {
			continue // s ranks at or below the worst retained element
		}
		h[0] = s
		heapSiftDown(h, 0)
	}
	// Pop ascending-by-rank from the back: the root is the worst remaining.
	for n := k - 1; n > 0; n-- {
		h[0], h[n] = h[n], h[0]
		heapSiftDown(h[:n], 0)
	}
	return h
}

// heapSiftDown restores the min-heap property (worst-ranked at the root)
// for the subtree rooted at i.
func heapSiftDown(h []ScoredAction, i int) {
	for {
		worst := i
		if l := 2*i + 1; l < len(h) && ranksBefore(h[worst], h[l]) {
			worst = l
		}
		if r := 2*i + 2; r < len(h) && ranksBefore(h[worst], h[r]) {
			worst = r
		}
		if worst == i {
			return
		}
		h[i], h[worst] = h[worst], h[i]
		i = worst
	}
}

// Actions projects a scored list onto its action ids. An empty list yields
// nil.
func Actions(list []ScoredAction) []core.ActionID {
	if len(list) == 0 {
		return nil
	}
	out := make([]core.ActionID, len(list))
	for i, s := range list {
		out[i] = s.Action
	}
	return out
}
