// Package strategy implements the goal-based recommendation strategies of
// Sections 5.1–5.3 of the paper: Focus (completeness and closeness
// variants), Breadth, and Best Match. Each strategy ranks the candidate
// actions AS(H) − H of a user activity H against a shared immutable
// *core.Library and returns a top-k list.
//
// All strategies are deterministic: score ties are broken by ascending
// action id, so identical inputs always produce identical lists.
package strategy

import (
	"sort"

	"goalrec/internal/core"
)

// ScoredAction is one ranked recommendation: an action and the score the
// strategy assigned it. Higher scores rank earlier for score-ascending
// strategies (Focus, Breadth); Best Match converts its distance into a
// negated score so that "higher is better" holds uniformly.
type ScoredAction struct {
	Action core.ActionID
	Score  float64
}

// Recommender ranks candidate actions for a user activity. Implementations
// are safe for concurrent use.
type Recommender interface {
	// Name returns a short stable identifier ("focus-cmp", "breadth", ...).
	Name() string
	// Recommend returns up to k actions not present in activity, ranked
	// best-first. The activity may be unsorted and contain duplicates.
	// k == 0 yields nil; a negative k returns the full ranked candidate
	// pool.
	Recommend(activity []core.ActionID, k int) []ScoredAction
}

// TopK sorts scored candidates best-first (score descending, action id
// ascending on ties) and truncates to k. It sorts in place and returns a
// sub-slice of scored. It is exported for the baseline recommenders, which
// share the deterministic ranking contract.
func TopK(scored []ScoredAction, k int) []ScoredAction {
	if len(scored) == 0 {
		return nil
	}
	sort.Slice(scored, func(i, j int) bool {
		if scored[i].Score != scored[j].Score {
			return scored[i].Score > scored[j].Score
		}
		return scored[i].Action < scored[j].Action
	})
	if k >= 0 && len(scored) > k {
		scored = scored[:k]
	}
	return scored
}

// Actions projects a scored list onto its action ids. An empty list yields
// nil.
func Actions(list []ScoredAction) []core.ActionID {
	if len(list) == 0 {
		return nil
	}
	out := make([]core.ActionID, len(list))
	for i, s := range list {
		out[i] = s.Action
	}
	return out
}
