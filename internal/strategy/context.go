package strategy

import (
	"context"
	"errors"
	"fmt"

	"goalrec/internal/core"
)

// ErrCanceled marks a recommendation query aborted by its context. Errors
// returned by RecommendContext wrap both ErrCanceled and the context's own
// error, so errors.Is works against either (ErrCanceled, context.Canceled,
// context.DeadlineExceeded).
var ErrCanceled = errors.New("recommendation canceled")

// ContextRecommender is a Recommender whose scoring loops honor context
// cancellation: RecommendContext polls ctx at coarse checkpoints (every
// checkInterval work units) and aborts with an ErrCanceled-wrapping error
// once the context is done. On a nil error the result is bit-identical to
// Recommend on the same inputs; on cancellation the result is nil except
// where a strategy documents a meaningful partial prefix.
//
// All four goal-based strategies and the Cached wrapper implement it.
type ContextRecommender interface {
	Recommender
	RecommendContext(ctx context.Context, activity []core.ActionID, k int) ([]ScoredAction, error)
}

// RecommendContext runs rec's context-aware path when it has one and
// otherwise degrades gracefully: the context is still observed once at
// entry (an expired deadline never starts the query), but a recommender
// without internal checkpoints — the baselines — runs to completion once
// admitted.
func RecommendContext(ctx context.Context, rec Recommender, activity []core.ActionID, k int) ([]ScoredAction, error) {
	if cr, ok := rec.(ContextRecommender); ok {
		return cr.RecommendContext(ctx, activity, k)
	}
	if err := entryErr(ctx); err != nil {
		return nil, err
	}
	return rec.Recommend(activity, k), nil
}

// checkInterval is the number of loop work units (candidates, postings,
// implementations) between context polls. It is coarse enough that the
// per-unit cost of the poll is unmeasurable in the scoring benchmarks and
// fine enough that a canceled high-connectivity query aborts within tens of
// microseconds.
const checkInterval = 1024

// ticker polls a context at coarse checkpoints. The zero value (from an
// uncancellable context — Done() == nil, e.g. context.Background) is
// disabled and makes tick a branch on a nil field, so the plain Recommend
// path pays nothing for the cancellation plumbing.
type ticker struct {
	err   func() error
	count int
}

// newTicker returns a ticker for ctx, disabled when ctx can never be
// canceled.
func newTicker(ctx context.Context) ticker {
	if ctx == nil || ctx.Done() == nil {
		return ticker{}
	}
	return ticker{err: ctx.Err}
}

// tick records n units of work and, once checkInterval units have
// accumulated, polls the context. It returns a non-nil ErrCanceled-wrapping
// error when the context is done.
func (t *ticker) tick(n int) error {
	if t.err == nil {
		return nil
	}
	t.count += n
	if t.count < checkInterval {
		return nil
	}
	t.count = 0
	if err := t.err(); err != nil {
		return canceledError(err)
	}
	return nil
}

// entryErr is the mandatory checkpoint at the top of every
// RecommendContext: even a query too small to reach a loop checkpoint must
// observe an already-expired context.
func entryErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return canceledError(err)
	}
	return nil
}

// canceledError wraps the context error so both ErrCanceled and the
// concrete cause (context.Canceled / context.DeadlineExceeded) survive
// errors.Is.
func canceledError(cause error) error {
	return fmt.Errorf("strategy: %w: %w", ErrCanceled, cause)
}
