package strategy

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"goalrec/internal/core"
)

func scoredPool(r *rand.Rand, n, distinctScores int) []ScoredAction {
	// Duplicated scores force the id tie-break on both TopK paths.
	out := make([]ScoredAction, n)
	perm := r.Perm(n)
	for i := range out {
		out[i] = ScoredAction{
			Action: core.ActionID(perm[i]),
			Score:  float64(r.Intn(distinctScores)),
		}
	}
	return out
}

// sortRef is the reference ranking: the plain full sort the heap path must
// reproduce bit-for-bit.
func sortRef(scored []ScoredAction, k int) []ScoredAction {
	ref := append([]ScoredAction(nil), scored...)
	sort.Slice(ref, func(i, j int) bool { return ranksBefore(ref[i], ref[j]) })
	if k >= 0 && len(ref) > k {
		ref = ref[:k]
	}
	return ref
}

func TestTopKEdgeCases(t *testing.T) {
	pool := []ScoredAction{{Action: 2, Score: 1}, {Action: 0, Score: 3}, {Action: 1, Score: 3}}

	if got := TopK(nil, 5); got != nil {
		t.Errorf("TopK(nil) = %v, want nil", got)
	}
	if got := TopK(append([]ScoredAction(nil), pool...), 0); got != nil {
		t.Errorf("k=0 = %v, want nil", got)
	}
	// Negative k returns the full ranked pool.
	want := []ScoredAction{{Action: 0, Score: 3}, {Action: 1, Score: 3}, {Action: 2, Score: 1}}
	if got := TopK(append([]ScoredAction(nil), pool...), -1); !reflect.DeepEqual(got, want) {
		t.Errorf("k=-1 = %v, want %v", got, want)
	}
	// k beyond the pool returns everything, still ranked.
	if got := TopK(append([]ScoredAction(nil), pool...), 10); !reflect.DeepEqual(got, want) {
		t.Errorf("k=10 = %v, want %v", got, want)
	}
	// Score ties break by ascending action id.
	if got := TopK(append([]ScoredAction(nil), pool...), 2); !reflect.DeepEqual(got, want[:2]) {
		t.Errorf("tie break = %v, want %v", got, want[:2])
	}
}

// TestTopKHeapMatchesSort drives the heap selection path directly against
// the full sort on random pools with heavy score ties: the two paths must be
// bit-identical for every k.
func TestTopKHeapMatchesSort(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + r.Intn(600)
		pool := scoredPool(r, n, 1+r.Intn(8))
		k := 1 + r.Intn(n)
		want := sortRef(pool, k)

		got := topKHeap(append([]ScoredAction(nil), pool...), k)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d (n=%d, k=%d): heap diverged from sort:\ngot  %v\nwant %v",
				trial, n, k, got, want)
		}

		// The public entry point must agree regardless of which path the
		// thresholds select.
		if got := TopK(append([]ScoredAction(nil), pool...), k); !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: TopK diverged from reference", trial)
		}
	}
}

func TestTopKHeapPathEngages(t *testing.T) {
	// Sanity-check the threshold arithmetic: a large pool with tiny k must
	// produce the same answer as the sort reference (and exercises the heap
	// path by construction: len ≥ heapSelectMinLen and len ≥ factor·k).
	r := rand.New(rand.NewSource(7))
	pool := scoredPool(r, 4*heapSelectMinLen, 5)
	k := heapSelectMinLen / heapSelectFactor
	want := sortRef(pool, k)
	if got := TopK(pool, k); !reflect.DeepEqual(got, want) {
		t.Fatalf("heap path diverged:\ngot  %v\nwant %v", got, want)
	}
}

func TestParseBreadthWeighting(t *testing.T) {
	for name, want := range map[string]BreadthWeighting{
		"overlap": Overlap, "count": Count, "union": Union,
	} {
		got, err := ParseBreadthWeighting(name)
		if err != nil || got != want {
			t.Errorf("ParseBreadthWeighting(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseBreadthWeighting("nope"); err == nil {
		t.Error("unknown weighting accepted")
	}
}
