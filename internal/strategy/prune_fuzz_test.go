package strategy

import (
	"math/rand"
	"testing"

	"goalrec/internal/core"
	"goalrec/internal/intset"
	"goalrec/internal/testlib"
)

// FuzzPrunedRankings derives a random library and activity from the fuzzed
// seeds and asserts that every pruned path — all four strategies, sequential
// and four-worker sharded, on plain and impact-ordered layouts — returns
// rankings bit-identical to the unpruned kernel.
func FuzzPrunedRankings(f *testing.F) {
	f.Add(int64(1), int64(2))
	f.Add(int64(42), int64(77))
	f.Add(int64(-9), int64(1<<40))
	f.Add(int64(123456789), int64(-3))
	f.Fuzz(func(t *testing.T, libSeed, querySeed int64) {
		r := rand.New(rand.NewSource(libSeed))
		n := 1 + r.Intn(800)
		actionSpace := 2 + r.Intn(30)
		lib := testlib.RandomLibrary(r, n, actionSpace, 15, 8)
		if libSeed%2 == 0 {
			lib, _ = core.ImpactOrder(lib)
		}
		qr := rand.New(rand.NewSource(querySeed))
		h := intset.FromUnsorted(testlib.RandomActivity(qr, actionSpace, 6))
		k := 1 + qr.Intn(12)
		checkPrunedEquiv(t, lib, h, k)
	})
}
