package strategy

import (
	"context"
	"fmt"
	"sync"

	"goalrec/internal/core"
	"goalrec/internal/intset"
)

// BreadthWeighting selects how much one associated implementation
// contributes to the score of the candidate actions it contains. The paper's
// Equation 6 is typographically damaged; Algorithm 2 accumulates a per-
// implementation quantity "comm" into every member action. The three
// readings below are provided, with Overlap as the default (see DESIGN.md).
type BreadthWeighting int

const (
	// Overlap weights each implementation by |A_p ∩ H|: candidates earn more
	// from implementations strongly connected to the user activity. This is
	// the default reading and matches the prose ("actions that belong in as
	// many sets as possible together with as many as possible actions from
	// the user activity").
	Overlap BreadthWeighting = iota
	// Count weights every associated implementation equally (comm = 1): the
	// score of a candidate is simply |IS(a) ∩ IS(H)|, its utility.
	Count
	// Union weights each implementation by |A_p ∪ H|, the literal reading of
	// the published Equation 6.
	Union
)

// String returns the weighting's canonical name.
func (w BreadthWeighting) String() string {
	switch w {
	case Count:
		return "count"
	case Union:
		return "union"
	}
	return "overlap"
}

// ParseBreadthWeighting maps a weighting name ("overlap", "count", "union")
// to its constant, reporting unknown names instead of defaulting silently.
func ParseBreadthWeighting(name string) (BreadthWeighting, error) {
	switch name {
	case "overlap":
		return Overlap, nil
	case "count":
		return Count, nil
	case "union":
		return Union, nil
	}
	return Overlap, fmt.Errorf("strategy: unknown breadth weighting %q", name)
}

// breadthShardMaxActions bounds the action-id space for which the sharded
// path is allowed: each worker carries a dense float64 score array of that
// size, so above the bound a query falls back to the sequential kernel
// rather than multiplying a very large allocation by the worker count.
const breadthShardMaxActions = 1 << 20

// Breadth is the paper's Algorithm 2: it walks every implementation of the
// user's implementation space once and accumulates a weight into the score
// of every candidate action the implementation contains, so that actions
// participating in many well-connected implementations rank first.
//
// The walk runs on the shared counter kernel (see kernel.go): one pass over
// H's posting rows yields |A_p ∩ H| for every associated implementation, so
// every weighting's comm follows from the counter and the stored |A_p| with
// no per-implementation set operations and no materialized, sorted IS(H).
// Large queries shard the pass; each worker accumulates into its own dense
// score array and the arrays are merged in fixed worker order. Every comm is
// integer-valued, so float64 score sums are exact in any order and all paths
// rank bit-identically. Scratch is pooled, so a query allocates only its
// result.
type Breadth struct {
	lib       *core.Library
	weighting BreadthWeighting
	conc      concurrency
	pool      sync.Pool // *breadthScratch
	pruning   bool
	stats     *PruneStats
}

// breadthScratch is the pooled per-query state: the kernel counters plus the
// merged score accumulator, dense H membership, and the per-worker
// accumulators of the sharded path.
type breadthScratch struct {
	overlapScratch
	scores  []float64 // indexed by action id, zeroed via actTouched
	actions []core.ActionID
	inH     []bool // dense H membership, set and cleared per query
	workers []breadthWorker
	rowBuf  []core.ImplID // posting decode buffer for the candidate-major walk
}

// breadthWorker is one shard's private score accumulator.
type breadthWorker struct {
	scores  []float64
	actions []core.ActionID
}

// NewBreadth returns a Breadth strategy over lib with the default Overlap
// weighting.
func NewBreadth(lib *core.Library) *Breadth {
	return NewBreadthWeighted(lib, Overlap)
}

// NewBreadthWeighted returns a Breadth strategy with an explicit weighting,
// used by the ablation benchmarks.
func NewBreadthWeighted(lib *core.Library, w BreadthWeighting) *Breadth {
	b := &Breadth{lib: lib, weighting: w}
	b.pool.New = func() interface{} {
		return &breadthScratch{
			scores: make([]float64, lib.NumActions()),
			inH:    make([]bool, lib.NumActions()),
		}
	}
	return b
}

// SetConcurrency tunes the sharded implementation scan: maxWorkers bounds
// the per-query worker pool (≤ 0 selects GOMAXPROCS) and shardMin is the
// posting-stream size below which a query stays sequential (≤ 0 selects the
// default). Rankings are bit-identical for every setting. It must be called
// before the strategy starts serving queries.
func (b *Breadth) SetConcurrency(maxWorkers, shardMin int) {
	b.conc = concurrency{maxWorkers: maxWorkers, shardMin: shardMin}
}

// Name implements Recommender.
func (b *Breadth) Name() string {
	if b.weighting == Overlap {
		return "breadth"
	}
	return "breadth-" + b.weighting.String()
}

// Recommend implements Recommender.
func (b *Breadth) Recommend(activity []core.ActionID, k int) []ScoredAction {
	out, _ := b.RecommendContext(context.Background(), activity, k)
	return out
}

// RecommendContext implements ContextRecommender: the implementation-space
// accumulation loop polls ctx at coarse checkpoints. A canceled query
// returns nil — partially accumulated scores would rank candidates
// incorrectly, so none are surfaced.
func (b *Breadth) RecommendContext(ctx context.Context, activity []core.ActionID, k int) ([]ScoredAction, error) {
	if err := entryErr(ctx); err != nil {
		return nil, err
	}
	if k == 0 {
		return nil, nil
	}
	h := intset.FromUnsorted(intset.Clone(activity))
	stream := b.lib.OverlapStream(h)
	if stream == 0 {
		return nil, nil
	}
	if b.pruning && k > 0 && k <= breadthPruneMaxK {
		return b.recommendPruned(ctx, h, stream, k)
	}

	workers := b.conc.workersFor(stream, b.lib.NumImplementations())
	if workers > 1 && b.lib.NumActions() > breadthShardMaxActions {
		workers = 1
	}
	s := b.pool.Get().(*breadthScratch)
	defer b.pool.Put(s)
	s.actions = s.actions[:0]
	// The sequential path accumulates straight into the scratch's main
	// arrays; sharded workers each get a private accumulator, merged below.
	ws := []breadthWorker{{scores: s.scores, actions: s.actions}}
	if workers > 1 {
		ws = s.shardWorkers(workers, len(s.scores))
	}

	// Dense H membership: every slot visit below becomes an O(1) array read
	// instead of a binary search over h.
	for _, a := range h {
		if a >= 0 && int(a) < len(s.inH) {
			s.inH[a] = true
		}
	}

	// Kernel pass: each shard's visit accumulates comm — derived from the
	// counter and |A_p| alone — into its score array. comm is always
	// integer-valued, so the float64 sums are exact regardless of
	// accumulation or merge order.
	err := s.run(ctx, b.lib, h, workers, func(shard int, touched []core.ImplID, tick *ticker) error {
		scores, actions := ws[shard].scores, ws[shard].actions
		var err error
		for _, p := range touched {
			if err = tick.tick(1); err != nil {
				break
			}
			comm := breadthComm(b.weighting, b.lib.ImplLen(p), len(h), s.cnt[p])
			for _, a := range b.lib.Actions(p) {
				if s.inH[a] {
					continue
				}
				if scores[a] == 0 {
					actions = append(actions, a)
				}
				scores[a] += comm
			}
		}
		ws[shard].actions = actions
		return err
	})

	for _, a := range h {
		if a >= 0 && int(a) < len(s.inH) {
			s.inH[a] = false
		}
	}
	if err != nil {
		// The pooled scratch must go back clean even on an aborted query:
		// every shard may hold partial scores.
		for i := range ws {
			for _, a := range ws[i].actions {
				ws[i].scores[a] = 0
			}
			ws[i].actions = ws[i].actions[:0]
		}
		if workers == 1 {
			s.actions = ws[0].actions
		}
		return nil, err
	}

	if workers == 1 {
		scored := make([]ScoredAction, 0, len(ws[0].actions))
		for _, a := range ws[0].actions {
			scored = append(scored, ScoredAction{Action: a, Score: ws[0].scores[a]})
			ws[0].scores[a] = 0
		}
		s.actions = ws[0].actions[:0]
		return TopK(scored, k), nil
	}

	// Deterministic merge: fold the per-worker partial sums into the main
	// accumulator in fixed worker order. Integer-valued terms keep the fold
	// exact, and TopK ranks under a total order, so the result matches the
	// sequential kernel bit for bit.
	merged := s.actions
	for i := range ws {
		for _, a := range ws[i].actions {
			if s.scores[a] == 0 {
				merged = append(merged, a)
			}
			s.scores[a] += ws[i].scores[a]
			ws[i].scores[a] = 0
		}
		ws[i].actions = ws[i].actions[:0]
	}
	s.actions = merged
	scored := make([]ScoredAction, 0, len(merged))
	for _, a := range merged {
		scored = append(scored, ScoredAction{Action: a, Score: s.scores[a]})
		s.scores[a] = 0
	}
	return TopK(scored, k), nil
}

// breadthComm is one implementation's contribution to the score of every
// candidate action it contains — a pure function of (|A_p|, |H|, |A_p ∩ H|)
// shared by the from-scratch kernel and the view path. Every value is
// integer-valued, so float64 sums are exact in any accumulation order.
func breadthComm(w BreadthWeighting, implLen, hLen int, cnt int32) float64 {
	switch w {
	case Count:
		return 1
	case Union:
		// |A_p ∪ H| = |A_p| + |H| − |A_p ∩ H|; unknown-to-library activity
		// ids count toward |H| exactly as the set union did.
		return float64(implLen + hLen - int(cnt))
	default:
		return float64(cnt)
	}
}

// RecommendView implements ViewRecommender: the accumulation walk over the
// view's materialized counters, scoring exact (no pruned bounds) with
// rankings bit-identical to RecommendContext over the view's activity.
func (b *Breadth) RecommendView(ctx context.Context, v *CounterView, k int) ([]ScoredAction, error) {
	if err := entryErr(ctx); err != nil {
		return nil, err
	}
	if v.lib != b.lib {
		return nil, ErrViewLibrary
	}
	if k == 0 || len(v.impls) == 0 {
		return nil, nil
	}
	s := b.pool.Get().(*breadthScratch)
	defer b.pool.Put(s)
	s.actions = s.actions[:0]
	for _, a := range v.h {
		if a >= 0 && int(a) < len(s.inH) {
			s.inH[a] = true
		}
	}
	tick := newTicker(ctx)
	var tickErr error
	actions := s.actions
	for i, p := range v.impls {
		if tickErr = tick.tick(1); tickErr != nil {
			break
		}
		comm := breadthComm(b.weighting, int(v.lens[i]), len(v.h), v.cnt[i])
		for _, a := range b.lib.Actions(p) {
			if s.inH[a] {
				continue
			}
			if s.scores[a] == 0 {
				actions = append(actions, a)
			}
			s.scores[a] += comm
		}
	}
	for _, a := range v.h {
		if a >= 0 && int(a) < len(s.inH) {
			s.inH[a] = false
		}
	}
	if tickErr != nil {
		for _, a := range actions {
			s.scores[a] = 0
		}
		s.actions = actions[:0]
		return nil, tickErr
	}
	scored := make([]ScoredAction, 0, len(actions))
	for _, a := range actions {
		scored = append(scored, ScoredAction{Action: a, Score: s.scores[a]})
		s.scores[a] = 0
	}
	s.actions = actions[:0]
	return TopK(scored, k), nil
}

// shardWorkers returns the n private per-shard accumulators of the sharded
// path, grown on demand and with their touched lists truncated.
func (s *breadthScratch) shardWorkers(n, numActions int) []breadthWorker {
	for len(s.workers) < n {
		s.workers = append(s.workers, breadthWorker{scores: make([]float64, numActions)})
	}
	for i := 0; i < n; i++ {
		s.workers[i].actions = s.workers[i].actions[:0]
	}
	return s.workers[:n]
}
