package strategy

import (
	"context"
	"fmt"
	"sync"

	"goalrec/internal/core"
	"goalrec/internal/intset"
)

// BreadthWeighting selects how much one associated implementation
// contributes to the score of the candidate actions it contains. The paper's
// Equation 6 is typographically damaged; Algorithm 2 accumulates a per-
// implementation quantity "comm" into every member action. The three
// readings below are provided, with Overlap as the default (see DESIGN.md).
type BreadthWeighting int

const (
	// Overlap weights each implementation by |A_p ∩ H|: candidates earn more
	// from implementations strongly connected to the user activity. This is
	// the default reading and matches the prose ("actions that belong in as
	// many sets as possible together with as many as possible actions from
	// the user activity").
	Overlap BreadthWeighting = iota
	// Count weights every associated implementation equally (comm = 1): the
	// score of a candidate is simply |IS(a) ∩ IS(H)|, its utility.
	Count
	// Union weights each implementation by |A_p ∪ H|, the literal reading of
	// the published Equation 6.
	Union
)

// String returns the weighting's canonical name.
func (w BreadthWeighting) String() string {
	switch w {
	case Count:
		return "count"
	case Union:
		return "union"
	}
	return "overlap"
}

// ParseBreadthWeighting maps a weighting name ("overlap", "count", "union")
// to its constant, reporting unknown names instead of defaulting silently.
func ParseBreadthWeighting(name string) (BreadthWeighting, error) {
	switch name {
	case "overlap":
		return Overlap, nil
	case "count":
		return Count, nil
	case "union":
		return Union, nil
	}
	return Overlap, fmt.Errorf("strategy: unknown breadth weighting %q", name)
}

// Breadth is the paper's Algorithm 2: it walks every implementation of the
// user's implementation space once and accumulates a weight into the score
// of every candidate action the implementation contains, so that actions
// participating in many well-connected implementations rank first. Scores
// accumulate in a pooled dense array, so a query allocates only its result.
type Breadth struct {
	lib       *core.Library
	weighting BreadthWeighting
	pool      sync.Pool // *breadthScratch
}

// breadthScratch is the pooled per-query accumulator.
type breadthScratch struct {
	scores  []float64 // indexed by action id, zeroed via touched
	touched []core.ActionID
	inH     []bool // dense H membership, set and cleared per query
}

// NewBreadth returns a Breadth strategy over lib with the default Overlap
// weighting.
func NewBreadth(lib *core.Library) *Breadth {
	return NewBreadthWeighted(lib, Overlap)
}

// NewBreadthWeighted returns a Breadth strategy with an explicit weighting,
// used by the ablation benchmarks.
func NewBreadthWeighted(lib *core.Library, w BreadthWeighting) *Breadth {
	b := &Breadth{lib: lib, weighting: w}
	b.pool.New = func() interface{} {
		return &breadthScratch{
			scores: make([]float64, lib.NumActions()),
			inH:    make([]bool, lib.NumActions()),
		}
	}
	return b
}

// Name implements Recommender.
func (b *Breadth) Name() string {
	if b.weighting == Overlap {
		return "breadth"
	}
	return "breadth-" + b.weighting.String()
}

// Recommend implements Recommender.
func (b *Breadth) Recommend(activity []core.ActionID, k int) []ScoredAction {
	out, _ := b.RecommendContext(context.Background(), activity, k)
	return out
}

// RecommendContext implements ContextRecommender: the implementation-space
// accumulation loop polls ctx at coarse checkpoints. A canceled query
// returns nil — partially accumulated scores would rank candidates
// incorrectly, so none are surfaced.
func (b *Breadth) RecommendContext(ctx context.Context, activity []core.ActionID, k int) ([]ScoredAction, error) {
	if err := entryErr(ctx); err != nil {
		return nil, err
	}
	if k == 0 {
		return nil, nil
	}
	h := intset.FromUnsorted(intset.Clone(activity))
	space := b.lib.ImplementationSpace(h)
	if len(space) == 0 {
		return nil, nil
	}

	s := b.pool.Get().(*breadthScratch)
	defer b.pool.Put(s)
	s.touched = s.touched[:0]

	// Dense H membership: every slot visit below becomes an O(1) array read
	// instead of a binary search over h.
	for _, a := range h {
		if a >= 0 && int(a) < len(s.inH) {
			s.inH[a] = true
		}
	}
	tick := newTicker(ctx)
	var tickErr error
	for _, p := range space {
		if tickErr = tick.tick(1); tickErr != nil {
			break
		}
		acts := b.lib.Actions(p)
		var comm float64
		switch b.weighting {
		case Count:
			comm = 1
		case Union:
			comm = float64(intset.UnionLen(acts, h))
		default:
			comm = float64(intset.IntersectionLen(acts, h))
		}
		for _, a := range acts {
			if s.inH[a] {
				continue
			}
			if s.scores[a] == 0 {
				s.touched = append(s.touched, a)
			}
			s.scores[a] += comm
		}
	}
	for _, a := range h {
		if a >= 0 && int(a) < len(s.inH) {
			s.inH[a] = false
		}
	}
	if tickErr != nil {
		// The pooled scratch must go back clean even on an aborted query.
		for _, a := range s.touched {
			s.scores[a] = 0
		}
		return nil, tickErr
	}

	scored := make([]ScoredAction, 0, len(s.touched))
	for _, a := range s.touched {
		scored = append(scored, ScoredAction{Action: a, Score: s.scores[a]})
		s.scores[a] = 0
	}
	return TopK(scored, k), nil
}
