package strategy

import (
	"reflect"
	"testing"

	"goalrec/internal/core"
	"goalrec/internal/testlib"
)

func TestBreadthNames(t *testing.T) {
	lib := testlib.PaperLibrary()
	if got := NewBreadth(lib).Name(); got != "breadth" {
		t.Errorf("Name = %q", got)
	}
	if got := NewBreadthWeighted(lib, Count).Name(); got != "breadth-count" {
		t.Errorf("Name = %q", got)
	}
	if got := NewBreadthWeighted(lib, Union).Name(); got != "breadth-union" {
		t.Errorf("Name = %q", got)
	}
}

func TestBreadthOverlapPaperExample(t *testing.T) {
	lib := testlib.PaperLibrary()
	b := NewBreadth(lib)

	// H = {a1, a2}. Associated impls and overlaps:
	//   p1 = {a1,a2,a3}: overlap 2 → a3 += 2
	//   p2 = {a1,a4}:    overlap 1 → a4 += 1
	//   p3 = {a1,a3,a5}: overlap 1 → a3 += 1, a5 += 1
	//   p5 = {a1,a2,a6}: overlap 2 → a6 += 2
	// Scores: a3=3, a6=2, a4=1, a5=1 → [a3, a6, a4, a5].
	got := b.Recommend(acts(0, 1), 10)
	want := []ScoredAction{{2, 3}, {5, 2}, {3, 1}, {4, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Recommend = %v, want %v", got, want)
	}
}

func TestBreadthCountPaperExample(t *testing.T) {
	lib := testlib.PaperLibrary()
	b := NewBreadthWeighted(lib, Count)
	// Counts: a3 in p1,p3 → 2; a4 in p2 → 1; a5 in p3 → 1; a6 in p5 → 1.
	got := b.Recommend(acts(0, 1), 10)
	want := []ScoredAction{{2, 2}, {3, 1}, {4, 1}, {5, 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Recommend = %v, want %v", got, want)
	}
}

func TestBreadthUnionPaperExample(t *testing.T) {
	lib := testlib.PaperLibrary()
	b := NewBreadthWeighted(lib, Union)
	// Unions with H={a1,a2}: p1: |{a1,a2,a3}|=3 → a3 += 3;
	// p2: |{a1,a2,a4}|=3 → a4 += 3; p3: |{a1,a2,a3,a5}|=4 → a3+=4, a5+=4;
	// p5: |{a1,a2,a6}|=3 → a6 += 3.
	got := b.Recommend(acts(0, 1), 10)
	want := []ScoredAction{{2, 7}, {4, 4}, {3, 3}, {5, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Recommend = %v, want %v", got, want)
	}
}

func TestBreadthEmptyCases(t *testing.T) {
	lib := testlib.PaperLibrary()
	b := NewBreadth(lib)
	if got := b.Recommend(nil, 10); got != nil {
		t.Errorf("empty activity produced %v", got)
	}
	if got := b.Recommend(acts(0), 0); got != nil {
		t.Errorf("k=0 produced %v", got)
	}
	if got := b.Recommend(acts(99), 10); got != nil {
		t.Errorf("unknown action produced %v", got)
	}
}

func TestBreadthTruncatesToK(t *testing.T) {
	lib := testlib.PaperLibrary()
	got := NewBreadth(lib).Recommend(acts(0, 1), 2)
	if len(got) != 2 {
		t.Fatalf("len = %d, want 2", len(got))
	}
	// Top two must be the globally best two.
	if got[0].Action != 2 || got[1].Action != 5 {
		t.Errorf("top-2 = %v", got)
	}
}

func TestBreadthInvariants(t *testing.T) {
	strategyInvariants(t, func(l *core.Library) Recommender { return NewBreadth(l) })
}

func TestBreadthCountInvariants(t *testing.T) {
	strategyInvariants(t, func(l *core.Library) Recommender { return NewBreadthWeighted(l, Count) })
}

func TestBreadthUnionInvariants(t *testing.T) {
	strategyInvariants(t, func(l *core.Library) Recommender { return NewBreadthWeighted(l, Union) })
}

func TestBreadthScoreMonotoneUnderLibraryExtension(t *testing.T) {
	// Adding an implementation that contains a candidate and intersects H
	// must not lower that candidate's Breadth score.
	var b1 core.Builder
	if _, err := b1.Add(0, acts(0, 1)); err != nil {
		t.Fatal(err)
	}
	lib1 := b1.Build()
	s1 := NewBreadth(lib1).Recommend(acts(0), 10)

	var b2 core.Builder
	if _, err := b2.Add(0, acts(0, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := b2.Add(1, acts(0, 1, 2)); err != nil {
		t.Fatal(err)
	}
	lib2 := b2.Build()
	s2 := NewBreadth(lib2).Recommend(acts(0), 10)

	score := func(list []ScoredAction, a core.ActionID) float64 {
		for _, s := range list {
			if s.Action == a {
				return s.Score
			}
		}
		return 0
	}
	if score(s2, 1) < score(s1, 1) {
		t.Errorf("extending the library lowered a1's score: %v -> %v", score(s1, 1), score(s2, 1))
	}
}
