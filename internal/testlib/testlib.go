// Package testlib provides shared test fixtures: the worked example of the
// paper (Example 3.2 / Figure 1) and small random libraries for property
// tests. It is imported only from _test files.
package testlib

import (
	"math/rand"

	"goalrec/internal/core"
)

// PaperLibrary builds the implementation set of the paper's Example 3.2
// (the online clothing store of Figure 1): five implementations p1..p5 over
// goals g1..g5 and actions a1..a6, satisfying Example 4.3 exactly:
//
//	IS(a1) = {p1,p2,p3,p5},  GS(a1) = {g1,g2,g3,g5},  AS(a1) = {a2,...,a6}.
//
// Ids are zero-based: a1 is action 0 and g1 is goal 0.
func PaperLibrary() *core.Library {
	var b core.Builder
	add := func(goal core.GoalID, actions ...core.ActionID) {
		if _, err := b.Add(goal, actions); err != nil {
			panic(err)
		}
	}
	add(0, 0, 1, 2) // p1 = (g1, {a1, a2, a3})  "meeting friends"
	add(1, 0, 3)    // p2 = (g2, {a1, a4})      "be warm"
	add(2, 0, 2, 4) // p3 = (g3, {a1, a3, a5})  "going to the office"
	add(3, 3, 5)    // p4 = (g4, {a4, a6})
	add(4, 0, 1, 5) // p5 = (g5, {a1, a2, a6})
	return b.Build()
}

// RandomLibrary builds a library with n implementations over actionSpace
// actions and goalSpace goals, with implementation sizes in [1, maxLen].
func RandomLibrary(r *rand.Rand, n, actionSpace, goalSpace, maxLen int) *core.Library {
	b := core.NewBuilder(n, (maxLen+1)/2)
	for i := 0; i < n; i++ {
		size := 1 + r.Intn(maxLen)
		acts := make([]core.ActionID, size)
		for j := range acts {
			acts[j] = core.ActionID(r.Intn(actionSpace))
		}
		if _, err := b.Add(core.GoalID(r.Intn(goalSpace)), acts); err != nil {
			panic(err)
		}
	}
	return b.Build()
}

// RandomActivity returns an activity of size in [1, maxLen] over
// actionSpace.
func RandomActivity(r *rand.Rand, actionSpace, maxLen int) []core.ActionID {
	h := make([]core.ActionID, 1+r.Intn(maxLen))
	for i := range h {
		h[i] = core.ActionID(r.Intn(actionSpace))
	}
	return h
}
