// Package xrand provides a small deterministic random number generator and
// the samplers the dataset generators need (uniform, Zipf, Poisson,
// shuffling, sampling without replacement).
//
// Every stochastic component in the repository draws from an explicit *RNG
// seeded by the caller, so experiment runs are reproducible bit-for-bit
// across machines. The core generator is splitmix64, which is tiny, fast and
// passes BigCrush for the usage patterns here.
package xrand

import "math"

// RNG is a splitmix64 pseudo-random generator. The zero value is a valid
// generator seeded with 0; prefer New for clarity.
type RNG struct {
	state uint64
}

// New returns an RNG seeded with seed.
func New(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next pseudo-random 64-bit value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int31n returns a uniform int32 in [0, n). It panics if n <= 0.
func (r *RNG) Int31n(n int32) int32 {
	if n <= 0 {
		panic("xrand: Int31n with non-positive n")
	}
	return int32(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate using the Box-Muller
// transform.
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// Poisson returns a Poisson variate with the given mean using Knuth's method
// for small means and a normal approximation for large ones.
func (r *RNG) Poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		n := int(math.Round(mean + math.Sqrt(mean)*r.NormFloat64()))
		if n < 0 {
			return 0
		}
		return n
	}
	l := math.Exp(-mean)
	k, p := 0, 1.0
	for {
		p *= r.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Shuffle pseudo-randomly permutes the first n elements using swap, in the
// manner of rand.Shuffle.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// SampleInt32 returns k distinct values from [0, n) in random order using a
// partial Fisher-Yates over a dense array for small n, or rejection sampling
// for sparse draws. It panics if k > n.
func (r *RNG) SampleInt32(n int32, k int) []int32 {
	if int32(k) > n {
		panic("xrand: SampleInt32 with k > n")
	}
	if k == 0 {
		return nil
	}
	// Rejection sampling is cheaper when the draw is sparse.
	if int64(k)*20 < int64(n) {
		seen := make(map[int32]struct{}, k)
		out := make([]int32, 0, k)
		for len(out) < k {
			v := r.Int31n(n)
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			out = append(out, v)
		}
		return out
	}
	pool := make([]int32, n)
	for i := range pool {
		pool[i] = int32(i)
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(int(n)-i)
		pool[i], pool[j] = pool[j], pool[i]
	}
	return pool[:k]
}

// Split derives an independent child generator; useful to give each
// sub-component its own deterministic stream.
func (r *RNG) Split() *RNG {
	return New(r.Uint64())
}

// Zipf samples ranks in [0, n) with probability proportional to
// 1/(rank+1)^s. It precomputes the cumulative distribution, so sampling is a
// binary search. A Zipf with s=0 is uniform.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a Zipf sampler over n ranks with exponent s >= 0.
// It panics if n <= 0 or s < 0.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with non-positive n")
	}
	if s < 0 {
		panic("xrand: NewZipf with negative exponent")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Next returns the next sampled rank in [0, N()).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// SampleDistinct draws k distinct ranks from the Zipf distribution (by
// rejection). It panics if k > N().
func (z *Zipf) SampleDistinct(k int) []int32 {
	if k > len(z.cdf) {
		panic("xrand: SampleDistinct with k > n")
	}
	seen := make(map[int32]struct{}, k)
	out := make([]int32, 0, k)
	misses := 0
	for len(out) < k {
		v := int32(z.Next())
		if _, dup := seen[v]; dup {
			misses++
			// The head of a steep Zipf saturates quickly; fall back to a
			// uniform draw over the remainder when rejection stalls.
			if misses > 16*k {
				for r := int32(0); r < int32(len(z.cdf)) && len(out) < k; r++ {
					if _, dup := seen[r]; !dup {
						seen[r] = struct{}{}
						out = append(out, r)
					}
				}
				break
			}
			continue
		}
		seen[v] = struct{}{}
		out = append(out, v)
	}
	return out
}
