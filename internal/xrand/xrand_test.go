package xrand

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at step %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds produced %d/100 identical values", same)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(1)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(2)
	sum := 0.0
	const n = 10000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Float64 mean = %v, want ≈0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(3)
	const n = 20000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("normal mean = %v, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Errorf("normal variance = %v, want ≈1", variance)
	}
}

func TestPoisson(t *testing.T) {
	r := New(4)
	for _, mean := range []float64{0.5, 3, 10, 80} {
		const n = 5000
		sum := 0
		for i := 0; i < n; i++ {
			v := r.Poisson(mean)
			if v < 0 {
				t.Fatalf("Poisson(%v) = %d negative", mean, v)
			}
			sum += v
		}
		got := float64(sum) / n
		if math.Abs(got-mean) > mean*0.1+0.2 {
			t.Errorf("Poisson(%v) sample mean = %v", mean, got)
		}
	}
	if r.Poisson(0) != 0 || r.Poisson(-1) != 0 {
		t.Error("Poisson of non-positive mean should be 0")
	}
}

func TestPerm(t *testing.T) {
	r := New(5)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm produced invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestSampleInt32(t *testing.T) {
	r := New(6)
	for _, tc := range []struct {
		n int32
		k int
	}{{10, 10}, {10, 3}, {1000, 5}, {100, 0}} {
		got := r.SampleInt32(tc.n, tc.k)
		if len(got) != tc.k {
			t.Fatalf("SampleInt32(%d, %d) returned %d values", tc.n, tc.k, len(got))
		}
		seen := map[int32]bool{}
		for _, v := range got {
			if v < 0 || v >= tc.n || seen[v] {
				t.Fatalf("SampleInt32(%d, %d) invalid value %d in %v", tc.n, tc.k, v, got)
			}
			seen[v] = true
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("SampleInt32 with k > n should panic")
		}
	}()
	r.SampleInt32(3, 4)
}

func TestZipfSkew(t *testing.T) {
	r := New(7)
	z := NewZipf(r, 100, 1.1)
	counts := make([]int, 100)
	const n = 20000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[50] {
		t.Errorf("Zipf head rank (%d) not more frequent than rank 50 (%d)", counts[0], counts[50])
	}
	head := counts[0] + counts[1] + counts[2]
	if float64(head)/n < 0.2 {
		t.Errorf("Zipf s=1.1 head mass = %v, want > 0.2", float64(head)/n)
	}
}

func TestZipfUniformWhenZero(t *testing.T) {
	r := New(8)
	z := NewZipf(r, 10, 0)
	counts := make([]int, 10)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for rank, c := range counts {
		if math.Abs(float64(c)-n/10) > n/10*0.15 {
			t.Errorf("Zipf s=0 rank %d count %d, want ≈%d", rank, c, n/10)
		}
	}
}

func TestZipfSampleDistinct(t *testing.T) {
	r := New(9)
	z := NewZipf(r, 50, 1.5)
	got := z.SampleDistinct(50) // forces the fallback path
	seen := map[int32]bool{}
	for _, v := range got {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("SampleDistinct invalid output %v", got)
		}
		seen[v] = true
	}
	if len(got) != 50 {
		t.Fatalf("SampleDistinct(50) returned %d ranks", len(got))
	}
}

func TestSplitIndependence(t *testing.T) {
	r := New(10)
	c1 := r.Split()
	c2 := r.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Error("sibling streams start identically")
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		r.Uint64()
	}
}

func BenchmarkZipfNext(b *testing.B) {
	r := New(1)
	z := NewZipf(r, 100000, 1.07)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Next()
	}
}
