// Package eval implements the paper's evaluation protocol (Section 6): the
// hide-70% activity split, and every measurement reported in Tables 2–6 and
// Figures 3–6 — top-k list overlap, popularity correlation, goal
// completeness, pairwise feature similarity, average true-positive rate, and
// retrieval-frequency histograms.
package eval

import (
	"math"
	"runtime"
	"sync"

	"goalrec/internal/core"
	"goalrec/internal/intset"
	"goalrec/internal/strategy"
	"goalrec/internal/xrand"
)

// Split is one evaluation split of a ground-truth activity: the Visible part
// is handed to the recommenders as the user activity, the Hidden part is the
// ground truth for TPR-style measurements.
type Split struct {
	Visible []core.ActionID
	Hidden  []core.ActionID
}

// SplitActivity shuffles the activity and keeps keepFrac of it visible
// (the paper keeps 30%). At least one action stays visible when the activity
// is non-empty. Both halves are returned sorted.
func SplitActivity(activity []core.ActionID, keepFrac float64, rng *xrand.RNG) Split {
	h := intset.FromUnsorted(intset.Clone(activity))
	if len(h) == 0 {
		return Split{}
	}
	shuffled := intset.Clone(h)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	keep := int(keepFrac*float64(len(shuffled)) + 0.5)
	if keep < 1 {
		keep = 1
	}
	if keep > len(shuffled) {
		keep = len(shuffled)
	}
	return Split{
		Visible: intset.FromUnsorted(shuffled[:keep]),
		Hidden:  intset.FromUnsorted(shuffled[keep:]),
	}
}

// SplitAll applies SplitActivity to every activity with a deterministic
// per-user stream derived from seed.
func SplitAll(activities [][]core.ActionID, keepFrac float64, seed uint64) []Split {
	rng := xrand.New(seed)
	out := make([]Split, len(activities))
	for i, h := range activities {
		out[i] = SplitActivity(h, keepFrac, rng.Split())
	}
	return out
}

// SplitSequence keeps the first keepFrac of an *ordered* sequence visible
// and hides the rest — the temporal analogue of SplitActivity (the paper
// shuffles; real deployments only ever see a prefix). At least one action
// stays visible when the sequence is non-empty. Both halves are returned as
// sorted sets.
func SplitSequence(sequence []core.ActionID, keepFrac float64) Split {
	if len(sequence) == 0 {
		return Split{}
	}
	keep := int(keepFrac*float64(len(sequence)) + 0.5)
	if keep < 1 {
		keep = 1
	}
	if keep > len(sequence) {
		keep = len(sequence)
	}
	return Split{
		Visible: intset.FromUnsorted(intset.Clone(sequence[:keep])),
		Hidden:  intset.FromUnsorted(intset.Clone(sequence[keep:])),
	}
}

// SplitAllSequences applies SplitSequence to every sequence.
func SplitAllSequences(sequences [][]core.ActionID, keepFrac float64) []Split {
	out := make([]Split, len(sequences))
	for i, s := range sequences {
		out[i] = SplitSequence(s, keepFrac)
	}
	return out
}

// Collect runs the recommender over every input activity and returns the
// top-k action lists. Inputs are processed in parallel; the output order
// matches the input order.
func Collect(rec strategy.Recommender, inputs [][]core.ActionID, k int) [][]core.ActionID {
	out := make([][]core.ActionID, len(inputs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(inputs) {
		workers = len(inputs)
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	jobs := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = strategy.Actions(rec.Recommend(inputs[i], k))
			}
		}()
	}
	for i := range inputs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return out
}

// OverlapAtK returns the mean fraction of shared actions between paired
// top-k lists: |A_i ∩ B_i| / min(k, max(|A_i|, |B_i|)) averaged over pairs.
// Normalizing by the longer actual list keeps identical lists at overlap 1
// even when a candidate pool runs short of k. This is the measure behind
// Tables 2 and 6. Pairs where both lists are empty contribute 0.
func OverlapAtK(a, b [][]core.ActionID, k int) float64 {
	if len(a) != len(b) || len(a) == 0 || k <= 0 {
		return 0
	}
	total := 0.0
	for i := range a {
		sa := intset.FromUnsorted(intset.Clone(a[i]))
		sb := intset.FromUnsorted(intset.Clone(b[i]))
		denom := len(sa)
		if len(sb) > denom {
			denom = len(sb)
		}
		if denom > k {
			denom = k
		}
		if denom == 0 {
			continue
		}
		total += float64(intset.IntersectionLen(sa, sb)) / float64(denom)
	}
	return total / float64(len(a))
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// samples, or 0 when either sample is constant.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) == 0 {
		return 0
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// PopularityCorrelation implements Table 3: take the topN most popular
// actions across the user activities, and correlate their activity
// appearance counts with their appearance counts in the recommendation
// lists.
func PopularityCorrelation(activities, lists [][]core.ActionID, numActions, topN int) float64 {
	actCount := make([]float64, numActions)
	for _, h := range activities {
		for _, a := range h {
			if int(a) < numActions {
				actCount[a]++
			}
		}
	}
	recCount := make([]float64, numActions)
	for _, l := range lists {
		for _, a := range l {
			if int(a) < numActions {
				recCount[a]++
			}
		}
	}
	top := topIndices(actCount, topN)
	x := make([]float64, len(top))
	y := make([]float64, len(top))
	for i, a := range top {
		x[i] = actCount[a]
		y[i] = recCount[a]
	}
	return Pearson(x, y)
}

// topIndices returns the indices of the n largest values (ties by lower
// index), via simple selection adequate for the small n used here.
func topIndices(vals []float64, n int) []int {
	if n > len(vals) {
		n = len(vals)
	}
	picked := make([]bool, len(vals))
	out := make([]int, 0, n)
	for len(out) < n {
		best, bestVal := -1, math.Inf(-1)
		for i, v := range vals {
			if !picked[i] && v > bestVal {
				best, bestVal = i, v
			}
		}
		if best == -1 {
			break
		}
		picked[best] = true
		out = append(out, best)
	}
	return out
}

// AverageTPR implements Figure 4: the mean, over users, of the fraction of
// recommended actions the user actually performed (i.e. that sit in the
// hidden part of the split). Users with empty recommendation lists
// contribute 0.
func AverageTPR(lists [][]core.ActionID, hidden [][]core.ActionID) float64 {
	if len(lists) == 0 || len(lists) != len(hidden) {
		return 0
	}
	total := 0.0
	for i, l := range lists {
		if len(l) == 0 {
			continue
		}
		sl := intset.FromUnsorted(intset.Clone(l))
		hit := intset.IntersectionLen(sl, hidden[i])
		total += float64(hit) / float64(len(sl))
	}
	return total / float64(len(lists))
}
