package eval

import (
	"math"
	"sort"

	"goalrec/internal/core"
	"goalrec/internal/intset"
	"goalrec/internal/xrand"
)

// CompletenessPerUser returns each user's average goal completeness after
// following their recommendation list (the per-user quantity Table 4
// averages). Users whose goal scope is empty yield NaN and should be
// filtered by the caller; Bootstrap does so.
func CompletenessPerUser(lib *core.Library, visible, lists [][]core.ActionID, goalsOf func(i int) []core.GoalID) []float64 {
	out := make([]float64, len(visible))
	for i := range visible {
		h := intset.FromUnsorted(intset.Clone(visible[i]))
		extra := intset.FromUnsorted(intset.Clone(lists[i]))
		var goals []core.GoalID
		if goalsOf != nil {
			goals = goalsOf(i)
		}
		if goals == nil {
			goals = lib.GoalSpace(h)
		}
		if len(goals) == 0 {
			out[i] = math.NaN()
			continue
		}
		sum := 0.0
		for _, g := range goals {
			sum += lib.GoalCompleteness(g, h, extra)
		}
		out[i] = sum / float64(len(goals))
	}
	return out
}

// CI is a bootstrap percentile confidence interval around a sample mean.
type CI struct {
	Mean float64
	Lo   float64
	Hi   float64
}

// Bootstrap estimates a percentile confidence interval for the mean of the
// per-user values by resampling users with replacement. NaN entries are
// dropped first. conf is the confidence level (e.g. 0.95); iters the number
// of resamples (≤ 0 selects 1000). Deterministic for a fixed seed.
func Bootstrap(perUser []float64, conf float64, iters int, seed uint64) CI {
	vals := make([]float64, 0, len(perUser))
	for _, v := range perUser {
		if !math.IsNaN(v) {
			vals = append(vals, v)
		}
	}
	if len(vals) == 0 {
		return CI{}
	}
	if iters <= 0 {
		iters = 1000
	}
	if conf <= 0 || conf >= 1 {
		conf = 0.95
	}
	mean := 0.0
	for _, v := range vals {
		mean += v
	}
	mean /= float64(len(vals))

	rng := xrand.New(seed)
	means := make([]float64, iters)
	for it := 0; it < iters; it++ {
		sum := 0.0
		for range vals {
			sum += vals[rng.Intn(len(vals))]
		}
		means[it] = sum / float64(len(vals))
	}
	sort.Float64s(means)
	alpha := (1 - conf) / 2
	lo := means[int(alpha*float64(iters))]
	hiIdx := int((1 - alpha) * float64(iters))
	if hiIdx >= iters {
		hiIdx = iters - 1
	}
	return CI{Mean: mean, Lo: lo, Hi: means[hiIdx]}
}

// PairedBootstrapDelta estimates a CI for mean(a − b) over users, the
// significance test for "method A beats method B". Entries where either
// side is NaN are dropped.
func PairedBootstrapDelta(a, b []float64, conf float64, iters int, seed uint64) CI {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	deltas := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		if math.IsNaN(a[i]) || math.IsNaN(b[i]) {
			continue
		}
		deltas = append(deltas, a[i]-b[i])
	}
	return Bootstrap(deltas, conf, iters, seed)
}
