package eval

import (
	"math"
	"testing"

	"goalrec/internal/core"
)

func TestRankingPerfect(t *testing.T) {
	lists := [][]core.ActionID{acts(1, 2, 3)}
	hidden := [][]core.ActionID{acts(1, 2, 3)}
	m := Ranking(lists, hidden, 3)
	if m.Precision != 1 || m.Recall != 1 || m.F1 != 1 || m.MRR != 1 || m.NDCG != 1 {
		t.Errorf("perfect ranking = %+v", m)
	}
}

func TestRankingMiss(t *testing.T) {
	lists := [][]core.ActionID{acts(7, 8, 9)}
	hidden := [][]core.ActionID{acts(1, 2)}
	m := Ranking(lists, hidden, 3)
	if m.Precision != 0 || m.Recall != 0 || m.F1 != 0 || m.MRR != 0 || m.NDCG != 0 {
		t.Errorf("all-miss ranking = %+v", m)
	}
}

func TestRankingPartial(t *testing.T) {
	// Hit at rank 2 only; truth has 2 relevant items.
	lists := [][]core.ActionID{acts(9, 1, 8)}
	hidden := [][]core.ActionID{acts(1, 2)}
	m := Ranking(lists, hidden, 3)
	if math.Abs(m.Precision-1.0/3.0) > 1e-12 {
		t.Errorf("precision = %v, want 1/3", m.Precision)
	}
	if math.Abs(m.Recall-0.5) > 1e-12 {
		t.Errorf("recall = %v, want 0.5", m.Recall)
	}
	if math.Abs(m.MRR-0.5) > 1e-12 {
		t.Errorf("MRR = %v, want 0.5 (first hit at rank 2)", m.MRR)
	}
	// DCG = 1/log2(3); IDCG = 1/log2(2) + 1/log2(3).
	wantNDCG := (1 / math.Log2(3)) / (1 + 1/math.Log2(3))
	if math.Abs(m.NDCG-wantNDCG) > 1e-12 {
		t.Errorf("nDCG = %v, want %v", m.NDCG, wantNDCG)
	}
}

func TestRankingTruncatesToK(t *testing.T) {
	// Hit beyond k must not count.
	lists := [][]core.ActionID{acts(9, 8, 1)}
	hidden := [][]core.ActionID{acts(1)}
	m := Ranking(lists, hidden, 2)
	if m.Precision != 0 || m.MRR != 0 {
		t.Errorf("hit beyond k counted: %+v", m)
	}
}

func TestRankingSkipsUsersWithoutTruth(t *testing.T) {
	lists := [][]core.ActionID{acts(1), acts(2)}
	hidden := [][]core.ActionID{nil, acts(2)}
	m := Ranking(lists, hidden, 1)
	// Only the second user counts, and it is a perfect hit.
	if m.Precision != 1 || m.Recall != 1 {
		t.Errorf("skip-empty-truth = %+v", m)
	}
}

func TestRankingDegenerateInputs(t *testing.T) {
	if m := Ranking(nil, nil, 5); m != (RankingMetrics{}) {
		t.Errorf("empty input = %+v", m)
	}
	if m := Ranking([][]core.ActionID{acts(1)}, [][]core.ActionID{acts(1)}, 0); m != (RankingMetrics{}) {
		t.Errorf("k=0 = %+v", m)
	}
	if m := Ranking([][]core.ActionID{acts(1)}, nil, 3); m != (RankingMetrics{}) {
		t.Errorf("length mismatch = %+v", m)
	}
	// Empty list with non-empty truth contributes zeros but is counted.
	m := Ranking([][]core.ActionID{nil, acts(1)}, [][]core.ActionID{acts(5), acts(1)}, 3)
	if math.Abs(m.Precision-0.5) > 1e-12 {
		t.Errorf("empty-list handling = %+v", m)
	}
}
