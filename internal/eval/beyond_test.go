package eval

import (
	"math"
	"testing"

	"goalrec/internal/core"
)

func simSameBucket(a, b core.ActionID) float64 {
	if a/2 == b/2 {
		return 1
	}
	return 0
}

func TestIntraListDiversity(t *testing.T) {
	lists := [][]core.ActionID{
		acts(0, 1),    // same bucket → diversity 0
		acts(0, 2),    // different → 1
		acts(0, 1, 2), // pairs: (0,1)=0, (0,2)=1, (1,2)=1 → 2/3
		acts(9),       // skipped
	}
	want := (0.0 + 1.0 + 2.0/3.0) / 3
	if got := IntraListDiversity(lists, simSameBucket); math.Abs(got-want) > 1e-12 {
		t.Errorf("diversity = %v, want %v", got, want)
	}
	if got := IntraListDiversity(nil, simSameBucket); got != 0 {
		t.Errorf("empty = %v", got)
	}
}

func TestCatalogCoverage(t *testing.T) {
	lists := [][]core.ActionID{acts(0, 1), acts(1, 2)}
	if got := CatalogCoverage(lists, 6); got != 0.5 {
		t.Errorf("coverage = %v, want 0.5", got)
	}
	if got := CatalogCoverage(nil, 6); got != 0 {
		t.Errorf("empty coverage = %v", got)
	}
	if got := CatalogCoverage(lists, 0); got != 0 {
		t.Errorf("zero catalog = %v", got)
	}
}

func TestGiniConcentration(t *testing.T) {
	// Perfectly even: every action appears once.
	even := [][]core.ActionID{acts(0), acts(1), acts(2), acts(3)}
	if got := GiniConcentration(even); got != 0 {
		t.Errorf("even Gini = %v, want 0", got)
	}
	// Heavy concentration: one action in every list, others once.
	skew := [][]core.ActionID{acts(0, 1), acts(0, 2), acts(0, 3), acts(0, 4), acts(0, 5), acts(0, 6)}
	g := GiniConcentration(skew)
	if g <= 0.3 {
		t.Errorf("skewed Gini = %v, want > 0.3", g)
	}
	if got := GiniConcentration(nil); got != 0 {
		t.Errorf("empty Gini = %v", got)
	}
	if got := GiniConcentration([][]core.ActionID{acts(7)}); got != 0 {
		t.Errorf("single-action Gini = %v", got)
	}
}

func TestMeanNovelty(t *testing.T) {
	activities := [][]core.ActionID{acts(0), acts(0), acts(0), acts(1)}
	// Recommending the ubiquitous a0 is low-novelty; the never-performed a5
	// scores the maximum.
	popular := MeanNovelty([][]core.ActionID{acts(0)}, activities, 6)
	rare := MeanNovelty([][]core.ActionID{acts(1)}, activities, 6)
	unseen := MeanNovelty([][]core.ActionID{acts(5)}, activities, 6)
	if !(popular < rare && rare <= unseen) {
		t.Errorf("novelty ordering broken: %v, %v, %v", popular, rare, unseen)
	}
	if got := MeanNovelty(nil, activities, 6); got != 0 {
		t.Errorf("empty lists novelty = %v", got)
	}
	if got := MeanNovelty([][]core.ActionID{acts(0)}, nil, 6); got != 0 {
		t.Errorf("no users novelty = %v", got)
	}
}

func TestListUniqueness(t *testing.T) {
	lists := [][]core.ActionID{
		acts(1, 2),
		acts(2, 1), // same set, different order → same list
		acts(3),
		nil, // ignored
	}
	if got := ListUniqueness(lists); got != 2.0/3.0 {
		t.Errorf("uniqueness = %v, want 2/3", got)
	}
	if got := ListUniqueness(nil); got != 0 {
		t.Errorf("empty = %v", got)
	}
	all := [][]core.ActionID{acts(1), acts(2), acts(3)}
	if got := ListUniqueness(all); got != 1 {
		t.Errorf("all distinct = %v", got)
	}
}

func TestUnexpectednessVsBaseline(t *testing.T) {
	lists := [][]core.ActionID{acts(1, 2), acts(3, 4)}
	ref := [][]core.ActionID{acts(2, 9), acts(3, 4)}
	// List 0: 1 of 2 outside the reference; list 1: 0 of 2.
	want := (0.5 + 0.0) / 2
	if got := UnexpectednessVsBaseline(lists, ref); math.Abs(got-want) > 1e-12 {
		t.Errorf("unexpectedness = %v, want %v", got, want)
	}
	if got := UnexpectednessVsBaseline(lists, ref[:1]); got != 0 {
		t.Errorf("mismatched lengths = %v", got)
	}
}
