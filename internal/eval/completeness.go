package eval

import (
	"goalrec/internal/core"
	"goalrec/internal/intset"
)

// Tri is a per-list triple summarized across lists: the paper's
// AvgAvg / MinAvg / MaxAvg (Table 4) and AvgAvg / AvgMax / AvgMin (Table 5)
// reporting style. For each list the average, minimum and maximum of a
// quantity are taken; Tri holds the means of those three statistics over all
// lists.
type Tri struct {
	AvgAvg float64
	AvgMin float64
	AvgMax float64
}

// Completeness implements Table 4 / Figure 3. For every user it measures the
// completeness of the goals in scope after the user performs the
// recommended actions on top of the visible activity, takes the per-user
// average/min/max, and averages those across users.
//
// goalsOf selects the goals evaluated for user i: the paper uses the user's
// declared goals for 43Things and the whole goal space of the visible
// activity for the foodmarket. Passing nil selects the goal space.
func Completeness(lib *core.Library, visible, lists [][]core.ActionID, goalsOf func(i int) []core.GoalID) Tri {
	if len(visible) == 0 || len(visible) != len(lists) {
		return Tri{}
	}
	var sumAvg, sumMin, sumMax float64
	counted := 0
	for i := range visible {
		h := intset.FromUnsorted(intset.Clone(visible[i]))
		extra := intset.FromUnsorted(intset.Clone(lists[i]))
		var goals []core.GoalID
		if goalsOf != nil {
			goals = goalsOf(i)
		}
		if goals == nil {
			goals = lib.GoalSpace(h)
		}
		if len(goals) == 0 {
			continue
		}
		minC, maxC, sumC := 1.0, 0.0, 0.0
		for _, g := range goals {
			c := lib.GoalCompleteness(g, h, extra)
			sumC += c
			if c < minC {
				minC = c
			}
			if c > maxC {
				maxC = c
			}
		}
		sumAvg += sumC / float64(len(goals))
		sumMin += minC
		sumMax += maxC
		counted++
	}
	if counted == 0 {
		return Tri{}
	}
	return Tri{
		AvgAvg: sumAvg / float64(counted),
		AvgMin: sumMin / float64(counted),
		AvgMax: sumMax / float64(counted),
	}
}

// similarityFunc scores a pair of actions; the content baseline's feature
// cosine is the paper's instantiation.
type similarityFunc func(a, b core.ActionID) float64

// PairwiseSimilarity implements Table 5: within every recommendation list,
// the average, maximum and minimum pairwise similarity of the recommended
// actions; the three statistics are averaged over lists. Lists with fewer
// than two actions are skipped.
func PairwiseSimilarity(lists [][]core.ActionID, sim similarityFunc) Tri {
	var sumAvg, sumMin, sumMax float64
	counted := 0
	for _, l := range lists {
		if len(l) < 2 {
			continue
		}
		minS, maxS, sumS := 1.0, 0.0, 0.0
		pairs := 0
		for i := 0; i < len(l); i++ {
			for j := i + 1; j < len(l); j++ {
				s := sim(l[i], l[j])
				sumS += s
				pairs++
				if s < minS {
					minS = s
				}
				if s > maxS {
					maxS = s
				}
			}
		}
		sumAvg += sumS / float64(pairs)
		sumMin += minS
		sumMax += maxS
		counted++
	}
	if counted == 0 {
		return Tri{}
	}
	return Tri{
		AvgAvg: sumAvg / float64(counted),
		AvgMin: sumMin / float64(counted),
		AvgMax: sumMax / float64(counted),
	}
}

// Histogram is a fixed-bucket frequency histogram over [0, 1]: Counts[i]
// counts values in [Edges[i], Edges[i+1]).
type Histogram struct {
	Edges  []float64
	Counts []int
}

// NewHistogram builds a histogram with n equal buckets over [0, 1].
func NewHistogram(n int) *Histogram {
	h := &Histogram{Edges: make([]float64, n+1), Counts: make([]int, n)}
	for i := range h.Edges {
		h.Edges[i] = float64(i) / float64(n)
	}
	return h
}

// Observe adds one value (clamped to [0, 1]).
func (h *Histogram) Observe(v float64) {
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	i := int(v * float64(len(h.Counts)))
	if i == len(h.Counts) {
		i--
	}
	h.Counts[i]++
}

// Total returns the number of observations.
func (h *Histogram) Total() int {
	n := 0
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// FractionBelow returns the fraction of observations in buckets strictly
// below the given edge value.
func (h *Histogram) FractionBelow(edge float64) float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	n := 0
	for i, c := range h.Counts {
		if h.Edges[i+1] <= edge+1e-12 {
			n += c
		}
	}
	return float64(n) / float64(total)
}

// ListFrequencyHistogram implements Figure 5: for every distinct recommended
// action, the fraction of recommendation lists containing it, bucketed into
// a histogram with `buckets` bins.
func ListFrequencyHistogram(lists [][]core.ActionID, buckets int) *Histogram {
	h := NewHistogram(buckets)
	if len(lists) == 0 {
		return h
	}
	counts := make(map[core.ActionID]int)
	for _, l := range lists {
		for _, a := range l {
			counts[a]++
		}
	}
	n := float64(len(lists))
	for _, c := range counts {
		h.Observe(float64(c) / n)
	}
	return h
}

// LibraryFrequencyHistogram implements Figure 6: for every distinct
// recommended action, its frequency in the implementation set (the fraction
// of implementations containing it), bucketed into a histogram.
func LibraryFrequencyHistogram(lib *core.Library, lists [][]core.ActionID, buckets int) *Histogram {
	h := NewHistogram(buckets)
	freq := lib.LibraryFrequency()
	seen := make(map[core.ActionID]bool)
	for _, l := range lists {
		for _, a := range l {
			if seen[a] {
				continue
			}
			seen[a] = true
			if int(a) < len(freq) {
				h.Observe(freq[a])
			}
		}
	}
	return h
}
