package eval

import (
	"math"
	"testing"

	"goalrec/internal/core"
	"goalrec/internal/testlib"
)

func TestCompletenessPerUserMatchesAggregate(t *testing.T) {
	lib := testlib.PaperLibrary()
	visible := [][]core.ActionID{acts(0), acts(1, 2)}
	lists := [][]core.ActionID{acts(1, 2), acts(0)}
	per := CompletenessPerUser(lib, visible, lists, nil)
	tri := Completeness(lib, visible, lists, nil)
	sum, n := 0.0, 0
	for _, x := range per {
		if !math.IsNaN(x) {
			sum += x
			n++
		}
	}
	if n == 0 {
		t.Fatal("no users counted")
	}
	if math.Abs(sum/float64(n)-tri.AvgAvg) > 1e-12 {
		t.Errorf("per-user mean %v != AvgAvg %v", sum/float64(n), tri.AvgAvg)
	}
}

func TestCompletenessPerUserNaNForEmptyScope(t *testing.T) {
	lib := testlib.PaperLibrary()
	per := CompletenessPerUser(lib, [][]core.ActionID{acts(99)}, [][]core.ActionID{nil}, nil)
	if !math.IsNaN(per[0]) {
		t.Errorf("unknown-activity user = %v, want NaN", per[0])
	}
}

func TestBootstrapBasics(t *testing.T) {
	vals := make([]float64, 200)
	for i := range vals {
		vals[i] = float64(i % 2) // mean 0.5
	}
	ci := Bootstrap(vals, 0.95, 500, 1)
	if math.Abs(ci.Mean-0.5) > 1e-12 {
		t.Errorf("mean = %v", ci.Mean)
	}
	if !(ci.Lo <= ci.Mean && ci.Mean <= ci.Hi) {
		t.Errorf("interval does not contain the mean: %+v", ci)
	}
	if ci.Hi-ci.Lo <= 0 || ci.Hi-ci.Lo > 0.3 {
		t.Errorf("interval width implausible: %+v", ci)
	}
	// Deterministic.
	if ci != Bootstrap(vals, 0.95, 500, 1) {
		t.Error("same seed produced different CI")
	}
}

func TestBootstrapDegenerate(t *testing.T) {
	if ci := Bootstrap(nil, 0.95, 100, 1); ci != (CI{}) {
		t.Errorf("empty sample = %+v", ci)
	}
	if ci := Bootstrap([]float64{math.NaN()}, 0.95, 100, 1); ci != (CI{}) {
		t.Errorf("all-NaN sample = %+v", ci)
	}
	ci := Bootstrap([]float64{2, 2, 2}, 0.95, 100, 1)
	if ci.Mean != 2 || ci.Lo != 2 || ci.Hi != 2 {
		t.Errorf("constant sample = %+v", ci)
	}
	// Out-of-range conf/iters fall back to defaults without panicking.
	if ci := Bootstrap([]float64{1, 2, 3}, 7, -1, 1); ci.Mean != 2 {
		t.Errorf("fallback config = %+v", ci)
	}
}

func TestPairedBootstrapDelta(t *testing.T) {
	a := make([]float64, 100)
	b := make([]float64, 100)
	for i := range a {
		a[i] = 1
		b[i] = 0.5
	}
	ci := PairedBootstrapDelta(a, b, 0.95, 200, 2)
	if ci.Mean != 0.5 || ci.Lo != 0.5 || ci.Hi != 0.5 {
		t.Errorf("constant delta = %+v", ci)
	}
	// NaNs dropped pairwise.
	a[0] = math.NaN()
	ci = PairedBootstrapDelta(a, b, 0.95, 200, 2)
	if ci.Mean != 0.5 {
		t.Errorf("NaN handling = %+v", ci)
	}
}
