package eval

import (
	"math"
	"sort"

	"goalrec/internal/core"
	"goalrec/internal/intset"
)

// This file adds the beyond-accuracy measurements the paper's introduction
// motivates (serendipity, novelty, diversity — Section 1's critique of
// similarity-driven recommenders): intra-list diversity, catalog coverage,
// aggregate concentration (Gini), and surprisal/novelty.

// IntraListDiversity returns the mean, over lists, of the average pairwise
// dissimilarity 1 − sim(a, b) inside each list. Lists with fewer than two
// actions are skipped.
func IntraListDiversity(lists [][]core.ActionID, sim func(a, b core.ActionID) float64) float64 {
	total, counted := 0.0, 0
	for _, l := range lists {
		if len(l) < 2 {
			continue
		}
		sum, pairs := 0.0, 0
		for i := 0; i < len(l); i++ {
			for j := i + 1; j < len(l); j++ {
				sum += 1 - sim(l[i], l[j])
				pairs++
			}
		}
		total += sum / float64(pairs)
		counted++
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}

// CatalogCoverage returns the fraction of the action catalog that appears in
// at least one recommendation list.
func CatalogCoverage(lists [][]core.ActionID, numActions int) float64 {
	if numActions == 0 {
		return 0
	}
	seen := make(map[core.ActionID]struct{})
	for _, l := range lists {
		for _, a := range l {
			seen[a] = struct{}{}
		}
	}
	return float64(len(seen)) / float64(numActions)
}

// GiniConcentration returns the Gini coefficient of how recommendations
// concentrate on actions: 0 means every recommended action appears equally
// often, values near 1 mean a few actions monopolize the lists. Only actions
// appearing at least once are considered (absent actions are a coverage
// question, measured separately).
func GiniConcentration(lists [][]core.ActionID) float64 {
	counts := make(map[core.ActionID]int)
	for _, l := range lists {
		for _, a := range l {
			counts[a]++
		}
	}
	if len(counts) <= 1 {
		return 0
	}
	vals := make([]int, 0, len(counts))
	total := 0
	for _, c := range counts {
		vals = append(vals, c)
		total += c
	}
	sort.Ints(vals)
	// Gini over the sorted counts: Σ (2i − n − 1)·x_i / (n · Σ x).
	n := len(vals)
	acc := 0.0
	for i, v := range vals {
		acc += float64(2*(i+1)-n-1) * float64(v)
	}
	return acc / (float64(n) * float64(total))
}

// MeanNovelty returns the mean self-information −log2(p(a)) of the
// recommended actions, where p(a) is the action's frequency among the user
// activities: recommending rarely performed actions scores high. Actions
// never performed get the maximum (as if performed once).
func MeanNovelty(lists [][]core.ActionID, activities [][]core.ActionID, numActions int) float64 {
	counts := make([]int, numActions)
	users := len(activities)
	if users == 0 {
		return 0
	}
	for _, h := range activities {
		for _, a := range h {
			if int(a) < numActions {
				counts[a]++
			}
		}
	}
	total, n := 0.0, 0
	for _, l := range lists {
		for _, a := range l {
			c := 1
			if int(a) < numActions && counts[a] > 0 {
				c = counts[a]
			}
			total += log2(float64(users+1) / float64(c))
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

func log2(x float64) float64 { return math.Log2(x) }

// ListUniqueness returns the fraction of distinct recommendation lists
// (as unordered action sets) among all non-empty lists — the paper's closing
// claim that "all the mechanisms create different recommendation lists for
// different inputs" made measurable. 1 means every user got a distinct list.
func ListUniqueness(lists [][]core.ActionID) float64 {
	seen := make(map[string]struct{})
	nonEmpty := 0
	for _, l := range lists {
		if len(l) == 0 {
			continue
		}
		nonEmpty++
		s := intset.FromUnsorted(intset.Clone(l))
		key := make([]byte, 0, len(s)*5)
		for _, a := range s {
			key = append(key, byte(a), byte(a>>8), byte(a>>16), byte(a>>24), ',')
		}
		seen[string(key)] = struct{}{}
	}
	if nonEmpty == 0 {
		return 0
	}
	return float64(len(seen)) / float64(nonEmpty)
}

// UnexpectednessVsBaseline returns the mean fraction of each list that a
// reference method (typically popularity) does NOT also recommend — the
// serendipity building block.
func UnexpectednessVsBaseline(lists, reference [][]core.ActionID) float64 {
	if len(lists) == 0 || len(lists) != len(reference) {
		return 0
	}
	total, counted := 0.0, 0
	for i, l := range lists {
		if len(l) == 0 {
			continue
		}
		sl := intset.FromUnsorted(intset.Clone(l))
		ref := intset.FromUnsorted(intset.Clone(reference[i]))
		total += float64(intset.DifferenceLen(sl, ref)) / float64(len(sl))
		counted++
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}
