package eval

import (
	"math"
	"reflect"
	"testing"

	"goalrec/internal/core"
	"goalrec/internal/intset"
	"goalrec/internal/strategy"
	"goalrec/internal/testlib"
	"goalrec/internal/xrand"
)

func acts(v ...core.ActionID) []core.ActionID { return v }

func TestSplitActivity(t *testing.T) {
	rng := xrand.New(1)
	full := acts(0, 1, 2, 3, 4, 5, 6, 7, 8, 9)
	s := SplitActivity(full, 0.3, rng)
	if len(s.Visible) != 3 {
		t.Errorf("visible = %d, want 3", len(s.Visible))
	}
	if len(s.Hidden) != 7 {
		t.Errorf("hidden = %d, want 7", len(s.Hidden))
	}
	if intset.IntersectionLen(s.Visible, s.Hidden) != 0 {
		t.Error("visible and hidden overlap")
	}
	if !intset.Equal(intset.Union(nil, s.Visible, s.Hidden), full) {
		t.Error("split does not partition the activity")
	}
	if !intset.IsSorted(s.Visible) || !intset.IsSorted(s.Hidden) {
		t.Error("split halves not sorted")
	}
}

func TestSplitActivityEdgeCases(t *testing.T) {
	rng := xrand.New(2)
	if s := SplitActivity(nil, 0.3, rng); len(s.Visible) != 0 || len(s.Hidden) != 0 {
		t.Error("empty activity should split to nothing")
	}
	// Tiny activities keep at least one visible action.
	s := SplitActivity(acts(7), 0.3, rng)
	if len(s.Visible) != 1 || len(s.Hidden) != 0 {
		t.Errorf("singleton split = %+v", s)
	}
	// keepFrac 1 keeps everything.
	s = SplitActivity(acts(1, 2, 3), 1, rng)
	if len(s.Hidden) != 0 {
		t.Errorf("keepFrac=1 hid %v", s.Hidden)
	}
}

func TestSplitAllDeterministic(t *testing.T) {
	activities := [][]core.ActionID{acts(0, 1, 2, 3), acts(4, 5, 6, 7, 8)}
	a := SplitAll(activities, 0.3, 42)
	b := SplitAll(activities, 0.3, 42)
	if !reflect.DeepEqual(a, b) {
		t.Error("same seed produced different splits")
	}
	c := SplitAll(activities, 0.3, 43)
	same := reflect.DeepEqual(a, c)
	if same {
		t.Log("different seeds produced identical splits (possible but unlikely)")
	}
}

func TestSplitSequence(t *testing.T) {
	seq := acts(5, 1, 9, 3, 7) // ordered, not sorted
	s := SplitSequence(seq, 0.4)
	// First 2 of 5 visible: {5, 1} → sorted {1, 5}.
	if !intset.Equal(s.Visible, acts(1, 5)) {
		t.Errorf("visible = %v, want [1 5]", s.Visible)
	}
	if !intset.Equal(s.Hidden, acts(3, 7, 9)) {
		t.Errorf("hidden = %v", s.Hidden)
	}
	if got := SplitSequence(nil, 0.5); len(got.Visible) != 0 {
		t.Errorf("empty sequence = %+v", got)
	}
	// Tiny sequences keep one visible.
	if got := SplitSequence(acts(4), 0.1); len(got.Visible) != 1 {
		t.Errorf("singleton = %+v", got)
	}
	all := SplitAllSequences([][]core.ActionID{seq, {2}}, 0.4)
	if len(all) != 2 {
		t.Fatalf("SplitAllSequences = %v", all)
	}
}

func TestCollectMatchesSequential(t *testing.T) {
	lib := testlib.PaperLibrary()
	rec := strategy.NewBreadth(lib)
	inputs := [][]core.ActionID{acts(0), acts(0, 1), acts(1, 2), nil, acts(3)}
	got := Collect(rec, inputs, 3)
	if len(got) != len(inputs) {
		t.Fatalf("got %d outputs", len(got))
	}
	for i, in := range inputs {
		want := strategy.Actions(rec.Recommend(in, 3))
		if !reflect.DeepEqual(got[i], want) {
			t.Errorf("input %d: %v, want %v", i, got[i], want)
		}
	}
}

func TestCollectEmptyInputs(t *testing.T) {
	lib := testlib.PaperLibrary()
	if got := Collect(strategy.NewBreadth(lib), nil, 3); len(got) != 0 {
		t.Errorf("Collect(nil) = %v", got)
	}
}

func TestOverlapAtK(t *testing.T) {
	a := [][]core.ActionID{acts(1, 2, 3), acts(4, 5)}
	b := [][]core.ActionID{acts(2, 3, 9), acts(6, 7)}
	// Pair 0 shares 2 of k=3, pair 1 shares 0 → mean = (2/3 + 0)/2 = 1/3.
	if got := OverlapAtK(a, b, 3); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("OverlapAtK = %v, want 1/3", got)
	}
	if got := OverlapAtK(a, a, 3); got != 1 {
		// Identical lists overlap fully even when shorter than k.
		t.Errorf("self overlap = %v, want 1", got)
	}
	if OverlapAtK(a, b[:1], 3) != 0 {
		t.Error("mismatched lengths should yield 0")
	}
	if OverlapAtK(nil, nil, 3) != 0 {
		t.Error("empty input should yield 0")
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if got := Pearson(x, []float64{2, 4, 6, 8}); math.Abs(got-1) > 1e-12 {
		t.Errorf("perfect positive = %v", got)
	}
	if got := Pearson(x, []float64{8, 6, 4, 2}); math.Abs(got+1) > 1e-12 {
		t.Errorf("perfect negative = %v", got)
	}
	if got := Pearson(x, []float64{5, 5, 5, 5}); got != 0 {
		t.Errorf("constant series = %v, want 0", got)
	}
	if got := Pearson(x, x[:2]); got != 0 {
		t.Errorf("length mismatch = %v, want 0", got)
	}
}

func TestPopularityCorrelation(t *testing.T) {
	// Popularity: a0 in 3 activities, a1 in 2, a2 in 1.
	activities := [][]core.ActionID{acts(0, 1), acts(0, 1), acts(0, 2)}
	// Recommenders that love popular actions...
	popLists := [][]core.ActionID{acts(0), acts(0, 1), acts(0, 1)}
	if got := PopularityCorrelation(activities, popLists, 3, 3); got <= 0.8 {
		t.Errorf("popularity-following correlation = %v, want near 1", got)
	}
	// ...and one that avoids them.
	antiLists := [][]core.ActionID{acts(2), acts(2), acts(2, 1)}
	if got := PopularityCorrelation(activities, antiLists, 3, 3); got >= 0 {
		t.Errorf("popularity-avoiding correlation = %v, want negative", got)
	}
}

func TestTopIndices(t *testing.T) {
	got := topIndices([]float64{1, 9, 3, 9, 0}, 3)
	if !reflect.DeepEqual(got, []int{1, 3, 2}) {
		t.Errorf("topIndices = %v", got)
	}
	if got := topIndices([]float64{1, 2}, 5); len(got) != 2 {
		t.Errorf("n beyond length: %v", got)
	}
}

func TestAverageTPR(t *testing.T) {
	lists := [][]core.ActionID{acts(1, 2), acts(3, 4), nil}
	hidden := [][]core.ActionID{acts(2, 9), acts(3, 4), acts(5)}
	// User 0: 1/2 hit. User 1: 2/2. User 2: empty list → 0.
	want := (0.5 + 1.0 + 0) / 3
	if got := AverageTPR(lists, hidden); math.Abs(got-want) > 1e-12 {
		t.Errorf("AverageTPR = %v, want %v", got, want)
	}
	if AverageTPR(nil, nil) != 0 {
		t.Error("empty input should yield 0")
	}
}

func TestCompleteness(t *testing.T) {
	lib := testlib.PaperLibrary()
	// User 0: visible {a1}, recommended {a2, a3}. p1 = {a1,a2,a3} → g1
	// complete (1.0); g2 via p2 = {a1,a4} → 0.5; g3 via p3 = {a1,a3,a5} →
	// 2/3; g5 via p5 = {a1,a2,a6} → 2/3.
	visible := [][]core.ActionID{acts(0)}
	lists := [][]core.ActionID{acts(1, 2)}
	tri := Completeness(lib, visible, lists, nil)
	wantAvg := (1.0 + 0.5 + 2.0/3.0 + 2.0/3.0) / 4
	if math.Abs(tri.AvgAvg-wantAvg) > 1e-12 {
		t.Errorf("AvgAvg = %v, want %v", tri.AvgAvg, wantAvg)
	}
	if tri.AvgMin != 0.5 {
		t.Errorf("AvgMin = %v, want 0.5", tri.AvgMin)
	}
	if tri.AvgMax != 1 {
		t.Errorf("AvgMax = %v, want 1", tri.AvgMax)
	}
}

func TestCompletenessWithExplicitGoals(t *testing.T) {
	lib := testlib.PaperLibrary()
	visible := [][]core.ActionID{acts(0)}
	lists := [][]core.ActionID{acts(1, 2)}
	goals := func(i int) []core.GoalID { return []core.GoalID{0} } // only g1
	tri := Completeness(lib, visible, lists, goals)
	if tri.AvgAvg != 1 || tri.AvgMin != 1 || tri.AvgMax != 1 {
		t.Errorf("explicit-goal completeness = %+v, want all 1", tri)
	}
}

func TestCompletenessEmpty(t *testing.T) {
	lib := testlib.PaperLibrary()
	if tri := Completeness(lib, nil, nil, nil); tri != (Tri{}) {
		t.Errorf("empty input = %+v", tri)
	}
	// A user whose activity touches nothing contributes nothing.
	tri := Completeness(lib, [][]core.ActionID{acts(99)}, [][]core.ActionID{nil}, nil)
	if tri != (Tri{}) {
		t.Errorf("unknown-action user = %+v", tri)
	}
}

func TestPairwiseSimilarity(t *testing.T) {
	sim := func(a, b core.ActionID) float64 {
		if a/3 == b/3 {
			return 1 // same "category"
		}
		return 0
	}
	lists := [][]core.ActionID{
		acts(0, 1, 2), // all same category: avg=min=max=1
		acts(0, 3),    // different: 0
		acts(5),       // skipped (fewer than 2)
	}
	tri := PairwiseSimilarity(lists, sim)
	if tri.AvgAvg != 0.5 || tri.AvgMin != 0.5 || tri.AvgMax != 0.5 {
		t.Errorf("PairwiseSimilarity = %+v, want all 0.5", tri)
	}
	if got := PairwiseSimilarity(nil, sim); got != (Tri{}) {
		t.Errorf("empty lists = %+v", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(5)
	for _, v := range []float64{0, 0.1, 0.19, 0.5, 0.99, 1.0, -0.5, 2.0} {
		h.Observe(v)
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d, want 8", h.Total())
	}
	// Bucket 0 [0, 0.2): 0, 0.1, 0.19, -0.5 → 4 observations.
	if h.Counts[0] != 4 {
		t.Errorf("bucket 0 = %d, want 4", h.Counts[0])
	}
	// 1.0 and 2.0 clamp into the last bucket.
	if h.Counts[4] != 3 {
		t.Errorf("bucket 4 = %d, want 3 (0.99, 1.0, 2.0)", h.Counts[4])
	}
	if got := h.FractionBelow(0.2); got != 0.5 {
		t.Errorf("FractionBelow(0.2) = %v, want 0.5", got)
	}
	if NewHistogram(3).FractionBelow(1) != 0 {
		t.Error("empty histogram FractionBelow should be 0")
	}
}

func TestListFrequencyHistogram(t *testing.T) {
	lists := [][]core.ActionID{acts(1, 2), acts(1, 3), acts(1, 4), acts(1, 5)}
	h := ListFrequencyHistogram(lists, 5)
	// a1 appears in 4/4 lists (bucket [0.8,1]); a2..a5 in 1/4 each.
	if h.Total() != 5 {
		t.Fatalf("Total = %d, want 5 distinct actions", h.Total())
	}
	if h.Counts[4] != 1 {
		t.Errorf("top bucket = %d, want 1 (the monopolizing action)", h.Counts[4])
	}
	if h.Counts[1] != 4 {
		t.Errorf("bucket [0.2,0.4) = %d, want 4", h.Counts[1])
	}
}

func TestLibraryFrequencyHistogram(t *testing.T) {
	lib := testlib.PaperLibrary()
	// a1 has library frequency 0.8, a5 has 0.2.
	lists := [][]core.ActionID{acts(0), acts(0, 4)}
	h := LibraryFrequencyHistogram(lib, lists, 5)
	if h.Total() != 2 {
		t.Fatalf("Total = %d, want 2 distinct actions", h.Total())
	}
	if h.Counts[4] != 1 { // 0.8 falls in [0.8, 1)
		t.Errorf("bucket for 0.8 = %d, want 1", h.Counts[4])
	}
	if h.Counts[1] != 1 { // 0.2 falls in [0.2, 0.4)
		t.Errorf("bucket for 0.2 = %d, want 1", h.Counts[1])
	}
}
