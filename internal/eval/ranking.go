package eval

import (
	"math"

	"goalrec/internal/core"
	"goalrec/internal/intset"
)

// RankingMetrics aggregates the classical top-k ranking-accuracy measures
// against the hidden half of the split: precision@k, recall@k, F1@k, mean
// reciprocal rank, and nDCG@k (binary relevance). They complement the
// paper's Avg TPR (Figure 4) with the standard formulations.
type RankingMetrics struct {
	Precision float64
	Recall    float64
	F1        float64
	MRR       float64
	NDCG      float64
}

// Ranking computes the metrics averaged over users. lists are the
// recommendation lists (rank order preserved); hidden the held-out ground
// truth per user. Users with empty ground truth are skipped (no relevance
// judgments); users with empty lists contribute zeros.
func Ranking(lists, hidden [][]core.ActionID, k int) RankingMetrics {
	if len(lists) != len(hidden) || k <= 0 {
		return RankingMetrics{}
	}
	var m RankingMetrics
	counted := 0
	for i, l := range lists {
		truth := intset.FromUnsorted(intset.Clone(hidden[i]))
		if len(truth) == 0 {
			continue
		}
		counted++
		if len(l) > k {
			l = l[:k]
		}
		if len(l) == 0 {
			continue
		}
		hits := 0
		dcg, idcg := 0.0, 0.0
		rr := 0.0
		for rank, a := range l {
			if intset.Contains(truth, a) {
				hits++
				gain := 1 / math.Log2(float64(rank)+2)
				dcg += gain
				if rr == 0 {
					rr = 1 / float64(rank+1)
				}
			}
		}
		ideal := len(truth)
		if ideal > len(l) {
			ideal = len(l)
		}
		for rank := 0; rank < ideal; rank++ {
			idcg += 1 / math.Log2(float64(rank)+2)
		}
		p := float64(hits) / float64(len(l))
		r := float64(hits) / float64(len(truth))
		m.Precision += p
		m.Recall += r
		if p+r > 0 {
			m.F1 += 2 * p * r / (p + r)
		}
		m.MRR += rr
		if idcg > 0 {
			m.NDCG += dcg / idcg
		}
	}
	if counted == 0 {
		return RankingMetrics{}
	}
	m.Precision /= float64(counted)
	m.Recall /= float64(counted)
	m.F1 /= float64(counted)
	m.MRR /= float64(counted)
	m.NDCG /= float64(counted)
	return m
}
