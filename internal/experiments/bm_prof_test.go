package experiments

import (
	"testing"

	"goalrec/internal/core"
	"goalrec/internal/strategy"
	"goalrec/internal/xrand"
)

// benchBM1M replicates the 1M-implementation Figure 7 cell for Best Match on
// the natural vs the impact-ordered layout. Best Match never skips work
// there (the 500k-goal space exceeds bmPruneMaxGoalSpace), so this pair
// isolates the pure layout cost the GA-idx goal-major path is meant to keep
// flat — the steady-state twin of the sweep's best-match cells.
func benchBM1M(b *testing.B, impact bool) {
	cfg := ScalabilityConfig{Sizes: []int{1000000}, Actions: 10000, Seed: 1}
	cfg.fill()
	rng := xrand.New(cfg.Seed)
	lib := scalabilityLibrary(cfg, 1000000, rng.Split())
	if impact {
		lib, _ = core.ImpactOrder(lib)
	}
	queries := make([][]core.ActionID, cfg.Queries)
	qrng := rng.Split()
	for i := range queries {
		queries[i] = toActions(qrng.SampleInt32(int32(cfg.Actions), cfg.ActivityLen))
	}
	bm := strategy.NewBestMatch(lib)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.Recommend(queries[i%len(queries)], 10)
	}
}

func BenchmarkBM1MPlain(b *testing.B)  { benchBM1M(b, false) }
func BenchmarkBM1MImpact(b *testing.B) { benchBM1M(b, true) }
