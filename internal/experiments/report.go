// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 6) on the synthetic datasets, plus the ablation
// studies DESIGN.md calls out. Each experiment returns a Table that renders
// the same rows/series the paper reports; cmd/experiments drives them all.
package experiments

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: a title, a header row and labelled
// data rows.
type Table struct {
	ID      string // experiment id, e.g. "T2", "F7"
	Title   string
	Columns []string   // first column is the row label
	Rows    [][]string // each row aligned with Columns
}

// AddRow appends a formatted row; values are rendered with %v for strings
// and %.4g for floats.
func (t *Table) AddRow(label string, values ...interface{}) {
	row := make([]string, 0, len(values)+1)
	row = append(row, label)
	for _, v := range values {
		switch x := v.(type) {
		case float64:
			row = append(row, fmt.Sprintf("%.4f", x))
		case string:
			row = append(row, x)
		default:
			row = append(row, fmt.Sprintf("%v", v))
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table as aligned plain text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	total := len(t.Columns) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s — %s\n\n", t.ID, t.Title)
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	b.WriteByte('\n')
	_, err := io.WriteString(w, b.String())
	return err
}
