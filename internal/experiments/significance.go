package experiments

import (
	"fmt"

	"goalrec/internal/core"
	"goalrec/internal/eval"
)

// CompletenessByGoalCount (experiment B3) breaks Table 4's AvgAvg down by
// how many goals a user pursues (1 / 2 / 3 / 4+), the user distribution the
// paper reports for the 43Things dataset. Only meaningful for datasets whose
// users carry explicit goals.
func CompletenessByGoalCount(env *Env) *Table {
	t := &Table{
		ID:      "B3",
		Title:   fmt.Sprintf("completeness by user goal count (%s)", env.Dataset.Name),
		Columns: []string{"method", "1 goal", "2 goals", "3 goals", "4+ goals"},
	}
	// Bucket users by goal count.
	buckets := make([][]int, 4) // index 0 → 1 goal, ..., 3 → 4+
	withGoals := 0
	for i := range env.Inputs {
		g := env.GoalsOf(i)
		if len(g) == 0 {
			continue
		}
		withGoals++
		b := len(g) - 1
		if b > 3 {
			b = 3
		}
		buckets[b] = append(buckets[b], i)
	}
	if withGoals == 0 {
		t.AddRow("(users carry no explicit goals in this dataset)")
		return t
	}
	for _, name := range env.GoalMethods() {
		per := eval.CompletenessPerUser(env.Dataset.Library, env.Inputs, env.Lists[name], env.GoalsOf)
		vals := make([]interface{}, 0, 4)
		for _, users := range buckets {
			if len(users) == 0 {
				vals = append(vals, "-")
				continue
			}
			sum, n := 0.0, 0
			for _, u := range users {
				if v := per[u]; v == v { // NaN check
					sum += v
					n++
				}
			}
			if n == 0 {
				vals = append(vals, "-")
				continue
			}
			vals = append(vals, sum/float64(n))
		}
		t.AddRow(name, vals...)
	}
	return t
}

// TemporalSplit (experiment E1) contrasts the paper's shuffled hide-70%
// protocol with a temporal prefix split: the recommender sees only the
// *first* 30% of each user's ordered sequence, the deployment-realistic
// condition. Reported: avg TPR top-10 and AvgAvg completeness under both
// protocols for every goal-based method.
func TemporalSplit(env *Env) *Table {
	t := &Table{
		ID:      "E1",
		Title:   fmt.Sprintf("shuffled vs temporal-prefix split (%s)", env.Dataset.Name),
		Columns: []string{"method", "TPR shuffled", "TPR temporal", "completeness shuffled", "completeness temporal"},
	}
	sequences := make([][]core.ActionID, len(env.Inputs))
	for i := range sequences {
		sequences[i] = env.Dataset.Users[i].Sequence
	}
	temporal := eval.SplitAllSequences(sequences, env.Cfg.KeepFrac)
	tempInputs := make([][]core.ActionID, len(temporal))
	tempHidden := make([][]core.ActionID, len(temporal))
	for i, s := range temporal {
		tempInputs[i] = s.Visible
		tempHidden[i] = s.Hidden
	}
	shufHidden := env.HiddenSets()
	lib := env.Dataset.Library
	for _, name := range env.GoalMethods() {
		rec := env.Methods[name].Rec
		shufLists := env.Lists[name]
		tempLists := eval.Collect(rec, tempInputs, env.Cfg.K)
		shufTri := eval.Completeness(lib, env.Inputs, shufLists, env.GoalsOf)
		tempTri := eval.Completeness(lib, tempInputs, tempLists, env.GoalsOf)
		t.AddRow(name,
			eval.AverageTPR(shufLists, shufHidden),
			eval.AverageTPR(tempLists, tempHidden),
			shufTri.AvgAvg,
			tempTri.AvgAvg)
	}
	return t
}

// SignificanceVsBaselines (experiment B4) reports 95% paired-bootstrap
// confidence intervals for the per-user completeness advantage of each
// goal-based method over the strongest classical baseline; an interval
// entirely above zero means the Table 4 win is statistically solid.
func SignificanceVsBaselines(env *Env) *Table {
	t := &Table{
		ID:      "B4",
		Title:   fmt.Sprintf("95%% CI of per-user completeness advantage over the best baseline (%s)", env.Dataset.Name),
		Columns: []string{"method", "vs baseline", "delta mean", "CI low", "CI high", "significant"},
	}
	lib := env.Dataset.Library

	// Per-user completeness for every method.
	per := make(map[string][]float64, len(env.Order))
	for _, name := range env.Order {
		per[name] = eval.CompletenessPerUser(lib, env.Inputs, env.Lists[name], env.GoalsOf)
	}
	// Strongest baseline by mean.
	bestBase, bestMean := "", -1.0
	for _, name := range env.BaselineMethods() {
		ci := eval.Bootstrap(per[name], 0.95, 200, env.Cfg.Seed)
		if ci.Mean > bestMean {
			bestBase, bestMean = name, ci.Mean
		}
	}
	if bestBase == "" {
		t.AddRow("(no baselines present)")
		return t
	}
	for _, name := range env.GoalMethods() {
		ci := eval.PairedBootstrapDelta(per[name], per[bestBase], 0.95, 1000, env.Cfg.Seed^0xb007)
		sig := "no"
		if ci.Lo > 0 {
			sig = "yes"
		} else if ci.Hi < 0 {
			sig = "worse"
		}
		t.AddRow(name, bestBase, ci.Mean, ci.Lo, ci.Hi, sig)
	}
	return t
}
