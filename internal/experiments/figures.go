package experiments

import (
	"fmt"

	"goalrec/internal/core"
	"goalrec/internal/eval"
	"goalrec/internal/intset"
)

// Figure4 reproduces Figure 4: the average true-positive rate — the share of
// recommended actions the user actually performed (found in the hidden part
// of the split) — for top-5 and top-10 lists.
func Figure4(env *Env) *Table {
	t := &Table{
		ID:      "F4",
		Title:   fmt.Sprintf("average TPR of recommended actions (%s)", env.Dataset.Name),
		Columns: []string{"method", "top-5", "top-10"},
	}
	hidden := env.HiddenSets()
	for _, name := range append(env.GoalMethods(), env.BaselineMethods()...) {
		top5 := env.ExtraLists(name, 5)
		top10 := env.Lists[name]
		if env.Cfg.K != 10 {
			top10 = env.ExtraLists(name, 10)
		}
		t.AddRow(name, eval.AverageTPR(top5, hidden), eval.AverageTPR(top10, hidden))
	}
	return t
}

// Figure4b is the paper's exact foodmart Figure 4 protocol: the recommender
// sees one whole cart and the hit set is the union of the same customer's
// *other* carts ("we have more than one cart for the same user in different
// time slots"). Customers with a single cart are skipped. Environments
// without customer linkage yield a placeholder.
func Figure4b(env *Env) *Table {
	t := &Table{
		ID:      "F4b",
		Title:   fmt.Sprintf("average TPR vs the same customer's other carts (%s)", env.Dataset.Name),
		Columns: []string{"method", "top-5", "top-10"},
	}
	// Group evaluation rows by customer.
	byCustomer := make(map[int][]int)
	linked := false
	for i, u := range env.Dataset.Users[:len(env.Inputs)] {
		if u.Customer < 0 {
			continue
		}
		linked = true
		byCustomer[u.Customer] = append(byCustomer[u.Customer], i)
	}
	if !linked {
		t.AddRow("(no customer linkage in this dataset)")
		return t
	}
	var inputs [][]core.ActionID
	var truth [][]core.ActionID
	for _, rows := range byCustomer {
		if len(rows) < 2 {
			continue
		}
		for _, i := range rows {
			var others []core.ActionID
			for _, j := range rows {
				if j != i {
					others = append(others, env.Dataset.Users[j].Activity...)
				}
			}
			inputs = append(inputs, env.Dataset.Users[i].Activity)
			truth = append(truth, intset.FromUnsorted(others))
		}
	}
	if len(inputs) == 0 {
		t.AddRow("(no customer has more than one cart among the evaluated rows)")
		return t
	}
	for _, name := range append(env.GoalMethods(), env.BaselineMethods()...) {
		rec := env.Methods[name].Rec
		top5 := eval.Collect(rec, inputs, 5)
		top10 := eval.Collect(rec, inputs, 10)
		t.AddRow(name, eval.AverageTPR(top5, truth), eval.AverageTPR(top10, truth))
	}
	return t
}

// Figure5 reproduces Figure 5: for each goal-based method, the distribution
// of how frequently the retrieved actions appear across recommendation
// lists, as the share of actions per frequency bucket.
func Figure5(env *Env) *Table {
	return frequencyFigure(env, "F5",
		fmt.Sprintf("frequency of retrieved actions across recommendation lists (%s)", env.Dataset.Name),
		func(name string) *eval.Histogram {
			return eval.ListFrequencyHistogram(env.Lists[name], 5)
		})
}

// Figure6 reproduces Figure 6: for each goal-based method, the distribution
// of the retrieved actions' frequency in the implementation set.
func Figure6(env *Env) *Table {
	return frequencyFigure(env, "F6",
		fmt.Sprintf("library frequency of retrieved actions (%s)", env.Dataset.Name),
		func(name string) *eval.Histogram {
			return eval.LibraryFrequencyHistogram(env.Dataset.Library, env.Lists[name], 5)
		})
}

func frequencyFigure(env *Env, id, title string, histOf func(name string) *eval.Histogram) *Table {
	t := &Table{
		ID:      id,
		Title:   title,
		Columns: []string{"method", "[0,0.2)", "[0.2,0.4)", "[0.4,0.6)", "[0.6,0.8)", "[0.8,1.0]", "share<0.2"},
	}
	for _, name := range env.GoalMethods() {
		h := histOf(name)
		total := h.Total()
		vals := make([]interface{}, 0, 6)
		for _, c := range h.Counts {
			share := 0.0
			if total > 0 {
				share = float64(c) / float64(total)
			}
			vals = append(vals, share)
		}
		vals = append(vals, h.FractionBelow(0.2))
		t.AddRow(name, vals...)
	}
	return t
}
