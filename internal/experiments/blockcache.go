package experiments

import (
	"bytes"
	"fmt"
	"time"

	"goalrec/internal/core"
	"goalrec/internal/xrand"
)

// BlockCacheConfig parameterizes the paged-serving benchmark: full posting
// row scans over a snapshot-backed library under the four serving modes the
// decoded-block cache distinguishes.
type BlockCacheConfig struct {
	// Sizes lists the library sizes (implementation counts) to sweep.
	Sizes []int
	// Actions fixes the action space.
	Actions int
	// MeanImplLen is the implementation length used in the sweep.
	MeanImplLen float64
	// Scans is the number of timed posting-row scans per cell.
	Scans int
	// Zipf is the query-skew exponent: scanned actions are drawn
	// Zipf-distributed, the hot-row-dominated shape real traffic has and the
	// frequency-based admission policy targets.
	Zipf float64
	// WarmBytes is the cache budget for the warm cell.
	WarmBytes int64
	// CappedBytes is the deliberately undersized budget for the
	// eviction-under-pressure cell.
	CappedBytes int64
	// Seed drives generation.
	Seed uint64
}

func (c *BlockCacheConfig) fill() {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{8000, 32000}
	}
	if c.Actions <= 0 {
		c.Actions = 2000
	}
	if c.MeanImplLen <= 0 {
		c.MeanImplLen = 8
	}
	if c.Scans <= 0 {
		c.Scans = 2000
	}
	if c.Zipf <= 0 {
		c.Zipf = 1.05
	}
	if c.WarmBytes <= 0 {
		c.WarmBytes = 64 << 20
	}
	if c.CappedBytes <= 0 {
		c.CappedBytes = 2 << 20
	}
}

// snapshotBackedLibrary round-trips lib through an in-memory snapshot image,
// the exact representation the serving path reads.
func snapshotBackedLibrary(lib *core.Library, compress bool) (*core.Library, func() error, error) {
	var buf bytes.Buffer
	if err := core.WriteSnapshot(&buf, lib, nil, core.SnapshotOptions{CompressPostings: compress}); err != nil {
		return nil, nil, err
	}
	snap, err := core.OpenSnapshotBytes(buf.Bytes())
	if err != nil {
		return nil, nil, err
	}
	return snap.Library(), snap.Close, nil
}

// BlockCacheScan measures full posting-row scans at the swept sizes under
// four serving modes:
//
//	block-cache/raw    — uncompressed rows, served zero-copy from the
//	  mapping; the cache bypasses these. The lower bound.
//	block-cache/cold   — block-compressed rows with the cache disabled:
//	  every scan pays the per-block decode.
//	block-cache/warm   — compressed rows with the process cache sized for
//	  the working set and primed; hot blocks decode once and are shared.
//	block-cache/capped — compressed rows under a deliberately undersized
//	  budget: the eviction-under-memory-pressure regime a larger-than-RAM
//	  deployment runs in.
//
// Scanned actions are Zipf-skewed, so warm-cell hits concentrate where the
// admission policy keeps blocks resident. The warm and capped points carry
// the measured pass's cache-counter deltas.
func BlockCacheScan(cfg BlockCacheConfig) ([]ScalabilityPoint, error) {
	cfg.fill()
	core.SetBlockCacheBytes(0)
	defer core.SetBlockCacheBytes(0)
	rng := xrand.New(cfg.Seed)
	var points []ScalabilityPoint
	for _, size := range cfg.Sizes {
		lib := scalabilityLibrary(ScalabilityConfig{
			Actions: cfg.Actions, MeanImplLen: cfg.MeanImplLen,
		}, size, rng.Split())
		conn := lib.Stats().Connectivity

		rawLib, rawClose, err := snapshotBackedLibrary(lib, false)
		if err != nil {
			return nil, err
		}
		compLib, compClose, err := snapshotBackedLibrary(lib, true)
		if err != nil {
			return nil, err
		}

		zipf := xrand.NewZipf(rng.Split(), cfg.Actions, cfg.Zipf)
		actions := make([]core.ActionID, cfg.Scans)
		for i := range actions {
			actions[i] = core.ActionID(zipf.Next())
		}

		scanAll := func(l *core.Library) time.Duration {
			var buf []core.ImplID
			start := time.Now()
			for _, a := range actions {
				_, buf = l.PostingRow(a, buf)
			}
			return time.Since(start)
		}
		// One untimed pass per library faults the backing pages in, so every
		// cell measures decode work, not first-touch costs.
		scanAll(rawLib)
		scanAll(compLib)

		cell := func(method string, l *core.Library, budget int64, prime int) ScalabilityPoint {
			core.SetBlockCacheBytes(budget)
			for i := 0; i < prime; i++ {
				scanAll(l)
			}
			before := core.BlockCacheMetrics()
			elapsed := scanAll(l)
			after := core.BlockCacheMetrics()
			p := ScalabilityPoint{
				Implementations: size, Connectivity: conn,
				Method: method, MeanLatency: elapsed / time.Duration(len(actions)),
			}
			if budget > 0 {
				p.Cache = &core.BlockCacheStats{
					Hits:        after.Hits - before.Hits,
					Misses:      after.Misses - before.Misses,
					Admitted:    after.Admitted - before.Admitted,
					Evicted:     after.Evicted - before.Evicted,
					Entries:     after.Entries,
					Bytes:       after.Bytes,
					BudgetBytes: after.BudgetBytes,
				}
			}
			core.SetBlockCacheBytes(0)
			return p
		}

		points = append(points,
			cell("block-cache/raw", rawLib, 0, 0),
			cell("block-cache/cold", compLib, 0, 0),
			// Two priming passes: the doorkeeper admits a block on its second
			// touch, so the first pass registers, the second populates.
			cell("block-cache/warm", compLib, cfg.WarmBytes, 2),
			cell("block-cache/capped", compLib, cfg.CappedBytes, 2),
		)

		if err := compClose(); err != nil {
			return nil, err
		}
		if err := rawClose(); err != nil {
			return nil, err
		}
	}
	return points, nil
}

// BlockCacheTable renders the paged-serving cells with the cold-to-warm
// speedup and the warm cell's hit rate per size.
func BlockCacheTable(points []ScalabilityPoint) *Table {
	t := &Table{
		ID:      "BC",
		Title:   "paged serving: posting-row scans raw vs compressed, cold vs cached",
		Columns: []string{"implementations", "mode", "mean scan", "hit rate", "vs cold"},
	}
	coldBy := make(map[int]time.Duration)
	for _, p := range points {
		if p.Method == "block-cache/cold" {
			coldBy[p.Implementations] = p.MeanLatency
		}
	}
	for _, p := range points {
		hit := ""
		if p.Cache != nil {
			hit = fmt.Sprintf("%.1f%%", 100*p.Cache.HitRate())
		}
		vsCold := ""
		if cold, ok := coldBy[p.Implementations]; ok && p.MeanLatency > 0 && p.Method != "block-cache/cold" {
			vsCold = fmt.Sprintf("%.2fx", float64(cold)/float64(p.MeanLatency))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.Implementations),
			p.Method,
			p.MeanLatency.String(),
			hit,
			vsCold,
		})
	}
	return t
}
