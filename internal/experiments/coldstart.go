package experiments

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"goalrec/internal/core"
	"goalrec/internal/xrand"
)

// ColdStart measures how long a process takes to get a library serving from
// disk, the cost every restart pays. Two load paths per swept size:
//
//	cold-start/decode — the legacy binary codec: read the file, decode every
//	  section, rebuild the postings and AG indexes.
//	cold-start/mmap   — the snapshot format: mmap the file and validate the
//	  header and section table; the data pages fault in lazily.
//
// Both paths read a just-written file, so the page cache is warm for each —
// the measured gap is decode-and-index work, not disk. The mmap number is
// the true "time to first query possible"; queries then pay page-faults as
// they touch data, which the per-query sweeps already capture.
func ColdStart(cfg ScalabilityConfig) ([]ScalabilityPoint, error) {
	cfg.fill()
	rng := xrand.New(cfg.Seed)
	dir, err := os.MkdirTemp("", "goalrec-coldstart-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	const reps = 3
	var points []ScalabilityPoint
	for _, size := range cfg.Sizes {
		lib := scalabilityLibrary(cfg, size, rng.Split())
		conn := lib.Stats().Connectivity

		binPath := filepath.Join(dir, fmt.Sprintf("lib-%d.bin", size))
		f, err := os.Create(binPath)
		if err != nil {
			return nil, err
		}
		if err := core.WriteBinary(f, lib); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Close(); err != nil {
			return nil, err
		}
		snapPath := filepath.Join(dir, fmt.Sprintf("lib-%d.gsnp", size))
		if err := core.WriteSnapshotFile(snapPath, lib, nil, core.SnapshotOptions{CompressPostings: true}); err != nil {
			return nil, err
		}

		decode := time.Duration(0)
		for r := 0; r < reps; r++ {
			start := time.Now()
			f, err := os.Open(binPath)
			if err != nil {
				return nil, err
			}
			got, err := core.ReadBinary(bufio.NewReaderSize(f, 1<<20))
			f.Close()
			if err != nil {
				return nil, err
			}
			decode += time.Since(start)
			if got.NumImplementations() != size {
				return nil, fmt.Errorf("decode load returned %d implementations, want %d", got.NumImplementations(), size)
			}
		}

		mapped := time.Duration(0)
		for r := 0; r < reps; r++ {
			start := time.Now()
			snap, err := core.OpenSnapshot(snapPath)
			if err != nil {
				return nil, err
			}
			n := snap.Library().NumImplementations()
			mapped += time.Since(start)
			if err := snap.Close(); err != nil {
				return nil, err
			}
			if n != size {
				return nil, fmt.Errorf("mmap load returned %d implementations, want %d", n, size)
			}
		}

		points = append(points,
			ScalabilityPoint{Implementations: size, Connectivity: conn,
				Method: "cold-start/decode", MeanLatency: decode / reps},
			ScalabilityPoint{Implementations: size, Connectivity: conn,
				Method: "cold-start/mmap", MeanLatency: mapped / reps},
		)
	}
	return points, nil
}

// ColdStartTable renders the cold-start points with the decode-to-mmap
// speedup per size.
func ColdStartTable(points []ScalabilityPoint) *Table {
	t := &Table{
		ID:      "CS",
		Title:   "cold start: time until a loaded library can serve",
		Columns: []string{"implementations", "path", "load time", "speedup"},
	}
	decodeBy := make(map[int]time.Duration)
	for _, p := range points {
		if p.Method == "cold-start/decode" {
			decodeBy[p.Implementations] = p.MeanLatency
		}
	}
	for _, p := range points {
		speedup := ""
		if p.Method == "cold-start/mmap" && p.MeanLatency > 0 {
			if d, ok := decodeBy[p.Implementations]; ok {
				speedup = fmt.Sprintf("%.0fx", float64(d)/float64(p.MeanLatency))
			}
		}
		t.AddRow(fmt.Sprintf("%d", p.Implementations), p.Method, p.MeanLatency.String(), speedup)
	}
	return t
}
