package experiments

import (
	"fmt"

	"goalrec/internal/eval"
)

// Table2 reproduces Table 2: the overlap of the top-K lists of every
// goal-based method with every standard method, per environment.
func Table2(env *Env) *Table {
	t := &Table{
		ID:      "T2",
		Title:   fmt.Sprintf("overlap of goal-based vs standard top-%d lists (%s)", env.Cfg.K, env.Dataset.Name),
		Columns: append([]string{"method"}, prefixAll("overlap ", env.BaselineMethods())...),
	}
	for _, gm := range env.GoalMethods() {
		vals := make([]interface{}, 0, len(env.BaselineMethods()))
		for _, bm := range env.BaselineMethods() {
			vals = append(vals, eval.OverlapAtK(env.Lists[gm], env.Lists[bm], env.Cfg.K))
		}
		t.AddRow(gm, vals...)
	}
	return t
}

// Table3 reproduces Table 3: the Pearson correlation between the activity
// appearance counts of the top-20 most popular actions and their appearance
// counts in each method's recommendation lists.
func Table3(env *Env) *Table {
	t := &Table{
		ID:      "T3",
		Title:   fmt.Sprintf("correlation of recommendations with the top-20 popular actions (%s)", env.Dataset.Name),
		Columns: []string{"method", "correlation"},
	}
	numActions := env.Dataset.Library.NumActions()
	for _, name := range append(env.BaselineMethods(), env.GoalMethods()...) {
		corr := eval.PopularityCorrelation(env.Inputs, env.Lists[name], numActions, 20)
		t.AddRow(name, corr)
	}
	return t
}

// Table4 reproduces Table 4 / Figure 3: the completeness of the user's goals
// after following each method's recommendations (AvgAvg / MinAvg / MaxAvg).
func Table4(env *Env) *Table {
	t := &Table{
		ID:      "T4",
		Title:   fmt.Sprintf("goal completeness after following the recommendations (%s)", env.Dataset.Name),
		Columns: []string{"method", "AvgAvg", "MinAvg", "MaxAvg"},
	}
	for _, name := range append(env.GoalMethods(), env.BaselineMethods()...) {
		tri := eval.Completeness(env.Dataset.Library, env.Inputs, env.Lists[name], env.GoalsOf)
		t.AddRow(name, tri.AvgAvg, tri.AvgMin, tri.AvgMax)
	}
	return t
}

// Table5 reproduces Table 5: the pairwise feature-based similarity among the
// actions inside each list (AvgAvg / AvgMax / AvgMin); defined only for
// environments with domain features (the paper's foodmarket).
func Table5(env *Env) *Table {
	t := &Table{
		ID:      "T5",
		Title:   fmt.Sprintf("pairwise feature similarity within each list (%s)", env.Dataset.Name),
		Columns: []string{"method", "AvgAvg", "AvgMax", "AvgMin"},
	}
	sim := env.FeatureSimilarity()
	if sim == nil {
		t.AddRow("(no domain features for this dataset)")
		return t
	}
	for _, name := range append(env.BaselineMethods(), env.GoalMethods()...) {
		tri := eval.PairwiseSimilarity(env.Lists[name], sim)
		t.AddRow(name, tri.AvgAvg, tri.AvgMax, tri.AvgMin)
	}
	return t
}

// Table6 reproduces Table 6: the pairwise overlap among the goal-based
// methods' top-K lists.
func Table6(env *Env) *Table {
	goals := env.GoalMethods()
	t := &Table{
		ID:      "T6",
		Title:   fmt.Sprintf("overlap among goal-based top-%d lists (%s)", env.Cfg.K, env.Dataset.Name),
		Columns: append([]string{"method"}, goals...),
	}
	for _, a := range goals {
		vals := make([]interface{}, 0, len(goals))
		for _, b := range goals {
			vals = append(vals, eval.OverlapAtK(env.Lists[a], env.Lists[b], env.Cfg.K))
		}
		t.AddRow(a, vals...)
	}
	return t
}

func prefixAll(prefix string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = prefix + n
	}
	return out
}
