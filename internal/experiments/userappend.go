package experiments

import (
	"context"
	"fmt"
	"time"

	"goalrec/internal/core"
	"goalrec/internal/strategy"
	"goalrec/internal/xrand"
)

// UserAppendConfig parameterizes the user-append benchmark: the
// append+recommend cost with a materialized CounterView (one posting-row
// walk) against the from-scratch scan the same query pays without one.
type UserAppendConfig struct {
	// Sizes lists the library sizes (implementation counts) to sweep.
	Sizes []int
	// TopicActions is the per-topic action-space size; the full action space
	// is Topics * TopicActions.
	TopicActions int
	// Topics is the number of disjoint action clusters. Implementations and
	// user histories each draw from a single topic, the locality that makes a
	// long history cheap to maintain incrementally: an appended action's
	// posting row only touches its own topic's implementations. Zero derives
	// a count that keeps clusters near 2000 implementations as the library
	// grows — per-user relevant neighborhoods stay bounded while the library
	// doesn't, which is the regime the materialized view targets.
	Topics int
	// ImplLen is the actions per implementation.
	ImplLen int
	// HistoryLen is the materialized user history length.
	HistoryLen int
	// Appends is the number of append+recommend operations timed per cell.
	Appends int
	// Seed drives generation.
	Seed uint64
}

func (c *UserAppendConfig) fill() {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{8000, 32000}
	}
	if c.TopicActions <= 0 {
		c.TopicActions = 80
	}
	if c.ImplLen <= 0 {
		c.ImplLen = 8
	}
	if c.HistoryLen <= 0 {
		c.HistoryLen = 64
	}
	if c.Appends <= 0 {
		c.Appends = 50
	}
}

// topicsFor resolves the topic count for one swept size: the configured
// value, or a derived count keeping clusters near 2000 implementations.
func (c UserAppendConfig) topicsFor(size int) int {
	if c.Topics > 0 {
		return c.Topics
	}
	topics := size / 2000
	if topics < 10 {
		topics = 10
	}
	if topics > 500 {
		topics = 500
	}
	return topics
}

// userAppendLibrary builds a topic-clustered library: every implementation
// samples its actions from one topic's slice of the action space.
func userAppendLibrary(cfg UserAppendConfig, size, topics int, rng *xrand.RNG) *core.Library {
	b := core.NewBuilder(size, cfg.ImplLen)
	for i := 0; i < size; i++ {
		topic := int(rng.SampleInt32(int32(topics), 1)[0])
		base := int32(topic * cfg.TopicActions)
		offs := rng.SampleInt32(int32(cfg.TopicActions), cfg.ImplLen)
		acts := make([]core.ActionID, len(offs))
		for j, o := range offs {
			acts[j] = core.ActionID(base + o)
		}
		if _, err := b.Add(core.GoalID(i/2), acts); err != nil {
			panic(err) // unreachable: lengths and ids are valid by construction
		}
	}
	return b.Build()
}

// topicActivity samples n distinct actions from one topic.
func topicActivity(cfg UserAppendConfig, topic, n int, rng *xrand.RNG) []core.ActionID {
	base := int32(topic * cfg.TopicActions)
	offs := rng.SampleInt32(int32(cfg.TopicActions), n)
	acts := make([]core.ActionID, len(offs))
	for i, o := range offs {
		acts[i] = core.ActionID(base + o)
	}
	return acts
}

// UserAppend times, per (size, strategy) cell, an append+recommend operation
// two ways over the same topic-clustered library and user history:
//
//	user-scan/<strategy>   — from scratch: rebuild the counters by scanning
//	  every history action's posting row, then score. The cost a stateless
//	  server pays on every request for a stored history.
//	user-append/<strategy> — materialized: one CounterView.Apply along the
//	  new action's posting row, then score the (tiny) candidate union. The
//	  cost the user store pays.
//
// Both paths produce bit-identical rankings (pinned by the oracle and fuzz
// tests); the gap here is pure maintenance cost, which is why it widens with
// library size: the scan touches every row of a 64-action history while the
// append touches one.
func UserAppend(cfg UserAppendConfig) []ScalabilityPoint {
	cfg.fill()
	rng := xrand.New(cfg.Seed)
	var points []ScalabilityPoint
	for _, size := range cfg.Sizes {
		topics := cfg.topicsFor(size)
		lib := userAppendLibrary(cfg, size, topics, rng.Split())
		conn := lib.Stats().Connectivity
		qrng := rng.Split()
		topic := int(qrng.SampleInt32(int32(topics), 1)[0])
		// History plus the stream of actions appended during timing, all from
		// one topic. The history stays fixed across strategies so cells are
		// comparable.
		history := topicActivity(cfg, topic, cfg.HistoryLen, qrng)
		appends := make([]core.ActionID, cfg.Appends)
		for i := range appends {
			appends[i] = topicActivity(cfg, topic, 1, qrng)[0]
		}

		for _, mk := range []func() strategy.Recommender{
			func() strategy.Recommender { return strategy.NewFocus(lib, strategy.Completeness) },
			func() strategy.Recommender { return strategy.NewFocus(lib, strategy.Closeness) },
			func() strategy.Recommender { return strategy.NewBreadth(lib) },
			func() strategy.Recommender { return strategy.NewBestMatch(lib) },
		} {
			rec := mk()
			ctx := context.Background()

			// Stateless path: every append re-scans the full history.
			h := append([]core.ActionID(nil), history...)
			start := time.Now()
			for _, a := range appends {
				h = append(h, a)
				if _, err := strategy.RecommendContext(ctx, rec, h, 10); err != nil {
					panic(err)
				}
			}
			scan := time.Since(start) / time.Duration(len(appends))
			points = append(points, ScalabilityPoint{
				Implementations: size, Connectivity: conn,
				Method:      "user-scan/" + rec.Name(),
				MeanLatency: scan,
			})

			// Materialized path: the view absorbs each append incrementally.
			v := strategy.NewCounterView(lib, history)
			start = time.Now()
			for _, a := range appends {
				v.Apply(a)
				if _, err := strategy.RecommendView(ctx, rec, v, 10); err != nil {
					panic(err)
				}
			}
			inc := time.Since(start) / time.Duration(len(appends))
			points = append(points, ScalabilityPoint{
				Implementations: size, Connectivity: conn,
				Method:      "user-append/" + rec.Name(),
				MeanLatency: inc,
			})
		}
	}
	return points
}

// UserAppendTable renders the user-append cells with the scan-to-append
// speedup per (size, strategy).
func UserAppendTable(points []ScalabilityPoint) *Table {
	t := &Table{
		ID:      "UA",
		Title:   "append+recommend: from-scratch scan vs materialized counter view",
		Columns: []string{"implementations", "method", "mean latency", "speedup"},
	}
	scanBy := make(map[string]time.Duration)
	for _, p := range points {
		if len(p.Method) > 10 && p.Method[:10] == "user-scan/" {
			scanBy[fmt.Sprintf("%d/%s", p.Implementations, p.Method[10:])] = p.MeanLatency
		}
	}
	for _, p := range points {
		speedup := ""
		if len(p.Method) > 12 && p.Method[:12] == "user-append/" && p.MeanLatency > 0 {
			if d, ok := scanBy[fmt.Sprintf("%d/%s", p.Implementations, p.Method[12:])]; ok {
				speedup = fmt.Sprintf("%.0fx", float64(d)/float64(p.MeanLatency))
			}
		}
		t.AddRow(fmt.Sprintf("%d", p.Implementations), p.Method, p.MeanLatency.String(), speedup)
	}
	return t
}
