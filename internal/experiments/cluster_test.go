package experiments

import (
	"strings"
	"testing"
)

// TestClusterScaling runs a tiny sweep end to end: real TCP shard workers,
// real scatter-gather, one cell per (workers, strategy).
func TestClusterScaling(t *testing.T) {
	points, err := ClusterScaling(ClusterConfig{
		Size: 400, Actions: 120, Workers: []int{1, 3},
		Queries: 12, Concurrency: 4, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2*4 {
		t.Fatalf("got %d points, want 8 (2 worker counts x 4 strategies)", len(points))
	}
	seen := map[string]bool{}
	for _, p := range points {
		seen[p.Method] = true
		if !strings.HasPrefix(p.Method, "cluster/") {
			t.Errorf("method %q not under cluster/", p.Method)
		}
		if p.MeanLatency <= 0 {
			t.Errorf("%s: non-positive latency %v", p.Method, p.MeanLatency)
		}
		if p.Implementations != 400 {
			t.Errorf("%s: implementations = %d", p.Method, p.Implementations)
		}
	}
	for _, want := range []string{
		"cluster/focus-cmp/workers=1", "cluster/best-match/workers=3",
	} {
		if !seen[want] {
			t.Errorf("missing cell %q; got %v", want, seen)
		}
	}
	if rows := len(ClusterTable(points).Rows); rows != 8 {
		t.Errorf("table has %d rows, want 8", rows)
	}
}
