package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"goalrec/internal/core"
	"goalrec/internal/dataset"
	"goalrec/internal/eval"
)

// testConfig is a tiny but non-degenerate configuration shared by the
// package tests.
func testConfig() Config {
	return Config{
		Scale:         0.15,
		K:             10,
		KeepFrac:      0.3,
		MaxUsers:      80,
		Seed:          7,
		ALSFactors:    8,
		ALSIterations: 3,
	}
}

// Environments are deterministic and read-only after construction, so the
// package tests share one instance of each.
var (
	foodOnce sync.Once
	foodE    *Env
	foodErr  error
	lifeOnce sync.Once
	lifeE    *Env
	lifeErr  error
)

func foodEnv(t *testing.T) *Env {
	t.Helper()
	foodOnce.Do(func() { foodE, foodErr = NewFoodMartEnv(testConfig()) })
	if foodErr != nil {
		t.Fatal(foodErr)
	}
	return foodE
}

func lifeEnv(t *testing.T) *Env {
	t.Helper()
	lifeOnce.Do(func() { lifeE, lifeErr = NewFortyThreeEnv(testConfig()) })
	if lifeErr != nil {
		t.Fatal(lifeErr)
	}
	return lifeE
}

func TestEnvSetup(t *testing.T) {
	env := foodEnv(t)
	if len(env.Inputs) == 0 || len(env.Inputs) > testConfig().MaxUsers {
		t.Fatalf("inputs = %d", len(env.Inputs))
	}
	// Foodmart has features, so content must be present.
	wantMethods := []string{"best-match", "focus-cmp", "focus-cl", "breadth",
		"content", "cf-knn", "cf-mf", "popularity", "assoc-rules"}
	for _, m := range wantMethods {
		if _, ok := env.Methods[m]; !ok {
			t.Errorf("method %s missing", m)
		}
		if lists := env.Lists[m]; len(lists) != len(env.Inputs) {
			t.Errorf("method %s has %d lists, want %d", m, len(env.Lists[m]), len(env.Inputs))
		}
	}
	if len(env.GoalMethods()) != 4 {
		t.Errorf("GoalMethods = %v", env.GoalMethods())
	}
	if got := env.BaselineMethods()[0]; got != "content" {
		t.Errorf("first baseline = %s, want content", got)
	}
}

func TestEnv43ThingsHasNoContent(t *testing.T) {
	env := lifeEnv(t)
	if _, ok := env.Methods["content"]; ok {
		t.Error("43things should not have a content method")
	}
	if env.FeatureSimilarity() != nil {
		t.Error("43things should have no feature similarity")
	}
	// Users carry explicit goals.
	if g := env.GoalsOf(0); len(g) == 0 {
		t.Error("first user has no declared goals")
	}
}

func TestTablesProduceRows(t *testing.T) {
	env := foodEnv(t)
	for _, tab := range []*Table{
		Table2(env), Table3(env), Table4(env), Table5(env), Table6(env),
		Figure4(env), Figure5(env), Figure6(env),
		BeyondAccuracy(env), RankingAccuracy(env),
		CompletenessByGoalCount(env), SignificanceVsBaselines(env),
		TemporalSplit(env), MethodLatency(env),
		AblationBreadth(env), AblationBestMatch(env), AblationHybrid(env),
	} {
		if len(tab.Rows) == 0 {
			t.Errorf("%s has no rows", tab.ID)
		}
		var buf bytes.Buffer
		if err := tab.Render(&buf); err != nil {
			t.Errorf("%s render: %v", tab.ID, err)
		}
		if !strings.Contains(buf.String(), tab.ID) {
			t.Errorf("%s render missing id", tab.ID)
		}
		buf.Reset()
		if err := tab.Markdown(&buf); err != nil {
			t.Errorf("%s markdown: %v", tab.ID, err)
		}
		if !strings.Contains(buf.String(), "|") {
			t.Errorf("%s markdown missing pipes", tab.ID)
		}
	}
}

func TestTable2ShapeLowOverlap(t *testing.T) {
	env := foodEnv(t)
	// The paper's headline finding: goal-based lists overlap the standard
	// methods' lists far less than they overlap each other. At the reduced
	// test scale absolute numbers are inflated (a smaller action space
	// forces collisions), so the assertion is relative: for every goal
	// method, the mean overlap with the standard methods stays below the
	// mean overlap with its goal-based siblings.
	k := env.Cfg.K
	for _, gm := range env.GoalMethods() {
		var baseSum float64
		for _, bm := range env.BaselineMethods() {
			baseSum += eval.OverlapAtK(env.Lists[gm], env.Lists[bm], k)
		}
		baseMean := baseSum / float64(len(env.BaselineMethods()))
		var goalSum float64
		n := 0
		for _, other := range env.GoalMethods() {
			if other == gm {
				continue
			}
			goalSum += eval.OverlapAtK(env.Lists[gm], env.Lists[other], k)
			n++
		}
		goalMean := goalSum / float64(n)
		if baseMean >= goalMean {
			t.Errorf("%s: baseline overlap %.3f >= goal-sibling overlap %.3f", gm, baseMean, goalMean)
		}
	}
}

func TestTable3ShapeGoalMethodsUncorrelated(t *testing.T) {
	env := lifeEnv(t)
	tab := Table3(env)
	vals := map[string]float64{}
	for _, row := range tab.Rows {
		vals[row[0]] = parseF(t, row[1])
	}
	// The popularity recommender follows popularity by construction; every
	// goal-based method must correlate with popularity distinctly less.
	if vals["popularity"] < 0.3 {
		t.Errorf("popularity correlation = %v, want clearly positive", vals["popularity"])
	}
	for _, gm := range env.GoalMethods() {
		if vals[gm] > vals["popularity"]-0.1 {
			t.Errorf("%s correlation %v too close to popularity %v", gm, vals[gm], vals["popularity"])
		}
	}
}

func TestTable4ShapeGoalMethodsWin(t *testing.T) {
	env := lifeEnv(t)
	tab := Table4(env)
	avg := map[string]float64{}
	for _, row := range tab.Rows {
		avg[row[0]] = parseF(t, row[1])
	}
	bestGoal := 0.0
	for _, gm := range env.GoalMethods() {
		if avg[gm] > bestGoal {
			bestGoal = avg[gm]
		}
	}
	for _, bm := range env.BaselineMethods() {
		if avg[bm] > bestGoal {
			t.Errorf("baseline %s completeness %v beats best goal-based %v", bm, avg[bm], bestGoal)
		}
	}
}

func TestTable6ShapeDiagonalOne(t *testing.T) {
	env := lifeEnv(t)
	tab := Table6(env)
	for i, row := range tab.Rows {
		v := parseF(t, row[i+1])
		if v < 0.999 {
			t.Errorf("self overlap of %s = %v, want 1", row[0], v)
		}
	}
}

func TestBeyondAccuracyShape(t *testing.T) {
	env := foodEnv(t)
	tab := BeyondAccuracy(env)
	row := map[string][]string{}
	for _, r := range tab.Rows {
		row[r[0]] = r
	}
	// Content-based lists must be the least diverse (its defining drawback,
	// per Section 1); every goal-based method must beat it.
	contentDiv := parseF(t, row["content"][1])
	for _, gm := range env.GoalMethods() {
		if parseF(t, row[gm][1]) <= contentDiv {
			t.Errorf("%s diversity %s not above content %v", gm, row[gm][1], contentDiv)
		}
	}
	// Popularity concentrates maximally: its Gini and unexpectedness-vs-self
	// are extreme.
	if parseF(t, row["popularity"][5]) != 0 {
		t.Errorf("popularity unexpectedness vs itself = %s, want 0", row["popularity"][5])
	}
	for _, gm := range env.GoalMethods() {
		if parseF(t, row[gm][5]) <= 0.5 {
			t.Errorf("%s unexpectedness vs popularity = %s, want > 0.5", gm, row[gm][5])
		}
	}
}

func TestRankingAccuracyShape(t *testing.T) {
	env := lifeEnv(t)
	tab := RankingAccuracy(env)
	rec := map[string]float64{}
	for _, r := range tab.Rows {
		rec[r[0]] = parseF(t, r[2]) // recall column
	}
	bestBaseline := 0.0
	for _, bm := range env.BaselineMethods() {
		if rec[bm] > bestBaseline {
			bestBaseline = rec[bm]
		}
	}
	// On the low-connectivity dataset, every goal-based method must beat
	// every baseline on recall of the hidden actions.
	for _, gm := range env.GoalMethods() {
		if rec[gm] <= bestBaseline {
			t.Errorf("%s recall %v not above best baseline %v", gm, rec[gm], bestBaseline)
		}
	}
}

func TestFigure4bCustomerProtocol(t *testing.T) {
	food := foodEnv(t)
	tab := Figure4b(food)
	if len(tab.Rows) < 4 {
		t.Fatalf("F4b rows = %d (%v)", len(tab.Rows), tab.Rows)
	}
	for _, row := range tab.Rows {
		top5, top10 := parseF(t, row[1]), parseF(t, row[2])
		if top5 < 0 || top5 > 1 || top10 < 0 || top10 > 1 {
			t.Errorf("%s TPR out of range: %v", row[0], row)
		}
	}
	// Datasets without linkage degrade to a placeholder.
	life := lifeEnv(t)
	if tab := Figure4b(life); len(tab.Rows) != 1 {
		t.Errorf("unlinked dataset rows = %d, want 1 placeholder", len(tab.Rows))
	}
}

func TestCompletenessByGoalCount(t *testing.T) {
	life := lifeEnv(t)
	tab := CompletenessByGoalCount(life)
	if len(tab.Rows) != len(life.GoalMethods()) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// Foodmart users carry no goals; the table degrades gracefully.
	food := foodEnv(t)
	if tab := CompletenessByGoalCount(food); len(tab.Rows) != 1 {
		t.Errorf("goal-less dataset rows = %d, want 1 placeholder", len(tab.Rows))
	}
}

func TestSignificanceVsBaselines(t *testing.T) {
	life := lifeEnv(t)
	tab := SignificanceVsBaselines(life)
	if len(tab.Rows) != len(life.GoalMethods()) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// On 43things the goal-based completeness win is large; every interval
	// should be strictly positive.
	for _, row := range tab.Rows {
		if row[5] != "yes" {
			t.Errorf("%s advantage not significant: %v", row[0], row)
		}
		lo, hi := parseF(t, row[3]), parseF(t, row[4])
		if lo > hi {
			t.Errorf("inverted interval: %v", row)
		}
	}
}

func TestTemporalSplitShape(t *testing.T) {
	env := lifeEnv(t)
	tab := TemporalSplit(env)
	if len(tab.Rows) != len(env.GoalMethods()) {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		for _, cell := range row[1:] {
			v := parseF(t, cell)
			if v < 0 || v > 1 {
				t.Errorf("%s: value out of range in %v", row[0], row)
			}
		}
		// Temporal completeness should stay in the same ballpark as the
		// shuffled protocol (goal methods do not depend on order).
		shuf, temp := parseF(t, row[3]), parseF(t, row[4])
		if temp < shuf/2 {
			t.Errorf("%s: temporal completeness collapsed: %v vs %v", row[0], temp, shuf)
		}
	}
}

func TestAblationHybridShape(t *testing.T) {
	env := foodEnv(t)
	tab := AblationHybrid(env)
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// α = 1 must coincide with the pure goal-based breadth lists.
	if got := parseF(t, tab.Rows[0][4]); got < 0.999 {
		t.Errorf("alpha=1 overlap vs pure goal = %v, want 1", got)
	}
	// Lower α must not increase the overlap with the pure goal lists.
	prev := 2.0
	for _, r := range tab.Rows {
		v := parseF(t, r[4])
		if v > prev+1e-9 {
			t.Errorf("overlap vs pure goal not monotone: %v after %v", v, prev)
		}
		prev = v
	}
	// The 43things environment has no features; the table degrades
	// gracefully.
	life := lifeEnv(t)
	if tab := AblationHybrid(life); len(tab.Rows) != 1 {
		t.Errorf("featureless hybrid table rows = %d, want 1 placeholder", len(tab.Rows))
	}
}

func TestEnvGeneralizesToCurriculum(t *testing.T) {
	// The experiment pipeline is dataset-agnostic: the curriculum scenario
	// (not part of the paper's evaluation) must flow through unchanged.
	ds, err := dataset.GenerateCurriculum(dataset.CurriculumConfig{Seed: 5, Students: 60})
	if err != nil {
		t.Fatal(err)
	}
	env, err := NewEnv(Config{K: 10, KeepFrac: 0.5, Seed: 5, ALSFactors: 4, ALSIterations: 2}, ds)
	if err != nil {
		t.Fatal(err)
	}
	for _, tab := range []*Table{Table4(env), Figure4(env), CompletenessByGoalCount(env)} {
		if len(tab.Rows) == 0 {
			t.Errorf("%s empty on curriculum", tab.ID)
		}
	}
	// Students declare goals, so the explicit-goal completeness path runs.
	tri := Table4(env)
	if len(tri.Rows) == 0 {
		t.Fatal("no completeness rows")
	}
}

func TestFigure7Scalability(t *testing.T) {
	pts := Scalability(ScalabilityConfig{
		Sizes: []int{300, 1200}, Actions: 300, Queries: 10, Seed: 3,
	})
	if len(pts) != 8 {
		t.Fatalf("got %d points, want 8 (2 sizes × 4 strategies)", len(pts))
	}
	byMethod := map[string][]ScalabilityPoint{}
	for _, p := range pts {
		if p.MeanLatency <= 0 {
			t.Errorf("non-positive latency: %+v", p)
		}
		byMethod[p.Method] = append(byMethod[p.Method], p)
	}
	if len(byMethod) != 4 {
		t.Errorf("methods = %v", byMethod)
	}
	// Connectivity grows with size when the action space is fixed.
	for m, ps := range byMethod {
		if ps[0].Connectivity >= ps[1].Connectivity {
			t.Errorf("%s: connectivity did not grow: %v", m, ps)
		}
	}
	tab := Figure7(ScalabilityConfig{Sizes: []int{200}, Actions: 200, Queries: 5, Seed: 4})
	if len(tab.Rows) != 4 {
		t.Errorf("Figure7 rows = %d", len(tab.Rows))
	}
	sweep := ConnectivitySweep(300, []int{100, 400}, 5)
	if len(sweep.Rows) != 8 {
		t.Errorf("ConnectivitySweep rows = %d", len(sweep.Rows))
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := fmtSscan(s, &v); err != nil {
		t.Fatalf("cannot parse %q: %v", s, err)
	}
	return v
}

// fmtSscan is split out so the test file keeps a single fmt dependency
// point.
func fmtSscan(s string, v *float64) (int, error) {
	return fmt.Sscan(s, v)
}

// TestBlockCacheScanSmall runs the paged-serving cells at a tiny size and
// checks shape: four modes per size, warm carries cache counters with hits,
// and the cache is left disabled afterwards.
func TestBlockCacheScanSmall(t *testing.T) {
	points, err := BlockCacheScan(BlockCacheConfig{
		Sizes: []int{3000}, Actions: 300, Scans: 400, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	byMethod := map[string]ScalabilityPoint{}
	for _, p := range points {
		byMethod[p.Method] = p
	}
	for _, m := range []string{"block-cache/raw", "block-cache/cold", "block-cache/warm", "block-cache/capped"} {
		if _, ok := byMethod[m]; !ok {
			t.Fatalf("missing cell %s in %v", m, points)
		}
	}
	warm := byMethod["block-cache/warm"]
	if warm.Cache == nil || warm.Cache.Hits == 0 {
		t.Fatalf("warm cell has no cache hits: %+v", warm.Cache)
	}
	if capped := byMethod["block-cache/capped"]; capped.Cache == nil {
		t.Fatalf("capped cell lost its cache counters")
	}
	if st := core.BlockCacheMetrics(); st.BudgetBytes != 0 {
		t.Fatalf("cache left enabled after the sweep: %+v", st)
	}
	if BlockCacheTable(points) == nil {
		t.Fatal("nil table")
	}
}
