package experiments

import (
	"testing"

	"goalrec/internal/core"
	"goalrec/internal/strategy"
	"goalrec/internal/xrand"
)

// benchFocus1M replicates the 1M-implementation Figure 7 cell on one Focus
// measure, impact-ordered, pruned or not — the steady-state view of the cell
// the sweep times end to end, for profiling the kernels in isolation.
func benchFocus1M(b *testing.B, measure strategy.FocusMeasure, pruned bool) {
	cfg := ScalabilityConfig{Sizes: []int{1000000}, Actions: 10000, Seed: 1}
	cfg.fill()
	rng := xrand.New(cfg.Seed)
	lib := scalabilityLibrary(cfg, 1000000, rng.Split())
	lib, _ = core.ImpactOrder(lib)
	queries := make([][]core.ActionID, cfg.Queries)
	qrng := rng.Split()
	for i := range queries {
		queries[i] = toActions(qrng.SampleInt32(int32(cfg.Actions), cfg.ActivityLen))
	}
	f := strategy.NewFocus(lib, measure)
	if pruned {
		f.EnablePruning(new(strategy.PruneStats))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.Recommend(queries[i%len(queries)], 10)
	}
}

func BenchmarkPrunedFocusCl1M(b *testing.B)    { benchFocus1M(b, strategy.Closeness, true) }
func BenchmarkUnprunedFocusCl1M(b *testing.B)  { benchFocus1M(b, strategy.Closeness, false) }
func BenchmarkPrunedFocusCmp1M(b *testing.B)   { benchFocus1M(b, strategy.Completeness, true) }
func BenchmarkUnprunedFocusCmp1M(b *testing.B) { benchFocus1M(b, strategy.Completeness, false) }
