package experiments

import (
	"fmt"

	"goalrec/internal/eval"
	"goalrec/internal/strategy"
	"goalrec/internal/vectorspace"
)

// AblationBreadth compares the three readings of the Breadth scoring
// equation (DESIGN.md, experiment A1): overlap with the default reading,
// goal completeness, and popularity correlation for each variant.
func AblationBreadth(env *Env) *Table {
	t := &Table{
		ID:      "A1",
		Title:   fmt.Sprintf("Breadth weighting variants (%s)", env.Dataset.Name),
		Columns: []string{"variant", "overlap vs overlap-weighting", "AvgAvg completeness", "popularity corr"},
	}
	lib := env.Dataset.Library
	ref := env.Lists["breadth"]
	numActions := lib.NumActions()
	for _, w := range []strategy.BreadthWeighting{strategy.Overlap, strategy.Count, strategy.Union} {
		rec := strategy.NewBreadthWeighted(lib, w)
		lists := eval.Collect(rec, env.Inputs, env.Cfg.K)
		tri := eval.Completeness(lib, env.Inputs, lists, env.GoalsOf)
		t.AddRow(w.String(),
			eval.OverlapAtK(lists, ref, env.Cfg.K),
			tri.AvgAvg,
			eval.PopularityCorrelation(env.Inputs, lists, numActions, 20))
	}
	return t
}

// AblationBestMatch compares Best Match under the four distance metrics
// (DESIGN.md, experiment A2).
func AblationBestMatch(env *Env) *Table {
	t := &Table{
		ID:      "A2",
		Title:   fmt.Sprintf("Best Match distance metrics (%s)", env.Dataset.Name),
		Columns: []string{"metric", "overlap vs cosine", "AvgAvg completeness", "avg TPR top-10"},
	}
	lib := env.Dataset.Library
	ref := env.Lists["best-match"]
	hidden := env.HiddenSets()
	for _, m := range []vectorspace.Metric{
		vectorspace.Cosine, vectorspace.Euclidean, vectorspace.Manhattan, vectorspace.JaccardDist,
	} {
		rec := strategy.NewBestMatchMetric(lib, m)
		lists := eval.Collect(rec, env.Inputs, env.Cfg.K)
		tri := eval.Completeness(lib, env.Inputs, lists, env.GoalsOf)
		t.AddRow(m.String(),
			eval.OverlapAtK(lists, ref, env.Cfg.K),
			tri.AvgAvg,
			eval.AverageTPR(lists, hidden))
	}
	return t
}
