package experiments

import (
	"fmt"

	"goalrec/internal/eval"
	"goalrec/internal/hybrid"
	"goalrec/internal/strategy"
)

// BeyondAccuracy (experiment B1) measures the qualities the paper's
// introduction argues similarity-driven recommenders lack: intra-list
// diversity, catalog coverage, concentration (Gini), novelty, and
// unexpectedness relative to the popularity baseline.
func BeyondAccuracy(env *Env) *Table {
	t := &Table{
		ID:      "B1",
		Title:   fmt.Sprintf("beyond-accuracy metrics (%s)", env.Dataset.Name),
		Columns: []string{"method", "diversity", "coverage", "gini", "novelty", "unexpectedness", "uniqueness"},
	}
	numActions := env.Dataset.Library.NumActions()
	popLists := env.Lists["popularity"]
	sim := env.FeatureSimilarity()
	for _, name := range append(env.GoalMethods(), env.BaselineMethods()...) {
		lists := env.Lists[name]
		diversity := "-"
		if sim != nil {
			diversity = fmt.Sprintf("%.4f", eval.IntraListDiversity(lists, sim))
		}
		t.AddRow(name,
			diversity,
			eval.CatalogCoverage(lists, numActions),
			eval.GiniConcentration(lists),
			eval.MeanNovelty(lists, env.Inputs, numActions),
			eval.UnexpectednessVsBaseline(lists, popLists),
			eval.ListUniqueness(lists))
	}
	return t
}

// RankingAccuracy (experiment B2) reports classical ranking-accuracy
// metrics against the hidden split half, complementing the paper's Avg TPR:
// precision/recall/F1@K, MRR and nDCG@K per method.
func RankingAccuracy(env *Env) *Table {
	t := &Table{
		ID:      "B2",
		Title:   fmt.Sprintf("ranking accuracy vs hidden actions at top-%d (%s)", env.Cfg.K, env.Dataset.Name),
		Columns: []string{"method", "precision", "recall", "F1", "MRR", "nDCG"},
	}
	hidden := env.HiddenSets()
	for _, name := range append(env.GoalMethods(), env.BaselineMethods()...) {
		m := eval.Ranking(env.Lists[name], hidden, env.Cfg.K)
		t.AddRow(name, m.Precision, m.Recall, m.F1, m.MRR, m.NDCG)
	}
	return t
}

// AblationHybrid (experiment A3) sweeps the α blend of the hybrid
// goal+content recommender — the paper's stated future work (Section 7) —
// reporting completeness, TPR and diversity per α. Defined only for
// environments with domain features.
func AblationHybrid(env *Env) *Table {
	t := &Table{
		ID:      "A3",
		Title:   fmt.Sprintf("hybrid goal+content blend sweep (%s)", env.Dataset.Name),
		Columns: []string{"alpha", "AvgAvg completeness", "avg TPR top-10", "diversity", "overlap vs pure goal"},
	}
	feats := env.Dataset.Features
	if feats == nil {
		t.AddRow("(no domain features for this dataset)")
		return t
	}
	lib := env.Dataset.Library
	hidden := env.HiddenSets()
	sim := env.FeatureSimilarity()
	pure := env.Lists["breadth"]
	for _, alpha := range []float64{1.0, 0.75, 0.5, 0.25, 0.0} {
		rec := hybrid.New(strategy.NewBreadth(lib), feats, alpha)
		lists := eval.Collect(rec, env.Inputs, env.Cfg.K)
		tri := eval.Completeness(lib, env.Inputs, lists, env.GoalsOf)
		t.AddRow(fmt.Sprintf("%.2f", alpha),
			tri.AvgAvg,
			eval.AverageTPR(lists, hidden),
			eval.IntraListDiversity(lists, sim),
			eval.OverlapAtK(lists, pure, env.Cfg.K))
	}
	return t
}
