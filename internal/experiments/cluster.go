package experiments

import (
	"context"
	"fmt"
	"net"
	"sync"
	"time"

	"goalrec"
	"goalrec/internal/cluster"
	"goalrec/internal/xrand"
)

// ClusterConfig parameterizes the sharded-serving sweep: one synthetic
// library served by scatter-gather clusters of growing worker counts.
type ClusterConfig struct {
	// Size is the library size (implementation count).
	Size int
	// Actions fixes the action space.
	Actions int
	// Workers lists the cluster sizes to sweep.
	Workers []int
	// Queries is the number of queries timed per (workers, strategy) cell.
	Queries int
	// ActivityLen is the query activity size.
	ActivityLen int
	// Concurrency is the number of in-flight queries; scatter-gather only
	// scales when queries overlap, as they do on a loaded front end.
	Concurrency int
	// Seed drives generation.
	Seed uint64
}

func (c *ClusterConfig) fill() {
	if c.Size <= 0 {
		c.Size = 20000
	}
	if c.Actions <= 0 {
		c.Actions = 2000
	}
	if len(c.Workers) == 0 {
		c.Workers = []int{1, 2, 4}
	}
	if c.Queries <= 0 {
		c.Queries = 200
	}
	if c.ActivityLen <= 0 {
		c.ActivityLen = 5
	}
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
}

// clusterLibrary builds a synthetic named library (the cluster layer works
// on the public API, which resolves action names) with Zipf-popular actions,
// mirroring scalabilityLibrary's shape.
func clusterLibrary(cfg ClusterConfig, rng *xrand.RNG) *goalrec.Library {
	b := goalrec.NewBuilder()
	pop := xrand.NewZipf(rng.Split(), cfg.Actions, 0.6)
	for i := 0; i < cfg.Size; i++ {
		n := 2 + rng.Poisson(6)
		if n > cfg.Actions {
			n = cfg.Actions
		}
		seen := map[int]bool{}
		var acts []string
		for j := 0; j < n; j++ {
			id := pop.Next()
			if seen[id] {
				continue
			}
			seen[id] = true
			acts = append(acts, fmt.Sprintf("a%d", id))
		}
		if len(acts) < 2 {
			acts = append(acts, fmt.Sprintf("a%d", (int32(i)%int32(cfg.Actions))))
		}
		if err := b.AddImplementation(fmt.Sprintf("g%d", i/2), acts...); err != nil {
			panic(err) // unreachable: acts is non-empty and names are valid
		}
	}
	return b.Build()
}

// startCluster spins up n shard workers over even ranges (each on its own
// engine, as separate processes would be) plus a coordinator, and returns
// the coordinator with a teardown func.
func startCluster(lib *goalrec.Library, n int) (*cluster.Coordinator, func(), error) {
	per := lib.NumImplementations() / n
	var workers []*cluster.Worker
	var listeners []net.Listener
	var peers []string
	shutdown := func() {
		for _, w := range workers {
			w.Close()
		}
		for _, ln := range listeners {
			ln.Close()
		}
	}
	for i := 0; i < n; i++ {
		lo, hi := i*per, (i+1)*per
		if i == n-1 {
			hi = -1
		}
		w := cluster.NewWorker(goalrec.NewEngineFromLibrary(lib), cluster.WorkerConfig{
			Lo: lo, Hi: hi, Pruning: true,
		})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			shutdown()
			return nil, nil, err
		}
		workers = append(workers, w)
		listeners = append(listeners, ln)
		peers = append(peers, ln.Addr().String())
		go func() { _ = w.Serve(ln) }()
	}
	co := cluster.NewCoordinator(goalrec.NewEngineFromLibrary(lib), cluster.CoordinatorConfig{
		Peers: peers,
	})
	return co, func() { co.Close(); shutdown() }, nil
}

// ClusterScaling measures scatter-gather throughput as the worker count
// grows: the same library, the same query stream, clusters of 1..N shard
// workers. Each cell's MeanLatency is wall clock / queries at the configured
// concurrency, so halving it means doubled throughput.
func ClusterScaling(cfg ClusterConfig) ([]ScalabilityPoint, error) {
	cfg.fill()
	rng := xrand.New(cfg.Seed)
	lib := clusterLibrary(cfg, rng.Split())
	conn := lib.Stats().Connectivity

	actions := lib.Actions()
	qrng := rng.Split()
	queries := make([][]string, cfg.Queries)
	for i := range queries {
		idxs := qrng.SampleInt32(int32(len(actions)), cfg.ActivityLen)
		q := make([]string, len(idxs))
		for j, idx := range idxs {
			q[j] = actions[idx]
		}
		queries[i] = q
	}

	var points []ScalabilityPoint
	for _, n := range cfg.Workers {
		co, stop, err := startCluster(lib, n)
		if err != nil {
			return nil, err
		}
		for _, strat := range []string{"focus-cmp", "focus-cl", "breadth", "best-match"} {
			// Warm the shard caches (and the comms connections) off the clock.
			if _, err := co.Recommend(context.Background(), strat, "", queries[0], 10); err != nil {
				stop()
				return nil, fmt.Errorf("cluster/%s with %d workers: %w", strat, n, err)
			}
			var wg sync.WaitGroup
			var firstErr error
			var mu sync.Mutex
			jobs := make(chan []string)
			start := time.Now()
			for w := 0; w < cfg.Concurrency; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for q := range jobs {
						if _, err := co.Recommend(context.Background(), strat, "", q, 10); err != nil {
							mu.Lock()
							if firstErr == nil {
								firstErr = err
							}
							mu.Unlock()
						}
					}
				}()
			}
			for _, q := range queries {
				jobs <- q
			}
			close(jobs)
			wg.Wait()
			if firstErr != nil {
				stop()
				return nil, fmt.Errorf("cluster/%s with %d workers: %w", strat, n, firstErr)
			}
			points = append(points, ScalabilityPoint{
				Implementations: lib.NumImplementations(),
				Connectivity:    conn,
				Method:          fmt.Sprintf("cluster/%s/workers=%d", strat, n),
				MeanLatency:     time.Since(start) / time.Duration(len(queries)),
			})
		}
		stop()
	}
	return points, nil
}

// ClusterTable renders the cluster sweep: one row per (workers, strategy)
// cell, with throughput derived from the effective per-query latency.
func ClusterTable(points []ScalabilityPoint) *Table {
	t := &Table{
		ID:      "C1",
		Title:   "scatter-gather throughput vs worker count (sharded serving)",
		Columns: []string{"method", "implementations", "mean latency", "throughput"},
	}
	for _, p := range points {
		qps := 0.0
		if p.MeanLatency > 0 {
			qps = float64(time.Second) / float64(p.MeanLatency)
		}
		t.AddRow(p.Method, fmt.Sprintf("%d", p.Implementations),
			p.MeanLatency.String(), fmt.Sprintf("%.0f q/s", qps))
	}
	return t
}
