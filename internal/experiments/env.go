package experiments

import (
	"fmt"

	"goalrec/internal/baseline"
	"goalrec/internal/core"
	"goalrec/internal/dataset"
	"goalrec/internal/eval"
	"goalrec/internal/strategy"
	"goalrec/internal/vectorspace"
)

// Config scopes one experiment run. The zero value selects a laptop-friendly
// scale; Scale = 1 reproduces the paper's full cardinalities.
type Config struct {
	// Scale shrinks both synthetic datasets (default 0.05).
	Scale float64
	// K is the recommendation list length (the paper reports top-10, and
	// top-5 for Figure 4).
	K int
	// KeepFrac is the visible share of each activity (the paper keeps 30%).
	KeepFrac float64
	// MaxUsers caps the number of evaluation users per dataset (0 = all).
	MaxUsers int
	// Seed drives dataset generation and splits.
	Seed uint64
	// ALSFactors / ALSIterations size the CF MF baseline.
	ALSFactors    int
	ALSIterations int
}

func (c *Config) fill() {
	if c.Scale <= 0 {
		c.Scale = 0.05
	}
	if c.K <= 0 {
		c.K = 10
	}
	if c.KeepFrac <= 0 {
		c.KeepFrac = 0.3
	}
	if c.ALSFactors <= 0 {
		c.ALSFactors = 16
	}
	if c.ALSIterations <= 0 {
		c.ALSIterations = 8
	}
}

// Method pairs a recommender with its goal-based/baseline classification.
type Method struct {
	Rec       strategy.Recommender
	GoalBased bool
}

// Env is one prepared dataset: splits, fitted methods and their collected
// top-K recommendation lists.
type Env struct {
	Cfg     Config
	Dataset *dataset.Dataset
	// Splits aligns with Users; Visible is the recommender input.
	Splits []eval.Split
	// Inputs are the visible activities (the recommenders' queries).
	Inputs [][]core.ActionID
	// Order lists the method names in presentation order.
	Order []string
	// Methods maps name → method.
	Methods map[string]Method
	// Lists maps name → per-user top-K action lists.
	Lists map[string][][]core.ActionID
}

// GoalMethodOrder lists the goal-based method names in the paper's
// presentation order.
var GoalMethodOrder = []string{"best-match", "focus-cmp", "focus-cl", "breadth"}

// BaselineOrder lists the comparison method names in presentation order;
// content is present only in environments whose dataset defines features.
var BaselineOrder = []string{"content", "cf-knn", "cf-mf", "cf-item-knn", "popularity", "assoc-rules"}

// NewEnv prepares an environment for ds: splits every user activity, fits
// the baselines on the visible parts, and collects top-K lists for every
// method.
func NewEnv(cfg Config, ds *dataset.Dataset) (*Env, error) {
	cfg.fill()
	users := ds.Users
	if cfg.MaxUsers > 0 && len(users) > cfg.MaxUsers {
		users = users[:cfg.MaxUsers]
	}
	activities := make([][]core.ActionID, len(users))
	for i, u := range users {
		activities[i] = u.Activity
	}
	splits := eval.SplitAll(activities, cfg.KeepFrac, cfg.Seed^0x5eed)
	inputs := make([][]core.ActionID, len(splits))
	for i, s := range splits {
		inputs[i] = s.Visible
	}

	// Baselines are fit on the visible activities only: the hidden parts
	// are the evaluation ground truth.
	interactions := baseline.NewInteractions(inputs, ds.Library.NumActions())

	env := &Env{
		Cfg:     cfg,
		Dataset: ds,
		Splits:  splits,
		Inputs:  inputs,
		Methods: make(map[string]Method),
		Lists:   make(map[string][][]core.ActionID),
	}

	lib := ds.Library
	goalBased := []strategy.Recommender{
		strategy.NewBestMatch(lib),
		strategy.NewFocus(lib, strategy.Completeness),
		strategy.NewFocus(lib, strategy.Closeness),
		strategy.NewBreadth(lib),
	}
	for _, r := range goalBased {
		env.add(r, true)
	}

	if ds.Features != nil {
		env.add(baseline.NewContent(ds.Features), false)
	}
	env.add(baseline.NewKNN(interactions, 20), false)
	als, err := baseline.FitALS(interactions, baseline.ALSConfig{
		Factors:    cfg.ALSFactors,
		Iterations: cfg.ALSIterations,
		Seed:       cfg.Seed ^ 0xa15,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: fitting ALS on %s: %w", ds.Name, err)
	}
	env.add(als, false)
	env.add(baseline.NewItemKNN(interactions, 20), false)
	env.add(baseline.NewPopularity(interactions), false)
	env.add(baseline.NewAssocRules(interactions, 2), false)

	for _, name := range env.Order {
		env.Lists[name] = eval.Collect(env.Methods[name].Rec, env.Inputs, cfg.K)
	}
	return env, nil
}

func (e *Env) add(r strategy.Recommender, goalBased bool) {
	e.Order = append(e.Order, r.Name())
	e.Methods[r.Name()] = Method{Rec: r, GoalBased: goalBased}
}

// GoalMethods returns the goal-based method names present, in order.
func (e *Env) GoalMethods() []string {
	var out []string
	for _, n := range GoalMethodOrder {
		if _, ok := e.Methods[n]; ok {
			out = append(out, n)
		}
	}
	return out
}

// BaselineMethods returns the baseline method names present, in order.
func (e *Env) BaselineMethods() []string {
	var out []string
	for _, n := range BaselineOrder {
		if _, ok := e.Methods[n]; ok {
			out = append(out, n)
		}
	}
	return out
}

// HiddenSets projects the splits onto their hidden halves.
func (e *Env) HiddenSets() [][]core.ActionID {
	out := make([][]core.ActionID, len(e.Splits))
	for i, s := range e.Splits {
		out[i] = s.Hidden
	}
	return out
}

// GoalsOf returns the per-user goal scope for completeness measurements:
// the user's declared goals when the dataset records them, else nil (the
// goal space of the visible activity).
func (e *Env) GoalsOf(i int) []core.GoalID {
	if i < len(e.Dataset.Users) {
		return e.Dataset.Users[i].Goals
	}
	return nil
}

// ExtraLists collects top-k lists at a non-default k (Figure 4 needs
// top-5).
func (e *Env) ExtraLists(name string, k int) [][]core.ActionID {
	return eval.Collect(e.Methods[name].Rec, e.Inputs, k)
}

// NewFoodMartEnv builds the grocery environment at the config's scale.
func NewFoodMartEnv(cfg Config) (*Env, error) {
	cfg.fill()
	ds, err := dataset.GenerateFoodMart(dataset.FoodMartConfig{Scale: cfg.Scale, Seed: cfg.Seed ^ 0xf00d})
	if err != nil {
		return nil, err
	}
	return NewEnv(cfg, ds)
}

// NewFortyThreeEnv builds the life-goal environment at the config's scale.
func NewFortyThreeEnv(cfg Config) (*Env, error) {
	cfg.fill()
	ds, err := dataset.GenerateFortyThreeThings(dataset.FortyThreeThingsConfig{Scale: cfg.Scale, Seed: cfg.Seed ^ 0x43})
	if err != nil {
		return nil, err
	}
	return NewEnv(cfg, ds)
}

// FeatureSimilarity adapts the dataset's features to the pairwise-similarity
// metric; it returns nil when the dataset has no features.
func (e *Env) FeatureSimilarity() func(a, b core.ActionID) float64 {
	feats := e.Dataset.Features
	if feats == nil {
		return nil
	}
	return func(a, b core.ActionID) float64 {
		return vectorspace.CosineSimilarity(feats.Vector(a), feats.Vector(b))
	}
}
