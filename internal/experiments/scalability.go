package experiments

import (
	"fmt"
	"time"

	"goalrec/internal/core"
	"goalrec/internal/strategy"
	"goalrec/internal/xrand"
)

// ScalabilityPoint is one cell of Figure 7: the mean per-query latency of
// one strategy on one synthetic library.
type ScalabilityPoint struct {
	Implementations int
	Connectivity    float64
	Method          string
	MeanLatency     time.Duration
	// Prune carries this cell's pruning counters when the sweep ran with
	// Pruning; nil otherwise.
	Prune *strategy.PruneStatsSnapshot
	// Cache carries the decoded-block cache counters for the block-cache/*
	// cells that ran with a cache enabled; nil otherwise.
	Cache *core.BlockCacheStats
}

// ScalabilityConfig parameterizes the Figure 7 sweep.
type ScalabilityConfig struct {
	// Sizes lists the library sizes (implementation counts) to sweep.
	Sizes []int
	// Actions fixes the action space; connectivity grows with Sizes when
	// the action space is fixed, mirroring the paper's observation that
	// connectivity, not raw size, drives the cost.
	Actions int
	// MeanImplLen is the implementation length used in the sweep.
	MeanImplLen float64
	// Queries is the number of query activities timed per cell.
	Queries int
	// ActivityLen is the query activity size.
	ActivityLen int
	// Seed drives generation.
	Seed uint64
	// Pruning runs the sweep on the bound-driven pruned kernels and records
	// their counters per cell.
	Pruning bool
	// ImpactOrdering re-lays-out each swept library in impact order before
	// timing, the layout the pruned kernels are designed for.
	ImpactOrdering bool
}

func (c *ScalabilityConfig) fill() {
	if len(c.Sizes) == 0 {
		c.Sizes = []int{2000, 8000, 32000}
	}
	if c.Actions <= 0 {
		c.Actions = 2000
	}
	if c.MeanImplLen <= 0 {
		c.MeanImplLen = 8
	}
	if c.Queries <= 0 {
		c.Queries = 50
	}
	if c.ActivityLen <= 0 {
		c.ActivityLen = 5
	}
}

// scalabilityLibrary builds a synthetic library with the requested size over
// a fixed action space.
func scalabilityLibrary(cfg ScalabilityConfig, size int, rng *xrand.RNG) *core.Library {
	b := core.NewBuilder(size, int(cfg.MeanImplLen))
	pop := xrand.NewZipf(rng.Split(), cfg.Actions, 0.6)
	for i := 0; i < size; i++ {
		n := 2 + rng.Poisson(cfg.MeanImplLen-2)
		if n > cfg.Actions {
			n = cfg.Actions
		}
		acts := make([]core.ActionID, n)
		for j := range acts {
			acts[j] = core.ActionID(pop.Next())
		}
		if _, err := b.Add(core.GoalID(i/2), acts); err != nil {
			panic(err) // unreachable: n >= 2 and ids are non-negative
		}
	}
	return b.Build()
}

// Scalability runs the Figure 7 sweep and returns one point per
// (size, strategy) cell.
func Scalability(cfg ScalabilityConfig) []ScalabilityPoint {
	cfg.fill()
	rng := xrand.New(cfg.Seed)
	var points []ScalabilityPoint
	for _, size := range cfg.Sizes {
		lib := scalabilityLibrary(cfg, size, rng.Split())
		if cfg.ImpactOrdering {
			lib, _ = core.ImpactOrder(lib)
		}
		conn := lib.Stats().Connectivity
		queries := make([][]core.ActionID, cfg.Queries)
		qrng := rng.Split()
		for i := range queries {
			queries[i] = toActions(qrng.SampleInt32(int32(cfg.Actions), cfg.ActivityLen))
		}
		for _, mk := range []func() strategy.Recommender{
			func() strategy.Recommender { return strategy.NewFocus(lib, strategy.Completeness) },
			func() strategy.Recommender { return strategy.NewFocus(lib, strategy.Closeness) },
			func() strategy.Recommender { return strategy.NewBreadth(lib) },
			func() strategy.Recommender { return strategy.NewBestMatch(lib) },
		} {
			rec := mk()
			var stats *strategy.PruneStats
			if cfg.Pruning {
				stats = new(strategy.PruneStats)
				switch r := rec.(type) {
				case *strategy.Focus:
					r.EnablePruning(stats)
				case *strategy.Breadth:
					r.EnablePruning(stats)
				case *strategy.BestMatch:
					r.EnablePruning(stats)
				}
			}
			start := time.Now()
			for _, q := range queries {
				rec.Recommend(q, 10)
			}
			p := ScalabilityPoint{
				Implementations: size,
				Connectivity:    conn,
				Method:          rec.Name(),
				MeanLatency:     time.Since(start) / time.Duration(len(queries)),
			}
			if stats != nil {
				snap := stats.Snapshot()
				p.Prune = &snap
			}
			points = append(points, p)
		}
	}
	return points
}

// toActions converts raw sampled ids into action ids.
func toActions(s []int32) []core.ActionID {
	out := make([]core.ActionID, len(s))
	for i, v := range s {
		out[i] = core.ActionID(v)
	}
	return out
}

// Figure7 renders the scalability sweep as a table: one row per
// (implementations, method) cell.
func Figure7(cfg ScalabilityConfig) *Table {
	return Figure7Table(Scalability(cfg))
}

// Figure7Table renders already-computed sweep points, so callers that also
// export the points (e.g. -bench-json) run the sweep only once.
func Figure7Table(points []ScalabilityPoint) *Table {
	t := &Table{
		ID:      "F7",
		Title:   "per-query latency vs library size and connectivity",
		Columns: []string{"implementations", "connectivity", "method", "mean latency"},
	}
	for _, p := range points {
		t.AddRow(fmt.Sprintf("%d", p.Implementations),
			fmt.Sprintf("%.1f", p.Connectivity), p.Method, p.MeanLatency.String())
	}
	return t
}

// MethodLatency (experiment E2) measures the mean per-query latency of every
// method on a prepared dataset environment — the paper's Section 6.2 "time
// efficiency on the two datasets" view, including the baselines for context.
// Queries run single-threaded so numbers are comparable across methods.
func MethodLatency(env *Env) *Table {
	t := &Table{
		ID:      "E2",
		Title:   fmt.Sprintf("mean per-query latency on the prepared dataset (%s)", env.Dataset.Name),
		Columns: []string{"method", "mean latency", "queries"},
	}
	inputs := env.Inputs
	if len(inputs) == 0 {
		t.AddRow("(no evaluation users)")
		return t
	}
	for _, name := range append(env.GoalMethods(), env.BaselineMethods()...) {
		rec := env.Methods[name].Rec
		start := time.Now()
		for _, h := range inputs {
			rec.Recommend(h, env.Cfg.K)
		}
		mean := time.Since(start) / time.Duration(len(inputs))
		t.AddRow(name, mean.String(), fmt.Sprintf("%d", len(inputs)))
	}
	return t
}

// ConnectivitySweep complements Figure 7 with the paper's second axis: fixed
// library size, growing connectivity (shrinking action space).
func ConnectivitySweep(size int, actionSpaces []int, seed uint64) *Table {
	t := &Table{
		ID:      "F7b",
		Title:   fmt.Sprintf("per-query latency vs connectivity at %d implementations", size),
		Columns: []string{"actions", "connectivity", "method", "mean latency"},
	}
	for _, actions := range actionSpaces {
		cfg := ScalabilityConfig{Sizes: []int{size}, Actions: actions, Seed: seed}
		for _, p := range Scalability(cfg) {
			t.AddRow(fmt.Sprintf("%d", actions),
				fmt.Sprintf("%.1f", p.Connectivity), p.Method, p.MeanLatency.String())
		}
	}
	return t
}
