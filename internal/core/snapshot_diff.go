package core

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"goalrec/internal/faultfs"
)

// Incremental snapshot diffs. A delta snapshot (.gsnpd, container version 2)
// carries the same logical sections as a full snapshot but stores each one as
// a (base-prefix reference, inline tail) pair: when a section's new bytes
// start with the base snapshot's bytes for that section — the normal case for
// the append-mostly CSR arrays after ingest — only the tail is written, and
// the referenced prefix is recorded as {byte length, crc32} against the base.
// Materializing a delta over its base reproduces, bit for bit, the full
// snapshot the same library would have written — so every downstream
// consumer (open, scrub, verify, cold start) sees a canonical v1 image and
// the delta format never leaks past materialization.
//
// Layout (little-endian):
//
//	[0,64)    header — identical fields to v1, version = 2; the CRC at
//	          offset 60 covers header[0:60] + preamble + section table
//	[64,80)   delta preamble: base epoch u64, reserved u64
//	[80,...)  nSec × 40-byte entries: id u32, elem u32, inline off u64,
//	          count u64 (full logical element count), refLen u64 (bytes
//	          referenced from the base section's prefix), refCRC u32,
//	          reserved u32
//	...       64-byte-aligned inline payloads (count*elem − refLen bytes each)
//	footer    GSUM whole-file crc32, as in v1
const (
	snapshotDeltaVersion = 2
	snapDeltaPreSize     = 16
	snapDeltaSectSize    = 40
)

// deltaSection is one parsed delta-table entry.
type deltaSection struct {
	id     uint32
	elem   uint32
	off    uint64 // inline payload offset in the delta file
	count  uint64 // full logical element count of the section
	refLen uint64 // bytes referenced from the base section's prefix
	refCRC uint32
}

func (d deltaSection) inlineLen() uint64 { return d.count*uint64(d.elem) - d.refLen }

// SnapshotBase is a parsed full (v1) snapshot image used as the reference
// side of diffing and materialization. It aliases data; the caller owns the
// lifetime.
type SnapshotBase struct {
	data  []byte
	secs  map[uint32]snapSection
	epoch uint64
}

// NewSnapshotBase parses a full snapshot image for use as a diff base.
func NewSnapshotBase(data []byte) (*SnapshotBase, error) {
	secs, _, err := snapshotSections(data)
	if err != nil {
		return nil, fmt.Errorf("core: delta base: %w", err)
	}
	return &SnapshotBase{data: data, secs: secs, epoch: binary.LittleEndian.Uint64(data[48:])}, nil
}

// Epoch returns the base snapshot's epoch.
func (b *SnapshotBase) Epoch() uint64 { return b.epoch }

// section returns the base's payload bytes for section id, or nil when the
// base has no such section or a mismatched element width.
func (b *SnapshotBase) section(id, elem uint32) []byte {
	s, ok := b.secs[id]
	if !ok || s.elem != elem {
		return nil
	}
	return b.data[s.off : s.off+s.count*uint64(s.elem)]
}

// IsSnapshotDelta reports whether data begins like a delta snapshot.
func IsSnapshotDelta(data []byte) bool {
	return len(data) >= 8 &&
		binary.LittleEndian.Uint32(data[0:]) == snapshotMagic &&
		binary.LittleEndian.Uint32(data[4:]) == snapshotDeltaVersion
}

// parseDelta validates the delta header + table and returns the entries in
// table order plus the header flags and the base epoch the delta requires.
func parseDelta(data []byte) ([]deltaSection, uint32, uint64, error) {
	if len(data) < snapHeaderSize+snapDeltaPreSize {
		return nil, 0, 0, fmt.Errorf("truncated delta header (%d bytes)", len(data))
	}
	if m := binary.LittleEndian.Uint32(data[0:]); m != snapshotMagic {
		return nil, 0, 0, fmt.Errorf("bad magic %#x", m)
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != snapshotDeltaVersion {
		return nil, 0, 0, fmt.Errorf("not a delta snapshot (version %d)", v)
	}
	flags := binary.LittleEndian.Uint32(data[8:])
	nSec := int(binary.LittleEndian.Uint32(data[12:]))
	if nSec <= 0 || nSec > snapMaxSections {
		return nil, 0, 0, fmt.Errorf("implausible section count %d", nSec)
	}
	tableEnd := snapHeaderSize + snapDeltaPreSize + snapDeltaSectSize*nSec
	if tableEnd > len(data) {
		return nil, 0, 0, fmt.Errorf("truncated delta section table (%d sections, %d bytes)", nSec, len(data))
	}
	crc := crc32.ChecksumIEEE(data[:60])
	crc = crc32.Update(crc, crc32.IEEETable, data[snapHeaderSize:tableEnd])
	if want := binary.LittleEndian.Uint32(data[60:]); crc != want {
		return nil, 0, 0, fmt.Errorf("delta header checksum mismatch (%#x != %#x)", crc, want)
	}
	baseEpoch := binary.LittleEndian.Uint64(data[snapHeaderSize:])
	secs := make([]deltaSection, 0, nSec)
	seen := make(map[uint32]bool, nSec)
	for i := 0; i < nSec; i++ {
		e := data[snapHeaderSize+snapDeltaPreSize+snapDeltaSectSize*i:]
		d := deltaSection{
			id:     binary.LittleEndian.Uint32(e[0:]),
			elem:   binary.LittleEndian.Uint32(e[4:]),
			off:    binary.LittleEndian.Uint64(e[8:]),
			count:  binary.LittleEndian.Uint64(e[16:]),
			refLen: binary.LittleEndian.Uint64(e[24:]),
			refCRC: binary.LittleEndian.Uint32(e[32:]),
		}
		if d.elem != 1 && d.elem != 4 && d.elem != 8 {
			return nil, 0, 0, fmt.Errorf("delta section %d: bad element size %d", d.id, d.elem)
		}
		full := d.count * uint64(d.elem)
		if d.refLen > full || d.refLen%uint64(d.elem) != 0 {
			return nil, 0, 0, fmt.Errorf("delta section %d: reference of %d bytes over %d", d.id, d.refLen, full)
		}
		if d.off%snapAlign != 0 {
			return nil, 0, 0, fmt.Errorf("delta section %d: misaligned offset %d", d.id, d.off)
		}
		end := d.off + d.inlineLen()
		if d.off < uint64(tableEnd) || end < d.off || end > uint64(len(data)) {
			return nil, 0, 0, fmt.Errorf("delta section %d: range [%d, %d) outside file of %d bytes", d.id, d.off, end, len(data))
		}
		if seen[d.id] {
			return nil, 0, 0, fmt.Errorf("duplicate delta section %d", d.id)
		}
		seen[d.id] = true
		secs = append(secs, d)
	}
	return secs, flags, baseEpoch, nil
}

// renderSection materializes one planned section's payload bytes.
func renderSection(sec *snapSection) ([]byte, error) {
	var buf bytes.Buffer
	sw := &snapWriter{w: bufio.NewWriterSize(&buf, 1<<16)}
	sec.emit(sw)
	if sw.err != nil {
		return nil, sw.err
	}
	if err := sw.w.Flush(); err != nil {
		return nil, err
	}
	if got, want := uint64(buf.Len()), sec.count*uint64(sec.elem); got != want {
		return nil, fmt.Errorf("core: snapshot section %d rendered %d bytes, want %d", sec.id, got, want)
	}
	return buf.Bytes(), nil
}

// WriteSnapshotDiff writes l as a delta snapshot against base. Sections whose
// bytes extend the base's (byte-identical prefix — the common case for the
// append-mostly CSR arrays) store only the tail inline; everything else is
// inlined whole. Materializing the result over the same base reproduces the
// exact bytes WriteSnapshot would emit for l.
func WriteSnapshotDiff(w io.Writer, l *Library, vocab *Vocabulary, opts SnapshotOptions, base *SnapshotBase) error {
	p, err := planSnapshot(l, vocab, opts)
	if err != nil {
		return err
	}
	secs := p.secs
	payloads := make([][]byte, len(secs))
	refLens := make([]uint64, len(secs))
	refCRCs := make([]uint32, len(secs))
	for i := range secs {
		if payloads[i], err = renderSection(&secs[i]); err != nil {
			return err
		}
		if bb := base.section(secs[i].id, secs[i].elem); len(bb) > 0 &&
			len(payloads[i]) >= len(bb) && bytes.Equal(payloads[i][:len(bb)], bb) {
			refLens[i] = uint64(len(bb))
			refCRCs[i] = crc32.ChecksumIEEE(bb)
		}
	}

	// Assign aligned inline offsets; secs[i].off holds the inline position.
	off := alignUp(uint64(snapHeaderSize + snapDeltaPreSize + snapDeltaSectSize*len(secs)))
	for i := range secs {
		secs[i].off = off
		off = alignUp(off + uint64(len(payloads[i])) - refLens[i])
	}

	hdr := p.headerBytes(snapshotDeltaVersion)
	pre := make([]byte, snapDeltaPreSize)
	binary.LittleEndian.PutUint64(pre[0:], base.epoch)
	table := make([]byte, snapDeltaSectSize*len(secs))
	for i, s := range secs {
		e := table[snapDeltaSectSize*i:]
		binary.LittleEndian.PutUint32(e[0:], s.id)
		binary.LittleEndian.PutUint32(e[4:], s.elem)
		binary.LittleEndian.PutUint64(e[8:], s.off)
		binary.LittleEndian.PutUint64(e[16:], s.count)
		binary.LittleEndian.PutUint64(e[24:], refLens[i])
		binary.LittleEndian.PutUint32(e[32:], refCRCs[i])
	}
	crc := crc32.ChecksumIEEE(hdr[:60])
	crc = crc32.Update(crc, crc32.IEEETable, pre)
	crc = crc32.Update(crc, crc32.IEEETable, table)
	binary.LittleEndian.PutUint32(hdr[60:], crc)

	sw := &snapWriter{w: bufio.NewWriterSize(w, 1<<16)}
	sw.write(hdr)
	sw.write(pre)
	sw.write(table)
	for i := range secs {
		sw.padTo(secs[i].off)
		sw.write(payloads[i][refLens[i]:])
	}
	var footer [snapFooterSize]byte
	binary.LittleEndian.PutUint32(footer[0:], snapFooterMagic)
	binary.LittleEndian.PutUint32(footer[4:], sw.crc)
	sw.write(footer[:])
	if sw.err != nil {
		return fmt.Errorf("core: writing snapshot delta: %w", sw.err)
	}
	return sw.w.Flush()
}

// WriteSnapshotDiffFile writes the delta snapshot to path atomically
// (same-directory temp, fsync, rename, directory fsync).
func WriteSnapshotDiffFile(path string, l *Library, vocab *Vocabulary, opts SnapshotOptions, base *SnapshotBase) error {
	return WriteSnapshotDiffFileFS(faultfs.OS, path, l, vocab, opts, base)
}

// WriteSnapshotDiffFileFS is WriteSnapshotDiffFile over an explicit
// filesystem (fault injection; see internal/faultfs).
func WriteSnapshotDiffFileFS(fsys faultfs.FS, path string, l *Library, vocab *Vocabulary, opts SnapshotOptions, base *SnapshotBase) (err error) {
	dir := filepathDir(path)
	f, err := fsys.CreateTemp(dir, ".snapd-*.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			_ = f.Close()
			_ = fsys.Remove(tmp)
		}
	}()
	if err = WriteSnapshotDiff(f, l, vocab, opts, base); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = fsys.Rename(tmp, path); err != nil {
		return err
	}
	return fsys.SyncDir(dir)
}

// MaterializeDelta reassembles the full v1 snapshot image a delta encodes:
// each section is its referenced base prefix (verified against the recorded
// crc32) followed by the delta's inline tail. The result is bit-identical to
// what WriteSnapshot would have produced for the same library, so it opens,
// verifies and scrubs like any full snapshot.
func MaterializeDelta(delta []byte, base *SnapshotBase) ([]byte, error) {
	secs, _, baseEpoch, err := parseDelta(delta)
	if err != nil {
		return nil, fmt.Errorf("core: materialize delta: %w", err)
	}
	if base.epoch != baseEpoch {
		return nil, fmt.Errorf("core: materialize delta: delta requires base epoch %d, base has epoch %d", baseEpoch, base.epoch)
	}
	n := len(secs)
	offs := make([]uint64, n)
	off := alignUp(uint64(snapHeaderSize + snapSectSize*n))
	for i, d := range secs {
		offs[i] = off
		off = alignUp(off + d.count*uint64(d.elem))
	}
	imgEnd := offs[n-1] + secs[n-1].count*uint64(secs[n-1].elem)
	out := make([]byte, imgEnd+snapFooterSize)

	// v1 header: the delta header minus version and CRC, which differ.
	copy(out[:snapHeaderSize], delta[:snapHeaderSize])
	binary.LittleEndian.PutUint32(out[4:], snapshotVersion)
	table := out[snapHeaderSize : snapHeaderSize+snapSectSize*n]
	for i, d := range secs {
		e := table[snapSectSize*i:]
		binary.LittleEndian.PutUint32(e[0:], d.id)
		binary.LittleEndian.PutUint32(e[4:], d.elem)
		binary.LittleEndian.PutUint64(e[8:], offs[i])
		binary.LittleEndian.PutUint64(e[16:], d.count)
	}
	crc := crc32.ChecksumIEEE(out[:60])
	crc = crc32.Update(crc, crc32.IEEETable, table)
	binary.LittleEndian.PutUint32(out[60:], crc)

	for i, d := range secs {
		pos := offs[i]
		if d.refLen > 0 {
			bb := base.section(d.id, d.elem)
			if uint64(len(bb)) < d.refLen {
				return nil, fmt.Errorf("core: materialize delta: section %d references %d base bytes, base has %d", d.id, d.refLen, len(bb))
			}
			pref := bb[:d.refLen]
			if got := crc32.ChecksumIEEE(pref); got != d.refCRC {
				return nil, fmt.Errorf("core: materialize delta: section %d base content mismatch (%#x != %#x)", d.id, got, d.refCRC)
			}
			copy(out[pos:], pref)
			pos += d.refLen
		}
		copy(out[pos:], delta[d.off:d.off+d.inlineLen()])
	}
	binary.LittleEndian.PutUint32(out[imgEnd:], snapFooterMagic)
	binary.LittleEndian.PutUint32(out[imgEnd+4:], crc32.ChecksumIEEE(out[:imgEnd]))
	return out, nil
}

// SnapshotDeltaInfo reads just enough of the delta file at path to return its
// own epoch and the base epoch it references, without loading the payloads.
func SnapshotDeltaInfo(fsys faultfs.FS, path string) (epoch, baseEpoch uint64, err error) {
	fsys = faultfs.Or(fsys)
	f, err := fsys.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	head := make([]byte, snapHeaderSize+snapDeltaPreSize)
	if _, err := io.ReadFull(f, head); err != nil {
		return 0, 0, fmt.Errorf("core: delta %s: truncated header: %w", path, err)
	}
	if !IsSnapshotDelta(head) {
		return 0, 0, fmt.Errorf("core: delta %s: not a delta snapshot", path)
	}
	return binary.LittleEndian.Uint64(head[48:]), binary.LittleEndian.Uint64(head[snapHeaderSize:]), nil
}
