package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Named binary snapshots bundle the id-level library with its vocabulary,
// giving large named libraries a compact load-fast format (the JSON-lines
// format stays the interchange/diff-friendly one).

const vocabMagic = uint32(0x47564f43) // "GVOC"

// maxNameLen bounds a single interned name in a snapshot.
const maxNameLen = 1 << 16

// WriteNamedBinary writes the library followed by its vocabulary.
func WriteNamedBinary(w io.Writer, l *Library, vocab *Vocabulary) error {
	bw := bufio.NewWriter(w)
	if err := WriteBinary(bw, l); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, vocabMagic); err != nil {
		return fmt.Errorf("core: writing vocab magic: %w", err)
	}
	for _, names := range [][]string{vocab.Actions.Names(), vocab.Goals.Names()} {
		if err := binary.Write(bw, binary.LittleEndian, uint32(len(names))); err != nil {
			return fmt.Errorf("core: writing vocab size: %w", err)
		}
		for _, name := range names {
			if len(name) > maxNameLen {
				return fmt.Errorf("core: name of length %d exceeds the %d-byte snapshot limit", len(name), maxNameLen)
			}
			if err := binary.Write(bw, binary.LittleEndian, uint32(len(name))); err != nil {
				return fmt.Errorf("core: writing name length: %w", err)
			}
			if _, err := bw.WriteString(name); err != nil {
				return fmt.Errorf("core: writing name: %w", err)
			}
		}
	}
	return bw.Flush()
}

// ReadNamedBinary reads a snapshot written by WriteNamedBinary.
func ReadNamedBinary(r io.Reader) (*Library, *Vocabulary, error) {
	br := bufio.NewReader(r)
	lib, err := ReadBinary(br)
	if err != nil {
		return nil, nil, err
	}
	var magic uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, nil, fmt.Errorf("core: reading vocab magic: %w", err)
	}
	if magic != vocabMagic {
		return nil, nil, fmt.Errorf("core: bad vocab magic %#x", magic)
	}
	vocab := NewVocabulary()
	for section, in := range []*Interner{vocab.Actions, vocab.Goals} {
		var n uint32
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return nil, nil, fmt.Errorf("core: reading vocab section %d size: %w", section, err)
		}
		if n > 1<<26 {
			return nil, nil, fmt.Errorf("core: implausible vocab size %d", n)
		}
		for i := uint32(0); i < n; i++ {
			var ln uint32
			if err := binary.Read(br, binary.LittleEndian, &ln); err != nil {
				return nil, nil, fmt.Errorf("core: reading name length: %w", err)
			}
			if ln > maxNameLen {
				return nil, nil, fmt.Errorf("core: implausible name length %d", ln)
			}
			buf := make([]byte, ln)
			if _, err := io.ReadFull(br, buf); err != nil {
				return nil, nil, fmt.Errorf("core: reading name: %w", err)
			}
			// A duplicate name would silently shift every later id; reject
			// corrupt vocabularies outright.
			if got := in.Intern(string(buf)); got != int32(i) {
				return nil, nil, fmt.Errorf("core: duplicate vocabulary name %q", buf)
			}
		}
	}
	// Cross-check: the vocabulary must cover the library's id spaces.
	if vocab.Actions.Len() < lib.NumActions() || vocab.Goals.Len() < lib.NumGoals() {
		return nil, nil, fmt.Errorf("core: vocabulary (%d actions, %d goals) smaller than library id space (%d, %d)",
			vocab.Actions.Len(), vocab.Goals.Len(), lib.NumActions(), lib.NumGoals())
	}
	return lib, vocab, nil
}
