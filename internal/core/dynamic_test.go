package core

import (
	"sync"
	"testing"
)

func TestDynamicLibraryBasics(t *testing.T) {
	d := NewDynamicLibrary()
	if d.Len() != 0 {
		t.Fatalf("Len = %d", d.Len())
	}
	snap0 := d.Snapshot()
	if snap0.NumImplementations() != 0 {
		t.Fatalf("empty snapshot has %d implementations", snap0.NumImplementations())
	}

	if _, err := d.Add(0, actions(0, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Add(1, actions(1, 2)); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}

	// The old snapshot is unaffected; a new one sees the additions.
	if snap0.NumImplementations() != 0 {
		t.Error("old snapshot mutated")
	}
	snap1 := d.Snapshot()
	if snap1.NumImplementations() != 2 {
		t.Errorf("snapshot has %d implementations, want 2", snap1.NumImplementations())
	}
	if got := snap1.ImplsOfAction(1); len(got) != 2 {
		t.Errorf("postings of a1 = %v", got)
	}
}

func TestDynamicLibrarySnapshotCached(t *testing.T) {
	d := NewDynamicLibrary()
	if _, err := d.Add(0, actions(0)); err != nil {
		t.Fatal(err)
	}
	s1 := d.Snapshot()
	s2 := d.Snapshot()
	if s1 != s2 {
		t.Error("consecutive snapshots without writes should be identical")
	}
	if _, err := d.Add(1, actions(1)); err != nil {
		t.Fatal(err)
	}
	if s3 := d.Snapshot(); s3 == s1 {
		t.Error("snapshot not invalidated by write")
	}
}

func TestDynamicLibraryAddValidation(t *testing.T) {
	d := NewDynamicLibrary()
	if _, err := d.Add(0, nil); err == nil {
		t.Error("empty activity accepted")
	}
	if d.Len() != 0 {
		t.Errorf("failed add counted: %d", d.Len())
	}
}

func TestDynamicLibraryBatch(t *testing.T) {
	d := NewDynamicLibrary()
	n, err := d.AddImplementations([]Implementation{
		{Goal: 0, Actions: actions(0, 1)},
		{Goal: 1, Actions: actions(2)},
	})
	if err != nil || n != 2 {
		t.Fatalf("batch add = %d, %v", n, err)
	}
	// A batch with an invalid element stops there and reports the count.
	n, err = d.AddImplementations([]Implementation{
		{Goal: 2, Actions: actions(3)},
		{Goal: -1, Actions: actions(4)},
		{Goal: 3, Actions: actions(5)},
	})
	if err == nil || n != 1 {
		t.Fatalf("partial batch = %d, %v", n, err)
	}
	if d.Len() != 3 {
		t.Errorf("Len = %d, want 3", d.Len())
	}
	if snap := d.Snapshot(); snap.NumImplementations() != 3 {
		t.Errorf("snapshot = %d implementations", snap.NumImplementations())
	}
}

func TestDynamicLibraryConcurrent(t *testing.T) {
	d := NewDynamicLibrary()
	var wg sync.WaitGroup
	const writers, perWriter = 8, 50
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := d.Add(GoalID(w), actions(ActionID(w), ActionID(i))); err != nil {
					t.Error(err)
					return
				}
				if i%10 == 0 {
					// Readers interleave with writers.
					snap := d.Snapshot()
					if snap.NumImplementations() == 0 {
						t.Error("snapshot lost writes")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if d.Len() != writers*perWriter {
		t.Errorf("Len = %d, want %d", d.Len(), writers*perWriter)
	}
	snap := d.Snapshot()
	if snap.NumImplementations() != writers*perWriter {
		t.Errorf("snapshot = %d implementations", snap.NumImplementations())
	}
}
