package core

import (
	"math/rand"
	"sync"
	"testing"

	"goalrec/internal/intset"
)

func TestDynamicLibraryBasics(t *testing.T) {
	d := NewDynamicLibrary()
	if d.Len() != 0 {
		t.Fatalf("Len = %d", d.Len())
	}
	snap0 := d.Snapshot()
	if snap0.NumImplementations() != 0 {
		t.Fatalf("empty snapshot has %d implementations", snap0.NumImplementations())
	}

	if _, err := d.Add(0, actions(0, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Add(1, actions(1, 2)); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}

	// The old snapshot is unaffected; a new one sees the additions.
	if snap0.NumImplementations() != 0 {
		t.Error("old snapshot mutated")
	}
	snap1 := d.Snapshot()
	if snap1.NumImplementations() != 2 {
		t.Errorf("snapshot has %d implementations, want 2", snap1.NumImplementations())
	}
	if got := snap1.ImplsOfAction(1); len(got) != 2 {
		t.Errorf("postings of a1 = %v", got)
	}
}

func TestDynamicLibrarySnapshotCached(t *testing.T) {
	d := NewDynamicLibrary()
	if _, err := d.Add(0, actions(0)); err != nil {
		t.Fatal(err)
	}
	s1 := d.Snapshot()
	s2 := d.Snapshot()
	if s1 != s2 {
		t.Error("consecutive snapshots without writes should be identical")
	}
	if _, err := d.Add(1, actions(1)); err != nil {
		t.Fatal(err)
	}
	if s3 := d.Snapshot(); s3 == s1 {
		t.Error("snapshot not invalidated by write")
	}
}

func TestDynamicLibraryAddValidation(t *testing.T) {
	d := NewDynamicLibrary()
	if _, err := d.Add(0, nil); err == nil {
		t.Error("empty activity accepted")
	}
	if d.Len() != 0 {
		t.Errorf("failed add counted: %d", d.Len())
	}
}

func TestDynamicLibraryBatch(t *testing.T) {
	d := NewDynamicLibrary()
	n, err := d.AddImplementations([]Implementation{
		{Goal: 0, Actions: actions(0, 1)},
		{Goal: 1, Actions: actions(2)},
	})
	if err != nil || n != 2 {
		t.Fatalf("batch add = %d, %v", n, err)
	}
	// A batch with an invalid element stops there and reports the count.
	n, err = d.AddImplementations([]Implementation{
		{Goal: 2, Actions: actions(3)},
		{Goal: -1, Actions: actions(4)},
		{Goal: 3, Actions: actions(5)},
	})
	if err == nil || n != 1 {
		t.Fatalf("partial batch = %d, %v", n, err)
	}
	if d.Len() != 3 {
		t.Errorf("Len = %d, want 3", d.Len())
	}
	if snap := d.Snapshot(); snap.NumImplementations() != 3 {
		t.Errorf("snapshot = %d implementations", snap.NumImplementations())
	}
}

func TestDynamicLibraryConcurrent(t *testing.T) {
	d := NewDynamicLibrary()
	var wg sync.WaitGroup
	const writers, perWriter = 8, 50
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := d.Add(GoalID(w), actions(ActionID(w), ActionID(i))); err != nil {
					t.Error(err)
					return
				}
				if i%10 == 0 {
					// Readers interleave with writers.
					snap := d.Snapshot()
					if snap.NumImplementations() == 0 {
						t.Error("snapshot lost writes")
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if d.Len() != writers*perWriter {
		t.Errorf("Len = %d, want %d", d.Len(), writers*perWriter)
	}
	snap := d.Snapshot()
	if snap.NumImplementations() != writers*perWriter {
		t.Errorf("snapshot = %d implementations", snap.NumImplementations())
	}
}

func TestDynamicLibraryEpochs(t *testing.T) {
	d := NewDynamicLibrary()
	s0 := d.Snapshot()
	if s0.Epoch() != 0 {
		t.Fatalf("initial epoch = %d", s0.Epoch())
	}
	if _, err := d.Add(0, actions(0, 1)); err != nil {
		t.Fatal(err)
	}
	s1 := d.Snapshot()
	if s1.Epoch() != 1 {
		t.Errorf("epoch after first write = %d, want 1", s1.Epoch())
	}
	if d.Snapshot().Epoch() != 1 {
		t.Error("snapshot without writes advanced the epoch")
	}
	if _, err := d.Add(1, actions(2)); err != nil {
		t.Fatal(err)
	}
	if got := d.Snapshot().Epoch(); got != 2 {
		t.Errorf("epoch after second write = %d, want 2", got)
	}
	if s1.Epoch() != 1 {
		t.Error("old snapshot's epoch mutated")
	}

	b := NewBuilder(1, 1)
	if _, err := b.Add(5, actions(7)); err != nil {
		t.Fatal(err)
	}
	swapped := d.Swap(b.Build())
	if swapped.Epoch() != 3 {
		t.Errorf("epoch after swap = %d, want 3", swapped.Epoch())
	}
	if got := swapped.NumImplementations(); got != 1 {
		t.Errorf("swapped snapshot has %d implementations", got)
	}
	// The lineage keeps extending past the swapped-in library.
	if _, err := d.Add(6, actions(7, 8)); err != nil {
		t.Fatal(err)
	}
	s4 := d.Snapshot()
	if s4.Epoch() != 4 || s4.NumImplementations() != 2 {
		t.Errorf("post-swap extend: epoch=%d impls=%d", s4.Epoch(), s4.NumImplementations())
	}
	if got := s4.ImplsOfAction(7); len(got) != 2 {
		t.Errorf("postings of a7 after swap+extend = %v", got)
	}
	if swapped.NumImplementations() != 1 {
		t.Error("swapped snapshot mutated by later append")
	}
}

// libraryEqual asserts two libraries are observationally identical:
// statistics, per-implementation content, and every index row.
func libraryEqual(t *testing.T, got, want *Library) {
	t.Helper()
	if g, w := got.Stats(), want.Stats(); g != w {
		t.Fatalf("stats\n got %+v\nwant %+v", g, w)
	}
	for p := 0; p < want.NumImplementations(); p++ {
		id := ImplID(p)
		if got.Goal(id) != want.Goal(id) {
			t.Fatalf("impl %d goal = %d, want %d", p, got.Goal(id), want.Goal(id))
		}
		if !intset.Equal(got.Actions(id), want.Actions(id)) {
			t.Fatalf("impl %d actions = %v, want %v", p, got.Actions(id), want.Actions(id))
		}
	}
	for a := ActionID(0); int(a) < want.NumActions(); a++ {
		if !intset.Equal(got.ImplsOfAction(a), want.ImplsOfAction(a)) {
			t.Fatalf("IS(%d) = %v, want %v", a, got.ImplsOfAction(a), want.ImplsOfAction(a))
		}
		gg, gc := got.GoalsOfAction(a)
		wg, wc := want.GoalsOfAction(a)
		if !intset.Equal(gg, wg) {
			t.Fatalf("AG goals of %d = %v, want %v", a, gg, wg)
		}
		for i := range gc {
			if gc[i] != wc[i] {
				t.Fatalf("AG counts of %d = %v, want %v", a, gc, wc)
			}
		}
	}
	for g := GoalID(0); int(g) < want.NumGoals(); g++ {
		if !intset.Equal(got.ImplsOfGoal(g), want.ImplsOfGoal(g)) {
			t.Fatalf("impls of goal %d = %v, want %v", g, got.ImplsOfGoal(g), want.ImplsOfGoal(g))
		}
		if got.GoalWalkCost(g) != want.GoalWalkCost(g) {
			t.Fatalf("walk cost of goal %d = %d, want %d", g, got.GoalWalkCost(g), want.GoalWalkCost(g))
		}
	}
}

// TestDynamicLibraryIncrementalEquivalence drives random add sequences
// through snapshots taken at every step — crossing several compactions via a
// tiny threshold — and checks each snapshot against a cold Builder.Build
// over the same implementations.
func TestDynamicLibraryIncrementalEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	d := NewDynamicLibrary()
	d.compactMin = 7 // cross the overlay/compaction boundary many times
	b := NewBuilder(0, 0)
	var holds []*Library // every 10th snapshot, re-verified at the end
	var refs []*Library
	for i := 0; i < 300; i++ {
		g := GoalID(rng.Intn(20))
		n := 1 + rng.Intn(5)
		acts := make([]ActionID, n)
		for j := range acts {
			acts[j] = ActionID(rng.Intn(40))
		}
		if _, err := d.Add(g, acts); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Add(g, acts); err != nil {
			t.Fatal(err)
		}
		snap := d.Snapshot()
		if snap.Epoch() != uint64(i+1) {
			t.Fatalf("epoch = %d at step %d", snap.Epoch(), i)
		}
		want := b.Build()
		libraryEqual(t, snap, want)
		if i%10 == 0 {
			holds = append(holds, snap)
			refs = append(refs, want)
		}
	}
	// Old snapshots still return their epoch's results after all appends.
	for i, snap := range holds {
		libraryEqual(t, snap, refs[i])
	}
}
