package core

import "sync"

// This file carries the bound metadata behind the strategies' threshold-aware
// (block-max) scanning: per-posting-row block summaries, the library-wide
// maximum implementation length, and suffix maxima over action degrees. All
// of it is derived once per snapshot — at Build/compaction time for flat
// libraries, per touched row for extended (overlay) snapshots — and is pure
// summary data: dropping it changes nothing observable, using it lets a
// top-k scan skip whole runs of postings that provably cannot beat the
// current k-th score (see DESIGN.md, "Bounds & pruning").

// PostingBlockEntries is the number of posting entries summarized by one
// block of A-GI row metadata. Posting rows are sorted by implementation id,
// so block j of a row covers entries [j·PostingBlockEntries,
// (j+1)·PostingBlockEntries) exactly.
const PostingBlockEntries = 128

// PostingBlocks is the block-max metadata of one A-GI posting row. For every
// fixed-size block of the row it records the last (maximum) implementation
// id, and the minimum and maximum |A_p| over the block's implementations.
// min |A_p| upper-bounds both Focus measures for every implementation in the
// block (completeness ≤ min(overlap, |A_p|)/|A_p|, closeness ≤
// 1/(|A_p| − overlap)); max |A_p| caps the achievable overlap
// (|A_p ∩ H| ≤ min(max |A_p|, |H|)). All three slices have one entry per
// block and must not be modified.
type PostingBlocks struct {
	Last   []ImplID
	MinLen []int32
	MaxLen []int32
}

// NumBlocks returns the number of blocks in the row.
func (b PostingBlocks) NumBlocks() int { return len(b.Last) }

// appendRowBlocks appends the block summaries of one posting row to the
// three parallel destination slices and returns them. The row must be sorted
// and its implementation ids must be valid in l.
func (l *Library) appendRowBlocks(row []ImplID, last []ImplID, minLen, maxLen []int32) ([]ImplID, []int32, []int32) {
	for lo := 0; lo < len(row); lo += PostingBlockEntries {
		hi := lo + PostingBlockEntries
		if hi > len(row) {
			hi = len(row)
		}
		mn := int32(1) << 30
		mx := int32(0)
		for _, p := range row[lo:hi] {
			n := l.implOff[p+1] - l.implOff[p]
			if n < mn {
				mn = n
			}
			if n > mx {
				mx = n
			}
		}
		last = append(last, row[hi-1])
		minLen = append(minLen, mn)
		maxLen = append(maxLen, mx)
	}
	return last, minLen, maxLen
}

// buildBlocks derives the flat block-max arrays from the A-GI postings and
// the library-wide maximum implementation length. Called from buildIndexes.
func (l *Library) buildBlocks() {
	nAct := l.numActions
	total := 0
	for a := 0; a < nAct; a++ {
		d := int(l.actOff[a+1] - l.actOff[a])
		total += (d + PostingBlockEntries - 1) / PostingBlockEntries
	}
	l.blkOff = make([]int32, nAct+1)
	l.blkLast = make([]ImplID, 0, total)
	l.blkMinLen = make([]int32, 0, total)
	l.blkMaxLen = make([]int32, 0, total)
	for a := 0; a < nAct; a++ {
		l.blkOff[a] = int32(len(l.blkLast))
		row := l.actPost[l.actOff[a]:l.actOff[a+1]]
		l.blkLast, l.blkMinLen, l.blkMaxLen = l.appendRowBlocks(row, l.blkLast, l.blkMinLen, l.blkMaxLen)
	}
	l.blkOff[nAct] = int32(len(l.blkLast))

	l.maxImplLen = 0
	l.implLenSorted = true
	prev := int32(0)
	for p := 0; p+1 < len(l.implOff); p++ {
		n := l.implOff[p+1] - l.implOff[p]
		if n > l.maxImplLen {
			l.maxImplLen = n
		}
		if n < prev {
			l.implLenSorted = false
		}
		prev = n
	}
	l.bounds = &boundAux{}
}

// ImplLenSorted reports whether implementation lengths are non-decreasing in
// id — the impact-ordered layout. Threshold-aware scans use it to turn a
// score floor into a global id cutoff (see internal/strategy, prune.go).
// Derived at build time and maintained incrementally across extended
// snapshots, so reading it is free on the query path.
func (l *Library) ImplLenSorted() bool { return l.implLenSorted }

// ActionPostingBlocks returns the block-max metadata of action a's posting
// row, aligned with ImplsOfAction(a). Ids outside the library — or newer
// than the snapshot's base indexes and never touched — yield an empty view.
func (l *Library) ActionPostingBlocks(a ActionID) PostingBlocks {
	if a < 0 || int(a) >= l.numActions {
		return PostingBlocks{}
	}
	if l.ovBlocks != nil {
		if b, ok := l.ovBlocks[a]; ok {
			return b
		}
	}
	if int(a)+1 >= len(l.blkOff) {
		return PostingBlocks{}
	}
	lo, hi := l.blkOff[a], l.blkOff[a+1]
	return PostingBlocks{
		Last:   l.blkLast[lo:hi],
		MinLen: l.blkMinLen[lo:hi],
		MaxLen: l.blkMaxLen[lo:hi],
	}
}

// MaxImplLen returns the largest |A_p| in the library, 0 when empty. It caps
// every per-implementation weight a scan can encounter.
func (l *Library) MaxImplLen() int { return int(l.maxImplLen) }

// boundAux carries the lazily derived suffix bounds of one snapshot. The
// arrays depend on every row of the snapshot, so extended snapshots get a
// fresh boundAux rather than maintaining them incrementally; laziness keeps
// snapshotting an append proportional to the touched rows.
type boundAux struct {
	once      sync.Once
	sfxActDeg []int32 // sfxActDeg[a] = max over a' ≥ a of |IS(a')|
}

func (l *Library) boundsAux() *boundAux {
	aux := l.bounds
	if aux == nil {
		// Hand-built library (tests); fall back to an uncached aux.
		aux = &boundAux{}
	}
	aux.once.Do(func() {
		sfx := make([]int32, l.numActions+1)
		for a := l.numActions - 1; a >= 0; a-- {
			d := int32(l.ActionDegree(ActionID(a)))
			if d < sfx[a+1] {
				d = sfx[a+1]
			}
			sfx[a] = d
		}
		aux.sfxActDeg = sfx
	})
	return aux
}

// ActionDegreeSuffixMax returns max over a' ≥ a of ActionDegree(a'): an
// upper bound on the posting-row length of every action id from a on. A
// MaxScore-style candidate loop walking ids in ascending order uses it to
// stop once no remaining candidate can beat the current k-th score; with
// impact ordering (frequency-descending ids) the bound is exact at every
// position. The suffix array is derived once per snapshot on first use.
func (l *Library) ActionDegreeSuffixMax(a ActionID) int {
	if a < 0 {
		a = 0
	}
	aux := l.boundsAux()
	if int(a) >= len(aux.sfxActDeg) {
		return 0
	}
	return int(aux.sfxActDeg[a])
}
