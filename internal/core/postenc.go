package core

import "encoding/binary"

// Delta-varint block codec for A-GI posting rows (see DESIGN.md, "Snapshot
// format & WAL"). A posting row is strictly increasing, so each entry is
// stored as the uvarint gap to its predecessor; blocks follow the exact
// PostingBlockEntries boundaries of the block-max metadata (blocks.go), and
// the predecessor of a block's first entry is the previous block's Last value
// (−1 for the first block). A block can therefore be decoded knowing only the
// shared block metadata — no other block — which is what lets the pruned
// scans skip a block without ever touching its bytes.

// appendBlockEncoded appends the delta-varint encoding of one block's entries
// to dst. prev is the entry preceding row[0] (−1 at the start of a posting
// row, the previous block's Last otherwise); row must be strictly increasing
// with row[0] > prev.
func appendBlockEncoded(dst []byte, prev ImplID, row []ImplID) []byte {
	v := int64(prev)
	var tmp [binary.MaxVarintLen64]byte
	for _, p := range row {
		n := binary.PutUvarint(tmp[:], uint64(int64(p)-v))
		dst = append(dst, tmp[:n]...)
		v = int64(p)
	}
	return dst
}

// decodeBlockAppend appends n entries decoded from blob to dst, starting from
// predecessor prev. A truncated or malformed varint stream ends the decode
// early rather than panicking; deep validation is VerifySnapshot's job.
func decodeBlockAppend(blob []byte, prev ImplID, n int, dst []ImplID) []ImplID {
	v := int64(prev)
	for i := 0; i < n; i++ {
		d, w := binary.Uvarint(blob)
		if w <= 0 {
			break
		}
		blob = blob[w:]
		v += int64(d)
		dst = append(dst, ImplID(v))
	}
	return dst
}
