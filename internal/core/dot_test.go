package core

import (
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	lib, vocab := namedFixture(t)
	dot := DOTString(lib, vocab, 0)
	for _, want := range []string{
		"graph goalmodel {",
		`"p1: olivier salad"`,
		`"potatoes"`,
		"impl0 -- act0;",
		"}",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	// Shared actions render one node only.
	if strings.Count(dot, `label="potatoes"`) != 1 {
		t.Errorf("potatoes node duplicated:\n%s", dot)
	}
}

func TestWriteDOTCapsImplementations(t *testing.T) {
	lib, vocab := namedFixture(t)
	dot := DOTString(lib, vocab, 1)
	if strings.Contains(dot, "impl1 ") {
		t.Errorf("cap ignored:\n%s", dot)
	}
	if !strings.Contains(dot, "impl0 ") {
		t.Errorf("first implementation missing:\n%s", dot)
	}
}
