package core

import "goalrec/internal/intset"

// DedupeStats reports what Deduplicate removed.
type DedupeStats struct {
	// Kept is the number of implementations in the output library.
	Kept int
	// ExactDuplicates is the number of implementations dropped because an
	// earlier implementation of the same goal had the identical action set.
	ExactDuplicates int
	// NearDuplicates is the number dropped because an earlier
	// implementation of the same goal overlapped at or above the threshold.
	NearDuplicates int
}

// Deduplicate returns a copy of the library with duplicate implementations
// of the same goal removed. An implementation is dropped when an earlier
// implementation of the same goal has Jaccard similarity ≥ threshold with
// it; threshold 1 removes only exact duplicates, lower values also collapse
// near-duplicates. Extracted libraries (user-generated stories) are the
// typical input: many authors describe the same action set for one goal.
// Implementations of different goals are never merged — the same action set
// can legitimately implement several goals (Figure 1's outfit example).
func Deduplicate(l *Library, threshold float64) (*Library, DedupeStats) {
	if threshold <= 0 || threshold > 1 {
		threshold = 1
	}
	b := NewBuilder(l.NumImplementations(), 4)
	var stats DedupeStats

	// keptOfGoal tracks the retained action sets per goal, compared in
	// insertion order so the earliest telling of a goal wins.
	keptOfGoal := make(map[GoalID][][]ActionID)
	for p := 0; p < l.NumImplementations(); p++ {
		id := ImplID(p)
		goal := l.Goal(id)
		acts := l.Actions(id)
		dup := false
		for _, prev := range keptOfGoal[goal] {
			j := intset.Jaccard(prev, acts)
			if j >= threshold {
				if j == 1 && len(prev) == len(acts) {
					stats.ExactDuplicates++
				} else {
					stats.NearDuplicates++
				}
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		keptOfGoal[goal] = append(keptOfGoal[goal], acts)
		if _, err := b.Add(goal, acts); err != nil {
			// Unreachable: the source library only holds valid
			// implementations.
			continue
		}
		stats.Kept++
	}
	return b.Build(), stats
}
