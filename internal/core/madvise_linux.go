//go:build linux

package core

import "syscall"

// madviseSpan applies the advice class to data[off:off+n], rounded outward to
// page boundaries and clamped to the mapping. The mapping base is page-
// aligned (syscall.Mmap), so the rounded span is a valid madvise target.
// Hints are best-effort: errors (e.g. on a heap-backed test image) are
// deliberately ignored.
func madviseSpan(data []byte, off, n uint64, advice int) {
	if n == 0 || off >= uint64(len(data)) {
		return
	}
	end := off + n
	if end > uint64(len(data)) || end < off {
		end = uint64(len(data))
	}
	page := uint64(syscall.Getpagesize())
	off -= off % page
	if rem := end % page; rem != 0 {
		if e := end + (page - rem); e <= uint64(len(data)) {
			end = e
		} else {
			end = uint64(len(data))
		}
	}
	if off >= end {
		return
	}
	a := syscall.MADV_NORMAL
	switch advice {
	case adviseRandom:
		a = syscall.MADV_RANDOM
	case adviseWillNeed:
		a = syscall.MADV_WILLNEED
	}
	_ = syscall.Madvise(data[off:end], a)
}
