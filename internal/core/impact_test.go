package core

import (
	"math/rand"
	"testing"

	"goalrec/internal/intset"
)

func TestImpactOrderRelabeling(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		lib := randomLibrary(r, 1+r.Intn(300), 1+r.Intn(30), 12)
		ord, perm := ImpactOrder(lib)

		if ord.NumImplementations() != lib.NumImplementations() ||
			ord.NumActions() != lib.NumActions() || ord.NumGoals() != lib.NumGoals() {
			t.Fatalf("shape changed: (%d,%d,%d) -> (%d,%d,%d)",
				lib.NumImplementations(), lib.NumActions(), lib.NumGoals(),
				ord.NumImplementations(), ord.NumActions(), ord.NumGoals())
		}

		// The permutation is a bijection and inverse-consistent.
		seen := make([]bool, lib.NumActions())
		for n, o := range perm.ActionOld {
			if seen[o] {
				t.Fatalf("old id %d mapped twice", o)
			}
			seen[o] = true
			if perm.ActionNew[o] != ActionID(n) {
				t.Fatalf("ActionNew[%d] = %d, want %d", o, perm.ActionNew[o], n)
			}
		}

		// New ids are degree-descending and degrees are preserved.
		prev := int(^uint(0) >> 1)
		for n := 0; n < ord.NumActions(); n++ {
			d := ord.ActionDegree(ActionID(n))
			if d != lib.ActionDegree(perm.ActionOld[n]) {
				t.Fatalf("degree of new id %d: %d, want %d", n, d, lib.ActionDegree(perm.ActionOld[n]))
			}
			if d > prev {
				t.Fatalf("degrees not descending at new id %d: %d after %d", n, d, prev)
			}
			prev = d
		}

		// The multiset of (goal, relabeled action set) pairs is unchanged.
		key := func(l *Library, p ImplID, toNew func(ActionID) ActionID) string {
			acts := intset.Clone(l.Actions(p))
			for i := range acts {
				acts[i] = toNew(acts[i])
			}
			acts = intset.FromUnsorted(acts)
			out := make([]byte, 0, 4*len(acts)+4)
			out = append(out, byte(l.Goal(p)), byte(l.Goal(p)>>8))
			for _, a := range acts {
				out = append(out, byte(a), byte(a>>8), ',')
			}
			return string(out)
		}
		counts := map[string]int{}
		for p := 0; p < lib.NumImplementations(); p++ {
			counts[key(lib, ImplID(p), func(a ActionID) ActionID { return perm.ActionNew[a] })]++
		}
		for p := 0; p < ord.NumImplementations(); p++ {
			counts[key(ord, ImplID(p), func(a ActionID) ActionID { return a })]--
		}
		for k, c := range counts {
			if c != 0 {
				t.Fatalf("implementation multiset diverged at %q (%+d)", k, c)
			}
		}

		checkBlocks(t, ord)
	}
}

func TestImpactOrderImplementationClustering(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	lib := randomLibrary(r, 400, 10, 12)
	ord, _ := ImpactOrder(lib)
	// Implementation ids are |A_p|-ascending: block-local min/max lengths
	// collapse to near-equality, which is what makes the Focus bounds sharp.
	prev := 0
	for p := 0; p < ord.NumImplementations(); p++ {
		n := ord.ImplLen(ImplID(p))
		if n < prev {
			t.Fatalf("impl %d has length %d after %d: not length-clustered", p, n, prev)
		}
		prev = n
	}
}
