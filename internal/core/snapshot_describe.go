package core

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// SnapshotSectionInfo describes one section of a snapshot file for
// inspection tooling.
type SnapshotSectionInfo struct {
	ID       uint32
	Name     string
	ElemSize uint32
	Count    uint64
	Offset   uint64
	Bytes    uint64
}

// SnapshotDescription is the parsed header and section table of a snapshot,
// the cheap O(#sections) view a CLI can print without loading the library.
type SnapshotDescription struct {
	Version         uint32
	Compressed      bool
	HasVocabulary   bool
	LenSorted       bool
	Implementations uint64
	Actions         uint64
	Goals           uint64
	Slots           uint64
	Epoch           uint64
	MaxImplLen      uint32
	FileBytes       uint64
	Sections        []SnapshotSectionInfo
}

var snapSectionNames = map[uint32]string{
	secImplGoal:   "impl-goal",
	secImplOff:    "impl-offsets",
	secImplActs:   "impl-actions",
	secActOff:     "posting-offsets",
	secActPost:    "postings-raw",
	secGoalOff:    "goal-impl-offsets",
	secGoalPost:   "goal-impl-postings",
	secAgOff:      "ag-offsets",
	secAgGoal:     "ag-goals",
	secAgCnt:      "ag-counts",
	secGaOff:      "ga-offsets",
	secGaAct:      "ga-actions",
	secGaCnt:      "ga-counts",
	secGoalSlots:  "goal-slots",
	secBlkOff:     "block-offsets",
	secBlkLast:    "block-last",
	secBlkMinLen:  "block-minlen",
	secBlkMaxLen:  "block-maxlen",
	secPostOff:    "postings-compressed-offsets",
	secPostBlob:   "postings-compressed-blob",
	secVocActOff:  "vocab-action-offsets",
	secVocActStr:  "vocab-action-names",
	secVocGoalOff: "vocab-goal-offsets",
	secVocGoalStr: "vocab-goal-names",
}

// SnapshotDeltaSectionInfo describes one section of a delta snapshot: how
// many bytes it references from the base's prefix and how many it inlines.
type SnapshotDeltaSectionInfo struct {
	ID          uint32
	Name        string
	ElemSize    uint32
	Count       uint64
	RefBytes    uint64
	InlineBytes uint64
}

// SnapshotDeltaDescription is the parsed header and section table of a delta
// snapshot (.gsnpd) — the cheap view inspection tooling prints without the
// base present.
type SnapshotDeltaDescription struct {
	Version         uint32
	Compressed      bool
	HasVocabulary   bool
	LenSorted       bool
	Implementations uint64
	Actions         uint64
	Goals           uint64
	Slots           uint64
	Epoch           uint64
	BaseEpoch       uint64
	FileBytes       uint64
	RefBytes        uint64
	InlineBytes     uint64
	Sections        []SnapshotDeltaSectionInfo
}

// DescribeSnapshotDelta parses a delta snapshot's header and section table —
// validating the header CRC and geometry exactly like materialization does —
// and returns the reference/inline layout without needing the base.
func DescribeSnapshotDelta(data []byte) (*SnapshotDeltaDescription, error) {
	secs, flags, baseEpoch, err := parseDelta(data)
	if err != nil {
		return nil, err
	}
	d := &SnapshotDeltaDescription{
		Version:         binary.LittleEndian.Uint32(data[4:]),
		Compressed:      flags&snapFlagCompressed != 0,
		HasVocabulary:   flags&snapFlagVocab != 0,
		LenSorted:       flags&snapFlagLenSorted != 0,
		Implementations: binary.LittleEndian.Uint64(data[16:]),
		Actions:         binary.LittleEndian.Uint64(data[24:]),
		Goals:           binary.LittleEndian.Uint64(data[32:]),
		Slots:           binary.LittleEndian.Uint64(data[40:]),
		Epoch:           binary.LittleEndian.Uint64(data[48:]),
		BaseEpoch:       baseEpoch,
		FileBytes:       uint64(len(data)),
	}
	for _, s := range secs {
		name := snapSectionNames[s.id]
		if name == "" {
			name = fmt.Sprintf("section-%d", s.id)
		}
		d.RefBytes += s.refLen
		d.InlineBytes += s.inlineLen()
		d.Sections = append(d.Sections, SnapshotDeltaSectionInfo{
			ID: s.id, Name: name, ElemSize: s.elem, Count: s.count,
			RefBytes: s.refLen, InlineBytes: s.inlineLen(),
		})
	}
	return d, nil
}

// DescribeSnapshot parses data's header and section table — validating the
// CRC and geometry exactly like OpenSnapshotBytes — and returns the layout
// without materializing a library.
func DescribeSnapshot(data []byte) (*SnapshotDescription, error) {
	secs, flags, err := snapshotSections(data)
	if err != nil {
		return nil, err
	}
	d := &SnapshotDescription{
		Version:         binary.LittleEndian.Uint32(data[4:]),
		Compressed:      flags&snapFlagCompressed != 0,
		HasVocabulary:   flags&snapFlagVocab != 0,
		LenSorted:       flags&snapFlagLenSorted != 0,
		Implementations: binary.LittleEndian.Uint64(data[16:]),
		Actions:         binary.LittleEndian.Uint64(data[24:]),
		Goals:           binary.LittleEndian.Uint64(data[32:]),
		Slots:           binary.LittleEndian.Uint64(data[40:]),
		Epoch:           binary.LittleEndian.Uint64(data[48:]),
		MaxImplLen:      binary.LittleEndian.Uint32(data[56:]),
		FileBytes:       uint64(len(data)),
	}
	for id, s := range secs {
		name := snapSectionNames[id]
		if name == "" {
			name = fmt.Sprintf("section-%d", id)
		}
		d.Sections = append(d.Sections, SnapshotSectionInfo{
			ID: id, Name: name, ElemSize: s.elem, Count: s.count,
			Offset: s.off, Bytes: s.count * uint64(s.elem),
		})
	}
	sort.Slice(d.Sections, func(i, j int) bool { return d.Sections[i].Offset < d.Sections[j].Offset })
	return d, nil
}
