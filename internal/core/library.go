package core

import (
	"errors"
	"fmt"

	"goalrec/internal/intset"
)

// Implementation is one goal implementation: a goal together with the set of
// actions whose joint execution fulfills it (Definition 3.1 of the paper).
// Actions is strictly increasing.
type Implementation struct {
	Goal    GoalID
	Actions []ActionID
}

// Errors returned by the library builder.
var (
	ErrEmptyActivity = errors.New("core: implementation with empty activity")
	ErrNegativeID    = errors.New("core: negative id")
)

// Builder accumulates goal implementations and freezes them into an
// immutable Library. The zero value is ready to use.
type Builder struct {
	implGoal   []GoalID
	implOff    []int32 // implOff[i]..implOff[i+1] delimit actions of impl i in implActs
	implActs   []ActionID
	maxAction  ActionID
	maxGoal    GoalID
	totalSlots int
}

// NewBuilder returns a Builder with capacity hints for n implementations of
// avgLen actions each.
func NewBuilder(n, avgLen int) *Builder {
	b := &Builder{
		implGoal: make([]GoalID, 0, n),
		implOff:  make([]int32, 1, n+1),
		implActs: make([]ActionID, 0, n*avgLen),
	}
	b.maxAction, b.maxGoal = -1, -1
	return b
}

func (b *Builder) init() {
	if len(b.implOff) == 0 {
		b.implOff = append(b.implOff, 0)
		b.maxAction, b.maxGoal = -1, -1
	}
}

// Add records the implementation (goal, actions). The action list may be
// unsorted and may contain duplicates; it is normalized. Add keeps its own
// copy of actions. It returns the id assigned to the implementation.
func (b *Builder) Add(goal GoalID, actions []ActionID) (ImplID, error) {
	b.init()
	if goal < 0 {
		return NoImpl, fmt.Errorf("%w: goal %d", ErrNegativeID, goal)
	}
	norm := intset.FromUnsorted(intset.Clone(actions))
	if len(norm) == 0 {
		return NoImpl, ErrEmptyActivity
	}
	if norm[0] < 0 {
		return NoImpl, fmt.Errorf("%w: action %d", ErrNegativeID, norm[0])
	}
	id := ImplID(len(b.implGoal))
	b.implGoal = append(b.implGoal, goal)
	b.implActs = append(b.implActs, norm...)
	b.implOff = append(b.implOff, int32(len(b.implActs)))
	if goal > b.maxGoal {
		b.maxGoal = goal
	}
	if last := norm[len(norm)-1]; last > b.maxAction {
		b.maxAction = last
	}
	b.totalSlots += len(norm)
	return id, nil
}

// Len returns the number of implementations added so far.
func (b *Builder) Len() int { return len(b.implGoal) }

// Build freezes the accumulated implementations into a Library. The Builder
// may keep accepting Adds afterwards; the built Library is unaffected.
func (b *Builder) Build() *Library {
	b.init()
	nImpl := len(b.implGoal)
	nAct := int(b.maxAction) + 1
	nGoal := int(b.maxGoal) + 1

	lib := &Library{
		implGoal:   append([]GoalID(nil), b.implGoal...),
		implOff:    append([]int32(nil), b.implOff...),
		implActs:   append([]ActionID(nil), b.implActs...),
		numActions: nAct,
		numGoals:   nGoal,
	}

	// Counting sort of (action, impl) pairs into the A-GI-idx postings and of
	// (goal, impl) pairs into G-GI-idx. Impl ids are appended in increasing
	// order, so each posting list comes out sorted.
	actCount := make([]int32, nAct+1)
	for _, a := range lib.implActs {
		actCount[a+1]++
	}
	for i := 1; i <= nAct; i++ {
		actCount[i] += actCount[i-1]
	}
	lib.actOff = actCount
	lib.actPost = make([]ImplID, len(lib.implActs))
	cursor := append([]int32(nil), actCount[:nAct]...)
	for p := 0; p < nImpl; p++ {
		for _, a := range lib.implActions(ImplID(p)) {
			lib.actPost[cursor[a]] = ImplID(p)
			cursor[a]++
		}
	}

	goalCount := make([]int32, nGoal+1)
	for _, g := range lib.implGoal {
		goalCount[g+1]++
	}
	for i := 1; i <= nGoal; i++ {
		goalCount[i] += goalCount[i-1]
	}
	lib.goalOff = goalCount
	lib.goalPost = make([]ImplID, nImpl)
	gCursor := append([]int32(nil), goalCount[:nGoal]...)
	for p, g := range lib.implGoal {
		lib.goalPost[gCursor[g]] = ImplID(p)
		gCursor[g]++
	}
	return lib
}

// Library is the immutable association-based goal model (Figure 2 of the
// paper): every implementation is a labelled hyperedge over actions, stored
// in CSR form together with the two posting indexes
//
//	A-GI-idx: action -> implementations containing it
//	G-GI-idx: goal   -> implementations fulfilling it
//
// A Library is safe for concurrent readers.
type Library struct {
	implGoal []GoalID   // GI-G-idx: implementation -> goal
	implOff  []int32    // CSR offsets into implActs (GI-A-idx)
	implActs []ActionID // concatenated, per-impl sorted action lists

	actOff  []int32  // CSR offsets into actPost, len numActions+1
	actPost []ImplID // A-GI-idx postings, sorted per action

	goalOff  []int32  // CSR offsets into goalPost, len numGoals+1
	goalPost []ImplID // G-GI-idx postings, sorted per goal

	numActions int
	numGoals   int
}

// NumImplementations returns |L|.
func (l *Library) NumImplementations() int { return len(l.implGoal) }

// NumActions returns the size of the action id space (max id + 1).
func (l *Library) NumActions() int { return l.numActions }

// NumGoals returns the size of the goal id space (max id + 1).
func (l *Library) NumGoals() int { return l.numGoals }

// Goal returns the goal the implementation p fulfills (GI-G-idx lookup).
// It panics if p is out of range.
func (l *Library) Goal(p ImplID) GoalID { return l.implGoal[p] }

// Actions returns the sorted action set of implementation p (GI-A-idx
// lookup). The returned slice is a view into the library and must not be
// modified. It panics if p is out of range.
func (l *Library) Actions(p ImplID) []ActionID {
	return l.implActions(p)
}

func (l *Library) implActions(p ImplID) []ActionID {
	return l.implActs[l.implOff[p]:l.implOff[p+1]]
}

// ImplLen returns |A_p| without materializing the action view.
func (l *Library) ImplLen(p ImplID) int {
	return int(l.implOff[p+1] - l.implOff[p])
}

// ImplsOfAction returns the sorted implementation ids containing action a
// (A-GI-idx lookup); this is the implementation space IS(a) of the paper.
// The returned slice is a view and must not be modified. Ids outside the
// library yield an empty slice.
func (l *Library) ImplsOfAction(a ActionID) []ImplID {
	if a < 0 || int(a) >= l.numActions {
		return nil
	}
	return l.actPost[l.actOff[a]:l.actOff[a+1]]
}

// ImplsOfGoal returns the sorted implementation ids fulfilling goal g
// (G-GI-idx lookup). The returned slice is a view and must not be modified.
// Ids outside the library yield an empty slice.
func (l *Library) ImplsOfGoal(g GoalID) []ImplID {
	if g < 0 || int(g) >= l.numGoals {
		return nil
	}
	return l.goalPost[l.goalOff[g]:l.goalOff[g+1]]
}

// ActionDegree returns the connectivity of one action: the number of
// implementations it participates in.
func (l *Library) ActionDegree(a ActionID) int {
	return len(l.ImplsOfAction(a))
}

// Implementation materializes implementation p as a value with its own
// action slice copy.
func (l *Library) Implementation(p ImplID) Implementation {
	return Implementation{Goal: l.Goal(p), Actions: intset.Clone(l.implActions(p))}
}
